#!/usr/bin/env bash
# Tier-1 verification: the full build + ctest suite, then the socket-heavy
# net and integration suites again under ASan+UBSan (LOCO_SANITIZE=ON), then
# the concurrency-heavy suites under ThreadSanitizer (LOCO_SANITIZE=tsan).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== tier-1: io_uring backend smoke (daemons under --io-backend=uring) =="
# Spawns a real daemon on the uring event loop and round-trips RPCs.  On a
# kernel (or build) without io_uring the daemon falls back to epoll, which
# the test detects from the banner and reports as a clean GTEST_SKIP —
# either way the run must be green.
./build/tests/integration/integration_test --gtest_filter='UringBackend*'

echo "== tier-1: overload smoke (fig_overload --short, gated) =="
# Drives an in-process FMS through peak -> deadline-burst -> 2x sustained
# overload and enforces the docs/OVERLOAD.md gates: >= 70% of peak goodput
# retained, offered load >= 2x peak, expired requests dropped unexecuted,
# admission queue bounded at max_queue.
cmake --build build -j --target fig_overload >/dev/null
./build/bench/fig_overload --short --out build/BENCH_overload_smoke.json
# Same driver against a live daemon: spawn a real FMS and round-trip the
# three phases over TCP (the environment-sensitive gates are skipped in
# --connect mode; the run must still complete cleanly).
smoke_dir=$(mktemp -d)
./build/daemons/locofs_fmsd --listen 127.0.0.1:47117 --sid 1 --workers 4 \
  --store-dir "$smoke_dir" >"$smoke_dir/fms.log" 2>&1 &
smoke_pid=$!
trap 'kill $smoke_pid 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
sleep 0.5
./build/bench/fig_overload --short --connect 127.0.0.1:47117 \
  --out build/BENCH_overload_live.json
kill $smoke_pid 2>/dev/null || true
wait $smoke_pid 2>/dev/null || true
trap - EXIT
rm -rf "$smoke_dir"

echo "== tier-1: 2-shard live e2e leg (create/rename/fsck-clean) =="
# Two real locofs_dmsd shard processes plus FMS/OSD: the cross-shard rename
# chaos matrix (docs/SHARDING.md) — client-driven 2PC end to end, SIGKILL at
# each crash point, recovery by loco_fsck --repair and by the shards' own
# intent-resolution GC, with a clean read-only fsck pass after each.
./build/tests/integration/shard_rename_test

echo "== tier-1: shard scale-out smoke (fig_shard --short) =="
# Sim-based 1/2/4-shard sweep of the mkdir/create/rename mix.  The --short
# run is a correctness smoke (zero failed ops across shard counts); the
# full `fig_shard` run (saturating client count) is what demonstrates the
# >= 1.6x 2-shard scale-out recorded in BENCH_shard.json.
cmake --build build -j --target fig_shard >/dev/null
./build/bench/fig_shard --short --out build/BENCH_shard_smoke.json

echo "== tier-1: ASan+UBSan pass (net + kv + fs + sim + core + benchlib + integration + chaos + shard + gc soak + notify) =="
cmake -B build-asan -S . -DLOCO_SANITIZE=ON >/dev/null
cmake --build build-asan -j --target net_test kvstore_test fs_test \
  sim_test core_test core_housekeeping_test locofs_property_test \
  benchlib_test integration_test chaos_test shard_rename_test gc_soak_test \
  notify_e2e_test locofs_dmsd locofs_fmsd locofs_osd loco_fsck \
  loco_shell >/dev/null
# net_test carries the wire/batch-envelope fuzz corpus and core_test the
# batch handler suites, so the epoll server, the batch codecs and their
# FMS handlers all run under ASan; kvstore_test covers the WAL replay and
# compaction paths and fs_test the client-visible namespace semantics;
# chaos_test includes the batched crash-restart storm, and gc_soak_test
# kills a client + FMS while every daemon runs its GC thread and then
# repairs with `loco_fsck --live`.
./build-asan/tests/net/net_test
./build-asan/tests/kvstore/kvstore_test
./build-asan/tests/fs/fs_test
./build-asan/tests/sim/sim_test
./build-asan/tests/core/core_test
./build-asan/tests/core/core_housekeeping_test
./build-asan/tests/core/locofs_property_test
./build-asan/tests/benchlib/benchlib_test
./build-asan/tests/integration/integration_test
./build-asan/tests/integration/chaos_test
./build-asan/tests/integration/shard_rename_test
./build-asan/tests/integration/gc_soak_test
./build-asan/tests/integration/notify_e2e_test

echo "== tier-1: TSan pass (worker pool, striped KV, sim, concurrent handlers, GC, notify) =="
cmake -B build-tsan -S . -DLOCO_SANITIZE=tsan >/dev/null
cmake --build build-tsan -j --target net_test kvstore_test fs_test \
  sim_test core_test striped_kv_test \
  core_concurrency_test core_housekeeping_test notify_e2e_test >/dev/null
# net_test exercises both server backends, the client reactor and the
# worker pool under TSan; core_test adds the batch handler suites over the
# striped stores, and core_housekeeping_test runs the GcManager scan
# thread against serving handlers (token bucket, snapshot pins, session
# table).
./build-tsan/tests/net/net_test
./build-tsan/tests/kvstore/kvstore_test
./build-tsan/tests/fs/fs_test
./build-tsan/tests/sim/sim_test
./build-tsan/tests/core/core_test
./build-tsan/tests/kvstore/striped_kv_test
./build-tsan/tests/core/core_concurrency_test
./build-tsan/tests/core/core_housekeeping_test
./build-tsan/tests/integration/notify_e2e_test

echo "tier1: OK"
