#include "baselines/client.h"

#include <algorithm>
#include <set>

#include "baselines/proto.h"
#include "core/proto.h"
#include "common/hash.h"
#include "fs/path.h"
#include "fs/wire.h"

namespace loco::baselines {

namespace {

constexpr std::uint64_t kPlacementSeed = 0xB45E;

Result<fs::Attr> AttrFrom(const net::RpcResponse& resp) {
  if (!resp.ok()) return ErrStatus(resp.code);
  fs::Attr attr;
  if (!fs::Unpack(resp.payload, attr)) return ErrStatus(ErrCode::kCorruption);
  return attr;
}

Status StatusFrom(const net::RpcResponse& resp) { return Status(resp.code); }

fs::Attr RootAttr() {
  fs::Attr attr;
  attr.is_dir = true;
  attr.mode = 0777;
  attr.uuid = fs::kRootUuid;
  return attr;
}

std::string_view FirstComponent(const std::string& path) {
  const std::size_t end = path.find('/', 1);
  return std::string_view(path).substr(1, end == std::string::npos
                                              ? std::string::npos
                                              : end - 1);
}

}  // namespace

BaselineFsClient::BaselineFsClient(net::Channel& channel, Config config)
    : channel_(channel), cfg_(std::move(config)) {}

net::NodeId BaselineFsClient::Owner(const std::string& path) const {
  const std::size_t n = ServerCount();
  switch (cfg_.policy.flavor) {
    case Flavor::kIndexFs:
    case Flavor::kLustreD2:
    case Flavor::kGluster:
      return cfg_.servers[common::WyMix(path, kPlacementSeed) % n];
    case Flavor::kCephFs: {
      const std::string parent =
          path == "/" ? std::string("/") : std::string(fs::ParentPath(path));
      return cfg_.servers[common::WyMix(parent, kPlacementSeed) % n];
    }
    case Flavor::kLustreD1: {
      if (path == "/") return cfg_.servers[0];
      return cfg_.servers[common::WyMix(FirstComponent(path), kPlacementSeed) % n];
    }
  }
  return cfg_.servers[0];
}

net::NodeId BaselineFsClient::ChildrenOwner(const std::string& path) const {
  switch (cfg_.policy.flavor) {
    case Flavor::kCephFs:
      // Children records (and the list) live on hash(dir).
      return cfg_.servers[common::WyMix(path, kPlacementSeed) % ServerCount()];
    case Flavor::kLustreD1:
      // Subtree-pinned: children share the directory's MDT.
      return Owner(path == "/" ? std::string("/") : path);
    default:
      return Owner(path);
  }
}

void BaselineFsClient::CachePut(const std::string& path, const fs::Attr& attr) {
  const bool allow = attr.is_dir ? cfg_.policy.cache_dirs : cfg_.policy.cache_files;
  if (!allow || path == "/") return;
  cache_[path] = CacheEntry{attr, Now() + cfg_.policy.lease_ns};
}

void BaselineFsClient::InvalidatePrefix(const std::string& path) {
  const std::string prefix = path + "/";
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->first == path || it->first.rfind(prefix, 0) == 0) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

net::Task<Result<fs::Attr>> BaselineFsClient::FetchNode(std::string path) {
  if (path == "/") co_return RootAttr();
  const auto it = cache_.find(path);
  if (it != cache_.end() && Now() < it->second.expires_at) {
    ++cache_hits_;
    co_return it->second.attr;
  }
  if (cfg_.policy.cache_dirs || cfg_.policy.cache_files) ++cache_misses_;
  net::RpcResponse resp =
      co_await net::Call(channel_, Owner(path), proto::kNsGet, fs::Pack(path));
  auto attr = AttrFrom(resp);
  if (attr.ok()) CachePut(path, *attr);
  co_return attr;
}

net::Task<Result<fs::Attr>> BaselineFsClient::ResolveNode(std::string path,
                                                          std::uint32_t want) {
  if (!fs::IsValidPath(path)) co_return ErrStatus(ErrCode::kInvalid);
  if (cfg_.policy.server_resolve) {
    net::RpcResponse resp =
        co_await net::Call(channel_, Owner(path), proto::kNsResolve,
                           fs::Pack(path, identity_, want));
    co_return AttrFrom(resp);
  }
  for (const std::string& ancestor : fs::Ancestors(path)) {
    auto attr = co_await FetchNode(ancestor);
    if (!attr.ok()) co_return attr.status();
    if (!attr->is_dir) co_return ErrStatus(ErrCode::kNotDir);
    if (!fs::CheckPermission(identity_, attr->mode, attr->uid, attr->gid,
                             fs::kModeExec)) {
      co_return ErrStatus(ErrCode::kPermission);
    }
  }
  auto target = co_await FetchNode(path);
  if (!target.ok()) co_return target.status();
  if (want != 0 && !fs::CheckPermission(identity_, target->mode, target->uid,
                                        target->gid, want)) {
    co_return ErrStatus(ErrCode::kPermission);
  }
  co_return target;
}

net::Task<Status> BaselineFsClient::Broadcast(std::uint16_t opcode,
                                              std::string payload) {
  std::vector<net::NodeId> servers = cfg_.servers;
  auto responses =
      co_await net::CallMany(channel_, std::move(servers), opcode,
                             std::move(payload));
  for (const net::RpcResponse& r : responses) {
    if (!r.ok()) co_return ErrStatus(r.code);
  }
  co_return OkStatus();
}

// ------------------------------------------------------------- namespace --

net::Task<Status> BaselineFsClient::Mkdir(std::string path, std::uint32_t mode) {
  if (!fs::IsValidPath(path) || path == "/") {
    co_return ErrStatus(ErrCode::kInvalid);
  }
  const std::uint64_t ts = Now();
  fs::Attr attr;
  attr.is_dir = true;
  attr.mode = mode;
  attr.uid = identity_.uid;
  attr.gid = identity_.gid;
  attr.ctime = attr.mtime = attr.atime = ts;

  if (cfg_.policy.broadcast_dir_mutations) {
    // Replicated directories must agree on the uuid: derive it from the path.
    attr.uuid = fs::Uuid::Make(0xaaa, common::WyMix(path, 0xd1d) >> 16);
    if (cfg_.policy.mkdir_lock_rounds) {
      // Entry locks are acquired brick-by-brick in server order (the
      // standard deadlock-avoidance protocol) — one round trip per brick.
      // This sequential lock phase is what makes directory creation degrade
      // as bricks are added (§4.2.1: Gluster's mkdir latency).
      for (net::NodeId server : cfg_.servers) {
        net::RpcResponse lock =
            co_await net::Call(channel_, server, proto::kNsLock,
                               fs::Pack(path, cfg_.client_id));
        if (!lock.ok()) {
          co_await Broadcast(proto::kNsUnlock, fs::Pack(path, cfg_.client_id));
          co_return StatusFrom(lock);
        }
      }
    }
    const Status st = co_await Broadcast(
        proto::kNsInsert, fs::Pack(std::uint8_t{1}, path, attr, identity_));
    if (cfg_.policy.mkdir_lock_rounds) {
      co_await Broadcast(proto::kNsUnlock, fs::Pack(path, cfg_.client_id));
    }
    co_return st;
  }

  auto parent = co_await ResolveNode(std::string(fs::ParentPath(path)),
                                     fs::kModeWrite | fs::kModeExec);
  if (!parent.ok()) co_return parent.status();
  const net::NodeId owner = Owner(path);
  if (cfg_.policy.per_op_lock) {
    net::RpcResponse lock = co_await net::Call(channel_, owner, proto::kNsLock,
                                               fs::Pack(path, cfg_.client_id));
    if (!lock.ok()) co_return StatusFrom(lock);
  }
  net::RpcResponse resp = co_await net::Call(
      channel_, owner, proto::kNsInsert,
      fs::Pack(std::uint8_t{0}, path, attr, identity_));
  if (cfg_.policy.per_op_lock) {
    co_await net::Call(channel_, owner, proto::kNsUnlock,
                       fs::Pack(path, cfg_.client_id));
  }
  co_return StatusFrom(resp);
}

net::Task<Status> BaselineFsClient::Create(std::string path, std::uint32_t mode) {
  if (!fs::IsValidPath(path) || path == "/") {
    co_return ErrStatus(ErrCode::kInvalid);
  }
  const std::uint64_t ts = Now();
  fs::Attr attr;
  attr.is_dir = false;
  attr.mode = mode;
  attr.uid = identity_.uid;
  attr.gid = identity_.gid;
  attr.ctime = attr.mtime = attr.atime = ts;
  attr.block_size = 4096;

  const net::NodeId owner = Owner(path);
  if (cfg_.policy.server_resolve) {
    // No client cache: the parent directory is revalidated on every brick,
    // then the fresh name is probed everywhere (DHT "lookup everywhere")
    // before the create is sent to its hash brick.  These rounds are what
    // make Gluster creates slow — and slower as bricks are added (§4.2.1).
    std::vector<net::NodeId> parent_round = cfg_.servers;
    (void)co_await net::CallMany(channel_, std::move(parent_round),
                                 proto::kNsGet,
                                 fs::Pack(std::string(fs::ParentPath(path))));
    std::vector<net::NodeId> servers = cfg_.servers;
    (void)co_await net::CallMany(channel_, std::move(servers), proto::kNsGet,
                                 fs::Pack(path));
    net::RpcResponse resp = co_await net::Call(
        channel_, owner, proto::kNsInsert,
        fs::Pack(std::uint8_t{1}, path, attr, identity_));
    co_return StatusFrom(resp);
  }
  auto parent = co_await ResolveNode(std::string(fs::ParentPath(path)),
                                     fs::kModeWrite | fs::kModeExec);
  if (!parent.ok()) co_return parent.status();
  if (cfg_.policy.per_op_lock) {
    net::RpcResponse lock = co_await net::Call(channel_, owner, proto::kNsLock,
                                               fs::Pack(path, cfg_.client_id));
    if (!lock.ok()) co_return StatusFrom(lock);
  }
  net::RpcResponse resp = co_await net::Call(
      channel_, owner, proto::kNsInsert,
      fs::Pack(std::uint8_t{0}, path, attr, identity_));
  if (cfg_.policy.per_op_lock) {
    co_await net::Call(channel_, owner, proto::kNsUnlock,
                       fs::Pack(path, cfg_.client_id));
  }
  co_return StatusFrom(resp);
}

net::Task<Status> BaselineFsClient::Unlink(std::string path) {
  if (!fs::IsValidPath(path) || path == "/") {
    co_return ErrStatus(ErrCode::kInvalid);
  }
  const net::NodeId owner = Owner(path);
  if (cfg_.policy.server_resolve) {
    net::RpcResponse resp = co_await net::Call(
        channel_, owner, proto::kNsRemove,
        fs::Pack(std::uint8_t{1}, path, identity_, std::uint8_t{0},
                 std::uint8_t{0}));
    co_return StatusFrom(resp);
  }
  auto parent = co_await ResolveNode(std::string(fs::ParentPath(path)),
                                     fs::kModeWrite | fs::kModeExec);
  if (!parent.ok()) co_return parent.status();
  if (cfg_.policy.per_op_lock) {
    net::RpcResponse lock = co_await net::Call(channel_, owner, proto::kNsLock,
                                               fs::Pack(path, cfg_.client_id));
    if (!lock.ok()) co_return StatusFrom(lock);
  }
  net::RpcResponse resp = co_await net::Call(
      channel_, owner, proto::kNsRemove,
      fs::Pack(std::uint8_t{0}, path, identity_, std::uint8_t{0},
               std::uint8_t{0}));
  if (cfg_.policy.per_op_lock) {
    co_await net::Call(channel_, owner, proto::kNsUnlock,
                       fs::Pack(path, cfg_.client_id));
  }
  Invalidate(path);
  co_return StatusFrom(resp);
}

net::Task<Status> BaselineFsClient::Rmdir(std::string path) {
  if (!fs::IsValidPath(path) || path == "/") {
    co_return ErrStatus(ErrCode::kInvalid);
  }
  // Contract order: chain/existence, type, emptiness, parent-W, removal.
  auto dir = co_await ResolveNode(path, 0);
  if (!dir.ok()) co_return dir.status();
  if (!dir->is_dir) co_return ErrStatus(ErrCode::kNotDir);

  if (cfg_.policy.readdir_fanout ||
      (cfg_.policy.flavor == Flavor::kLustreD1 &&
       fs::ParentPath(path) == "/")) {
    std::vector<net::NodeId> servers = cfg_.servers;
    auto responses = co_await net::CallMany(channel_, std::move(servers),
                                            proto::kNsHasChildren,
                                            fs::Pack(path));
    for (const net::RpcResponse& r : responses) {
      if (!r.ok()) co_return ErrStatus(r.code);
    }
  } else {
    net::RpcResponse resp = co_await net::Call(
        channel_, ChildrenOwner(path), proto::kNsHasChildren, fs::Pack(path));
    if (!resp.ok()) co_return StatusFrom(resp);
  }

  if (cfg_.policy.broadcast_dir_mutations) {
    const Status st = co_await Broadcast(
        proto::kNsRemove, fs::Pack(std::uint8_t{1}, path, identity_,
                                   std::uint8_t{1}, std::uint8_t{1}));
    co_return st;
  }
  auto parent = co_await ResolveNode(std::string(fs::ParentPath(path)), 0);
  if (!parent.ok()) co_return parent.status();
  if (!fs::CheckPermission(identity_, parent->mode, parent->uid, parent->gid,
                           fs::kModeWrite)) {
    co_return ErrStatus(ErrCode::kPermission);
  }
  const net::NodeId owner = Owner(path);
  if (cfg_.policy.per_op_lock) {
    net::RpcResponse lock = co_await net::Call(channel_, owner, proto::kNsLock,
                                               fs::Pack(path, cfg_.client_id));
    if (!lock.ok()) co_return StatusFrom(lock);
  }
  net::RpcResponse resp = co_await net::Call(
      channel_, owner, proto::kNsRemove,
      fs::Pack(std::uint8_t{0}, path, identity_, std::uint8_t{1},
               std::uint8_t{1}));
  if (cfg_.policy.per_op_lock) {
    co_await net::Call(channel_, owner, proto::kNsUnlock,
                       fs::Pack(path, cfg_.client_id));
  }
  InvalidatePrefix(path);
  co_return StatusFrom(resp);
}

net::Task<Result<std::vector<fs::DirEntry>>> BaselineFsClient::Readdir(
    std::string path) {
  auto dir = co_await ResolveNode(path, 0);
  if (!dir.ok()) co_return dir.status();
  if (!dir->is_dir) co_return ErrStatus(ErrCode::kNotDir);
  if (!fs::CheckPermission(identity_, dir->mode, dir->uid, dir->gid,
                           fs::kModeRead)) {
    co_return ErrStatus(ErrCode::kPermission);
  }

  std::vector<fs::DirEntry> entries;
  const bool fanout = cfg_.policy.readdir_fanout ||
                      (cfg_.policy.flavor == Flavor::kLustreD1 && path == "/");
  if (fanout) {
    std::vector<net::NodeId> servers = cfg_.servers;
    auto responses = co_await net::CallMany(channel_, std::move(servers),
                                            proto::kNsChildren, fs::Pack(path));
    std::set<std::string> seen;  // replicated dirs appear on every server
    for (const net::RpcResponse& r : responses) {
      if (!r.ok()) co_return ErrStatus(r.code);
      std::vector<fs::DirEntry> part;
      if (!fs::Unpack(r.payload, part)) co_return ErrStatus(ErrCode::kCorruption);
      for (fs::DirEntry& e : part) {
        if (seen.insert(e.name).second) entries.push_back(std::move(e));
      }
    }
  } else {
    net::RpcResponse resp = co_await net::Call(
        channel_, ChildrenOwner(path), proto::kNsChildren, fs::Pack(path));
    if (!resp.ok()) co_return ErrStatus(resp.code);
    if (!fs::Unpack(resp.payload, entries)) {
      co_return ErrStatus(ErrCode::kCorruption);
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const fs::DirEntry& a, const fs::DirEntry& b) {
              return a.name < b.name;
            });
  co_return entries;
}

// ------------------------------------------------------------ attributes --

net::Task<Result<fs::Attr>> BaselineFsClient::Stat(std::string path) {
  co_return co_await ResolveNode(std::move(path), 0);
}

net::Task<Status> BaselineFsClient::Chmod(std::string path, std::uint32_t mode) {
  if (!fs::IsValidPath(path)) co_return ErrStatus(ErrCode::kInvalid);
  const std::uint64_t ts = Now();
  if (cfg_.policy.server_resolve) {
    // Directory mutations must reach every replica.
    net::RpcResponse probe =
        co_await net::Call(channel_, Owner(path), proto::kNsGet, fs::Pack(path));
    auto attr = AttrFrom(probe);
    if (attr.ok() && attr->is_dir && cfg_.policy.broadcast_dir_mutations) {
      co_return co_await Broadcast(
          proto::kNsChmod,
          fs::Pack(std::uint8_t{1}, path, identity_, mode, ts));
    }
    net::RpcResponse resp = co_await net::Call(
        channel_, Owner(path), proto::kNsChmod,
        fs::Pack(std::uint8_t{1}, path, identity_, mode, ts));
    co_return StatusFrom(resp);
  }
  if (path != "/") {
    auto parent = co_await ResolveNode(std::string(fs::ParentPath(path)),
                                       fs::kModeExec);
    if (!parent.ok()) co_return parent.status();
  }
  net::RpcResponse resp = co_await net::Call(
      channel_, Owner(path), proto::kNsChmod,
      fs::Pack(std::uint8_t{0}, path, identity_, mode, ts));
  if (resp.ok()) InvalidatePrefix(path);
  co_return StatusFrom(resp);
}

net::Task<Status> BaselineFsClient::Chown(std::string path, std::uint32_t uid,
                                          std::uint32_t gid) {
  if (!fs::IsValidPath(path)) co_return ErrStatus(ErrCode::kInvalid);
  const std::uint64_t ts = Now();
  if (cfg_.policy.server_resolve) {
    net::RpcResponse probe =
        co_await net::Call(channel_, Owner(path), proto::kNsGet, fs::Pack(path));
    auto attr = AttrFrom(probe);
    if (attr.ok() && attr->is_dir && cfg_.policy.broadcast_dir_mutations) {
      co_return co_await Broadcast(
          proto::kNsChown,
          fs::Pack(std::uint8_t{1}, path, identity_, uid, gid, ts));
    }
    net::RpcResponse resp = co_await net::Call(
        channel_, Owner(path), proto::kNsChown,
        fs::Pack(std::uint8_t{1}, path, identity_, uid, gid, ts));
    co_return StatusFrom(resp);
  }
  if (path != "/") {
    auto parent = co_await ResolveNode(std::string(fs::ParentPath(path)),
                                       fs::kModeExec);
    if (!parent.ok()) co_return parent.status();
  }
  net::RpcResponse resp = co_await net::Call(
      channel_, Owner(path), proto::kNsChown,
      fs::Pack(std::uint8_t{0}, path, identity_, uid, gid, ts));
  if (resp.ok()) InvalidatePrefix(path);
  co_return StatusFrom(resp);
}

net::Task<Status> BaselineFsClient::Utimens(std::string path,
                                            std::uint64_t mtime,
                                            std::uint64_t atime) {
  if (!fs::IsValidPath(path)) co_return ErrStatus(ErrCode::kInvalid);
  if (cfg_.policy.server_resolve) {
    net::RpcResponse probe =
        co_await net::Call(channel_, Owner(path), proto::kNsGet, fs::Pack(path));
    auto attr = AttrFrom(probe);
    if (attr.ok() && attr->is_dir && cfg_.policy.broadcast_dir_mutations) {
      co_return co_await Broadcast(
          proto::kNsUtimens,
          fs::Pack(std::uint8_t{1}, path, identity_, mtime, atime));
    }
    net::RpcResponse resp = co_await net::Call(
        channel_, Owner(path), proto::kNsUtimens,
        fs::Pack(std::uint8_t{1}, path, identity_, mtime, atime));
    co_return StatusFrom(resp);
  }
  if (path != "/") {
    auto parent = co_await ResolveNode(std::string(fs::ParentPath(path)),
                                       fs::kModeExec);
    if (!parent.ok()) co_return parent.status();
  }
  net::RpcResponse resp = co_await net::Call(
      channel_, Owner(path), proto::kNsUtimens,
      fs::Pack(std::uint8_t{0}, path, identity_, mtime, atime));
  if (resp.ok()) InvalidatePrefix(path);
  co_return StatusFrom(resp);
}

net::Task<Status> BaselineFsClient::Access(std::string path, std::uint32_t want) {
  auto attr = co_await ResolveNode(std::move(path), want);
  co_return attr.status();
}

net::Task<Result<fs::Attr>> BaselineFsClient::Open(std::string path) {
  auto attr = co_await ResolveNode(std::move(path), 0);
  if (!attr.ok()) co_return attr;
  if (attr->is_dir) co_return ErrStatus(ErrCode::kIsDir);
  if (!fs::CheckPermission(identity_, attr->mode, attr->uid, attr->gid,
                           fs::kModeRead)) {
    co_return ErrStatus(ErrCode::kPermission);
  }
  co_return attr;
}

net::Task<Status> BaselineFsClient::Close(std::string path) {
  (void)path;
  co_return OkStatus();
}

// ------------------------------------------------------------------ data --

net::Task<Status> BaselineFsClient::Truncate(std::string path,
                                             std::uint64_t size) {
  if (!fs::IsValidPath(path) || path == "/") {
    co_return ErrStatus(path == "/" ? ErrCode::kIsDir : ErrCode::kInvalid);
  }
  if (!cfg_.policy.server_resolve) {
    auto parent = co_await ResolveNode(std::string(fs::ParentPath(path)),
                                       fs::kModeExec);
    if (!parent.ok()) co_return parent.status();
  }
  const std::uint8_t resolve = cfg_.policy.server_resolve ? 1 : 0;
  net::RpcResponse resp = co_await net::Call(
      channel_, Owner(path), proto::kNsSetSize,
      fs::Pack(resolve, path, identity_, size, std::uint8_t{1}, Now()));
  if (!resp.ok()) co_return StatusFrom(resp);
  Invalidate(path);
  fs::Uuid uuid;
  std::uint64_t new_size = 0;
  if (!fs::Unpack(resp.payload, uuid, new_size)) {
    co_return ErrStatus(ErrCode::kCorruption);
  }
  net::RpcResponse obj = co_await net::Call(
      channel_, ObjFor(uuid), core::proto::kObjTruncate, fs::Pack(uuid, size));
  co_return StatusFrom(obj);
}

net::Task<Status> BaselineFsClient::Write(std::string path, std::uint64_t offset,
                                          std::string data) {
  if (!fs::IsValidPath(path) || path == "/") {
    co_return ErrStatus(path == "/" ? ErrCode::kIsDir : ErrCode::kInvalid);
  }
  if (!cfg_.policy.server_resolve) {
    auto parent = co_await ResolveNode(std::string(fs::ParentPath(path)),
                                       fs::kModeExec);
    if (!parent.ok()) co_return parent.status();
  }
  const std::uint8_t resolve = cfg_.policy.server_resolve ? 1 : 0;
  net::RpcResponse resp = co_await net::Call(
      channel_, Owner(path), proto::kNsSetSize,
      fs::Pack(resolve, path, identity_, offset + data.size(), std::uint8_t{0},
               Now()));
  if (!resp.ok()) co_return StatusFrom(resp);
  Invalidate(path);
  fs::Uuid uuid;
  std::uint64_t new_size = 0;
  if (!fs::Unpack(resp.payload, uuid, new_size)) {
    co_return ErrStatus(ErrCode::kCorruption);
  }
  net::RpcResponse obj =
      co_await net::Call(channel_, ObjFor(uuid), core::proto::kObjWrite,
                         fs::Pack(uuid, offset, data));
  co_return StatusFrom(obj);
}

net::Task<Result<std::string>> BaselineFsClient::Read(std::string path,
                                                      std::uint64_t offset,
                                                      std::uint64_t length) {
  if (!fs::IsValidPath(path) || path == "/") {
    co_return ErrStatus(path == "/" ? ErrCode::kIsDir : ErrCode::kInvalid);
  }
  if (!cfg_.policy.server_resolve) {
    auto parent = co_await ResolveNode(std::string(fs::ParentPath(path)),
                                       fs::kModeExec);
    if (!parent.ok()) co_return parent.status();
  }
  const std::uint8_t resolve = cfg_.policy.server_resolve ? 1 : 0;
  net::RpcResponse resp =
      co_await net::Call(channel_, Owner(path), proto::kNsSetAtime,
                         fs::Pack(resolve, path, identity_, Now()));
  if (!resp.ok()) co_return ErrStatus(resp.code);
  Invalidate(path);
  fs::Uuid uuid;
  std::uint64_t size = 0;
  if (!fs::Unpack(resp.payload, uuid, size)) {
    co_return ErrStatus(ErrCode::kCorruption);
  }
  if (offset >= size) co_return std::string();
  const std::uint64_t n = std::min(length, size - offset);
  net::RpcResponse obj =
      co_await net::Call(channel_, ObjFor(uuid), core::proto::kObjRead,
                         fs::Pack(uuid, offset, n, size));
  if (!obj.ok()) co_return ErrStatus(obj.code);
  std::string data;
  if (!fs::Unpack(obj.payload, data)) co_return ErrStatus(ErrCode::kCorruption);
  co_return data;
}

// ---------------------------------------------------------------- rename --

net::Task<Status> BaselineFsClient::Rename(std::string from, std::string to) {
  if (!fs::IsValidPath(from) || !fs::IsValidPath(to) || from == "/" ||
      to == "/") {
    co_return ErrStatus(ErrCode::kInvalid);
  }
  if (from == to) co_return OkStatus();
  if (to.size() > from.size() && to.compare(0, from.size(), from) == 0 &&
      to[from.size()] == '/') {
    co_return ErrStatus(ErrCode::kInvalid);
  }

  auto src_parent = co_await ResolveNode(std::string(fs::ParentPath(from)),
                                         fs::kModeWrite | fs::kModeExec);
  if (!src_parent.ok()) co_return src_parent.status();
  net::RpcResponse probe =
      co_await net::Call(channel_, Owner(from), proto::kNsGet, fs::Pack(from));
  auto src = AttrFrom(probe);
  if (!src.ok()) co_return src.status();

  auto dst_parent = co_await ResolveNode(std::string(fs::ParentPath(to)),
                                         fs::kModeWrite | fs::kModeExec);
  if (!dst_parent.ok()) co_return dst_parent.status();
  net::RpcResponse dst_probe =
      co_await net::Call(channel_, Owner(to), proto::kNsGet, fs::Pack(to));
  if (dst_probe.ok()) co_return ErrStatus(ErrCode::kExists);
  if (dst_probe.code != ErrCode::kNotFound) co_return StatusFrom(dst_probe);

  if (!src->is_dir) {
    // f-rename: relocate one record (hash placement moves it).
    net::RpcResponse ins = co_await net::Call(
        channel_, Owner(to), proto::kNsInsert,
        fs::Pack(std::uint8_t{0}, to, *src, identity_));
    if (!ins.ok()) co_return StatusFrom(ins);
    net::RpcResponse rm = co_await net::Call(
        channel_, Owner(from), proto::kNsRemove,
        fs::Pack(std::uint8_t{0}, from, identity_, std::uint8_t{0},
                 std::uint8_t{0}));
    Invalidate(from);
    Invalidate(to);
    co_return StatusFrom(rm);
  }

  // d-rename: every record of the subtree relocates (the full cost of
  // hash-based placement the paper's §3.4 design avoids).
  std::vector<net::NodeId> servers = cfg_.servers;
  auto extracts = co_await net::CallMany(channel_, std::move(servers),
                                         proto::kNsExtract, fs::Pack(from));
  std::vector<std::pair<std::string, fs::Attr>> records;
  std::set<std::string> seen;
  for (const net::RpcResponse& r : extracts) {
    if (!r.ok()) co_return ErrStatus(r.code);
    common::Reader reader(r.payload);
    const std::uint32_t count = reader.GetU32();
    for (std::uint32_t i = 0; i < count && reader.ok(); ++i) {
      std::string path(reader.GetBytes());
      fs::Attr attr = fs::DecodeAttr(reader);
      if (seen.insert(path).second) {
        records.emplace_back(std::move(path), attr);
      }
    }
  }
  for (auto& [old_path, attr] : records) {
    std::string new_path = to + old_path.substr(from.size());
    const std::string payload =
        fs::Pack(std::uint8_t{0}, new_path, attr, identity_);
    if (cfg_.policy.broadcast_dir_mutations && attr.is_dir) {
      const Status st = co_await Broadcast(proto::kNsInsert, payload);
      if (!st.ok()) co_return st;
    } else {
      net::RpcResponse ins = co_await net::Call(
          channel_, Owner(new_path), proto::kNsInsert, payload);
      if (!ins.ok()) co_return StatusFrom(ins);
    }
  }
  InvalidatePrefix(from);
  InvalidatePrefix(to);
  co_return OkStatus();
}

}  // namespace loco::baselines
