// BaselineFsClient: the client library of every baseline file system.
//
// One implementation of fs::FileSystemClient parameterized by a
// BaselinePolicy (see flavors.h); the policy decides placement, broadcast
// behaviour, caching, lock rounds, and readdir fan-out.  All flavors pass
// the same oracle property tests as LocoFS — they are correct file systems
// that differ in their RPC decomposition and server-side cost profile,
// which is exactly the contrast the paper's evaluation draws.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/flavors.h"
#include "fs/client.h"
#include "net/call.h"
#include "net/rpc.h"

namespace loco::baselines {

class BaselineFsClient final : public fs::FileSystemClient {
 public:
  struct Config {
    BaselinePolicy policy;
    std::vector<net::NodeId> servers;
    std::vector<net::NodeId> object_stores;
    fs::TimeFn now;
    std::uint64_t client_id = 0;  // lock-owner token
  };

  BaselineFsClient(net::Channel& channel, Config config);

  net::Task<Status> Mkdir(std::string path, std::uint32_t mode) override;
  net::Task<Status> Rmdir(std::string path) override;
  net::Task<Result<std::vector<fs::DirEntry>>> Readdir(std::string path) override;
  net::Task<Status> Create(std::string path, std::uint32_t mode) override;
  net::Task<Status> Unlink(std::string path) override;
  net::Task<Status> Rename(std::string from, std::string to) override;
  net::Task<Result<fs::Attr>> Stat(std::string path) override;
  net::Task<Status> Chmod(std::string path, std::uint32_t mode) override;
  net::Task<Status> Chown(std::string path, std::uint32_t uid,
                          std::uint32_t gid) override;
  net::Task<Status> Access(std::string path, std::uint32_t want) override;
  net::Task<Status> Utimens(std::string path, std::uint64_t mtime,
                            std::uint64_t atime) override;
  net::Task<Status> Truncate(std::string path, std::uint64_t size) override;
  net::Task<Result<fs::Attr>> Open(std::string path) override;
  net::Task<Status> Close(std::string path) override;
  net::Task<Status> Write(std::string path, std::uint64_t offset,
                          std::string data) override;
  net::Task<Result<std::string>> Read(std::string path, std::uint64_t offset,
                                      std::uint64_t length) override;

  void SetIdentity(fs::Identity id) noexcept override {
    if (id.uid != identity_.uid || id.gid != identity_.gid) cache_.clear();
    identity_ = id;
  }

  std::uint64_t cache_hits() const noexcept { return cache_hits_; }
  std::uint64_t cache_misses() const noexcept { return cache_misses_; }

 private:
  struct CacheEntry {
    fs::Attr attr;
    std::uint64_t expires_at = 0;
  };

  std::uint64_t Now() const { return cfg_.now ? cfg_.now() : 0; }
  std::size_t ServerCount() const noexcept { return cfg_.servers.size(); }

  // Owning server for the record at `path` under this flavor's placement.
  net::NodeId Owner(const std::string& path) const;
  // Server holding the children list of directory `path`.
  net::NodeId ChildrenOwner(const std::string& path) const;
  net::NodeId ObjFor(fs::Uuid uuid) const {
    return cfg_.object_stores[uuid.raw() % cfg_.object_stores.size()];
  }

  // Fetch a node's attributes (lease cache per policy; constant root).
  net::Task<Result<fs::Attr>> FetchNode(std::string path);
  // Full resolution with ancestor execute checks and `want` on the target.
  net::Task<Result<fs::Attr>> ResolveNode(std::string path, std::uint32_t want);

  // Broadcast `opcode` to every server; returns the first non-ok response
  // code (replicas are kept consistent, so codes agree) or kOk.
  net::Task<Status> Broadcast(std::uint16_t opcode, std::string payload);

  void CachePut(const std::string& path, const fs::Attr& attr);
  void Invalidate(const std::string& path) { cache_.erase(path); }
  void InvalidatePrefix(const std::string& path);

  net::Channel& channel_;
  Config cfg_;
  std::unordered_map<std::string, CacheEntry> cache_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
};

}  // namespace loco::baselines
