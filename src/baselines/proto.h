// Wire protocol of the baseline namespace servers.
//
// All four baseline services speak this dialect over their NsStore; what
// differs between IndexFS/CephFS/Gluster/Lustre is *which server* each
// request targets, whether requests are broadcast, and whether the `resolve`
// flag asks the server to perform the full local ACL chain walk (possible
// only when the server holds the whole chain, e.g. a Gluster brick).
#pragma once

#include <cstdint>

namespace loco::baselines::proto {

enum NsOp : std::uint16_t {
  // [path] -> [Attr]
  kNsGet = 100,
  // [resolve u8, path, Attr, Identity] -> [Attr(with assigned uuid)]
  // resolve=1: local ancestor-X + parent-W|X checks before insert.
  kNsInsert = 101,
  // [resolve u8, path, Identity, expect_dir u8, check_children u8] -> []
  // resolve=1: ancestor-X chain; expect_dir mismatch -> kNotDir/kIsDir;
  // check_children=1 -> kNotEmpty if the local children list is non-empty;
  // resolve=1 additionally enforces parent-W (contract order).
  kNsRemove = 102,
  // [resolve u8, path, Identity, mode u32, ts u64] -> []
  kNsChmod = 103,
  // [resolve u8, path, Identity, uid u32, gid u32, ts u64] -> []
  kNsChown = 104,
  // [resolve u8, path, Identity, mtime u64, atime u64] -> []
  kNsUtimens = 105,
  // [resolve u8, path, Identity, end u64, trunc u8, ts u64] -> [uuid, size]
  kNsSetSize = 106,
  // [resolve u8, path, Identity, ts u64] -> [uuid, size]
  kNsSetAtime = 107,
  // [path] -> [entries] ; this server's children list for the directory
  kNsChildren = 108,
  // [path] -> [] or kNotEmpty
  kNsHasChildren = 109,
  // [path, Identity, want u32] -> [Attr] ; full local ACL chain walk
  kNsResolve = 110,
  // [resolve u8, path, Identity, want u32] -> [] ; permission probe on the
  // record itself (plus chain when resolve=1)
  kNsAccess = 111,
  // [path] -> [count u32, (path, Attr)*] ; removes and returns every local
  // record under `path` (inclusive) — the relocation read side of a
  // hash-placed directory rename
  kNsExtract = 112,
  // [path, owner u64] -> [] or kUnavailable
  kNsLock = 113,
  // [path, owner u64] -> []
  kNsUnlock = 114,
};

}  // namespace loco::baselines::proto
