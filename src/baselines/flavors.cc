#include "baselines/flavors.h"

namespace loco::baselines {

std::string_view FlavorName(Flavor flavor) noexcept {
  switch (flavor) {
    case Flavor::kIndexFs: return "indexfs";
    case Flavor::kCephFs: return "cephfs";
    case Flavor::kGluster: return "gluster";
    case Flavor::kLustreD1: return "lustre-d1";
    case Flavor::kLustreD2: return "lustre-d2";
  }
  return "?";
}

BaselinePolicy PolicyFor(Flavor flavor) {
  BaselinePolicy p;
  p.flavor = flavor;
  switch (flavor) {
    case Flavor::kIndexFs:
      p.cache_dirs = true;
      p.readdir_fanout = true;
      break;
    case Flavor::kCephFs:
      p.cache_dirs = true;
      p.cache_files = true;
      p.readdir_fanout = false;
      break;
    case Flavor::kGluster:
      p.server_resolve = true;
      p.broadcast_dir_mutations = true;
      p.mkdir_lock_rounds = true;
      p.readdir_fanout = true;
      break;
    case Flavor::kLustreD1:
      p.per_op_lock = true;
      p.readdir_fanout = false;
      break;
    case Flavor::kLustreD2:
      p.per_op_lock = true;
      p.readdir_fanout = true;
      break;
  }
  return p;
}

NsServer::Options ServerOptionsFor(Flavor flavor, std::uint32_t sid) {
  NsServer::Options options;
  options.store.sid = sid;
  switch (flavor) {
    case Flavor::kIndexFs:
      // LevelDB-backed rows: LSM engine, WAL/flush traffic billed as SSD I/O.
      options.store.backend = kv::KvBackend::kLsm;
      options.charge_io = true;
      options.io_device = core::DeviceProfile{60'000, 450e6};
      break;
    case Flavor::kCephFs:
      // FileStore-era MDS journal: the synchronous disk journal on the
      // mutation path dominates metadata latency (CephFS 0.94 creates sat
      // around a millisecond on the paper's testbed).
      options.store.backend = kv::KvBackend::kHash;
      options.store.journal = true;
      options.store.journal_device = core::DeviceProfile{900'000, 150e6};
      break;
    case Flavor::kGluster:
      options.store.backend = kv::KvBackend::kHash;
      break;
    case Flavor::kLustreD1:
    case Flavor::kLustreD2:
      // ldiskfs MDT with an async-commit journal: a modest per-mutation
      // journal cost, far below Ceph's synchronous journal.
      options.store.backend = kv::KvBackend::kHash;
      options.store.journal = true;
      options.store.journal_device = core::DeviceProfile{40'000, 450e6};
      break;
  }
  return options;
}

}  // namespace loco::baselines
