// Generic baseline metadata server: an RpcHandler over one NsStore.
//
// Instantiated once per metadata node of every baseline file system; the
// baseline's identity lives in its client-side policy (placement, broadcast,
// caching), not here.  The server charges modeled device time for its
// journal (CephFS/Lustre) and, when charge_io is set, for the storage I/O of
// its KV backend (the LSM WAL/flush traffic of the IndexFS configuration).
#pragma once

#include <string>
#include <vector>

#include "baselines/ns_store.h"
#include "common/metrics.h"
#include "net/rpc.h"

namespace loco::baselines {

class NsServer final : public net::RpcHandler {
 public:
  struct Options {
    NsStore::Options store;
    bool charge_io = false;            // bill KV io_ops/io_bytes as device time
    core::DeviceProfile io_device;
  };

  explicit NsServer(const Options& options)
      : options_(options), store_(options.store),
        op_metrics_(&common::MetricsRegistry::Default(),
                    "server.ns" + std::to_string(options.store.sid)),
        kv_gauges_(kv::RegisterKvStatsGauges(
            &common::MetricsRegistry::Default(),
            "server.ns" + std::to_string(options.store.sid) + ".kv",
            [this] { return store_.kv().stats(); })) {}

  net::RpcResponse Handle(std::uint16_t opcode, std::string_view payload) override;

  NsStore& store() noexcept { return store_; }
  const NsStore& store() const noexcept { return store_; }

 private:
  net::RpcResponse Dispatch(std::uint16_t opcode, std::string_view payload);

  Options options_;
  NsStore store_;
  common::ServerOpCounters op_metrics_;
  std::vector<common::MetricsRegistry::GaugeHandle> kv_gauges_;
};

}  // namespace loco::baselines
