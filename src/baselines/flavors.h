// Baseline flavors and their policies.
//
// Each baseline file system is the same client/server machinery configured
// with the structural properties the paper attributes to it (§2, §5):
//
//   IndexFS   GIGA+-style full-split placement: every entry hashed by its
//             full path; LSM (LevelDB-like) storage with whole-inode values
//             and charged WAL/flush I/O; client lease cache of directory
//             entries; readdir fans out to all partitions.
//   CephFS    Directory-granular placement (entries live with their parent
//             directory's server); mutations journaled to a disk-backed
//             MDS journal; clients cache both directory and file inodes
//             (caps); readdir is a single-server operation.
//   Gluster   No metadata server: directories replicated on every brick,
//             files hashed to one brick; directory mutations broadcast to
//             all bricks (with lock/op/unlock rounds for mkdir); resolution
//             happens server-side on the brick (chains are local); no
//             client metadata cache.
//   LustreD1  DNE1: each top-level subtree pinned to one MDT; per-component
//             lookup RPCs (DLM locks are not cached across ops here) plus an
//             intent-lock round trip on mutations.
//   LustreD2  DNE2: striped directories — entries hashed across all MDTs —
//             otherwise as D1.
#pragma once

#include <string_view>

#include "baselines/ns_server.h"

namespace loco::baselines {

enum class Flavor { kIndexFs, kCephFs, kGluster, kLustreD1, kLustreD2 };

std::string_view FlavorName(Flavor flavor) noexcept;

struct BaselinePolicy {
  Flavor flavor = Flavor::kIndexFs;
  bool server_resolve = false;         // brick-local ACL chains (Gluster)
  bool cache_dirs = false;             // client lease cache of directories
  bool cache_files = false;            // client caches file attrs (Ceph caps)
  bool broadcast_dir_mutations = false;  // dir mutations hit every server
  bool mkdir_lock_rounds = false;      // lock/op/unlock broadcast rounds
  bool per_op_lock = false;            // intent-lock RPC around mutations
  bool readdir_fanout = true;          // entries spread across servers
  std::uint64_t lease_ns = 30ull * 1'000'000'000;
};

BaselinePolicy PolicyFor(Flavor flavor);

// Server-side configuration matching the flavor (storage engine, journal,
// charged I/O).  `sid` seeds the uuids minted by that server.
NsServer::Options ServerOptionsFor(Flavor flavor, std::uint32_t sid);

}  // namespace loco::baselines
