#include "baselines/ns_store.h"

#include <algorithm>

#include "common/codec.h"
#include "fs/path.h"
#include "fs/wire.h"

namespace loco::baselines {

namespace {

std::string RecordKey(const std::string& path) { return "N:" + path; }
std::string ChildrenKey(const std::string& path) { return "C:" + path; }

}  // namespace

NsStore::NsStore(const Options& options) : options_(options) {
  kv_ = std::move(kv::MakeKv(options.backend, kv::KvOptions{})).value();
  // The root directory is seeded on every server: all baselines replicate
  // or pin the root, and its attributes are immutable in this codebase.
  fs::Attr root;
  root.is_dir = true;
  root.mode = 0777;
  root.uuid = fs::kRootUuid;
  (void)kv_->Put(RecordKey("/"), fs::Pack(root));
}

void NsStore::Journal(std::string_view tag, const std::string& path) {
  if (!options_.journal) return;
  // Serialize a journal record for real (CPU is measured by the simulator);
  // the device time is accrued and drained by the RPC handler.
  common::Writer w;
  w.PutU64(journal_records_++);
  w.PutBytes(tag);
  w.PutBytes(path);
  journal_cost_ += options_.journal_device.Cost(1, w.size());
}

common::Nanos NsStore::TakeJournalCost() {
  const common::Nanos cost = journal_cost_;
  journal_cost_ = 0;
  return cost;
}

Status NsStore::PutRecord(const std::string& path, const fs::Attr& attr) {
  return kv_->Put(RecordKey(path), fs::Pack(attr));
}

Result<fs::Attr> NsStore::GetRecord(const std::string& path) const {
  std::string value;
  LOCO_RETURN_IF_ERROR(kv_->Get(RecordKey(path), &value));
  fs::Attr attr;
  if (!fs::Unpack(value, attr)) return ErrStatus(ErrCode::kCorruption);
  return attr;
}

Result<fs::Attr> NsStore::Get(const std::string& path) const {
  return GetRecord(path);
}

bool NsStore::Contains(const std::string& path) const {
  return kv_->Contains(RecordKey(path));
}

Status NsStore::AddChild(const std::string& parent, std::string_view name,
                         bool is_dir) {
  std::string value;
  std::vector<fs::DirEntry> entries;
  if (kv_->Get(ChildrenKey(parent), &value).ok()) {
    common::Reader r(value);
    entries = fs::DecodeEntries(r);
  }
  entries.push_back(fs::DirEntry{std::string(name), is_dir});
  common::Writer w;
  fs::EncodeEntries(w, entries);
  return kv_->Put(ChildrenKey(parent), w.str());
}

Status NsStore::DropChild(const std::string& parent, std::string_view name) {
  std::string value;
  if (!kv_->Get(ChildrenKey(parent), &value).ok()) return OkStatus();
  common::Reader r(value);
  std::vector<fs::DirEntry> entries = fs::DecodeEntries(r);
  const auto it = std::find_if(
      entries.begin(), entries.end(),
      [&](const fs::DirEntry& e) { return e.name == name; });
  if (it == entries.end()) return OkStatus();
  entries.erase(it);
  if (entries.empty()) return kv_->Delete(ChildrenKey(parent));
  common::Writer w;
  fs::EncodeEntries(w, entries);
  return kv_->Put(ChildrenKey(parent), w.str());
}

Status NsStore::Insert(const std::string& path, const fs::Attr& attr) {
  if (Contains(path)) return ErrStatus(ErrCode::kExists);
  LOCO_RETURN_IF_ERROR(PutRecord(path, attr));
  LOCO_RETURN_IF_ERROR(AddChild(std::string(fs::ParentPath(path)),
                                fs::BaseName(path), attr.is_dir));
  Journal("insert", path);
  return OkStatus();
}

Status NsStore::Remove(const std::string& path) {
  if (!Contains(path)) return ErrStatus(ErrCode::kNotFound);
  LOCO_RETURN_IF_ERROR(kv_->Delete(RecordKey(path)));
  LOCO_RETURN_IF_ERROR(DropChild(std::string(fs::ParentPath(path)),
                                 fs::BaseName(path)));
  Journal("remove", path);
  return OkStatus();
}

Status NsStore::Chmod(const std::string& path, const fs::Identity& who,
                      std::uint32_t mode, std::uint64_t ts) {
  LOCO_ASSIGN_OR_RETURN(fs::Attr attr, GetRecord(path));
  if (who.uid != 0 && who.uid != attr.uid) return ErrStatus(ErrCode::kPermission);
  attr.mode = mode;
  attr.ctime = ts;
  Journal("chmod", path);
  return PutRecord(path, attr);
}

Status NsStore::Chown(const std::string& path, const fs::Identity& who,
                      std::uint32_t uid, std::uint32_t gid, std::uint64_t ts) {
  LOCO_ASSIGN_OR_RETURN(fs::Attr attr, GetRecord(path));
  if (who.uid != 0 && !(who.uid == attr.uid && uid == attr.uid)) {
    return ErrStatus(ErrCode::kPermission);
  }
  attr.uid = uid;
  attr.gid = gid;
  attr.ctime = ts;
  Journal("chown", path);
  return PutRecord(path, attr);
}

Status NsStore::Utimens(const std::string& path, const fs::Identity& who,
                        std::uint64_t mtime, std::uint64_t atime) {
  LOCO_ASSIGN_OR_RETURN(fs::Attr attr, GetRecord(path));
  if (who.uid != 0 && who.uid != attr.uid &&
      !fs::CheckPermission(who, attr.mode, attr.uid, attr.gid, fs::kModeWrite)) {
    return ErrStatus(ErrCode::kPermission);
  }
  attr.mtime = mtime;
  attr.atime = atime;
  Journal("utimens", path);
  return PutRecord(path, attr);
}

Result<std::pair<fs::Uuid, std::uint64_t>> NsStore::SetSize(
    const std::string& path, const fs::Identity& who, std::uint64_t end,
    bool truncate, std::uint64_t ts) {
  LOCO_ASSIGN_OR_RETURN(fs::Attr attr, GetRecord(path));
  if (attr.is_dir) return ErrStatus(ErrCode::kIsDir);
  if (!fs::CheckPermission(who, attr.mode, attr.uid, attr.gid, fs::kModeWrite)) {
    return ErrStatus(ErrCode::kPermission);
  }
  attr.size = truncate ? end : std::max(attr.size, end);
  attr.mtime = ts;
  Journal("setsize", path);
  LOCO_RETURN_IF_ERROR(PutRecord(path, attr));
  return std::make_pair(attr.uuid, attr.size);
}

Result<std::pair<fs::Uuid, std::uint64_t>> NsStore::SetAtime(
    const std::string& path, const fs::Identity& who, std::uint64_t ts) {
  LOCO_ASSIGN_OR_RETURN(fs::Attr attr, GetRecord(path));
  if (attr.is_dir) return ErrStatus(ErrCode::kIsDir);
  if (!fs::CheckPermission(who, attr.mode, attr.uid, attr.gid, fs::kModeRead)) {
    return ErrStatus(ErrCode::kPermission);
  }
  attr.atime = ts;
  Journal("setatime", path);
  LOCO_RETURN_IF_ERROR(PutRecord(path, attr));
  return std::make_pair(attr.uuid, attr.size);
}

Result<std::vector<fs::DirEntry>> NsStore::Children(const std::string& path) const {
  std::string value;
  std::vector<fs::DirEntry> entries;
  if (kv_->Get(ChildrenKey(path), &value).ok()) {
    common::Reader r(value);
    entries = fs::DecodeEntries(r);
  }
  return entries;
}

bool NsStore::HasChildren(const std::string& path) const {
  return kv_->Contains(ChildrenKey(path));
}

Status NsStore::ResolveAcl(const std::string& path, const fs::Identity& who,
                           std::uint32_t want) const {
  if (!fs::IsValidPath(path)) return ErrStatus(ErrCode::kInvalid);
  for (const std::string& ancestor : fs::Ancestors(path)) {
    LOCO_ASSIGN_OR_RETURN(fs::Attr attr, GetRecord(ancestor));
    if (!attr.is_dir) return ErrStatus(ErrCode::kNotDir);
    if (!fs::CheckPermission(who, attr.mode, attr.uid, attr.gid, fs::kModeExec)) {
      return ErrStatus(ErrCode::kPermission);
    }
  }
  LOCO_ASSIGN_OR_RETURN(fs::Attr attr, GetRecord(path));
  if (want != 0 &&
      !fs::CheckPermission(who, attr.mode, attr.uid, attr.gid, want)) {
    return ErrStatus(ErrCode::kPermission);
  }
  return OkStatus();
}

Result<std::uint64_t> NsStore::MoveSubtree(const std::string& from,
                                           const std::string& to) {
  // Collect local records with prefix `from` ("N:" keys) and move them.
  std::vector<kv::Entry> hits;
  (void)kv_->ScanPrefix(RecordKey(from + "/"), 0, &hits);
  std::string self;
  const bool has_self = kv_->Get(RecordKey(from), &self).ok();
  std::uint64_t moved = 0;

  // Children lists move alongside ("C:" keys).
  std::vector<kv::Entry> child_lists;
  (void)kv_->ScanPrefix(ChildrenKey(from + "/"), 0, &child_lists);
  std::string self_children;
  const bool has_self_children = kv_->Get(ChildrenKey(from), &self_children).ok();

  for (auto& [key, value] : hits) {
    const std::string suffix = key.substr(RecordKey(from).size());
    (void)kv_->Delete(key);
    (void)kv_->Put(RecordKey(to) + suffix, value);
    ++moved;
  }
  for (auto& [key, value] : child_lists) {
    const std::string suffix = key.substr(ChildrenKey(from).size());
    (void)kv_->Delete(key);
    (void)kv_->Put(ChildrenKey(to) + suffix, value);
  }
  if (has_self) {
    (void)kv_->Delete(RecordKey(from));
    (void)kv_->Put(RecordKey(to), self);
    ++moved;
    (void)DropChild(std::string(fs::ParentPath(from)), fs::BaseName(from));
    (void)AddChild(std::string(fs::ParentPath(to)), fs::BaseName(to), true);
  }
  if (has_self_children) {
    (void)kv_->Delete(ChildrenKey(from));
    (void)kv_->Put(ChildrenKey(to), self_children);
  }
  Journal("move", from);
  return moved;
}

std::vector<std::pair<std::string, fs::Attr>> NsStore::Extract(
    const std::string& from) {
  std::vector<std::pair<std::string, fs::Attr>> out;
  std::vector<kv::Entry> hits;
  (void)kv_->ScanPrefix(RecordKey(from + "/"), 0, &hits);
  for (auto& [key, value] : hits) {
    fs::Attr attr;
    if (!fs::Unpack(value, attr)) continue;
    std::string path = key.substr(2);  // strip "N:"
    (void)kv_->Delete(key);
    (void)kv_->Delete(ChildrenKey(path));
    out.emplace_back(std::move(path), attr);
  }
  std::string self;
  if (kv_->Get(RecordKey(from), &self).ok()) {
    fs::Attr attr;
    if (fs::Unpack(self, attr)) {
      (void)kv_->Delete(RecordKey(from));
      (void)DropChild(std::string(fs::ParentPath(from)), fs::BaseName(from));
      out.emplace_back(from, attr);
    }
  }
  // Children-list fragments for the subtree can live here even when the
  // corresponding records do not (each server lists the children *it*
  // inserted).  Purge every local fragment under `from`.
  std::vector<kv::Entry> lists;
  (void)kv_->ScanPrefix(ChildrenKey(from + "/"), 0, &lists);
  for (const auto& [key, value] : lists) {
    (void)value;
    (void)kv_->Delete(key);
  }
  (void)kv_->Delete(ChildrenKey(from));
  if (!out.empty()) Journal("extract", from);
  return out;
}

Status NsStore::Lock(const std::string& path, std::uint64_t owner) {
  for (const auto& [p, o] : locks_) {
    if (p == path && o != owner) return ErrStatus(ErrCode::kUnavailable);
  }
  locks_.emplace_back(path, owner);
  return OkStatus();
}

Status NsStore::Unlock(const std::string& path, std::uint64_t owner) {
  const auto it = std::find(locks_.begin(), locks_.end(),
                            std::make_pair(path, owner));
  if (it != locks_.end()) locks_.erase(it);
  return OkStatus();
}

std::size_t NsStore::RecordCount() const {
  std::size_t n = 0;
  kv_->ForEach([&n](std::string_view key, std::string_view) {
    n += key.size() >= 2 && key[0] == 'N';
    return true;
  });
  return n;
}

}  // namespace loco::baselines
