#include "baselines/ns_server.h"

#include "baselines/proto.h"
#include "fs/path.h"
#include "fs/wire.h"

namespace loco::baselines {

namespace {

net::RpcResponse Fail(ErrCode code) { return net::RpcResponse{code, {}}; }
net::RpcResponse Ok() { return net::RpcResponse{}; }
net::RpcResponse OkPayload(std::string payload) {
  return net::RpcResponse{ErrCode::kOk, std::move(payload)};
}
net::RpcResponse BadRequest() { return Fail(ErrCode::kCorruption); }

}  // namespace

net::RpcResponse NsServer::Handle(std::uint16_t opcode,
                                  std::string_view payload) {
  const common::ServerOpCounters::PerOp& m = op_metrics_.For(opcode);
  m.calls->Add();
  const kv::KvStats before = store_.kv().stats();
  net::RpcResponse resp = Dispatch(opcode, payload);
  if (resp.code != ErrCode::kOk) m.errors->Add();
  resp.extra_service_ns += store_.TakeJournalCost();
  if (options_.charge_io) {
    const kv::KvStats delta = store_.kv().stats() - before;
    resp.extra_service_ns += options_.io_device.Cost(delta.io_ops, delta.io_bytes);
  }
  return resp;
}

net::RpcResponse NsServer::Dispatch(std::uint16_t opcode,
                                    std::string_view payload) {
  switch (opcode) {
    case proto::kNsGet: {
      std::string path;
      if (!fs::Unpack(payload, path)) return BadRequest();
      auto attr = store_.Get(path);
      if (!attr.ok()) return Fail(attr.code());
      return OkPayload(fs::Pack(*attr));
    }

    case proto::kNsInsert: {
      std::uint8_t resolve = 0;
      std::string path;
      fs::Attr attr;
      fs::Identity who;
      if (!fs::Unpack(payload, resolve, path, attr, who)) return BadRequest();
      if (!fs::IsValidPath(path) || path == "/") return Fail(ErrCode::kInvalid);
      if (resolve != 0) {
        const Status st = store_.ResolveAcl(std::string(fs::ParentPath(path)),
                                            who, fs::kModeWrite | fs::kModeExec);
        if (!st.ok()) return Fail(st.code());
      }
      if (attr.uuid.raw() == 0) attr.uuid = store_.NextUuid();
      const Status st = store_.Insert(path, attr);
      if (!st.ok()) return Fail(st.code());
      return OkPayload(fs::Pack(attr));
    }

    case proto::kNsRemove: {
      std::uint8_t resolve = 0, expect_dir = 0, check_children = 0;
      std::string path;
      fs::Identity who;
      if (!fs::Unpack(payload, resolve, path, who, expect_dir, check_children)) {
        return BadRequest();
      }
      if (!fs::IsValidPath(path) || path == "/") return Fail(ErrCode::kInvalid);
      const std::string parent(fs::ParentPath(path));
      if (resolve != 0 && expect_dir == 0) {
        // unlink contract order: parent W|X before target existence.
        const Status st =
            store_.ResolveAcl(parent, who, fs::kModeWrite | fs::kModeExec);
        if (!st.ok()) return Fail(st.code());
      }
      if (resolve != 0 && expect_dir != 0) {
        // rmdir contract order: chain + existence first.
        const Status st = store_.ResolveAcl(path, who, 0);
        if (!st.ok()) return Fail(st.code());
      }
      auto attr = store_.Get(path);
      if (!attr.ok()) return Fail(attr.code());
      if (expect_dir != 0 && !attr->is_dir) return Fail(ErrCode::kNotDir);
      if (expect_dir == 0 && attr->is_dir) return Fail(ErrCode::kIsDir);
      if (check_children != 0 && store_.HasChildren(path)) {
        return Fail(ErrCode::kNotEmpty);
      }
      if (resolve != 0 && expect_dir != 0) {
        // rmdir: parent W after emptiness (contract order).
        auto pattr = store_.Get(parent);
        if (!pattr.ok()) return Fail(pattr.code());
        if (!fs::CheckPermission(who, pattr->mode, pattr->uid, pattr->gid,
                                 fs::kModeWrite)) {
          return Fail(ErrCode::kPermission);
        }
      }
      const Status st = store_.Remove(path);
      return st.ok() ? Ok() : Fail(st.code());
    }

    case proto::kNsChmod: {
      std::uint8_t resolve = 0;
      std::string path;
      fs::Identity who;
      std::uint32_t mode = 0;
      std::uint64_t ts = 0;
      if (!fs::Unpack(payload, resolve, path, who, mode, ts)) return BadRequest();
      if (resolve != 0 && path != "/") {
        const Status st = store_.ResolveAcl(std::string(fs::ParentPath(path)),
                                            who, fs::kModeExec);
        if (!st.ok()) return Fail(st.code());
      }
      const Status st = store_.Chmod(path, who, mode, ts);
      return st.ok() ? Ok() : Fail(st.code());
    }

    case proto::kNsChown: {
      std::uint8_t resolve = 0;
      std::string path;
      fs::Identity who;
      std::uint32_t uid = 0, gid = 0;
      std::uint64_t ts = 0;
      if (!fs::Unpack(payload, resolve, path, who, uid, gid, ts)) {
        return BadRequest();
      }
      if (resolve != 0 && path != "/") {
        const Status st = store_.ResolveAcl(std::string(fs::ParentPath(path)),
                                            who, fs::kModeExec);
        if (!st.ok()) return Fail(st.code());
      }
      const Status st = store_.Chown(path, who, uid, gid, ts);
      return st.ok() ? Ok() : Fail(st.code());
    }

    case proto::kNsUtimens: {
      std::uint8_t resolve = 0;
      std::string path;
      fs::Identity who;
      std::uint64_t mtime = 0, atime = 0;
      if (!fs::Unpack(payload, resolve, path, who, mtime, atime)) {
        return BadRequest();
      }
      if (resolve != 0 && path != "/") {
        const Status st = store_.ResolveAcl(std::string(fs::ParentPath(path)),
                                            who, fs::kModeExec);
        if (!st.ok()) return Fail(st.code());
      }
      const Status st = store_.Utimens(path, who, mtime, atime);
      return st.ok() ? Ok() : Fail(st.code());
    }

    case proto::kNsSetSize: {
      std::uint8_t resolve = 0, truncate = 0;
      std::string path;
      fs::Identity who;
      std::uint64_t end = 0, ts = 0;
      if (!fs::Unpack(payload, resolve, path, who, end, truncate, ts)) {
        return BadRequest();
      }
      if (resolve != 0) {
        const Status st = store_.ResolveAcl(std::string(fs::ParentPath(path)),
                                            who, fs::kModeExec);
        if (!st.ok()) return Fail(st.code());
      }
      auto result = store_.SetSize(path, who, end, truncate != 0, ts);
      if (!result.ok()) return Fail(result.code());
      return OkPayload(fs::Pack(result->first, result->second));
    }

    case proto::kNsSetAtime: {
      std::uint8_t resolve = 0;
      std::string path;
      fs::Identity who;
      std::uint64_t ts = 0;
      if (!fs::Unpack(payload, resolve, path, who, ts)) return BadRequest();
      if (resolve != 0) {
        const Status st = store_.ResolveAcl(std::string(fs::ParentPath(path)),
                                            who, fs::kModeExec);
        if (!st.ok()) return Fail(st.code());
      }
      auto result = store_.SetAtime(path, who, ts);
      if (!result.ok()) return Fail(result.code());
      return OkPayload(fs::Pack(result->first, result->second));
    }

    case proto::kNsChildren: {
      std::string path;
      if (!fs::Unpack(payload, path)) return BadRequest();
      auto entries = store_.Children(path);
      if (!entries.ok()) return Fail(entries.code());
      return OkPayload(fs::Pack(*entries));
    }

    case proto::kNsHasChildren: {
      std::string path;
      if (!fs::Unpack(payload, path)) return BadRequest();
      return store_.HasChildren(path) ? Fail(ErrCode::kNotEmpty) : Ok();
    }

    case proto::kNsResolve: {
      std::string path;
      fs::Identity who;
      std::uint32_t want = 0;
      if (!fs::Unpack(payload, path, who, want)) return BadRequest();
      const Status st = store_.ResolveAcl(path, who, want);
      if (!st.ok()) return Fail(st.code());
      auto attr = store_.Get(path);
      if (!attr.ok()) return Fail(attr.code());
      return OkPayload(fs::Pack(*attr));
    }

    case proto::kNsAccess: {
      std::uint8_t resolve = 0;
      std::string path;
      fs::Identity who;
      std::uint32_t want = 0;
      if (!fs::Unpack(payload, resolve, path, who, want)) return BadRequest();
      if (resolve != 0) {
        const Status st = store_.ResolveAcl(path, who, want);
        return st.ok() ? Ok() : Fail(st.code());
      }
      auto attr = store_.Get(path);
      if (!attr.ok()) return Fail(attr.code());
      if (!fs::CheckPermission(who, attr->mode, attr->uid, attr->gid, want)) {
        return Fail(ErrCode::kPermission);
      }
      return Ok();
    }

    case proto::kNsExtract: {
      std::string path;
      if (!fs::Unpack(payload, path)) return BadRequest();
      auto extracted = store_.Extract(path);
      common::Writer w;
      w.PutU32(static_cast<std::uint32_t>(extracted.size()));
      for (const auto& [p, attr] : extracted) {
        w.PutBytes(p);
        fs::EncodeAttr(w, attr);
      }
      return OkPayload(w.Take());
    }

    case proto::kNsLock: {
      std::string path;
      std::uint64_t owner = 0;
      if (!fs::Unpack(payload, path, owner)) return BadRequest();
      const Status st = store_.Lock(path, owner);
      return st.ok() ? Ok() : Fail(st.code());
    }

    case proto::kNsUnlock: {
      std::string path;
      std::uint64_t owner = 0;
      if (!fs::Unpack(payload, path, owner)) return BadRequest();
      (void)store_.Unlock(path, owner);
      return Ok();
    }

    default:
      return Fail(ErrCode::kUnsupported);
  }
}

}  // namespace loco::baselines
