// NsStore: the per-server namespace store shared by every baseline file
// system (IndexFS-, CephFS-, Gluster- and Lustre-like services).
//
// Unlike LocoFS — whose whole point is to avoid this layout — a baseline
// server keeps classical metadata records:
//   * one serialized whole-inode record per path ("N:" + path): every field
//     update is a deserialize / modify / reserialize round trip of the full
//     value (the coupling penalty of §2.2.2);
//   * one children list per directory ("C:" + path), maintained on whichever
//     server inserts/removes the child (placement policy decides which
//     server that is — it differs per baseline).
//
// An optional journal models CephFS/Lustre-style mutation logging: each
// mutation serializes an op record (real CPU) and accrues modeled device
// time, which the owning RPC handler reports via extra_service_ns.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/object_store.h"  // DeviceProfile
#include "fs/types.h"
#include "kvstore/kv.h"

namespace loco::baselines {

class NsStore {
 public:
  struct Options {
    kv::KvBackend backend = kv::KvBackend::kHash;
    bool journal = false;
    core::DeviceProfile journal_device;  // applies when journal = true
    std::uint32_t sid = 0;               // uuid high bits for records created here
  };

  explicit NsStore(const Options& options);

  // Record access ------------------------------------------------------
  Result<fs::Attr> Get(const std::string& path) const;
  bool Contains(const std::string& path) const;

  // Insert a record and add it to its parent's local children list.
  // kExists if the path already has a record here.
  Status Insert(const std::string& path, const fs::Attr& attr);

  // Remove the record and its entry in the parent's local children list.
  Status Remove(const std::string& path);

  // Whole-record read-modify-write helpers (each pays full
  // (de)serialization and a journal append).
  Status Chmod(const std::string& path, const fs::Identity& who,
               std::uint32_t mode, std::uint64_t ts);
  Status Chown(const std::string& path, const fs::Identity& who,
               std::uint32_t uid, std::uint32_t gid, std::uint64_t ts);
  Status Utimens(const std::string& path, const fs::Identity& who,
                 std::uint64_t mtime, std::uint64_t atime);
  // size = max(old, end) or exact (truncate); mtime = ts.  Returns uuid and
  // the new size.
  Result<std::pair<fs::Uuid, std::uint64_t>> SetSize(const std::string& path,
                                                     const fs::Identity& who,
                                                     std::uint64_t end,
                                                     bool truncate,
                                                     std::uint64_t ts);
  Result<std::pair<fs::Uuid, std::uint64_t>> SetAtime(const std::string& path,
                                                      const fs::Identity& who,
                                                      std::uint64_t ts);

  // Directory content ----------------------------------------------------
  Result<std::vector<fs::DirEntry>> Children(const std::string& path) const;
  bool HasChildren(const std::string& path) const;

  // Local ACL walk: exec on every ancestor record present here, `want` on
  // the target.  Only meaningful on servers that hold the full chain
  // (Gluster bricks, Lustre D1 MDTs); missing ancestors fail kNotFound.
  Status ResolveAcl(const std::string& path, const fs::Identity& who,
                    std::uint32_t want) const;

  // Move every local record under `from` (inclusive) to `to`, fixing the
  // parents' children lists.  Returns the number of records moved.
  // Only valid when placement keeps the subtree on this server (Lustre D1).
  Result<std::uint64_t> MoveSubtree(const std::string& from,
                                    const std::string& to);

  // Remove and return every local record under `from` (inclusive).  The
  // relocation read side of a hash-placed directory rename: the client
  // re-inserts each record at its new owner.
  std::vector<std::pair<std::string, fs::Attr>> Extract(const std::string& from);

  // Advisory per-path lock (Gluster lock/op/unlock rounds).
  Status Lock(const std::string& path, std::uint64_t owner);
  Status Unlock(const std::string& path, std::uint64_t owner);

  // Virtual device time accrued by journal appends since the last call.
  common::Nanos TakeJournalCost();

  // Fresh uuid for a record created on this server.
  fs::Uuid NextUuid() { return fs::Uuid::Make(options_.sid, next_fid_++); }

  std::size_t RecordCount() const;
  const kv::Kv& kv() const noexcept { return *kv_; }
  kv::Kv& mutable_kv() noexcept { return *kv_; }

 private:
  Status PutRecord(const std::string& path, const fs::Attr& attr);
  Result<fs::Attr> GetRecord(const std::string& path) const;
  void Journal(std::string_view tag, const std::string& path);
  Status AddChild(const std::string& parent, std::string_view name, bool is_dir);
  Status DropChild(const std::string& parent, std::string_view name);

  Options options_;
  std::unique_ptr<kv::Kv> kv_;
  std::uint64_t next_fid_ = 1;
  common::Nanos journal_cost_ = 0;
  std::uint64_t journal_records_ = 0;
  std::vector<std::pair<std::string, std::uint64_t>> locks_;
};

}  // namespace loco::baselines
