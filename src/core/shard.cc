#include "core/shard.h"

namespace loco::core {

std::string_view ShardKey(std::string_view path) noexcept {
  if (path.size() <= 1) return path;  // "/"
  const std::size_t slash = path.find('/', 1);
  return slash == std::string_view::npos ? path : path.substr(0, slash);
}

namespace {

std::vector<net::NodeId> ShardIndices(std::size_t shards) {
  std::vector<net::NodeId> ids;
  ids.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    ids.push_back(static_cast<net::NodeId>(i));
  }
  return ids;
}

}  // namespace

ShardMap::ShardMap(std::size_t shards)
    : shards_(shards == 0 ? 1 : shards), ring_(ShardIndices(shards_)) {}

std::size_t ShardMap::ShardOf(std::string_view path) const noexcept {
  if (shards_ == 1 || path.size() <= 1) return 0;
  return static_cast<std::size_t>(ring_.Locate(ShardKey(path)));
}

}  // namespace loco::core
