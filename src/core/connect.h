// The one way a process connects to a running LocoFS cluster.
//
// Every client binary (loco_shell, the benches, loco_fsck, the integration
// tests) used to assemble the same stack by hand: parse a --connect spec,
// build a TcpChannel, register node ids, wrap a ResilientChannel, and thread
// a LocoClient::Config around.  core::Connect() collapses that into one call:
//
//   auto opts = core::ClientOptions::FromSpec(
//       "dms=127.0.0.1:9000,fms=127.0.0.1:9001,osd=127.0.0.1:9100");
//   auto mount = core::Connect(std::move(*opts));
//   auto client = mount->MakeClient(now_fn);
//
// The MountHandle owns the whole client-side stack:
//   * the TcpChannel with every daemon registered under the canonical node
//     ids (dms shard 0 = 0, shard i >= 1 = 900+i; fms = 1..N in spec order —
//     match each daemon's --sid — object stores = 1000+i);
//   * the optional ResilientChannel (retry + circuit breakers);
//   * the notify plane: one NotifyListener per DMS shard on a dedicated
//     connection, all feeding the shared NotifyFanout that routes pushes
//     into every LocoClient made from this mount (lease invalidation in
//     ~1 RTT instead of the lease timeout) and breaker gossip into the
//     ResilientChannel.
// Each mount gets a process-unique client id; the DMS uses it to address
// pushes and to exempt the mutating mount from its own invalidations.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/client.h"
#include "net/notify.h"
#include "net/resilience.h"
#include "net/tcp.h"

namespace loco::core {

struct ClientOptions {
  // Daemon addresses, each "host:port".  At least one DMS shard, one FMS
  // and one object store.  DMS order is the shard order (docs/SHARDING.md):
  // placement is positional, so every client and tool connecting to one
  // cluster must list the shards identically.
  std::vector<std::string> dms;
  std::vector<std::string> fms;
  std::vector<std::string> object_stores;

  // LocoFS-C vs LocoFS-NC; lease_ns = 0 also disables caching.
  bool cache_enabled = true;
  std::uint64_t lease_ns = 30ull * 1'000'000'000;

  // Transport tuning (deadlines, connect retry, fault plane...).
  net::TcpChannelOptions channel;

  // Retry + per-endpoint circuit breakers (net/resilience.h).  Safe by
  // default because the daemons deduplicate idempotent mutations server-side
  // (net::DedupWindow).
  bool resilience = true;
  net::ResilienceOptions resilience_options;

  // Server-push plane (net/notify.h): lease invalidation + breaker gossip on
  // a dedicated connection to the DMS.  Degrades automatically against a
  // server that does not speak it.
  bool notify = true;

  // Parse a `--connect` spec into the endpoint fields (everything else keeps
  // its default): comma-separated `role=host:port` entries with roles
  // dms / fms / osd in any order.  Repeating `dms=` declares DMS shards in
  // shard order, e.g.
  //   dms=127.0.0.1:9000,dms=127.0.0.1:9010,fms=127.0.0.1:9001,osd=127.0.0.1:9100
  static Result<ClientOptions> FromSpec(std::string_view spec);

  // Fluent knobs for call sites that tweak one or two fields.
  ClientOptions& WithCache(bool on) { cache_enabled = on; return *this; }
  ClientOptions& WithLease(std::uint64_t ns) { lease_ns = ns; return *this; }
  ClientOptions& WithResilience(bool on) { resilience = on; return *this; }
  ClientOptions& WithNotify(bool on) { notify = on; return *this; }
};

// A mounted client-side view of a remote deployment.  Movable; destroying it
// stops the notify listener and closes every connection.  LocoClients made
// from it must not outlive it.
struct MountHandle {
  std::unique_ptr<net::TcpChannel> channel;
  // Present when ClientOptions::resilience; wraps *channel.
  std::unique_ptr<net::ResilientChannel> resilient;
  // Present when ClientOptions::notify; routes pushes into fanout and
  // breaker gossip into resilient.  One listener per DMS shard, in shard
  // order — every shard pushes invalidations for the directories it owns.
  std::shared_ptr<NotifyFanout> fanout;
  std::vector<std::unique_ptr<net::NotifyListener>> listeners;
  // Config template for MakeClient (node ids, cache policy, fanout).
  LocoClient::Config config;
  // This mount's identity on the wire.
  std::uint64_t client_id = 0;

  // The channel clients should issue calls on (the resilient wrapper when
  // enabled, the bare TCP channel otherwise).
  net::Channel& rpc() const noexcept {
    return resilient ? static_cast<net::Channel&>(*resilient)
                     : static_cast<net::Channel&>(*channel);
  }

  // Build a client-process library over rpc() (one per logical client;
  // `now` supplies operation timestamps, e.g. wall-clock nanoseconds).
  std::unique_ptr<fs::FileSystemClient> MakeClient(fs::TimeFn now) const;
};

Result<MountHandle> Connect(const ClientOptions& options);

}  // namespace loco::core
