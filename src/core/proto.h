// LocoFS wire protocol: opcode registry and payload layouts.
//
// Payloads are flat field tuples encoded with fs::Pack / fs::Unpack; the
// layout of each message is documented next to its opcode.  All requests
// that mutate or check permissions carry the caller Identity and (where the
// contract requires a timestamp) the client's clock reading.
#pragma once

#include <cstdint>
#include <vector>

namespace loco::core::proto {

// --------------------------- DMS (Directory Metadata Server) ---------------
enum DmsOp : std::uint16_t {
  // [path, mode u32, Identity, ts u64] -> []
  kDmsMkdir = 1,
  // [path, Identity, check_files u8] -> [] ; check_files=1 requires the
  // caller to have already verified FMS emptiness (protocol contract).
  kDmsRmdir = 2,
  // Lookup a directory for use as a parent: checks exec on ancestors and
  // `want` bits on the target; optionally rejects when `shadow_name` exists
  // as a subdirectory (namespace unification).  The reply carries the
  // subdirectory names so lease holders keep enforcing the shadow check
  // locally for the lease lifetime.
  // [path, Identity, want u32, shadow_name] -> [Attr, subdir_names]
  kDmsLookup = 3,
  // [path, Identity] -> [Attr]
  kDmsStat = 4,
  // [path, Identity] -> [Attr of dir, entries] (subdirectories only)
  kDmsReaddir = 5,
  // [path, Identity, mode u32, ts u64] -> []
  kDmsChmod = 6,
  // [path, Identity, uid u32, gid u32, ts u64] -> []
  kDmsChown = 7,
  // [path, Identity, mtime u64, atime u64] -> []
  kDmsUtimens = 8,
  // [path, Identity, want u32] -> []
  kDmsAccess = 9,
  // Directory rename: relocates the whole subtree of d-inodes (B+-tree range
  // move, §3.4.3).  [from, to, Identity] -> [moved u64]
  kDmsRename = 10,
  // Bulk tree materialization (net/wire.h batch framing): one frame carries
  // N kDmsMkdir request tuples and runs them under a single namespace-lock
  // acquisition, so a client building a deep or wide tree pays the
  // shared-lock and dispatch overhead once.  Each sub-op succeeds or fails
  // alone (per-sub-op ErrCode); sub-ops may depend on earlier siblings
  // ("a", then "a/b") because they apply in order.
  // request sub-op  = kDmsMkdir request tuple
  // response sub-op = []
  kDmsBatchMkdir = 11,

  // -- cross-shard rename: two-phase commit over a persisted intent log
  //    (docs/SHARDING.md).  The client (or a recovery agent) drives:
  //    Prepare on the source shard, Commit on the destination shard, Finish
  //    back on the source.  Every step is idempotent and keyed by a client-
  //    minted transaction id, so crashed transfers are resolved by fsck/GC
  //    from the persisted intents alone. --
  // Validate the rename on the source shard, persist an outgoing intent
  // record, lock the subtree against other mutations, and return the packed
  // subtree: one entry per d-inode, Pack(rel_path, dinode_raw, dirent_raw)
  // where rel_path is "" for the subtree root and "name" / "name/sub" below
  // it.  [from, to, txid u64, Identity] -> [entries]
  kDmsRenamePrepare = 12,
  // Install the transferred subtree under `to` on the destination shard.
  // Persists an incoming marker first, installs children, installs the
  // subtree root *last* (so "root of `to` exists" is the durable commit
  // point), appends `to` to its parent's dirent list, then drops the marker.
  // [txid u64, to, Identity, entries] -> []
  kDmsRenameCommit = 13,
  // Source-side cleanup after a successful commit: delete the moved subtree
  // and the source parent dirent entry, drop the intent.  Unknown txid ->
  // kOk (a retry after completion).  [txid u64] -> []
  kDmsRenameFinish = 14,
  // Source-side rollback before commit: drop the intent and release the
  // subtree lock, leaving the source subtree untouched.  [txid u64] -> []
  kDmsRenameAbort = 15,
  // Destination-side rollback: drop the incoming marker; purge=1 also
  // deletes any partially installed d-inodes under the marker's `to` path.
  // [txid u64, purge u8] -> []
  kDmsAbortIncoming = 16,

  // -- fsck / admin (loco_fsck; unauthenticated, run against a quiesced
  //    cluster like any offline consistency checker) --
  // [] -> [entries] ; entry = Pack(path, uuid) for every d-inode
  kDmsScanDirs = 20,
  // [] -> [entries] ; entry = Pack(dir_uuid, names) for every dirent list
  kDmsScanDirents = 21,
  // Add (add=1) or remove (add=0) `name` in the dirent list of the directory
  // at `dir_path`.  [dir_path, name, add u8] -> []
  kDmsRepairDirent = 22,
  // Drop the whole dirent list keyed by a uuid whose d-inode no longer
  // exists (rmdir crash leftovers).  [dir_uuid] -> []
  kDmsDropDirents = 23,

  // Breaker gossip: a daemon (FMS/OSD — or the DMS itself via its startup
  // path) announces "I am up, incarnation `epoch`".  The DMS broadcasts a
  // wire::kNotifyServerUp to every notify session so clients close the
  // node's circuit breaker immediately instead of waiting out the half-open
  // probe interval.  [node u32, epoch u64] -> []
  kDmsAnnounce = 24,

  // Batched d-inode liveness probe (FMS GC, invariant I5: files whose parent
  // directory no longer exists).  Request entries are Pack(uuid); the reply
  // is one byte per entry, '\1' if a directory with that uuid exists.
  // [entries] -> [bitmap]
  kDmsCheckUuids = 25,

  // Dump this shard's pending rename-transfer state for fsck/GC recovery.
  // Optional [epoch u64] payload reads a pinned snapshot (kCtlSnapshotBegin)
  // like the other scan opcodes.  [] or [epoch u64] -> [entries] where
  // entry = Pack(kind u8, txid u64, from, to); kind 0 = outgoing intent
  // (this shard is the rename source), kind 1 = incoming marker (this shard
  // is the destination and the transfer may be partially installed).
  kDmsScanIntents = 26,
};

// ------------------------------ FMS (File Metadata Server) -----------------
enum FmsOp : std::uint16_t {
  // [dir_uuid, name, mode u32, Identity, ts u64] -> [file_uuid]
  kFmsCreate = 32,
  // [dir_uuid, name, Identity] -> [file_uuid]  (caller already holds parent-W)
  kFmsRemove = 33,
  // [dir_uuid, name] -> [Attr]
  kFmsGetAttr = 34,
  // [dir_uuid, name, Identity] -> [Attr] ; requires read permission
  kFmsOpen = 35,
  // [dir_uuid, name, Identity, mode u32, ts u64] -> []
  kFmsChmod = 36,
  // [dir_uuid, name, Identity, uid u32, gid u32, ts u64] -> []
  kFmsChown = 37,
  // [dir_uuid, name, Identity, mtime u64, atime u64] -> []
  kFmsUtimens = 38,
  // [dir_uuid, name, Identity, want u32] -> []
  kFmsAccess = 39,
  // Write-path metadata update: size = max(size, end) (or exact when
  // truncate u8 = 1), mtime = ts.  [dir_uuid, name, Identity, end u64,
  // truncate u8, ts u64] -> [file_uuid, new_size u64]
  kFmsSetSize = 40,
  // Read-path: atime = ts.  [dir_uuid, name, Identity, ts u64]
  //   -> [file_uuid, size u64]
  kFmsSetAtime = 41,
  // [dir_uuid] -> [entries] ; file entries hashed to this server
  kFmsReaddir = 42,
  // [dir_uuid] -> [] ; kNotEmpty if any file of this directory lives here
  kFmsCheckEmpty = 43,
  // Relocation support for f-rename: raw fixed-layout parts move between
  // servers without interpretation.
  // [dir_uuid, name] -> [access_raw, content_raw]
  kFmsReadRaw = 44,
  // [dir_uuid, name, access_raw, content_raw] -> []
  kFmsInsertRaw = 45,

  // -- batched metadata ops (net/wire.h batch framing) --
  // One frame carries N independent sub-ops; the response carries one
  // ErrCode + payload per sub-op, so a single bad entry fails alone.  A
  // malformed batch envelope (declared count disagreeing with the payload
  // bytes) is answered with kCorruption for the whole frame.
  // request sub-op  = kFmsCreate request tuple
  // response sub-op = [file_uuid]
  kFmsBatchCreate = 48,
  // request sub-op  = kFmsGetAttr request tuple ([dir_uuid, name])
  // response sub-op = [Attr]
  kFmsBatchStat = 49,
  // Readdir that returns attributes with the names in one round trip.
  // request = [dir_uuid] (plain tuple, not batch-framed); response = batch
  // items of [name, Attr] for every file of the directory on this server.
  kFmsReaddirPlus = 50,
  // Bulk write-path metadata update: the metadata half of a small-file
  // ingest (`PutMany`).  One frame carries N kFmsSetSize tuples; the reply
  // returns each file's uuid so the client can route the data half
  // (kObjBatchPut) by object placement.
  // request sub-op  = kFmsSetSize request tuple
  // response sub-op = [file_uuid, new_size u64]
  kFmsBatchSetSize = 51,

  // -- fsck / admin --
  // [] -> [entries] ; entry = Pack(dir_uuid, name, file_uuid) per file inode
  kFmsScanFiles = 56,
  // [] -> [entries] ; entry = Pack(dir_uuid, names) per dirent list
  kFmsScanDirents = 57,
  // [dir_uuid, name, add u8] -> [] ; fix one dirent entry
  kFmsRepairDirent = 58,
  // Unconditionally drop a file inode (both parts) and its dirent entry.
  // [dir_uuid, name] -> [file_uuid]
  kFmsPurgeFile = 59,

  // Batched file-uuid liveness probe (OSD GC, invariant I9: leaked objects).
  // Request entries are Pack(uuid); the reply is one byte per entry, '\1' if
  // some file inode on this server carries that uuid.  [entries] -> [bitmap]
  kFmsCheckUuids = 60,
  // Explicit session open: register (or renew) a file session for the
  // calling client id (from the wire-v2 hello).  exclusive=1 demands sole
  // ownership — kExists if any other client holds a session on the file, and
  // later openers are refused until the holder closes, disconnects, or its
  // session TTL lapses.  [dir_uuid, name, exclusive u8] -> []
  kFmsOpenSession = 61,
  // Drop the calling client's session on one file.  [dir_uuid, name] -> []
  kFmsCloseSession = 62,
};

// ----------------------------------- Object store --------------------------
enum ObjOp : std::uint16_t {
  // [uuid, offset u64, data] -> []
  kObjWrite = 64,
  // [uuid, offset u64, length u64, size_hint u64] -> [data]
  kObjRead = 65,
  // [uuid, size u64] -> [] ; drop blocks beyond size
  kObjTruncate = 66,
  // Bulk small-object write (net/wire.h batch framing): one frame carries N
  // kObjWrite tuples, amortizing per-RPC dispatch for small-file ingest.
  // Device time for the whole batch is charged on the enclosing frame
  // (extra_service_ns sums the sub-op costs).
  // request sub-op  = kObjWrite request tuple ([uuid, offset u64, data])
  // response sub-op = []
  kObjBatchPut = 67,

  // -- fsck / admin --
  // [] -> [entries] ; entry = Pack(uuid u64, blocks u64) per stored object
  kObjScanObjects = 80,
  // [uuid] -> [deleted_blocks u64] ; drop every block of an object
  kObjPurge = 81,
};

// ------------------------------ Control plane -------------------------------
// Admin opcodes in the wire-v2 control range (240–255).  240 (kCtlHello) is
// consumed by the transport itself; everything above it is dispatched to the
// hosting service like any RPC, so each daemon answers for its own
// housekeeping state.
enum CtlOp : std::uint16_t {
  // GC progress of this daemon.  [] ->
  //   [running u8, cycles u64, ops u64, reclaimed u64, entries]
  //   entry = Pack(task_name, calls u64, ops u64, reclaimed u64)
  // kUnavailable when the daemon runs without a GC manager.
  kCtlGcStatus = 241,
  // Pin a point-in-time snapshot of this server's scan surface and return
  // its epoch.  Until the matching SnapshotEnd, scan opcodes called with
  // payload [epoch u64] serve the pinned cut while mutations proceed; scan
  // calls with an empty payload keep reading live state.  Snapshots are
  // bounded per server; pinning beyond the bound evicts the oldest.
  // [] -> [epoch u64]
  kCtlSnapshotBegin = 242,
  // Release a pinned snapshot.  Unknown epochs are ignored (the snapshot
  // may have been evicted).  [epoch u64] -> []
  kCtlSnapshotEnd = 243,
  // Live file sessions of an FMS.  [] -> [entries]
  //   entry = Pack(dir_uuid, name, client u64, ttl_ns u64, exclusive u8)
  // kUnsupported on daemons without a session table (DMS, OSD).
  kCtlSessionList = 244,
};

// Mutations eligible for the server-side idempotent-replay window
// (net::DedupWindow): a retried or duplicated delivery must apply exactly
// once and return the cached response.  Reads are naturally idempotent and
// excluded.  One shared list keeps the daemons simple; opcodes a given
// server never handles simply never match.
inline std::vector<std::uint16_t> IdempotentReplayOps() {
  return {kDmsMkdir,   kDmsRmdir,     kDmsChmod,    kDmsChown,
          kDmsUtimens, kDmsRename,    kDmsRepairDirent, kDmsDropDirents,
          kDmsBatchMkdir,
          kDmsRenamePrepare, kDmsRenameCommit, kDmsRenameFinish,
          kDmsRenameAbort, kDmsAbortIncoming,
          kFmsCreate,  kFmsRemove,    kFmsChmod,    kFmsChown,
          kFmsUtimens, kFmsSetSize,   kFmsSetAtime, kFmsInsertRaw,
          kFmsRepairDirent, kFmsPurgeFile, kFmsBatchCreate, kFmsBatchSetSize,
          kObjWrite,   kObjTruncate,  kObjPurge,    kObjBatchPut};
}

}  // namespace loco::core::proto
