// LocoFS wire protocol: opcode registry and payload layouts.
//
// Payloads are flat field tuples encoded with fs::Pack / fs::Unpack; the
// layout of each message is documented next to its opcode.  All requests
// that mutate or check permissions carry the caller Identity and (where the
// contract requires a timestamp) the client's clock reading.
#pragma once

#include <cstdint>

namespace loco::core::proto {

// --------------------------- DMS (Directory Metadata Server) ---------------
enum DmsOp : std::uint16_t {
  // [path, mode u32, Identity, ts u64] -> []
  kDmsMkdir = 1,
  // [path, Identity, check_files u8] -> [] ; check_files=1 requires the
  // caller to have already verified FMS emptiness (protocol contract).
  kDmsRmdir = 2,
  // Lookup a directory for use as a parent: checks exec on ancestors and
  // `want` bits on the target; optionally rejects when `shadow_name` exists
  // as a subdirectory (namespace unification).  The reply carries the
  // subdirectory names so lease holders keep enforcing the shadow check
  // locally for the lease lifetime.
  // [path, Identity, want u32, shadow_name] -> [Attr, subdir_names]
  kDmsLookup = 3,
  // [path, Identity] -> [Attr]
  kDmsStat = 4,
  // [path, Identity] -> [Attr of dir, entries] (subdirectories only)
  kDmsReaddir = 5,
  // [path, Identity, mode u32, ts u64] -> []
  kDmsChmod = 6,
  // [path, Identity, uid u32, gid u32, ts u64] -> []
  kDmsChown = 7,
  // [path, Identity, mtime u64, atime u64] -> []
  kDmsUtimens = 8,
  // [path, Identity, want u32] -> []
  kDmsAccess = 9,
  // Directory rename: relocates the whole subtree of d-inodes (B+-tree range
  // move, §3.4.3).  [from, to, Identity] -> [moved u64]
  kDmsRename = 10,
};

// ------------------------------ FMS (File Metadata Server) -----------------
enum FmsOp : std::uint16_t {
  // [dir_uuid, name, mode u32, Identity, ts u64] -> [file_uuid]
  kFmsCreate = 32,
  // [dir_uuid, name, Identity] -> [file_uuid]  (caller already holds parent-W)
  kFmsRemove = 33,
  // [dir_uuid, name] -> [Attr]
  kFmsGetAttr = 34,
  // [dir_uuid, name, Identity] -> [Attr] ; requires read permission
  kFmsOpen = 35,
  // [dir_uuid, name, Identity, mode u32, ts u64] -> []
  kFmsChmod = 36,
  // [dir_uuid, name, Identity, uid u32, gid u32, ts u64] -> []
  kFmsChown = 37,
  // [dir_uuid, name, Identity, mtime u64, atime u64] -> []
  kFmsUtimens = 38,
  // [dir_uuid, name, Identity, want u32] -> []
  kFmsAccess = 39,
  // Write-path metadata update: size = max(size, end) (or exact when
  // truncate u8 = 1), mtime = ts.  [dir_uuid, name, Identity, end u64,
  // truncate u8, ts u64] -> [file_uuid, new_size u64]
  kFmsSetSize = 40,
  // Read-path: atime = ts.  [dir_uuid, name, Identity, ts u64]
  //   -> [file_uuid, size u64]
  kFmsSetAtime = 41,
  // [dir_uuid] -> [entries] ; file entries hashed to this server
  kFmsReaddir = 42,
  // [dir_uuid] -> [] ; kNotEmpty if any file of this directory lives here
  kFmsCheckEmpty = 43,
  // Relocation support for f-rename: raw fixed-layout parts move between
  // servers without interpretation.
  // [dir_uuid, name] -> [access_raw, content_raw]
  kFmsReadRaw = 44,
  // [dir_uuid, name, access_raw, content_raw] -> []
  kFmsInsertRaw = 45,
};

// ----------------------------------- Object store --------------------------
enum ObjOp : std::uint16_t {
  // [uuid, offset u64, data] -> []
  kObjWrite = 64,
  // [uuid, offset u64, length u64, size_hint u64] -> [data]
  kObjRead = 65,
  // [uuid, size u64] -> [] ; drop blocks beyond size
  kObjTruncate = 66,
};

}  // namespace loco::core::proto
