#include "core/connect.h"

#include <unistd.h>

#include <atomic>
#include <utility>

#include "common/clock.h"

namespace loco::core {

namespace {

// Process-unique, cross-process-unlikely-to-collide mount identity: the DMS
// keys notify sessions and lease watches by it, and distinct client processes
// on one host must not alias.  0 is reserved for "anonymous".
std::uint64_t NextClientId() {
  static const std::uint64_t base =
      (static_cast<std::uint64_t>(::getpid()) << 48) |
      ((static_cast<std::uint64_t>(common::WallClockNs()) << 16) &
       0x0000ffffffff0000ull);
  static std::atomic<std::uint64_t> counter{0};
  return base | (counter.fetch_add(1, std::memory_order_relaxed) + 1);
}

}  // namespace

Result<ClientOptions> ClientOptions::FromSpec(std::string_view spec) {
  ClientOptions opts;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Status(ErrCode::kInvalid,
                    "connect spec entry '" + std::string(entry) +
                        "' is not role=host:port");
    }
    const std::string_view role = entry.substr(0, eq);
    const std::string_view addr = entry.substr(eq + 1);
    std::string host;
    std::uint16_t port = 0;
    if (!net::ParseHostPort(addr, &host, &port)) {
      return Status(ErrCode::kInvalid,
                    "bad host:port '" + std::string(addr) + "' for role '" +
                        std::string(role) + "'");
    }
    if (role == "dms") {
      opts.dms.emplace_back(addr);
    } else if (role == "fms") {
      opts.fms.emplace_back(addr);
    } else if (role == "osd") {
      opts.object_stores.emplace_back(addr);
    } else {
      return Status(ErrCode::kInvalid,
                    "unknown role '" + std::string(role) + "' (dms|fms|osd)");
    }
  }
  if (opts.dms.empty()) {
    return Status(ErrCode::kInvalid,
                  "connect spec needs at least one dms=host:port");
  }
  if (opts.fms.empty()) {
    return Status(ErrCode::kInvalid, "connect spec needs at least one fms=");
  }
  if (opts.object_stores.empty()) {
    return Status(ErrCode::kInvalid, "connect spec needs at least one osd=");
  }
  return opts;
}

std::unique_ptr<fs::FileSystemClient> MountHandle::MakeClient(
    fs::TimeFn now) const {
  LocoClient::Config cfg = config;
  cfg.now = std::move(now);
  return std::make_unique<LocoClient>(rpc(), cfg);
}

Result<MountHandle> Connect(const ClientOptions& options) {
  MountHandle m;
  m.client_id = NextClientId();

  net::TcpChannelOptions channel_options = options.channel;
  channel_options.client_id = m.client_id;
  // Pooled RPC connections never advertise kFeatureNotify: the notify stream
  // belongs on the listener's dedicated connection.
  channel_options.features = 0;
  m.channel = std::make_unique<net::TcpChannel>(channel_options);

  const auto register_node = [&](net::NodeId id,
                                 const std::string& addr) -> Status {
    if (!m.channel->Register(id, addr)) {
      return Status(ErrCode::kInvalid, "bad endpoint '" + addr + "'");
    }
    return Status::Ok();
  };

  // DMS shard node ids: shard 0 keeps the historic id 0 (single-shard specs
  // stay wire-compatible with old deployments); shards 1..N-1 get 900+i,
  // below the object-store range and above any realistic FMS count.
  const auto dms_node = [](std::size_t shard) -> net::NodeId {
    return shard == 0 ? 0 : static_cast<net::NodeId>(900 + shard);
  };
  m.config.dms.clear();
  for (std::size_t i = 0; i < options.dms.size(); ++i) {
    LOCO_RETURN_IF_ERROR(register_node(dms_node(i), options.dms[i]));
    m.config.dms.push_back(dms_node(i));
  }
  for (std::size_t i = 0; i < options.fms.size(); ++i) {
    const net::NodeId id = static_cast<net::NodeId>(1 + i);
    LOCO_RETURN_IF_ERROR(register_node(id, options.fms[i]));
    m.config.fms.push_back(id);
  }
  for (std::size_t i = 0; i < options.object_stores.size(); ++i) {
    const net::NodeId id = static_cast<net::NodeId>(1000 + i);
    LOCO_RETURN_IF_ERROR(register_node(id, options.object_stores[i]));
    m.config.object_stores.push_back(id);
  }
  m.config.cache_enabled = options.cache_enabled && options.lease_ns > 0;
  m.config.lease_ns = options.lease_ns;

  if (options.resilience) {
    m.resilient = std::make_unique<net::ResilientChannel>(
        m.channel.get(), options.resilience_options);
  }

  if (options.notify) {
    m.fanout = std::make_shared<NotifyFanout>();
    m.config.fanout = m.fanout;
    // One listener per DMS shard: each shard pushes invalidations for the
    // directories it owns, and all streams feed the one shared fanout.
    for (std::size_t i = 0; i < options.dms.size(); ++i) {
      net::NotifyListener::Options lo;
      if (!net::ParseHostPort(options.dms[i], &lo.host, &lo.port)) {
        return Status(ErrCode::kInvalid,
                      "bad endpoint '" + options.dms[i] + "'");
      }
      lo.client_id = m.client_id;
      // The whole mount shares the channel's reactor thread: pooled RPC
      // connections and every notify stream wait on the same epoll instance.
      lo.reactor = &m.channel->reactor();
      // The callback runs on the listener's reader thread.  It captures the
      // fanout by shared_ptr and the resilient channel by raw pointer — both
      // heap-stable across MountHandle moves.
      std::shared_ptr<NotifyFanout> fanout = m.fanout;
      net::ResilientChannel* resilient = m.resilient.get();
      const net::NodeId shard_node = dms_node(i);
      auto callback = [fanout, resilient,
                       shard_node](const net::NotifyEvent& event) {
        switch (event.kind) {
          case net::NotifyEvent::Kind::kInvalidate:
            fanout->Invalidate(event.invalidate.path, event.invalidate.subtree,
                               event.invalidate.wall_ts_ns);
            break;
          case net::NotifyEvent::Kind::kServerUp:
            if (resilient != nullptr) {
              resilient->NotifyServerUp(event.server_up.node);
            }
            break;
          case net::NotifyEvent::Kind::kResync:
            // Missed pushes are possible: drop cached state.  Reaching the
            // hello also proves this shard is back, so close its breaker.
            fanout->Resync();
            if (resilient != nullptr) resilient->NotifyServerUp(shard_node);
            break;
          case net::NotifyEvent::Kind::kStreamDown:
            break;  // leases stay authoritative; nothing to do
        }
      };
      m.listeners.push_back(
          std::make_unique<net::NotifyListener>(lo, std::move(callback)));
      LOCO_RETURN_IF_ERROR(m.listeners.back()->Start());
    }
  }
  return m;
}

}  // namespace loco::core
