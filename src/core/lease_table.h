// Server-side lease/watch bookkeeping for the DMS push plane (docs/LEASES.md).
//
// Every kDmsLookup that carries a client identity registers a watch: "client C
// holds a lease on directory P until now + lease_ns".  When a mutation changes
// P (or, for rename, a whole subtree), the DMS collects the live watchers and
// pushes wire::kNotifyInvalidate to each of them — shrinking the remote-writer
// staleness window from the full lease term to roughly one RTT.  The lease
// timeout itself stays authoritative: a client that misses the push (stream
// down, frame dropped) is still correct, just slower to notice.
//
// The table is bounded: at most `max_watches` live entries.  When a grant
// would exceed the bound, expired watches are swept first; if the table is
// still full the soonest-to-expire watch is evicted (its holder merely loses
// the push and falls back to the lease timeout, so eviction is always safe).
//
// Thread safety: all methods take an internal mutex; DMS handlers call in
// from many TcpServer workers at once.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace loco::core {

class LeaseTable {
 public:
  struct Options {
    // Lease term granted to a Lookup; must match the client's cache TTL.
    std::uint64_t lease_ns = 30ull * 1'000'000'000;
    // Upper bound on live (path, client) watches.
    std::size_t max_watches = 65536;
    // Invoked when a *live* watch is evicted to make room at the cap.  The
    // evicted holder believed it would be pushed an invalidation for `path`;
    // since that promise is now broken, the owner (the DMS) must push a
    // synthetic invalidation so the client resyncs instead of serving a
    // stale entry until its lease times out.  Expired watches are swept
    // without a callback — their holders already fell back to the timeout.
    // Called with no internal lock held (safe to re-enter the table).
    std::function<void(const std::string& path, std::uint64_t client)> on_evict;
  };

  LeaseTable() : LeaseTable(Options()) {}
  explicit LeaseTable(Options options) : options_(options) {}

  // Record that `client` leased `path` at steady-clock instant `now`.
  // Re-granting refreshes the expiry.
  void Grant(const std::string& path, std::uint64_t client, std::uint64_t now);

  // Collect the live watchers of `path` — plus every path strictly under it
  // when `subtree` — excluding `exclude`, and *consume* their watches (an
  // invalidated lease is void; the holder re-leases on its next Lookup).
  // Expired watches encountered along the way are dropped, not returned.
  std::vector<std::uint64_t> Collect(const std::string& path, bool subtree,
                                     std::uint64_t exclude, std::uint64_t now);

  // Forget every watch of `client` (its push stream is gone, so pushes to it
  // can no longer be delivered).
  void Drop(std::uint64_t client);

  // Live watch count (expired-but-unswept entries included).
  std::size_t size() const;

  std::uint64_t lease_ns() const noexcept { return options_.lease_ns; }

 private:
  struct ExpiryKey {
    std::string path;
    std::uint64_t client = 0;
  };

  // Caller holds mu_.  Removes the watch and its by-expiry twin.
  void EraseLocked(const std::string& path, std::uint64_t client,
                   std::uint64_t expiry);
  // Caller holds mu_.  Frees at least one slot: sweep expired watches, then
  // evict the soonest-to-expire live one.  Live evictions are appended to
  // `evicted` so the caller can fire on_evict after releasing mu_.
  void MakeRoomLocked(
      std::uint64_t now,
      std::vector<std::pair<std::string, std::uint64_t>>* evicted);

  const Options options_;
  mutable std::mutex mu_;
  // path -> {client -> expiry}; ordered so rename subtree invalidation is a
  // prefix range scan, mirroring the B+-tree range move it reacts to.
  std::map<std::string, std::map<std::uint64_t, std::uint64_t>> watches_;
  // expiry -> (path, client) for bounded-size eviction.  Entries go stale
  // when a watch is refreshed or consumed; lazily skipped on pop.
  std::multimap<std::uint64_t, ExpiryKey> by_expiry_;
  std::size_t count_ = 0;
};

}  // namespace loco::core
