#include "core/fms.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "common/clock.h"
#include "common/codec.h"
#include "common/hash.h"
#include "core/proto.h"
#include "fs/wire.h"
#include "kvstore/striped_kv.h"
#include "net/wire.h"

namespace loco::core {

namespace {

net::RpcResponse Fail(ErrCode code) { return net::RpcResponse{code, {}}; }
net::RpcResponse Ok() { return net::RpcResponse{}; }
net::RpcResponse OkPayload(std::string payload) {
  return net::RpcResponse{ErrCode::kOk, std::move(payload)};
}
net::RpcResponse BadRequest() { return Fail(ErrCode::kCorruption); }

// Lock-table key for a file's (dir_uuid + name) KV key.
std::uint64_t FileLockKey(std::string_view key) {
  return common::WyMix(key, 0xfeed);
}

// Pinned scan snapshots kept per server; pinning beyond this evicts the
// oldest (a crashed fsck must not pin memory forever).
constexpr std::size_t kMaxSnapshots = 4;

// rpc.batch.* counters (docs/METRICS.md): batch frames served, sub-ops they
// carried, and sub-ops that failed while their siblings succeeded.
void CountBatch(std::size_t subops, std::size_t failed) {
  auto& reg = common::MetricsRegistry::Default();
  reg.GetCounter("rpc.batch.calls").Add();
  reg.GetCounter("rpc.batch.subops").Add(subops);
  if (failed > 0) reg.GetCounter("rpc.batch.partial_failures").Add(failed);
}

}  // namespace

FileMetadataServer::FileMetadataServer(const Options& options)
    : options_(options),
      sessions_([&options] {
        SessionTable::Options s = options.session;
        if (s.metrics_prefix.empty()) {
          s.metrics_prefix =
              "server.fms" + std::to_string(options.sid) + ".sessions";
        }
        return s;
      }()),
      op_metrics_(&common::MetricsRegistry::Default(),
                  "server.fms" + std::to_string(options.sid)) {
  auto& registry = common::MetricsRegistry::Default();
  const std::string gc_prefix = "gc.fms" + std::to_string(options_.sid);
  gc_i5_purged_ = &registry.GetCounter(gc_prefix + ".i5_orphans_purged");
  gc_i6_repaired_ = &registry.GetCounter(gc_prefix + ".i6_dirents_added");
  gc_i7_repaired_ = &registry.GetCounter(gc_prefix + ".i7_dirents_dropped");
  // Per-store subdirectories keep the WALs of the co-located stores apart.
  auto sub_options = [&](const char* name) {
    kv::KvOptions opt = options_.kv;
    if (!opt.dir.empty()) {
      opt.dir += "/";
      opt.dir += name;
      std::error_code ec;
      std::filesystem::create_directories(opt.dir, ec);
    }
    return opt;
  };
  if (options_.decoupled) {
    access_ = std::move(kv::MakeStripedKv(options_.backend, sub_options("access"),
                                          options_.kv_stripes))
                  .value();
    content_ = std::move(kv::MakeStripedKv(options_.backend,
                                           sub_options("content"),
                                           options_.kv_stripes))
                   .value();
  } else {
    coupled_ = std::move(kv::MakeStripedKv(options_.backend,
                                           sub_options("coupled"),
                                           options_.kv_stripes))
                   .value();
  }
  dirents_ = std::move(kv::MakeStripedKv(kv::KvBackend::kHash,
                                         sub_options("dirents"),
                                         options_.kv_stripes))
                 .value();
  if (options_.kv_decorator) {
    if (access_) access_ = options_.kv_decorator(std::move(access_));
    if (content_) content_ = options_.kv_decorator(std::move(content_));
    if (coupled_) coupled_ = options_.kv_decorator(std::move(coupled_));
    dirents_ = options_.kv_decorator(std::move(dirents_));
  }
  // Recover the fid allocator from the content parts (uuid field) so a
  // restarted server never reissues a live fid.
  std::uint64_t max_fid = 0;
  auto scan = [&max_fid](std::string_view, std::string_view value) {
    const fs::Uuid uuid(
        common::LoadAt<std::uint64_t>(value, ContentPartLayout::kUuid));
    max_fid = std::max(max_fid, uuid.fid());
    return true;
  };
  if (options_.decoupled) {
    content_->ForEach(scan);
  } else {
    coupled_->ForEach([&max_fid](std::string_view, std::string_view value) {
      CoupledInode inode;
      if (CoupledInode::Deserialize(value, &inode)) {
        max_fid = std::max(max_fid, inode.attr.uuid.fid());
      }
      return true;
    });
  }
  next_fid_ = max_fid + 1;

  kv_gauges_ = kv::RegisterKvStatsGauges(
      &common::MetricsRegistry::Default(),
      "server.fms" + std::to_string(options_.sid) + ".kv",
      [this] { return StoreStats(); });
}

std::size_t FileMetadataServer::FileCount() const {
  return options_.decoupled ? access_->Size() : coupled_->Size();
}

kv::KvStats FileMetadataServer::StoreStats() const {
  kv::KvStats total = dirents_->stats();
  if (options_.decoupled) {
    total = total + access_->stats() + content_->stats();
  } else {
    total = total + coupled_->stats();
  }
  return total;
}

Result<fs::Attr> FileMetadataServer::GetAttrInternal(const std::string& key) const {
  if (options_.decoupled) {
    std::string access, content;
    LOCO_RETURN_IF_ERROR(access_->Get(key, &access));
    LOCO_RETURN_IF_ERROR(content_->Get(key, &content));
    return ParseFileParts(access, content);
  }
  std::string value;
  LOCO_RETURN_IF_ERROR(coupled_->Get(key, &value));
  CoupledInode inode;
  if (!CoupledInode::Deserialize(value, &inode)) {
    return ErrStatus(ErrCode::kCorruption);
  }
  return inode.attr;
}

net::RpcResponse FileMetadataServer::Handle(std::uint16_t opcode,
                                            std::string_view payload) {
  return HandleCtx(opcode, payload, net::HandlerContext{});
}

net::RpcResponse FileMetadataServer::HandleCtx(std::uint16_t opcode,
                                               std::string_view payload,
                                               const net::HandlerContext& ctx) {
  const common::ServerOpCounters::PerOp& m = op_metrics_.For(opcode);
  m.calls->Add();
  if (ctx.client_id != 0) {
    // Any traffic from an identified client is its session heartbeat.
    sessions_.Touch(ctx.client_id,
                    static_cast<std::uint64_t>(common::CpuTimer::Now()));
  }
  net::RpcResponse resp = Dispatch(opcode, payload, ctx.client_id);
  if (resp.code != ErrCode::kOk) m.errors->Add();
  return resp;
}

net::RpcResponse FileMetadataServer::Dispatch(std::uint16_t opcode,
                                              std::string_view payload,
                                              std::uint64_t client) {
  // Snapshot pinning excludes every other handler so the materialized cut is
  // a point in time; everything else proceeds concurrently under the shared
  // side (the per-dir and per-file lock tables do the fine-grained work).
  if (opcode == proto::kCtlSnapshotBegin) {
    std::unique_lock scan(scan_mu_);
    return SnapshotBegin();
  }
  std::shared_lock scan(scan_mu_);
  switch (opcode) {
    case proto::kFmsCreate: return Create(payload, client);
    case proto::kFmsRemove: return Remove(payload);
    case proto::kFmsGetAttr: return GetAttr(payload);
    case proto::kFmsOpen: return Open(payload, client);
    case proto::kFmsChmod: return Chmod(payload);
    case proto::kFmsChown: return Chown(payload);
    case proto::kFmsUtimens: return Utimens(payload);
    case proto::kFmsAccess: return Access(payload);
    case proto::kFmsSetSize: return SetSize(payload);
    case proto::kFmsSetAtime: return SetAtime(payload);
    case proto::kFmsReaddir: return Readdir(payload);
    case proto::kFmsBatchCreate: return BatchCreate(payload, client);
    case proto::kFmsBatchStat: return BatchStat(payload);
    case proto::kFmsBatchSetSize: return BatchSetSize(payload);
    case proto::kFmsReaddirPlus: return ReaddirPlus(payload);
    case proto::kFmsCheckEmpty: return CheckEmpty(payload);
    case proto::kFmsReadRaw: return ReadRaw(payload);
    case proto::kFmsInsertRaw: return InsertRaw(payload);
    case proto::kFmsScanFiles: return ScanFiles(payload);
    case proto::kFmsScanDirents: return ScanDirents(payload);
    case proto::kFmsRepairDirent: return RepairDirent(payload);
    case proto::kFmsPurgeFile: return PurgeFile(payload);
    case proto::kFmsCheckUuids: return CheckUuids(payload);
    case proto::kFmsOpenSession: return OpenSession(payload, client);
    case proto::kFmsCloseSession: return CloseSession(payload, client);
    case proto::kCtlSessionList: return SessionList();
    case proto::kCtlGcStatus: return GcStatus();
    case proto::kCtlSnapshotEnd: return SnapshotEnd(payload);
    default: return Fail(ErrCode::kUnsupported);
  }
}

Status FileMetadataServer::AppendToDirent(fs::Uuid dir_uuid,
                                          std::string_view name) {
  const std::string key = DirentKey(dir_uuid);
  std::string value;
  (void)dirents_->Get(key, &value);
  AppendDirent(&value, name);
  return dirents_->Put(key, value);
}

void FileMetadataServer::RemoveFromDirent(fs::Uuid dir_uuid,
                                          std::string_view name) {
  const std::string key = DirentKey(dir_uuid);
  std::string value;
  if (!dirents_->Get(key, &value).ok()) return;
  if (RemoveDirent(&value, name)) {
    if (value.empty()) {
      (void)dirents_->Delete(key);
    } else {
      (void)dirents_->Put(key, value);
    }
  }
}

net::RpcResponse FileMetadataServer::Create(std::string_view payload,
                                            std::uint64_t client) {
  fs::Uuid dir_uuid;
  std::string name;
  std::uint32_t mode = 0;
  fs::Identity who;
  std::uint64_t ts = 0;
  if (!fs::Unpack(payload, dir_uuid, name, mode, who, ts)) return BadRequest();
  const std::string key = FileKey(dir_uuid, name);
  const fs::Uuid uuid = fs::Uuid::Make(
      options_.sid, next_fid_.fetch_add(1, std::memory_order_relaxed));
  // Serialize against same-directory creates/removes: the existence check,
  // the inode puts, and the dirent-list RMW must be one atomic step.
  const auto guard = dir_locks_.Lock(dir_uuid.raw());

  if (options_.decoupled) {
    if (access_->Contains(key)) return Fail(ErrCode::kExists);
    // Content part before access part: the access part is the existence
    // marker (Contains and GetAttrInternal consult it first), so an
    // interrupted create must never leave an access part whose content
    // read then errors.
    if (!content_->Put(key, ContentPartLayout::Make(ts, ts, 0, 4096, uuid))
             .ok()) {
      return Fail(ErrCode::kIo);
    }
    if (!access_->Put(key, AccessPartLayout::Make(ts, mode, who.uid, who.gid))
             .ok()) {
      (void)content_->Delete(key);
      return Fail(ErrCode::kIo);
    }
  } else {
    if (coupled_->Contains(key)) return Fail(ErrCode::kExists);
    CoupledInode inode;
    inode.attr.ctime = inode.attr.mtime = inode.attr.atime = ts;
    inode.attr.mode = mode;
    inode.attr.uid = who.uid;
    inode.attr.gid = who.gid;
    inode.attr.block_size = 4096;
    inode.attr.uuid = uuid;
    inode.name = name;
    if (!coupled_->Put(key, inode.Serialize()).ok()) return Fail(ErrCode::kIo);
  }
  if (!AppendToDirent(dir_uuid, name).ok()) {
    // Roll back the inode: a file absent from its dirent list would survive
    // as an orphan invisible to Readdir yet blocking future creates.
    if (options_.decoupled) {
      (void)access_->Delete(key);
      (void)content_->Delete(key);
    } else {
      (void)coupled_->Delete(key);
    }
    return Fail(ErrCode::kIo);
  }
  if (client != 0) {
    // Implicit (non-exclusive) session for the creator; refusal is
    // impossible to act on here — the file already exists — so ignore it.
    (void)sessions_.Open(dir_uuid, name, client, false,
                         static_cast<std::uint64_t>(common::CpuTimer::Now()));
  }
  return OkPayload(fs::Pack(uuid));
}

net::RpcResponse FileMetadataServer::Remove(std::string_view payload) {
  fs::Uuid dir_uuid;
  std::string name;
  fs::Identity who;
  if (!fs::Unpack(payload, dir_uuid, name, who)) return BadRequest();
  const std::string key = FileKey(dir_uuid, name);
  const auto guard = dir_locks_.Lock(dir_uuid.raw());
  auto attr = GetAttrInternal(key);
  if (!attr.ok()) return Fail(attr.code());
  if (options_.decoupled) {
    (void)access_->Delete(key);
    (void)content_->Delete(key);
  } else {
    (void)coupled_->Delete(key);
  }
  RemoveFromDirent(dir_uuid, name);
  sessions_.DropFile(dir_uuid, name);
  return OkPayload(fs::Pack(attr->uuid));
}

net::RpcResponse FileMetadataServer::GetAttr(std::string_view payload) {
  fs::Uuid dir_uuid;
  std::string name;
  if (!fs::Unpack(payload, dir_uuid, name)) return BadRequest();
  auto attr = GetAttrInternal(FileKey(dir_uuid, name));
  if (!attr.ok()) return Fail(attr.code());
  return OkPayload(fs::Pack(*attr));
}

net::RpcResponse FileMetadataServer::Open(std::string_view payload,
                                          std::uint64_t client) {
  fs::Uuid dir_uuid;
  std::string name;
  fs::Identity who;
  if (!fs::Unpack(payload, dir_uuid, name, who)) return BadRequest();
  auto attr = GetAttrInternal(FileKey(dir_uuid, name));
  if (!attr.ok()) return Fail(attr.code());
  if (!fs::CheckPermission(who, attr->mode, attr->uid, attr->gid,
                           fs::kModeRead)) {
    return Fail(ErrCode::kPermission);
  }
  if (client != 0) {
    (void)sessions_.Open(dir_uuid, name, client, false,
                         static_cast<std::uint64_t>(common::CpuTimer::Now()));
  }
  return OkPayload(fs::Pack(*attr));
}

net::RpcResponse FileMetadataServer::Chmod(std::string_view payload) {
  fs::Uuid dir_uuid;
  std::string name;
  fs::Identity who;
  std::uint32_t mode = 0;
  std::uint64_t ts = 0;
  if (!fs::Unpack(payload, dir_uuid, name, who, mode, ts)) return BadRequest();
  const std::string key = FileKey(dir_uuid, name);
  const auto guard = file_locks_.Lock(FileLockKey(key));

  if (options_.decoupled) {
    // Access-part only (Table 1): read 24 bytes, patch 12.
    std::string access;
    if (!access_->Get(key, &access).ok()) return Fail(ErrCode::kNotFound);
    const std::uint32_t owner =
        common::LoadAt<std::uint32_t>(access, AccessPartLayout::kUid);
    if (who.uid != 0 && who.uid != owner) return Fail(ErrCode::kPermission);
    std::string patch(12, '\0');
    common::StoreAt<std::uint64_t>(&patch, 0, ts);
    common::StoreAt<std::uint32_t>(&patch, 8, mode);
    (void)access_->PatchValue(key, AccessPartLayout::kCtime, patch);
    return Ok();
  }
  std::string value;
  if (!coupled_->Get(key, &value).ok()) return Fail(ErrCode::kNotFound);
  CoupledInode inode;
  if (!CoupledInode::Deserialize(value, &inode)) return Fail(ErrCode::kCorruption);
  if (who.uid != 0 && who.uid != inode.attr.uid) return Fail(ErrCode::kPermission);
  inode.attr.mode = mode;
  inode.attr.ctime = ts;
  (void)coupled_->Put(key, inode.Serialize());
  return Ok();
}

net::RpcResponse FileMetadataServer::Chown(std::string_view payload) {
  fs::Uuid dir_uuid;
  std::string name;
  fs::Identity who;
  std::uint32_t uid = 0, gid = 0;
  std::uint64_t ts = 0;
  if (!fs::Unpack(payload, dir_uuid, name, who, uid, gid, ts)) return BadRequest();
  const std::string key = FileKey(dir_uuid, name);
  const auto guard = file_locks_.Lock(FileLockKey(key));

  if (options_.decoupled) {
    std::string access;
    if (!access_->Get(key, &access).ok()) return Fail(ErrCode::kNotFound);
    const std::uint32_t owner =
        common::LoadAt<std::uint32_t>(access, AccessPartLayout::kUid);
    if (who.uid != 0 && !(who.uid == owner && uid == owner)) {
      return Fail(ErrCode::kPermission);
    }
    std::string ids(8, '\0');
    common::StoreAt<std::uint32_t>(&ids, 0, uid);
    common::StoreAt<std::uint32_t>(&ids, 4, gid);
    (void)access_->PatchValue(key, AccessPartLayout::kUid, ids);
    std::string ctime(8, '\0');
    common::StoreAt<std::uint64_t>(&ctime, 0, ts);
    (void)access_->PatchValue(key, AccessPartLayout::kCtime, ctime);
    return Ok();
  }
  std::string value;
  if (!coupled_->Get(key, &value).ok()) return Fail(ErrCode::kNotFound);
  CoupledInode inode;
  if (!CoupledInode::Deserialize(value, &inode)) return Fail(ErrCode::kCorruption);
  if (who.uid != 0 && !(who.uid == inode.attr.uid && uid == inode.attr.uid)) {
    return Fail(ErrCode::kPermission);
  }
  inode.attr.uid = uid;
  inode.attr.gid = gid;
  inode.attr.ctime = ts;
  (void)coupled_->Put(key, inode.Serialize());
  return Ok();
}

net::RpcResponse FileMetadataServer::Utimens(std::string_view payload) {
  fs::Uuid dir_uuid;
  std::string name;
  fs::Identity who;
  std::uint64_t mtime = 0, atime = 0;
  if (!fs::Unpack(payload, dir_uuid, name, who, mtime, atime)) return BadRequest();
  const std::string key = FileKey(dir_uuid, name);
  const auto guard = file_locks_.Lock(FileLockKey(key));
  auto attr = GetAttrInternal(key);
  if (!attr.ok()) return Fail(attr.code());
  if (who.uid != 0 && who.uid != attr->uid &&
      !fs::CheckPermission(who, attr->mode, attr->uid, attr->gid,
                           fs::kModeWrite)) {
    return Fail(ErrCode::kPermission);
  }
  if (options_.decoupled) {
    std::string times(16, '\0');
    common::StoreAt<std::uint64_t>(&times, 0, mtime);
    common::StoreAt<std::uint64_t>(&times, 8, atime);
    (void)content_->PatchValue(key, ContentPartLayout::kMtime, times);
    return Ok();
  }
  std::string value;
  (void)coupled_->Get(key, &value);
  CoupledInode inode;
  if (!CoupledInode::Deserialize(value, &inode)) return Fail(ErrCode::kCorruption);
  inode.attr.mtime = mtime;
  inode.attr.atime = atime;
  (void)coupled_->Put(key, inode.Serialize());
  return Ok();
}

net::RpcResponse FileMetadataServer::Access(std::string_view payload) {
  fs::Uuid dir_uuid;
  std::string name;
  fs::Identity who;
  std::uint32_t want = 0;
  if (!fs::Unpack(payload, dir_uuid, name, who, want)) return BadRequest();
  const std::string key = FileKey(dir_uuid, name);
  if (options_.decoupled) {
    // Access part alone answers permission queries (Table 1).
    std::string access;
    if (!access_->Get(key, &access).ok()) return Fail(ErrCode::kNotFound);
    const auto mode = common::LoadAt<std::uint32_t>(access, AccessPartLayout::kMode);
    const auto uid = common::LoadAt<std::uint32_t>(access, AccessPartLayout::kUid);
    const auto gid = common::LoadAt<std::uint32_t>(access, AccessPartLayout::kGid);
    if (!fs::CheckPermission(who, mode, uid, gid, want)) {
      return Fail(ErrCode::kPermission);
    }
    return Ok();
  }
  auto attr = GetAttrInternal(key);
  if (!attr.ok()) return Fail(attr.code());
  if (!fs::CheckPermission(who, attr->mode, attr->uid, attr->gid, want)) {
    return Fail(ErrCode::kPermission);
  }
  return Ok();
}

net::RpcResponse FileMetadataServer::SetSize(std::string_view payload) {
  fs::Uuid dir_uuid;
  std::string name;
  fs::Identity who;
  std::uint64_t end = 0;
  std::uint8_t truncate = 0;
  std::uint64_t ts = 0;
  if (!fs::Unpack(payload, dir_uuid, name, who, end, truncate, ts)) {
    return BadRequest();
  }
  const std::string key = FileKey(dir_uuid, name);
  // Read-modify-write of the size field: serialize per file so concurrent
  // extending writes never regress the size.
  const auto guard = file_locks_.Lock(FileLockKey(key));

  if (options_.decoupled) {
    std::string access;
    if (!access_->Get(key, &access).ok()) return Fail(ErrCode::kNotFound);
    const auto mode = common::LoadAt<std::uint32_t>(access, AccessPartLayout::kMode);
    const auto uid = common::LoadAt<std::uint32_t>(access, AccessPartLayout::kUid);
    const auto gid = common::LoadAt<std::uint32_t>(access, AccessPartLayout::kGid);
    if (!fs::CheckPermission(who, mode, uid, gid, fs::kModeWrite)) {
      return Fail(ErrCode::kPermission);
    }
    // Content part: read only the size and uuid fields, patch mtime + size.
    std::string size_bytes, uuid_bytes;
    (void)content_->ReadValueAt(key, ContentPartLayout::kFileSize, 8, &size_bytes);
    (void)content_->ReadValueAt(key, ContentPartLayout::kUuid, 8, &uuid_bytes);
    const std::uint64_t old_size = common::LoadAt<std::uint64_t>(size_bytes, 0);
    const std::uint64_t new_size = truncate ? end : std::max(old_size, end);
    std::string mtime(8, '\0');
    common::StoreAt<std::uint64_t>(&mtime, 0, ts);
    (void)content_->PatchValue(key, ContentPartLayout::kMtime, mtime);
    std::string size_patch(8, '\0');
    common::StoreAt<std::uint64_t>(&size_patch, 0, new_size);
    (void)content_->PatchValue(key, ContentPartLayout::kFileSize, size_patch);
    return OkPayload(fs::Pack(fs::Uuid(common::LoadAt<std::uint64_t>(uuid_bytes, 0)),
                              new_size));
  }

  std::string value;
  if (!coupled_->Get(key, &value).ok()) return Fail(ErrCode::kNotFound);
  CoupledInode inode;
  if (!CoupledInode::Deserialize(value, &inode)) return Fail(ErrCode::kCorruption);
  if (!fs::CheckPermission(who, inode.attr.mode, inode.attr.uid, inode.attr.gid,
                           fs::kModeWrite)) {
    return Fail(ErrCode::kPermission);
  }
  const std::uint64_t new_size =
      truncate ? end : std::max(inode.attr.size, end);
  inode.attr.size = new_size;
  inode.attr.mtime = ts;
  // Coupled mode keeps per-block indexing metadata (what §3.3.2 removes):
  // maintain one index entry per block of the new size.
  const std::uint64_t blocks =
      (new_size + inode.attr.block_size - 1) / inode.attr.block_size;
  inode.block_index.resize(blocks);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    inode.block_index[b] = inode.attr.uuid.raw() ^ b;
  }
  (void)coupled_->Put(key, inode.Serialize());
  return OkPayload(fs::Pack(inode.attr.uuid, new_size));
}

net::RpcResponse FileMetadataServer::SetAtime(std::string_view payload) {
  fs::Uuid dir_uuid;
  std::string name;
  fs::Identity who;
  std::uint64_t ts = 0;
  if (!fs::Unpack(payload, dir_uuid, name, who, ts)) return BadRequest();
  const std::string key = FileKey(dir_uuid, name);
  const auto guard = file_locks_.Lock(FileLockKey(key));

  if (options_.decoupled) {
    std::string access;
    if (!access_->Get(key, &access).ok()) return Fail(ErrCode::kNotFound);
    const auto mode = common::LoadAt<std::uint32_t>(access, AccessPartLayout::kMode);
    const auto uid = common::LoadAt<std::uint32_t>(access, AccessPartLayout::kUid);
    const auto gid = common::LoadAt<std::uint32_t>(access, AccessPartLayout::kGid);
    if (!fs::CheckPermission(who, mode, uid, gid, fs::kModeRead)) {
      return Fail(ErrCode::kPermission);
    }
    std::string atime(8, '\0');
    common::StoreAt<std::uint64_t>(&atime, 0, ts);
    (void)content_->PatchValue(key, ContentPartLayout::kAtime, atime);
    std::string size_bytes, uuid_bytes;
    (void)content_->ReadValueAt(key, ContentPartLayout::kFileSize, 8, &size_bytes);
    (void)content_->ReadValueAt(key, ContentPartLayout::kUuid, 8, &uuid_bytes);
    return OkPayload(fs::Pack(fs::Uuid(common::LoadAt<std::uint64_t>(uuid_bytes, 0)),
                              common::LoadAt<std::uint64_t>(size_bytes, 0)));
  }

  std::string value;
  if (!coupled_->Get(key, &value).ok()) return Fail(ErrCode::kNotFound);
  CoupledInode inode;
  if (!CoupledInode::Deserialize(value, &inode)) return Fail(ErrCode::kCorruption);
  if (!fs::CheckPermission(who, inode.attr.mode, inode.attr.uid, inode.attr.gid,
                           fs::kModeRead)) {
    return Fail(ErrCode::kPermission);
  }
  inode.attr.atime = ts;
  (void)coupled_->Put(key, inode.Serialize());
  return OkPayload(fs::Pack(inode.attr.uuid, inode.attr.size));
}

net::RpcResponse FileMetadataServer::Readdir(std::string_view payload) {
  fs::Uuid dir_uuid;
  if (!fs::Unpack(payload, dir_uuid)) return BadRequest();
  std::string value;
  (void)dirents_->Get(DirentKey(dir_uuid), &value);
  std::vector<fs::DirEntry> entries;
  for (std::string& name : ParseDirentList(value)) {
    entries.push_back(fs::DirEntry{std::move(name), false});
  }
  return OkPayload(fs::Pack(entries));
}

net::RpcResponse FileMetadataServer::BatchCreate(std::string_view payload,
                                                 std::uint64_t client) {
  std::vector<std::string_view> subops;
  if (!net::wire::DecodeBatchRequest(payload, &subops)) return BadRequest();
  // Each sub-op reuses the single-op handler wholesale, so it takes the same
  // per-directory lock and the same content-before-access write order; a
  // duplicate name or I/O failure fails that entry alone.
  std::vector<net::wire::BatchItem> items;
  items.reserve(subops.size());
  std::size_t failed = 0;
  for (const std::string_view sub : subops) {
    net::RpcResponse r = Create(sub, client);
    if (r.code != ErrCode::kOk) ++failed;
    items.push_back(net::wire::BatchItem{r.code, std::move(r.payload)});
  }
  CountBatch(subops.size(), failed);
  return OkPayload(net::wire::EncodeBatchResponse(items));
}

net::RpcResponse FileMetadataServer::BatchStat(std::string_view payload) {
  std::vector<std::string_view> subops;
  if (!net::wire::DecodeBatchRequest(payload, &subops)) return BadRequest();
  std::vector<net::wire::BatchItem> items;
  items.reserve(subops.size());
  std::size_t failed = 0;
  for (const std::string_view sub : subops) {
    net::RpcResponse r = GetAttr(sub);
    if (r.code != ErrCode::kOk) ++failed;
    items.push_back(net::wire::BatchItem{r.code, std::move(r.payload)});
  }
  CountBatch(subops.size(), failed);
  return OkPayload(net::wire::EncodeBatchResponse(items));
}

net::RpcResponse FileMetadataServer::BatchSetSize(std::string_view payload) {
  std::vector<std::string_view> subops;
  if (!net::wire::DecodeBatchRequest(payload, &subops)) return BadRequest();
  // The metadata half of a bulk small-file ingest: each sub-op takes the
  // same per-file lock as a single SetSize, so the size-monotonicity
  // guarantee holds against concurrent writers.
  std::vector<net::wire::BatchItem> items;
  items.reserve(subops.size());
  std::size_t failed = 0;
  for (const std::string_view sub : subops) {
    net::RpcResponse r = SetSize(sub);
    if (r.code != ErrCode::kOk) ++failed;
    items.push_back(net::wire::BatchItem{r.code, std::move(r.payload)});
  }
  CountBatch(subops.size(), failed);
  return OkPayload(net::wire::EncodeBatchResponse(items));
}

net::RpcResponse FileMetadataServer::ReaddirPlus(std::string_view payload) {
  fs::Uuid dir_uuid;
  if (!fs::Unpack(payload, dir_uuid)) return BadRequest();
  std::string value;
  {
    // Snapshot the dirent list under the directory lock, then stat outside
    // it — a concurrent remove turns into a per-entry kNotFound, exactly
    // what a readdir+stat sequence could observe anyway.
    const auto guard = dir_locks_.Lock(dir_uuid.raw());
    (void)dirents_->Get(DirentKey(dir_uuid), &value);
  }
  std::vector<net::wire::BatchItem> items;
  std::size_t failed = 0;
  for (std::string& name : ParseDirentList(value)) {
    auto attr = GetAttrInternal(FileKey(dir_uuid, name));
    net::wire::BatchItem item;
    if (attr.ok()) {
      item.payload = fs::Pack(name, *attr);
    } else {
      item.code = attr.code();
      item.payload = fs::Pack(name);
      ++failed;
    }
    items.push_back(std::move(item));
  }
  CountBatch(items.size(), failed);
  return OkPayload(net::wire::EncodeBatchResponse(items));
}

net::RpcResponse FileMetadataServer::CheckEmpty(std::string_view payload) {
  fs::Uuid dir_uuid;
  if (!fs::Unpack(payload, dir_uuid)) return BadRequest();
  std::string value;
  if (dirents_->Get(DirentKey(dir_uuid), &value).ok() &&
      !ParseDirentList(value).empty()) {
    return Fail(ErrCode::kNotEmpty);
  }
  return Ok();
}

net::RpcResponse FileMetadataServer::ReadRaw(std::string_view payload) {
  fs::Uuid dir_uuid;
  std::string name;
  if (!fs::Unpack(payload, dir_uuid, name)) return BadRequest();
  const std::string key = FileKey(dir_uuid, name);
  if (options_.decoupled) {
    std::string access, content;
    if (!access_->Get(key, &access).ok()) return Fail(ErrCode::kNotFound);
    (void)content_->Get(key, &content);
    return OkPayload(fs::Pack(access, content));
  }
  // Coupled mode relocation moves the serialized inode in the "access" slot.
  std::string value;
  if (!coupled_->Get(key, &value).ok()) return Fail(ErrCode::kNotFound);
  return OkPayload(fs::Pack(value, std::string()));
}

net::RpcResponse FileMetadataServer::InsertRaw(std::string_view payload) {
  fs::Uuid dir_uuid;
  std::string name, access, content;
  if (!fs::Unpack(payload, dir_uuid, name, access, content)) return BadRequest();
  const std::string key = FileKey(dir_uuid, name);
  const auto guard = dir_locks_.Lock(dir_uuid.raw());
  if (options_.decoupled) {
    if (access_->Contains(key)) return Fail(ErrCode::kExists);
    // Same write order as Create: content part first, access part (the
    // existence marker) last, so a failure in between strands no file whose
    // GetAttr would then error.
    if (!content_->Put(key, content).ok()) return Fail(ErrCode::kIo);
    if (!access_->Put(key, access).ok()) {
      (void)content_->Delete(key);
      return Fail(ErrCode::kIo);
    }
  } else {
    if (coupled_->Contains(key)) return Fail(ErrCode::kExists);
    // Rewrite the embedded name so readback stays consistent.
    CoupledInode inode;
    if (!CoupledInode::Deserialize(access, &inode)) return Fail(ErrCode::kCorruption);
    inode.name = name;
    if (!coupled_->Put(key, inode.Serialize()).ok()) return Fail(ErrCode::kIo);
  }
  if (!AppendToDirent(dir_uuid, name).ok()) {
    if (options_.decoupled) {
      (void)access_->Delete(key);
      (void)content_->Delete(key);
    } else {
      (void)coupled_->Delete(key);
    }
    return Fail(ErrCode::kIo);
  }
  return Ok();
}

// ----------------------------------------------------- fsck / admin surface --

std::string FileMetadataServer::ScanFilesPayload() {
  // Full file-inode inventory for loco_fsck: (parent uuid, name, file uuid)
  // per inode hashed to this server.
  std::vector<std::string> entries;
  auto emit = [&entries](std::string_view key, fs::Uuid file_uuid) {
    if (key.size() < 8) return;
    const fs::Uuid dir_uuid(common::LoadAt<std::uint64_t>(key, 0));
    entries.push_back(
        fs::Pack(dir_uuid, std::string(key.substr(8)), file_uuid));
  };
  if (options_.decoupled) {
    content_->ForEach([&](std::string_view key, std::string_view value) {
      emit(key, fs::Uuid(common::LoadAt<std::uint64_t>(
                    value, ContentPartLayout::kUuid)));
      return true;
    });
  } else {
    coupled_->ForEach([&](std::string_view key, std::string_view value) {
      CoupledInode inode;
      if (CoupledInode::Deserialize(value, &inode)) emit(key, inode.attr.uuid);
      return true;
    });
  }
  return fs::Pack(entries);
}

std::string FileMetadataServer::ScanDirentsPayload() {
  std::vector<std::string> entries;
  dirents_->ForEach([&entries](std::string_view key, std::string_view value) {
    const fs::Uuid dir_uuid(common::LoadAt<std::uint64_t>(key, 0));
    entries.push_back(fs::Pack(dir_uuid, ParseDirentList(value)));
    return true;
  });
  return fs::Pack(entries);
}

net::RpcResponse FileMetadataServer::ScanFiles(std::string_view payload) {
  if (!payload.empty()) {
    std::uint64_t epoch = 0;
    if (!fs::Unpack(payload, epoch)) return BadRequest();
    std::lock_guard<std::mutex> lock(snap_mu_);
    auto it = snapshots_.find(epoch);
    if (it == snapshots_.end()) return Fail(ErrCode::kNotFound);
    return OkPayload(it->second.files);
  }
  // Live scan: racy against concurrent mutations like any online scan —
  // loco_fsck --live pins an epoch instead.
  return OkPayload(ScanFilesPayload());
}

net::RpcResponse FileMetadataServer::ScanDirents(std::string_view payload) {
  if (!payload.empty()) {
    std::uint64_t epoch = 0;
    if (!fs::Unpack(payload, epoch)) return BadRequest();
    std::lock_guard<std::mutex> lock(snap_mu_);
    auto it = snapshots_.find(epoch);
    if (it == snapshots_.end()) return Fail(ErrCode::kNotFound);
    return OkPayload(it->second.dirents);
  }
  return OkPayload(ScanDirentsPayload());
}

net::RpcResponse FileMetadataServer::SnapshotBegin() {
  Snapshot snap;
  snap.files = ScanFilesPayload();
  snap.dirents = ScanDirentsPayload();
  std::lock_guard<std::mutex> lock(snap_mu_);
  const std::uint64_t epoch = next_snapshot_epoch_++;
  snapshots_[epoch] = std::move(snap);
  while (snapshots_.size() > kMaxSnapshots) snapshots_.erase(snapshots_.begin());
  return OkPayload(fs::Pack(epoch));
}

net::RpcResponse FileMetadataServer::SnapshotEnd(std::string_view payload) {
  std::uint64_t epoch = 0;
  if (!fs::Unpack(payload, epoch)) return BadRequest();
  std::lock_guard<std::mutex> lock(snap_mu_);
  snapshots_.erase(epoch);  // unknown epochs were evicted: fine
  return Ok();
}

net::RpcResponse FileMetadataServer::CheckUuids(std::string_view payload) {
  std::vector<std::string> entries;
  if (!fs::Unpack(payload, entries)) return BadRequest();
  std::map<std::uint64_t, std::vector<std::size_t>> wanted;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    fs::Uuid uuid;
    if (!fs::Unpack(entries[i], uuid)) return BadRequest();
    wanted[uuid.raw()].push_back(i);
  }
  std::string bitmap(entries.size(), '\0');
  auto mark = [&](fs::Uuid uuid) {
    auto it = wanted.find(uuid.raw());
    if (it == wanted.end()) return;
    for (const std::size_t i : it->second) bitmap[i] = '\1';
  };
  if (options_.decoupled) {
    content_->ForEach([&](std::string_view, std::string_view value) {
      mark(fs::Uuid(
          common::LoadAt<std::uint64_t>(value, ContentPartLayout::kUuid)));
      return true;
    });
  } else {
    coupled_->ForEach([&](std::string_view, std::string_view value) {
      CoupledInode inode;
      if (CoupledInode::Deserialize(value, &inode)) mark(inode.attr.uuid);
      return true;
    });
  }
  return OkPayload(std::move(bitmap));
}

net::RpcResponse FileMetadataServer::OpenSession(std::string_view payload,
                                                 std::uint64_t client) {
  fs::Uuid dir_uuid;
  std::string name;
  std::uint8_t exclusive = 0;
  if (!fs::Unpack(payload, dir_uuid, name, exclusive)) return BadRequest();
  // Sessions key off the wire-v2 hello identity; an anonymous (v1) peer has
  // nothing to attach one to.
  if (client == 0) return Fail(ErrCode::kInvalid);
  auto attr = GetAttrInternal(FileKey(dir_uuid, name));
  if (!attr.ok()) return Fail(attr.code());
  if (!sessions_.Open(dir_uuid, name, client, exclusive != 0,
                      static_cast<std::uint64_t>(common::CpuTimer::Now()))) {
    return Fail(ErrCode::kExists);
  }
  return Ok();
}

net::RpcResponse FileMetadataServer::CloseSession(std::string_view payload,
                                                  std::uint64_t client) {
  fs::Uuid dir_uuid;
  std::string name;
  if (!fs::Unpack(payload, dir_uuid, name)) return BadRequest();
  if (client == 0) return Fail(ErrCode::kInvalid);
  (void)sessions_.Close(dir_uuid, name, client);  // close twice: idempotent
  return Ok();
}

net::RpcResponse FileMetadataServer::SessionList() {
  const std::uint64_t now =
      static_cast<std::uint64_t>(common::CpuTimer::Now());
  std::vector<std::string> entries;
  for (const SessionTable::Entry& e : sessions_.List()) {
    const std::uint64_t ttl = e.expiry > now ? e.expiry - now : 0;
    entries.push_back(fs::Pack(e.dir_uuid, e.name, e.client, ttl,
                               static_cast<std::uint8_t>(e.exclusive ? 1 : 0)));
  }
  return OkPayload(fs::Pack(entries));
}

net::RpcResponse FileMetadataServer::GcStatus() {
  if (gc_ == nullptr) return Fail(ErrCode::kUnavailable);
  return OkPayload(gc_->StatusPayload());
}

net::RpcResponse FileMetadataServer::RepairDirent(std::string_view payload) {
  fs::Uuid dir_uuid;
  std::string name;
  std::uint8_t add = 0;
  if (!fs::Unpack(payload, dir_uuid, name, add)) return BadRequest();
  if (name.empty()) return Fail(ErrCode::kInvalid);
  const auto guard = dir_locks_.Lock(dir_uuid.raw());
  if (add != 0) {
    std::string value;
    (void)dirents_->Get(DirentKey(dir_uuid), &value);
    if (DirentListContains(value, name)) return Ok();
    if (!AppendToDirent(dir_uuid, name).ok()) return Fail(ErrCode::kIo);
  } else {
    RemoveFromDirent(dir_uuid, name);
  }
  return Ok();
}

net::RpcResponse FileMetadataServer::PurgeFile(std::string_view payload) {
  fs::Uuid dir_uuid;
  std::string name;
  if (!fs::Unpack(payload, dir_uuid, name)) return BadRequest();
  const std::string key = FileKey(dir_uuid, name);
  const auto guard = dir_locks_.Lock(dir_uuid.raw());
  // Unconditional drop of both inode parts plus the dirent entry — the
  // repair action for orphaned inodes and stale rename intermediates.  If no
  // inode exists the uuid in the reply is zero and only the dirent (if any)
  // goes away, which keeps a replayed purge idempotent.
  auto attr = GetAttrInternal(key);
  const fs::Uuid uuid = attr.ok() ? attr->uuid : fs::Uuid(0);
  if (options_.decoupled) {
    (void)access_->Delete(key);
    (void)content_->Delete(key);
  } else {
    (void)coupled_->Delete(key);
  }
  RemoveFromDirent(dir_uuid, name);
  sessions_.DropFile(dir_uuid, name);
  return OkPayload(fs::Pack(uuid));
}

// --------------------------------------------------------- housekeeping --

GcStepResult FileMetadataServer::GcStep(std::uint32_t budget,
                                        const UuidProbe& dir_alive) {
  GcStepResult result;
  const std::uint64_t now =
      static_cast<std::uint64_t>(common::CpuTimer::Now());
  if (sessions_.SweepExpired(now) > 0) result.ops += 1;

  // Phase 1: apply repairs found by an earlier harvest.  Each one re-checks
  // its invariant under the same per-directory lock the serving handlers
  // take, so a repair that raced a legitimate create/remove degrades to a
  // no-op instead of corrupting the store.
  while (!gc_queue_.empty() && result.ops < budget) {
    const GcPending p = std::move(gc_queue_.front());
    gc_queue_.pop_front();
    result.ops += 1;
    std::shared_lock scan(scan_mu_);
    const fs::Uuid dir(p.dir_raw);
    const auto guard = dir_locks_.Lock(p.dir_raw);
    const std::string key = FileKey(dir, p.name);
    const bool have_inode =
        options_.decoupled ? access_->Contains(key) : coupled_->Contains(key);
    std::string dirent_value;
    (void)dirents_->Get(DirentKey(dir), &dirent_value);
    const bool listed = DirentListContains(dirent_value, p.name);
    switch (p.kind) {
      case GcPending::kAddDirent:  // I6: inode present, dirent entry missing
        if (have_inode && !listed && AppendToDirent(dir, p.name).ok()) {
          result.reclaimed += 1;
          gc_i6_repaired_->Add();
        }
        break;
      case GcPending::kDropDirent:  // I7: dirent entry without an inode
        if (!have_inode && listed) {
          RemoveFromDirent(dir, p.name);
          result.reclaimed += 1;
          gc_i7_repaired_->Add();
        }
        break;
      case GcPending::kPurge:  // I5: orphan confirmed dead twice
        if (have_inode) {
          if (options_.decoupled) {
            (void)access_->Delete(key);
            (void)content_->Delete(key);
          } else {
            (void)coupled_->Delete(key);
          }
        }
        if (listed) RemoveFromDirent(dir, p.name);
        if (have_inode || listed) {
          result.reclaimed += 1;
          gc_i5_purged_->Add();
          sessions_.DropFile(dir, p.name);
        }
        break;
    }
  }
  if (!gc_queue_.empty() || result.ops >= budget) return result;

  // Phase 2: harvest.  One consistent-ish pass over both stores (shared
  // scan_mu_ only excludes snapshot pinning; per-item races are caught by
  // the phase-1 re-verification).
  struct FileRec {
    std::uint64_t dir_raw;
    std::string name;
  };
  std::vector<FileRec> files;
  std::map<std::uint64_t, std::vector<std::string>> lists;
  {
    std::shared_lock scan(scan_mu_);
    auto emit = [&files](std::string_view key) {
      if (key.size() < 8) return;
      files.push_back(FileRec{common::LoadAt<std::uint64_t>(key, 0),
                              std::string(key.substr(8))});
    };
    if (options_.decoupled) {
      content_->ForEach([&](std::string_view key, std::string_view) {
        emit(key);
        return true;
      });
    } else {
      coupled_->ForEach([&](std::string_view key, std::string_view) {
        emit(key);
        return true;
      });
    }
    dirents_->ForEach([&lists](std::string_view key, std::string_view value) {
      lists[common::LoadAt<std::uint64_t>(key, 0)] = ParseDirentList(value);
      return true;
    });
  }
  result.ops += static_cast<std::uint32_t>(files.size() + lists.size() + 1);

  // I6/I7: files vs dirent lists, both directions.
  std::set<std::pair<std::uint64_t, std::string>> file_set;
  for (const FileRec& f : files) file_set.emplace(f.dir_raw, f.name);
  for (const FileRec& f : files) {
    auto it = lists.find(f.dir_raw);
    const bool listed =
        it != lists.end() &&
        std::find(it->second.begin(), it->second.end(), f.name) !=
            it->second.end();
    if (!listed) {
      gc_queue_.push_back(GcPending{GcPending::kAddDirent, f.dir_raw, f.name});
    }
  }
  for (const auto& [dir_raw, names] : lists) {
    for (const std::string& name : names) {
      if (file_set.count({dir_raw, name}) == 0) {
        gc_queue_.push_back(GcPending{GcPending::kDropDirent, dir_raw, name});
      }
    }
  }

  // I5: files whose parent directory no longer exists on the DMS.  The purge
  // is destructive, so a candidate must be seen dead in two consecutive
  // harvests; a probe error skips the detector entirely ("unreachable" is
  // never "dead").
  if (dir_alive && !files.empty()) {
    std::vector<fs::Uuid> dirs;
    {
      std::set<std::uint64_t> seen;
      for (const FileRec& f : files) {
        if (seen.insert(f.dir_raw).second) dirs.push_back(fs::Uuid(f.dir_raw));
      }
    }
    result.ops += static_cast<std::uint32_t>(dirs.size());
    auto alive = dir_alive(dirs);
    if (alive.ok() && alive->size() == dirs.size()) {
      std::set<std::uint64_t> dead;
      for (std::size_t i = 0; i < dirs.size(); ++i) {
        if ((*alive)[i] == 0) dead.insert(dirs[i].raw());
      }
      std::set<std::pair<std::uint64_t, std::string>> candidates;
      for (const FileRec& f : files) {
        if (dead.count(f.dir_raw) == 0) continue;
        candidates.emplace(f.dir_raw, f.name);
        if (gc_i5_prev_.count({f.dir_raw, f.name}) != 0) {
          gc_queue_.push_back(GcPending{GcPending::kPurge, f.dir_raw, f.name});
        }
      }
      gc_i5_prev_ = std::move(candidates);
    }
  }
  return result;
}

}  // namespace loco::core
