#include "core/lease_table.h"

#include <algorithm>

namespace loco::core {

void LeaseTable::Grant(const std::string& path, std::uint64_t client,
                       std::uint64_t now) {
  if (client == 0) return;
  const std::uint64_t expiry = now + options_.lease_ns;
  std::vector<std::pair<std::string, std::uint64_t>> evicted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& holders = watches_[path];
    auto it = holders.find(client);
    if (it != holders.end()) {
      // Refresh: the old by_expiry_ twin goes stale and is skipped lazily.
      it->second = expiry;
    } else {
      if (count_ >= options_.max_watches) MakeRoomLocked(now, &evicted);
      holders.emplace(client, expiry);
      ++count_;
    }
    by_expiry_.emplace(expiry, ExpiryKey{path, client});
  }
  // Fire eviction callbacks outside mu_: the DMS handler pushes a synthetic
  // invalidation from here, and its failure path re-enters the table via
  // Drop() — holding mu_ across the callback would self-deadlock.
  if (options_.on_evict) {
    for (const auto& [evicted_path, evicted_client] : evicted) {
      options_.on_evict(evicted_path, evicted_client);
    }
  }
}

std::vector<std::uint64_t> LeaseTable::Collect(const std::string& path,
                                               bool subtree,
                                               std::uint64_t exclude,
                                               std::uint64_t now) {
  std::vector<std::uint64_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  const std::string prefix = path == "/" ? "/" : path + "/";
  auto it = watches_.find(path);
  if (it == watches_.end() && subtree) it = watches_.lower_bound(prefix);
  while (it != watches_.end()) {
    const bool exact = it->first == path;
    if (!exact) {
      if (!subtree || it->first.compare(0, prefix.size(), prefix) != 0) break;
    }
    for (const auto& [client, expiry] : it->second) {
      if (client != exclude && expiry > now) out.push_back(client);
    }
    count_ -= it->second.size();
    it = watches_.erase(it);
    if (exact && subtree && it == watches_.end()) {
      // `path` sorts before `path + "/"` but not necessarily adjacent to it
      // ("/a" < "/a.b" < "/a/"): reseek to the subtree range.
      it = watches_.lower_bound(prefix);
    } else if (exact && subtree && it->first.compare(0, prefix.size(), prefix) != 0) {
      it = watches_.lower_bound(prefix);
    } else if (exact && !subtree) {
      break;
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void LeaseTable::Drop(std::uint64_t client) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = watches_.begin(); it != watches_.end();) {
    count_ -= it->second.erase(client);
    it = it->second.empty() ? watches_.erase(it) : std::next(it);
  }
}

std::size_t LeaseTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

void LeaseTable::EraseLocked(const std::string& path, std::uint64_t client,
                             std::uint64_t expiry) {
  auto it = watches_.find(path);
  if (it == watches_.end()) return;
  auto holder = it->second.find(client);
  if (holder == it->second.end() || holder->second != expiry) return;
  it->second.erase(holder);
  if (it->second.empty()) watches_.erase(it);
  --count_;
}

void LeaseTable::MakeRoomLocked(
    std::uint64_t now,
    std::vector<std::pair<std::string, std::uint64_t>>* evicted) {
  // Pop from the expiry heap until one live watch is gone; stale twins
  // (refreshed or already-consumed watches) just fall out along the way.
  while (!by_expiry_.empty() && count_ >= options_.max_watches) {
    auto it = by_expiry_.begin();
    const std::size_t before = count_;
    EraseLocked(it->second.path, it->second.client, it->first);
    const bool expired = it->first <= now;
    if (count_ < before && !expired) {
      // A live watch lost its slot: its holder must be told to resync, or
      // the next mutation of that path would go silently unobserved until
      // the lease timeout.
      evicted->emplace_back(std::move(it->second.path), it->second.client);
      by_expiry_.erase(it);
      break;
    }
    by_expiry_.erase(it);
  }
}

}  // namespace loco::core
