// File Metadata Server (FMS) — §3.1, §3.3.
//
// Holds file inodes keyed by (parent directory uuid + name); clients place
// files onto FMS servers with a consistent-hash ring over that key.  Two
// storage modes:
//
//   * Decoupled (default, "LocoFS-DF"): the inode is split into a 24-byte
//     access part and a 40-byte content part, each its own KV value with
//     fixed field offsets — single-field updates are byte patches and no
//     (de)serialization happens (§3.3.1/§3.3.3).
//   * Coupled ("LocoFS-CF", the Fig. 11 ablation): one variable-length
//     serialized value per inode, including the name and the per-block index
//     list §3.3.2 removes; every update deserializes, modifies, and
//     reserializes the whole record.
//
// File dirent lists (names of this directory's files that hash to this
// server) are concatenated values keyed by directory uuid (§3.2.1).
//
// Concurrency: handlers may run on many TcpServer workers at once.  Create,
// Remove and InsertRaw serialize per directory (a lock table keyed by
// dir_uuid guards the dirent-list read-modify-write and the existence
// check); attribute updates that read-modify-write one inode serialize per
// file key; everything else relies on the lock-striped KV stores
// (kvstore/striped_kv.h).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/lock_table.h"

#include "common/metrics.h"
#include "core/layout.h"
#include "kvstore/kv.h"
#include "net/rpc.h"

namespace loco::core {

class FileMetadataServer final : public net::RpcHandler {
 public:
  struct Options {
    std::uint32_t sid = 0;   // this server's id (high bits of file uuids)
    bool decoupled = true;   // DF (true) vs CF (false)
    kv::KvBackend backend = kv::KvBackend::kHash;
    kv::KvOptions kv;
    // Lock stripes per store (thread safety under multi-worker servers).
    std::size_t kv_stripes = 16;
    // Post-construction wrapper applied to each store (fault injection:
    // daemons install kv::FaultyKv here when --fault-spec arms KV faults).
    std::function<std::unique_ptr<kv::Kv>(std::unique_ptr<kv::Kv>)> kv_decorator;
  };

  explicit FileMetadataServer(const Options& options);

  net::RpcResponse Handle(std::uint16_t opcode, std::string_view payload) override;

  std::size_t FileCount() const;
  bool decoupled() const noexcept { return options_.decoupled; }
  // Aggregate KV statistics across this server's stores.
  kv::KvStats StoreStats() const;
  // Per-store introspection (Table 1 access-matrix test): which metadata
  // region an operation touched is visible in these stores' counters.
  // access/content are only present in decoupled mode; coupled only in CF.
  const kv::Kv* access_kv() const noexcept { return access_.get(); }
  const kv::Kv* content_kv() const noexcept { return content_.get(); }
  const kv::Kv* coupled_kv() const noexcept { return coupled_.get(); }
  const kv::Kv& dirent_kv() const noexcept { return *dirents_; }

 private:
  // Read the full Attr of a file (mode-independent helper).
  Result<fs::Attr> GetAttrInternal(const std::string& key) const;

  net::RpcResponse Dispatch(std::uint16_t opcode, std::string_view payload);

  net::RpcResponse Create(std::string_view payload);
  net::RpcResponse Remove(std::string_view payload);
  net::RpcResponse GetAttr(std::string_view payload);
  net::RpcResponse Open(std::string_view payload);
  net::RpcResponse Chmod(std::string_view payload);
  net::RpcResponse Chown(std::string_view payload);
  net::RpcResponse Utimens(std::string_view payload);
  net::RpcResponse Access(std::string_view payload);
  net::RpcResponse SetSize(std::string_view payload);
  net::RpcResponse SetAtime(std::string_view payload);
  net::RpcResponse Readdir(std::string_view payload);
  // Batched metadata ops (net/wire.h batch framing): each sub-op runs under
  // the same lock-table guards as its single-op twin and fails individually;
  // only a malformed batch envelope fails the whole frame (kCorruption).
  net::RpcResponse BatchCreate(std::string_view payload);
  net::RpcResponse BatchStat(std::string_view payload);
  net::RpcResponse ReaddirPlus(std::string_view payload);
  net::RpcResponse CheckEmpty(std::string_view payload);
  net::RpcResponse ReadRaw(std::string_view payload);
  net::RpcResponse InsertRaw(std::string_view payload);
  // fsck / admin surface (tools/loco_fsck).
  net::RpcResponse ScanFiles();
  net::RpcResponse ScanDirents();
  net::RpcResponse RepairDirent(std::string_view payload);
  net::RpcResponse PurgeFile(std::string_view payload);

  Status AppendToDirent(fs::Uuid dir_uuid, std::string_view name);
  void RemoveFromDirent(fs::Uuid dir_uuid, std::string_view name);

  Options options_;
  // Decoupled mode stores.
  std::unique_ptr<kv::Kv> access_;   // key -> access part (24 B)
  std::unique_ptr<kv::Kv> content_;  // key -> content part (40 B)
  // Coupled mode store.
  std::unique_ptr<kv::Kv> coupled_;  // key -> serialized whole inode
  // Both modes.
  std::unique_ptr<kv::Kv> dirents_;  // dir uuid -> concatenated file names
  std::atomic<std::uint64_t> next_fid_{1};

  // Per-directory serialization (dirent list + existence checks), keyed by
  // dir_uuid; per-file serialization for inode read-modify-writes, keyed by
  // the file key's hash.
  common::LockTable dir_locks_{64};
  common::LockTable file_locks_{128};

  // server.fms<sid>.* op counters and server.fms<sid>.kv.* gauges.
  common::ServerOpCounters op_metrics_;
  std::vector<common::MetricsRegistry::GaugeHandle> kv_gauges_;
};

}  // namespace loco::core
