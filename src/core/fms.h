// File Metadata Server (FMS) — §3.1, §3.3.
//
// Holds file inodes keyed by (parent directory uuid + name); clients place
// files onto FMS servers with a consistent-hash ring over that key.  Two
// storage modes:
//
//   * Decoupled (default, "LocoFS-DF"): the inode is split into a 24-byte
//     access part and a 40-byte content part, each its own KV value with
//     fixed field offsets — single-field updates are byte patches and no
//     (de)serialization happens (§3.3.1/§3.3.3).
//   * Coupled ("LocoFS-CF", the Fig. 11 ablation): one variable-length
//     serialized value per inode, including the name and the per-block index
//     list §3.3.2 removes; every update deserializes, modifies, and
//     reserializes the whole record.
//
// File dirent lists (names of this directory's files that hash to this
// server) are concatenated values keyed by directory uuid (§3.2.1).
//
// Concurrency: handlers may run on many TcpServer workers at once.  Create,
// Remove and InsertRaw serialize per directory (a lock table keyed by
// dir_uuid guards the dirent-list read-modify-write and the existence
// check); attribute updates that read-modify-write one inode serialize per
// file key; everything else relies on the lock-striped KV stores
// (kvstore/striped_kv.h).
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/lock_table.h"

#include "common/metrics.h"
#include "core/gc.h"
#include "core/layout.h"
#include "core/session_table.h"
#include "kvstore/kv.h"
#include "net/rpc.h"

namespace loco::core {

class FileMetadataServer final : public net::RpcHandler {
 public:
  struct Options {
    std::uint32_t sid = 0;   // this server's id (high bits of file uuids)
    bool decoupled = true;   // DF (true) vs CF (false)
    kv::KvBackend backend = kv::KvBackend::kHash;
    kv::KvOptions kv;
    // Lock stripes per store (thread safety under multi-worker servers).
    std::size_t kv_stripes = 16;
    // Post-construction wrapper applied to each store (fault injection:
    // daemons install kv::FaultyKv here when --fault-spec arms KV faults).
    std::function<std::unique_ptr<kv::Kv>(std::unique_ptr<kv::Kv>)> kv_decorator;
    // File-session bookkeeping (docs/HOUSEKEEPING.md).  The metrics prefix is
    // filled in by the constructor when left empty.
    SessionTable::Options session;
  };

  explicit FileMetadataServer(const Options& options);

  net::RpcResponse Handle(std::uint16_t opcode, std::string_view payload) override;
  net::RpcResponse HandleCtx(std::uint16_t opcode, std::string_view payload,
                             const net::HandlerContext& ctx) override;

  // Wire the hosting daemon's GC manager so kCtlGcStatus can answer.  The
  // manager must outlive the server.
  void SetGcManager(GcManager* gc) noexcept { gc_ = gc; }

  // Disconnect hook (TcpServer::Options::on_client_disconnect): drop every
  // session the vanished client held.  Returns the number dropped.
  std::size_t DropClientSessions(std::uint64_t client) {
    return sessions_.DropClient(client);
  }

  // One incremental GC step (docs/HOUSEKEEPING.md): sweep expired sessions,
  // apply queued repairs, else harvest the stores and detect invariants
  // I5/I6/I7 locally.  `dir_alive` probes the DMS for parent-directory
  // liveness (kDmsCheckUuids); orphan purges (I5, destructive) require the
  // directory to be seen dead in two consecutive harvests.  Called from a
  // single GcManager thread; repairs re-verify under the serving dir locks.
  GcStepResult GcStep(std::uint32_t budget, const UuidProbe& dir_alive);

  SessionTable& sessions() noexcept { return sessions_; }

  std::size_t FileCount() const;
  bool decoupled() const noexcept { return options_.decoupled; }
  // Aggregate KV statistics across this server's stores.
  kv::KvStats StoreStats() const;
  // Per-store introspection (Table 1 access-matrix test): which metadata
  // region an operation touched is visible in these stores' counters.
  // access/content are only present in decoupled mode; coupled only in CF.
  const kv::Kv* access_kv() const noexcept { return access_.get(); }
  const kv::Kv* content_kv() const noexcept { return content_.get(); }
  const kv::Kv* coupled_kv() const noexcept { return coupled_.get(); }
  const kv::Kv& dirent_kv() const noexcept { return *dirents_; }

 private:
  // Read the full Attr of a file (mode-independent helper).
  Result<fs::Attr> GetAttrInternal(const std::string& key) const;

  net::RpcResponse Dispatch(std::uint16_t opcode, std::string_view payload,
                            std::uint64_t client);

  net::RpcResponse Create(std::string_view payload, std::uint64_t client);
  net::RpcResponse Remove(std::string_view payload);
  net::RpcResponse GetAttr(std::string_view payload);
  net::RpcResponse Open(std::string_view payload, std::uint64_t client);
  net::RpcResponse Chmod(std::string_view payload);
  net::RpcResponse Chown(std::string_view payload);
  net::RpcResponse Utimens(std::string_view payload);
  net::RpcResponse Access(std::string_view payload);
  net::RpcResponse SetSize(std::string_view payload);
  net::RpcResponse SetAtime(std::string_view payload);
  net::RpcResponse Readdir(std::string_view payload);
  // Batched metadata ops (net/wire.h batch framing): each sub-op runs under
  // the same lock-table guards as its single-op twin and fails individually;
  // only a malformed batch envelope fails the whole frame (kCorruption).
  net::RpcResponse BatchCreate(std::string_view payload, std::uint64_t client);
  net::RpcResponse BatchStat(std::string_view payload);
  net::RpcResponse BatchSetSize(std::string_view payload);
  net::RpcResponse ReaddirPlus(std::string_view payload);
  net::RpcResponse CheckEmpty(std::string_view payload);
  net::RpcResponse ReadRaw(std::string_view payload);
  net::RpcResponse InsertRaw(std::string_view payload);
  // fsck / admin surface (tools/loco_fsck).  Scans take an optional
  // [epoch u64] payload: empty reads live state, an epoch serves the pinned
  // snapshot (kNotFound once evicted or released).
  net::RpcResponse ScanFiles(std::string_view payload);
  net::RpcResponse ScanDirents(std::string_view payload);
  net::RpcResponse RepairDirent(std::string_view payload);
  net::RpcResponse PurgeFile(std::string_view payload);
  net::RpcResponse CheckUuids(std::string_view payload);
  // Housekeeping / control surface.
  net::RpcResponse OpenSession(std::string_view payload, std::uint64_t client);
  net::RpcResponse CloseSession(std::string_view payload, std::uint64_t client);
  net::RpcResponse SessionList();
  net::RpcResponse GcStatus();
  // Caller holds scan_mu_ exclusively (Dispatch routes it that way).
  net::RpcResponse SnapshotBegin();
  net::RpcResponse SnapshotEnd(std::string_view payload);

  // Materialized scan payloads (shared by live scans and SnapshotBegin).
  std::string ScanFilesPayload();
  std::string ScanDirentsPayload();

  Status AppendToDirent(fs::Uuid dir_uuid, std::string_view name);
  void RemoveFromDirent(fs::Uuid dir_uuid, std::string_view name);

  Options options_;
  // Decoupled mode stores.
  std::unique_ptr<kv::Kv> access_;   // key -> access part (24 B)
  std::unique_ptr<kv::Kv> content_;  // key -> content part (40 B)
  // Coupled mode store.
  std::unique_ptr<kv::Kv> coupled_;  // key -> serialized whole inode
  // Both modes.
  std::unique_ptr<kv::Kv> dirents_;  // dir uuid -> concatenated file names
  std::atomic<std::uint64_t> next_fid_{1};

  // Per-directory serialization (dirent list + existence checks), keyed by
  // dir_uuid; per-file serialization for inode read-modify-writes, keyed by
  // the file key's hash.
  common::LockTable dir_locks_{64};
  common::LockTable file_locks_{128};

  // Snapshot plane (kCtlSnapshotBegin/End): SnapshotBegin takes scan_mu_
  // exclusively to materialize a consistent cut of both stores; every other
  // handler (and the GC harvest) holds it shared, so pinning waits out
  // in-flight mutations and never tears one.
  mutable std::shared_mutex scan_mu_;
  struct Snapshot {
    std::string files;    // kFmsScanFiles reply payload
    std::string dirents;  // kFmsScanDirents reply payload
  };
  std::mutex snap_mu_;  // guards the epoch counter and the snapshot map
  std::uint64_t next_snapshot_epoch_ = 1;
  std::map<std::uint64_t, Snapshot> snapshots_;

  // File sessions (implicit via Create/Open, explicit via kFmsOpenSession).
  SessionTable sessions_;

  // Housekeeping (single GcManager thread): repairs detected by the last
  // harvest, waiting for re-verification under the dir locks, plus the I5
  // candidates of the previous harvest (destructive purges need two
  // consecutive sightings).
  struct GcPending {
    enum Kind : std::uint8_t { kAddDirent, kDropDirent, kPurge };
    Kind kind;
    std::uint64_t dir_raw = 0;
    std::string name;
  };
  std::deque<GcPending> gc_queue_;
  std::set<std::pair<std::uint64_t, std::string>> gc_i5_prev_;
  GcManager* gc_ = nullptr;

  // server.fms<sid>.* op counters and server.fms<sid>.kv.* gauges.
  common::ServerOpCounters op_metrics_;
  std::vector<common::MetricsRegistry::GaugeHandle> kv_gauges_;
  // gc.fms<sid>.* per-invariant repair counters.
  common::Counter* gc_i5_purged_ = nullptr;
  common::Counter* gc_i6_repaired_ = nullptr;
  common::Counter* gc_i7_repaired_ = nullptr;
};

}  // namespace loco::core
