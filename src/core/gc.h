// Background garbage collection for the housekeeping plane
// (docs/HOUSEKEEPING.md).
//
// fsck (core/fsck.h) repairs invariants I1–I9 with stop-the-world scans; a
// serving cluster never gets to stop.  GcManager runs the same detectors
// *incrementally*: one thread per daemon round-robins small GC steps under a
// token bucket (configurable ops/sec and batch size), so housekeeping load
// is a bounded, tunable tax on the serving hot path instead of an outage.
//
// The manager is generic — daemons register named step callbacks.  A step
// receives an op budget and returns how many ops it actually spent (scan
// items + repairs; spending can overshoot the budget, the bucket goes into
// debt and the loop sleeps it off).  The per-server steps live on the
// servers themselves (DirectoryMetadataServer::GcStep etc.), where they can
// re-verify every finding under the same locks the serving handlers take —
// a GC repair never races a legitimate in-flight mutation.
//
// Cross-server invariants (I5: orphan files under dead directories; I9:
// leaked objects) need a remote liveness check, passed in as a UuidProbe.
// Their reclaims are destructive, so they require the candidate to be seen
// dead in two consecutive GC cycles before purging — a probe that raced a
// concurrent create cannot cost data.
//
// Adaptive pacing (docs/OVERLOAD.md): a daemon can hand the manager a load
// signal — its TcpServer's recent admission-queue delay.  While foreground
// traffic queues (delay at or above Options::load_high_ns) the token refill
// collapses toward load_min_factor, so housekeeping yields the machine to
// the serving path; once the delay falls back below load_low_ns GC resumes
// its configured rate.  The extra waiting shows up in <prefix>.throttle_ns.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "fs/types.h"
#include "net/rpc.h"

namespace loco::core {

// One GC step: spend up to `budget` ops, report what was actually spent and
// how many orphans were reclaimed.
struct GcStepResult {
  std::uint32_t ops = 0;
  std::uint32_t reclaimed = 0;
};
using GcTaskFn = std::function<GcStepResult(std::uint32_t budget)>;

// Batched remote liveness check: one byte per uuid, '\1' = alive.  Errors
// abort the dependent detector for this cycle (never treat "unreachable" as
// "dead").
using UuidProbe =
    std::function<Result<std::vector<std::uint8_t>>(const std::vector<fs::Uuid>&)>;

class GcManager {
 public:
  struct Options {
    double ops_per_sec = 2000.0;       // sustained scan+repair rate
    std::uint32_t batch_ops = 64;      // max ops granted to one step call
    common::Nanos idle_sleep_ns = 100 * common::kMilli;  // sleep when idle
    std::string metrics_prefix = "gc";
    // Adaptive pacing against the load signal (no effect without one).
    // Queue delay >= load_high_ns scales the refill rate by load_min_factor;
    // <= load_low_ns restores full rate; in between it ramps linearly.
    common::Nanos load_high_ns = common::kMilli;
    common::Nanos load_low_ns = 50 * common::kMicro;
    double load_min_factor = 0.1;
  };

  struct TaskStatus {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t ops = 0;
    std::uint64_t reclaimed = 0;
  };
  struct Status {
    bool running = false;
    std::uint64_t cycles = 0;     // completed round-robin rounds
    std::uint64_t ops = 0;        // total ops spent
    std::uint64_t reclaimed = 0;  // total orphans reclaimed
    std::vector<TaskStatus> tasks;
  };

  GcManager() : GcManager(Options()) {}
  explicit GcManager(Options options);
  ~GcManager();

  GcManager(const GcManager&) = delete;
  GcManager& operator=(const GcManager&) = delete;

  // Register a step before Start().
  void AddTask(std::string name, GcTaskFn fn);

  // Serving-load signal for adaptive pacing: sampled once per loop
  // iteration; must be cheap and thread-safe (daemons pass their server's
  // RecentQueueDelayNs).  Set before Start().
  using LoadSignal = std::function<common::Nanos()>;
  void SetLoadSignal(LoadSignal signal);

  // Current pacing factor in [load_min_factor, 1]; 1 without a signal
  // (tests / loco_shell gc).
  double CurrentPacingFactor() const;

  void Start();
  void Stop();
  bool running() const;

  Status GetStatus() const;
  // kCtlGcStatus reply payload (layout in core/proto.h).
  std::string StatusPayload() const;
  static Result<Status> ParseStatusPayload(std::string_view payload);

  const Options& options() const noexcept { return options_; }

 private:
  struct Task {
    std::string name;
    GcTaskFn fn;
    std::uint64_t calls = 0;
    std::uint64_t ops = 0;
    std::uint64_t reclaimed = 0;
  };

  void Loop();
  double PacingFactorLocked() const;

  const Options options_;
  LoadSignal load_signal_;  // set before Start(); read under mu_
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Task> tasks_;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
  std::uint64_t cycles_ = 0;
  std::uint64_t total_ops_ = 0;
  std::uint64_t total_reclaimed_ = 0;

  common::Counter* cycles_metric_;
  common::Counter* ops_metric_;
  common::Counter* reclaimed_metric_;
  common::Counter* throttle_ns_metric_;
};

}  // namespace loco::core
