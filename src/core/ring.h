// Consistent-hash ring placing file metadata onto FMS servers (§3.1).
//
// Keys are (directory_uuid + file_name); each server contributes a number of
// virtual nodes so load stays balanced, and adding/removing a server only
// relocates the keys adjacent to its virtual nodes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <vector>

#include "net/rpc.h"

namespace loco::core {

class HashRing {
 public:
  explicit HashRing(std::vector<net::NodeId> servers, int vnodes_per_server = 64);

  // Owning server for a key.  Ring must be non-empty.
  net::NodeId Locate(std::string_view key) const noexcept;

  const std::vector<net::NodeId>& servers() const noexcept { return servers_; }
  bool empty() const noexcept { return points_.size() == 0; }

 private:
  struct Point {
    std::uint64_t hash;
    net::NodeId server;
    bool operator<(const Point& other) const noexcept { return hash < other.hash; }
  };

  std::vector<net::NodeId> servers_;
  std::vector<Point> points_;  // sorted by hash
};

}  // namespace loco::core
