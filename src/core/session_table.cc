#include "core/session_table.h"

#include <algorithm>

namespace loco::core {

SessionTable::SessionTable(Options options) : options_(std::move(options)) {
  if (!options_.metrics_prefix.empty()) {
    auto& registry = common::MetricsRegistry::Default();
    const std::string& p = options_.metrics_prefix;
    opened_ = &registry.GetCounter(p + ".opened");
    closed_ = &registry.GetCounter(p + ".closed");
    pruned_ = &registry.GetCounter(p + ".pruned");
    expired_ = &registry.GetCounter(p + ".expired");
    rejected_ = &registry.GetCounter(p + ".rejected");
    live_gauge_ = registry.RegisterGauge(p + ".live", [this] {
      return static_cast<std::uint64_t>(size());
    });
  }
}

bool SessionTable::Open(fs::Uuid dir_uuid, const std::string& name,
                        std::uint64_t client, bool exclusive,
                        std::uint64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  const FileKey key{dir_uuid.raw(), name};
  auto it = sessions_.find(key);
  if (it != sessions_.end()) {
    for (const auto& [holder, h] : it->second) {
      if (holder == client || ExpiryLocked(holder, h) <= now) continue;
      if (exclusive || h.exclusive) {
        if (rejected_) rejected_->Add();
        return false;
      }
    }
  }
  const bool fresh =
      it == sessions_.end() || it->second.find(client) == it->second.end();
  if (fresh && count_ >= options_.max_sessions) MakeRoomLocked(now);
  auto& holder = sessions_[key][client];
  holder.expiry = now + options_.ttl_ns;
  holder.exclusive = exclusive;
  if (fresh) {
    by_client_[client][key] = true;
    ++count_;
    if (opened_) opened_->Add();
  }
  return true;
}

bool SessionTable::Close(fs::Uuid dir_uuid, const std::string& name,
                         std::uint64_t client) {
  std::lock_guard<std::mutex> lock(mu_);
  const FileKey key{dir_uuid.raw(), name};
  auto it = sessions_.find(key);
  if (it == sessions_.end() || it->second.find(client) == it->second.end()) {
    return false;
  }
  EraseLocked(key, client);
  if (closed_) closed_->Add();
  return true;
}

void SessionTable::Touch(std::uint64_t client, std::uint64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  // The lazy renewal: one timestamp write covers every session the client
  // holds.  Walking them eagerly made each RPC cost O(sessions held), which
  // for a client mid-ingest (one implicit session per created file) turned
  // the per-op metadata path quadratic.
  auto it = by_client_.find(client);
  if (it == by_client_.end()) return;
  last_seen_[client] = now;
}

std::size_t SessionTable::DropClient(std::uint64_t client) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_client_.find(client);
  if (it == by_client_.end()) return 0;
  // EraseLocked mutates by_client_; detach the key list first.
  std::vector<FileKey> keys;
  keys.reserve(it->second.size());
  for (const auto& [key, unused] : it->second) keys.push_back(key);
  for (const FileKey& key : keys) EraseLocked(key, client);
  if (pruned_) pruned_->Add(keys.size());
  return keys.size();
}

void SessionTable::DropFile(fs::Uuid dir_uuid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const FileKey key{dir_uuid.raw(), name};
  auto it = sessions_.find(key);
  if (it == sessions_.end()) return;
  std::vector<std::uint64_t> clients;
  clients.reserve(it->second.size());
  for (const auto& [client, h] : it->second) clients.push_back(client);
  for (std::uint64_t client : clients) EraseLocked(key, client);
  if (closed_) closed_->Add(clients.size());
}

std::size_t SessionTable::SweepExpired(std::uint64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<FileKey, std::uint64_t>> doomed;
  for (const auto& [key, holders] : sessions_) {
    for (const auto& [client, h] : holders) {
      if (ExpiryLocked(client, h) <= now) doomed.emplace_back(key, client);
    }
  }
  for (const auto& [key, client] : doomed) EraseLocked(key, client);
  if (expired_) expired_->Add(doomed.size());
  return doomed.size();
}

bool SessionTable::HasLiveSession(fs::Uuid dir_uuid, const std::string& name,
                                  std::uint64_t now) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(FileKey{dir_uuid.raw(), name});
  if (it == sessions_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [this, now](const auto& kv) {
                       return ExpiryLocked(kv.first, kv.second) > now;
                     });
}

std::vector<SessionTable::Entry> SessionTable::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(count_);
  for (const auto& [key, holders] : sessions_) {
    for (const auto& [client, h] : holders) {
      out.push_back(Entry{fs::Uuid(key.first), key.second, client,
                          ExpiryLocked(client, h), h.exclusive});
    }
  }
  return out;
}

std::size_t SessionTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

void SessionTable::EraseLocked(const FileKey& key, std::uint64_t client) {
  auto it = sessions_.find(key);
  if (it == sessions_.end()) return;
  if (it->second.erase(client) == 0) return;
  if (it->second.empty()) sessions_.erase(it);
  auto cit = by_client_.find(client);
  if (cit != by_client_.end()) {
    cit->second.erase(key);
    if (cit->second.empty()) {
      by_client_.erase(cit);
      last_seen_.erase(client);  // no sessions left; the heartbeat with it
    }
  }
  --count_;
}

std::uint64_t SessionTable::ExpiryLocked(std::uint64_t client,
                                         const Holder& h) const {
  const auto it = last_seen_.find(client);
  if (it == last_seen_.end()) return h.expiry;
  return std::max(h.expiry, it->second + options_.ttl_ns);
}

void SessionTable::MakeRoomLocked(std::uint64_t now) {
  // Sweep expired sessions first.
  std::vector<std::pair<FileKey, std::uint64_t>> doomed;
  for (const auto& [key, holders] : sessions_) {
    for (const auto& [client, h] : holders) {
      if (ExpiryLocked(client, h) <= now) doomed.emplace_back(key, client);
    }
  }
  for (const auto& [key, client] : doomed) EraseLocked(key, client);
  if (expired_ && !doomed.empty()) expired_->Add(doomed.size());
  if (count_ < options_.max_sessions) return;
  // Still full: evict the soonest-to-expire live session.
  const FileKey* victim_key = nullptr;
  std::uint64_t victim_client = 0;
  std::uint64_t soonest = ~0ull;
  for (const auto& [key, holders] : sessions_) {
    for (const auto& [client, h] : holders) {
      const std::uint64_t expiry = ExpiryLocked(client, h);
      if (expiry < soonest) {
        soonest = expiry;
        victim_key = &key;
        victim_client = client;
      }
    }
  }
  if (victim_key != nullptr) {
    const FileKey key = *victim_key;
    EraseLocked(key, victim_client);
    if (expired_) expired_->Add();
  }
}

}  // namespace loco::core
