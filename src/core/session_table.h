// File-session bookkeeping for the FMS housekeeping plane
// (docs/HOUSEKEEPING.md).
//
// A session records "client C has file (dir_uuid, name) open until
// now + ttl_ns".  Sessions ride the client id negotiated in the wire-v2
// hello: opens and creates register one implicitly, kFmsOpenSession
// registers one explicitly (optionally exclusive), and every RPC a client
// sends renews all of its sessions — the steady request/notify traffic *is*
// the heartbeat.  A client that vanishes stops renewing; its sessions are
// dropped the moment its last TCP connection dies (TcpServer disconnect
// callback) or, failing that, when the GC sweep finds them expired.  Either
// way a crashed client cannot pin a file forever.
//
// The table is bounded: at most `max_sessions` live entries.  When a
// registration would exceed the bound, expired sessions are swept first; if
// the table is still full the soonest-to-expire session is evicted (the
// holder merely loses exclusivity protection early, which is the same
// outcome as its TTL lapsing).
//
// Thread safety: all methods take an internal mutex; FMS handlers call in
// from many TcpServer workers at once and the GC thread sweeps concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "core/layout.h"

namespace loco::core {

class SessionTable {
 public:
  struct Options {
    // Session term; renewed by any RPC from the holding client.
    std::uint64_t ttl_ns = 60ull * 1'000'000'000;
    // Upper bound on live (file, client) sessions.
    std::size_t max_sessions = 65536;
    // Metric name prefix, e.g. "server.fms1.sessions".  Empty disables
    // metric registration (unit tests).
    std::string metrics_prefix;
  };

  struct Entry {
    fs::Uuid dir_uuid;
    std::string name;
    std::uint64_t client = 0;
    std::uint64_t expiry = 0;
    bool exclusive = false;
  };

  SessionTable() : SessionTable(Options()) {}
  explicit SessionTable(Options options);

  // Register (or renew) `client`'s session on (dir_uuid, name) at
  // steady-clock instant `now`.  Returns false when the exclusivity contract
  // refuses it: an exclusive open while any *other* client holds a live
  // session, or any open while another client holds a live exclusive one.
  bool Open(fs::Uuid dir_uuid, const std::string& name, std::uint64_t client,
            bool exclusive, std::uint64_t now);

  // Drop `client`'s session on one file.  Returns false if none existed.
  bool Close(fs::Uuid dir_uuid, const std::string& name, std::uint64_t client);

  // Renew every session held by `client` (called on any RPC it sends).
  // O(log clients): records the client's last-seen instant; liveness checks
  // treat max(open expiry, last_seen + ttl) as the effective expiry, so the
  // renewal is lazy instead of walking every session the client holds on
  // every RPC it sends.
  void Touch(std::uint64_t client, std::uint64_t now);

  // Drop every session of `client` (its connections are gone).  Returns the
  // number dropped.
  std::size_t DropClient(std::uint64_t client);

  // Drop every session on one file (the file was removed or purged).
  void DropFile(fs::Uuid dir_uuid, const std::string& name);

  // Drop sessions whose TTL lapsed (GC sweep).  Returns the number dropped.
  std::size_t SweepExpired(std::uint64_t now);

  // Any live session on (dir_uuid, name) at `now`?
  bool HasLiveSession(fs::Uuid dir_uuid, const std::string& name,
                      std::uint64_t now) const;

  std::vector<Entry> List() const;
  std::size_t size() const;
  std::uint64_t ttl_ns() const noexcept { return options_.ttl_ns; }

 private:
  struct Holder {
    std::uint64_t expiry = 0;
    bool exclusive = false;
  };
  using FileKey = std::pair<std::uint64_t, std::string>;  // (dir uuid, name)

  // Caller holds mu_.  Removes one (file, client) session and its indexes.
  void EraseLocked(const FileKey& key, std::uint64_t client);
  // Caller holds mu_.  Frees at least one slot: sweep expired, then evict
  // the soonest-to-expire live session.
  void MakeRoomLocked(std::uint64_t now);
  // Caller holds mu_.  The session's effective expiry: its own term or the
  // holder's last-seen instant plus one TTL, whichever is later.
  std::uint64_t ExpiryLocked(std::uint64_t client, const Holder& h) const;

  const Options options_;
  mutable std::mutex mu_;
  // file -> {client -> holder}
  std::map<FileKey, std::map<std::uint64_t, Holder>> sessions_;
  // client -> its open files (DropClient without a full scan)
  std::map<std::uint64_t, std::map<FileKey, bool>> by_client_;
  // client -> instant of its most recent RPC (only clients holding sessions;
  // erased with the client's last session).  Touch writes here in O(log n)
  // instead of renewing each session eagerly.
  std::map<std::uint64_t, std::uint64_t> last_seen_;
  std::size_t count_ = 0;

  // sessions.* counters (null when metrics_prefix is empty).
  common::Counter* opened_ = nullptr;
  common::Counter* closed_ = nullptr;
  common::Counter* pruned_ = nullptr;    // disconnect-driven drops
  common::Counter* expired_ = nullptr;   // TTL-sweep drops
  common::Counter* rejected_ = nullptr;  // exclusivity refusals
  common::MetricsRegistry::GaugeHandle live_gauge_;
};

}  // namespace loco::core
