#include "core/gc.h"

#include <algorithm>
#include <chrono>

#include "fs/wire.h"

namespace loco::core {

GcManager::GcManager(Options options)
    : options_(std::move(options)),
      cycles_metric_(&common::MetricsRegistry::Default().GetCounter(
          options_.metrics_prefix + ".cycles")),
      ops_metric_(&common::MetricsRegistry::Default().GetCounter(
          options_.metrics_prefix + ".ops")),
      reclaimed_metric_(&common::MetricsRegistry::Default().GetCounter(
          options_.metrics_prefix + ".reclaimed")),
      throttle_ns_metric_(&common::MetricsRegistry::Default().GetCounter(
          options_.metrics_prefix + ".throttle_ns")) {}

GcManager::~GcManager() { Stop(); }

void GcManager::AddTask(std::string name, GcTaskFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  tasks_.push_back(Task{std::move(name), std::move(fn)});
}

void GcManager::SetLoadSignal(LoadSignal signal) {
  std::lock_guard<std::mutex> lock(mu_);
  load_signal_ = std::move(signal);
}

double GcManager::PacingFactorLocked() const {
  if (!load_signal_) return 1.0;
  const common::Nanos delay = load_signal_();
  if (delay <= options_.load_low_ns) return 1.0;
  if (delay >= options_.load_high_ns) return options_.load_min_factor;
  // Linear ramp between the watermarks.
  const double span =
      static_cast<double>(options_.load_high_ns - options_.load_low_ns);
  const double t = static_cast<double>(delay - options_.load_low_ns) / span;
  return 1.0 - t * (1.0 - options_.load_min_factor);
}

double GcManager::CurrentPacingFactor() const {
  std::lock_guard<std::mutex> lock(mu_);
  return PacingFactorLocked();
}

void GcManager::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void GcManager::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool GcManager::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void GcManager::Loop() {
  // Token bucket: refilled at ops_per_sec, capped at a few batches of burst.
  // Steps may overdraw (a harvest pass costs what the store holds); the debt
  // is slept off before the next step runs, which is exactly the rate
  // guarantee we want.
  double tokens = options_.batch_ops;
  const double cap = std::max(4.0 * options_.batch_ops, 1.0);
  common::Nanos last_refill = common::CpuTimer::Now();
  std::size_t next_task = 0;
  std::size_t idle_streak = 0;

  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    const common::Nanos now = common::CpuTimer::Now();
    // Adaptive pacing: scale the refill rate by the serving-load factor so a
    // saturated foreground (queueing admission delay) starves housekeeping
    // first, and an idle one restores the configured rate.
    const double rate = options_.ops_per_sec * PacingFactorLocked();
    if (rate > 0) {
      tokens = std::min(cap, tokens + common::ToSeconds(now - last_refill) * rate);
    } else if (options_.ops_per_sec <= 0) {
      tokens = cap;  // unthrottled configuration
    }
    last_refill = now;

    if (tasks_.empty()) {
      cv_.wait_for(lock, std::chrono::nanoseconds(options_.idle_sleep_ns));
      continue;
    }
    if (tokens < 1.0) {
      // Throttled: sleep until roughly one batch of tokens accrues at the
      // current (possibly load-scaled) rate.
      const double deficit = options_.batch_ops - tokens;
      const common::Nanos wait = std::min<common::Nanos>(
          options_.idle_sleep_ns,
          static_cast<common::Nanos>(deficit / std::max(rate, 1e-9) *
                                     common::kSecond) + 1);
      throttle_ns_metric_->Add(static_cast<std::uint64_t>(wait));
      cv_.wait_for(lock, std::chrono::nanoseconds(wait));
      continue;
    }
    if (idle_streak >= tasks_.size()) {
      // A full round found no work; back off before polling the stores again.
      idle_streak = 0;
      cv_.wait_for(lock, std::chrono::nanoseconds(options_.idle_sleep_ns));
      continue;
    }

    const std::uint32_t budget = static_cast<std::uint32_t>(
        std::min<double>(options_.batch_ops, tokens));
    const std::size_t index = next_task;
    next_task = (next_task + 1) % tasks_.size();
    if (next_task == 0) {
      ++cycles_;
      cycles_metric_->Add();
    }
    GcTaskFn fn = tasks_[index].fn;

    lock.unlock();
    const GcStepResult result = fn(budget);
    lock.lock();

    tasks_[index].calls += 1;
    tasks_[index].ops += result.ops;
    tasks_[index].reclaimed += result.reclaimed;
    total_ops_ += result.ops;
    total_reclaimed_ += result.reclaimed;
    ops_metric_->Add(result.ops);
    reclaimed_metric_->Add(result.reclaimed);
    tokens -= std::max<std::uint32_t>(result.ops, 1);
    idle_streak = result.ops == 0 ? idle_streak + 1 : 0;
  }
}

GcManager::Status GcManager::GetStatus() const {
  std::lock_guard<std::mutex> lock(mu_);
  Status status;
  status.running = running_;
  status.cycles = cycles_;
  status.ops = total_ops_;
  status.reclaimed = total_reclaimed_;
  status.tasks.reserve(tasks_.size());
  for (const Task& task : tasks_) {
    status.tasks.push_back(
        TaskStatus{task.name, task.calls, task.ops, task.reclaimed});
  }
  return status;
}

std::string GcManager::StatusPayload() const {
  const Status status = GetStatus();
  std::vector<std::string> entries;
  entries.reserve(status.tasks.size());
  for (const TaskStatus& task : status.tasks) {
    entries.push_back(fs::Pack(task.name, task.calls, task.ops, task.reclaimed));
  }
  return fs::Pack(static_cast<std::uint8_t>(status.running ? 1 : 0),
                  status.cycles, status.ops, status.reclaimed, entries);
}

Result<GcManager::Status> GcManager::ParseStatusPayload(
    std::string_view payload) {
  std::uint8_t running = 0;
  Status status;
  std::vector<std::string> entries;
  if (!fs::Unpack(payload, running, status.cycles, status.ops,
                  status.reclaimed, entries)) {
    return {ErrCode::kCorruption, "bad gc status payload"};
  }
  status.running = running != 0;
  for (const std::string& entry : entries) {
    TaskStatus task;
    if (!fs::Unpack(entry, task.name, task.calls, task.ops, task.reclaimed)) {
      return {ErrCode::kCorruption, "bad gc status entry"};
    }
    status.tasks.push_back(std::move(task));
  }
  return status;
}

}  // namespace loco::core
