// LocoClient ("LocoLib") — the LocoFS client library (§3.1).
//
// Routes directory operations to the single DMS, file-metadata operations to
// FMS servers chosen by consistent hashing over (parent uuid + name), and
// data to object-store servers chosen by file uuid.  Optionally keeps the
// client directory-metadata cache of §3.2.2: d-inode entries only, guarded
// by a lease (30 s by default); file inodes and dirents are never cached.
//
// Operation → RPC decomposition is documented in DESIGN.md §5.  Two known,
// deliberate relaxations versus the strict single-node contract (both
// inherent to the paper's design and documented in DESIGN.md):
//   * on a cache hit the parent's ACL and the subdirectory shadow check are
//     evaluated from leased state (the lease carries the parent's subdir
//     names) rather than re-validated at the DMS;
//   * a path that traverses *through a file* reports kNotFound rather than
//     kNotDir (no server holds both namespaces).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "core/layout.h"
#include "core/ring.h"
#include "core/shard.h"
#include "fs/client.h"
#include "net/call.h"
#include "net/rpc.h"

namespace loco::core {

class LocoClient;

// Bridge between one net::NotifyListener and the LocoClient instances sharing
// its mount: the listener's reader thread calls Invalidate/Resync, which fan
// out to every registered client.  Clients register in their constructor and
// deregister in their destructor, so the fanout must be owned shared_ptr-style
// by both the mount and each client — a push arriving while a client is being
// destroyed either completes before ~LocoClient returns or never sees it.
class NotifyFanout {
 public:
  void Add(LocoClient* client);
  void Remove(LocoClient* client);

  // A leased directory changed on the server (wire::kNotifyInvalidate).
  void Invalidate(const std::string& path, bool subtree,
                  std::uint64_t wall_ts_ns);
  // Pushes may have been missed (gap / reconnect): drop all cached state.
  void Resync();

 private:
  std::mutex mu_;
  std::vector<LocoClient*> clients_;
};

class LocoClient final : public fs::FileSystemClient {
 public:
  struct Config {
    // Ordered DMS shard set (docs/SHARDING.md).  Placement is positional —
    // every client and tool must list the shards in the same order.  A
    // single entry reproduces the paper's one-DMS deployment exactly.
    std::vector<net::NodeId> dms = {0};
    std::vector<net::NodeId> fms;
    std::vector<net::NodeId> object_stores;
    bool cache_enabled = true;                     // LocoFS-C vs LocoFS-NC
    std::uint64_t lease_ns = 30ull * 1'000'000'000;  // 30 s (§3.2.2)
    fs::TimeFn now;                                // operation timestamps
    // Optional push plane (core::Connect wires this): the client registers
    // with the fanout so server pushes invalidate its lease cache between
    // operations instead of waiting out lease_ns.
    std::shared_ptr<NotifyFanout> fanout;
  };

  LocoClient(net::Channel& channel, Config config);
  ~LocoClient() override;

  // fs::FileSystemClient ------------------------------------------------
  net::Task<Status> Mkdir(std::string path, std::uint32_t mode) override;
  net::Task<Status> Rmdir(std::string path) override;
  net::Task<Result<std::vector<fs::DirEntry>>> Readdir(std::string path) override;
  net::Task<Status> Create(std::string path, std::uint32_t mode) override;
  net::Task<Status> Unlink(std::string path) override;
  net::Task<Status> Rename(std::string from, std::string to) override;
  net::Task<Result<fs::Attr>> Stat(std::string path) override;
  net::Task<Status> Chmod(std::string path, std::uint32_t mode) override;
  net::Task<Status> Chown(std::string path, std::uint32_t uid,
                          std::uint32_t gid) override;
  net::Task<Status> Access(std::string path, std::uint32_t want) override;
  net::Task<Status> Utimens(std::string path, std::uint64_t mtime,
                            std::uint64_t atime) override;
  net::Task<Status> Truncate(std::string path, std::uint64_t size) override;
  net::Task<Result<fs::Attr>> Open(std::string path) override;
  net::Task<Status> Close(std::string path) override;
  net::Task<Status> Write(std::string path, std::uint64_t offset,
                          std::string data) override;
  net::Task<Result<std::string>> Read(std::string path, std::uint64_t offset,
                                      std::uint64_t length) override;

  // Batched metadata ops (proto::kFmsBatchCreate / kFmsBatchStat /
  // kFmsReaddirPlus): names under ONE parent directory, grouped by FMS
  // placement so each server sees a single frame carrying all of its
  // sub-ops.  One LookupDir covers the parent for the whole batch.  Each
  // entry succeeds or fails alone (per-sub-op ErrCode); only transport-level
  // failures or a corrupt batch envelope fail the call as a whole.
  //
  // Per-entry stat result of StatMany.
  struct StatEntry {
    ErrCode code = ErrCode::kOk;
    fs::Attr attr;  // valid only when code == kOk
  };
  // Readdir entry with attributes: files carry their Attr (or the per-entry
  // error a concurrent remove produced); subdirectories carry the name only
  // (the DMS readdir reply has no per-subdir attrs).
  struct EntryPlus {
    std::string name;
    bool is_dir = false;
    ErrCode code = ErrCode::kOk;
    fs::Attr attr;  // files with code == kOk only
  };
  // Create every `names[i]` under `dir_path`; result[i] is that entry's
  // outcome, in `names` order.  The subdirectory shadow check runs against
  // the leased subdir set when the parent lease is live (same name list the
  // DMS would consult); with caching disabled it is skipped.
  net::Task<Result<std::vector<ErrCode>>> CreateMany(
      std::string dir_path, std::vector<std::string> names,
      std::uint32_t mode);
  // Stat every `names[i]` under `dir_path`; results in `names` order.
  net::Task<Result<std::vector<StatEntry>>> StatMany(
      std::string dir_path, std::vector<std::string> names);
  // Readdir returning file attributes in the same round trips: one DMS
  // readdir plus one kFmsReaddirPlus per FMS, instead of one GetAttr per
  // file.  Entries are sorted by name.
  net::Task<Result<std::vector<EntryPlus>>> ReaddirPlus(std::string path);

  // Bulk tree materialization (proto::kDmsBatchMkdir): all `paths[i]` in one
  // frame to the DMS, applied in order — so a batch may create "a" and then
  // "a/b".  result[i] is that path's outcome in `paths` order.
  net::Task<Result<std::vector<ErrCode>>> MkdirMany(
      std::vector<std::string> paths, std::uint32_t mode);

  // Bulk small-file write: the contents of existing files under ONE parent
  // directory, each replaced wholesale (truncating put at offset 0).  Two
  // batched phases replace the per-file SetSize + ObjWrite pair: one
  // kFmsBatchSetSize frame per FMS (grouped by ring placement; the replies
  // carry each file's uuid), then one kObjBatchPut frame per object store
  // (grouped by uuid placement).  result[i] is entry i's outcome.
  struct PutEntry {
    std::string name;
    std::string data;
  };
  net::Task<Result<std::vector<ErrCode>>> PutMany(std::string dir_path,
                                                  std::vector<PutEntry> entries);

  // Typed fast paths used by benchmarks (mdtest knows object types).
  net::Task<Result<fs::Attr>> StatDir(std::string path) override;
  net::Task<Result<fs::Attr>> StatFile(std::string path) override;
  net::Task<Status> ChmodFile(std::string path, std::uint32_t mode) override;
  net::Task<Status> ChownFile(std::string path, std::uint32_t uid,
                              std::uint32_t gid) override;
  net::Task<Status> AccessFile(std::string path, std::uint32_t want) override;

  // The d-inode cache holds leases whose ancestor ACL checks were performed
  // under the granting identity; an identity change invalidates them all.
  void SetIdentity(fs::Identity id) noexcept override {
    if (id.uid != identity_.uid || id.gid != identity_.gid) ClearCache();
    identity_ = id;
  }

  // Push-plane entry points, called from the notify listener's reader thread
  // via NotifyFanout (the only cross-thread access the client supports; the
  // coroutine API itself stays single-threaded).
  void OnInvalidate(const std::string& path, bool subtree,
                    std::uint64_t wall_ts_ns);
  void OnResync();

  // Cache observability.
  std::uint64_t cache_hits() const noexcept {
    std::lock_guard<std::mutex> lock(cache_mu_);
    return cache_hits_;
  }
  std::uint64_t cache_misses() const noexcept {
    std::lock_guard<std::mutex> lock(cache_mu_);
    return cache_misses_;
  }
  std::size_t cache_size() const noexcept {
    std::lock_guard<std::mutex> lock(cache_mu_);
    return cache_.size();
  }
  void DropCache() { ClearCache(); }

 private:
  struct CacheEntry {
    fs::Attr attr;
    std::uint64_t expires_at = 0;
    // Subdirectory names of this directory as of lease grant, maintained
    // locally across Mkdir/Rmdir/Rename so cache-hit parents still enforce
    // the file/subdirectory shadow check.
    std::unordered_set<std::string> subdirs;
  };

  std::uint64_t Now() const { return cfg_.now ? cfg_.now() : 0; }

  // Resolve a directory (usually a parent): serve from the lease cache when
  // possible, otherwise one DMS Lookup RPC.  `want` permission bits are
  // evaluated either locally (hit) or by the DMS (miss); `shadow_name`
  // triggers the subdirectory shadow check on the uncached path.
  net::Task<Result<fs::Attr>> LookupDir(std::string path, std::uint32_t want,
                                        std::string shadow_name);

  // Distinguish kNotFound vs kIsDir/kNotDir after an FMS miss by consulting
  // the DMS (keeps client-visible error codes faithful to the contract).
  net::Task<Status> ClassifyMissingFile(std::string path);

  void InvalidatePrefix(const std::string& path);
  void InvalidatePrefixLocked(const std::string& path);
  void ClearCache() noexcept;
  // Erase `name` from / insert it into the cached subdir set of `parent`
  // (no-op when the parent holds no lease).
  void NoteSubdir(std::string_view parent, std::string_view name, bool present);

  // Cross-shard directory rename: the two-phase transfer protocol of
  // docs/SHARDING.md, driven against the source and destination shards.
  net::Task<Status> RenameAcrossShards(std::string from, std::string to,
                                       net::NodeId src_node,
                                       net::NodeId dst_node);

  net::NodeId FmsFor(fs::Uuid dir_uuid, std::string_view name) const {
    return ring_.Locate(FileKey(dir_uuid, name));
  }
  net::NodeId ObjFor(fs::Uuid uuid) const {
    return cfg_.object_stores[uuid.raw() % cfg_.object_stores.size()];
  }
  // Owning DMS shard for a directory path (mirrors FmsFor): subtree
  // placement over the top-level path component, root pinned to shard 0.
  net::NodeId DmsFor(std::string_view path) const {
    return cfg_.dms[shards_.ShardOf(path)];
  }

  net::Channel& channel_;
  Config cfg_;
  HashRing ring_;
  ShardMap shards_;
  // Guards cache_, cache_hits_, cache_misses_: the notify listener's reader
  // thread invalidates entries concurrently with the (otherwise
  // single-threaded) operation path.  Never held across a co_await.
  mutable std::mutex cache_mu_;
  std::unordered_map<std::string, CacheEntry> cache_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  // Process-wide counterparts of the per-instance counters above.
  common::Counter* metric_hits_ = &common::MetricsRegistry::Default()
                                       .GetCounter("client.cache.hits");
  common::Counter* metric_misses_ = &common::MetricsRegistry::Default()
                                         .GetCounter("client.cache.misses");
  common::Counter* metric_invalidations_ =
      &common::MetricsRegistry::Default().GetCounter(
          "client.cache.invalidations");
  // Server-push wall_ts → local receipt delta: the end-to-end invalidation
  // latency the push plane exists to shrink (docs/LEASES.md).
  common::MetricsRegistry::LatencyHistogram* metric_invalidation_latency_ =
      &common::MetricsRegistry::Default().GetHistogram(
          "client.notify.invalidation_latency");
};

}  // namespace loco::core
