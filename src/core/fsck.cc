#include "core/fsck.h"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/proto.h"
#include "fs/path.h"
#include "fs/wire.h"

namespace loco::core {

namespace {

// Deterministic canonical key for duplicate-uuid resolution (I8): the
// surviving inode is the smallest (server, dir uuid, name) tuple, so every
// fsck run over the same state picks the same winner.
struct FileSite {
  std::size_t server;
  std::uint64_t dir_raw;
  std::string name;

  bool operator<(const FileSite& o) const {
    return std::tie(server, dir_raw, name) <
           std::tie(o.server, o.dir_raw, o.name);
  }
};

}  // namespace

const char* FsckFindingName(FsckFindingType type) noexcept {
  switch (type) {
    case FsckFindingType::kMissingParent: return "missing-parent";
    case FsckFindingType::kDanglingDmsDirent: return "dangling-dms-dirent";
    case FsckFindingType::kDeadDirentList: return "dead-dirent-list";
    case FsckFindingType::kOrphanDir: return "orphan-dir";
    case FsckFindingType::kOrphanFile: return "orphan-file";
    case FsckFindingType::kMissingFmsDirent: return "missing-fms-dirent";
    case FsckFindingType::kDanglingFmsDirent: return "dangling-fms-dirent";
    case FsckFindingType::kDuplicateUuid: return "duplicate-uuid";
    case FsckFindingType::kLeakedObject: return "leaked-object";
    case FsckFindingType::kRenameIntent: return "rename-intent";
  }
  return "unknown";
}

std::string FsckFinding::Describe() const {
  std::string out = FsckFindingName(type);
  out += ":";
  switch (type) {
    case FsckFindingType::kMissingParent:
      out += " dir '" + path + "' has no parent d-inode";
      break;
    case FsckFindingType::kDanglingDmsDirent:
      out += " dirent '" + name + "' under '" + path + "' has no d-inode";
      break;
    case FsckFindingType::kDeadDirentList:
      out += " dirent list for dead dir uuid " + std::to_string(dir_uuid.raw());
      break;
    case FsckFindingType::kOrphanDir:
      out += " dir '" + path + "' missing from parent dirent list";
      break;
    case FsckFindingType::kOrphanFile:
      out += " fms" + std::to_string(server) + " file '" + name +
             "' under dead dir uuid " + std::to_string(dir_uuid.raw());
      break;
    case FsckFindingType::kMissingFmsDirent:
      out += " fms" + std::to_string(server) + " file '" + name +
             "' missing from dirent list of dir uuid " +
             std::to_string(dir_uuid.raw());
      break;
    case FsckFindingType::kDanglingFmsDirent:
      out += " fms" + std::to_string(server) + " dirent '" + name +
             "' of dir uuid " + std::to_string(dir_uuid.raw()) +
             " has no inode";
      break;
    case FsckFindingType::kDuplicateUuid:
      out += " file uuid " + std::to_string(file_uuid.raw()) +
             " duplicated at fms" + std::to_string(server) + " name '" + name +
             "'";
      break;
    case FsckFindingType::kLeakedObject:
      out += " osd" + std::to_string(server) + " object uuid " +
             std::to_string(file_uuid.raw()) + " unreferenced";
      break;
    case FsckFindingType::kRenameIntent:
      out += " txid " + std::to_string(txid) + " '" + path + "' -> '" + name +
             "' (dms" + std::to_string(src_shard) + " -> dms" +
             std::to_string(dst_shard) + "): " +
             (roll_forward ? "roll forward" : "roll back");
      break;
  }
  if (!holders.empty()) {
    out += " [held by client";
    if (holders.size() > 1) out += "s";
    for (std::size_t i = 0; i < holders.size(); ++i) {
      out += i == 0 ? " " : ", ";
      out += std::to_string(holders[i]);
    }
    out += "]";
  }
  return out;
}

// ---------------------------------------------------------------- snapshot --

struct FsckRunner::Snapshot {
  // DMS (merged across shards; uuids never collide between shards because
  // each shard allocates from its own sid).
  std::unordered_map<std::string, fs::Uuid> dir_by_path;
  std::unordered_map<std::uint64_t, std::string> path_by_uuid;
  // Which shard each scanned d-inode lives on ("/" is replicated; the first
  // scan — shard 0, the canonical root — wins).
  std::unordered_map<std::string, std::size_t> dir_shard;
  struct DirentList {
    std::size_t shard;  // shard the list was scanned from (repairs go there)
    fs::Uuid uuid;
    std::vector<std::string> names;
  };
  std::vector<DirentList> dms_dirents;
  // Pending cross-shard rename records (kDmsScanIntents), all shards.
  struct Intent {
    std::size_t shard;
    std::uint8_t kind;  // 0 = outgoing intent, 1 = incoming marker
    std::uint64_t txid;
    std::string from, to;
  };
  std::vector<Intent> intents;
  // Per FMS (indexed like Config::fms).
  struct FmsState {
    // (dir uuid, name) -> file uuid
    std::map<std::pair<std::uint64_t, std::string>, fs::Uuid> files;
    std::vector<std::pair<fs::Uuid, std::vector<std::string>>> dirents;
  };
  std::vector<FmsState> fms;
  // Per object store: uuid -> block count.
  std::vector<std::map<std::uint64_t, std::uint64_t>> objects;
};

FsckRunner::FsckRunner(net::Channel& channel, Config config)
    : channel_(channel),
      config_(std::move(config)),
      shards_(config_.dms.size()) {}

Result<std::string> FsckRunner::Call(net::NodeId node, std::uint16_t opcode,
                                     std::string payload) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  net::RpcResponse resp;
  // Fsck scan traffic is housekeeping: tagged background so a saturated
  // server sheds it before any foreground request (the scan reports the
  // error and the operator retries when load drops).
  net::CallMeta meta;
  meta.trace_id = net::NextTraceId();
  meta.priority = net::Priority::kBackground;
  channel_.CallAsyncMeta(node, opcode, std::move(payload), meta,
                     [&](net::RpcResponse r) {
                       {
                         std::lock_guard<std::mutex> lock(mu);
                         resp = std::move(r);
                         done = true;
                       }
                       cv.notify_one();
                     });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  if (!resp.ok()) return ErrStatus(resp.code);
  return std::move(resp.payload);
}

Result<FsckRunner::Epochs> FsckRunner::PinSnapshots() {
  Epochs epochs;
  auto pin = [&](net::NodeId node, std::uint64_t* out) -> Status {
    auto r = Call(node, proto::kCtlSnapshotBegin, {});
    LOCO_RETURN_IF_ERROR(r.status());
    if (!fs::Unpack(*r, *out)) return ErrStatus(ErrCode::kCorruption);
    return OkStatus();
  };
  epochs.dms.resize(config_.dms.size());
  for (std::size_t i = 0; i < config_.dms.size(); ++i) {
    LOCO_RETURN_IF_ERROR(pin(config_.dms[i], &epochs.dms[i]));
  }
  epochs.fms.resize(config_.fms.size());
  for (std::size_t i = 0; i < config_.fms.size(); ++i) {
    LOCO_RETURN_IF_ERROR(pin(config_.fms[i], &epochs.fms[i]));
  }
  epochs.object_stores.resize(config_.object_stores.size());
  for (std::size_t i = 0; i < config_.object_stores.size(); ++i) {
    LOCO_RETURN_IF_ERROR(pin(config_.object_stores[i], &epochs.object_stores[i]));
  }
  return epochs;
}

void FsckRunner::ReleaseSnapshots(const Epochs& epochs) {
  // Best-effort: servers also evict pinned snapshots on their own (bounded
  // ring), so a lost End just ages out.
  auto release = [&](net::NodeId node, std::uint64_t epoch) {
    if (epoch != 0) (void)Call(node, proto::kCtlSnapshotEnd, fs::Pack(epoch));
  };
  for (std::size_t i = 0; i < epochs.dms.size(); ++i) {
    release(config_.dms[i], epochs.dms[i]);
  }
  for (std::size_t i = 0; i < epochs.fms.size(); ++i) {
    release(config_.fms[i], epochs.fms[i]);
  }
  for (std::size_t i = 0; i < epochs.object_stores.size(); ++i) {
    release(config_.object_stores[i], epochs.object_stores[i]);
  }
}

Result<FsckRunner::Snapshot> FsckRunner::Scan(const Epochs* epochs) {
  Snapshot snap;
  const auto payload_for = [epochs](std::uint64_t epoch) {
    return epochs ? fs::Pack(epoch) : std::string{};
  };

  std::vector<std::string> entries;
  for (std::size_t shard = 0; shard < config_.dms.size(); ++shard) {
    const std::string epoch_payload =
        payload_for(epochs ? epochs->dms[shard] : 0);

    auto dirs = Call(config_.dms[shard], proto::kDmsScanDirs, epoch_payload);
    LOCO_RETURN_IF_ERROR(dirs.status());
    entries.clear();
    if (!fs::Unpack(*dirs, entries)) return ErrStatus(ErrCode::kCorruption);
    for (const std::string& entry : entries) {
      std::string path;
      fs::Uuid uuid;
      if (!fs::Unpack(entry, path, uuid)) {
        return ErrStatus(ErrCode::kCorruption);
      }
      snap.dir_shard.emplace(path, shard);
      snap.dir_by_path.emplace(path, uuid);
      snap.path_by_uuid.emplace(uuid.raw(), std::move(path));
    }

    auto dirents =
        Call(config_.dms[shard], proto::kDmsScanDirents, epoch_payload);
    LOCO_RETURN_IF_ERROR(dirents.status());
    entries.clear();
    if (!fs::Unpack(*dirents, entries)) return ErrStatus(ErrCode::kCorruption);
    for (const std::string& entry : entries) {
      fs::Uuid uuid;
      std::vector<std::string> names;
      if (!fs::Unpack(entry, uuid, names)) {
        return ErrStatus(ErrCode::kCorruption);
      }
      snap.dms_dirents.push_back({shard, uuid, std::move(names)});
    }

    auto intents =
        Call(config_.dms[shard], proto::kDmsScanIntents, epoch_payload);
    LOCO_RETURN_IF_ERROR(intents.status());
    entries.clear();
    if (!fs::Unpack(*intents, entries)) return ErrStatus(ErrCode::kCorruption);
    for (const std::string& entry : entries) {
      Snapshot::Intent in;
      in.shard = shard;
      if (!fs::Unpack(entry, in.kind, in.txid, in.from, in.to)) {
        return ErrStatus(ErrCode::kCorruption);
      }
      if (in.kind > 1) continue;  // kind 2 = tombstone, permanent by design
      snap.intents.push_back(std::move(in));
    }
  }

  snap.fms.resize(config_.fms.size());
  for (std::size_t i = 0; i < config_.fms.size(); ++i) {
    auto files = Call(config_.fms[i], proto::kFmsScanFiles,
                      payload_for(epochs ? epochs->fms[i] : 0));
    LOCO_RETURN_IF_ERROR(files.status());
    entries.clear();
    if (!fs::Unpack(*files, entries)) return ErrStatus(ErrCode::kCorruption);
    for (const std::string& entry : entries) {
      fs::Uuid dir_uuid, file_uuid;
      std::string name;
      if (!fs::Unpack(entry, dir_uuid, name, file_uuid)) {
        return ErrStatus(ErrCode::kCorruption);
      }
      snap.fms[i].files.emplace(
          std::make_pair(dir_uuid.raw(), std::move(name)), file_uuid);
    }
    auto fdirents = Call(config_.fms[i], proto::kFmsScanDirents,
                         payload_for(epochs ? epochs->fms[i] : 0));
    LOCO_RETURN_IF_ERROR(fdirents.status());
    entries.clear();
    if (!fs::Unpack(*fdirents, entries)) return ErrStatus(ErrCode::kCorruption);
    for (const std::string& entry : entries) {
      fs::Uuid dir_uuid;
      std::vector<std::string> names;
      if (!fs::Unpack(entry, dir_uuid, names)) {
        return ErrStatus(ErrCode::kCorruption);
      }
      snap.fms[i].dirents.emplace_back(dir_uuid, std::move(names));
    }
  }

  snap.objects.resize(config_.object_stores.size());
  for (std::size_t i = 0; i < config_.object_stores.size(); ++i) {
    auto objects = Call(config_.object_stores[i], proto::kObjScanObjects,
                        payload_for(epochs ? epochs->object_stores[i] : 0));
    LOCO_RETURN_IF_ERROR(objects.status());
    entries.clear();
    if (!fs::Unpack(*objects, entries)) return ErrStatus(ErrCode::kCorruption);
    for (const std::string& entry : entries) {
      std::uint64_t uuid = 0, blocks = 0;
      if (!fs::Unpack(entry, uuid, blocks)) {
        return ErrStatus(ErrCode::kCorruption);
      }
      snap.objects[i].emplace(uuid, blocks);
    }
  }
  return snap;
}

// ---------------------------------------------------------------- analysis --

std::vector<FsckFinding> FsckRunner::Analyze(const Snapshot& snap) const {
  std::vector<FsckFinding> findings;

  // I10 first, alone: a pending cross-shard transfer makes the moved subtree
  // look damaged to every other DMS invariant (paths present on two shards,
  // dirents with no child, ...), so intent findings are resolved before any
  // other check is trusted — this pass reports only them and the multi-pass
  // loop re-scans once they are gone.
  if (!snap.intents.empty()) {
    // Pair each txid's outgoing intent with its incoming marker.
    std::map<std::uint64_t, FsckFinding> by_txid;
    for (const Snapshot::Intent& in : snap.intents) {
      FsckFinding& f = by_txid[in.txid];
      f.type = FsckFindingType::kRenameIntent;
      f.txid = in.txid;
      if (in.kind == 0) {
        f.has_intent = true;
        f.src_shard = in.shard;
        f.path = in.from;
        f.name = in.to;
      } else {
        f.has_marker = true;
        f.dst_shard = in.shard;
        if (f.name.empty()) f.name = in.to;
      }
    }
    for (auto& [txid, f] : by_txid) {
      if (!f.has_marker) f.dst_shard = DmsShardOf(f.name);
      if (!f.has_intent) f.src_shard = f.path.empty() ? 0 : DmsShardOf(f.path);
      // Commit-point rule: the destination root's presence on the
      // destination shard decides the direction.  The uuid must match the
      // still-present source root (when the source has it) — a foreign
      // directory at `to` means our transfer never landed there.
      const auto to_it = snap.dir_by_path.find(f.name);
      const auto to_shard = snap.dir_shard.find(f.name);
      bool dst_present = to_it != snap.dir_by_path.end() &&
                         to_shard != snap.dir_shard.end() &&
                         to_shard->second == f.dst_shard;
      if (dst_present && f.has_intent) {
        const auto from_it = snap.dir_by_path.find(f.path);
        if (from_it != snap.dir_by_path.end() &&
            from_it->second != to_it->second) {
          dst_present = false;  // foreign occupant, not our subtree
        }
      }
      f.roll_forward = dst_present;
      f.server = f.src_shard;
      findings.push_back(std::move(f));
    }
    return findings;
  }

  // I1: every directory except the root has a live parent.  Sort missing
  // parents shallowest-first so the Mkdir repairs apply top-down.
  std::set<std::string> missing_parents;
  for (const auto& [path, uuid] : snap.dir_by_path) {
    if (path == "/") continue;
    const std::string parent(fs::ParentPath(path));
    if (!snap.dir_by_path.count(parent)) missing_parents.insert(parent);
  }
  for (const std::string& parent : missing_parents) {
    FsckFinding f;
    f.type = FsckFindingType::kMissingParent;
    f.path = parent;
    findings.push_back(std::move(f));
  }

  // I2 / I3: DMS dirent lists point only at live children and are keyed by
  // live directories.  Repairs are routed to the shard the list lives on.
  for (const auto& list : snap.dms_dirents) {
    auto it = snap.path_by_uuid.find(list.uuid.raw());
    if (it == snap.path_by_uuid.end()) {
      FsckFinding f;
      f.type = FsckFindingType::kDeadDirentList;
      f.server = list.shard;
      f.dir_uuid = list.uuid;
      findings.push_back(std::move(f));
      continue;
    }
    for (const std::string& name : list.names) {
      if (!snap.dir_by_path.count(fs::JoinPath(it->second, name))) {
        FsckFinding f;
        f.type = FsckFindingType::kDanglingDmsDirent;
        f.server = list.shard;
        f.path = it->second;
        f.name = name;
        findings.push_back(std::move(f));
      }
    }
  }

  // I4: every directory is listed in its parent's dirent list.  The root's
  // list is partitioned: each shard holds the slice naming its own
  // subtrees, so the per-uuid union below is the full membership view.
  std::unordered_map<std::uint64_t, std::unordered_set<std::string>>
      dirents_by_uuid;
  for (const auto& list : snap.dms_dirents) {
    auto& set = dirents_by_uuid[list.uuid.raw()];
    for (const std::string& name : list.names) set.insert(name);
  }
  for (const auto& [path, uuid] : snap.dir_by_path) {
    if (path == "/") continue;
    const std::string parent(fs::ParentPath(path));
    auto pit = snap.dir_by_path.find(parent);
    if (pit == snap.dir_by_path.end()) continue;  // already an I1 finding
    const auto lit = dirents_by_uuid.find(pit->second.raw());
    const std::string name(fs::BaseName(path));
    if (lit == dirents_by_uuid.end() || !lit->second.count(name)) {
      FsckFinding f;
      f.type = FsckFindingType::kOrphanDir;
      // The re-added name belongs on the child's shard: that shard holds
      // the parent's dirent slice naming this subtree.
      f.server = DmsShardOf(path);
      f.path = parent;
      f.name = name;
      findings.push_back(std::move(f));
    }
  }

  // I8 first (its purges inform which inodes "survive" for I9): group file
  // sites by uuid, keep the smallest site, flag the rest.
  std::map<std::uint64_t, std::vector<FileSite>> sites_by_uuid;
  for (std::size_t i = 0; i < snap.fms.size(); ++i) {
    for (const auto& [key, file_uuid] : snap.fms[i].files) {
      sites_by_uuid[file_uuid.raw()].push_back(
          FileSite{i, key.first, key.second});
    }
  }
  // (server, dir, name) keys of inodes that are being purged this pass.
  std::set<FileSite> purged;
  for (auto& [uuid, sites] : sites_by_uuid) {
    if (sites.size() < 2) continue;
    std::sort(sites.begin(), sites.end());
    // Prefer a winner whose parent directory is live; fall back to the
    // globally smallest site when none is.
    std::size_t winner = 0;
    for (std::size_t s = 0; s < sites.size(); ++s) {
      if (snap.path_by_uuid.count(sites[s].dir_raw)) {
        winner = s;
        break;
      }
    }
    for (std::size_t s = 0; s < sites.size(); ++s) {
      if (s == winner) continue;
      FsckFinding f;
      f.type = FsckFindingType::kDuplicateUuid;
      f.server = sites[s].server;
      f.name = sites[s].name;
      f.dir_uuid = fs::Uuid(sites[s].dir_raw);
      f.file_uuid = fs::Uuid(uuid);
      findings.push_back(std::move(f));
      purged.insert(sites[s]);
    }
  }

  // I5 / I6: file inodes under live directories are listed in their FMS
  // dirent list; inodes under dead directories are purged with their data.
  std::vector<std::unordered_map<std::uint64_t, std::unordered_set<std::string>>>
      fms_dirents(snap.fms.size());
  for (std::size_t i = 0; i < snap.fms.size(); ++i) {
    for (const auto& [uuid, names] : snap.fms[i].dirents) {
      auto& set = fms_dirents[i][uuid.raw()];
      for (const std::string& name : names) set.insert(name);
    }
  }
  // uuids of inodes that survive this pass — the I9 reference set.
  std::unordered_set<std::uint64_t> referenced;
  for (std::size_t i = 0; i < snap.fms.size(); ++i) {
    for (const auto& [key, file_uuid] : snap.fms[i].files) {
      const auto& [dir_raw, name] = key;
      if (purged.count(FileSite{i, dir_raw, name})) continue;
      if (!snap.path_by_uuid.count(dir_raw)) {
        FsckFinding f;
        f.type = FsckFindingType::kOrphanFile;
        f.server = i;
        f.name = name;
        f.dir_uuid = fs::Uuid(dir_raw);
        f.file_uuid = file_uuid;
        findings.push_back(std::move(f));
        continue;
      }
      referenced.insert(file_uuid.raw());
      const auto lit = fms_dirents[i].find(dir_raw);
      if (lit == fms_dirents[i].end() || !lit->second.count(name)) {
        FsckFinding f;
        f.type = FsckFindingType::kMissingFmsDirent;
        f.server = i;
        f.name = name;
        f.dir_uuid = fs::Uuid(dir_raw);
        findings.push_back(std::move(f));
      }
    }
  }

  // I7: FMS dirent names without an inode on that server.
  for (std::size_t i = 0; i < snap.fms.size(); ++i) {
    for (const auto& [uuid, names] : snap.fms[i].dirents) {
      for (const std::string& name : names) {
        if (snap.fms[i].files.count(std::make_pair(uuid.raw(), name))) {
          continue;
        }
        FsckFinding f;
        f.type = FsckFindingType::kDanglingFmsDirent;
        f.server = i;
        f.name = name;
        f.dir_uuid = uuid;
        findings.push_back(std::move(f));
      }
    }
  }

  // I9: objects referenced by no surviving file inode.  Duplicate-uuid
  // purges keep their uuid referenced (the winner still points at the data).
  for (std::size_t i = 0; i < snap.objects.size(); ++i) {
    for (const auto& [uuid, blocks] : snap.objects[i]) {
      if (referenced.count(uuid)) continue;
      FsckFinding f;
      f.type = FsckFindingType::kLeakedObject;
      f.server = i;
      f.file_uuid = fs::Uuid(uuid);
      findings.push_back(std::move(f));
    }
  }

  return findings;
}

// ----------------------------------------------------------------- repairs --

Result<std::uint64_t> FsckRunner::Repair(
    const std::vector<FsckFinding>& findings) {
  const fs::Identity root{0, 0};
  std::uint64_t applied = 0;
  for (const FsckFinding& f : findings) {
    switch (f.type) {
      case FsckFindingType::kMissingParent: {
        // Recreate the lost directory so its children become reachable
        // again.  kExists is fine (an earlier repair in this pass may have
        // created it); a missing grandparent resolves on the next pass.
        auto r = Call(config_.dms[DmsShardOf(f.path)], proto::kDmsMkdir,
                      fs::Pack(f.path, std::uint32_t{0755}, root,
                               std::uint64_t{0}));
        if (!r.ok() && r.code() != ErrCode::kExists &&
            r.code() != ErrCode::kNotFound) {
          return ErrStatus(r.code());
        }
        ++applied;
        break;
      }
      case FsckFindingType::kDanglingDmsDirent: {
        auto r = Call(config_.dms[f.server], proto::kDmsRepairDirent,
                      fs::Pack(f.path, f.name, std::uint8_t{0}));
        LOCO_RETURN_IF_ERROR(r.status());
        ++applied;
        break;
      }
      case FsckFindingType::kDeadDirentList: {
        auto r = Call(config_.dms[f.server], proto::kDmsDropDirents,
                      fs::Pack(f.dir_uuid));
        LOCO_RETURN_IF_ERROR(r.status());
        ++applied;
        break;
      }
      case FsckFindingType::kOrphanDir: {
        auto r = Call(config_.dms[f.server], proto::kDmsRepairDirent,
                      fs::Pack(f.path, f.name, std::uint8_t{1}));
        LOCO_RETURN_IF_ERROR(r.status());
        ++applied;
        break;
      }
      case FsckFindingType::kOrphanFile: {
        auto r = Call(config_.fms[f.server], proto::kFmsPurgeFile,
                      fs::Pack(f.dir_uuid, f.name));
        LOCO_RETURN_IF_ERROR(r.status());
        ++applied;
        // The purged inode owned its data: drop the objects too.
        if (!config_.object_stores.empty() && f.file_uuid.raw() != 0) {
          auto p = Call(ObjFor(f.file_uuid), proto::kObjPurge,
                        fs::Pack(f.file_uuid));
          LOCO_RETURN_IF_ERROR(p.status());
          ++applied;
        }
        break;
      }
      case FsckFindingType::kMissingFmsDirent: {
        auto r = Call(config_.fms[f.server], proto::kFmsRepairDirent,
                      fs::Pack(f.dir_uuid, f.name, std::uint8_t{1}));
        LOCO_RETURN_IF_ERROR(r.status());
        ++applied;
        break;
      }
      case FsckFindingType::kDanglingFmsDirent: {
        auto r = Call(config_.fms[f.server], proto::kFmsRepairDirent,
                      fs::Pack(f.dir_uuid, f.name, std::uint8_t{0}));
        LOCO_RETURN_IF_ERROR(r.status());
        ++applied;
        break;
      }
      case FsckFindingType::kDuplicateUuid: {
        // Purge the losing key only — the surviving inode references the
        // data objects, so they stay.
        auto r = Call(config_.fms[f.server], proto::kFmsPurgeFile,
                      fs::Pack(f.dir_uuid, f.name));
        LOCO_RETURN_IF_ERROR(r.status());
        ++applied;
        break;
      }
      case FsckFindingType::kLeakedObject: {
        auto r = Call(config_.object_stores[f.server], proto::kObjPurge,
                      fs::Pack(f.file_uuid));
        LOCO_RETURN_IF_ERROR(r.status());
        ++applied;
        break;
      }
      case FsckFindingType::kRenameIntent: {
        // Resolve by the commit-point rule Analyze computed.  Forward: drop
        // the lingering marker, then Finish the source (deletes its copy).
        // Back: fence the destination FIRST (its tombstone blocks a commit
        // still queued anywhere), purge any partial install, then abort the
        // source — the same ordering the client uses.
        if (f.roll_forward) {
          if (f.has_marker) {
            auto r = Call(config_.dms[f.dst_shard], proto::kDmsAbortIncoming,
                          fs::Pack(f.txid, std::uint8_t{0}));
            LOCO_RETURN_IF_ERROR(r.status());
            ++applied;
          }
          if (f.has_intent) {
            auto r = Call(config_.dms[f.src_shard], proto::kDmsRenameFinish,
                          fs::Pack(f.txid));
            LOCO_RETURN_IF_ERROR(r.status());
            ++applied;
          }
        } else {
          auto fence = Call(config_.dms[f.dst_shard], proto::kDmsAbortIncoming,
                            fs::Pack(f.txid, std::uint8_t{1}));
          LOCO_RETURN_IF_ERROR(fence.status());
          ++applied;
          if (f.has_intent) {
            auto r = Call(config_.dms[f.src_shard], proto::kDmsRenameAbort,
                          fs::Pack(f.txid));
            LOCO_RETURN_IF_ERROR(r.status());
            ++applied;
          }
        }
        break;
      }
    }
  }
  return applied;
}

void FsckRunner::AnnotateSessionHolders(std::vector<FsckFinding>* findings) {
  // One session-list sweep, then match findings by (server, dir uuid, name).
  // Best-effort: an FMS that fails the list RPC just contributes no holders.
  std::map<std::tuple<std::size_t, std::uint64_t, std::string>,
           std::vector<std::uint64_t>>
      holders;
  for (std::size_t i = 0; i < config_.fms.size(); ++i) {
    auto r = Call(config_.fms[i], proto::kCtlSessionList, {});
    if (!r.ok()) continue;
    std::vector<std::string> entries;
    if (!fs::Unpack(*r, entries)) continue;
    for (const std::string& entry : entries) {
      fs::Uuid dir_uuid{0};
      std::string name;
      std::uint64_t client_id = 0, ttl = 0;
      std::uint8_t exclusive = 0;
      if (!fs::Unpack(entry, dir_uuid, name, client_id, ttl, exclusive)) {
        continue;
      }
      holders[{i, dir_uuid.raw(), name}].push_back(client_id);
    }
  }
  if (holders.empty()) return;
  for (FsckFinding& f : *findings) {
    auto it = holders.find({f.server, f.dir_uuid.raw(), f.name});
    if (it != holders.end()) f.holders = it->second;
  }
}

Result<FsckReport> FsckRunner::Run(const Options& options) {
  if (options.live) {
    auto report = RunLive(options);
    if (report.ok() && !report->findings.empty()) {
      AnnotateSessionHolders(&report->findings);
    }
    return report;
  }
  FsckReport report;
  for (std::uint32_t pass = 0; pass < std::max(options.max_passes, 1u);
       ++pass) {
    auto snap = Scan(nullptr);
    LOCO_RETURN_IF_ERROR(snap.status());
    report.findings = Analyze(*snap);
    ++report.passes;
    if (report.findings.empty() || !options.repair) return report;
    auto applied = Repair(report.findings);
    LOCO_RETURN_IF_ERROR(applied.status());
    report.repairs += *applied;
  }
  // Out of passes: report whatever the final state shows.
  auto snap = Scan(nullptr);
  LOCO_RETURN_IF_ERROR(snap.status());
  report.findings = Analyze(*snap);
  ++report.passes;
  return report;
}

namespace {

// Canonical identity of a finding across passes (live-mode confirmation).
std::string FindingKey(const FsckFinding& f) {
  return fs::Pack(static_cast<std::uint8_t>(f.type),
                  static_cast<std::uint64_t>(f.server), f.path, f.name,
                  f.dir_uuid, f.file_uuid, f.txid);
}

}  // namespace

Result<FsckReport> FsckRunner::RunLive(const Options& options) {
  FsckReport report;
  std::set<std::string> suspects;  // finding keys from the previous pass
  // Confirmation needs at least two looks at the cluster.
  const std::uint32_t max_passes = std::max(options.max_passes, 2u);
  for (std::uint32_t pass = 0; pass < max_passes; ++pass) {
    auto epochs = PinSnapshots();
    LOCO_RETURN_IF_ERROR(epochs.status());
    auto snap = Scan(&*epochs);
    ReleaseSnapshots(*epochs);
    LOCO_RETURN_IF_ERROR(snap.status());
    const std::vector<FsckFinding> findings = Analyze(*snap);
    ++report.passes;

    std::vector<FsckFinding> confirmed;
    std::set<std::string> keys;
    for (const FsckFinding& f : findings) {
      std::string key = FindingKey(f);
      if (suspects.count(key)) confirmed.push_back(f);
      keys.insert(std::move(key));
    }
    suspects = std::move(keys);
    report.findings = confirmed;

    if (findings.empty()) return report;  // clean scan: nothing suspected
    if (pass == 0) continue;              // first look: nothing confirmable
    if (!options.repair) return report;   // dry run: report the confirmed set
    if (!confirmed.empty()) {
      auto applied = Repair(confirmed);
      LOCO_RETURN_IF_ERROR(applied.status());
      report.repairs += *applied;
    }
    // Unconfirmed suspects (in-flight ops or fresh damage) get another pass.
  }
  return report;
}

}  // namespace loco::core
