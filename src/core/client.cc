#include "core/client.h"

#include <algorithm>
#include <atomic>

#include "common/clock.h"
#include "core/layout.h"
#include "core/proto.h"
#include "fs/path.h"
#include "fs/wire.h"
#include "net/wire.h"

namespace loco::core {

namespace {

// Decode an Attr-only response payload.
Result<fs::Attr> AttrFrom(const net::RpcResponse& resp) {
  if (!resp.ok()) return ErrStatus(resp.code);
  fs::Attr attr;
  if (!fs::Unpack(resp.payload, attr)) return ErrStatus(ErrCode::kCorruption);
  return attr;
}

Status StatusFrom(const net::RpcResponse& resp) { return Status(resp.code); }

// Transaction id for a cross-shard rename transfer: unique enough that two
// transfers alive at once never collide (wall clock + process-local counter),
// and never zero (the protocol reserves 0).
std::uint64_t MintTxid() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t c = counter.fetch_add(1, std::memory_order_relaxed);
  return ((static_cast<std::uint64_t>(common::WallClockNs()) << 12) ^ c) | 1;
}

// Root attributes are replicated on every shard (docs/SHARDING.md): a
// mutation targeting "/" must apply everywhere, so fan it out and surface
// the first failing leg.  Any other path goes to its owning shard only.
net::Task<net::RpcResponse> CallDmsWrite(net::Channel& channel,
                                         const std::vector<net::NodeId>& dms,
                                         net::NodeId owner,
                                         std::string_view path,
                                         std::uint16_t opcode,
                                         std::string payload) {
  if (path == "/" && dms.size() > 1) {
    auto responses =
        co_await net::CallMany(channel, dms, opcode, std::move(payload));
    for (net::RpcResponse& r : responses) {
      if (!r.ok()) co_return std::move(r);
    }
    co_return std::move(responses.front());
  }
  co_return co_await net::Call(channel, owner, opcode, std::move(payload));
}

}  // namespace

void NotifyFanout::Add(LocoClient* client) {
  std::lock_guard<std::mutex> lock(mu_);
  clients_.push_back(client);
}

void NotifyFanout::Remove(LocoClient* client) {
  std::lock_guard<std::mutex> lock(mu_);
  clients_.erase(std::remove(clients_.begin(), clients_.end(), client),
                 clients_.end());
}

void NotifyFanout::Invalidate(const std::string& path, bool subtree,
                              std::uint64_t wall_ts_ns) {
  // mu_ is held across the callbacks so ~LocoClient (which calls Remove)
  // cannot complete while a push still holds its pointer.
  std::lock_guard<std::mutex> lock(mu_);
  for (LocoClient* client : clients_) {
    client->OnInvalidate(path, subtree, wall_ts_ns);
  }
}

void NotifyFanout::Resync() {
  std::lock_guard<std::mutex> lock(mu_);
  for (LocoClient* client : clients_) client->OnResync();
}

LocoClient::LocoClient(net::Channel& channel, Config config)
    : channel_(channel),
      cfg_(std::move(config)),
      ring_(cfg_.fms),
      shards_(cfg_.dms.size()) {
  if (cfg_.dms.empty()) cfg_.dms.push_back(0);  // legacy single-DMS default
  if (cfg_.fanout) cfg_.fanout->Add(this);
}

LocoClient::~LocoClient() {
  if (cfg_.fanout) cfg_.fanout->Remove(this);
}

void LocoClient::InvalidatePrefix(const std::string& path) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  InvalidatePrefixLocked(path);
}

void LocoClient::InvalidatePrefixLocked(const std::string& path) {
  const std::string prefix = path + "/";
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->first == path || it->first.rfind(prefix, 0) == 0) {
      it = cache_.erase(it);
      metric_invalidations_->Add();
    } else {
      ++it;
    }
  }
}

void LocoClient::ClearCache() noexcept {
  std::lock_guard<std::mutex> lock(cache_mu_);
  metric_invalidations_->Add(cache_.size());
  cache_.clear();
}

void LocoClient::NoteSubdir(std::string_view parent, std::string_view name,
                            bool present) {
  if (!cfg_.cache_enabled) return;
  std::lock_guard<std::mutex> lock(cache_mu_);
  const auto it = cache_.find(std::string(parent));
  if (it == cache_.end()) return;
  if (present) {
    it->second.subdirs.emplace(name);
  } else {
    it->second.subdirs.erase(std::string(name));
  }
}

void LocoClient::OnInvalidate(const std::string& path, bool subtree,
                              std::uint64_t wall_ts_ns) {
  (void)subtree;  // prefix invalidation already covers the whole subtree
  // Drop the directory and everything cached under it: a chmod on `path`
  // changes the ancestor ACL evaluation every descendant lease relied on,
  // so the conservative sweep matches what the local mutation paths do.
  InvalidatePrefix(path);
  if (wall_ts_ns != 0) {
    const std::uint64_t now =
        static_cast<std::uint64_t>(common::WallClockNs());
    if (now > wall_ts_ns) {
      metric_invalidation_latency_->Record(
          static_cast<common::Nanos>(now - wall_ts_ns));
    }
  }
}

void LocoClient::OnResync() { ClearCache(); }

net::Task<Result<fs::Attr>> LocoClient::LookupDir(std::string path,
                                                  std::uint32_t want,
                                                  std::string shadow_name) {
  if (cfg_.cache_enabled) {
    // Copy the leased state out under the lock: a push-plane invalidation
    // may erase the entry the moment the lock drops.
    bool hit = false;
    bool shadowed = false;
    fs::Attr attr;
    {
      std::lock_guard<std::mutex> lock(cache_mu_);
      const auto it = cache_.find(path);
      if (it != cache_.end() && Now() < it->second.expires_at) {
        hit = true;
        attr = it->second.attr;
        shadowed = !shadow_name.empty() &&
                   it->second.subdirs.count(shadow_name) != 0;
        ++cache_hits_;
        metric_hits_->Add();
      } else {
        ++cache_misses_;
        metric_misses_->Add();
      }
    }
    if (hit) {
      // Leased local evaluation, same order as the DMS: permission bits
      // first, then the subdirectory shadow check against the leased name
      // set (ancestor checks were covered when the lease was granted).
      if (want != 0 &&
          !fs::CheckPermission(identity_, attr.mode, attr.uid, attr.gid, want)) {
        co_return ErrStatus(ErrCode::kPermission);
      }
      if (shadowed) co_return ErrStatus(ErrCode::kExists);
      co_return attr;
    }
  }
  fs::Attr attr;
  std::vector<std::string> subdirs;
  if (path == "/" && cfg_.dms.size() > 1) {
    // The root is replicated per shard and its subdir set is partitioned:
    // each shard's reply lists the top-level directories that shard owns.
    // Fan out, take the attrs from shard 0 (the root's canonical owner) and
    // the union of the name sets; each shard also grants its own lease, so
    // every shard pushes invalidations for the entries it contributed.
    auto responses =
        co_await net::CallMany(channel_, cfg_.dms, proto::kDmsLookup,
                               fs::Pack(path, identity_, want, shadow_name));
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (!responses[i].ok()) co_return ErrStatus(responses[i].code);
      fs::Attr shard_attr;
      std::vector<std::string> shard_subdirs;
      if (!fs::Unpack(responses[i].payload, shard_attr, shard_subdirs)) {
        co_return ErrStatus(ErrCode::kCorruption);
      }
      if (i == 0) attr = shard_attr;
      subdirs.insert(subdirs.end(),
                     std::make_move_iterator(shard_subdirs.begin()),
                     std::make_move_iterator(shard_subdirs.end()));
    }
  } else {
    net::RpcResponse resp =
        co_await net::Call(channel_, DmsFor(path), proto::kDmsLookup,
                           fs::Pack(path, identity_, want, shadow_name));
    if (!resp.ok()) co_return ErrStatus(resp.code);
    if (!fs::Unpack(resp.payload, attr, subdirs)) {
      co_return ErrStatus(ErrCode::kCorruption);
    }
  }
  if (cfg_.cache_enabled) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    CacheEntry& entry = cache_[path];
    entry.attr = attr;
    entry.expires_at = Now() + cfg_.lease_ns;
    entry.subdirs.clear();
    entry.subdirs.insert(std::make_move_iterator(subdirs.begin()),
                         std::make_move_iterator(subdirs.end()));
  }
  co_return attr;
}

net::Task<Status> LocoClient::ClassifyMissingFile(std::string path) {
  net::RpcResponse resp = co_await net::Call(
      channel_, DmsFor(path), proto::kDmsStat, fs::Pack(path, identity_));
  // If a directory exists at this path the file op mis-typed its target;
  // other resolution failures (e.g. kPermission on an ancestor) are the
  // authoritative answer and pass through.
  if (resp.ok()) co_return ErrStatus(ErrCode::kIsDir);
  if (resp.code == ErrCode::kNotFound) co_return ErrStatus(ErrCode::kNotFound);
  co_return ErrStatus(resp.code);
}

// ----------------------------------------------------------------- mkdir --

net::Task<Status> LocoClient::Mkdir(std::string path, std::uint32_t mode) {
  net::RpcResponse resp =
      co_await net::Call(channel_, DmsFor(path), proto::kDmsMkdir,
                         fs::Pack(path, mode, identity_, Now()));
  if (resp.ok()) {
    // Keep any live lease on the parent shadow-accurate.
    NoteSubdir(fs::ParentPath(path), fs::BaseName(path), true);
  }
  co_return StatusFrom(resp);
}

net::Task<Status> LocoClient::Rmdir(std::string path) {
  if (!fs::IsValidPath(path) || path == "/") {
    co_return ErrStatus(ErrCode::kInvalid);
  }
  auto dir = co_await LookupDir(path, 0, {});
  if (!dir.ok()) {
    if (dir.code() != ErrCode::kNotFound) co_return dir.status();
    // Maybe a file: report kNotDir to match the contract.
    auto parent = co_await LookupDir(std::string(fs::ParentPath(path)),
                                   fs::kModeExec, {});
    if (parent.ok()) {
      net::RpcResponse probe = co_await net::Call(
          channel_, FmsFor(parent->uuid, fs::BaseName(path)), proto::kFmsGetAttr,
          fs::Pack(parent->uuid, std::string(fs::BaseName(path))));
      if (probe.ok()) co_return ErrStatus(ErrCode::kNotDir);
    }
    co_return ErrStatus(ErrCode::kNotFound);
  }
  // Phase 2: every FMS must confirm no file of this directory lives there
  // (the paper's rmdir fan-out, §4.2.1 observation 3).
  std::vector<net::NodeId> fms = cfg_.fms;
  auto checks = co_await net::CallMany(channel_, std::move(fms),
                                       proto::kFmsCheckEmpty,
                                       fs::Pack(dir->uuid));
  for (const net::RpcResponse& check : checks) {
    if (check.code == ErrCode::kNotEmpty) co_return ErrStatus(ErrCode::kNotEmpty);
    if (!check.ok()) co_return ErrStatus(check.code);
  }
  // Phase 3: remove on the owning shard (which re-checks subdir emptiness).
  net::RpcResponse resp =
      co_await net::Call(channel_, DmsFor(path), proto::kDmsRmdir,
                         fs::Pack(path, identity_, std::uint8_t{1}));
  if (resp.ok()) {
    InvalidatePrefix(path);
    NoteSubdir(fs::ParentPath(path), fs::BaseName(path), false);
  }
  co_return StatusFrom(resp);
}

net::Task<Result<std::vector<fs::DirEntry>>> LocoClient::Readdir(
    std::string path) {
  fs::Attr dir_attr;
  std::vector<fs::DirEntry> entries;
  if (path == "/" && cfg_.dms.size() > 1) {
    // The root's subdir list is partitioned per shard: merge every shard's
    // contribution (attrs from shard 0, the canonical root owner).
    auto responses = co_await net::CallMany(
        channel_, cfg_.dms, proto::kDmsReaddir, fs::Pack(path, identity_));
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (!responses[i].ok()) co_return ErrStatus(responses[i].code);
      fs::Attr shard_attr;
      std::vector<fs::DirEntry> shard_entries;
      if (!fs::Unpack(responses[i].payload, shard_attr, shard_entries)) {
        co_return ErrStatus(ErrCode::kCorruption);
      }
      if (i == 0) dir_attr = shard_attr;
      entries.insert(entries.end(),
                     std::make_move_iterator(shard_entries.begin()),
                     std::make_move_iterator(shard_entries.end()));
    }
  } else {
    net::RpcResponse resp = co_await net::Call(
        channel_, DmsFor(path), proto::kDmsReaddir, fs::Pack(path, identity_));
    if (!resp.ok()) {
      if (resp.code != ErrCode::kNotFound || path == "/") {
        co_return ErrStatus(resp.code);
      }
      // Maybe a file path.
      auto parent = co_await LookupDir(std::string(fs::ParentPath(path)),
                                       fs::kModeExec, {});
      if (parent.ok()) {
        net::RpcResponse probe = co_await net::Call(
            channel_, FmsFor(parent->uuid, fs::BaseName(path)),
            proto::kFmsGetAttr,
            fs::Pack(parent->uuid, std::string(fs::BaseName(path))));
        if (probe.ok()) co_return ErrStatus(ErrCode::kNotDir);
      }
      co_return ErrStatus(ErrCode::kNotFound);
    }
    if (!fs::Unpack(resp.payload, dir_attr, entries)) {
      co_return ErrStatus(ErrCode::kCorruption);
    }
  }
  // Pull the file entries from every FMS (the paper's readdir fan-out).
  std::vector<net::NodeId> fms = cfg_.fms;
  auto responses = co_await net::CallMany(channel_, std::move(fms),
                                          proto::kFmsReaddir,
                                          fs::Pack(dir_attr.uuid));
  for (const net::RpcResponse& r : responses) {
    if (!r.ok()) co_return ErrStatus(r.code);
    std::vector<fs::DirEntry> files;
    if (!fs::Unpack(r.payload, files)) co_return ErrStatus(ErrCode::kCorruption);
    entries.insert(entries.end(), std::make_move_iterator(files.begin()),
                   std::make_move_iterator(files.end()));
  }
  std::sort(entries.begin(), entries.end(),
            [](const fs::DirEntry& a, const fs::DirEntry& b) {
              return a.name < b.name;
            });
  co_return entries;
}

// ------------------------------------------------------------ batched ops --

net::Task<Result<std::vector<ErrCode>>> LocoClient::CreateMany(
    std::string dir_path, std::vector<std::string> names, std::uint32_t mode) {
  if (!fs::IsValidPath(dir_path)) co_return ErrStatus(ErrCode::kInvalid);
  auto parent =
      co_await LookupDir(dir_path, fs::kModeWrite | fs::kModeExec, {});
  if (!parent.ok()) co_return parent.status();
  // Shadow check against the leased subdir set — the same name list the DMS
  // consults for a single create's shadow_name; a shadowed entry fails
  // locally with kExists instead of reaching the FMS.
  std::unordered_set<std::string> shadow;
  if (cfg_.cache_enabled) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    const auto it = cache_.find(dir_path);
    if (it != cache_.end()) shadow = it->second.subdirs;
  }
  const std::uint64_t ts = Now();
  std::vector<ErrCode> codes(names.size(), ErrCode::kOk);
  std::unordered_map<net::NodeId, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (shadow.count(names[i]) != 0) {
      codes[i] = ErrCode::kExists;
      continue;
    }
    groups[FmsFor(parent->uuid, names[i])].push_back(i);
  }
  for (auto& [node, idxs] : groups) {
    std::vector<std::string> subops;
    subops.reserve(idxs.size());
    for (const std::size_t i : idxs) {
      subops.push_back(fs::Pack(parent->uuid, names[i], mode, identity_, ts));
    }
    net::RpcResponse resp =
        co_await net::Call(channel_, node, proto::kFmsBatchCreate,
                           net::wire::EncodeBatchRequest(subops));
    if (!resp.ok()) {
      for (const std::size_t i : idxs) codes[i] = resp.code;
      continue;
    }
    std::vector<net::wire::BatchItem> items;
    if (!net::wire::DecodeBatchResponse(resp.payload, &items) ||
        items.size() != idxs.size()) {
      co_return ErrStatus(ErrCode::kCorruption);
    }
    for (std::size_t j = 0; j < idxs.size(); ++j) {
      codes[idxs[j]] = items[j].code;
    }
  }
  co_return codes;
}

net::Task<Result<std::vector<LocoClient::StatEntry>>> LocoClient::StatMany(
    std::string dir_path, std::vector<std::string> names) {
  if (!fs::IsValidPath(dir_path)) co_return ErrStatus(ErrCode::kInvalid);
  auto parent = co_await LookupDir(dir_path, fs::kModeExec, {});
  if (!parent.ok()) co_return parent.status();
  std::vector<StatEntry> results(names.size());
  std::unordered_map<net::NodeId, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < names.size(); ++i) {
    groups[FmsFor(parent->uuid, names[i])].push_back(i);
  }
  for (auto& [node, idxs] : groups) {
    std::vector<std::string> subops;
    subops.reserve(idxs.size());
    for (const std::size_t i : idxs) {
      subops.push_back(fs::Pack(parent->uuid, names[i]));
    }
    net::RpcResponse resp =
        co_await net::Call(channel_, node, proto::kFmsBatchStat,
                           net::wire::EncodeBatchRequest(subops));
    if (!resp.ok()) {
      for (const std::size_t i : idxs) results[i].code = resp.code;
      continue;
    }
    std::vector<net::wire::BatchItem> items;
    if (!net::wire::DecodeBatchResponse(resp.payload, &items) ||
        items.size() != idxs.size()) {
      co_return ErrStatus(ErrCode::kCorruption);
    }
    for (std::size_t j = 0; j < idxs.size(); ++j) {
      StatEntry& out = results[idxs[j]];
      out.code = items[j].code;
      if (out.code == ErrCode::kOk &&
          !fs::Unpack(items[j].payload, out.attr)) {
        co_return ErrStatus(ErrCode::kCorruption);
      }
    }
  }
  co_return results;
}

net::Task<Result<std::vector<ErrCode>>> LocoClient::MkdirMany(
    std::vector<std::string> paths, std::uint32_t mode) {
  std::vector<ErrCode> codes(paths.size(), ErrCode::kOk);
  const std::uint64_t ts = Now();
  // One frame per owning shard, preserving the caller's order within each
  // group.  Dependent paths ("a", then "a/b") share a top-level component
  // and therefore a shard, so in-order application still holds per frame.
  std::unordered_map<net::NodeId, std::vector<std::size_t>> groups;
  std::vector<net::NodeId> order;  // deterministic frame order
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (!fs::IsValidPath(paths[i]) || paths[i] == "/") {
      codes[i] = ErrCode::kInvalid;
      continue;
    }
    const net::NodeId node = DmsFor(paths[i]);
    auto [it, inserted] = groups.try_emplace(node);
    if (inserted) order.push_back(node);
    it->second.push_back(i);
  }
  for (const net::NodeId node : order) {
    const std::vector<std::size_t>& sent = groups[node];
    std::vector<std::string> subops;
    subops.reserve(sent.size());
    for (const std::size_t i : sent) {
      subops.push_back(fs::Pack(paths[i], mode, identity_, ts));
    }
    net::RpcResponse resp =
        co_await net::Call(channel_, node, proto::kDmsBatchMkdir,
                           net::wire::EncodeBatchRequest(subops));
    if (!resp.ok()) {
      for (const std::size_t i : sent) codes[i] = resp.code;
      continue;
    }
    std::vector<net::wire::BatchItem> items;
    if (!net::wire::DecodeBatchResponse(resp.payload, &items) ||
        items.size() != sent.size()) {
      co_return ErrStatus(ErrCode::kCorruption);
    }
    for (std::size_t j = 0; j < sent.size(); ++j) {
      const std::size_t i = sent[j];
      codes[i] = items[j].code;
      if (codes[i] == ErrCode::kOk) {
        // Keep any live lease on the parent shadow-accurate, like Mkdir.
        NoteSubdir(fs::ParentPath(paths[i]), fs::BaseName(paths[i]), true);
      }
    }
  }
  co_return codes;
}

net::Task<Result<std::vector<ErrCode>>> LocoClient::PutMany(
    std::string dir_path, std::vector<PutEntry> entries) {
  if (!fs::IsValidPath(dir_path)) co_return ErrStatus(ErrCode::kInvalid);
  auto parent = co_await LookupDir(dir_path, fs::kModeExec, {});
  if (!parent.ok()) co_return parent.status();
  const std::uint64_t ts = Now();
  std::vector<ErrCode> codes(entries.size(), ErrCode::kOk);

  // Phase 1: the metadata half — one kFmsBatchSetSize frame per FMS the
  // names hash to.  Each reply item carries the file's uuid, which decides
  // the data half's routing.
  std::vector<fs::Uuid> uuids(entries.size());
  std::unordered_map<net::NodeId, std::vector<std::size_t>> fms_groups;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    fms_groups[FmsFor(parent->uuid, entries[i].name)].push_back(i);
  }
  for (auto& [node, idxs] : fms_groups) {
    std::vector<std::string> subops;
    subops.reserve(idxs.size());
    for (const std::size_t i : idxs) {
      subops.push_back(fs::Pack(parent->uuid, entries[i].name, identity_,
                                static_cast<std::uint64_t>(entries[i].data.size()),
                                std::uint8_t{1}, ts));
    }
    net::RpcResponse resp =
        co_await net::Call(channel_, node, proto::kFmsBatchSetSize,
                           net::wire::EncodeBatchRequest(subops));
    if (!resp.ok()) {
      for (const std::size_t i : idxs) codes[i] = resp.code;
      continue;
    }
    std::vector<net::wire::BatchItem> items;
    if (!net::wire::DecodeBatchResponse(resp.payload, &items) ||
        items.size() != idxs.size()) {
      co_return ErrStatus(ErrCode::kCorruption);
    }
    for (std::size_t j = 0; j < idxs.size(); ++j) {
      const std::size_t i = idxs[j];
      codes[i] = items[j].code;
      if (codes[i] != ErrCode::kOk) continue;
      std::uint64_t new_size = 0;
      if (!fs::Unpack(items[j].payload, uuids[i], new_size)) {
        co_return ErrStatus(ErrCode::kCorruption);
      }
    }
  }

  // Phase 2: the data half — one kObjBatchPut frame per object store the
  // uuids place onto.  Only entries whose metadata update succeeded ship.
  std::unordered_map<net::NodeId, std::vector<std::size_t>> obj_groups;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (codes[i] == ErrCode::kOk) obj_groups[ObjFor(uuids[i])].push_back(i);
  }
  for (auto& [node, idxs] : obj_groups) {
    std::vector<std::string> subops;
    subops.reserve(idxs.size());
    for (const std::size_t i : idxs) {
      subops.push_back(fs::Pack(uuids[i], std::uint64_t{0}, entries[i].data));
    }
    net::RpcResponse resp =
        co_await net::Call(channel_, node, proto::kObjBatchPut,
                           net::wire::EncodeBatchRequest(subops));
    if (!resp.ok()) {
      for (const std::size_t i : idxs) codes[i] = resp.code;
      continue;
    }
    std::vector<net::wire::BatchItem> items;
    if (!net::wire::DecodeBatchResponse(resp.payload, &items) ||
        items.size() != idxs.size()) {
      co_return ErrStatus(ErrCode::kCorruption);
    }
    for (std::size_t j = 0; j < idxs.size(); ++j) {
      codes[idxs[j]] = items[j].code;
    }
  }
  co_return codes;
}

net::Task<Result<std::vector<LocoClient::EntryPlus>>> LocoClient::ReaddirPlus(
    std::string path) {
  fs::Attr dir_attr;
  std::vector<fs::DirEntry> subdirs;
  if (path == "/" && cfg_.dms.size() > 1) {
    // Partitioned root subdir list: merge every shard's slice (see Readdir).
    auto responses = co_await net::CallMany(
        channel_, cfg_.dms, proto::kDmsReaddir, fs::Pack(path, identity_));
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (!responses[i].ok()) co_return ErrStatus(responses[i].code);
      fs::Attr shard_attr;
      std::vector<fs::DirEntry> shard_subdirs;
      if (!fs::Unpack(responses[i].payload, shard_attr, shard_subdirs)) {
        co_return ErrStatus(ErrCode::kCorruption);
      }
      if (i == 0) dir_attr = shard_attr;
      subdirs.insert(subdirs.end(),
                     std::make_move_iterator(shard_subdirs.begin()),
                     std::make_move_iterator(shard_subdirs.end()));
    }
  } else {
    net::RpcResponse resp = co_await net::Call(
        channel_, DmsFor(path), proto::kDmsReaddir, fs::Pack(path, identity_));
    if (!resp.ok()) co_return ErrStatus(resp.code);
    if (!fs::Unpack(resp.payload, dir_attr, subdirs)) {
      co_return ErrStatus(ErrCode::kCorruption);
    }
  }
  std::vector<EntryPlus> entries;
  for (fs::DirEntry& d : subdirs) {
    EntryPlus e;
    e.name = std::move(d.name);
    e.is_dir = true;
    entries.push_back(std::move(e));
  }
  // One round trip per FMS replaces the per-file GetAttr fan-out a plain
  // readdir + stat loop would issue.
  std::vector<net::NodeId> fms = cfg_.fms;
  auto responses = co_await net::CallMany(channel_, std::move(fms),
                                          proto::kFmsReaddirPlus,
                                          fs::Pack(dir_attr.uuid));
  for (const net::RpcResponse& r : responses) {
    if (!r.ok()) co_return ErrStatus(r.code);
    std::vector<net::wire::BatchItem> items;
    if (!net::wire::DecodeBatchResponse(r.payload, &items)) {
      co_return ErrStatus(ErrCode::kCorruption);
    }
    for (net::wire::BatchItem& item : items) {
      EntryPlus e;
      e.code = item.code;
      if (item.code == ErrCode::kOk) {
        if (!fs::Unpack(item.payload, e.name, e.attr)) {
          co_return ErrStatus(ErrCode::kCorruption);
        }
      } else if (!fs::Unpack(item.payload, e.name)) {
        co_return ErrStatus(ErrCode::kCorruption);
      }
      entries.push_back(std::move(e));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const EntryPlus& a, const EntryPlus& b) { return a.name < b.name; });
  co_return entries;
}

// ------------------------------------------------------------------ files --

net::Task<Status> LocoClient::Create(std::string path, std::uint32_t mode) {
  if (!fs::IsValidPath(path) || path == "/") {
    co_return ErrStatus(ErrCode::kInvalid);
  }
  const std::string name(fs::BaseName(path));
  auto parent = co_await LookupDir(std::string(fs::ParentPath(path)),
                                   fs::kModeWrite | fs::kModeExec, name);
  if (!parent.ok()) co_return parent.status();
  net::RpcResponse resp = co_await net::Call(
      channel_, FmsFor(parent->uuid, name), proto::kFmsCreate,
      fs::Pack(parent->uuid, name, mode, identity_, Now()));
  co_return StatusFrom(resp);
}

net::Task<Status> LocoClient::Unlink(std::string path) {
  if (!fs::IsValidPath(path) || path == "/") {
    co_return ErrStatus(ErrCode::kInvalid);
  }
  const std::string name(fs::BaseName(path));
  auto parent = co_await LookupDir(std::string(fs::ParentPath(path)),
                                   fs::kModeWrite | fs::kModeExec, {});
  if (!parent.ok()) co_return parent.status();
  net::RpcResponse resp =
      co_await net::Call(channel_, FmsFor(parent->uuid, name), proto::kFmsRemove,
                         fs::Pack(parent->uuid, name, identity_));
  if (resp.code == ErrCode::kNotFound) co_return co_await ClassifyMissingFile(path);
  co_return StatusFrom(resp);
}

net::Task<Result<fs::Attr>> LocoClient::StatFile(std::string path) {
  if (!fs::IsValidPath(path) || path == "/") {
    co_return ErrStatus(ErrCode::kInvalid);
  }
  const std::string name(fs::BaseName(path));
  auto parent =
      co_await LookupDir(std::string(fs::ParentPath(path)),
                                   fs::kModeExec, {});
  if (!parent.ok()) co_return parent.status();
  net::RpcResponse resp =
      co_await net::Call(channel_, FmsFor(parent->uuid, name), proto::kFmsGetAttr,
                         fs::Pack(parent->uuid, name));
  co_return AttrFrom(resp);
}

net::Task<Result<fs::Attr>> LocoClient::StatDir(std::string path) {
  if (path == "/" || !cfg_.cache_enabled) {
    net::RpcResponse resp = co_await net::Call(
        channel_, DmsFor(path), proto::kDmsStat, fs::Pack(path, identity_));
    co_return AttrFrom(resp);
  }
  co_return co_await LookupDir(std::move(path), 0, {});
}

net::Task<Result<fs::Attr>> LocoClient::Stat(std::string path) {
  if (path == "/") co_return co_await StatDir(std::move(path));
  auto file = co_await StatFile(path);
  // Fall back to the DMS when no file exists — and also when the file's
  // FMS is unreachable: the path may name a directory, which the (healthy)
  // DMS can still resolve.
  if (file.ok() || (file.code() != ErrCode::kNotFound &&
                    file.code() != ErrCode::kUnavailable)) {
    co_return file;
  }
  auto dir = co_await StatDir(std::move(path));
  if (!dir.ok() && dir.code() == ErrCode::kNotFound &&
      file.code() == ErrCode::kUnavailable) {
    co_return file.status();  // genuinely unknown: report the outage
  }
  co_return dir;
}

net::Task<Status> LocoClient::ChmodFile(std::string path, std::uint32_t mode) {
  const std::string name(fs::BaseName(path));
  auto parent = co_await LookupDir(std::string(fs::ParentPath(path)),
                                   fs::kModeExec, {});
  if (!parent.ok()) co_return parent.status();
  net::RpcResponse resp = co_await net::Call(
      channel_, FmsFor(parent->uuid, name), proto::kFmsChmod,
      fs::Pack(parent->uuid, name, identity_, mode, Now()));
  co_return StatusFrom(resp);
}

net::Task<Status> LocoClient::Chmod(std::string path, std::uint32_t mode) {
  if (!fs::IsValidPath(path)) co_return ErrStatus(ErrCode::kInvalid);
  // Same fallback policy as Stat: consult the DMS when no file exists and
  // also when the file's FMS is unreachable — the path may name a directory
  // the (healthy) DMS can still serve.
  Status file = ErrStatus(ErrCode::kNotFound);
  if (path != "/") {
    file = co_await ChmodFile(path, mode);
    if (file.code() != ErrCode::kNotFound &&
        file.code() != ErrCode::kUnavailable) {
      co_return file;
    }
  }
  net::RpcResponse resp =
      co_await CallDmsWrite(channel_, cfg_.dms, DmsFor(path), path,
                            proto::kDmsChmod,
                            fs::Pack(path, identity_, mode, Now()));
  if (resp.ok()) InvalidatePrefix(path);
  if (resp.code == ErrCode::kNotFound &&
      file.code() == ErrCode::kUnavailable) {
    co_return file;  // genuinely unknown: report the outage
  }
  co_return StatusFrom(resp);
}

net::Task<Status> LocoClient::ChownFile(std::string path, std::uint32_t uid,
                                        std::uint32_t gid) {
  const std::string name(fs::BaseName(path));
  auto parent = co_await LookupDir(std::string(fs::ParentPath(path)),
                                   fs::kModeExec, {});
  if (!parent.ok()) co_return parent.status();
  net::RpcResponse resp = co_await net::Call(
      channel_, FmsFor(parent->uuid, name), proto::kFmsChown,
      fs::Pack(parent->uuid, name, identity_, uid, gid, Now()));
  co_return StatusFrom(resp);
}

net::Task<Status> LocoClient::Chown(std::string path, std::uint32_t uid,
                                    std::uint32_t gid) {
  if (!fs::IsValidPath(path)) co_return ErrStatus(ErrCode::kInvalid);
  Status file = ErrStatus(ErrCode::kNotFound);
  if (path != "/") {
    file = co_await ChownFile(path, uid, gid);
    if (file.code() != ErrCode::kNotFound &&
        file.code() != ErrCode::kUnavailable) {
      co_return file;
    }
  }
  net::RpcResponse resp =
      co_await CallDmsWrite(channel_, cfg_.dms, DmsFor(path), path,
                            proto::kDmsChown,
                            fs::Pack(path, identity_, uid, gid, Now()));
  if (resp.ok()) InvalidatePrefix(path);
  if (resp.code == ErrCode::kNotFound &&
      file.code() == ErrCode::kUnavailable) {
    co_return file;  // genuinely unknown: report the outage
  }
  co_return StatusFrom(resp);
}

net::Task<Status> LocoClient::AccessFile(std::string path, std::uint32_t want) {
  const std::string name(fs::BaseName(path));
  auto parent = co_await LookupDir(std::string(fs::ParentPath(path)),
                                   fs::kModeExec, {});
  if (!parent.ok()) co_return parent.status();
  net::RpcResponse resp = co_await net::Call(
      channel_, FmsFor(parent->uuid, name), proto::kFmsAccess,
      fs::Pack(parent->uuid, name, identity_, want));
  co_return StatusFrom(resp);
}

net::Task<Status> LocoClient::Access(std::string path, std::uint32_t want) {
  if (!fs::IsValidPath(path)) co_return ErrStatus(ErrCode::kInvalid);
  Status file = ErrStatus(ErrCode::kNotFound);
  if (path != "/") {
    file = co_await AccessFile(path, want);
    if (file.code() != ErrCode::kNotFound &&
        file.code() != ErrCode::kUnavailable) {
      co_return file;
    }
  }
  net::RpcResponse resp =
      co_await net::Call(channel_, DmsFor(path), proto::kDmsAccess,
                         fs::Pack(path, identity_, want));
  if (resp.code == ErrCode::kNotFound &&
      file.code() == ErrCode::kUnavailable) {
    co_return file;  // genuinely unknown: report the outage
  }
  co_return StatusFrom(resp);
}

net::Task<Status> LocoClient::Utimens(std::string path, std::uint64_t mtime,
                                      std::uint64_t atime) {
  if (!fs::IsValidPath(path)) co_return ErrStatus(ErrCode::kInvalid);
  Status file = ErrStatus(ErrCode::kNotFound);
  if (path != "/") {
    const std::string name(fs::BaseName(path));
    auto parent = co_await LookupDir(std::string(fs::ParentPath(path)),
                                   fs::kModeExec, {});
    if (!parent.ok()) co_return parent.status();
    net::RpcResponse fresp = co_await net::Call(
        channel_, FmsFor(parent->uuid, name), proto::kFmsUtimens,
        fs::Pack(parent->uuid, name, identity_, mtime, atime));
    if (fresp.code != ErrCode::kNotFound &&
        fresp.code != ErrCode::kUnavailable) {
      co_return StatusFrom(fresp);
    }
    file = StatusFrom(fresp);
  }
  net::RpcResponse resp =
      co_await CallDmsWrite(channel_, cfg_.dms, DmsFor(path), path,
                            proto::kDmsUtimens,
                            fs::Pack(path, identity_, mtime, atime));
  if (resp.ok()) InvalidatePrefix(path);
  if (resp.code == ErrCode::kNotFound &&
      file.code() == ErrCode::kUnavailable) {
    co_return file;  // genuinely unknown: report the outage
  }
  co_return StatusFrom(resp);
}

// ------------------------------------------------------------------- data --

net::Task<Result<fs::Attr>> LocoClient::Open(std::string path) {
  if (!fs::IsValidPath(path) || path == "/") {
    co_return ErrStatus(path == "/" ? ErrCode::kIsDir : ErrCode::kInvalid);
  }
  const std::string name(fs::BaseName(path));
  auto parent = co_await LookupDir(std::string(fs::ParentPath(path)),
                                   fs::kModeExec, {});
  if (!parent.ok()) co_return parent.status();
  net::RpcResponse resp =
      co_await net::Call(channel_, FmsFor(parent->uuid, name), proto::kFmsOpen,
                         fs::Pack(parent->uuid, name, identity_));
  if (resp.code == ErrCode::kNotFound) {
    co_return co_await ClassifyMissingFile(path);
  }
  co_return AttrFrom(resp);
}

net::Task<Status> LocoClient::Close(std::string path) {
  // LocoFS keeps no server-side open state beyond the file session the FMS
  // registered on Open/Create: drop it now (kFmsCloseSession) instead of
  // letting it age out or die with the connection.  Best-effort — close
  // itself never fails: a missing parent, an unreachable FMS, or an
  // anonymous (no-hello) peer all leave nothing worth closing.
  if (!fs::IsValidPath(path) || path == "/") co_return OkStatus();
  const std::string name(fs::BaseName(path));
  auto parent = co_await LookupDir(std::string(fs::ParentPath(path)), 0, {});
  if (parent.ok()) {
    // Session maintenance, not serving work: a saturated FMS may shed it
    // (the session then ages out via TTL or the disconnect hook).
    net::CallMeta close_meta;
    close_meta.priority = net::Priority::kBackground;
    (void)co_await net::Call(channel_, FmsFor(parent->uuid, name),
                             proto::kFmsCloseSession,
                             fs::Pack(parent->uuid, name), close_meta);
  }
  co_return OkStatus();
}

net::Task<Status> LocoClient::Truncate(std::string path, std::uint64_t size) {
  if (!fs::IsValidPath(path) || path == "/") {
    co_return ErrStatus(path == "/" ? ErrCode::kIsDir : ErrCode::kInvalid);
  }
  const std::string name(fs::BaseName(path));
  auto parent = co_await LookupDir(std::string(fs::ParentPath(path)),
                                   fs::kModeExec, {});
  if (!parent.ok()) co_return parent.status();
  net::RpcResponse resp = co_await net::Call(
      channel_, FmsFor(parent->uuid, name), proto::kFmsSetSize,
      fs::Pack(parent->uuid, name, identity_, size, std::uint8_t{1}, Now()));
  if (resp.code == ErrCode::kNotFound) co_return co_await ClassifyMissingFile(path);
  if (!resp.ok()) co_return StatusFrom(resp);
  fs::Uuid uuid;
  std::uint64_t new_size = 0;
  if (!fs::Unpack(resp.payload, uuid, new_size)) {
    co_return ErrStatus(ErrCode::kCorruption);
  }
  net::RpcResponse obj = co_await net::Call(
      channel_, ObjFor(uuid), proto::kObjTruncate, fs::Pack(uuid, size));
  co_return StatusFrom(obj);
}

net::Task<Status> LocoClient::Write(std::string path, std::uint64_t offset,
                                    std::string data) {
  if (!fs::IsValidPath(path) || path == "/") {
    co_return ErrStatus(path == "/" ? ErrCode::kIsDir : ErrCode::kInvalid);
  }
  const std::string name(fs::BaseName(path));
  auto parent = co_await LookupDir(std::string(fs::ParentPath(path)),
                                   fs::kModeExec, {});
  if (!parent.ok()) co_return parent.status();
  net::RpcResponse resp = co_await net::Call(
      channel_, FmsFor(parent->uuid, name), proto::kFmsSetSize,
      fs::Pack(parent->uuid, name, identity_, offset + data.size(),
               std::uint8_t{0}, Now()));
  if (resp.code == ErrCode::kNotFound) co_return co_await ClassifyMissingFile(path);
  if (!resp.ok()) co_return StatusFrom(resp);
  fs::Uuid uuid;
  std::uint64_t new_size = 0;
  if (!fs::Unpack(resp.payload, uuid, new_size)) {
    co_return ErrStatus(ErrCode::kCorruption);
  }
  net::RpcResponse obj =
      co_await net::Call(channel_, ObjFor(uuid), proto::kObjWrite,
                         fs::Pack(uuid, offset, data));
  co_return StatusFrom(obj);
}

net::Task<Result<std::string>> LocoClient::Read(std::string path,
                                                std::uint64_t offset,
                                                std::uint64_t length) {
  if (!fs::IsValidPath(path) || path == "/") {
    co_return ErrStatus(path == "/" ? ErrCode::kIsDir : ErrCode::kInvalid);
  }
  const std::string name(fs::BaseName(path));
  auto parent = co_await LookupDir(std::string(fs::ParentPath(path)),
                                   fs::kModeExec, {});
  if (!parent.ok()) co_return parent.status();
  net::RpcResponse resp = co_await net::Call(
      channel_, FmsFor(parent->uuid, name), proto::kFmsSetAtime,
      fs::Pack(parent->uuid, name, identity_, Now()));
  if (resp.code == ErrCode::kNotFound) {
    Status classified = co_await ClassifyMissingFile(path);
    co_return classified;
  }
  if (!resp.ok()) co_return ErrStatus(resp.code);
  fs::Uuid uuid;
  std::uint64_t size = 0;
  if (!fs::Unpack(resp.payload, uuid, size)) {
    co_return ErrStatus(ErrCode::kCorruption);
  }
  if (offset >= size) co_return std::string();
  const std::uint64_t n = std::min(length, size - offset);
  net::RpcResponse obj =
      co_await net::Call(channel_, ObjFor(uuid), proto::kObjRead,
                         fs::Pack(uuid, offset, n, size));
  if (!obj.ok()) co_return ErrStatus(obj.code);
  std::string data;
  if (!fs::Unpack(obj.payload, data)) co_return ErrStatus(ErrCode::kCorruption);
  co_return data;
}

// ----------------------------------------------------------------- rename --

net::Task<Status> LocoClient::Rename(std::string from, std::string to) {
  if (!fs::IsValidPath(from) || !fs::IsValidPath(to) || from == "/" ||
      to == "/") {
    co_return ErrStatus(ErrCode::kInvalid);
  }
  if (from == to) co_return OkStatus();
  if (to.size() > from.size() && to.compare(0, from.size(), from) == 0 &&
      to[from.size()] == '/') {
    co_return ErrStatus(ErrCode::kInvalid);
  }

  // Try f-rename first: read the raw fixed-layout parts from the source FMS.
  const std::string from_name(fs::BaseName(from));
  const std::string to_name(fs::BaseName(to));
  auto src_parent = co_await LookupDir(std::string(fs::ParentPath(from)),
                                       fs::kModeWrite | fs::kModeExec, {});
  if (!src_parent.ok()) co_return src_parent.status();
  net::RpcResponse raw = co_await net::Call(
      channel_, FmsFor(src_parent->uuid, from_name), proto::kFmsReadRaw,
      fs::Pack(src_parent->uuid, from_name));
  if (raw.ok()) {
    auto dst_parent = co_await LookupDir(std::string(fs::ParentPath(to)),
                                         fs::kModeWrite | fs::kModeExec, {});
    if (!dst_parent.ok()) co_return dst_parent.status();
    // A directory at the destination shadows the file rename.
    net::RpcResponse dir_probe = co_await net::Call(
        channel_, DmsFor(to), proto::kDmsStat, fs::Pack(to, identity_));
    if (dir_probe.ok()) co_return ErrStatus(ErrCode::kExists);
    std::string access, content;
    if (!fs::Unpack(raw.payload, access, content)) {
      co_return ErrStatus(ErrCode::kCorruption);
    }
    net::RpcResponse ins = co_await net::Call(
        channel_, FmsFor(dst_parent->uuid, to_name), proto::kFmsInsertRaw,
        fs::Pack(dst_parent->uuid, to_name, access, content));
    if (!ins.ok()) co_return StatusFrom(ins);
    net::RpcResponse rm = co_await net::Call(
        channel_, FmsFor(src_parent->uuid, from_name), proto::kFmsRemove,
        fs::Pack(src_parent->uuid, from_name, identity_));
    if (!rm.ok()) {
      // The insert applied but the remove did not: two dirents now share one
      // file uuid.  Converge the namespace toward the outcome we report.  A
      // shed remove (kOverloaded) definitely never executed, but an earlier
      // attempt may have applied ambiguously, so probe the source: gone means
      // the remove did land (the rename is complete); still present means we
      // undo the insert so the reported failure matches the namespace.  Best
      // effort — a probe or undo that itself fails leaves the duplicate for
      // fsck to resolve.
      net::RpcResponse probe = co_await net::Call(
          channel_, FmsFor(src_parent->uuid, from_name), proto::kFmsGetAttr,
          fs::Pack(src_parent->uuid, from_name));
      if (probe.code == ErrCode::kNotFound) co_return OkStatus();
      if (probe.ok()) {
        (void)co_await net::Call(
            channel_, FmsFor(dst_parent->uuid, to_name), proto::kFmsRemove,
            fs::Pack(dst_parent->uuid, to_name, identity_));
      }
    }
    co_return StatusFrom(rm);
  }
  if (raw.code != ErrCode::kNotFound) co_return StatusFrom(raw);

  // d-rename.  Source existence is verified first: a missing source
  // dominates any destination-side condition.
  net::RpcResponse src_probe = co_await net::Call(
      channel_, DmsFor(from), proto::kDmsStat, fs::Pack(from, identity_));
  if (!src_probe.ok()) co_return StatusFrom(src_probe);

  // The destination must not exist as a file either.
  auto dst_parent = co_await LookupDir(std::string(fs::ParentPath(to)), 0, {});
  if (dst_parent.ok()) {
    net::RpcResponse file_probe = co_await net::Call(
        channel_, FmsFor(dst_parent->uuid, to_name), proto::kFmsGetAttr,
        fs::Pack(dst_parent->uuid, to_name));
    if (file_probe.ok()) co_return ErrStatus(ErrCode::kExists);
  }
  const net::NodeId src_node = DmsFor(from);
  const net::NodeId dst_node = DmsFor(to);
  if (src_node != dst_node) {
    co_return co_await RenameAcrossShards(std::move(from), std::move(to),
                                          src_node, dst_node);
  }
  net::RpcResponse resp = co_await net::Call(
      channel_, src_node, proto::kDmsRename, fs::Pack(from, to, identity_));
  if (resp.ok()) {
    InvalidatePrefix(from);
    NoteSubdir(fs::ParentPath(from), from_name, false);
    NoteSubdir(fs::ParentPath(to), to_name, true);
  }
  co_return StatusFrom(resp);
}

// Cross-shard directory rename (docs/SHARDING.md): a client-driven 2PC with
// a durable intent on the source shard and a durable incoming marker on the
// destination shard.  The commit installs the moved root last, so "`to`
// exists at the destination with the moved root's uuid" is the transfer's
// commit point — every recovery decision (here, in fsck, and in the daemon
// intent GC) branches on that single predicate.
net::Task<Status> LocoClient::RenameAcrossShards(std::string from,
                                                 std::string to,
                                                 net::NodeId src_node,
                                                 net::NodeId dst_node) {
  const std::uint64_t txid = MintTxid();

  // Phase 1: prepare — persist the intent, lock the subtree against other
  // mutations, and package its d-inodes + dirent lists.
  net::RpcResponse prep =
      co_await net::Call(channel_, src_node, proto::kDmsRenamePrepare,
                         fs::Pack(from, to, txid, identity_));
  // Failure responses leave no durable source state; a transport timeout may
  // have persisted the intent, which the source daemon's intent GC ages out.
  if (!prep.ok()) co_return StatusFrom(prep);
  std::vector<std::string> entries;
  if (!fs::Unpack(prep.payload, entries)) {
    (void)co_await net::Call(channel_, src_node, proto::kDmsRenameAbort,
                             fs::Pack(txid));
    co_return ErrStatus(ErrCode::kCorruption);
  }
  // The moved root's uuid (the rel == "" entry) identifies *our* transfer at
  // the destination during the ambiguity probe below.
  fs::Uuid moved_uuid;
  bool have_uuid = false;
  for (const std::string& e : entries) {
    std::string rel, dinode, dirent_value;
    if (!fs::Unpack(e, rel, dinode, dirent_value) || !rel.empty()) continue;
    moved_uuid = DirInodeLayout::Parse(dinode).uuid;
    have_uuid = true;
    break;
  }
  if (!have_uuid) {
    (void)co_await net::Call(channel_, src_node, proto::kDmsRenameAbort,
                             fs::Pack(txid));
    co_return ErrStatus(ErrCode::kCorruption);
  }

  // Rollback helper.  Order matters: the destination must be fenced (its
  // tombstone blocks a still-queued commit) *before* the source intent is
  // dropped — aborting the source first could let a late commit materialize
  // an orphan subtree no intent points at.  If the fence cannot be
  // confirmed, the source intent is left in place for fsck/GC.
  auto roll_back = [this, txid, src_node, dst_node]() -> net::Task<bool> {
    net::RpcResponse fence =
        co_await net::Call(channel_, dst_node, proto::kDmsAbortIncoming,
                           fs::Pack(txid, std::uint8_t{1}));
    if (!fence.ok()) co_return false;
    (void)co_await net::Call(channel_, src_node, proto::kDmsRenameAbort,
                             fs::Pack(txid));
    co_return true;
  };

  // Phase 2: commit on the destination shard.
  net::RpcResponse commit =
      co_await net::Call(channel_, dst_node, proto::kDmsRenameCommit,
                         fs::Pack(txid, to, identity_, entries));
  if (!commit.ok()) {
    // kTimeout/kUnavailable mean the frame may still execute server-side;
    // every other code is a response the destination actually sent, i.e. a
    // definite "not committed".
    const bool ambiguous = commit.code == ErrCode::kTimeout ||
                           commit.code == ErrCode::kUnavailable;
    if (!ambiguous) {
      (void)co_await roll_back();
      co_return StatusFrom(commit);
    }
    net::RpcResponse probe = co_await net::Call(
        channel_, dst_node, proto::kDmsStat, fs::Pack(to, identity_));
    if (probe.ok()) {
      fs::Attr attr;
      if (fs::Unpack(probe.payload, attr) && attr.uuid == moved_uuid) {
        // Our transfer landed after all: fall through to Finish.
      } else {
        // A foreign directory occupies the destination.
        (void)co_await roll_back();
        co_return ErrStatus(ErrCode::kExists);
      }
    } else if (probe.code == ErrCode::kNotFound) {
      (void)co_await roll_back();
      co_return StatusFrom(commit);
    } else {
      // Probe unreachable: resolution is left to fsck / the intent GC.
      co_return StatusFrom(commit);
    }
  }

  // Phase 3: finish — drop the source copy.  Best effort: the destination
  // already owns the subtree, and an unreachable source resolves via its
  // intent (dst root present => roll forward).
  (void)co_await net::Call(channel_, src_node, proto::kDmsRenameFinish,
                           fs::Pack(txid));

  InvalidatePrefix(from);
  NoteSubdir(fs::ParentPath(from), fs::BaseName(from), false);
  NoteSubdir(fs::ParentPath(to), fs::BaseName(to), true);
  co_return OkStatus();
}

}  // namespace loco::core
