#include "core/dms.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "common/clock.h"
#include "common/codec.h"
#include "common/hash.h"
#include "core/proto.h"
#include "fs/path.h"
#include "fs/wire.h"
#include "kvstore/striped_kv.h"
#include "net/wire.h"

namespace loco::core {

namespace {

net::RpcResponse Fail(ErrCode code) { return net::RpcResponse{code, {}}; }
net::RpcResponse Ok() { return net::RpcResponse{}; }
net::RpcResponse OkPayload(std::string payload) {
  return net::RpcResponse{ErrCode::kOk, std::move(payload)};
}
net::RpcResponse BadRequest() { return Fail(ErrCode::kCorruption); }

// Intent-log key: [kind u8 | txid u64] (see dms.h PendingRename).
std::string IntentKey(std::uint8_t kind, std::uint64_t txid) {
  std::string key(9, '\0');
  key[0] = static_cast<char>(kind);
  common::StoreAt<std::uint64_t>(&key, 1, txid);
  return key;
}

bool PathInSubtree(std::string_view path, std::string_view root) {
  if (root.empty()) return false;
  if (path == root) return true;
  return path.size() > root.size() && path.substr(0, root.size()) == root &&
         path[root.size()] == '/';
}

// Lock-table key for a directory path.  Paths (not uuids) name directories
// here so a lock taken before resolution still guards the right directory.
std::uint64_t PathLockKey(std::string_view path) {
  return common::WyMix(path, 0xfeed);
}

// Pinned scan snapshots kept per server; pinning beyond this evicts the
// oldest (a crashed fsck must not pin memory forever).
constexpr std::size_t kMaxSnapshots = 4;

// rpc.batch.* counters (docs/METRICS.md), shared with the FMS batch ops.
void CountBatch(std::size_t subops, std::size_t failed) {
  auto& reg = common::MetricsRegistry::Default();
  reg.GetCounter("rpc.batch.calls").Add();
  reg.GetCounter("rpc.batch.subops").Add(subops);
  if (failed > 0) reg.GetCounter("rpc.batch.partial_failures").Add(failed);
}

}  // namespace

DirectoryMetadataServer::DirectoryMetadataServer(const Options& options)
    : leases_([this, &options] {
        // Cap evictions must not silently drop an invalidation promise: wire
        // the table's eviction callback to a targeted resync push.  The
        // callback fires outside the table's lock (see LeaseTable::Grant),
        // so the Drop() re-entry on a dead push session cannot deadlock.
        LeaseTable::Options lease = options.lease;
        lease.on_evict = [this](const std::string& path, std::uint64_t client) {
          OnWatchEvicted(path, client);
        };
        return lease;
      }()) {
  sid_ = options.sid;
  // Each store gets its own subdirectory so their WALs never collide.
  kv::KvOptions dirs_opt = options.kv;
  kv::KvOptions dirents_opt = options.kv;
  kv::KvOptions intents_opt = options.kv;
  if (!options.kv.dir.empty()) {
    dirs_opt.dir = options.kv.dir + "/dirs";
    dirents_opt.dir = options.kv.dir + "/dirents";
    intents_opt.dir = options.kv.dir + "/intents";
    std::error_code ec;
    std::filesystem::create_directories(dirs_opt.dir, ec);
    std::filesystem::create_directories(dirents_opt.dir, ec);
    std::filesystem::create_directories(intents_opt.dir, ec);
  }
  dirs_ = std::move(kv::MakeStripedKv(options.backend, dirs_opt,
                                      options.kv_stripes))
              .value();
  dirents_ = std::move(kv::MakeStripedKv(kv::KvBackend::kHash, dirents_opt,
                                         options.kv_stripes))
                 .value();
  // The rename intent log stays tiny (one record per in-flight cross-shard
  // transfer); a single stripe avoids 16 extra WAL files per daemon.
  intents_ =
      std::move(kv::MakeStripedKv(kv::KvBackend::kHash, intents_opt, 1)).value();
  if (options.kv_decorator) {
    dirs_ = options.kv_decorator(std::move(dirs_));
    dirents_ = options.kv_decorator(std::move(dirents_));
  }
  // Reload pending cross-shard transfers: after a crash these drive the
  // roll-forward / roll-back decision (docs/SHARDING.md recovery table).
  intents_->ForEach([this](std::string_view key, std::string_view value) {
    if (key.size() != 9) return true;
    PendingRename p;
    p.kind = static_cast<std::uint8_t>(key[0]);
    p.txid = common::LoadAt<std::uint64_t>(key, 1);
    if (!fs::Unpack(value, p.from, p.to)) return true;
    pending_renames_[{p.kind, p.txid}] = std::move(p);
    return true;
  });
  // Recover the uuid allocator: it must never reissue a live fid.
  std::uint64_t max_fid = 1;
  dirents_->ForEach([&max_fid](std::string_view key, std::string_view) {
    const fs::Uuid uuid(common::LoadAt<std::uint64_t>(key, 0));
    max_fid = std::max(max_fid, uuid.fid());
    return true;
  });
  dirs_->ForEach([&max_fid](std::string_view, std::string_view value) {
    max_fid = std::max(max_fid, DirInodeLayout::Parse(value).uuid.fid());
    return true;
  });
  next_fid_ = max_fid + 1;

  kv_gauges_ = kv::RegisterKvStatsGauges(
      &common::MetricsRegistry::Default(), "server.dms.kv",
      [this] { return dirs_->stats() + dirents_->stats(); });

  // The root directory always exists.
  if (!dirs_->Contains("/")) {
    fs::Attr root;
    root.is_dir = true;
    root.mode = 0777;
    root.uid = 0;
    root.gid = 0;
    root.uuid = fs::kRootUuid;
    (void)dirs_->Put("/", DirInodeLayout::Make(root));
  }
}

Result<fs::Attr> DirectoryMetadataServer::ResolveDir(std::string_view path,
                                                     const fs::Identity& who,
                                                     std::uint32_t want) const {
  if (!fs::IsValidPath(path)) return ErrStatus(ErrCode::kInvalid);
  std::string value;
  // Ancestor walk: every level is a local KV get — the single-DMS ACL
  // benefit the paper describes (§3.1) and the depth cost Fig. 13 measures.
  for (const std::string& ancestor : fs::Ancestors(path)) {
    LOCO_RETURN_IF_ERROR(dirs_->Get(ancestor, &value));
    const fs::Attr attr = DirInodeLayout::Parse(value);
    if (!fs::CheckPermission(who, attr.mode, attr.uid, attr.gid, fs::kModeExec)) {
      return ErrStatus(ErrCode::kPermission);
    }
  }
  LOCO_RETURN_IF_ERROR(dirs_->Get(std::string(path), &value));
  const fs::Attr attr = DirInodeLayout::Parse(value);
  if (want != 0 &&
      !fs::CheckPermission(who, attr.mode, attr.uid, attr.gid, want)) {
    return ErrStatus(ErrCode::kPermission);
  }
  return attr;
}

net::RpcResponse DirectoryMetadataServer::Handle(std::uint16_t opcode,
                                                 std::string_view payload) {
  return HandleCtx(opcode, payload, net::HandlerContext{});
}

net::RpcResponse DirectoryMetadataServer::HandleCtx(
    std::uint16_t opcode, std::string_view payload,
    const net::HandlerContext& ctx) {
  const common::ServerOpCounters::PerOp& m = op_metrics_.For(opcode);
  m.calls->Add();
  net::RpcResponse resp = Dispatch(opcode, payload);
  if (resp.code != ErrCode::kOk) {
    m.errors->Add();
  } else {
    NotifySideEffects(opcode, payload, ctx.client_id);
  }
  return resp;
}

net::RpcResponse DirectoryMetadataServer::Dispatch(std::uint16_t opcode,
                                                   std::string_view payload) {
  // Rename rewrites path keys across a whole subtree; no per-directory lock
  // covers that, so it excludes every other handler.  Snapshot pinning rides
  // the same exclusion to materialize a point-in-time cut of both stores.
  if (opcode == proto::kDmsRename) {
    std::unique_lock ns(ns_mu_);
    return Rename(payload);
  }
  // The cross-shard transfer steps install or delete whole subtrees of path
  // keys, so they take the same exclusion Rename does.
  switch (opcode) {
    case proto::kDmsRenamePrepare: {
      std::unique_lock ns(ns_mu_);
      return RenamePrepare(payload);
    }
    case proto::kDmsRenameCommit: {
      std::unique_lock ns(ns_mu_);
      return RenameCommit(payload);
    }
    case proto::kDmsRenameFinish: {
      std::unique_lock ns(ns_mu_);
      return RenameFinish(payload);
    }
    case proto::kDmsRenameAbort: {
      std::unique_lock ns(ns_mu_);
      return RenameAbort(payload);
    }
    case proto::kDmsAbortIncoming: {
      std::unique_lock ns(ns_mu_);
      return AbortIncoming(payload);
    }
    default: break;
  }
  if (opcode == proto::kCtlSnapshotBegin) {
    std::unique_lock ns(ns_mu_);
    return SnapshotBegin();
  }
  std::shared_lock ns(ns_mu_);
  switch (opcode) {
    case proto::kDmsMkdir: return Mkdir(payload);
    case proto::kDmsBatchMkdir: return BatchMkdir(payload);
    case proto::kDmsRmdir: return Rmdir(payload);
    case proto::kDmsLookup: return Lookup(payload);
    case proto::kDmsStat: return Stat(payload);
    case proto::kDmsReaddir: return Readdir(payload);
    case proto::kDmsChmod: return Chmod(payload);
    case proto::kDmsChown: return Chown(payload);
    case proto::kDmsUtimens: return Utimens(payload);
    case proto::kDmsAccess: return Access(payload);
    case proto::kDmsRename: return Rename(payload);
    case proto::kDmsScanIntents: return ScanIntents(payload);
    case proto::kDmsScanDirs: return ScanDirs(payload);
    case proto::kDmsScanDirents: return ScanDirents(payload);
    case proto::kDmsRepairDirent: return RepairDirent(payload);
    case proto::kDmsDropDirents: return DropDirents(payload);
    case proto::kDmsAnnounce: return Announce(payload);
    case proto::kDmsCheckUuids: return CheckUuids(payload);
    case proto::kCtlSnapshotEnd: return SnapshotEnd(payload);
    case proto::kCtlGcStatus: return GcStatus();
    default: return Fail(ErrCode::kUnsupported);
  }
}

// ----------------------------------------------------------- push plane --

void DirectoryMetadataServer::NotifySideEffects(std::uint16_t opcode,
                                                std::string_view payload,
                                                std::uint64_t client) {
  if (notifier_ == nullptr) return;
  switch (opcode) {
    case proto::kDmsLookup: {
      // A successful Lookup is a lease grant — remember who to invalidate.
      if (client == 0) return;  // anonymous peer: no push session possible
      std::string path, shadow_name;
      fs::Identity who;
      std::uint32_t want = 0;
      if (!fs::Unpack(payload, path, who, want, shadow_name)) return;
      leases_.Grant(path, client,
                    static_cast<std::uint64_t>(common::CpuTimer::Now()));
      lease_grants_->Add();
      return;
    }
    case proto::kDmsMkdir: {
      std::string path;
      std::uint32_t mode = 0;
      fs::Identity who;
      std::uint64_t ts = 0;
      if (!fs::Unpack(payload, path, mode, who, ts)) return;
      // The parent's leased subdir list grew.
      PushInvalidate(std::string(fs::ParentPath(path)), false, client);
      return;
    }
    case proto::kDmsBatchMkdir: {
      // One push per distinct parent whose leased subdir list may have
      // grown.  Pushing for a sub-op that failed (kExists etc.) is merely a
      // spurious re-lookup for the holder, never a missed invalidation.
      std::vector<std::string_view> subops;
      if (!net::wire::DecodeBatchRequest(payload, &subops)) return;
      std::set<std::string> parents;
      for (const std::string_view sub : subops) {
        std::string path;
        std::uint32_t mode = 0;
        fs::Identity who;
        std::uint64_t ts = 0;
        if (!fs::Unpack(sub, path, mode, who, ts)) continue;
        parents.emplace(fs::ParentPath(path));
      }
      for (const std::string& parent : parents) {
        PushInvalidate(parent, false, client);
      }
      return;
    }
    case proto::kDmsRmdir: {
      std::string path;
      fs::Identity who;
      std::uint8_t files_checked = 0;
      if (!fs::Unpack(payload, path, who, files_checked)) return;
      PushInvalidate(path, false, client);
      PushInvalidate(std::string(fs::ParentPath(path)), false, client);
      return;
    }
    case proto::kDmsChmod: {
      std::string path;
      fs::Identity who;
      std::uint32_t mode = 0;
      std::uint64_t ts = 0;
      if (!fs::Unpack(payload, path, who, mode, ts)) return;
      PushInvalidate(path, false, client);
      return;
    }
    case proto::kDmsChown: {
      std::string path;
      fs::Identity who;
      std::uint32_t uid = 0, gid = 0;
      std::uint64_t ts = 0;
      if (!fs::Unpack(payload, path, who, uid, gid, ts)) return;
      PushInvalidate(path, false, client);
      return;
    }
    case proto::kDmsUtimens: {
      std::string path;
      fs::Identity who;
      std::uint64_t mtime = 0, atime = 0;
      if (!fs::Unpack(payload, path, who, mtime, atime)) return;
      PushInvalidate(path, false, client);
      return;
    }
    case proto::kDmsRename: {
      std::string from, to;
      fs::Identity who;
      if (!fs::Unpack(payload, from, to, who)) return;
      // Every lease under the moved subtree names a path that no longer
      // exists; both parents' subdir lists changed.
      PushInvalidate(from, true, client);
      PushInvalidate(std::string(fs::ParentPath(from)), false, client);
      PushInvalidate(std::string(fs::ParentPath(to)), false, client);
      return;
    }
    case proto::kDmsRenameCommit: {
      // The destination parent's leased subdir list grew.
      std::uint64_t txid = 0;
      std::string to;
      fs::Identity who;
      std::vector<std::string> entries;
      if (!fs::Unpack(payload, txid, to, who, entries)) return;
      PushInvalidate(std::string(fs::ParentPath(to)), false, client);
      return;
    }
    default:
      return;
  }
}

void DirectoryMetadataServer::PushInvalidate(const std::string& path,
                                             bool subtree,
                                             std::uint64_t client) {
  const std::vector<std::uint64_t> targets = leases_.Collect(
      path, subtree, client,
      static_cast<std::uint64_t>(common::CpuTimer::Now()));
  if (targets.empty()) return;
  net::InvalidateEvent event;
  event.path = path;
  event.subtree = subtree;
  event.wall_ts_ns = static_cast<std::uint64_t>(common::WallClockNs());
  const std::string bytes = net::EncodeInvalidate(event);
  for (const std::uint64_t target : targets) {
    if (notifier_->PushNotify(target, net::wire::kNotifyInvalidate, bytes)) {
      invalidations_pushed_->Add();
    } else {
      // No live push session: its watches are undeliverable, drop them all.
      leases_.Drop(target);
    }
  }
}

void DirectoryMetadataServer::OnWatchEvicted(const std::string& path,
                                             std::uint64_t client) {
  // The evicted holder keeps serving its cached entry until the lease times
  // out unless told otherwise — and the table just forgot it exists, so no
  // future mutation will tell it.  Close the gap with a synthetic
  // invalidation now; a client without a push session simply rides out the
  // lease timeout exactly as before the push plane existed.
  if (notifier_ == nullptr) return;
  net::InvalidateEvent event;
  event.path = path;
  event.subtree = false;
  event.wall_ts_ns = static_cast<std::uint64_t>(common::WallClockNs());
  if (notifier_->PushNotify(client, net::wire::kNotifyInvalidate,
                            net::EncodeInvalidate(event))) {
    evict_resyncs_->Add();
  } else {
    leases_.Drop(client);
  }
}

net::RpcResponse DirectoryMetadataServer::Mkdir(std::string_view payload) {
  std::string path;
  std::uint32_t mode = 0;
  fs::Identity who;
  std::uint64_t ts = 0;
  if (!fs::Unpack(payload, path, mode, who, ts)) return BadRequest();
  if (!fs::IsValidPath(path) || path == "/") return Fail(ErrCode::kInvalid);
  if (LockedForRename(path)) return Fail(ErrCode::kStale);

  // Serialize against sibling mkdirs and a concurrent rmdir of the parent:
  // existence check, d-inode put, and dirent append are one critical
  // section per parent directory.
  const std::string parent_path(fs::ParentPath(path));
  const auto guard = dir_locks_.Lock(PathLockKey(parent_path));
  auto parent = ResolveDir(parent_path, who, fs::kModeWrite | fs::kModeExec);
  if (!parent.ok()) return Fail(parent.code());
  if (dirs_->Contains(path)) return Fail(ErrCode::kExists);

  fs::Attr attr;
  attr.is_dir = true;
  attr.mode = mode;
  attr.uid = who.uid;
  attr.gid = who.gid;
  attr.ctime = attr.mtime = attr.atime = ts;
  attr.uuid = fs::Uuid::Make(
      sid_, next_fid_.fetch_add(1, std::memory_order_relaxed));
  if (!dirs_->Put(path, DirInodeLayout::Make(attr)).ok()) {
    return Fail(ErrCode::kIo);
  }

  // Record the new subdirectory in the parent's concatenated dirent value.
  const std::string dirent_key = DirentKey(parent->uuid);
  std::string dirent_value;
  (void)dirents_->Get(dirent_key, &dirent_value);
  AppendDirent(&dirent_value, fs::BaseName(path));
  if (!dirents_->Put(dirent_key, dirent_value).ok()) {
    // Roll back the d-inode: without its dirent entry the directory would be
    // invisible to Readdir yet block any future mkdir of the same path.
    (void)dirs_->Delete(path);
    return Fail(ErrCode::kIo);
  }
  return Ok();
}

net::RpcResponse DirectoryMetadataServer::BatchMkdir(std::string_view payload) {
  std::vector<std::string_view> subops;
  if (!net::wire::DecodeBatchRequest(payload, &subops)) return BadRequest();
  // Dispatch already holds ns_mu_ shared for the whole frame: the entire
  // batch is one namespace-lock acquisition.  Sub-ops apply in order, so a
  // batch may materialize "a" and then "a/b"; each one reuses the single-op
  // Mkdir (per-parent dir lock, rollback) and fails alone.
  std::vector<net::wire::BatchItem> items;
  items.reserve(subops.size());
  std::size_t failed = 0;
  for (const std::string_view sub : subops) {
    net::RpcResponse r = Mkdir(sub);
    if (r.code != ErrCode::kOk) ++failed;
    items.push_back(net::wire::BatchItem{r.code, std::move(r.payload)});
  }
  CountBatch(subops.size(), failed);
  return OkPayload(net::wire::EncodeBatchResponse(items));
}

net::RpcResponse DirectoryMetadataServer::Rmdir(std::string_view payload) {
  std::string path;
  fs::Identity who;
  std::uint8_t files_checked = 0;
  if (!fs::Unpack(payload, path, who, files_checked)) return BadRequest();
  if (!fs::IsValidPath(path) || path == "/") return Fail(ErrCode::kInvalid);
  if (LockedForRename(path)) return Fail(ErrCode::kStale);

  // Lock the parent (its dirent list shrinks) and the target (a concurrent
  // mkdir inside it locks the same slot as its parent); LockPair orders the
  // two slots, so overlapping rmdirs cannot deadlock.
  const std::string parent_lock_path(fs::ParentPath(path));
  const auto guard =
      dir_locks_.LockPair(PathLockKey(parent_lock_path), PathLockKey(path));

  // Contract order: existence/emptiness before the parent write check.
  auto attr_or = ResolveDir(path, who, 0);
  if (!attr_or.ok()) return Fail(attr_or.code());
  const fs::Attr attr = *attr_or;

  // Subdirectory emptiness is local; file emptiness was verified by the
  // client against every FMS (files_checked is the protocol attestation).
  std::string dirent_value;
  if (dirents_->Get(DirentKey(attr.uuid), &dirent_value).ok() &&
      !ParseDirentList(dirent_value).empty()) {
    return Fail(ErrCode::kNotEmpty);
  }
  if (files_checked == 0) return Fail(ErrCode::kInvalid);

  auto parent = ResolveDir(fs::ParentPath(path), who, fs::kModeWrite);
  if (!parent.ok()) return Fail(parent.code());

  (void)dirs_->Delete(path);
  (void)dirents_->Delete(DirentKey(attr.uuid));
  const std::string parent_key = DirentKey(parent->uuid);
  std::string parent_dirents;
  if (dirents_->Get(parent_key, &parent_dirents).ok()) {
    if (RemoveDirent(&parent_dirents, fs::BaseName(path))) {
      (void)dirents_->Put(parent_key, parent_dirents);
    }
  }
  return Ok();
}

net::RpcResponse DirectoryMetadataServer::Lookup(std::string_view payload) {
  std::string path;
  fs::Identity who;
  std::uint32_t want = 0;
  std::string shadow_name;
  if (!fs::Unpack(payload, path, who, want, shadow_name)) return BadRequest();
  auto attr = ResolveDir(path, who, want);
  if (!attr.ok()) return Fail(attr.code());
  std::string dirent_value;
  (void)dirents_->Get(DirentKey(attr->uuid), &dirent_value);
  std::vector<std::string> names = ParseDirentList(dirent_value);
  if (!shadow_name.empty() &&
      std::find(names.begin(), names.end(), shadow_name) != names.end()) {
    return Fail(ErrCode::kExists);
  }
  // The reply carries the subdirectory names so the client can keep
  // enforcing the shadow check locally for the lease lifetime (§3.2.2).
  return OkPayload(fs::Pack(*attr, names));
}

net::RpcResponse DirectoryMetadataServer::Stat(std::string_view payload) {
  std::string path;
  fs::Identity who;
  if (!fs::Unpack(payload, path, who)) return BadRequest();
  auto attr = ResolveDir(path, who, 0);
  if (!attr.ok()) return Fail(attr.code());
  return OkPayload(fs::Pack(*attr));
}

net::RpcResponse DirectoryMetadataServer::Readdir(std::string_view payload) {
  std::string path;
  fs::Identity who;
  if (!fs::Unpack(payload, path, who)) return BadRequest();
  auto attr = ResolveDir(path, who, fs::kModeRead);
  if (!attr.ok()) return Fail(attr.code());
  std::string dirent_value;
  (void)dirents_->Get(DirentKey(attr->uuid), &dirent_value);
  std::vector<fs::DirEntry> entries;
  for (std::string& name : ParseDirentList(dirent_value)) {
    entries.push_back(fs::DirEntry{std::move(name), true});
  }
  return OkPayload(fs::Pack(*attr, entries));
}

net::RpcResponse DirectoryMetadataServer::Chmod(std::string_view payload) {
  std::string path;
  fs::Identity who;
  std::uint32_t mode = 0;
  std::uint64_t ts = 0;
  if (!fs::Unpack(payload, path, who, mode, ts)) return BadRequest();
  if (LockedForRename(path)) return Fail(ErrCode::kStale);
  auto attr = ResolveDir(path, who, 0);
  if (!attr.ok()) return Fail(attr.code());
  if (who.uid != 0 && who.uid != attr->uid) return Fail(ErrCode::kPermission);
  // Fixed-offset patch: ctime and mode are contiguous (bytes 0..12).
  std::string patch(12, '\0');
  common::StoreAt<std::uint64_t>(&patch, 0, ts);
  common::StoreAt<std::uint32_t>(&patch, 8, mode);
  (void)dirs_->PatchValue(path, DirInodeLayout::kCtime, patch);
  return Ok();
}

net::RpcResponse DirectoryMetadataServer::Chown(std::string_view payload) {
  std::string path;
  fs::Identity who;
  std::uint32_t uid = 0, gid = 0;
  std::uint64_t ts = 0;
  if (!fs::Unpack(payload, path, who, uid, gid, ts)) return BadRequest();
  if (LockedForRename(path)) return Fail(ErrCode::kStale);
  // Chown writes two separate patches (uid/gid, then ctime); keep the pair
  // atomic against a concurrent chown of the same directory.
  const auto guard = dir_locks_.Lock(PathLockKey(path));
  auto attr = ResolveDir(path, who, 0);
  if (!attr.ok()) return Fail(attr.code());
  if (who.uid != 0 && !(who.uid == attr->uid && uid == attr->uid)) {
    return Fail(ErrCode::kPermission);
  }
  std::string ids(8, '\0');
  common::StoreAt<std::uint32_t>(&ids, 0, uid);
  common::StoreAt<std::uint32_t>(&ids, 4, gid);
  (void)dirs_->PatchValue(path, DirInodeLayout::kUid, ids);
  std::string ctime(8, '\0');
  common::StoreAt<std::uint64_t>(&ctime, 0, ts);
  (void)dirs_->PatchValue(path, DirInodeLayout::kCtime, ctime);
  return Ok();
}

net::RpcResponse DirectoryMetadataServer::Utimens(std::string_view payload) {
  std::string path;
  fs::Identity who;
  std::uint64_t mtime = 0, atime = 0;
  if (!fs::Unpack(payload, path, who, mtime, atime)) return BadRequest();
  if (LockedForRename(path)) return Fail(ErrCode::kStale);
  auto attr = ResolveDir(path, who, 0);
  if (!attr.ok()) return Fail(attr.code());
  if (who.uid != 0 && who.uid != attr->uid &&
      !fs::CheckPermission(who, attr->mode, attr->uid, attr->gid,
                           fs::kModeWrite)) {
    return Fail(ErrCode::kPermission);
  }
  std::string times(16, '\0');
  common::StoreAt<std::uint64_t>(&times, 0, mtime);
  common::StoreAt<std::uint64_t>(&times, 8, atime);
  (void)dirs_->PatchValue(path, DirInodeLayout::kMtime, times);
  return Ok();
}

net::RpcResponse DirectoryMetadataServer::Access(std::string_view payload) {
  std::string path;
  fs::Identity who;
  std::uint32_t want = 0;
  if (!fs::Unpack(payload, path, who, want)) return BadRequest();
  auto attr = ResolveDir(path, who, want);
  if (!attr.ok()) return Fail(attr.code());
  return Ok();
}

net::RpcResponse DirectoryMetadataServer::Rename(std::string_view payload) {
  std::string from, to;
  fs::Identity who;
  if (!fs::Unpack(payload, from, to, who)) return BadRequest();
  if (!fs::IsValidPath(from) || !fs::IsValidPath(to) || from == "/" ||
      to == "/") {
    return Fail(ErrCode::kInvalid);
  }
  if (to.size() > from.size() && to.substr(0, from.size()) == from &&
      to[from.size()] == '/') {
    return Fail(ErrCode::kInvalid);  // destination inside source subtree
  }
  if (from == to) return OkPayload(fs::Pack(std::uint64_t{0}));
  if (LockedForRename(from) || LockedForRename(to)) {
    return Fail(ErrCode::kStale);
  }

  auto src_parent = ResolveDir(fs::ParentPath(from), who,
                               fs::kModeWrite | fs::kModeExec);
  if (!src_parent.ok()) return Fail(src_parent.code());
  std::string value;
  if (!dirs_->Get(from, &value).ok()) return Fail(ErrCode::kNotFound);
  auto dst_parent = ResolveDir(fs::ParentPath(to), who,
                               fs::kModeWrite | fs::kModeExec);
  if (!dst_parent.ok()) return Fail(dst_parent.code());
  if (dirs_->Contains(to)) return Fail(ErrCode::kExists);

  // Relocate the subtree's d-inodes.  With the B+-tree backend this is an
  // ordered range scan of exactly the subtree (§3.4.3); with the hash
  // backend ScanPrefix degrades to a full table walk (Fig. 14's contrast).
  // Children (files and the subtree's dirent lists) are keyed by uuid and
  // never move (§3.4.2).
  std::vector<kv::Entry> subtree;
  (void)dirs_->ScanPrefix(from + "/", 0, &subtree);
  std::uint64_t moved = 0;
  for (auto& [old_key, inode] : subtree) {
    std::string new_key = to + old_key.substr(from.size());
    (void)dirs_->Delete(old_key);
    (void)dirs_->Put(new_key, inode);
    ++moved;
  }
  (void)dirs_->Delete(from);
  (void)dirs_->Put(to, value);
  ++moved;

  // Fix both parents' dirent lists.
  const std::string src_key = DirentKey(src_parent->uuid);
  std::string src_dirents;
  if (dirents_->Get(src_key, &src_dirents).ok() &&
      RemoveDirent(&src_dirents, fs::BaseName(from))) {
    (void)dirents_->Put(src_key, src_dirents);
  }
  const std::string dst_key = DirentKey(dst_parent->uuid);
  std::string dst_dirents;
  (void)dirents_->Get(dst_key, &dst_dirents);
  AppendDirent(&dst_dirents, fs::BaseName(to));
  (void)dirents_->Put(dst_key, dst_dirents);
  return OkPayload(fs::Pack(moved));
}

// ------------------------------------------ cross-shard rename transfer --
//
// The client drives Prepare (source) -> Commit (destination) -> Finish
// (source); every step is idempotent, keyed by a client-minted txid, and
// leaves a durable record (outgoing intent on the source, incoming marker on
// the destination) so fsck/GC can resolve a transfer abandoned at any crash
// point.  The commit installs the subtree root *last*: "the root of `to`
// exists on the destination" is therefore the transaction's durable commit
// point — present means roll forward (Finish), absent means roll back
// (AbortIncoming purge + Abort).  See docs/SHARDING.md.

bool DirectoryMetadataServer::LockedForRename(std::string_view path) const {
  std::lock_guard<std::mutex> lock(rename_mu_);
  for (const auto& [key, p] : pending_renames_) {
    if (p.kind == 0 && PathInSubtree(path, p.from)) return true;
    if (p.kind == 1 && PathInSubtree(path, p.to)) return true;
  }
  return false;
}

bool DirectoryMetadataServer::PutIntent(std::uint8_t kind, std::uint64_t txid,
                                        std::string_view from,
                                        std::string_view to) {
  if (!intents_->Put(IntentKey(kind, txid),
                     fs::Pack(std::string(from), std::string(to)))
           .ok()) {
    return false;
  }
  PendingRename p;
  p.kind = kind;
  p.txid = txid;
  p.from = std::string(from);
  p.to = std::string(to);
  std::lock_guard<std::mutex> lock(rename_mu_);
  pending_renames_[{kind, txid}] = std::move(p);
  return true;
}

void DirectoryMetadataServer::EraseIntent(std::uint8_t kind,
                                          std::uint64_t txid) {
  (void)intents_->Delete(IntentKey(kind, txid));
  std::lock_guard<std::mutex> lock(rename_mu_);
  pending_renames_.erase({kind, txid});
}

void DirectoryMetadataServer::DeleteSubtree(const std::string& root) {
  std::vector<kv::Entry> subtree;
  (void)dirs_->ScanPrefix(root + "/", 0, &subtree);
  for (const auto& [key, inode] : subtree) {
    (void)dirents_->Delete(DirentKey(DirInodeLayout::Parse(inode).uuid));
    (void)dirs_->Delete(key);
  }
  std::string inode;
  if (dirs_->Get(root, &inode).ok()) {
    (void)dirents_->Delete(DirentKey(DirInodeLayout::Parse(inode).uuid));
    (void)dirs_->Delete(root);
  }
}

std::vector<DirectoryMetadataServer::PendingRename>
DirectoryMetadataServer::PendingRenames() const {
  std::vector<PendingRename> out;
  std::lock_guard<std::mutex> lock(rename_mu_);
  out.reserve(pending_renames_.size());
  for (const auto& [key, p] : pending_renames_) out.push_back(p);
  return out;
}

net::RpcResponse DirectoryMetadataServer::RenamePrepare(
    std::string_view payload) {
  std::string from, to;
  std::uint64_t txid = 0;
  fs::Identity who;
  if (!fs::Unpack(payload, from, to, txid, who)) return BadRequest();
  if (!fs::IsValidPath(from) || !fs::IsValidPath(to) || from == "/" ||
      to == "/" || txid == 0) {
    return Fail(ErrCode::kInvalid);
  }
  if (PathInSubtree(to, from)) return Fail(ErrCode::kInvalid);

  // A retry of an already-prepared txid re-packages the (still locked, so
  // unchanged) subtree.  Any *other* pending transfer overlapping `from`
  // blocks this one.
  bool retry = false;
  {
    std::lock_guard<std::mutex> lock(rename_mu_);
    for (const auto& [key, p] : pending_renames_) {
      if (p.kind == 0 && p.txid == txid && p.from == from && p.to == to) {
        retry = true;
        continue;
      }
      if (p.kind == 0 && (PathInSubtree(from, p.from) ||
                          PathInSubtree(p.from, from))) {
        return Fail(ErrCode::kStale);
      }
    }
  }

  auto src_parent =
      ResolveDir(fs::ParentPath(from), who, fs::kModeWrite | fs::kModeExec);
  if (!src_parent.ok()) return Fail(src_parent.code());
  std::string root_inode;
  if (!dirs_->Get(from, &root_inode).ok()) return Fail(ErrCode::kNotFound);

  // Package the subtree: one entry per d-inode, with its uuid-keyed dirent
  // list riding along (the uuids move to the destination shard with their
  // directories).  rel_path is "" for the subtree root.
  std::vector<std::string> entries;
  auto package = [this, &entries](std::string rel, std::string_view inode) {
    std::string dirent_value;
    (void)dirents_->Get(DirentKey(DirInodeLayout::Parse(inode).uuid),
                        &dirent_value);
    entries.push_back(
        fs::Pack(std::move(rel), std::string(inode), dirent_value));
  };
  package("", root_inode);
  std::vector<kv::Entry> subtree;
  (void)dirs_->ScanPrefix(from + "/", 0, &subtree);
  for (const auto& [key, inode] : subtree) {
    package(key.substr(from.size() + 1), inode);
  }

  if (!retry && !PutIntent(0, txid, from, to)) return Fail(ErrCode::kIo);
  return OkPayload(fs::Pack(entries));
}

net::RpcResponse DirectoryMetadataServer::RenameCommit(
    std::string_view payload) {
  std::uint64_t txid = 0;
  std::string to;
  fs::Identity who;
  std::vector<std::string> entries;
  if (!fs::Unpack(payload, txid, to, who, entries)) return BadRequest();
  if (!fs::IsValidPath(to) || to == "/" || txid == 0 || entries.empty()) {
    return Fail(ErrCode::kInvalid);
  }

  // A tombstone fences a commit that lost the race with rollback: once the
  // client (or fsck/GC) aborted this txid here, a late-arriving or retried
  // commit must not materialize the subtree — the source may already have
  // been rolled back or re-renamed.
  {
    std::lock_guard<std::mutex> lock(rename_mu_);
    if (pending_renames_.count({2, txid}) != 0) return Fail(ErrCode::kStale);
  }

  auto dst_parent =
      ResolveDir(fs::ParentPath(to), who, fs::kModeWrite | fs::kModeExec);
  if (!dst_parent.ok()) return Fail(dst_parent.code());
  if (dirs_->Contains(to)) {
    // Either a genuine name collision or a retry of a commit that already
    // completed.  Our own completed commit left (or is about to drop) the
    // incoming marker; distinguish by txid.
    bool ours = false;
    {
      std::lock_guard<std::mutex> lock(rename_mu_);
      ours = pending_renames_.count({1, txid}) != 0;
    }
    if (!ours) return Fail(ErrCode::kExists);
    EraseIntent(1, txid);
    return Ok();
  }

  // Durable order: marker first (so a crash mid-install is recognizably a
  // partial transfer), children next, the subtree root *last* (the commit
  // point), then the parent dirent entry, then the marker drop.
  if (!PutIntent(1, txid, "", to)) return Fail(ErrCode::kIo);
  std::string root_inode;
  for (const std::string& entry : entries) {
    std::string rel, inode, dirent_value;
    if (!fs::Unpack(entry, rel, inode, dirent_value)) {
      return BadRequest();  // marker stays; fsck rolls the partial back
    }
    if (rel.empty()) {
      root_inode = inode;
      if (!dirent_value.empty()) {
        (void)dirents_->Put(DirentKey(DirInodeLayout::Parse(inode).uuid),
                            dirent_value);
      }
      continue;
    }
    const std::string path = to + "/" + rel;
    if (!dirs_->Put(path, inode).ok()) return Fail(ErrCode::kIo);
    if (!dirent_value.empty()) {
      (void)dirents_->Put(DirentKey(DirInodeLayout::Parse(inode).uuid),
                          dirent_value);
    }
  }
  if (root_inode.empty()) return Fail(ErrCode::kInvalid);
  if (!dirs_->Put(to, root_inode).ok()) return Fail(ErrCode::kIo);

  const std::string dst_key = DirentKey(dst_parent->uuid);
  std::string dst_dirents;
  (void)dirents_->Get(dst_key, &dst_dirents);
  if (!DirentListContains(dst_dirents, fs::BaseName(to))) {
    AppendDirent(&dst_dirents, fs::BaseName(to));
    (void)dirents_->Put(dst_key, dst_dirents);
  }
  EraseIntent(1, txid);
  return Ok();
}

net::RpcResponse DirectoryMetadataServer::RenameFinish(
    std::string_view payload) {
  std::uint64_t txid = 0;
  if (!fs::Unpack(payload, txid)) return BadRequest();
  PendingRename p;
  {
    std::lock_guard<std::mutex> lock(rename_mu_);
    auto it = pending_renames_.find({0, txid});
    if (it == pending_renames_.end()) return Ok();  // already finished
    p = it->second;
  }
  // The destination owns the subtree now: delete the source copy, fix the
  // source parent's dirent list, drop the intent.
  std::string parent_inode;
  if (dirs_->Get(std::string(fs::ParentPath(p.from)), &parent_inode).ok()) {
    const std::string src_key =
        DirentKey(DirInodeLayout::Parse(parent_inode).uuid);
    std::string src_dirents;
    if (dirents_->Get(src_key, &src_dirents).ok() &&
        RemoveDirent(&src_dirents, fs::BaseName(p.from))) {
      (void)dirents_->Put(src_key, src_dirents);
    }
  }
  DeleteSubtree(p.from);
  // Push while `from` is still known (Finish carries only the txid, so the
  // generic NotifySideEffects path cannot recover the paths afterwards).
  // client=0 never matches a real push session, so nobody is excluded.
  if (notifier_ != nullptr) {
    PushInvalidate(p.from, true, 0);
    PushInvalidate(std::string(fs::ParentPath(p.from)), false, 0);
  }
  EraseIntent(0, txid);
  return Ok();
}

net::RpcResponse DirectoryMetadataServer::RenameAbort(
    std::string_view payload) {
  std::uint64_t txid = 0;
  if (!fs::Unpack(payload, txid)) return BadRequest();
  // Pre-commit rollback: the source subtree was never touched, so dropping
  // the intent (and with it the mutation lock) is the whole cleanup.
  EraseIntent(0, txid);
  return Ok();
}

net::RpcResponse DirectoryMetadataServer::AbortIncoming(
    std::string_view payload) {
  std::uint64_t txid = 0;
  std::uint8_t purge = 0;
  if (!fs::Unpack(payload, txid, purge)) return BadRequest();
  // Tombstone the txid unconditionally — even when no marker exists yet.
  // The commit this abort outruns may still be queued (a client timeout does
  // not mean the frame was dropped); the tombstone makes it bounce with
  // kStale instead of resurrecting a rolled-back subtree.  Tombstones are a
  // 9-byte key each and only ever created for failed transfers, so they are
  // kept forever rather than aged.
  if (!PutIntent(2, txid, "", "")) return Fail(ErrCode::kIo);
  PendingRename p;
  {
    std::lock_guard<std::mutex> lock(rename_mu_);
    auto it = pending_renames_.find({1, txid});
    if (it == pending_renames_.end()) return Ok();  // commit completed or
                                                    // never started here
    p = it->second;
  }
  // Purge only a *partial* install: if the subtree root exists the commit
  // completed and the transfer must roll forward — drop just the marker.
  if (purge != 0 && !dirs_->Contains(p.to)) DeleteSubtree(p.to);
  EraseIntent(1, txid);
  return Ok();
}

std::string DirectoryMetadataServer::ScanIntentsPayload() const {
  std::vector<std::string> entries;
  for (const PendingRename& p : PendingRenames()) {
    entries.push_back(fs::Pack(p.kind, p.txid, p.from, p.to));
  }
  return fs::Pack(entries);
}

net::RpcResponse DirectoryMetadataServer::ScanIntents(
    std::string_view payload) {
  if (!payload.empty()) {
    std::uint64_t epoch = 0;
    if (!fs::Unpack(payload, epoch)) return BadRequest();
    std::lock_guard<std::mutex> lock(snap_mu_);
    auto it = snapshots_.find(epoch);
    if (it == snapshots_.end()) return Fail(ErrCode::kNotFound);
    return OkPayload(it->second.intents);
  }
  return OkPayload(ScanIntentsPayload());
}

// ----------------------------------------------------- fsck / admin surface --

std::string DirectoryMetadataServer::ScanDirsPayload() {
  // Full d-inode inventory for loco_fsck.
  std::vector<std::string> entries;
  dirs_->ForEach([&entries](std::string_view key, std::string_view value) {
    entries.push_back(
        fs::Pack(std::string(key), DirInodeLayout::Parse(value).uuid));
    return true;
  });
  return fs::Pack(entries);
}

std::string DirectoryMetadataServer::ScanDirentsPayload() {
  std::vector<std::string> entries;
  dirents_->ForEach([&entries](std::string_view key, std::string_view value) {
    const fs::Uuid uuid(common::LoadAt<std::uint64_t>(key, 0));
    entries.push_back(fs::Pack(uuid, ParseDirentList(value)));
    return true;
  });
  return fs::Pack(entries);
}

net::RpcResponse DirectoryMetadataServer::ScanDirs(std::string_view payload) {
  if (!payload.empty()) {
    std::uint64_t epoch = 0;
    if (!fs::Unpack(payload, epoch)) return BadRequest();
    std::lock_guard<std::mutex> lock(snap_mu_);
    auto it = snapshots_.find(epoch);
    if (it == snapshots_.end()) return Fail(ErrCode::kNotFound);
    return OkPayload(it->second.dirs);
  }
  // Live scan: racy against concurrent mutations like any online scan —
  // loco_fsck --live pins an epoch instead.
  return OkPayload(ScanDirsPayload());
}

net::RpcResponse DirectoryMetadataServer::ScanDirents(std::string_view payload) {
  if (!payload.empty()) {
    std::uint64_t epoch = 0;
    if (!fs::Unpack(payload, epoch)) return BadRequest();
    std::lock_guard<std::mutex> lock(snap_mu_);
    auto it = snapshots_.find(epoch);
    if (it == snapshots_.end()) return Fail(ErrCode::kNotFound);
    return OkPayload(it->second.dirents);
  }
  return OkPayload(ScanDirentsPayload());
}

net::RpcResponse DirectoryMetadataServer::SnapshotBegin() {
  Snapshot snap;
  snap.dirs = ScanDirsPayload();
  snap.dirents = ScanDirentsPayload();
  snap.intents = ScanIntentsPayload();
  std::lock_guard<std::mutex> lock(snap_mu_);
  const std::uint64_t epoch = next_snapshot_epoch_++;
  snapshots_[epoch] = std::move(snap);
  while (snapshots_.size() > kMaxSnapshots) snapshots_.erase(snapshots_.begin());
  return OkPayload(fs::Pack(epoch));
}

net::RpcResponse DirectoryMetadataServer::SnapshotEnd(std::string_view payload) {
  std::uint64_t epoch = 0;
  if (!fs::Unpack(payload, epoch)) return BadRequest();
  std::lock_guard<std::mutex> lock(snap_mu_);
  snapshots_.erase(epoch);  // unknown epochs were evicted: fine
  return Ok();
}

net::RpcResponse DirectoryMetadataServer::CheckUuids(std::string_view payload) {
  std::vector<std::string> entries;
  if (!fs::Unpack(payload, entries)) return BadRequest();
  std::map<std::uint64_t, std::vector<std::size_t>> wanted;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    fs::Uuid uuid;
    if (!fs::Unpack(entries[i], uuid)) return BadRequest();
    wanted[uuid.raw()].push_back(i);
  }
  std::string bitmap(entries.size(), '\0');
  dirs_->ForEach([&](std::string_view, std::string_view value) {
    auto it = wanted.find(DirInodeLayout::Parse(value).uuid.raw());
    if (it != wanted.end()) {
      for (const std::size_t i : it->second) bitmap[i] = '\1';
    }
    return true;
  });
  return OkPayload(std::move(bitmap));
}

net::RpcResponse DirectoryMetadataServer::GcStatus() {
  if (gc_ == nullptr) return Fail(ErrCode::kUnavailable);
  return OkPayload(gc_->StatusPayload());
}

net::RpcResponse DirectoryMetadataServer::RepairDirent(std::string_view payload) {
  std::string dir_path, name;
  std::uint8_t add = 0;
  if (!fs::Unpack(payload, dir_path, name, add)) return BadRequest();
  if (!fs::IsValidPath(dir_path) || name.empty()) return Fail(ErrCode::kInvalid);

  const auto guard = dir_locks_.Lock(PathLockKey(dir_path));
  std::string value;
  if (!dirs_->Get(dir_path, &value).ok()) return Fail(ErrCode::kNotFound);
  const fs::Attr attr = DirInodeLayout::Parse(value);
  const std::string dirent_key = DirentKey(attr.uuid);
  std::string dirent_value;
  (void)dirents_->Get(dirent_key, &dirent_value);
  if (add != 0) {
    if (DirentListContains(dirent_value, name)) return Ok();
    AppendDirent(&dirent_value, name);
  } else {
    if (!RemoveDirent(&dirent_value, name)) return Ok();
  }
  if (!dirents_->Put(dirent_key, dirent_value).ok()) return Fail(ErrCode::kIo);
  return Ok();
}

net::RpcResponse DirectoryMetadataServer::DropDirents(std::string_view payload) {
  fs::Uuid uuid;
  if (!fs::Unpack(payload, uuid)) return BadRequest();
  // Only reasonable against a uuid whose d-inode is gone (rmdir crash
  // leftovers); fsck verifies that before asking.
  (void)dirents_->Delete(DirentKey(uuid));
  return Ok();
}

// --------------------------------------------------------- housekeeping --

bool DirectoryMetadataServer::GcFixDirent(const std::string& dir_path,
                                          const std::string& name, bool add) {
  std::shared_lock ns(ns_mu_);
  const auto guard = dir_locks_.Lock(PathLockKey(dir_path));
  std::string value;
  if (!dirs_->Get(dir_path, &value).ok()) return false;
  const fs::Attr attr = DirInodeLayout::Parse(value);
  const std::string child_path =
      dir_path == "/" ? "/" + name : dir_path + "/" + name;
  const bool child_exists = dirs_->Contains(child_path);
  const std::string dirent_key = DirentKey(attr.uuid);
  std::string dirent_value;
  (void)dirents_->Get(dirent_key, &dirent_value);
  const bool listed = DirentListContains(dirent_value, name);
  if (add) {
    // I4: the child d-inode must still exist and still be unlisted.  Holding
    // the same lock Mkdir appends under makes a duplicate entry impossible.
    if (!child_exists || listed) return false;
    AppendDirent(&dirent_value, name);
  } else {
    // I2: the entry must still be dangling.  A child mid-Mkdir cannot look
    // like this (the inode is written before the dirent entry).
    if (child_exists || !listed) return false;
    if (!RemoveDirent(&dirent_value, name)) return false;
  }
  return dirents_->Put(dirent_key, dirent_value).ok();
}

GcStepResult DirectoryMetadataServer::GcStep(std::uint32_t budget) {
  GcStepResult result;

  // Phase 1: apply repairs found by an earlier harvest, re-verified at apply
  // time under the serving locks.
  while (!gc_queue_.empty() && result.ops < budget) {
    const GcPending p = std::move(gc_queue_.front());
    gc_queue_.pop_front();
    result.ops += 1;
    switch (p.kind) {
      case GcPending::kMkdir: {
        // I1: recreate a missing parent through the normal Mkdir path (root
        // identity) so locking, rollback, and lease invalidations all apply;
        // a concurrent recreate just turns this into kExists.
        fs::Identity root;
        root.uid = 0;
        root.gid = 0;
        const net::RpcResponse r = HandleCtx(
            proto::kDmsMkdir,
            fs::Pack(p.dir_path, std::uint32_t{0755}, root,
                     static_cast<std::uint64_t>(common::WallClockNs())),
            net::HandlerContext{});
        if (r.ok()) {
          result.reclaimed += 1;
          gc_i1_repaired_->Add();
        }
        break;
      }
      case GcPending::kAddName:
        if (GcFixDirent(p.dir_path, p.name, true)) {
          result.reclaimed += 1;
          gc_i4_repaired_->Add();
        }
        break;
      case GcPending::kDropName:
        if (GcFixDirent(p.dir_path, p.name, false)) {
          result.reclaimed += 1;
          gc_i2_repaired_->Add();
        }
        break;
      case GcPending::kDropList: {
        // I3: confirmed dead in two consecutive harvests.  Uuids are minted
        // monotonically and never reissued, so a dead uuid cannot return.
        std::shared_lock ns(ns_mu_);
        (void)dirents_->Delete(DirentKey(fs::Uuid(p.uuid_raw)));
        result.reclaimed += 1;
        gc_i3_repaired_->Add();
        break;
      }
    }
  }
  if (!gc_queue_.empty() || result.ops >= budget) return result;

  // Phase 2: harvest.  One pass over both stores under the shared namespace
  // lock: Rename (the only op that moves path keys) is excluded, so the
  // path<->uuid mapping cannot tear; Mkdir/Rmdir races are caught by the
  // phase-1 re-verification.
  std::map<std::string, std::uint64_t> dirs;
  std::map<std::uint64_t, std::vector<std::string>> lists;
  {
    std::shared_lock ns(ns_mu_);
    dirs_->ForEach([&dirs](std::string_view key, std::string_view value) {
      dirs[std::string(key)] = DirInodeLayout::Parse(value).uuid.raw();
      return true;
    });
    dirents_->ForEach([&lists](std::string_view key, std::string_view value) {
      lists[common::LoadAt<std::uint64_t>(key, 0)] = ParseDirentList(value);
      return true;
    });
  }
  result.ops += static_cast<std::uint32_t>(dirs.size() + lists.size() + 1);

  // I1: every ancestor of a live directory must exist.  Queue missing ones
  // shallow-first so a broken chain repairs bottom-up within one pass.
  // Paths covered by an incoming transfer marker are *expected* to have
  // missing ancestors mid-commit (children install before the subtree root);
  // recreating those would wrongly materialize a partially transferred `to`,
  // so they are the recovery protocol's to resolve, not I1's.
  const std::vector<PendingRename> pending = PendingRenames();
  const auto in_pending_transfer = [&pending](std::string_view path) {
    for (const PendingRename& p : pending) {
      if (p.kind == 1 && PathInSubtree(path, p.to)) return true;
    }
    return false;
  };
  std::set<std::string> missing;
  for (const auto& [path, uuid_raw] : dirs) {
    if (in_pending_transfer(path)) continue;
    std::string p(fs::ParentPath(path));
    while (p != "/" && dirs.find(p) == dirs.end() && missing.insert(p).second) {
      p = std::string(fs::ParentPath(p));
    }
  }
  {
    std::vector<std::string> ordered(missing.begin(), missing.end());
    std::sort(ordered.begin(), ordered.end(),
              [](const std::string& a, const std::string& b) {
                const auto da = std::count(a.begin(), a.end(), '/');
                const auto db = std::count(b.begin(), b.end(), '/');
                return da != db ? da < db : a < b;
              });
    for (std::string& path : ordered) {
      gc_queue_.push_back(GcPending{GcPending::kMkdir, std::move(path), {}, 0});
    }
  }

  // I2: names in a live directory's list whose d-inode is gone.
  for (const auto& [path, uuid_raw] : dirs) {
    auto it = lists.find(uuid_raw);
    if (it == lists.end()) continue;
    for (const std::string& name : it->second) {
      const std::string child = path == "/" ? "/" + name : path + "/" + name;
      if (dirs.find(child) == dirs.end()) {
        gc_queue_.push_back(GcPending{GcPending::kDropName, path, name, 0});
      }
    }
  }

  // I4: live directories missing from their (live) parent's list.  A parent
  // queued for I1 recreation gets its list fixed on the next pass.
  for (const auto& [path, uuid_raw] : dirs) {
    if (path == "/") continue;
    const std::string parent(fs::ParentPath(path));
    auto pit = dirs.find(parent);
    if (pit == dirs.end()) continue;
    const std::string name(fs::BaseName(path));
    auto lit = lists.find(pit->second);
    const bool listed = lit != lists.end() &&
                        std::find(lit->second.begin(), lit->second.end(),
                                  name) != lit->second.end();
    if (!listed) {
      gc_queue_.push_back(GcPending{GcPending::kAddName, parent, name, 0});
    }
  }

  // I3: dirent lists keyed by a uuid with no d-inode — two-cycle confirmed
  // before the (destructive) drop.
  {
    std::set<std::uint64_t> live;
    for (const auto& [path, uuid_raw] : dirs) live.insert(uuid_raw);
    std::set<std::uint64_t> candidates;
    for (const auto& [uuid_raw, names] : lists) {
      if (live.count(uuid_raw) != 0) continue;
      candidates.insert(uuid_raw);
      if (gc_i3_prev_.count(uuid_raw) != 0) {
        gc_queue_.push_back(GcPending{GcPending::kDropList, {}, {}, uuid_raw});
      }
    }
    gc_i3_prev_ = std::move(candidates);
  }
  return result;
}

net::RpcResponse DirectoryMetadataServer::Announce(std::string_view payload) {
  std::uint32_t node = 0;
  std::uint64_t epoch = 0;
  if (!fs::Unpack(payload, node, epoch)) return BadRequest();
  // Gossip the restart to every notify session so clients close the node's
  // circuit breaker immediately.  Without a notifier this is a harmless
  // no-op: breakers fall back to the half-open probe interval.
  if (notifier_ != nullptr) {
    net::ServerUpEvent event;
    event.node = node;
    event.epoch = epoch;
    event.wall_ts_ns = static_cast<std::uint64_t>(common::WallClockNs());
    (void)notifier_->BroadcastNotify(net::wire::kNotifyServerUp,
                                     net::EncodeServerUp(event));
  }
  return Ok();
}

}  // namespace loco::core
