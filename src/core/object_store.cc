#include "core/object_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <map>

#include "common/codec.h"
#include "core/proto.h"
#include "fs/wire.h"
#include "kvstore/striped_kv.h"
#include "net/wire.h"

namespace loco::core {

namespace {
net::RpcResponse Fail(ErrCode code) { return net::RpcResponse{code, {}}; }
net::RpcResponse BadRequest() { return Fail(ErrCode::kCorruption); }

// Pinned scan snapshots kept per server; pinning beyond this evicts the
// oldest (a crashed fsck must not pin memory forever).
constexpr std::size_t kMaxSnapshots = 4;
}  // namespace

namespace {
const kv::KvOptions& EnsureStoreDir(const kv::KvOptions& kv) {
  if (!kv.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(kv.dir, ec);
  }
  return kv;
}
}  // namespace

ObjectStoreServer::ObjectStoreServer(const Options& options)
    : options_(options),
      blocks_(std::move(kv::MakeStripedKv(kv::KvBackend::kHash,
                                          EnsureStoreDir(options.kv),
                                          options.kv_stripes))
                  .value()) {}

std::string ObjectStoreServer::BlockKey(std::uint64_t uuid, std::uint64_t block) {
  std::string key(16, '\0');
  common::StoreAt<std::uint64_t>(&key, 0, uuid);
  common::StoreAt<std::uint64_t>(&key, 8, block);
  return key;
}

net::RpcResponse ObjectStoreServer::Handle(std::uint16_t opcode,
                                           std::string_view payload) {
  const common::ServerOpCounters::PerOp& m = op_metrics_.For(opcode);
  m.calls->Add();
  net::RpcResponse resp = Dispatch(opcode, payload);
  if (resp.code != ErrCode::kOk) m.errors->Add();
  return resp;
}

net::RpcResponse ObjectStoreServer::Dispatch(std::uint16_t opcode,
                                             std::string_view payload) {
  if (opcode == proto::kCtlSnapshotBegin) {
    std::unique_lock scan(scan_mu_);
    return SnapshotBegin();
  }
  std::shared_lock scan(scan_mu_);
  switch (opcode) {
    case proto::kObjWrite: return Write(payload);
    case proto::kObjBatchPut: return BatchPut(payload);
    case proto::kObjRead: return Read(payload);
    case proto::kObjTruncate: return Truncate(payload);
    case proto::kObjScanObjects: return ScanObjects(payload);
    case proto::kObjPurge: return Purge(payload);
    case proto::kCtlSnapshotEnd: return SnapshotEnd(payload);
    case proto::kCtlGcStatus: return GcStatus();
    default: return Fail(ErrCode::kUnsupported);
  }
}

net::RpcResponse ObjectStoreServer::Write(std::string_view payload) {
  fs::Uuid uuid;
  std::uint64_t offset = 0;
  std::string data;
  if (!fs::Unpack(payload, uuid, offset, data)) return BadRequest();
  const std::uint64_t bs = options_.block_bytes;

  if (!options_.retain_data) {
    const std::uint64_t first = offset / bs;
    const std::uint64_t last = data.empty() ? first : (offset + data.size() - 1) / bs;
    net::RpcResponse resp;
    resp.extra_service_ns = options_.device.Cost(last - first + 1, data.size());
    return resp;
  }

  // Serialize against concurrent writers/truncators of the same object; the
  // per-block Put alone would make the partial-block read-modify-write lose
  // updates under overlap.
  const common::LockTable::Guard guard = object_locks_.Lock(uuid.raw());
  std::uint64_t pos = offset;
  std::size_t consumed = 0;
  std::uint64_t touched_blocks = 0;
  while (consumed < data.size()) {
    const std::uint64_t block = pos / bs;
    const std::size_t in_block = static_cast<std::size_t>(pos % bs);
    const std::size_t n =
        std::min<std::size_t>(data.size() - consumed, static_cast<std::size_t>(bs) - in_block);
    const std::string key = BlockKey(uuid.raw(), block);
    if (in_block == 0 && n == bs) {
      (void)blocks_->Put(key, data.substr(consumed, n));  // full-block write
    } else {
      // Partial block: read-modify-write.
      std::string blk;
      (void)blocks_->Get(key, &blk);
      if (blk.size() < in_block + n) blk.resize(in_block + n, '\0');
      blk.replace(in_block, n, data, consumed, n);
      (void)blocks_->Put(key, blk);
    }
    pos += n;
    consumed += n;
    ++touched_blocks;
  }

  net::RpcResponse resp;
  resp.extra_service_ns = options_.device.Cost(std::max<std::uint64_t>(touched_blocks, 1),
                                               data.size());
  return resp;
}

net::RpcResponse ObjectStoreServer::BatchPut(std::string_view payload) {
  std::vector<std::string_view> subops;
  if (!net::wire::DecodeBatchRequest(payload, &subops)) return BadRequest();
  std::vector<net::wire::BatchItem> items;
  items.reserve(subops.size());
  std::size_t failed = 0;
  common::Nanos total_device_ns = 0;
  for (const std::string_view sub : subops) {
    net::RpcResponse r = Write(sub);
    if (r.code != ErrCode::kOk) ++failed;
    total_device_ns += r.extra_service_ns;
    items.push_back(net::wire::BatchItem{r.code, std::move(r.payload)});
  }
  auto& reg = common::MetricsRegistry::Default();
  reg.GetCounter("rpc.batch.calls").Add();
  reg.GetCounter("rpc.batch.subops").Add(subops.size());
  if (failed > 0) reg.GetCounter("rpc.batch.partial_failures").Add(failed);
  net::RpcResponse resp;
  resp.payload = net::wire::EncodeBatchResponse(items);
  resp.extra_service_ns = total_device_ns;
  return resp;
}

net::RpcResponse ObjectStoreServer::Read(std::string_view payload) {
  fs::Uuid uuid;
  std::uint64_t offset = 0, length = 0, size_hint = 0;
  if (!fs::Unpack(payload, uuid, offset, length, size_hint)) return BadRequest();
  const std::uint64_t bs = options_.block_bytes;

  std::string out(static_cast<std::size_t>(length), '\0');
  if (!options_.retain_data) {
    const std::uint64_t first = offset / bs;
    const std::uint64_t last = length == 0 ? first : (offset + length - 1) / bs;
    net::RpcResponse resp;
    resp.payload = fs::Pack(out);
    resp.extra_service_ns = options_.device.Cost(last - first + 1, out.size());
    return resp;
  }
  std::uint64_t pos = offset;
  std::size_t produced = 0;
  std::uint64_t touched_blocks = 0;
  while (produced < out.size()) {
    const std::uint64_t block = pos / bs;
    const std::size_t in_block = static_cast<std::size_t>(pos % bs);
    const std::size_t n =
        std::min<std::size_t>(out.size() - produced, static_cast<std::size_t>(bs) - in_block);
    std::string blk;
    if (blocks_->Get(BlockKey(uuid.raw(), block), &blk).ok() &&
        blk.size() > in_block) {
      const std::size_t have = std::min(n, blk.size() - in_block);
      out.replace(produced, have, blk, in_block, have);
    }
    pos += n;
    produced += n;
    ++touched_blocks;
  }

  net::RpcResponse resp;
  resp.payload = fs::Pack(out);
  resp.extra_service_ns = options_.device.Cost(std::max<std::uint64_t>(touched_blocks, 1),
                                               out.size());
  return resp;
}

net::RpcResponse ObjectStoreServer::Truncate(std::string_view payload) {
  fs::Uuid uuid;
  std::uint64_t size = 0;
  if (!fs::Unpack(payload, uuid, size)) return BadRequest();
  const std::uint64_t bs = options_.block_bytes;
  const std::uint64_t keep_blocks = (size + bs - 1) / bs;

  const common::LockTable::Guard guard = object_locks_.Lock(uuid.raw());
  // Trim the partial tail block, then drop everything beyond it.  The block
  // table is scanned (object stores track per-object block sets; a hash scan
  // stands in for that index).
  std::vector<std::string> doomed;
  blocks_->ForEach([&](std::string_view key, std::string_view) {
    if (key.size() == 16 && common::LoadAt<std::uint64_t>(key, 0) == uuid.raw()) {
      if (common::LoadAt<std::uint64_t>(key, 8) >= keep_blocks) {
        doomed.emplace_back(key);
      }
    }
    return true;
  });
  for (const std::string& key : doomed) (void)blocks_->Delete(key);

  if (size % bs != 0 && keep_blocks > 0) {
    const std::string key = BlockKey(uuid.raw(), keep_blocks - 1);
    std::string blk;
    if (blocks_->Get(key, &blk).ok() &&
        blk.size() > static_cast<std::size_t>(size % bs)) {
      blk.resize(static_cast<std::size_t>(size % bs));
      (void)blocks_->Put(key, blk);
    }
  }

  net::RpcResponse resp;
  resp.extra_service_ns =
      options_.device.Cost(doomed.size() + 1, 0);
  return resp;
}

std::string ObjectStoreServer::ScanObjectsPayload() {
  // fsck inventory: every object uuid present plus its block count.
  std::map<std::uint64_t, std::uint64_t> counts;
  blocks_->ForEach([&](std::string_view key, std::string_view) {
    if (key.size() == 16) ++counts[common::LoadAt<std::uint64_t>(key, 0)];
    return true;
  });
  std::vector<std::string> entries;
  entries.reserve(counts.size());
  for (const auto& [uuid, blocks] : counts) {
    entries.push_back(fs::Pack(uuid, blocks));
  }
  return fs::Pack(entries);
}

net::RpcResponse ObjectStoreServer::ScanObjects(std::string_view payload) {
  net::RpcResponse resp;
  if (!payload.empty()) {
    std::uint64_t epoch = 0;
    if (!fs::Unpack(payload, epoch)) return BadRequest();
    std::lock_guard<std::mutex> lock(snap_mu_);
    auto it = snapshots_.find(epoch);
    if (it == snapshots_.end()) return Fail(ErrCode::kNotFound);
    resp.payload = it->second;
    return resp;
  }
  // Live scan: racy against concurrent writes, like any online scan —
  // loco_fsck --live pins an epoch instead.
  resp.payload = ScanObjectsPayload();
  return resp;
}

net::RpcResponse ObjectStoreServer::SnapshotBegin() {
  std::string payload = ScanObjectsPayload();
  std::lock_guard<std::mutex> lock(snap_mu_);
  const std::uint64_t epoch = next_snapshot_epoch_++;
  snapshots_[epoch] = std::move(payload);
  while (snapshots_.size() > kMaxSnapshots) snapshots_.erase(snapshots_.begin());
  net::RpcResponse resp;
  resp.payload = fs::Pack(epoch);
  return resp;
}

net::RpcResponse ObjectStoreServer::SnapshotEnd(std::string_view payload) {
  std::uint64_t epoch = 0;
  if (!fs::Unpack(payload, epoch)) return BadRequest();
  std::lock_guard<std::mutex> lock(snap_mu_);
  snapshots_.erase(epoch);  // unknown epochs were evicted: fine
  return net::RpcResponse{};
}

net::RpcResponse ObjectStoreServer::GcStatus() {
  if (gc_ == nullptr) return Fail(ErrCode::kUnavailable);
  net::RpcResponse resp;
  resp.payload = gc_->StatusPayload();
  return resp;
}

std::size_t ObjectStoreServer::PurgeBlocks(std::uint64_t uuid) {
  const common::LockTable::Guard guard = object_locks_.Lock(uuid);
  std::vector<std::string> doomed;
  blocks_->ForEach([&](std::string_view key, std::string_view) {
    if (key.size() == 16 && common::LoadAt<std::uint64_t>(key, 0) == uuid) {
      doomed.emplace_back(key);
    }
    return true;
  });
  for (const std::string& key : doomed) (void)blocks_->Delete(key);
  return doomed.size();
}

net::RpcResponse ObjectStoreServer::Purge(std::string_view payload) {
  fs::Uuid uuid;
  if (!fs::Unpack(payload, uuid)) return BadRequest();
  const std::size_t deleted = PurgeBlocks(uuid.raw());
  net::RpcResponse resp;
  resp.payload = fs::Pack(static_cast<std::uint64_t>(deleted));
  resp.extra_service_ns = options_.device.Cost(deleted + 1, 0);
  return resp;
}

// --------------------------------------------------------- housekeeping --

GcStepResult ObjectStoreServer::GcStep(std::uint32_t budget,
                                       const UuidProbe& file_alive) {
  GcStepResult result;

  // Phase 1: apply queued purges.  A purge candidate was confirmed dead in
  // two consecutive harvests; uuids are never reissued, so the object cannot
  // have come back to life — only grown blocks from a straggling writer,
  // which the purge drops with the rest (that writer's file is gone).
  while (!gc_queue_.empty() && result.ops < budget) {
    const std::uint64_t uuid = gc_queue_.front();
    gc_queue_.pop_front();
    result.ops += 1;
    std::shared_lock scan(scan_mu_);
    if (PurgeBlocks(uuid) > 0) {
      result.reclaimed += 1;
      gc_i9_purged_->Add();
    }
  }
  if (!gc_queue_.empty() || result.ops >= budget) return result;

  // Phase 2: harvest the object inventory and probe the FMSes.
  std::set<std::uint64_t> objects;
  {
    std::shared_lock scan(scan_mu_);
    blocks_->ForEach([&objects](std::string_view key, std::string_view) {
      if (key.size() == 16) objects.insert(common::LoadAt<std::uint64_t>(key, 0));
      return true;
    });
  }
  result.ops += static_cast<std::uint32_t>(objects.size() + 1);
  if (!file_alive || objects.empty()) return result;

  std::vector<fs::Uuid> uuids;
  uuids.reserve(objects.size());
  for (const std::uint64_t raw : objects) uuids.push_back(fs::Uuid(raw));
  result.ops += static_cast<std::uint32_t>(uuids.size());
  auto alive = file_alive(uuids);
  if (!alive.ok() || alive->size() != uuids.size()) return result;

  std::set<std::uint64_t> candidates;
  for (std::size_t i = 0; i < uuids.size(); ++i) {
    if ((*alive)[i] != 0) continue;
    const std::uint64_t raw = uuids[i].raw();
    candidates.insert(raw);
    if (gc_i9_prev_.count(raw) != 0) gc_queue_.push_back(raw);
  }
  gc_i9_prev_ = std::move(candidates);
  return result;
}

}  // namespace loco::core
