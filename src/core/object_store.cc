#include "core/object_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <map>

#include "common/codec.h"
#include "core/proto.h"
#include "fs/wire.h"
#include "kvstore/striped_kv.h"

namespace loco::core {

namespace {
net::RpcResponse Fail(ErrCode code) { return net::RpcResponse{code, {}}; }
net::RpcResponse BadRequest() { return Fail(ErrCode::kCorruption); }
}  // namespace

namespace {
const kv::KvOptions& EnsureStoreDir(const kv::KvOptions& kv) {
  if (!kv.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(kv.dir, ec);
  }
  return kv;
}
}  // namespace

ObjectStoreServer::ObjectStoreServer(const Options& options)
    : options_(options),
      blocks_(std::move(kv::MakeStripedKv(kv::KvBackend::kHash,
                                          EnsureStoreDir(options.kv),
                                          options.kv_stripes))
                  .value()) {}

std::string ObjectStoreServer::BlockKey(std::uint64_t uuid, std::uint64_t block) {
  std::string key(16, '\0');
  common::StoreAt<std::uint64_t>(&key, 0, uuid);
  common::StoreAt<std::uint64_t>(&key, 8, block);
  return key;
}

net::RpcResponse ObjectStoreServer::Handle(std::uint16_t opcode,
                                           std::string_view payload) {
  const common::ServerOpCounters::PerOp& m = op_metrics_.For(opcode);
  m.calls->Add();
  net::RpcResponse resp = Dispatch(opcode, payload);
  if (resp.code != ErrCode::kOk) m.errors->Add();
  return resp;
}

net::RpcResponse ObjectStoreServer::Dispatch(std::uint16_t opcode,
                                             std::string_view payload) {
  switch (opcode) {
    case proto::kObjWrite: return Write(payload);
    case proto::kObjRead: return Read(payload);
    case proto::kObjTruncate: return Truncate(payload);
    case proto::kObjScanObjects: return ScanObjects();
    case proto::kObjPurge: return Purge(payload);
    default: return Fail(ErrCode::kUnsupported);
  }
}

net::RpcResponse ObjectStoreServer::Write(std::string_view payload) {
  fs::Uuid uuid;
  std::uint64_t offset = 0;
  std::string data;
  if (!fs::Unpack(payload, uuid, offset, data)) return BadRequest();
  const std::uint64_t bs = options_.block_bytes;

  if (!options_.retain_data) {
    const std::uint64_t first = offset / bs;
    const std::uint64_t last = data.empty() ? first : (offset + data.size() - 1) / bs;
    net::RpcResponse resp;
    resp.extra_service_ns = options_.device.Cost(last - first + 1, data.size());
    return resp;
  }

  // Serialize against concurrent writers/truncators of the same object; the
  // per-block Put alone would make the partial-block read-modify-write lose
  // updates under overlap.
  const common::LockTable::Guard guard = object_locks_.Lock(uuid.raw());
  std::uint64_t pos = offset;
  std::size_t consumed = 0;
  std::uint64_t touched_blocks = 0;
  while (consumed < data.size()) {
    const std::uint64_t block = pos / bs;
    const std::size_t in_block = static_cast<std::size_t>(pos % bs);
    const std::size_t n =
        std::min<std::size_t>(data.size() - consumed, static_cast<std::size_t>(bs) - in_block);
    const std::string key = BlockKey(uuid.raw(), block);
    if (in_block == 0 && n == bs) {
      (void)blocks_->Put(key, data.substr(consumed, n));  // full-block write
    } else {
      // Partial block: read-modify-write.
      std::string blk;
      (void)blocks_->Get(key, &blk);
      if (blk.size() < in_block + n) blk.resize(in_block + n, '\0');
      blk.replace(in_block, n, data, consumed, n);
      (void)blocks_->Put(key, blk);
    }
    pos += n;
    consumed += n;
    ++touched_blocks;
  }

  net::RpcResponse resp;
  resp.extra_service_ns = options_.device.Cost(std::max<std::uint64_t>(touched_blocks, 1),
                                               data.size());
  return resp;
}

net::RpcResponse ObjectStoreServer::Read(std::string_view payload) {
  fs::Uuid uuid;
  std::uint64_t offset = 0, length = 0, size_hint = 0;
  if (!fs::Unpack(payload, uuid, offset, length, size_hint)) return BadRequest();
  const std::uint64_t bs = options_.block_bytes;

  std::string out(static_cast<std::size_t>(length), '\0');
  if (!options_.retain_data) {
    const std::uint64_t first = offset / bs;
    const std::uint64_t last = length == 0 ? first : (offset + length - 1) / bs;
    net::RpcResponse resp;
    resp.payload = fs::Pack(out);
    resp.extra_service_ns = options_.device.Cost(last - first + 1, out.size());
    return resp;
  }
  std::uint64_t pos = offset;
  std::size_t produced = 0;
  std::uint64_t touched_blocks = 0;
  while (produced < out.size()) {
    const std::uint64_t block = pos / bs;
    const std::size_t in_block = static_cast<std::size_t>(pos % bs);
    const std::size_t n =
        std::min<std::size_t>(out.size() - produced, static_cast<std::size_t>(bs) - in_block);
    std::string blk;
    if (blocks_->Get(BlockKey(uuid.raw(), block), &blk).ok() &&
        blk.size() > in_block) {
      const std::size_t have = std::min(n, blk.size() - in_block);
      out.replace(produced, have, blk, in_block, have);
    }
    pos += n;
    produced += n;
    ++touched_blocks;
  }

  net::RpcResponse resp;
  resp.payload = fs::Pack(out);
  resp.extra_service_ns = options_.device.Cost(std::max<std::uint64_t>(touched_blocks, 1),
                                               out.size());
  return resp;
}

net::RpcResponse ObjectStoreServer::Truncate(std::string_view payload) {
  fs::Uuid uuid;
  std::uint64_t size = 0;
  if (!fs::Unpack(payload, uuid, size)) return BadRequest();
  const std::uint64_t bs = options_.block_bytes;
  const std::uint64_t keep_blocks = (size + bs - 1) / bs;

  const common::LockTable::Guard guard = object_locks_.Lock(uuid.raw());
  // Trim the partial tail block, then drop everything beyond it.  The block
  // table is scanned (object stores track per-object block sets; a hash scan
  // stands in for that index).
  std::vector<std::string> doomed;
  blocks_->ForEach([&](std::string_view key, std::string_view) {
    if (key.size() == 16 && common::LoadAt<std::uint64_t>(key, 0) == uuid.raw()) {
      if (common::LoadAt<std::uint64_t>(key, 8) >= keep_blocks) {
        doomed.emplace_back(key);
      }
    }
    return true;
  });
  for (const std::string& key : doomed) (void)blocks_->Delete(key);

  if (size % bs != 0 && keep_blocks > 0) {
    const std::string key = BlockKey(uuid.raw(), keep_blocks - 1);
    std::string blk;
    if (blocks_->Get(key, &blk).ok() &&
        blk.size() > static_cast<std::size_t>(size % bs)) {
      blk.resize(static_cast<std::size_t>(size % bs));
      (void)blocks_->Put(key, blk);
    }
  }

  net::RpcResponse resp;
  resp.extra_service_ns =
      options_.device.Cost(doomed.size() + 1, 0);
  return resp;
}

net::RpcResponse ObjectStoreServer::ScanObjects() {
  // fsck inventory: every object uuid present plus its block count.  The
  // snapshot is racy against concurrent writes, like any online scan; fsck
  // runs against a quiesced cluster.
  std::map<std::uint64_t, std::uint64_t> counts;
  blocks_->ForEach([&](std::string_view key, std::string_view) {
    if (key.size() == 16) ++counts[common::LoadAt<std::uint64_t>(key, 0)];
    return true;
  });
  std::vector<std::string> entries;
  entries.reserve(counts.size());
  for (const auto& [uuid, blocks] : counts) {
    entries.push_back(fs::Pack(uuid, blocks));
  }
  net::RpcResponse resp;
  resp.payload = fs::Pack(entries);
  return resp;
}

net::RpcResponse ObjectStoreServer::Purge(std::string_view payload) {
  fs::Uuid uuid;
  if (!fs::Unpack(payload, uuid)) return BadRequest();
  const common::LockTable::Guard guard = object_locks_.Lock(uuid.raw());
  std::vector<std::string> doomed;
  blocks_->ForEach([&](std::string_view key, std::string_view) {
    if (key.size() == 16 && common::LoadAt<std::uint64_t>(key, 0) == uuid.raw()) {
      doomed.emplace_back(key);
    }
    return true;
  });
  for (const std::string& key : doomed) (void)blocks_->Delete(key);
  net::RpcResponse resp;
  resp.payload = fs::Pack(static_cast<std::uint64_t>(doomed.size()));
  resp.extra_service_ns = options_.device.Cost(doomed.size() + 1, 0);
  return resp;
}

}  // namespace loco::core
