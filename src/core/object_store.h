// Object store: file data as fixed-size blocks addressed by (uuid, block)
// (§3.3.2 — data indexing via arithmetic on uuid + block number, no index
// metadata in the inode).
//
// Device I/O is modeled: handlers report the storage time of each request
// through RpcResponse::extra_service_ns so the simulator charges it on the
// virtual clock (the host has no spinning disks to measure).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>

#include "common/clock.h"
#include "common/lock_table.h"
#include "common/metrics.h"
#include "core/gc.h"
#include "kvstore/kv.h"
#include "net/rpc.h"

namespace loco::core {

// Storage device profile used to charge virtual time for block I/O.
struct DeviceProfile {
  common::Nanos per_io_ns = 60'000;  // command/seek overhead per request
  double bytes_per_sec = 450e6;      // sequential throughput

  common::Nanos Cost(std::uint64_t io_ops, std::uint64_t io_bytes) const noexcept {
    const double transfer_s =
        bytes_per_sec > 0 ? static_cast<double>(io_bytes) / bytes_per_sec : 0;
    return static_cast<common::Nanos>(io_ops) * per_io_ns +
           static_cast<common::Nanos>(transfer_s * 1e9);
  }
};

// Thread-safe: the block table is a striped KV and multi-block mutations
// (partial-block read-modify-write, truncate) take a per-object lock, so the
// OSD runs bare behind a multi-worker TcpServer.  Reads are lock-free — a
// read racing a write may see a mix of old and new blocks, which is the same
// guarantee a POSIX client gets for concurrent unlocked I/O.
class ObjectStoreServer final : public net::RpcHandler {
 public:
  struct Options {
    std::size_t block_bytes = 64 * 1024;
    DeviceProfile device;
    // When false, block payloads are accounted (device + network time) but
    // not stored, and reads return zero-filled buffers.  Benchmarks that
    // push many GiB through the store use this to keep host memory flat;
    // correctness tests keep it true.
    bool retain_data = true;
    // Block-table persistence (kv.dir = on-disk striped store recovered on
    // restart; empty = memory only, as before).
    kv::KvOptions kv;
    std::size_t kv_stripes = 16;
  };

  ObjectStoreServer() : ObjectStoreServer(Options{}) {}
  explicit ObjectStoreServer(const Options& options);

  net::RpcResponse Handle(std::uint16_t opcode, std::string_view payload) override;

  std::size_t BlockCount() const { return blocks_->Size(); }
  std::size_t block_bytes() const noexcept { return options_.block_bytes; }

  // Wire the hosting daemon's GC manager so kCtlGcStatus can answer.  The
  // manager must outlive the server.
  void SetGcManager(GcManager* gc) noexcept { gc_ = gc; }

  // One incremental GC step (docs/HOUSEKEEPING.md): apply queued purges,
  // else harvest the block table and detect invariant I9 (objects whose
  // uuid no file inode references).  `file_alive` probes every FMS
  // (kFmsCheckUuids, '\1' when some inode carries the uuid); purges are
  // destructive, so a candidate must be seen dead in two consecutive
  // harvests, and a probe error skips the detector for the cycle.
  GcStepResult GcStep(std::uint32_t budget, const UuidProbe& file_alive);

 private:
  net::RpcResponse Dispatch(std::uint16_t opcode, std::string_view payload);

  net::RpcResponse Write(std::string_view payload);
  // Bulk small-object write (net/wire.h batch framing): each sub-op runs
  // the single-op Write (same per-object lock, same RMW rules) and fails
  // alone; the frame's extra_service_ns sums the sub-op device costs so the
  // simulator charges the batch exactly what N writes would have cost in
  // storage time (the saved RPC overhead is the point).
  net::RpcResponse BatchPut(std::string_view payload);
  net::RpcResponse Read(std::string_view payload);
  net::RpcResponse Truncate(std::string_view payload);
  net::RpcResponse ScanObjects(std::string_view payload);
  net::RpcResponse Purge(std::string_view payload);
  net::RpcResponse GcStatus();
  // Caller holds scan_mu_ exclusively (Dispatch routes it that way).
  net::RpcResponse SnapshotBegin();
  net::RpcResponse SnapshotEnd(std::string_view payload);

  std::string ScanObjectsPayload();
  // Drop every block of `uuid` under the object lock; returns blocks freed.
  std::size_t PurgeBlocks(std::uint64_t uuid);

  static std::string BlockKey(std::uint64_t uuid, std::uint64_t block);

  Options options_;
  std::unique_ptr<kv::Kv> blocks_;
  common::LockTable object_locks_;  // keyed by uuid: serializes RMW/truncate

  // Snapshot plane (kCtlSnapshotBegin/End): pinning takes scan_mu_
  // exclusively; every other handler and the GC harvest hold it shared.
  mutable std::shared_mutex scan_mu_;
  std::mutex snap_mu_;  // guards the epoch counter and the snapshot map
  std::uint64_t next_snapshot_epoch_ = 1;
  std::map<std::uint64_t, std::string> snapshots_;  // epoch -> scan payload

  // Housekeeping (single GcManager thread): purge queue plus the I9
  // candidates of the previous harvest (two-cycle confirmation).
  std::deque<std::uint64_t> gc_queue_;
  std::set<std::uint64_t> gc_i9_prev_;
  GcManager* gc_ = nullptr;
  common::Counter* gc_i9_purged_ = &common::MetricsRegistry::Default()
      .GetCounter("gc.obj.i9_objects_purged");
  // Object stores are fungible replicas: all instances share one
  // "server.obj" metric family (per-instance split adds nothing here).
  common::ServerOpCounters op_metrics_{&common::MetricsRegistry::Default(),
                                       "server.obj"};
};

}  // namespace loco::core
