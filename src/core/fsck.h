// loco_fsck — offline namespace consistency checker and repairer.
//
// LocoFS accepts transient crash states rather than paying for distributed
// transactions (§3.4): an interrupted create may leave a dirent entry with
// no inode (file-less dirent), an interrupted remove an inode with no dirent
// (orphan), an interrupted f-rename the same uuid at two FMS keys, and a
// kill -9'd client data objects no inode references.  This runner scans the
// DMS, every FMS, and every object store through their fsck/admin RPCs
// (core/proto.h), cross-checks the invariants below, and optionally repairs
// violations using the same idempotent admin mutations.
//
// Invariants checked (and the repair applied with --repair):
//   I1  every d-inode path except "/" has a parent d-inode
//         -> recreate the missing parent (root-owned, mode 0755)
//   I2  every name in a DMS dirent list names a live child d-inode
//         -> remove the dangling name
//   I3  every DMS dirent list is keyed by a live directory uuid
//         -> drop the whole list
//   I4  every d-inode except "/" appears in its parent's dirent list
//         -> re-add the missing name
//   I5  every file inode's parent directory uuid is live
//         -> purge the file inode and its data objects
//   I6  every file inode appears in its FMS dirent list
//         -> re-add the missing name
//   I7  every name in an FMS dirent list has a file inode on that server
//         -> remove the dangling name (purge it when the directory is dead)
//   I8  a file uuid exists at exactly one (server, dir, name)
//         -> keep one deterministic winner, purge the other keys (stale
//            f-rename intermediates; data objects are NOT purged — the
//            surviving inode references them)
//   I9  every object-store uuid is referenced by some file inode
//         -> purge the leaked object's blocks
//   I10 no DMS shard holds a pending cross-shard rename intent or marker
//         -> resolve the transfer by its commit point (docs/SHARDING.md):
//            destination root present = roll forward (Finish the source,
//            drop the marker), absent = roll back (fence + purge the
//            destination first, then abort the source).  I10 findings are
//            resolved before any other invariant is trusted — a transfer in
//            flight makes the subtree look damaged to I1-I4.
//
// Repairs can cascade (purging a duplicate may orphan a dirent entry), so a
// repairing run iterates scan→repair until a scan is clean, up to a bounded
// number of passes.  The cluster must be quiesced: scans are per-server
// snapshots with no cross-server atomicity, exactly like any offline fsck.
//
// Live mode (Options::live) drops the quiesce requirement.  Each pass pins a
// point-in-time snapshot on every server (kCtlSnapshotBegin/End), scans the
// pinned epochs, and releases them.  Per-server snapshots are individually
// consistent but not mutually so: an op in flight between two Begin calls
// (a create that reached the FMS but whose parent scan predates it) shows up
// as a spurious one-pass finding.  Live mode therefore acts only on findings
// seen in two consecutive passes — in-flight ops complete between passes,
// while real damage persists — which is the same two-cycle confirmation the
// background GC uses (docs/HOUSEKEEPING.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/shard.h"
#include "fs/types.h"
#include "net/rpc.h"

namespace loco::core {

enum class FsckFindingType : std::uint8_t {
  kMissingParent,     // I1: d-inode whose parent path has no d-inode
  kDanglingDmsDirent, // I2: DMS dirent name without a child d-inode
  kDeadDirentList,    // I3: DMS dirent list keyed by a dead uuid
  kOrphanDir,         // I4: d-inode missing from its parent's dirent list
  kOrphanFile,        // I5: file inode under a dead directory uuid
  kMissingFmsDirent,  // I6: file inode missing from its FMS dirent list
  kDanglingFmsDirent, // I7: FMS dirent name without a file inode
  kDuplicateUuid,     // I8: same file uuid at more than one FMS key
  kLeakedObject,      // I9: object data no file inode references
  kRenameIntent,      // I10: pending cross-shard rename transfer
};

const char* FsckFindingName(FsckFindingType type) noexcept;

struct FsckFinding {
  FsckFindingType type;
  // Repair coordinates: which server (index into Config::fms /
  // Config::object_stores; for DMS dirent findings, the shard the scanned
  // list lives on) and which key.
  std::size_t server = 0;
  std::string path;       // DMS findings: directory path (I10: `from`)
  std::string name;       // dirent / file name (I10: `to`)
  fs::Uuid dir_uuid{0};   // FMS findings: parent directory uuid
  fs::Uuid file_uuid{0};  // file / object uuid
  // I10 (kRenameIntent) coordinates: the transfer's txid, the shards on each
  // side, which durable records were seen, and the resolution direction the
  // commit-point rule picked.
  std::uint64_t txid = 0;
  std::size_t src_shard = 0;
  std::size_t dst_shard = 0;
  bool has_intent = false;   // outgoing intent seen on src_shard
  bool has_marker = false;   // incoming marker seen on dst_shard
  bool roll_forward = false;
  // Live mode: client ids holding an open session on this (dir, name) — who
  // pins the file a repair would touch.  Empty for offline runs and for
  // findings no session covers.
  std::vector<std::uint64_t> holders;

  std::string Describe() const;
};

struct FsckReport {
  std::vector<FsckFinding> findings;  // from the final scan
  std::uint64_t repairs = 0;          // repair RPCs applied (all passes)
  std::uint32_t passes = 0;           // scan passes performed

  bool clean() const noexcept { return findings.empty(); }
};

class FsckRunner {
 public:
  struct Config {
    // DMS shard set in shard order (must match the clients' ordering —
    // placement is positional; docs/SHARDING.md).
    std::vector<net::NodeId> dms = {0};
    std::vector<net::NodeId> fms;
    std::vector<net::NodeId> object_stores;
  };
  struct Options {
    bool repair = false;     // false = report only (dry run)
    bool live = false;       // scan pinned snapshots; two-pass confirmation
    std::uint32_t max_passes = 5;
  };

  FsckRunner(net::Channel& channel, Config config);

  // Scan (and with options.repair, iteratively repair) the cluster.  Errors
  // only on RPC/scan failure — findings are data, not errors.
  Result<FsckReport> Run(const Options& options);

 private:
  struct Snapshot;
  // Pinned snapshot epochs, one per server (parallel to Config's vectors).
  struct Epochs {
    std::vector<std::uint64_t> dms;
    std::vector<std::uint64_t> fms;
    std::vector<std::uint64_t> object_stores;
  };

  // Scan the live stores (epochs == nullptr) or the pinned epochs.
  Result<Snapshot> Scan(const Epochs* epochs);
  Result<Epochs> PinSnapshots();
  void ReleaseSnapshots(const Epochs& epochs);
  Result<FsckReport> RunLive(const Options& options);
  // Live mode: attach session-holder client ids (kCtlSessionList) to every
  // finding whose (server, dir uuid, name) an open session covers.
  void AnnotateSessionHolders(std::vector<FsckFinding>* findings);
  std::vector<FsckFinding> Analyze(const Snapshot& snap) const;
  // Applies every finding's repair; returns the number of repair RPCs.
  Result<std::uint64_t> Repair(const std::vector<FsckFinding>& findings);

  // Blocking call helper over the async channel.
  Result<std::string> Call(net::NodeId node, std::uint16_t opcode,
                           std::string payload);

  net::NodeId ObjFor(fs::Uuid uuid) const {
    return config_.object_stores[uuid.raw() % config_.object_stores.size()];
  }
  // Owning shard for a directory path (same positional placement as
  // LocoClient::DmsFor).
  std::size_t DmsShardOf(std::string_view path) const {
    return shards_.ShardOf(path);
  }

  net::Channel& channel_;
  Config config_;
  ShardMap shards_;
};

}  // namespace loco::core
