#include "core/ring.h"

#include <cstring>

#include "common/hash.h"

namespace loco::core {

HashRing::HashRing(std::vector<net::NodeId> servers, int vnodes_per_server)
    : servers_(std::move(servers)) {
  points_.reserve(servers_.size() * static_cast<std::size_t>(vnodes_per_server));
  for (const net::NodeId server : servers_) {
    for (int v = 0; v < vnodes_per_server; ++v) {
      char token[8];
      const std::uint32_t s = server;
      const std::uint32_t vn = static_cast<std::uint32_t>(v);
      std::memcpy(token, &s, 4);
      std::memcpy(token + 4, &vn, 4);
      points_.push_back(Point{
          common::WyMix(std::string_view(token, sizeof(token)), 0x51a9),
          server});
    }
  }
  std::sort(points_.begin(), points_.end());
}

net::NodeId HashRing::Locate(std::string_view key) const noexcept {
  if (points_.empty()) return net::kInvalidNode;
  const std::uint64_t h = common::WyMix(key, 0xfeed);
  auto it = std::lower_bound(points_.begin(), points_.end(), Point{h, 0});
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->server;
}

}  // namespace loco::core
