// Fixed-length metadata value layouts — the "(de)serialization removal" of
// §3.3.3.  Every field sits at a compile-time byte offset inside the stored
// KV value, so a single-field update is Kv::PatchValue of a few bytes and a
// single-field read is Kv::ReadValueAt; the value is never re-encoded.
//
// Layouts (little endian):
//   d-inode (DMS, keyed by full path), 48 B:
//     [0]  u64 ctime   [8]  u32 mode  [12] u32 uid  [16] u32 gid
//     [20] u32 flags   [24] u64 uuid  [32] u64 mtime [40] u64 atime
//   f-inode access part (FMS, keyed by dir_uuid+name), 24 B:
//     [0]  u64 ctime   [8]  u32 mode  [12] u32 uid  [16] u32 gid  [20] u32 pad
//   f-inode content part (FMS, keyed by dir_uuid+name), 40 B:
//     [0]  u64 mtime   [8]  u64 atime [16] u64 size [24] u32 bsize
//     [28] u32 pad     [32] u64 uuid  (uuid = sid|fid, §3.3.2)
//
// The "coupled" layout (LocoFS-CF, the Fig. 11 baseline) instead serializes
// the whole inode — including the variable-length name and per-block index
// list that §3.3.2 removes — so every update is a full decode/modify/encode
// round trip plus a whole-value Put.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/codec.h"
#include "fs/types.h"

namespace loco::core {

// ---------------------------------------------------------------- d-inode --
struct DirInodeLayout {
  static constexpr std::size_t kCtime = 0;
  static constexpr std::size_t kMode = 8;
  static constexpr std::size_t kUid = 12;
  static constexpr std::size_t kGid = 16;
  static constexpr std::size_t kFlags = 20;
  static constexpr std::size_t kUuid = 24;
  static constexpr std::size_t kMtime = 32;
  static constexpr std::size_t kAtime = 40;
  static constexpr std::size_t kSize = 48;

  static std::string Make(const fs::Attr& attr) {
    std::string v(kSize, '\0');
    common::StoreAt<std::uint64_t>(&v, kCtime, attr.ctime);
    common::StoreAt<std::uint32_t>(&v, kMode, attr.mode);
    common::StoreAt<std::uint32_t>(&v, kUid, attr.uid);
    common::StoreAt<std::uint32_t>(&v, kGid, attr.gid);
    common::StoreAt<std::uint64_t>(&v, kUuid, attr.uuid.raw());
    common::StoreAt<std::uint64_t>(&v, kMtime, attr.mtime);
    common::StoreAt<std::uint64_t>(&v, kAtime, attr.atime);
    return v;
  }

  static fs::Attr Parse(std::string_view v) {
    fs::Attr attr;
    attr.ctime = common::LoadAt<std::uint64_t>(v, kCtime);
    attr.mode = common::LoadAt<std::uint32_t>(v, kMode);
    attr.uid = common::LoadAt<std::uint32_t>(v, kUid);
    attr.gid = common::LoadAt<std::uint32_t>(v, kGid);
    attr.uuid = fs::Uuid(common::LoadAt<std::uint64_t>(v, kUuid));
    attr.mtime = common::LoadAt<std::uint64_t>(v, kMtime);
    attr.atime = common::LoadAt<std::uint64_t>(v, kAtime);
    attr.is_dir = true;
    return attr;
  }
};

// ---------------------------------------------------- f-inode, access part --
struct AccessPartLayout {
  static constexpr std::size_t kCtime = 0;
  static constexpr std::size_t kMode = 8;
  static constexpr std::size_t kUid = 12;
  static constexpr std::size_t kGid = 16;
  static constexpr std::size_t kSize = 24;

  static std::string Make(std::uint64_t ctime, std::uint32_t mode,
                          std::uint32_t uid, std::uint32_t gid) {
    std::string v(kSize, '\0');
    common::StoreAt<std::uint64_t>(&v, kCtime, ctime);
    common::StoreAt<std::uint32_t>(&v, kMode, mode);
    common::StoreAt<std::uint32_t>(&v, kUid, uid);
    common::StoreAt<std::uint32_t>(&v, kGid, gid);
    return v;
  }
};

// --------------------------------------------------- f-inode, content part --
struct ContentPartLayout {
  static constexpr std::size_t kMtime = 0;
  static constexpr std::size_t kAtime = 8;
  static constexpr std::size_t kFileSize = 16;
  static constexpr std::size_t kBlockSize = 24;
  static constexpr std::size_t kUuid = 32;
  static constexpr std::size_t kSize = 40;

  static std::string Make(std::uint64_t mtime, std::uint64_t atime,
                          std::uint64_t file_size, std::uint32_t block_size,
                          fs::Uuid uuid) {
    std::string v(kSize, '\0');
    common::StoreAt<std::uint64_t>(&v, kMtime, mtime);
    common::StoreAt<std::uint64_t>(&v, kAtime, atime);
    common::StoreAt<std::uint64_t>(&v, kFileSize, file_size);
    common::StoreAt<std::uint32_t>(&v, kBlockSize, block_size);
    common::StoreAt<std::uint64_t>(&v, kUuid, uuid.raw());
    return v;
  }
};

// Combine the two fixed parts into a full Attr.
inline fs::Attr ParseFileParts(std::string_view access, std::string_view content) {
  fs::Attr attr;
  attr.ctime = common::LoadAt<std::uint64_t>(access, AccessPartLayout::kCtime);
  attr.mode = common::LoadAt<std::uint32_t>(access, AccessPartLayout::kMode);
  attr.uid = common::LoadAt<std::uint32_t>(access, AccessPartLayout::kUid);
  attr.gid = common::LoadAt<std::uint32_t>(access, AccessPartLayout::kGid);
  attr.mtime = common::LoadAt<std::uint64_t>(content, ContentPartLayout::kMtime);
  attr.atime = common::LoadAt<std::uint64_t>(content, ContentPartLayout::kAtime);
  attr.size = common::LoadAt<std::uint64_t>(content, ContentPartLayout::kFileSize);
  attr.block_size =
      common::LoadAt<std::uint32_t>(content, ContentPartLayout::kBlockSize);
  attr.uuid = fs::Uuid(common::LoadAt<std::uint64_t>(content, ContentPartLayout::kUuid));
  attr.is_dir = false;
  return attr;
}

// ------------------------------------------------- coupled f-inode (CF) -----
// Whole-inode serialized value used when decoupled file metadata is disabled
// (the LocoFS-CF configuration in Fig. 11).  Variable length: carries the
// file name and a per-block index list, so any update must deserialize,
// modify, and reserialize the full record.
struct CoupledInode {
  fs::Attr attr;
  std::string name;
  std::vector<std::uint64_t> block_index;

  std::string Serialize() const {
    common::Writer w;
    w.PutU64(attr.ctime);
    w.PutU32(attr.mode);
    w.PutU32(attr.uid);
    w.PutU32(attr.gid);
    w.PutU64(attr.mtime);
    w.PutU64(attr.atime);
    w.PutU64(attr.size);
    w.PutU32(attr.block_size);
    w.PutU64(attr.uuid.raw());
    w.PutBytes(name);
    w.PutU32(static_cast<std::uint32_t>(block_index.size()));
    for (std::uint64_t b : block_index) w.PutU64(b);
    return w.Take();
  }

  static bool Deserialize(std::string_view data, CoupledInode* out) {
    common::Reader r(data);
    out->attr.ctime = r.GetU64();
    out->attr.mode = r.GetU32();
    out->attr.uid = r.GetU32();
    out->attr.gid = r.GetU32();
    out->attr.mtime = r.GetU64();
    out->attr.atime = r.GetU64();
    out->attr.size = r.GetU64();
    out->attr.block_size = r.GetU32();
    out->attr.uuid = fs::Uuid(r.GetU64());
    out->attr.is_dir = false;
    out->name = r.GetString();
    const std::uint32_t n = r.GetU32();
    out->block_index.clear();
    out->block_index.reserve(n);
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      out->block_index.push_back(r.GetU64());
    }
    return r.ok() && r.AtEnd();
  }
};

// --------------------------------------------------------------- KV keys ----
// File metadata key: 8-byte parent uuid + name (the consistent-hash key of
// §3.1).  Dirent-list key: the 8-byte owner uuid alone.
inline std::string FileKey(fs::Uuid dir_uuid, std::string_view name) {
  std::string key(8, '\0');
  common::StoreAt<std::uint64_t>(&key, 0, dir_uuid.raw());
  key.append(name);
  return key;
}

inline std::string DirentKey(fs::Uuid dir_uuid) {
  std::string key(8, '\0');
  common::StoreAt<std::uint64_t>(&key, 0, dir_uuid.raw());
  return key;
}

// Dirent lists are stored as one concatenated value per directory (§3.2.1):
// a sequence of length-prefixed names.
std::vector<std::string> ParseDirentList(std::string_view value);
void AppendDirent(std::string* value, std::string_view name);
// Returns false if absent.
bool RemoveDirent(std::string* value, std::string_view name);
bool DirentListContains(std::string_view value, std::string_view name);

}  // namespace loco::core
