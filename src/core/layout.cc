#include "core/layout.h"

namespace loco::core {

std::vector<std::string> ParseDirentList(std::string_view value) {
  std::vector<std::string> names;
  common::Reader r(value);
  while (r.ok() && r.remaining() > 0) {
    std::string_view name = r.GetBytes();
    if (!r.ok()) break;
    names.emplace_back(name);
  }
  return names;
}

void AppendDirent(std::string* value, std::string_view name) {
  common::Writer w(value);
  w.PutBytes(name);
}

bool RemoveDirent(std::string* value, std::string_view name) {
  common::Reader r(*value);
  while (r.ok() && r.remaining() > 0) {
    const std::size_t start = value->size() - r.remaining();
    std::string_view candidate = r.GetBytes();
    if (!r.ok()) break;
    if (candidate == name) {
      value->erase(start, 4 + candidate.size());  // length prefix + bytes
      return true;
    }
  }
  return false;
}

bool DirentListContains(std::string_view value, std::string_view name) {
  common::Reader r(value);
  while (r.ok() && r.remaining() > 0) {
    std::string_view candidate = r.GetBytes();
    if (!r.ok()) break;
    if (candidate == name) return true;
  }
  return false;
}

}  // namespace loco::core
