// Directory Metadata Server (DMS) — §3.1, §3.2.
//
// A single DMS holds every directory inode, keyed by full path in a B+-tree
// KV (Kyoto Cabinet tree-DB stand-in), so:
//   * any directory is located with one local get (flattened tree);
//   * ancestor ACL checks for a whole path are local gets, never RPCs;
//   * a directory rename is an ordered range move (§3.4.3).
// Sub-directory dirent lists are concatenated values keyed by the owning
// directory's uuid in a separate hash KV (§3.2.1).
//
// Concurrency: handlers may run on many TcpServer workers at once.  A
// shared/exclusive namespace lock isolates Rename — which rewrites path keys
// across a whole subtree — from every other handler; mutations that touch a
// directory's dirent list or its children's existence (Mkdir, Rmdir)
// serialize on a striped lock table keyed by the directory path's hash; the
// remaining single-key attribute ops rely on the lock-striped KV stores
// (kvstore/striped_kv.h).
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/lock_table.h"

#include "common/metrics.h"
#include "core/gc.h"
#include "core/layout.h"
#include "core/lease_table.h"
#include "kvstore/kv.h"
#include "net/notify.h"
#include "net/rpc.h"

namespace loco::core {

class DirectoryMetadataServer final : public net::RpcHandler {
 public:
  struct Options {
    // Backend for the d-inode store: kBTree enables the rename range-move
    // optimization; kHash is the Fig. 14 comparison point.
    kv::KvBackend backend = kv::KvBackend::kBTree;
    kv::KvOptions kv;
    // Lock stripes per store (thread safety under multi-worker servers).
    std::size_t kv_stripes = 16;
    // Post-construction wrapper applied to each store (fault injection:
    // daemons install kv::FaultyKv here when --fault-spec arms KV faults).
    std::function<std::unique_ptr<kv::Kv>(std::unique_ptr<kv::Kv>)> kv_decorator;
    // Lease bookkeeping for the push plane: lease term granted per Lookup and
    // the watch-table bound (docs/LEASES.md).  lease.lease_ns must match the
    // clients' cache TTL.
    LeaseTable::Options lease;
    // Server id minted into this shard's directory uuids (the root reserves
    // 0xffff).  Each DMS shard must use a distinct sid so uuids stay unique
    // cluster-wide: shard i conventionally runs 0xfffe - i (--shard-id).
    std::uint32_t sid = 0xfffe;
  };

  DirectoryMetadataServer() : DirectoryMetadataServer(Options{}) {}
  explicit DirectoryMetadataServer(const Options& options);

  // Wire the push plane (net::TcpServer).  Until this is called — and for
  // clients that never negotiated notify — mutations are visible to lease
  // holders only after the lease expires, exactly the pre-push behavior.
  // `notifier` must outlive the server; call before serving traffic.
  void SetNotifier(net::Notifier* notifier) noexcept { notifier_ = notifier; }

  net::RpcResponse Handle(std::uint16_t opcode, std::string_view payload) override;
  net::RpcResponse HandleCtx(std::uint16_t opcode, std::string_view payload,
                             const net::HandlerContext& ctx) override;

  // Wire the hosting daemon's GC manager so kCtlGcStatus can answer.  The
  // manager must outlive the server.
  void SetGcManager(GcManager* gc) noexcept { gc_ = gc; }

  // Disconnect hook (TcpServer::Options::on_notify_disconnect): a client's
  // push session died, so its lease watches are undeliverable — drop them
  // now instead of waiting for a mutation to discover the dead session.
  void DropClientLeases(std::uint64_t client) { leases_.Drop(client); }

  // One incremental GC step (docs/HOUSEKEEPING.md): apply queued repairs,
  // else harvest both stores and detect the DMS-local invariants — I1
  // (missing parent d-inodes), I2 (dangling dirent entries), I3 (dirent
  // lists of dead uuids, two-cycle confirmed), I4 (directories missing from
  // their parent's list).  Called from a single GcManager thread; repairs
  // re-verify under the serving locks before touching the stores.
  GcStepResult GcStep(std::uint32_t budget);

  // Store introspection for tests and benchmarks.
  const kv::Kv& dir_kv() const noexcept { return *dirs_; }
  const kv::Kv& dirent_kv() const noexcept { return *dirents_; }
  kv::Kv& mutable_dir_kv() noexcept { return *dirs_; }
  std::size_t DirCount() const { return dirs_->Size(); }

  // One pending cross-shard rename transfer (docs/SHARDING.md), as persisted
  // in the intent log.  kind 0 = outgoing intent (this shard is the source),
  // kind 1 = incoming marker (this shard is the destination; `from` is empty
  // there — the marker only needs `to` and the txid for recovery).
  struct PendingRename {
    std::uint8_t kind = 0;
    std::uint64_t txid = 0;
    std::string from;
    std::string to;
  };
  // Snapshot of the pending transfers, for the hosting daemon's intent-
  // resolution GC task and tests.  (fsck reads the same state over the wire
  // via kDmsScanIntents.)
  std::vector<PendingRename> PendingRenames() const;

 private:
  // Resolve `path` as a directory: exec on every ancestor, `want` bits on
  // the target.  Returns the target's attributes.
  Result<fs::Attr> ResolveDir(std::string_view path, const fs::Identity& who,
                              std::uint32_t want) const;

  net::RpcResponse Dispatch(std::uint16_t opcode, std::string_view payload);

  // Post-success push-plane side effects for `opcode`: lease grants (Lookup)
  // and invalidation pushes (mutations).  No-op until SetNotifier.
  void NotifySideEffects(std::uint16_t opcode, std::string_view payload,
                         std::uint64_t client);
  // Push kNotifyInvalidate to every live watcher of `path` (and of the whole
  // subtree under it when `subtree`), excluding the originating `client`.
  void PushInvalidate(const std::string& path, bool subtree,
                      std::uint64_t client);
  // A live watch was evicted at the table cap: push a synthetic invalidation
  // so the holder resyncs now instead of trusting a cache entry whose
  // invalidation promise was just broken.
  void OnWatchEvicted(const std::string& path, std::uint64_t client);

  net::RpcResponse Mkdir(std::string_view payload);
  // Bulk tree materialization (net/wire.h batch framing): N kDmsMkdir
  // sub-ops applied in order inside the single shared namespace-lock
  // acquisition Dispatch already took for the frame.  Each sub-op runs the
  // single-op Mkdir wholesale (same per-parent lock, same rollback) and
  // fails alone; a malformed envelope fails the frame with kCorruption.
  net::RpcResponse BatchMkdir(std::string_view payload);
  net::RpcResponse Rmdir(std::string_view payload);
  net::RpcResponse Lookup(std::string_view payload);
  net::RpcResponse Stat(std::string_view payload);
  net::RpcResponse Readdir(std::string_view payload);
  net::RpcResponse Chmod(std::string_view payload);
  net::RpcResponse Chown(std::string_view payload);
  net::RpcResponse Utimens(std::string_view payload);
  net::RpcResponse Access(std::string_view payload);
  net::RpcResponse Rename(std::string_view payload);
  // Cross-shard rename transfer (all run under ns_mu_ exclusive — they move,
  // install, or delete whole subtrees of path keys).
  net::RpcResponse RenamePrepare(std::string_view payload);
  net::RpcResponse RenameCommit(std::string_view payload);
  net::RpcResponse RenameFinish(std::string_view payload);
  net::RpcResponse RenameAbort(std::string_view payload);
  net::RpcResponse AbortIncoming(std::string_view payload);
  net::RpcResponse ScanIntents(std::string_view payload);
  // fsck / admin surface (tools/loco_fsck).  Scans take an optional
  // [epoch u64] payload: empty reads live state, an epoch serves the pinned
  // snapshot (kNotFound once evicted or released).
  net::RpcResponse ScanDirs(std::string_view payload);
  net::RpcResponse ScanDirents(std::string_view payload);
  net::RpcResponse RepairDirent(std::string_view payload);
  net::RpcResponse DropDirents(std::string_view payload);
  net::RpcResponse Announce(std::string_view payload);
  net::RpcResponse CheckUuids(std::string_view payload);
  net::RpcResponse GcStatus();
  // Caller holds ns_mu_ exclusively (Dispatch routes it that way).
  net::RpcResponse SnapshotBegin();
  net::RpcResponse SnapshotEnd(std::string_view payload);

  // Materialized scan payloads (shared by live scans and SnapshotBegin).
  std::string ScanDirsPayload();
  std::string ScanDirentsPayload();
  std::string ScanIntentsPayload() const;

  // True when `path` lies inside a subtree locked by a pending outgoing
  // intent or covered by an incoming transfer marker; mutations there answer
  // kStale until the transfer resolves.
  bool LockedForRename(std::string_view path) const;
  // Persist one intent-log record (kind/txid as in PendingRename) and mirror
  // it in the in-memory map; Erase drops both.
  bool PutIntent(std::uint8_t kind, std::uint64_t txid, std::string_view from,
                 std::string_view to);
  void EraseIntent(std::uint8_t kind, std::uint64_t txid);
  // Delete every d-inode at/under `root` plus their uuid-keyed dirent lists.
  void DeleteSubtree(const std::string& root);

  // GC repair primitive: add (or drop) `name` in `dir_path`'s dirent list
  // iff the child d-inode's existence still justifies it, checked inside the
  // same per-directory lock Mkdir/Rmdir hold.  Returns true when applied.
  bool GcFixDirent(const std::string& dir_path, const std::string& name,
                   bool add);

  std::unique_ptr<kv::Kv> dirs_;     // full path -> 48-byte d-inode
  std::unique_ptr<kv::Kv> dirents_;  // dir uuid -> concatenated subdir names
  // Cross-shard rename intent log: [kind u8 | txid u64] -> Pack(from, to).
  // Tiny (one record per in-flight transfer) but durable — recovery after a
  // crash is driven entirely from this store.
  std::unique_ptr<kv::Kv> intents_;
  std::atomic<std::uint64_t> next_fid_{2};
  std::uint32_t sid_ = 0xfffe;

  // In-memory mirror of intents_, keyed by (kind, txid).  Guarded by
  // rename_mu_ so read paths (LockedForRename, PendingRenames) never touch
  // the KV store.
  mutable std::mutex rename_mu_;
  std::map<std::pair<std::uint8_t, std::uint64_t>, PendingRename> pending_renames_;

  // Rename takes this exclusively (it moves path keys under every other
  // handler's feet); all other handlers take it shared.
  mutable std::shared_mutex ns_mu_;
  // Per-directory serialization for dirent-list updates and child
  // create/remove, keyed by the directory path's hash.
  common::LockTable dir_locks_{64};

  // Push plane: notify sink (owned by the hosting server) + lease watches.
  net::Notifier* notifier_ = nullptr;
  LeaseTable leases_;

  // Snapshot plane (kCtlSnapshotBegin/End): pinning takes ns_mu_ exclusively
  // (like Rename) so the cut is a point in time.
  struct Snapshot {
    std::string dirs;     // kDmsScanDirs reply payload
    std::string dirents;  // kDmsScanDirents reply payload
    std::string intents;  // kDmsScanIntents reply payload
  };
  std::mutex snap_mu_;  // guards the epoch counter and the snapshot map
  std::uint64_t next_snapshot_epoch_ = 1;
  std::map<std::uint64_t, Snapshot> snapshots_;

  // Housekeeping (single GcManager thread): pending repairs and the I3
  // candidates of the previous harvest (dropping a dirent list is
  // destructive, so it needs two consecutive sightings).
  struct GcPending {
    enum Kind : std::uint8_t { kMkdir, kAddName, kDropName, kDropList };
    Kind kind;
    std::string dir_path;  // kMkdir: path to create; kAdd/kDropName: the dir
    std::string name;
    std::uint64_t uuid_raw = 0;  // kDropList
  };
  std::deque<GcPending> gc_queue_;
  std::set<std::uint64_t> gc_i3_prev_;
  GcManager* gc_ = nullptr;
  // gc.dms.* per-invariant repair counters.
  common::Counter* gc_i1_repaired_ = &common::MetricsRegistry::Default()
      .GetCounter("gc.dms.i1_parents_recreated");
  common::Counter* gc_i2_repaired_ = &common::MetricsRegistry::Default()
      .GetCounter("gc.dms.i2_dirents_dropped");
  common::Counter* gc_i3_repaired_ = &common::MetricsRegistry::Default()
      .GetCounter("gc.dms.i3_lists_dropped");
  common::Counter* gc_i4_repaired_ = &common::MetricsRegistry::Default()
      .GetCounter("gc.dms.i4_dirents_added");

  common::ServerOpCounters op_metrics_{&common::MetricsRegistry::Default(),
                                       "server.dms"};
  common::Counter* lease_grants_ = &common::MetricsRegistry::Default()
                                        .GetCounter("server.dms.lease.grants");
  common::Counter* invalidations_pushed_ =
      &common::MetricsRegistry::Default().GetCounter(
          "server.dms.lease.invalidations_pushed");
  common::Counter* evict_resyncs_ =
      &common::MetricsRegistry::Default().GetCounter(
          "server.dms.lease.evict_resyncs");
  // server.dms.kv.* gauges aggregating both stores (RAII: unregistered with
  // the server).
  std::vector<common::MetricsRegistry::GaugeHandle> kv_gauges_;
};

}  // namespace loco::core
