// Directory-shard placement: which DMS shard owns a directory path.
//
// LocoFS partitions the directory namespace by *top-level subtree*: every
// path under "/a" lives on the shard that owns "/a", chosen by consistent
// hashing over the first path component.  The root "/" itself is replicated
// on every shard (each shard seeds its own root d-inode so local ancestor
// walks always terminate); shard 0 is the canonical owner of the root's
// attributes.
//
// Subtree placement keeps every parent/child pair except (root, top-level
// dir) on one shard, so Mkdir/Rmdir/Lookup permission walks stay local and
// only a rename that moves a subtree *across top-level directories* needs
// the cross-shard two-phase protocol (docs/SHARDING.md).
//
// The map is deterministic from the ordered shard count alone — clients,
// daemons, fsck, and benches all compute identical placement without any
// coordination, exactly like the FMS `HashRing` placement it mirrors.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "core/ring.h"

namespace loco::core {

// Placement key for a path: the top-level component as "/name" ("/a/b/c" ->
// "/a"); the root maps to itself.
std::string_view ShardKey(std::string_view path) noexcept;

class ShardMap {
 public:
  // `shards` is the number of DMS shards in the ordered shard set (>= 1).
  explicit ShardMap(std::size_t shards);

  // Index of the shard owning `path`.  The root is pinned to shard 0 (its
  // canonical owner); everything else hashes its top-level component over a
  // consistent ring of shard indices.
  std::size_t ShardOf(std::string_view path) const noexcept;

  std::size_t size() const noexcept { return shards_; }

 private:
  std::size_t shards_;
  HashRing ring_;  // NodeId doubles as the shard index here
};

}  // namespace loco::core
