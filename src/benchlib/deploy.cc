#include "benchlib/deploy.h"

#include <cstdio>
#include <cstring>

#include "common/metrics.h"

namespace loco::bench {

std::string_view SystemName(System system) noexcept {
  switch (system) {
    case System::kLocoC: return "LocoFS-C";
    case System::kLocoNC: return "LocoFS-NC";
    case System::kLocoCF: return "LocoFS-CF";
    case System::kIndexFs: return "IndexFS";
    case System::kCephFs: return "CephFS";
    case System::kGluster: return "Gluster";
    case System::kLustreD1: return "Lustre-D1";
    case System::kLustreD2: return "Lustre-D2";
  }
  return "?";
}

bool IsLocoFs(System system) noexcept {
  return system == System::kLocoC || system == System::kLocoNC ||
         system == System::kLocoCF;
}

namespace {

Deployment DeployLocoFs(System system, sim::SimCluster* cluster,
                        const DeployOptions& options) {
  Deployment d;
  d.system = system;
  const bool decoupled = system != System::kLocoCF;
  const bool cache = system != System::kLocoNC;

  auto dms = std::make_unique<core::DirectoryMetadataServer>(
      core::DirectoryMetadataServer::Options{options.dms_backend, {}});
  d.dms = dms.get();

  std::vector<net::NodeId> fms_nodes;
  for (int i = 0; i < options.metadata_servers; ++i) {
    core::FileMetadataServer::Options fo;
    fo.sid = static_cast<std::uint32_t>(i + 1);
    fo.decoupled = decoupled;
    auto fms = std::make_unique<core::FileMetadataServer>(fo);
    d.fms.push_back(fms.get());

    auto mux = std::make_unique<MuxHandler>();
    mux->Route(32, 63, fms.get());
    if (i == 0) mux->Route(1, 31, dms.get());  // DMS co-hosted on node 0
    const net::NodeId id = cluster->AddServer(mux.get());
    fms_nodes.push_back(id);
    d.metadata_nodes.push_back(id);
    d.muxes.push_back(std::move(mux));
    d.handlers.push_back(std::move(fms));
  }
  d.handlers.push_back(std::move(dms));

  for (int i = 0; i < options.object_servers; ++i) {
    core::ObjectStoreServer::Options oo;
    oo.device = options.object_device;
    oo.retain_data = options.object_retain_data;
    auto obj = std::make_unique<core::ObjectStoreServer>(oo);
    d.object_nodes.push_back(cluster->AddServer(obj.get()));
    d.handlers.push_back(std::move(obj));
  }

  const net::NodeId dms_node = d.metadata_nodes.front();
  const std::vector<net::NodeId> object_nodes = d.object_nodes;
  const std::uint64_t lease_ns = options.loco_lease_ns;
  d.make_client = [dms_node, fms_nodes, object_nodes, cache,
                   lease_ns](net::Channel& ch, fs::TimeFn now)
      -> std::unique_ptr<fs::FileSystemClient> {
    core::LocoClient::Config cfg;
    cfg.dms = dms_node;
    cfg.fms = fms_nodes;
    cfg.object_stores = object_nodes;
    cfg.cache_enabled = cache && lease_ns > 0;
    cfg.lease_ns = lease_ns;
    cfg.now = std::move(now);
    return std::make_unique<core::LocoClient>(ch, cfg);
  };
  return d;
}

baselines::Flavor FlavorOf(System system) {
  switch (system) {
    case System::kIndexFs: return baselines::Flavor::kIndexFs;
    case System::kCephFs: return baselines::Flavor::kCephFs;
    case System::kGluster: return baselines::Flavor::kGluster;
    case System::kLustreD1: return baselines::Flavor::kLustreD1;
    case System::kLustreD2: return baselines::Flavor::kLustreD2;
    default: break;
  }
  return baselines::Flavor::kIndexFs;
}

Deployment DeployBaseline(System system, sim::SimCluster* cluster,
                          const DeployOptions& options) {
  Deployment d;
  d.system = system;
  const baselines::Flavor flavor = FlavorOf(system);

  std::vector<net::NodeId> nodes;
  for (int i = 0; i < options.metadata_servers; ++i) {
    auto server = std::make_unique<baselines::NsServer>(
        baselines::ServerOptionsFor(flavor, static_cast<std::uint32_t>(i + 1)));
    d.ns_servers.push_back(server.get());
    const net::NodeId id = cluster->AddServer(server.get());
    nodes.push_back(id);
    d.metadata_nodes.push_back(id);
    d.handlers.push_back(std::move(server));
  }
  for (int i = 0; i < options.object_servers; ++i) {
    core::ObjectStoreServer::Options oo;
    oo.device = options.object_device;
    oo.retain_data = options.object_retain_data;
    auto obj = std::make_unique<core::ObjectStoreServer>(oo);
    d.object_nodes.push_back(cluster->AddServer(obj.get()));
    d.handlers.push_back(std::move(obj));
  }

  const std::vector<net::NodeId> object_nodes = d.object_nodes;
  std::uint64_t next_client_id = 1;
  d.make_client = [flavor, nodes, object_nodes, next_client_id](
                      net::Channel& ch, fs::TimeFn now) mutable
      -> std::unique_ptr<fs::FileSystemClient> {
    baselines::BaselineFsClient::Config cfg;
    cfg.policy = baselines::PolicyFor(flavor);
    cfg.servers = nodes;
    cfg.object_stores = object_nodes;
    cfg.now = std::move(now);
    cfg.client_id = next_client_id++;
    return std::make_unique<baselines::BaselineFsClient>(ch, cfg);
  };
  return d;
}

}  // namespace

Deployment Deploy(System system, sim::SimCluster* cluster,
                  const DeployOptions& options) {
  return IsLocoFs(system) ? DeployLocoFs(system, cluster, options)
                          : DeployBaseline(system, cluster, options);
}

Result<RemoteEndpoints> ParseConnectSpec(std::string_view spec) {
  RemoteEndpoints eps;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Status(ErrCode::kInvalid,
                    "connect spec entry '" + std::string(entry) +
                        "' is not role=host:port");
    }
    const std::string_view role = entry.substr(0, eq);
    const std::string_view addr = entry.substr(eq + 1);
    std::string host;
    std::uint16_t port = 0;
    if (!net::ParseHostPort(addr, &host, &port)) {
      return Status(ErrCode::kInvalid,
                    "bad host:port '" + std::string(addr) + "' for role '" +
                        std::string(role) + "'");
    }
    if (role == "dms") {
      if (!eps.dms.empty()) {
        return Status(ErrCode::kInvalid, "connect spec has more than one dms");
      }
      eps.dms = std::string(addr);
    } else if (role == "fms") {
      eps.fms.emplace_back(addr);
    } else if (role == "osd") {
      eps.object_stores.emplace_back(addr);
    } else {
      return Status(ErrCode::kInvalid,
                    "unknown role '" + std::string(role) + "' (dms|fms|osd)");
    }
  }
  if (eps.dms.empty()) {
    return Status(ErrCode::kInvalid, "connect spec needs dms=host:port");
  }
  if (eps.fms.empty()) {
    return Status(ErrCode::kInvalid, "connect spec needs at least one fms=");
  }
  if (eps.object_stores.empty()) {
    return Status(ErrCode::kInvalid, "connect spec needs at least one osd=");
  }
  return eps;
}

std::unique_ptr<fs::FileSystemClient> RemoteDeployment::MakeClient(
    fs::TimeFn now) const {
  core::LocoClient::Config cfg = config;
  cfg.now = std::move(now);
  return std::make_unique<core::LocoClient>(rpc(), cfg);
}

Result<RemoteDeployment> ConnectRemote(const RemoteEndpoints& endpoints,
                                       const RemoteOptions& options) {
  RemoteDeployment d;
  d.channel = std::make_unique<net::TcpChannel>(options.channel);

  const auto register_node = [&](net::NodeId id,
                                 const std::string& addr) -> Status {
    if (!d.channel->Register(id, addr)) {
      return Status(ErrCode::kInvalid, "bad endpoint '" + addr + "'");
    }
    return Status::Ok();
  };

  d.config.dms = 0;
  LOCO_RETURN_IF_ERROR(register_node(0, endpoints.dms));
  for (std::size_t i = 0; i < endpoints.fms.size(); ++i) {
    const net::NodeId id = static_cast<net::NodeId>(1 + i);
    LOCO_RETURN_IF_ERROR(register_node(id, endpoints.fms[i]));
    d.config.fms.push_back(id);
  }
  for (std::size_t i = 0; i < endpoints.object_stores.size(); ++i) {
    const net::NodeId id = static_cast<net::NodeId>(1000 + i);
    LOCO_RETURN_IF_ERROR(register_node(id, endpoints.object_stores[i]));
    d.config.object_stores.push_back(id);
  }
  d.config.cache_enabled = options.cache_enabled && options.lease_ns > 0;
  d.config.lease_ns = options.lease_ns;
  if (options.resilience) {
    d.resilient = std::make_unique<net::ResilientChannel>(
        d.channel.get(), options.resilience_options);
  }
  return d;
}

std::string MetricsOutPath(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--metrics-out") == 0 && i + 1 < argc) {
      path = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      path = arg + 14;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;
  return path;
}

bool WriteMetricsJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "metrics: cannot open %s\n", path.c_str());
    return false;
  }
  // Pre-register the always-relevant families so consumers can rely on the
  // keys existing (at zero) even in binaries that never build a client.
  auto& registry = common::MetricsRegistry::Default();
  registry.GetCounter("client.cache.hits");
  registry.GetCounter("client.cache.misses");
  registry.GetCounter("client.cache.invalidations");
  const std::string json = registry.ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (ok) std::fprintf(stderr, "metrics: wrote %s\n", path.c_str());
  return ok;
}

MetricsDump::~MetricsDump() {
  if (!path_.empty()) WriteMetricsJson(path_);
}

}  // namespace loco::bench
