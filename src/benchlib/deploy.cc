#include "benchlib/deploy.h"

#include <cstdio>
#include <cstring>

#include "common/metrics.h"

namespace loco::bench {

std::string_view SystemName(System system) noexcept {
  switch (system) {
    case System::kLocoC: return "LocoFS-C";
    case System::kLocoNC: return "LocoFS-NC";
    case System::kLocoCF: return "LocoFS-CF";
    case System::kIndexFs: return "IndexFS";
    case System::kCephFs: return "CephFS";
    case System::kGluster: return "Gluster";
    case System::kLustreD1: return "Lustre-D1";
    case System::kLustreD2: return "Lustre-D2";
  }
  return "?";
}

bool IsLocoFs(System system) noexcept {
  return system == System::kLocoC || system == System::kLocoNC ||
         system == System::kLocoCF;
}

namespace {

Deployment DeployLocoFs(System system, sim::SimCluster* cluster,
                        const DeployOptions& options) {
  Deployment d;
  d.system = system;
  const bool decoupled = system != System::kLocoCF;
  const bool cache = system != System::kLocoNC;

  // DMS shards: each gets its own uuid sid (0xfffe - i) so fids allocated on
  // different shards never collide (shard 0 keeps the historic 0xfffe).
  const int shards = options.dms_shards > 0 ? options.dms_shards : 1;
  std::vector<std::unique_ptr<core::DirectoryMetadataServer>> dms;
  for (int i = 0; i < shards; ++i) {
    core::DirectoryMetadataServer::Options dms_options;
    dms_options.backend = options.dms_backend;
    dms_options.sid = 0xfffe - static_cast<std::uint32_t>(i);
    dms.push_back(
        std::make_unique<core::DirectoryMetadataServer>(dms_options));
    d.dms_shards.push_back(dms.back().get());
  }
  d.dms = d.dms_shards.front();

  std::vector<net::NodeId> fms_nodes;
  for (int i = 0; i < options.metadata_servers; ++i) {
    core::FileMetadataServer::Options fo;
    fo.sid = static_cast<std::uint32_t>(i + 1);
    fo.decoupled = decoupled;
    auto fms = std::make_unique<core::FileMetadataServer>(fo);
    d.fms.push_back(fms.get());

    auto mux = std::make_unique<MuxHandler>();
    mux->Route(32, 63, fms.get());
    // DMS shard i co-hosted on metadata node i (the paper's combined
    // metadata-server configuration, one shard per node).
    if (i < shards) mux->Route(1, 31, dms[i].get());
    const net::NodeId id = cluster->AddServer(mux.get());
    fms_nodes.push_back(id);
    d.metadata_nodes.push_back(id);
    d.muxes.push_back(std::move(mux));
    d.handlers.push_back(std::move(fms));
  }
  // Shards beyond the metadata node count get dedicated nodes.
  std::vector<net::NodeId> dms_nodes;
  for (int i = 0; i < shards; ++i) {
    dms_nodes.push_back(i < options.metadata_servers
                            ? d.metadata_nodes[i]
                            : cluster->AddServer(dms[i].get()));
  }
  for (auto& shard : dms) d.handlers.push_back(std::move(shard));

  for (int i = 0; i < options.object_servers; ++i) {
    core::ObjectStoreServer::Options oo;
    oo.device = options.object_device;
    oo.retain_data = options.object_retain_data;
    auto obj = std::make_unique<core::ObjectStoreServer>(oo);
    d.object_nodes.push_back(cluster->AddServer(obj.get()));
    d.handlers.push_back(std::move(obj));
  }

  const std::vector<net::NodeId> object_nodes = d.object_nodes;
  const std::uint64_t lease_ns = options.loco_lease_ns;
  d.make_client = [dms_nodes, fms_nodes, object_nodes, cache,
                   lease_ns](net::Channel& ch, fs::TimeFn now)
      -> std::unique_ptr<fs::FileSystemClient> {
    core::LocoClient::Config cfg;
    cfg.dms = dms_nodes;
    cfg.fms = fms_nodes;
    cfg.object_stores = object_nodes;
    cfg.cache_enabled = cache && lease_ns > 0;
    cfg.lease_ns = lease_ns;
    cfg.now = std::move(now);
    return std::make_unique<core::LocoClient>(ch, cfg);
  };
  return d;
}

baselines::Flavor FlavorOf(System system) {
  switch (system) {
    case System::kIndexFs: return baselines::Flavor::kIndexFs;
    case System::kCephFs: return baselines::Flavor::kCephFs;
    case System::kGluster: return baselines::Flavor::kGluster;
    case System::kLustreD1: return baselines::Flavor::kLustreD1;
    case System::kLustreD2: return baselines::Flavor::kLustreD2;
    default: break;
  }
  return baselines::Flavor::kIndexFs;
}

Deployment DeployBaseline(System system, sim::SimCluster* cluster,
                          const DeployOptions& options) {
  Deployment d;
  d.system = system;
  const baselines::Flavor flavor = FlavorOf(system);

  std::vector<net::NodeId> nodes;
  for (int i = 0; i < options.metadata_servers; ++i) {
    auto server = std::make_unique<baselines::NsServer>(
        baselines::ServerOptionsFor(flavor, static_cast<std::uint32_t>(i + 1)));
    d.ns_servers.push_back(server.get());
    const net::NodeId id = cluster->AddServer(server.get());
    nodes.push_back(id);
    d.metadata_nodes.push_back(id);
    d.handlers.push_back(std::move(server));
  }
  for (int i = 0; i < options.object_servers; ++i) {
    core::ObjectStoreServer::Options oo;
    oo.device = options.object_device;
    oo.retain_data = options.object_retain_data;
    auto obj = std::make_unique<core::ObjectStoreServer>(oo);
    d.object_nodes.push_back(cluster->AddServer(obj.get()));
    d.handlers.push_back(std::move(obj));
  }

  const std::vector<net::NodeId> object_nodes = d.object_nodes;
  std::uint64_t next_client_id = 1;
  d.make_client = [flavor, nodes, object_nodes, next_client_id](
                      net::Channel& ch, fs::TimeFn now) mutable
      -> std::unique_ptr<fs::FileSystemClient> {
    baselines::BaselineFsClient::Config cfg;
    cfg.policy = baselines::PolicyFor(flavor);
    cfg.servers = nodes;
    cfg.object_stores = object_nodes;
    cfg.now = std::move(now);
    cfg.client_id = next_client_id++;
    return std::make_unique<baselines::BaselineFsClient>(ch, cfg);
  };
  return d;
}

}  // namespace

Deployment Deploy(System system, sim::SimCluster* cluster,
                  const DeployOptions& options) {
  return IsLocoFs(system) ? DeployLocoFs(system, cluster, options)
                          : DeployBaseline(system, cluster, options);
}

std::string MetricsOutPath(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--metrics-out") == 0 && i + 1 < argc) {
      path = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      path = arg + 14;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;
  return path;
}

bool WriteMetricsJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "metrics: cannot open %s\n", path.c_str());
    return false;
  }
  // Pre-register the always-relevant families so consumers can rely on the
  // keys existing (at zero) even in binaries that never build a client.
  auto& registry = common::MetricsRegistry::Default();
  registry.GetCounter("client.cache.hits");
  registry.GetCounter("client.cache.misses");
  registry.GetCounter("client.cache.invalidations");
  const std::string json = registry.ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (ok) std::fprintf(stderr, "metrics: wrote %s\n", path.c_str());
  return ok;
}

MetricsDump::MetricsDump(int& argc, char** argv)
    : path_(MetricsOutPath(argc, argv)) {
  if (!path_.empty()) {
    last_ = common::MetricsRegistry::Default().TakeSnapshot();
  }
}

void MetricsDump::Phase(const std::string& label) {
  if (path_.empty()) return;
  auto& registry = common::MetricsRegistry::Default();
  phases_.emplace_back(label, registry.DeltaJson(last_));
  last_ = registry.TakeSnapshot();
}

namespace {

void AppendJsonKey(std::string* out, const std::string& label) {
  out->push_back('"');
  for (char c : label) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  *out += "\": ";
}

}  // namespace

MetricsDump::~MetricsDump() {
  if (path_.empty()) return;
  if (phases_.empty()) {
    WriteMetricsJson(path_);
    return;
  }
  // Phased output: per-phase deltas plus the conventional full dump under
  // "totals" so existing consumers keep working off one key.
  std::string out = "{\n\"phases\": {\n";
  bool first = true;
  for (const auto& [label, delta] : phases_) {
    if (!first) out += ",\n";
    first = false;
    AppendJsonKey(&out, label);
    out += delta;
  }
  out += "},\n\"totals\": ";
  out += common::MetricsRegistry::Default().ToJson();
  out += "}\n";
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "metrics: cannot open %s\n", path_.c_str());
    return;
  }
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  if (ok) std::fprintf(stderr, "metrics: wrote %s\n", path_.c_str());
}

}  // namespace loco::bench
