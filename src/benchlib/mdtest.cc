#include "benchlib/mdtest.h"

#include <cstdio>
#include <memory>

#include "fs/path.h"
#include "net/task.h"
#include "sim/simulation.h"

namespace loco::bench {

namespace {

std::string ItemPath(const std::string& workdir, fs::FsOp op, int index) {
  char name[32];
  const bool is_dir_item = op == fs::FsOp::kMkdir || op == fs::FsOp::kRmdir ||
                           op == fs::FsOp::kStatDir;
  std::snprintf(name, sizeof(name), is_dir_item ? "D%06d" : "f%06d", index);
  return fs::JoinPath(workdir, name);
}

// Issue one measured operation.  Statuses are reduced to Status so the
// driver can count errors uniformly.
net::Task<Status> IssueOp(fs::FileSystemClient& fsc, fs::FsOp op,
                          std::string path, std::uint64_t io_bytes) {
  switch (op) {
    case fs::FsOp::kMkdir:
      co_return co_await fsc.Mkdir(std::move(path), fs::kDefaultDirMode);
    case fs::FsOp::kRmdir:
      co_return co_await fsc.Rmdir(std::move(path));
    case fs::FsOp::kCreate:
      co_return co_await fsc.Create(std::move(path), fs::kDefaultFileMode);
    case fs::FsOp::kUnlink:
      co_return co_await fsc.Unlink(std::move(path));
    case fs::FsOp::kStatFile: {
      auto attr = co_await fsc.StatFile(std::move(path));
      co_return attr.status();
    }
    case fs::FsOp::kStatDir: {
      auto attr = co_await fsc.StatDir(std::move(path));
      co_return attr.status();
    }
    case fs::FsOp::kReaddir: {
      auto entries = co_await fsc.Readdir(std::move(path));
      co_return entries.status();
    }
    // Attribute ops target the file items (f%06d), so the typed fast paths
    // apply — implementations skip the file-vs-directory fallback probe.
    case fs::FsOp::kChmod:
      co_return co_await fsc.ChmodFile(std::move(path), 0600);
    case fs::FsOp::kChown:
      co_return co_await fsc.ChownFile(std::move(path), fsc.identity().uid,
                                       4242);
    case fs::FsOp::kAccess:
      co_return co_await fsc.AccessFile(std::move(path), fs::kModeRead);
    case fs::FsOp::kTruncate:
      co_return co_await fsc.Truncate(std::move(path), 0);
    case fs::FsOp::kUtimens:
      co_return co_await fsc.Utimens(std::move(path), 1111, 2222);
    case fs::FsOp::kOpen: {
      auto attr = co_await fsc.Open(path);
      if (!attr.ok()) co_return attr.status();
      co_return co_await fsc.Close(std::move(path));
    }
    case fs::FsOp::kWrite: {
      std::string data(io_bytes, 'w');
      co_return co_await fsc.Write(std::move(path), 0, std::move(data));
    }
    case fs::FsOp::kRead: {
      auto data = co_await fsc.Read(std::move(path), 0, io_bytes);
      co_return data.status();
    }
    default:
      co_return ErrStatus(ErrCode::kUnsupported);
  }
}

struct ClientCtx {
  std::unique_ptr<sim::SimChannel> channel;
  std::unique_ptr<fs::FileSystemClient> fsc;
  std::string workdir;
  std::vector<std::string> setup_chain;  // directories to mkdir during setup
};

// Run one phase to completion (all clients drain their op lists).
sim::RunStats RunPhase(sim::Simulation* sim, sim::SimCluster* cluster,
                       std::vector<ClientCtx>* clients, fs::FsOp op,
                       int items, int readdir_repeat, std::uint64_t io_bytes) {
  sim::RunStats stats;
  std::vector<std::unique_ptr<sim::ClosedLoopClient>> drivers;
  drivers.reserve(clients->size());
  for (ClientCtx& ctx : *clients) {
    auto source = [&ctx, op, items, readdir_repeat, io_bytes, next = 0](
                      net::Channel&) mutable
        -> std::optional<sim::ClosedLoopClient::Op> {
      const int total = op == fs::FsOp::kReaddir ? readdir_repeat : items;
      if (next >= total) return std::nullopt;
      std::string path = op == fs::FsOp::kReaddir
                             ? ctx.workdir
                             : ItemPath(ctx.workdir, op, next);
      ++next;
      return sim::ClosedLoopClient::Op{
          IssueOp(*ctx.fsc, op, std::move(path), io_bytes),
          static_cast<int>(op)};
    };
    drivers.push_back(std::make_unique<sim::ClosedLoopClient>(
        cluster, ctx.channel.get(), std::move(source), &stats));
  }
  for (auto& d : drivers) d->Start();
  sim->Run();
  return stats;
}

}  // namespace

MdtestResult RunMdtest(const MdtestConfig& config) {
  sim::Simulation sim;
  sim::SimCluster cluster(&sim, config.cluster);
  DeployOptions deploy = config.deploy;
  deploy.metadata_servers = config.metadata_servers;
  Deployment dep = Deploy(config.system, &cluster, deploy);

  fs::TimeFn now = [&sim] { return static_cast<std::uint64_t>(sim.Now()); };

  std::vector<ClientCtx> clients(static_cast<std::size_t>(config.clients));
  for (int i = 0; i < config.clients; ++i) {
    ClientCtx& ctx = clients[static_cast<std::size_t>(i)];
    ctx.channel = cluster.NewClientChannel();
    ctx.fsc = dep.make_client(*ctx.channel, now);
    std::string dir = "/c" + std::to_string(i);
    ctx.setup_chain.push_back(dir);
    for (int level = 1; level < config.depth; ++level) {
      dir += "/d" + std::to_string(level);
      ctx.setup_chain.push_back(dir);
    }
    ctx.workdir = dir;
  }

  // Setup phase (not measured): each client builds its directory chain.
  {
    sim::RunStats setup_stats;
    std::vector<std::unique_ptr<sim::ClosedLoopClient>> drivers;
    for (ClientCtx& ctx : clients) {
      auto source = [&ctx, next = std::size_t{0}](net::Channel&) mutable
          -> std::optional<sim::ClosedLoopClient::Op> {
        if (next >= ctx.setup_chain.size()) return std::nullopt;
        std::string path = ctx.setup_chain[next++];
        return sim::ClosedLoopClient::Op{
            ctx.fsc->Mkdir(std::move(path), fs::kDefaultDirMode), -1};
      };
      drivers.push_back(std::make_unique<sim::ClosedLoopClient>(
          &cluster, ctx.channel.get(), std::move(source), &setup_stats));
    }
    for (auto& d : drivers) d->Start();
    sim.Run();
  }

  MdtestResult result;
  for (fs::FsOp op : config.phases) {
    sim::RunStats stats =
        RunPhase(&sim, &cluster, &clients, op, config.items_per_client,
                 config.readdir_repeat, config.io_bytes);
    PhaseResult phase;
    phase.op = op;
    phase.ops = stats.total_ops();
    phase.errors = stats.TotalErrors();
    phase.iops = stats.Throughput();
    phase.latency = stats.Latency(static_cast<int>(op));
    result.phases.push_back(std::move(phase));
  }
  result.total_events = sim.EventsProcessed();
  return result;
}

ClientSweepResult FindOptimalClients(MdtestConfig base, fs::FsOp op,
                                     const std::vector<int>& candidates) {
  ClientSweepResult result;
  base.phases = {op};
  for (int clients : candidates) {
    MdtestConfig cfg = base;
    cfg.clients = clients;
    const MdtestResult run = RunMdtest(cfg);
    const PhaseResult* phase = run.Phase(op);
    const double iops = phase != nullptr ? phase->iops : 0;
    result.sweep.emplace_back(clients, iops);
    if (iops > result.best_iops) {
      result.best_iops = iops;
      result.best_clients = clients;
    }
  }
  return result;
}

}  // namespace loco::bench
