// Fixed-width console table for benchmark output: every bench binary prints
// the rows/series of the paper figure it reproduces through this.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace loco::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const;

  // Numeric formatting helpers.
  static std::string Num(double v, int precision = 1);
  static std::string Iops(double v);        // "123.4K" style
  static std::string Micros(double nanos);  // ns -> "12.3us"

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Section banner: "==== Figure 6: ... ====".
void PrintBanner(const std::string& title, const std::string& subtitle = {});

}  // namespace loco::bench
