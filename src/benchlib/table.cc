#include "benchlib/table.h"

#include <algorithm>

namespace loco::bench {

void Table::Print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      line += "  ";
      line += cell;
      line.append(widths[c] - cell.size() + (c + 1 < widths.size() ? 0 : 0), ' ');
    }
    std::printf("%s\n", line.c_str());
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += "  ";
    rule.append(widths[c], '-');
  }
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Iops(double v) {
  char buf[64];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

std::string Table::Micros(double nanos) {
  char buf[64];
  if (nanos >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", nanos / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", nanos / 1e3);
  }
  return buf;
}

void PrintBanner(const std::string& title, const std::string& subtitle) {
  std::printf("\n==== %s ====\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
}

}  // namespace loco::bench
