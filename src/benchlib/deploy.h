// Deployment of a file system onto a SimCluster (or, for tests, any node
// registry): instantiates the metadata servers, object stores, and a client
// factory for one of the evaluated systems.
//
// Node layout mirrors the paper's testbed: N metadata nodes plus dedicated
// object/data nodes.  For LocoFS the single DMS is co-hosted on metadata
// node 0 alongside that node's FMS (the paper's "one metadata server"
// configuration runs both roles on the one node); a MuxHandler routes the
// disjoint opcode ranges to the right service.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/client.h"
#include "baselines/flavors.h"
#include "core/client.h"
#include "core/dms.h"
#include "core/fms.h"
#include "core/object_store.h"
#include "fs/client.h"
#include "net/resilience.h"
#include "net/tcp.h"
#include "sim/transport.h"

namespace loco::bench {

// The systems the paper evaluates (graph legends of Figs. 6-13).
enum class System {
  kLocoC,     // LocoFS with client cache
  kLocoNC,    // LocoFS without client cache
  kLocoCF,    // LocoFS with coupled file metadata (Fig. 11 ablation)
  kIndexFs,
  kCephFs,
  kGluster,
  kLustreD1,
  kLustreD2,
};

std::string_view SystemName(System system) noexcept;
bool IsLocoFs(System system) noexcept;

// Routes disjoint opcode ranges to different handlers on one node.
class MuxHandler final : public net::RpcHandler {
 public:
  void Route(std::uint16_t lo, std::uint16_t hi, net::RpcHandler* handler) {
    routes_.push_back(Route_{lo, hi, handler});
  }
  net::RpcResponse Handle(std::uint16_t opcode, std::string_view payload) override {
    for (const Route_& r : routes_) {
      if (opcode >= r.lo && opcode <= r.hi) return r.handler->Handle(opcode, payload);
    }
    return net::RpcResponse{ErrCode::kUnsupported, {}};
  }

 private:
  struct Route_ {
    std::uint16_t lo, hi;
    net::RpcHandler* handler;
  };
  std::vector<Route_> routes_;
};

// A deployed file system: owns every server-side object; hands out clients.
struct Deployment {
  System system;
  std::vector<std::unique_ptr<net::RpcHandler>> handlers;  // all owned servers
  std::vector<std::unique_ptr<MuxHandler>> muxes;
  std::vector<net::NodeId> metadata_nodes;
  std::vector<net::NodeId> object_nodes;

  // Build one client-process library over a channel.
  std::function<std::unique_ptr<fs::FileSystemClient>(net::Channel&, fs::TimeFn)>
      make_client;

  // Introspection (set for LocoFS deployments).
  core::DirectoryMetadataServer* dms = nullptr;
  std::vector<core::FileMetadataServer*> fms;
  std::vector<baselines::NsServer*> ns_servers;
};

struct DeployOptions {
  int metadata_servers = 1;
  int object_servers = 2;
  // LocoFS: DMS store backend (Fig. 14 compares kBTree vs kHash).
  kv::KvBackend dms_backend = kv::KvBackend::kBTree;
  // Object store device.
  core::DeviceProfile object_device{60'000, 450e6};
  // See ObjectStoreServer::Options::retain_data.
  bool object_retain_data = true;
  // LocoFS client d-inode lease duration (ns); 0 disables caching entirely
  // even for System::kLocoC (ablation knob).
  std::uint64_t loco_lease_ns = 30ull * 1'000'000'000;
};

// Deploy onto a simulated cluster (registers servers as SimCluster nodes).
Deployment Deploy(System system, sim::SimCluster* cluster,
                  const DeployOptions& options);

// ---------------------------------------------------------------------------
// Remote (TCP) deployments — connect to already-running daemons instead of
// instantiating servers in this process (docs/NET.md).

// Daemon addresses for one LocoFS deployment, each a "host:port" string.
struct RemoteEndpoints {
  std::string dms;
  std::vector<std::string> fms;
  std::vector<std::string> object_stores;
};

// Parse a `--connect` spec: comma-separated `role=host:port` entries with
// roles dms / fms / osd in any order, e.g.
//   dms=127.0.0.1:9000,fms=127.0.0.1:9001,fms=127.0.0.1:9002,osd=127.0.0.1:9100
// Requires exactly one dms and at least one each of fms and osd.
Result<RemoteEndpoints> ParseConnectSpec(std::string_view spec);

struct RemoteOptions {
  bool cache_enabled = true;
  std::uint64_t lease_ns = 30ull * 1'000'000'000;
  net::TcpChannelOptions channel;
  // Client resilience layer (net/resilience.h): retry with full-jitter
  // backoff plus a per-endpoint circuit breaker, wrapped around the TCP
  // channel.  Safe by default because the daemons deduplicate idempotent
  // mutations server-side (net::DedupWindow) — a retried Create/Mkdir
  // replays the cached response instead of double-applying.
  bool resilience = true;
  net::ResilienceOptions resilience_options;
};

// A client-side view of a remote deployment: the TCP channel with every
// daemon registered (dms = node 0, fms = 1..N in list order — match each
// daemon's --sid — object stores = 1000+i) plus the matching client config.
struct RemoteDeployment {
  std::unique_ptr<net::TcpChannel> channel;
  // Present when RemoteOptions::resilience is on; wraps *channel.
  std::unique_ptr<net::ResilientChannel> resilient;
  core::LocoClient::Config config;

  // The channel clients should issue calls on (the resilient wrapper when
  // enabled, the bare TCP channel otherwise).
  net::Channel& rpc() const noexcept {
    return resilient ? static_cast<net::Channel&>(*resilient)
                     : static_cast<net::Channel&>(*channel);
  }

  // Build a client-process library over rpc() (one per logical client;
  // `now` supplies operation timestamps, e.g. wall-clock nanoseconds).
  std::unique_ptr<fs::FileSystemClient> MakeClient(fs::TimeFn now) const;
};

Result<RemoteDeployment> ConnectRemote(const RemoteEndpoints& endpoints,
                                       const RemoteOptions& options = {});

// ---------------------------------------------------------------------------
// Metrics exposition for benchmark binaries.
//
// Every bench accepts `--metrics-out <file>.json` (or `--metrics-out=...`)
// and, when given, writes the process-wide MetricsRegistry as JSON on exit:
// per-opcode RPC counters and latency histograms, per-server op counters,
// KV-store gauges, and client cache statistics.

// Extract the flag from argv (removing it, so downstream argument parsers
// such as google-benchmark never see it).  Returns "" when absent.
std::string MetricsOutPath(int& argc, char** argv);

// Serialize common::MetricsRegistry::Default() to `path`; false on I/O error.
bool WriteMetricsJson(const std::string& path);

// Scope guard a bench main() creates first thing: parses the flag and dumps
// the registry when the run finishes.
class MetricsDump {
 public:
  MetricsDump(int& argc, char** argv) : path_(MetricsOutPath(argc, argv)) {}
  ~MetricsDump();
  MetricsDump(const MetricsDump&) = delete;
  MetricsDump& operator=(const MetricsDump&) = delete;

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

}  // namespace loco::bench
