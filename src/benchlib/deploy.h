// Deployment of a file system onto a SimCluster (or, for tests, any node
// registry): instantiates the metadata servers, object stores, and a client
// factory for one of the evaluated systems.
//
// Node layout mirrors the paper's testbed: N metadata nodes plus dedicated
// object/data nodes.  For LocoFS the single DMS is co-hosted on metadata
// node 0 alongside that node's FMS (the paper's "one metadata server"
// configuration runs both roles on the one node); a MuxHandler routes the
// disjoint opcode ranges to the right service.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/client.h"
#include "baselines/flavors.h"
#include "common/metrics.h"
#include "core/client.h"
#include "core/dms.h"
#include "core/fms.h"
#include "core/object_store.h"
#include "fs/client.h"
#include "sim/transport.h"

namespace loco::bench {

// The systems the paper evaluates (graph legends of Figs. 6-13).
enum class System {
  kLocoC,     // LocoFS with client cache
  kLocoNC,    // LocoFS without client cache
  kLocoCF,    // LocoFS with coupled file metadata (Fig. 11 ablation)
  kIndexFs,
  kCephFs,
  kGluster,
  kLustreD1,
  kLustreD2,
};

std::string_view SystemName(System system) noexcept;
bool IsLocoFs(System system) noexcept;

// Routes disjoint opcode ranges to different handlers on one node.  Forwards
// the full HandlerContext so context-aware services behind the mux (the DMS
// lease/push plane keys on ctx.client_id) see the caller's identity.
class MuxHandler final : public net::RpcHandler {
 public:
  void Route(std::uint16_t lo, std::uint16_t hi, net::RpcHandler* handler) {
    routes_.push_back(Route_{lo, hi, handler});
  }
  net::RpcResponse Handle(std::uint16_t opcode, std::string_view payload) override {
    return HandleCtx(opcode, payload, net::HandlerContext{});
  }
  net::RpcResponse HandleCtx(std::uint16_t opcode, std::string_view payload,
                             const net::HandlerContext& ctx) override {
    for (const Route_& r : routes_) {
      if (opcode >= r.lo && opcode <= r.hi) {
        return r.handler->HandleCtx(opcode, payload, ctx);
      }
    }
    return net::RpcResponse{ErrCode::kUnsupported, {}};
  }

 private:
  struct Route_ {
    std::uint16_t lo, hi;
    net::RpcHandler* handler;
  };
  std::vector<Route_> routes_;
};

// A deployed file system: owns every server-side object; hands out clients.
struct Deployment {
  System system;
  std::vector<std::unique_ptr<net::RpcHandler>> handlers;  // all owned servers
  std::vector<std::unique_ptr<MuxHandler>> muxes;
  std::vector<net::NodeId> metadata_nodes;
  std::vector<net::NodeId> object_nodes;

  // Build one client-process library over a channel.
  std::function<std::unique_ptr<fs::FileSystemClient>(net::Channel&, fs::TimeFn)>
      make_client;

  // Introspection (set for LocoFS deployments).  `dms` is shard 0;
  // `dms_shards` lists every shard in shard order.
  core::DirectoryMetadataServer* dms = nullptr;
  std::vector<core::DirectoryMetadataServer*> dms_shards;
  std::vector<core::FileMetadataServer*> fms;
  std::vector<baselines::NsServer*> ns_servers;
};

struct DeployOptions {
  int metadata_servers = 1;
  int object_servers = 2;
  // LocoFS: number of DMS shards (docs/SHARDING.md).  Shard i is co-hosted
  // on metadata node i while nodes last; extra shards get dedicated nodes.
  int dms_shards = 1;
  // LocoFS: DMS store backend (Fig. 14 compares kBTree vs kHash).
  kv::KvBackend dms_backend = kv::KvBackend::kBTree;
  // Object store device.
  core::DeviceProfile object_device{60'000, 450e6};
  // See ObjectStoreServer::Options::retain_data.
  bool object_retain_data = true;
  // LocoFS client d-inode lease duration (ns); 0 disables caching entirely
  // even for System::kLocoC (ablation knob).
  std::uint64_t loco_lease_ns = 30ull * 1'000'000'000;
};

// Deploy onto a simulated cluster (registers servers as SimCluster nodes).
Deployment Deploy(System system, sim::SimCluster* cluster,
                  const DeployOptions& options);

// Remote (TCP) deployments: use core::ClientOptions + core::Connect()
// (core/connect.h) — the former bench::ConnectRemote plumbing lives there
// now, unified with the notify plane.

// ---------------------------------------------------------------------------
// Metrics exposition for benchmark binaries.
//
// Every bench accepts `--metrics-out <file>.json` (or `--metrics-out=...`)
// and, when given, writes the process-wide MetricsRegistry as JSON on exit:
// per-opcode RPC counters and latency histograms, per-server op counters,
// KV-store gauges, and client cache statistics.

// Extract the flag from argv (removing it, so downstream argument parsers
// such as google-benchmark never see it).  Returns "" when absent.
std::string MetricsOutPath(int& argc, char** argv);

// Serialize common::MetricsRegistry::Default() to `path`; false on I/O error.
bool WriteMetricsJson(const std::string& path);

// Scope guard a bench main() creates first thing: parses the flag and dumps
// the registry when the run finishes.
//
// Sweeping benches additionally call Phase(label) at each sweep-point
// boundary: the dump then becomes {"phases": {label: <delta>...},
// "totals": <full registry>} where each delta holds only the counters and
// histograms touched during that phase (per-bucket subtraction), so one run
// yields per-configuration metrics instead of one conflated total.
class MetricsDump {
 public:
  MetricsDump(int& argc, char** argv);
  ~MetricsDump();
  MetricsDump(const MetricsDump&) = delete;
  MetricsDump& operator=(const MetricsDump&) = delete;

  // Close the current phase: everything recorded since the previous Phase()
  // call (or since construction) is dumped under `label`.  No-op when
  // --metrics-out was not given.
  void Phase(const std::string& label);

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  common::MetricsRegistry::Snapshot last_;
  std::vector<std::pair<std::string, std::string>> phases_;
};

}  // namespace loco::bench
