// mdtest-style workload harness over the simulator.
//
// Reproduces the paper's measurement methodology (§4.1.2): N client
// processes, each working in its own directory subtree ("mdtest -u"),
// drive one metadata operation type per phase; phases are barrier-separated
// exactly like mdtest's MPI phases.  Latency and IOPS are virtual-time
// measurements from the closed-loop drivers.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "benchlib/deploy.h"
#include "common/histogram.h"
#include "fs/types.h"
#include "sim/client.h"

namespace loco::bench {

struct MdtestConfig {
  System system = System::kLocoC;
  int metadata_servers = 1;
  int clients = 1;
  int items_per_client = 1000;
  // Depth of each client's working directory below its private root
  // ("/cN/d1/.../dK"); 1 = files directly under /cN (mdtest default-ish).
  int depth = 1;
  std::vector<fs::FsOp> phases;
  int readdir_repeat = 10;       // iterations of the readdir phase
  std::uint64_t io_bytes = 4096; // write/read phase transfer size
  sim::ClusterConfig cluster;
  DeployOptions deploy;
};

struct PhaseResult {
  fs::FsOp op;
  std::uint64_t ops = 0;
  std::uint64_t errors = 0;
  double iops = 0;
  common::Histogram latency;
};

struct MdtestResult {
  std::vector<PhaseResult> phases;
  std::uint64_t total_events = 0;  // simulator events processed

  const PhaseResult* Phase(fs::FsOp op) const {
    for (const PhaseResult& p : phases) {
      if (p.op == op) return &p;
    }
    return nullptr;
  }
};

MdtestResult RunMdtest(const MdtestConfig& config);

// Table 3 methodology: sweep the client count and report the sweep plus the
// count that maximizes IOPS for `op`.
struct ClientSweepResult {
  std::vector<std::pair<int, double>> sweep;  // (clients, iops)
  int best_clients = 0;
  double best_iops = 0;
};

ClientSweepResult FindOptimalClients(MdtestConfig base, fs::FsOp op,
                                     const std::vector<int>& candidates);

}  // namespace loco::bench
