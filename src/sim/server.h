// SimServer: queueing model of one metadata/data server.
//
// A server owns an RpcHandler and `slots` parallel service slots with a
// shared FIFO queue.  At dequeue the handler executes *for real* (mutating
// its real KV stores); its measured CPU time — scaled by ServerConfig — plus
// the fixed per-request cost becomes the virtual service time.  Completion
// is delivered via callback at the virtual completion instant.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "common/histogram.h"
#include "net/rpc.h"
#include "sim/config.h"
#include "sim/simulation.h"

namespace loco::sim {

class SimServer {
 public:
  using Completion = std::function<void(net::RpcResponse)>;

  SimServer(Simulation* simulation, net::NodeId id, net::RpcHandler* handler,
            const ServerConfig& config)
      : sim_(simulation), id_(id), handler_(handler), config_(config),
        free_slots_(config.slots) {}

  net::NodeId id() const noexcept { return id_; }

  // Called at request-arrival virtual time.
  void Enqueue(std::uint16_t opcode, std::string payload, Completion done);

  // Per-request extra service time provider (e.g. the transport charges
  // connection-state overhead proportional to connected clients).
  void SetExtraServiceFn(std::function<Nanos()> fn) { extra_fn_ = std::move(fn); }

  std::uint64_t requests_served() const noexcept { return served_; }
  const common::Histogram& queue_wait() const noexcept { return queue_wait_; }
  const common::Histogram& service_time() const noexcept { return service_; }
  // Total virtual busy time across slots (for utilization reporting).
  Nanos busy_time() const noexcept { return busy_; }

 private:
  struct Pending {
    std::uint16_t opcode;
    std::string payload;
    Completion done;
    Nanos enqueued_at;
  };

  void StartService(Pending pending);
  void OnSlotFree();

  Simulation* sim_;
  net::NodeId id_;
  net::RpcHandler* handler_;
  ServerConfig config_;
  int free_slots_;
  std::deque<Pending> queue_;
  std::uint64_t served_ = 0;
  Nanos busy_ = 0;
  std::function<Nanos()> extra_fn_;
  common::Histogram queue_wait_;
  common::Histogram service_;
};

}  // namespace loco::sim
