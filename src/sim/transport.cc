#include "sim/transport.h"

#include <cstdio>

namespace loco::sim {

std::string ClusterConfig::Describe() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "net{rtt=%.0fus bw=%.1fGbps} server{slots=%d fixed=%.1fus "
                "cpu_scale=%.1f} client{per_op=%.1fus per_conn=%.2fus "
                "setup=%.0fus node_slots=%d} seed=%llu",
                common::ToMicros(net.rtt), net.bandwidth_bps / 1e9,
                server.slots, common::ToMicros(server.fixed_request_ns),
                server.cpu_scale, common::ToMicros(client.per_op_ns),
                common::ToMicros(client.per_connection_ns),
                common::ToMicros(client.connection_setup_ns),
                client.slots_per_client_node,
                static_cast<unsigned long long>(seed));
  return buf;
}

SimChannel::SimChannel(SimCluster* cluster, int client_node)
    : cluster_(cluster), client_node_(client_node) {}

Nanos SimChannel::IssueCost() const noexcept {
  const ClientConfig& cc = cluster_->config().client;
  const double oversub = cluster_->Oversubscription(client_node_);
  const Nanos base =
      cc.per_op_ns +
      static_cast<Nanos>(connections_.size()) * cc.per_connection_ns;
  return static_cast<Nanos>(static_cast<double>(base) * oversub);
}

void SimChannel::CallAsync(net::NodeId server, std::uint16_t opcode,
                           std::string payload,
                           std::function<void(net::RpcResponse)> done) {
  Simulation* sim = cluster_->sim();
  const NetConfig& net_cfg = cluster_->config().net;

  // Virtual-time RPC metrics: latency is issue-to-delivery on the sim clock;
  // bytes include the 16-byte framing header modeled below.
  const common::RpcMetricsTable::PerOp* m =
      &cluster_->rpc_metrics().For(opcode);
  m->calls->Add();
  m->bytes_sent->Add(payload.size() + 16);
  const Nanos issued_at = sim->Now();
  done = [m, sim, issued_at,
          inner = std::move(done)](net::RpcResponse resp) mutable {
    if (!resp.ok()) m->errors->Add();
    m->bytes_received->Add(resp.payload.size() + 16);
    m->latency->Record(sim->Now() - issued_at);
    inner(std::move(resp));
  };

  Nanos send_delay = 0;
  if (connections_.insert(server).second) {
    // First contact: TCP connect handshake plus any oversubscription.
    send_delay += static_cast<Nanos>(
        static_cast<double>(cluster_->config().client.connection_setup_ns) *
        cluster_->Oversubscription(client_node_));
    cluster_->NoteConnection(server);
  }
  // Request framing: opcode + length headers alongside the payload.
  send_delay += net_cfg.OneWay(payload.size() + 16);

  SimServer* target = cluster_->server(server);
  sim->Schedule(send_delay, [this, sim, target, opcode,
                             payload = std::move(payload),
                             done = std::move(done)]() mutable {
    target->Enqueue(opcode, std::move(payload),
                    [this, sim, done = std::move(done)](net::RpcResponse resp) {
                      const Nanos back = cluster_->config().net.OneWay(
                          resp.payload.size() + 16);
                      sim->Schedule(back, [done = std::move(done),
                                           resp = std::move(resp)]() mutable {
                        done(std::move(resp));
                      });
                    });
  });
}

void SimChannel::CallAsyncMeta(net::NodeId server, std::uint16_t opcode,
                               std::string payload, const net::CallMeta& meta,
                               std::function<void(net::RpcResponse)> done) {
  if (cluster_->tracing()) {
    Simulation* sim = cluster_->sim();
    const Nanos issued = sim->Now();
    done = [cluster = cluster_, sim, issued, trace_id = meta.trace_id, server,
            opcode, inner = std::move(done)](net::RpcResponse resp) mutable {
      cluster->RecordTrace(SimCluster::OpTrace{trace_id, opcode, server,
                                               issued, sim->Now(), resp.code});
      inner(std::move(resp));
    };
  }
  CallAsync(server, opcode, std::move(payload), std::move(done));
}

void SimCluster::RecordTrace(const OpTrace& trace) {
  if (trace_capacity_ == 0) return;
  traces_.push_back(trace);
  while (traces_.size() > trace_capacity_) {
    traces_.pop_front();
    ++traces_dropped_;
  }
}

SimCluster::SimCluster(Simulation* simulation, ClusterConfig config,
                       int client_nodes)
    : sim_(simulation), config_(config),
      client_nodes_(client_nodes > 0 ? client_nodes : 1),
      clients_per_node_(static_cast<std::size_t>(client_nodes_), 0) {}

net::NodeId SimCluster::AddServer(net::RpcHandler* handler) {
  const net::NodeId id = static_cast<net::NodeId>(servers_.size());
  servers_.push_back(std::make_unique<SimServer>(sim_, id, handler,
                                                 config_.server));
  connections_per_server_.push_back(0);
  // Per-request connection-state overhead grows with connected clients
  // (epoll sets, socket buffers): the server-side half of Table 3's
  // client-count optimum.
  SimServer* server = servers_.back().get();
  server->SetExtraServiceFn([this, id]() -> Nanos {
    return static_cast<Nanos>(connections_per_server_[id]) * 40;  // 40ns/conn
  });
  return id;
}

std::unique_ptr<SimChannel> SimCluster::NewClientChannel() {
  const int node = total_clients_ % client_nodes_;
  ++clients_per_node_[static_cast<std::size_t>(node)];
  ++total_clients_;
  return std::make_unique<SimChannel>(this, node);
}

double SimCluster::Oversubscription(int node) const noexcept {
  const int clients = clients_per_node_[static_cast<std::size_t>(node)];
  const int slots = config_.client.slots_per_client_node;
  return clients > slots ? static_cast<double>(clients) / slots : 1.0;
}

void SimCluster::NoteConnection(net::NodeId server) {
  if (server < connections_per_server_.size()) {
    ++connections_per_server_[server];
  }
}

}  // namespace loco::sim
