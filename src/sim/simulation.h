// Discrete-event simulation core: a virtual clock and an event queue.
//
// The simulator substitutes for the paper's 16-node Ethernet cluster
// (DESIGN.md §2).  Events are closures ordered by (virtual time, insertion
// sequence); the sequence tie-break makes runs bit-for-bit deterministic for
// a given seed and schedule, which the determinism tests assert.
//
// Single-threaded by design: handlers run inline inside events, so service
// code needs no locking in simulation mode.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace loco::sim {

using common::Nanos;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Nanos Now() const noexcept { return now_; }

  // Schedule `fn` to run at Now() + delay (delay < 0 clamps to now).
  void Schedule(Nanos delay, std::function<void()> fn) {
    ScheduleAt(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  // Schedule `fn` at an absolute virtual time (>= Now()).
  void ScheduleAt(Nanos when, std::function<void()> fn) {
    if (when < now_) when = now_;
    queue_.push(Event{when, next_seq_++, std::move(fn)});
  }

  // Run events until the queue drains.  Returns the number processed.
  std::uint64_t Run() {
    std::uint64_t n = 0;
    while (!queue_.empty()) {
      Step();
      ++n;
    }
    return n;
  }

  // Run events with time <= deadline; stops with the clock at the deadline
  // (or at the last event, whichever is later processed).
  std::uint64_t RunUntil(Nanos deadline) {
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.top().when <= deadline) {
      Step();
      ++n;
    }
    if (now_ < deadline) now_ = deadline;
    return n;
  }

  bool Empty() const noexcept { return queue_.empty(); }
  std::uint64_t EventsProcessed() const noexcept { return processed_; }

 private:
  struct Event {
    Nanos when;
    std::uint64_t seq;
    std::function<void()> fn;

    // priority_queue is a max-heap: invert so the earliest (when, seq) wins.
    bool operator<(const Event& other) const noexcept {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  void Step() {
    // Moving out of the queue requires a mutable top; copy the closure.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++processed_;
    ev.fn();
  }

  Nanos now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event> queue_;
};

}  // namespace loco::sim
