#include "sim/server.h"

namespace loco::sim {

void SimServer::Enqueue(std::uint16_t opcode, std::string payload,
                        Completion done) {
  if (config_.max_queue != 0 && queue_.size() >= config_.max_queue) {
    done(net::RpcResponse{ErrCode::kUnavailable, {}});
    return;
  }
  Pending pending{opcode, std::move(payload), std::move(done), sim_->Now()};
  if (free_slots_ > 0) {
    --free_slots_;
    StartService(std::move(pending));
  } else {
    queue_.push_back(std::move(pending));
  }
}

void SimServer::StartService(Pending pending) {
  queue_wait_.Record(sim_->Now() - pending.enqueued_at);

  // Execute the handler for real and measure its CPU cost.
  common::CpuTimer timer;
  net::RpcResponse resp = handler_->Handle(pending.opcode, pending.payload);
  const Nanos measured = timer.ElapsedNanos();

  Nanos service = config_.fixed_request_ns;
  if (config_.mode == ServiceTimeMode::kMeasured) {
    service += static_cast<Nanos>(static_cast<double>(measured) * config_.cpu_scale);
  } else {
    service += config_.fixed_service_ns;
  }
  service += resp.extra_service_ns;
  if (extra_fn_) service += extra_fn_();

  service_.Record(service);
  busy_ += service;
  ++served_;

  // Deliver the response and free the slot at virtual completion time.
  sim_->Schedule(service, [this, resp = std::move(resp),
                           done = std::move(pending.done)]() mutable {
    done(std::move(resp));
    OnSlotFree();
  });
}

void SimServer::OnSlotFree() {
  if (!queue_.empty()) {
    Pending next = std::move(queue_.front());
    queue_.pop_front();
    StartService(std::move(next));
  } else {
    ++free_slots_;
  }
}

}  // namespace loco::sim
