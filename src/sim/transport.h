// SimCluster: the simulated deployment — servers, client channels, and the
// network model stitching them together on the virtual clock.
//
// Topology mirrors the paper's testbed: metadata servers registered with
// AddServer, client processes packed round-robin onto a fixed set of client
// nodes (Table 2: 6 SuperMicro nodes, 48 hardware threads each).  A client
// node oversubscribed beyond its slots inflates its clients' CPU costs —
// the effect behind the paper's "optimal number of clients" (Table 3).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "common/metrics.h"
#include "net/rpc.h"
#include "sim/config.h"
#include "sim/server.h"
#include "sim/simulation.h"

namespace loco::sim {

class SimCluster;

// One client process's view of the network.  Tracks which servers it has
// opened connections to; the first message to a server pays connection
// setup, and every message pays a per-open-connection bookkeeping cost —
// the paper's "more connections slow down the client" effect (§4.2.1).
class SimChannel final : public net::Channel {
 public:
  SimChannel(SimCluster* cluster, int client_node);

  void CallAsync(net::NodeId server, std::uint16_t opcode, std::string payload,
                 std::function<void(net::RpcResponse)> done) override;

  // Metadata-aware entry point: threads the caller's trace id into the
  // cluster's op-trace sink (when enabled), so every RPC leg issued on
  // behalf of one client operation is attributable in virtual time.  The
  // network/CPU model is unchanged — this wraps CallAsync.
  void CallAsyncMeta(net::NodeId server, std::uint16_t opcode,
                     std::string payload, const net::CallMeta& meta,
                     std::function<void(net::RpcResponse)> done) override;

  int client_node() const noexcept { return client_node_; }
  std::size_t connection_count() const noexcept { return connections_.size(); }

  // CPU cost this client pays to issue one RPC right now (exposed so the
  // closed-loop driver can include it in op pacing).
  Nanos IssueCost() const noexcept;

 private:
  SimCluster* cluster_;
  int client_node_;
  std::set<net::NodeId> connections_;
};

class SimCluster {
 public:
  SimCluster(Simulation* simulation, ClusterConfig config,
             int client_nodes = 6);

  // Register a server hosting `handler`; returns its node id.
  net::NodeId AddServer(net::RpcHandler* handler);

  // Create a channel for one new client process (assigned round-robin to a
  // client node).
  std::unique_ptr<SimChannel> NewClientChannel();

  SimServer* server(net::NodeId id) { return servers_.at(id).get(); }
  std::size_t server_count() const noexcept { return servers_.size(); }
  Simulation* sim() noexcept { return sim_; }
  const ClusterConfig& config() const noexcept { return config_; }

  // CPU inflation factor for clients on `node` (>= 1).
  double Oversubscription(int node) const noexcept;

  int total_clients() const noexcept { return total_clients_; }

  // Per-opcode RPC metrics shared by every channel of this cluster, measured
  // in virtual time (request issue to response delivery on the sim clock).
  common::RpcMetricsTable& rpc_metrics() noexcept { return rpc_metrics_; }

  // Per-op trace sink: one record per RPC leg issued through CallAsyncMeta,
  // keyed by the caller's trace id (net::CallMeta).  The simulation is
  // single-threaded, so the ring needs no locking; when full, the oldest
  // records are dropped (and counted).  Disabled by default — tracing every
  // RPC of a million-op benchmark would swamp memory.
  struct OpTrace {
    std::uint64_t trace_id = 0;
    std::uint16_t opcode = 0;
    net::NodeId server = 0;
    Nanos issued = 0;
    Nanos completed = 0;
    ErrCode code = ErrCode::kOk;
  };
  void EnableTracing(std::size_t capacity = 4096) {
    trace_capacity_ = capacity;
  }
  bool tracing() const noexcept { return trace_capacity_ > 0; }
  void RecordTrace(const OpTrace& trace);
  const std::deque<OpTrace>& traces() const noexcept { return traces_; }
  std::uint64_t traces_dropped() const noexcept { return traces_dropped_; }

  // Connection bookkeeping (driven by SimChannel).
  void NoteConnection(net::NodeId server);
  std::uint64_t connections_to(net::NodeId server) const {
    return server < connections_per_server_.size()
               ? connections_per_server_[server] : 0;
  }

 private:
  Simulation* sim_;
  ClusterConfig config_;
  std::vector<std::unique_ptr<SimServer>> servers_;
  std::vector<std::uint64_t> connections_per_server_;
  int client_nodes_;
  std::vector<int> clients_per_node_;
  int total_clients_ = 0;
  std::size_t trace_capacity_ = 0;
  std::deque<OpTrace> traces_;
  std::uint64_t traces_dropped_ = 0;
  common::RpcMetricsTable rpc_metrics_{&common::MetricsRegistry::Default(),
                                       "sim", "virtual_ns"};
};

}  // namespace loco::sim
