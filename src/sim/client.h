// Closed-loop simulated client driver and run statistics.
//
// A ClosedLoopClient owns one SimChannel (one client process) and replays
// operations from an OpSource back-to-back: the next op is issued as soon as
// the previous completes, plus the client-side CPU cost of issuing (which
// inflates under client-node oversubscription).  This is the mdtest process
// model used by every throughput experiment.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/histogram.h"
#include "net/task.h"
#include "sim/transport.h"

namespace loco::sim {

// Aggregated results of a simulated run, shared by all clients of the run.
class RunStats {
 public:
  void Record(int op_type, Nanos latency, ErrCode code) {
    auto& slot = per_type_[op_type];
    slot.latency.Record(latency);
    if (code != ErrCode::kOk) ++slot.errors;
    ++total_ops_;
  }

  void NoteIssue(Nanos now) {
    if (first_issue_ < 0) first_issue_ = now;
  }
  void NoteCompletion(Nanos now) { last_completion_ = now; }

  const common::Histogram& Latency(int op_type) const {
    static const common::Histogram kEmpty;
    const auto it = per_type_.find(op_type);
    return it == per_type_.end() ? kEmpty : it->second.latency;
  }
  std::uint64_t Errors(int op_type) const {
    const auto it = per_type_.find(op_type);
    return it == per_type_.end() ? 0 : it->second.errors;
  }
  std::uint64_t TotalErrors() const {
    std::uint64_t n = 0;
    for (const auto& [t, s] : per_type_) {
      (void)t;
      n += s.errors;
    }
    return n;
  }

  std::uint64_t total_ops() const noexcept { return total_ops_; }
  Nanos makespan() const noexcept {
    return first_issue_ < 0 ? 0 : last_completion_ - first_issue_;
  }
  // Completed operations per second of virtual time.
  double Throughput() const noexcept {
    const Nanos span = makespan();
    return span > 0 ? static_cast<double>(total_ops_) /
                          common::ToSeconds(span)
                    : 0.0;
  }

 private:
  struct PerType {
    common::Histogram latency;
    std::uint64_t errors = 0;
  };
  std::map<int, PerType> per_type_;
  std::uint64_t total_ops_ = 0;
  Nanos first_issue_ = -1;
  Nanos last_completion_ = 0;
};

class ClosedLoopClient {
 public:
  struct Op {
    net::Task<Status> task;
    int type = 0;
  };
  // Produces the next operation bound to this client's channel, or nullopt
  // when the client's workload is exhausted.
  using OpSource = std::function<std::optional<Op>(net::Channel&)>;

  // Owns a fresh channel.
  ClosedLoopClient(SimCluster* cluster, OpSource source, RunStats* stats)
      : cluster_(cluster),
        owned_channel_(cluster->NewClientChannel()),
        channel_(owned_channel_.get()),
        source_(std::move(source)),
        stats_(stats) {}

  // Borrows `channel` (caller keeps it alive): lets one client process's
  // channel — and the FS-client state built over it, e.g. lease caches —
  // persist across multiple workload phases.
  ClosedLoopClient(SimCluster* cluster, SimChannel* channel, OpSource source,
                   RunStats* stats)
      : cluster_(cluster),
        channel_(channel),
        source_(std::move(source)),
        stats_(stats) {}

  // Schedule this client's first op at Now() + stagger.
  void Start(Nanos stagger = 0) {
    cluster_->sim()->Schedule(stagger, [this] { IssueNext(); });
  }

  bool Finished() const noexcept { return finished_; }
  net::Channel& channel() noexcept { return *channel_; }

 private:
  void IssueNext() {
    auto op = source_(*channel_);
    if (!op.has_value()) {
      finished_ = true;
      return;
    }
    Simulation* sim = cluster_->sim();
    stats_->NoteIssue(sim->Now());
    const Nanos t0 = sim->Now();
    const int type = op->type;
    // Client CPU to marshal and issue (inflated under oversubscription).
    // Tasks are move-only; std::function requires copyable captures, so the
    // task crosses the scheduling boundary behind a shared_ptr.
    auto task = std::make_shared<net::Task<Status>>(std::move(op->task));
    sim->Schedule(channel_->IssueCost(), [this, sim, t0, type, task]() {
      net::StartTask(std::move(*task), [this, sim, t0, type](Status status) {
        stats_->Record(type, sim->Now() - t0, status.code());
        stats_->NoteCompletion(sim->Now());
        IssueNext();
      });
    });
  }

  SimCluster* cluster_;
  std::unique_ptr<SimChannel> owned_channel_;
  SimChannel* channel_;
  OpSource source_;
  RunStats* stats_;
  bool finished_ = false;
};

}  // namespace loco::sim
