// Cluster, network, server and device cost models for the simulator.
//
// Defaults reproduce the paper's testbed (Table 2): 1 GbE with a measured
// round-trip time of 0.174 ms, metadata servers with 8 cores, clients on
// beefy 24-core nodes.  Every knob is a plain struct field so benchmarks can
// sweep them; ClusterConfig::Describe() prints the active configuration in
// every bench header (the Table 2 reproduction).
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"

namespace loco::sim {

using common::Nanos;

// Network latency/bandwidth model (per direction).
struct NetConfig {
  // Round-trip time between any two nodes.  Paper Fig. 6 normalizes to a
  // measured RTT of 0.174 ms on their 1 GbE fabric.
  Nanos rtt = 174 * common::kMicro;
  // Link bandwidth in bits per second (1 GbE).
  double bandwidth_bps = 1e9;
  // Per-message fixed software cost on the sender (syscall + NIC doorbell).
  Nanos per_message_ns = 2 * common::kMicro;

  // One-way latency for a message of `bytes` payload.
  Nanos OneWay(std::size_t bytes) const noexcept {
    const double transfer_s =
        bandwidth_bps > 0 ? static_cast<double>(bytes) * 8.0 / bandwidth_bps : 0;
    return rtt / 2 + per_message_ns +
           static_cast<Nanos>(transfer_s * 1e9);
  }
};

// How a SimServer converts handler execution into virtual service time.
enum class ServiceTimeMode {
  // Measure the handler's real CPU time each call (default: software path
  // length is observed, not scripted).
  kMeasured,
  // Charge `fixed_service_ns` regardless (determinism tests).
  kFixed,
};

struct ServerConfig {
  // Parallel service slots (the paper's metadata nodes have 8 cores).
  int slots = 8;
  // Per-request fixed CPU cost: RPC decode, kernel TCP stack, dispatch.
  // This is the dominant per-op server cost on the paper's 1 GbE / 2.5 GHz
  // Opteron testbed (their 100K-IOPS single-server LocoFS implies ~80 us of
  // busy time per op across 8 cores, of which the KV work itself is only a
  // few us) and the honest source of the "raw KV vs FS metadata" gap: the
  // raw KV is benchmarked in-process with no RPC.
  Nanos fixed_request_ns = 25 * common::kMicro;
  // Scale factor applied to measured handler CPU time, to map this host's
  // single modern core onto the paper's slower per-core testbed.
  double cpu_scale = 4.0;
  ServiceTimeMode mode = ServiceTimeMode::kMeasured;
  Nanos fixed_service_ns = 10 * common::kMicro;
  // Bound on the request queue; 0 = unbounded.  Overflow yields kUnavailable.
  std::size_t max_queue = 0;
};

// Client-side cost model.
struct ClientConfig {
  // Fixed CPU cost to issue one operation (marshalling, syscalls).
  Nanos per_op_ns = 4 * common::kMicro;
  // Extra per-op cost for every open connection the client maintains —
  // models the "more network connections slow down the client" effect the
  // paper reports for touch latency at higher server counts (§4.2.1): their
  // single-client touch latency grew by ~2 RTT from 1 to 16 servers.
  Nanos per_connection_ns = 15 * common::kMicro;
  // One-time cost to open a connection to a server it has not talked to.
  Nanos connection_setup_ns = 200 * common::kMicro;
  // How many client processes share one physical client node (Table 2: 48
  // hyper-threads per client node).  Beyond that, added clients contend.
  int slots_per_client_node = 48;
};

// Storage device cost model (Fig. 14 runs the DMS store on HDD vs SSD).
struct DeviceModel {
  std::string name = "ssd";
  Nanos per_io_ns = 60 * common::kMicro;   // seek / command overhead
  double bytes_per_sec = 450e6;            // sequential throughput

  Nanos Cost(std::uint64_t io_ops, std::uint64_t io_bytes) const noexcept {
    const double transfer_s = bytes_per_sec > 0
        ? static_cast<double>(io_bytes) / bytes_per_sec : 0;
    return static_cast<Nanos>(io_ops) * per_io_ns +
           static_cast<Nanos>(transfer_s * 1e9);
  }

  static DeviceModel Ssd() { return DeviceModel{"ssd", 60 * common::kMicro, 450e6}; }
  static DeviceModel Hdd() {
    return DeviceModel{"hdd", 8 * common::kMilli, 150e6};
  }
};

struct ClusterConfig {
  NetConfig net;
  ServerConfig server;
  ClientConfig client;
  std::uint64_t seed = 42;

  // Human-readable dump, printed by every bench (Table 2 stand-in).
  std::string Describe() const;
};

}  // namespace loco::sim
