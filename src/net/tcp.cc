#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <thread>

namespace loco::net {

namespace {

constexpr std::size_t kIoChunk = 64 * 1024;

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Wait for `events` on `fd` until the absolute steady-clock deadline.
// Returns >0 when ready, 0 on deadline, <0 on poll error.
int PollUntil(int fd, short events, common::Nanos deadline_abs) {
  for (;;) {
    const common::Nanos remaining = deadline_abs - common::CpuTimer::Now();
    if (remaining <= 0) return 0;
    struct pollfd pfd{fd, events, 0};
    // Round up so a sub-millisecond remainder still waits.
    const int timeout_ms =
        static_cast<int>(std::min<common::Nanos>((remaining + common::kMilli - 1) /
                                                     common::kMilli,
                                                 60'000));
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n > 0) return n;
    if (n < 0 && errno != EINTR) return -1;
  }
}

// One non-blocking connect attempt within the deadline; -1 on failure.
int ConnectOnce(const std::string& host, std::uint16_t port,
                common::Nanos deadline_abs) {
  struct addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  struct addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &res) != 0) {
    return -1;
  }
  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      fd = -1;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    if (errno == EINPROGRESS && PollUntil(fd, POLLOUT, deadline_abs) > 0) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 && err == 0) {
        break;
      }
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd >= 0 && IsSelfConnected(fd)) {
    ::close(fd);
    return -1;
  }
  if (fd >= 0) SetNoDelay(fd);
  return fd;
}

// Write all of `data` before the deadline.
Status SendAll(int fd, std::string_view data, common::Nanos deadline_abs) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int r = PollUntil(fd, POLLOUT, deadline_abs);
      if (r == 0) return ErrStatus(ErrCode::kTimeout, "send deadline");
      if (r < 0) return ErrStatus(ErrCode::kUnavailable, "poll failed");
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return ErrStatus(ErrCode::kUnavailable, "peer closed during send");
  }
  return OkStatus();
}

// Read until one complete frame is available.  `got_any` reports whether any
// response bytes arrived before a failure (reused-connection retry guard).
Status RecvFrame(int fd, wire::FrameReader* reader, wire::Frame* out,
                 common::Nanos deadline_abs, bool* got_any) {
  char buf[kIoChunk];
  for (;;) {
    if (auto frame = reader->Next()) {
      *out = std::move(*frame);
      return OkStatus();
    }
    if (!reader->status().ok()) return reader->status();
    const int r = PollUntil(fd, POLLIN, deadline_abs);
    if (r == 0) return ErrStatus(ErrCode::kTimeout, "receive deadline");
    if (r < 0) return ErrStatus(ErrCode::kUnavailable, "poll failed");
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      *got_any = true;
      reader->Append(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    return ErrStatus(ErrCode::kUnavailable, "peer disconnected mid-stream");
  }
}

}  // namespace

bool ParseHostPort(std::string_view spec, std::string* host,
                   std::uint16_t* port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return false;
  }
  const std::string_view port_str = spec.substr(colon + 1);
  unsigned value = 0;
  const auto [ptr, ec] =
      std::from_chars(port_str.data(), port_str.data() + port_str.size(), value);
  if (ec != std::errc{} || ptr != port_str.data() + port_str.size() ||
      value > 65535) {
    return false;
  }
  *host = std::string(spec.substr(0, colon));
  *port = static_cast<std::uint16_t>(value);
  return true;
}

// TCP simultaneous open lets a connect() to a loopback port with no
// listener succeed by connecting the socket to itself when the kernel
// happens to pick the destination port as the ephemeral source port.
// Such a socket echoes every request back verbatim as a "response".
bool IsSelfConnected(int fd) {
  struct sockaddr_storage local{};
  struct sockaddr_storage peer{};
  socklen_t local_len = sizeof(local);
  socklen_t peer_len = sizeof(peer);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&local),
                    &local_len) != 0 ||
      ::getpeername(fd, reinterpret_cast<struct sockaddr*>(&peer),
                    &peer_len) != 0) {
    return false;
  }
  return local_len == peer_len && std::memcmp(&local, &peer, local_len) == 0;
}

// ---------------------------------------------------------------------------
// TcpServer
// ---------------------------------------------------------------------------

struct TcpServer::Conn {
  explicit Conn(int fd_in, std::uint32_t max_payload)
      : fd(fd_in), reader(max_payload) {}
  int fd;
  wire::FrameReader reader;
  std::string out;          // pending response bytes
  std::size_t out_pos = 0;  // bytes of `out` already written
};

TcpServer::TcpServer(RpcHandler* handler, Options options)
    : handler_(handler), options_(std::move(options)) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return ErrStatus(ErrCode::kInvalid, "server already running");
  }
  struct addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  struct addrinfo* res = nullptr;
  const std::string service = std::to_string(options_.port);
  if (::getaddrinfo(options_.host.c_str(), service.c_str(), &hints, &res) != 0) {
    return ErrStatus(ErrCode::kInvalid, "cannot resolve " + options_.host);
  }
  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, options_.backlog) == 0 && SetNonBlocking(fd)) {
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    return ErrStatus(ErrCode::kUnavailable,
                     "cannot bind " + options_.host + ":" +
                         std::to_string(options_.port));
  }
  // Recover the kernel-assigned port for port=0 binds.
  struct sockaddr_storage addr{};
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &addr_len) ==
      0) {
    if (addr.ss_family == AF_INET) {
      port_ = ntohs(reinterpret_cast<struct sockaddr_in*>(&addr)->sin_port);
    } else if (addr.ss_family == AF_INET6) {
      port_ = ntohs(reinterpret_cast<struct sockaddr_in6*>(&addr)->sin6_port);
    }
  }
  if (::pipe(wake_fds_) != 0 || !SetNonBlocking(wake_fds_[0]) ||
      !SetNonBlocking(wake_fds_[1])) {
    ::close(fd);
    for (int& w : wake_fds_) {
      if (w >= 0) ::close(w);
      w = -1;
    }
    return ErrStatus(ErrCode::kIo, "cannot create wake pipe");
  }
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&TcpServer::Loop, this);
  return OkStatus();
}

void TcpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  const char byte = 0;
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& w : wake_fds_) {
    if (w >= 0) ::close(w);
    w = -1;
  }
}

bool TcpServer::DrainFrames(Conn* conn) {
  while (auto frame = conn->reader.Next()) {
    if (frame->header.type != wire::FrameType::kRequest) return false;
    const common::RpcMetricsTable::PerOp& m = metrics_.For(frame->header.opcode);
    m.calls->Add();
    m.bytes_received->Add(frame->payload.size());
    const common::CpuTimer timer;
    const RpcResponse resp =
        handler_->Handle(frame->header.opcode, frame->payload);
    if (!resp.ok()) m.errors->Add();
    m.bytes_sent->Add(resp.payload.size());
    m.latency->Record(timer.ElapsedNanos());
    requests_.fetch_add(1, std::memory_order_relaxed);
    wire::FrameHeader reply;
    reply.type = wire::FrameType::kResponse;
    reply.opcode = frame->header.opcode;
    reply.request_id = frame->header.request_id;
    reply.trace_id = frame->header.trace_id;
    reply.code = resp.code;
    conn->out += wire::EncodeFrame(reply, resp.payload);
  }
  // A framing violation is unrecoverable: drop the connection.
  return conn->reader.status().ok();
}

bool TcpServer::FlushWrites(Conn* conn) {
  while (conn->out_pos < conn->out.size()) {
    const ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_pos,
                             conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  conn->out.clear();
  conn->out_pos = 0;
  return true;
}

void TcpServer::Loop() {
  std::vector<std::unique_ptr<Conn>> conns;
  std::vector<struct pollfd> pfds;
  char buf[kIoChunk];
  while (!stop_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back({listen_fd_, POLLIN, 0});
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    for (const auto& conn : conns) {
      short events = POLLIN;
      if (conn->out_pos < conn->out.size()) events |= POLLOUT;
      pfds.push_back({conn->fd, events, 0});
    }
    if (::poll(pfds.data(), pfds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[1].revents != 0) {
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    // Conns accepted below were not in this poll round; only the first
    // `polled` entries of `conns` have a matching pollfd.
    const std::size_t polled = pfds.size() - 2;
    if (pfds[0].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (!SetNonBlocking(fd)) {
          ::close(fd);
          continue;
        }
        SetNoDelay(fd);
        conns.push_back(
            std::make_unique<Conn>(fd, options_.max_payload_bytes));
      }
    }
    for (std::size_t i = 0; i < polled && i < conns.size();) {
      Conn* conn = conns[i].get();
      const short revents = pfds[2 + i].revents;
      bool alive = true;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        for (;;) {
          const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
          if (n > 0) {
            conn->reader.Append(
                std::string_view(buf, static_cast<std::size_t>(n)));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          alive = false;  // orderly close or hard error
          break;
        }
        if (alive) alive = DrainFrames(conn);
      }
      if (alive && (conn->out_pos < conn->out.size())) alive = FlushWrites(conn);
      if (alive) {
        ++i;
      } else {
        ::close(conn->fd);
        conns[i] = std::move(conns.back());
        conns.pop_back();
        // pfds is stale after the swap; rebuild on the next iteration.
        break;
      }
    }
  }
  for (const auto& conn : conns) ::close(conn->fd);
}

// ---------------------------------------------------------------------------
// TcpChannel
// ---------------------------------------------------------------------------

TcpChannel::TcpChannel(TcpChannelOptions options) : options_(options) {}

TcpChannel::~TcpChannel() { DisconnectAll(); }

void TcpChannel::Register(NodeId id, std::string host, std::uint16_t port) {
  auto ep = std::make_unique<Endpoint>();
  ep->host = std::move(host);
  ep->port = port;
  endpoints_[id] = std::move(ep);
}

bool TcpChannel::Register(NodeId id, std::string_view host_port) {
  std::string host;
  std::uint16_t port = 0;
  if (!ParseHostPort(host_port, &host, &port)) return false;
  Register(id, std::move(host), port);
  return true;
}

void TcpChannel::DisconnectAll() {
  for (auto& [id, ep] : endpoints_) {
    std::scoped_lock lock(ep->mu);
    for (int fd : ep->idle) ::close(fd);
    ep->idle.clear();
  }
}

int TcpChannel::PopIdle(Endpoint& ep) {
  std::scoped_lock lock(ep.mu);
  if (ep.idle.empty()) return -1;
  const int fd = ep.idle.back();
  ep.idle.pop_back();
  return fd;
}

void TcpChannel::PushIdle(Endpoint& ep, int fd) {
  std::scoped_lock lock(ep.mu);
  ep.idle.push_back(fd);
}

int TcpChannel::Connect(const Endpoint& ep, common::Nanos deadline_abs,
                        bool* timed_out) {
  *timed_out = false;
  common::Nanos backoff = options_.connect_backoff_ns;
  for (int attempt = 0; attempt < options_.connect_attempts; ++attempt) {
    const common::Nanos now = common::CpuTimer::Now();
    if (now >= deadline_abs) {
      *timed_out = true;
      return -1;
    }
    const common::Nanos attempt_deadline =
        std::min(deadline_abs, now + options_.connect_timeout_ns);
    const int fd = ConnectOnce(ep.host, ep.port, attempt_deadline);
    if (fd >= 0) return fd;
    if (attempt + 1 < options_.connect_attempts) {
      const common::Nanos sleep_ns =
          std::min(backoff, deadline_abs - common::CpuTimer::Now());
      if (sleep_ns > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
      }
      backoff *= 2;
    }
  }
  return -1;
}

RpcResponse TcpChannel::DoCall(Endpoint& ep, std::uint16_t opcode,
                               std::string_view payload, const CallMeta& meta) {
  const common::RpcMetricsTable::PerOp& m = metrics_.For(opcode);
  m.calls->Add();
  m.bytes_sent->Add(payload.size());
  const common::CpuTimer timer;
  const auto fail = [&](ErrCode code) {
    m.errors->Add();
    m.latency->Record(timer.ElapsedNanos());
    return RpcResponse{code, {}};
  };
  if (payload.size() > options_.max_payload_bytes) return fail(ErrCode::kInvalid);
  const common::Nanos deadline_ns =
      meta.deadline_ns > 0 ? meta.deadline_ns : options_.call_deadline_ns;
  const common::Nanos deadline_abs = common::CpuTimer::Now() + deadline_ns;

  // Attempt 0 may reuse a pooled connection the server has silently closed;
  // when it fails before any response byte arrives, attempt 1 retries once
  // on a fresh connection.  A fresh-connection failure is authoritative.
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool pooled = false;
    int fd = -1;
    if (attempt == 0) {
      fd = PopIdle(ep);
      pooled = fd >= 0;
    }
    if (fd < 0) {
      bool timed_out = false;
      fd = Connect(ep, deadline_abs, &timed_out);
      if (fd < 0) {
        return fail(timed_out ? ErrCode::kTimeout : ErrCode::kUnavailable);
      }
    }
    wire::FrameHeader header;
    header.type = wire::FrameType::kRequest;
    header.opcode = opcode;
    header.request_id = ep.next_request_id.fetch_add(1, std::memory_order_relaxed);
    header.trace_id = meta.trace_id != 0 ? meta.trace_id : NextTraceId();
    const std::string frame = wire::EncodeFrame(header, payload);

    Status st = SendAll(fd, frame, deadline_abs);
    if (!st.ok()) {
      ::close(fd);
      if (pooled && st.code() == ErrCode::kUnavailable) continue;
      return fail(st.code());
    }
    wire::FrameReader reader(options_.max_payload_bytes);
    wire::Frame resp_frame;
    bool got_any = false;
    st = RecvFrame(fd, &reader, &resp_frame, deadline_abs, &got_any);
    if (!st.ok()) {
      ::close(fd);
      if (pooled && !got_any && st.code() == ErrCode::kUnavailable) continue;
      return fail(st.code());
    }
    if (resp_frame.header.type != wire::FrameType::kResponse ||
        resp_frame.header.request_id != header.request_id) {
      ::close(fd);
      return fail(ErrCode::kCorruption);
    }
    // Only a fully-drained connection is safe to reuse: stray buffered bytes
    // would desynchronize the next call on it.
    if (reader.buffered() == 0) {
      PushIdle(ep, fd);
    } else {
      ::close(fd);
    }
    RpcResponse resp{resp_frame.header.code, std::move(resp_frame.payload)};
    if (!resp.ok()) m.errors->Add();
    m.bytes_received->Add(resp.payload.size());
    m.latency->Record(timer.ElapsedNanos());
    return resp;
  }
  return fail(ErrCode::kUnavailable);  // unreachable
}

void TcpChannel::CallAsync(NodeId server, std::uint16_t opcode,
                           std::string payload,
                           std::function<void(RpcResponse)> done) {
  CallAsyncMeta(server, opcode, std::move(payload), CallMeta{}, std::move(done));
}

void TcpChannel::CallAsyncMeta(NodeId server, std::uint16_t opcode,
                               std::string payload, const CallMeta& meta,
                               std::function<void(RpcResponse)> done) {
  const auto it = endpoints_.find(server);
  if (it == endpoints_.end()) {
    const common::RpcMetricsTable::PerOp& m = metrics_.For(opcode);
    m.calls->Add();
    m.errors->Add();
    done(RpcResponse{ErrCode::kUnavailable, {}});
    return;
  }
  done(DoCall(*it->second, opcode, payload, meta));
}

}  // namespace loco::net
