#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>

#include "common/codec.h"
#include "common/rng.h"
#include "net/uring.h"

namespace loco::net {

namespace {

constexpr std::size_t kIoChunk = 64 * 1024;
// Smallest receive window worth a recv() syscall; below this the reader
// rotates to a fresh arena chunk instead of filling the tail fragment.
constexpr std::size_t kMinRecvWindow = 4 * 1024;

// io_uring backend sizing: SQ entries and the registered recv-buffer arena.
// Connections beyond the arena fall back to unregistered per-conn buffers.
constexpr unsigned kUringEntries = 256;
constexpr unsigned kUringBufCount = 64;

// user_data layout for uring completions: tag in the low 3 bits, conn id
// above (conn ids start at 1, so accept/wake use id 0).
constexpr std::uint64_t kUringTagAccept = 1;
constexpr std::uint64_t kUringTagWake = 2;
constexpr std::uint64_t kUringTagRecv = 3;
constexpr std::uint64_t kUringTagPollOut = 4;

constexpr std::uint64_t UringData(std::uint64_t tag, std::uint64_t conn_id) {
  return (conn_id << 3) | tag;
}

// epoll_event.data.u64 tags for the two non-connection descriptors; real
// connection ids start at 1 and count up, so they can never collide.
constexpr std::uint64_t kListenTag = UINT64_MAX;
constexpr std::uint64_t kWakeTag = UINT64_MAX - 1;

// Scatter-gather flush width: frames gathered into one sendmsg() call.
constexpr int kMaxIov = 64;

// Buffer-arena bounds: at most this many pooled buffers, none retained once
// its capacity outgrows the cap (a one-off giant readdir reply must not pin
// megabytes for the connection's lifetime).
constexpr std::size_t kPoolMaxBuffers = 64;
constexpr std::size_t kPoolMaxBufferBytes = 256 * 1024;

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Wait for `events` on `fd` until the absolute steady-clock deadline.
// Returns >0 when ready, 0 on deadline, <0 on poll error.
int PollUntil(int fd, short events, common::Nanos deadline_abs) {
  for (;;) {
    const common::Nanos remaining = deadline_abs - common::CpuTimer::Now();
    if (remaining <= 0) return 0;
    struct pollfd pfd{fd, events, 0};
    // Round up so a sub-millisecond remainder still waits.
    const int timeout_ms =
        static_cast<int>(std::min<common::Nanos>((remaining + common::kMilli - 1) /
                                                     common::kMilli,
                                                 60'000));
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n > 0) return n;
    if (n < 0 && errno != EINTR) return -1;
  }
}

// One non-blocking connect attempt within the deadline; -1 on failure.
int ConnectOnce(const std::string& host, std::uint16_t port,
                common::Nanos deadline_abs) {
  struct addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  struct addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &res) != 0) {
    return -1;
  }
  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      fd = -1;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    if (errno == EINPROGRESS && PollUntil(fd, POLLOUT, deadline_abs) > 0) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 && err == 0) {
        break;
      }
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd >= 0 && IsSelfConnected(fd)) {
    ::close(fd);
    return -1;
  }
  if (fd >= 0) SetNoDelay(fd);
  return fd;
}

// Write all of `data` before the deadline.
Status SendAll(int fd, std::string_view data, common::Nanos deadline_abs) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int r = PollUntil(fd, POLLOUT, deadline_abs);
      if (r == 0) return ErrStatus(ErrCode::kTimeout, "send deadline");
      if (r < 0) return ErrStatus(ErrCode::kUnavailable, "poll failed");
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return ErrStatus(ErrCode::kUnavailable, "peer closed during send");
  }
  return OkStatus();
}

// Encode a handler-free response frame (shed, expired, or otherwise refused
// requests): echoes the request's opcode / ids so the client's waiter matches.
std::string EncodeErrorReply(const wire::FrameHeader& req, ErrCode code,
                             std::string_view payload, std::string buf) {
  wire::FrameHeader reply;
  reply.type = wire::FrameType::kResponse;
  reply.opcode = req.opcode;
  reply.request_id = req.request_id;
  reply.trace_id = req.trace_id;
  reply.code = code;
  buf.clear();
  wire::EncodeFrameInto(reply, payload, &buf);
  return buf;
}

}  // namespace

std::string EncodeLoadStatus(const LoadStatus& status) {
  common::Writer w;
  w.PutU32(status.workers);
  w.PutU32(status.queued_foreground);
  w.PutU32(status.queued_background);
  w.PutU32(status.queued_control);
  w.PutU64(status.shed);
  w.PutU64(status.expired_dropped);
  w.PutU64(status.queue_delay_ewma_ns);
  w.PutU64(status.read_stalls);
  w.PutU64(status.slow_client_disconnects);
  return w.Take();
}

Status DecodeLoadStatus(std::string_view payload, LoadStatus* out) {
  common::Reader r(payload);
  out->workers = r.GetU32();
  out->queued_foreground = r.GetU32();
  out->queued_background = r.GetU32();
  out->queued_control = r.GetU32();
  out->shed = r.GetU64();
  out->expired_dropped = r.GetU64();
  out->queue_delay_ewma_ns = r.GetU64();
  out->read_stalls = r.GetU64();
  out->slow_client_disconnects = r.GetU64();
  if (!r.AtEnd()) {
    return ErrStatus(ErrCode::kCorruption, "bad load-status payload");
  }
  return OkStatus();
}

int DialTcp(const std::string& host, std::uint16_t port,
            common::Nanos deadline_abs) {
  return ConnectOnce(host, port, deadline_abs);
}

bool ParseHostPort(std::string_view spec, std::string* host,
                   std::uint16_t* port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return false;
  }
  const std::string_view port_str = spec.substr(colon + 1);
  unsigned value = 0;
  const auto [ptr, ec] =
      std::from_chars(port_str.data(), port_str.data() + port_str.size(), value);
  if (ec != std::errc{} || ptr != port_str.data() + port_str.size() ||
      value > 65535) {
    return false;
  }
  *host = std::string(spec.substr(0, colon));
  *port = static_cast<std::uint16_t>(value);
  return true;
}

// TCP simultaneous open lets a connect() to a loopback port with no
// listener succeed by connecting the socket to itself when the kernel
// happens to pick the destination port as the ephemeral source port.
// Such a socket echoes every request back verbatim as a "response".
bool IsSelfConnected(int fd) {
  struct sockaddr_storage local{};
  struct sockaddr_storage peer{};
  socklen_t local_len = sizeof(local);
  socklen_t peer_len = sizeof(peer);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&local),
                    &local_len) != 0 ||
      ::getpeername(fd, reinterpret_cast<struct sockaddr*>(&peer),
                    &peer_len) != 0) {
    return false;
  }
  return local_len == peer_len && std::memcmp(&local, &peer, local_len) == 0;
}

// ---------------------------------------------------------------------------
// TcpServer
// ---------------------------------------------------------------------------

struct TcpServer::Conn {
  explicit Conn(int fd_in, std::uint64_t id_in, std::uint32_t max_payload)
      : fd(fd_in), id(id_in), reader(max_payload) {}
  int fd;
  std::uint64_t id;
  // Zero-copy decode: recv() lands in the reader's refcounted arena and
  // request payloads dispatch as views pinned into it (docs/NET.md).
  wire::PinnedFrameReader reader;
  // Pending output: whole encoded frames, moved in (never memcpy'd) and
  // flushed with writev.  out_off is the partial-send offset into the front
  // buffer; out_bytes the total unsent bytes across the queue.
  std::deque<std::string> outq;
  std::size_t out_off = 0;
  std::size_t out_bytes = 0;
  bool want_write = false;  // EPOLLOUT currently registered
  bool dead = false;        // write side failed; remove on the next pass
  // Output backlog exceeded the soft cap: reads are paused until the peer
  // drains its responses (epoll: EPOLLIN dropped; uring: recv not re-armed).
  bool read_stalled = false;
  // Hello state (loop thread only).
  std::uint64_t client_id = 0;   // announced identity; 0 = anonymous
  bool notify = false;           // this conn is its client's notify session
  std::uint64_t notify_seq = 0;  // last push sequence number sent
  // Worker mode: responses must leave in decode order even though workers
  // finish in any order.
  std::uint64_t next_seq = 0;    // assigned to the next decoded frame
  std::uint64_t next_flush = 0;  // next seq allowed into `out`
  std::uint64_t inflight = 0;    // dispatched, not yet delivered
  std::map<std::uint64_t, std::string> done;  // finished out-of-order
  // io_uring backend state (uring loop thread only).  A dead connection is
  // shutdown() first and closed only after its armed recv/poll completions
  // drain — closing with a recv in flight would let the kernel write into a
  // buffer the arena may have handed to a newer connection.
  // Registered-buffer index; -1 recvs straight into the reader's arena
  // (zero-copy even under uring, at the cost of unregistered I/O).
  int ubuf = -1;
  bool recv_armed = false;
  bool pollout_armed = false;
  bool shutdown_sent = false;
};

// io_uring backend state: the ring plus the registered recv-buffer arena.
// Namespace-scope (tcp.h forward-declares it as `class UringState`).
class UringState {
 public:
  uring::Ring ring;
  std::vector<std::unique_ptr<char[]>> bufs;
  std::vector<int> free_bufs;
};

TcpServer::TcpServer(RpcHandler* handler, Options options)
    : handler_(handler), options_(std::move(options)) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return ErrStatus(ErrCode::kInvalid, "server already running");
  }
  struct addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  struct addrinfo* res = nullptr;
  const std::string service = std::to_string(options_.port);
  if (::getaddrinfo(options_.host.c_str(), service.c_str(), &hints, &res) != 0) {
    return ErrStatus(ErrCode::kInvalid, "cannot resolve " + options_.host);
  }
  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, options_.backlog) == 0 && SetNonBlocking(fd)) {
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    return ErrStatus(ErrCode::kUnavailable,
                     "cannot bind " + options_.host + ":" +
                         std::to_string(options_.port));
  }
  // Recover the kernel-assigned port for port=0 binds.
  struct sockaddr_storage addr{};
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &addr_len) ==
      0) {
    if (addr.ss_family == AF_INET) {
      port_ = ntohs(reinterpret_cast<struct sockaddr_in*>(&addr)->sin_port);
    } else if (addr.ss_family == AF_INET6) {
      port_ = ntohs(reinterpret_cast<struct sockaddr_in6*>(&addr)->sin6_port);
    }
  }
  if (::pipe(wake_fds_) != 0 || !SetNonBlocking(wake_fds_[0]) ||
      !SetNonBlocking(wake_fds_[1])) {
    ::close(fd);
    for (int& w : wake_fds_) {
      if (w >= 0) ::close(w);
      w = -1;
    }
    return ErrStatus(ErrCode::kIo, "cannot create wake pipe");
  }
  // Backend selection: try io_uring when asked, fall back to epoll when the
  // kernel (or the build) lacks it.  Both backends share everything past the
  // event loop — dispatch, workers, buffer pool, notify plane.
  uring_active_ = false;
  if (options_.io_backend == IoBackend::kUring) {
    auto st = std::make_unique<UringState>();
    if (st->ring.Init(kUringEntries)) {
      st->bufs.reserve(kUringBufCount);
      std::vector<struct iovec> iovs(kUringBufCount);
      for (unsigned i = 0; i < kUringBufCount; ++i) {
        st->bufs.push_back(std::make_unique<char[]>(kIoChunk));
        iovs[i].iov_base = st->bufs.back().get();
        iovs[i].iov_len = kIoChunk;
        st->free_bufs.push_back(static_cast<int>(i));
      }
      if (!st->ring.RegisterBuffers(iovs.data(), kUringBufCount)) {
        // No fixed buffers: every connection recvs through a spill buffer.
        st->free_bufs.clear();
      }
      uring_state_ = std::move(st);
      uring_active_ = true;
    } else {
      common::MetricsRegistry::Default()
          .GetCounter("rpc.tcp_server.uring.fallbacks")
          .Add();
    }
  }
  if (!uring_active_) {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) {
      ::close(fd);
      for (int& w : wake_fds_) {
        ::close(w);
        w = -1;
      }
      return ErrStatus(ErrCode::kIo, "cannot create epoll instance");
    }
    struct epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenTag;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    ev.data.u64 = kWakeTag;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev);
  }
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  queue_stop_ = false;
  for (auto& q : queues_) q.clear();
  completions_.clear();
  busy_.clear();
  running_.store(true, std::memory_order_release);
  // Fully populate busy_ before any worker indexes into it, and spawn the
  // poll loop last so it never observes a half-built pool.
  for (int i = 0; i < options_.workers; ++i) busy_.emplace_back(false);
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back(&TcpServer::WorkerMain, this,
                          static_cast<std::size_t>(i));
  }
  thread_ = uring_active_ ? std::thread(&TcpServer::UringLoop, this)
                          : std::thread(&TcpServer::Loop, this);
  auto& reg = common::MetricsRegistry::Default();
  gauges_.push_back(reg.RegisterGauge(
      "rpc.tcp_server.workers",
      [this] { return static_cast<double>(options_.workers); }));
  gauges_.push_back(reg.RegisterGauge("rpc.tcp_server.queue_depth", [this] {
    std::scoped_lock lock(queue_mu_);
    std::size_t depth = 0;
    for (const auto& q : queues_) depth += q.size();
    return static_cast<double>(depth);
  }));
  for (std::size_t i = 0; i < busy_.size(); ++i) {
    gauges_.push_back(reg.RegisterGauge(
        "rpc.tcp_server.worker" + std::to_string(i) + ".busy",
        [this, i] {
          return busy_[i].load(std::memory_order_relaxed) ? 1.0 : 0.0;
        }));
  }
  return OkStatus();
}

void TcpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  const char byte = 0;
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  {
    std::scoped_lock lock(queue_mu_);
    queue_stop_ = true;
    // Undelivered requests are dropped, like their connections.
    for (auto& q : queues_) q.clear();
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  epoll_fd_ = -1;
  uring_state_.reset();
  uring_active_ = false;
  for (int& w : wake_fds_) {
    if (w >= 0) ::close(w);
    w = -1;
  }
  buf_pool_.clear();
  // Releasing the handles retires the final gauge values into the registry,
  // so end-of-run --metrics-out dumps still carry the worker count.
  gauges_.clear();
  std::scoped_lock lock(notify_mu_);
  notify_sessions_.clear();
  pending_notify_.clear();
}

bool TcpServer::PushNotify(std::uint64_t client_id, std::uint16_t opcode,
                           std::string payload) {
  if (client_id == 0 || !running_.load(std::memory_order_acquire)) return false;
  {
    std::scoped_lock lock(notify_mu_);
    if (notify_sessions_.find(client_id) == notify_sessions_.end()) {
      common::MetricsRegistry::Default()
          .GetCounter("notify.server.no_session")
          .Add();
      return false;
    }
    pending_notify_.push_back(PendingNotify{client_id, opcode, std::move(payload)});
  }
  const char byte = 0;
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  return true;
}

std::size_t TcpServer::BroadcastNotify(std::uint16_t opcode,
                                       std::string payload) {
  if (!running_.load(std::memory_order_acquire)) return 0;
  std::size_t sessions = 0;
  {
    std::scoped_lock lock(notify_mu_);
    sessions = notify_sessions_.size();
    if (sessions == 0) return 0;
    pending_notify_.push_back(PendingNotify{0, opcode, std::move(payload)});
  }
  common::MetricsRegistry::Default()
      .GetCounter("notify.server.broadcasts")
      .Add();
  const char byte = 0;
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  return sessions;
}

std::size_t TcpServer::notify_sessions() const {
  std::scoped_lock lock(notify_mu_);
  return notify_sessions_.size();
}

std::string TcpServer::Execute(const wire::FrameHeader& req,
                               std::string_view payload,
                               std::uint64_t client_id, std::string buf) {
  const common::RpcMetricsTable::PerOp& m = metrics_.For(req.opcode);
  m.calls->Add();
  m.bytes_received->Add(payload.size());
  const common::CpuTimer timer;
  RpcResponse resp;
  bool replayed = false;
  std::string dedup_key;
  bool dedup_owner = false;
  if (options_.dedup != nullptr && options_.dedup->Eligible(req.opcode)) {
    // Idempotent replay: a retried or duplicated mutation must not apply
    // twice.  The first arrival executes; later arrivals (including ones
    // racing the first) get the cached response verbatim.
    dedup_key = DedupWindow::Key(req, payload);
    ErrCode cached_code = ErrCode::kOk;
    std::string cached;
    if (options_.dedup->Begin(dedup_key, &cached_code, &cached) ==
        DedupWindow::Outcome::kReplay) {
      resp.code = cached_code;
      resp.payload = std::move(cached);
      replayed = true;
    } else {
      dedup_owner = true;
    }
  }
  if (!replayed) {
    resp = handler_->HandleCtx(req.opcode, payload,
                               HandlerContext{client_id, req.trace_id});
    if (dedup_owner) options_.dedup->Complete(dedup_key, resp.code, resp.payload);
  }
  if (resp.extra_service_ns > 0) {
    // Charge modeled device time (journal flushes, object I/O) in real time,
    // the wall-clock analogue of the simulator's virtual-time accounting.
    std::this_thread::sleep_for(std::chrono::nanoseconds(resp.extra_service_ns));
  }
  if (!resp.ok()) m.errors->Add();
  m.bytes_sent->Add(resp.payload.size());
  m.latency->Record(timer.ElapsedNanos());
  requests_.fetch_add(1, std::memory_order_relaxed);
  wire::FrameHeader reply;
  reply.type = wire::FrameType::kResponse;
  reply.opcode = req.opcode;
  reply.request_id = req.request_id;
  reply.trace_id = req.trace_id;
  reply.code = resp.code;
  buf.clear();
  wire::EncodeFrameInto(reply, resp.payload, &buf);
  return buf;
}

bool TcpServer::HandleHello(Conn* conn, const wire::PinnedFrame& frame) {
  wire::Hello hello;
  wire::HelloReply reply;
  reply.proto_version = wire::kVersion;
  reply.epoch = options_.epoch;
  ErrCode code = ErrCode::kOk;
  if (wire::DecodeHello(frame.payload, &hello).ok()) {
    reply.features = hello.features & options_.features;
    if (conn->client_id != hello.client_id) {
      // Re-identifying a connection is legal (tests do); keep the per-client
      // connection counts honest across the switch.
      if (conn->client_id != 0) {
        auto it = client_conns_.find(conn->client_id);
        if (it != client_conns_.end() && --it->second == 0) {
          client_conns_.erase(it);
        }
      }
      if (hello.client_id != 0) ++client_conns_[hello.client_id];
    }
    conn->client_id = hello.client_id;
    if ((reply.features & wire::kFeatureNotify) != 0 && hello.client_id != 0) {
      // This connection becomes the client's notify session (latest wins —
      // a reconnecting listener replaces its predecessor's stale entry).
      conn->notify = true;
      std::scoped_lock lock(notify_mu_);
      notify_sessions_[hello.client_id] = conn->id;
    }
  } else {
    code = ErrCode::kInvalid;
  }
  wire::FrameHeader rh;
  rh.type = wire::FrameType::kResponse;
  rh.opcode = frame.header.opcode;
  rh.request_id = frame.header.request_id;
  rh.trace_id = frame.header.trace_id;
  rh.code = code;
  const std::string reply_payload =
      code == ErrCode::kOk ? wire::EncodeHelloReply(reply) : std::string();
  std::string bytes = GetBuffer();
  wire::EncodeFrameInto(rh, reply_payload, &bytes);
  // Negotiation is answered inline on the loop thread, but in worker mode
  // the reply must not overtake responses still in the pool: give it a slot
  // in the per-connection sequence and release it in order.
  if (options_.workers == 0) return AppendResponse(conn, std::move(bytes));
  return ReleaseOrdered(conn, conn->next_seq++, std::move(bytes));
}

bool TcpServer::HandleLoadStatus(Conn* conn, const wire::PinnedFrame& frame) {
  LoadStatus status;
  status.workers = static_cast<std::uint32_t>(std::max(options_.workers, 0));
  {
    std::scoped_lock lock(queue_mu_);
    status.queued_foreground = static_cast<std::uint32_t>(
        queues_[wire::kPriorityForeground].size());
    status.queued_background = static_cast<std::uint32_t>(
        queues_[wire::kPriorityBackground].size());
    status.queued_control =
        static_cast<std::uint32_t>(queues_[wire::kPriorityControl].size());
  }
  status.shed = shed_total_.load(std::memory_order_relaxed);
  status.expired_dropped = expired_total_.load(std::memory_order_relaxed);
  status.queue_delay_ewma_ns = static_cast<std::uint64_t>(
      queue_delay_ewma_ns_.load(std::memory_order_relaxed));
  status.read_stalls = read_stall_total_.load(std::memory_order_relaxed);
  status.slow_client_disconnects =
      slow_disconnect_total_.load(std::memory_order_relaxed);
  std::string bytes = EncodeErrorReply(frame.header, ErrCode::kOk,
                                       EncodeLoadStatus(status), GetBuffer());
  // Like the hello: answered inline, but never ahead of responses already in
  // the worker pool for this connection.
  if (options_.workers == 0) return AppendResponse(conn, std::move(bytes));
  return ReleaseOrdered(conn, conn->next_seq++, std::move(bytes));
}

std::string TcpServer::RetryAfterPayload() const {
  // Hint roughly one queue drain (the recent queue delay), floored so a shed
  // client never spins on a zero hint.
  common::Nanos hint = queue_delay_ewma_ns_.load(std::memory_order_relaxed);
  if (hint < common::kMilli) hint = common::kMilli;
  common::Writer w;
  w.PutU64(static_cast<std::uint64_t>(hint));
  return w.Take();
}

void TcpServer::CompleteWithError(std::uint64_t conn_id, std::uint64_t seq,
                                  const wire::FrameHeader& req, ErrCode code,
                                  std::string payload) {
  // Through the completion path so the refused request still releases its
  // slot in the per-connection response order — an evicted background
  // request may even belong to a different connection than the one whose
  // frames are being drained.
  std::string bytes = EncodeErrorReply(req, code, payload, std::string());
  {
    std::scoped_lock lock(comp_mu_);
    completions_.push_back(Completion{conn_id, seq, std::move(bytes)});
  }
  // Self-wake: the loop only drains completions at the top of a round.
  const char byte = 0;
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
}

void TcpServer::AdmitWork(Conn* conn, Work&& work) {
  (void)conn;  // inflight already charged by the caller
  const std::uint8_t pri = work.header.priority < wire::kPriorityCount
                               ? work.header.priority
                               : wire::kPriorityForeground;
  const bool forced =
      options_.fault != nullptr && options_.fault->ForceQueueFull();
  bool shed_self = false;
  std::optional<Work> evicted;
  {
    std::scoped_lock lock(queue_mu_);
    // Control traffic is exempt from the cap: the load-status probe and its
    // kin must get through during the very overload they diagnose.
    const std::size_t bounded = queues_[wire::kPriorityForeground].size() +
                                queues_[wire::kPriorityBackground].size();
    const bool full =
        pri != wire::kPriorityControl &&
        (forced || (options_.max_queue > 0 && bounded >= options_.max_queue));
    if (!full) {
      queues_[pri].push_back(std::move(work));
    } else if (pri == wire::kPriorityForeground &&
               !queues_[wire::kPriorityBackground].empty()) {
      // Foreground displaces the oldest queued background request, which is
      // shed in its place.
      evicted = std::move(queues_[wire::kPriorityBackground].front());
      queues_[wire::kPriorityBackground].pop_front();
      queues_[pri].push_back(std::move(work));
    } else {
      shed_self = true;
    }
  }
  if (shed_self || evicted.has_value()) {
    shed_metric_->Add();
    shed_total_.fetch_add(1, std::memory_order_relaxed);
    const Work& victim = shed_self ? work : *evicted;
    CompleteWithError(victim.conn_id, victim.seq, victim.header,
                      ErrCode::kOverloaded, RetryAfterPayload());
  }
  if (!shed_self) queue_cv_.notify_one();
}

bool TcpServer::DrainFrames(Conn* conn) {
  while (auto frame = conn->reader.Next()) {
    if (frame->header.type != wire::FrameType::kRequest) return false;
    if (frame->zero_copy) {
      zerocopy_hits_->Add();
    } else {
      zerocopy_copies_->Add();
    }
    if (frame->header.opcode == wire::kCtlHello) {
      // Connection control precedes the fault plane: hello is part of the
      // transport, not the workload under test.
      if (!HandleHello(conn, *frame)) return false;
      continue;
    }
    if (frame->header.opcode == wire::kCtlLoadStatus) {
      // Also transport-level, and deliberately ahead of the fault plane and
      // the admission queues: the probe must answer while the server is busy
      // shedding everything else.
      if (!HandleLoadStatus(conn, *frame)) return false;
      continue;
    }
    int copies = 1;
    common::Nanos delay_ns = 0;
    if (options_.fault != nullptr) {
      const FaultInjector::FrameFate fate = options_.fault->OnServerFrame();
      if (fate.crash) {
        // Simulate kill -9 between a KV write and its successor: no atexit
        // handlers, no stdio flush, connections torn mid-stream.
        std::_Exit(137);
      }
      if (fate.reset) return false;
      if (fate.drop) continue;
      if (fate.dup) copies = 2;
      delay_ns = fate.delay_ns;
    }
    // The wire deadline budget counts from decode: by the time the request
    // reaches a worker (or survives an injected delay) the caller may have
    // given up, and executing for an absent caller only deepens an overload.
    const common::Nanos decoded_ns = common::CpuTimer::Now();
    const common::Nanos expire_ns =
        frame->header.deadline_budget_ns > 0
            ? decoded_ns +
                  static_cast<common::Nanos>(frame->header.deadline_budget_ns)
            : 0;
    for (int copy = 0; copy < copies; ++copy) {
      if (options_.workers == 0) {
        if (delay_ns > 0) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(delay_ns));
        }
        if (expire_ns != 0 && common::CpuTimer::Now() > expire_ns) {
          expired_metric_->Add();
          expired_total_.fetch_add(1, std::memory_order_relaxed);
          if (!AppendResponse(conn,
                              EncodeErrorReply(frame->header, ErrCode::kTimeout,
                                               {}, GetBuffer()))) {
            return false;
          }
        } else if (!AppendResponse(conn,
                                   Execute(frame->header, frame->payload,
                                           conn->client_id, GetBuffer()))) {
          return false;
        }
      } else {
        // Duplicated frames share the payload view and its pin; Execute
        // only reads the bytes.
        Work work;
        work.conn_id = conn->id;
        work.seq = conn->next_seq++;
        work.client_id = conn->client_id;
        work.header = frame->header;
        work.payload = frame->payload;
        work.pin = frame->pin;
        work.delay_ns = delay_ns;
        work.enqueue_ns = decoded_ns;
        work.expire_ns = expire_ns;
        ++conn->inflight;
        AdmitWork(conn, std::move(work));
      }
    }
  }
  // A framing violation is unrecoverable: drop the connection.
  return conn->reader.status().ok();
}

bool TcpServer::FlushWrites(Conn* conn) {
  while (conn->out_bytes > 0) {
    // Gather up to kMaxIov queued frames into one scatter-gather send; the
    // front buffer may already be partially written (out_off).
    struct iovec iov[kMaxIov];
    int iovcnt = 0;
    std::size_t skip = conn->out_off;
    for (const std::string& frame : conn->outq) {
      if (iovcnt == kMaxIov) break;
      iov[iovcnt].iov_base = const_cast<char*>(frame.data()) + skip;
      iov[iovcnt].iov_len = frame.size() - skip;
      ++iovcnt;
      skip = 0;
    }
    struct msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    conn->out_bytes -= static_cast<std::size_t>(n);
    std::size_t sent = static_cast<std::size_t>(n);
    while (sent > 0) {
      std::string& front = conn->outq.front();
      const std::size_t remaining = front.size() - conn->out_off;
      if (sent < remaining) {
        conn->out_off += sent;
        break;
      }
      sent -= remaining;
      RecycleBuffer(std::move(front));
      conn->outq.pop_front();
      conn->out_off = 0;
    }
  }
  return true;
}

bool TcpServer::AppendResponse(Conn* conn, std::string&& bytes) {
  if (options_.fault != nullptr && options_.fault->ShortWriteResponse()) {
    // Torn response: deliver only the first half of the frame, push what the
    // socket accepts, then let the caller drop the connection.  The client
    // observes a desynchronized stream and must treat the call as failed.
    bytes.resize(bytes.size() / 2);
    if (!bytes.empty()) {
      conn->out_bytes += bytes.size();
      conn->outq.push_back(std::move(bytes));
    }
    FlushWrites(conn);
    return false;
  }
  if (!bytes.empty()) {
    if (options_.max_conn_output_bytes > 0 &&
        conn->out_bytes + bytes.size() > 2 * options_.max_conn_output_bytes) {
      // Twice the soft cap of undrained responses: the peer stopped reading
      // long ago (the soft cap already paused its requests).  Cut it loose
      // rather than buffer without bound.
      slow_disconnect_metric_->Add();
      slow_disconnect_total_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    conn->out_bytes += bytes.size();
    conn->outq.push_back(std::move(bytes));
  }
  return true;
}

void TcpServer::WorkerMain(std::size_t index) {
  for (;;) {
    Work w;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        if (queue_stop_) return true;
        for (const auto& q : queues_) {
          if (!q.empty()) return true;
        }
        return false;
      });
      if (queue_stop_) return;
      // Strict priority dequeue: control, then foreground, then background.
      std::deque<Work>* src = &queues_[wire::kPriorityControl];
      if (src->empty()) src = &queues_[wire::kPriorityForeground];
      if (src->empty()) src = &queues_[wire::kPriorityBackground];
      w = std::move(src->front());
      src->pop_front();
    }
    busy_[index].store(true, std::memory_order_relaxed);
    const common::Nanos dequeued_ns = common::CpuTimer::Now();
    if (w.enqueue_ns > 0 && dequeued_ns > w.enqueue_ns) {
      const common::Nanos qdelay = dequeued_ns - w.enqueue_ns;
      queue_delay_hist_->Record(qdelay);
      // EWMA (alpha 0.2) of the admission-queue wait: the serving-load
      // signal behind RetryAfterPayload and GC pacing.  Single-writer per
      // sample is not guaranteed (any worker updates it), but a lost update
      // between concurrent dequeues only costs one sample of smoothing.
      const common::Nanos prev =
          queue_delay_ewma_ns_.load(std::memory_order_relaxed);
      queue_delay_ewma_ns_.store(prev - prev / 5 + qdelay / 5,
                                 std::memory_order_relaxed);
    }
    if (w.delay_ns > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(w.delay_ns));
    }
    std::string bytes;
    if (w.expire_ns != 0 && common::CpuTimer::Now() > w.expire_ns) {
      // The caller's budget ran out while the request sat queued: answer
      // kTimeout without executing.  The response still flows through the
      // ordered release path — silently dropping the seq would wedge every
      // later response on the connection.
      expired_metric_->Add();
      expired_total_.fetch_add(1, std::memory_order_relaxed);
      bytes = EncodeErrorReply(w.header, ErrCode::kTimeout, {}, std::string());
    } else {
      bytes = Execute(w.header, w.payload, w.client_id, std::string());
    }
    busy_[index].store(false, std::memory_order_relaxed);
    {
      std::scoped_lock lock(comp_mu_);
      completions_.push_back(Completion{w.conn_id, w.seq, std::move(bytes)});
    }
    // Wake the loop to deliver; a full pipe is fine (the loop is awake).
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  }
}

bool TcpServer::ReleaseOrdered(Conn* conn, std::uint64_t seq,
                               std::string&& bytes) {
  conn->done.emplace(seq, std::move(bytes));
  while (!conn->done.empty() &&
         conn->done.begin()->first == conn->next_flush) {
    if (!AppendResponse(conn, std::move(conn->done.begin()->second))) {
      return false;
    }
    conn->done.erase(conn->done.begin());
    ++conn->next_flush;
  }
  return true;
}

void TcpServer::DeliverCompletions(
    const std::unordered_map<std::uint64_t, std::unique_ptr<Conn>>& conns) {
  std::vector<Completion> batch;
  {
    std::scoped_lock lock(comp_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    const auto it = conns.find(c.conn_id);
    if (it == conns.end()) continue;  // connection dropped meanwhile
    Conn* conn = it->second.get();
    --conn->inflight;
    if (conn->dead) continue;
    if (!ReleaseOrdered(conn, c.seq, std::move(c.bytes))) conn->dead = true;
    if (!conn->dead && !FlushWrites(conn)) conn->dead = true;
  }
}

void TcpServer::SendNotifyFrame(Conn* conn, std::uint16_t opcode,
                                const std::string& payload) {
  int copies = 1;
  if (options_.fault != nullptr) {
    const FaultInjector::NotifyFate fate = options_.fault->OnNotifyFrame();
    if (fate.drop) {
      // The push is lost but its sequence number is consumed, so the client
      // sees a gap on the next frame and resynchronizes.
      ++conn->notify_seq;
      return;
    }
    if (fate.dup) copies = 2;  // same sequence number twice; client ignores
  }
  wire::FrameHeader header;
  header.type = wire::FrameType::kNotify;
  header.opcode = opcode;
  header.request_id = ++conn->notify_seq;
  // Notify frames bypass AppendResponse: the short-write fault models torn
  // *responses* and must not fire on the push path.  A duplicated push is
  // encoded twice (same sequence number; the client ignores the replay).
  for (int copy = 0; copy < copies; ++copy) {
    std::string bytes = GetBuffer();
    wire::EncodeFrameInto(header, payload, &bytes);
    conn->out_bytes += bytes.size();
    conn->outq.push_back(std::move(bytes));
  }
  common::MetricsRegistry::Default().GetCounter("notify.server.pushed").Add();
}

void TcpServer::DrainNotify(
    const std::unordered_map<std::uint64_t, std::unique_ptr<Conn>>& conns) {
  std::vector<PendingNotify> batch;
  {
    std::scoped_lock lock(notify_mu_);
    if (pending_notify_.empty()) return;
    batch.swap(pending_notify_);
  }
  for (PendingNotify& p : batch) {
    if (p.client_id != 0) {
      std::uint64_t conn_id = 0;
      {
        std::scoped_lock lock(notify_mu_);
        const auto it = notify_sessions_.find(p.client_id);
        if (it == notify_sessions_.end()) continue;  // client disconnected
        conn_id = it->second;
      }
      const auto it = conns.find(conn_id);
      if (it == conns.end() || it->second->dead) continue;
      SendNotifyFrame(it->second.get(), p.opcode, p.payload);
      if (!FlushWrites(it->second.get())) it->second->dead = true;
    } else {
      for (const auto& [id, conn] : conns) {
        if (!conn->notify || conn->dead) continue;
        SendNotifyFrame(conn.get(), p.opcode, p.payload);
        if (!FlushWrites(conn.get())) conn->dead = true;
      }
    }
  }
}

void TcpServer::ForgetNotifySession(const Conn& conn) {
  if (!conn.notify) return;
  bool forgotten = false;
  {
    std::scoped_lock lock(notify_mu_);
    const auto it = notify_sessions_.find(conn.client_id);
    if (it != notify_sessions_.end() && it->second == conn.id) {
      notify_sessions_.erase(it);
      forgotten = true;
    }
  }
  // The client's push stream is gone: tell the owner now (lease watches and
  // undeliverable pushes die with it) instead of waiting for a failed push.
  if (forgotten && options_.on_notify_disconnect &&
      !stop_.load(std::memory_order_acquire)) {
    options_.on_notify_disconnect(conn.client_id);
  }
}

void TcpServer::SyncWriteInterest(Conn* conn) {
  const bool want = conn->out_bytes > 0;
  // Soft output cap: a reader this far behind loses EPOLLIN until its
  // backlog drains below the cap — the slow client stalls itself, not the
  // daemon's memory (docs/OVERLOAD.md).
  const bool stall = options_.max_conn_output_bytes > 0 &&
                     conn->out_bytes > options_.max_conn_output_bytes;
  if (want == conn->want_write && stall == conn->read_stalled) return;
  struct epoll_event ev{};
  ev.events = (stall ? 0u : EPOLLIN) | (want ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    if (stall && !conn->read_stalled) {
      read_stall_metric_->Add();
      read_stall_total_.fetch_add(1, std::memory_order_relaxed);
    }
    conn->want_write = want;
    conn->read_stalled = stall;
  }
}

void TcpServer::CloseConn(
    std::unordered_map<std::uint64_t, std::unique_ptr<Conn>>* conns,
    std::uint64_t id) {
  const auto it = conns->find(id);
  if (it == conns->end()) return;
  Conn* conn = it->second.get();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  ForgetNotifySession(*conn);
  const std::uint64_t client_id = conn->client_id;
  // Undelivered frames die with the connection; their buffers need not.
  for (std::string& frame : conn->outq) RecycleBuffer(std::move(frame));
  conns->erase(it);
  if (client_id != 0) {
    auto cit = client_conns_.find(client_id);
    if (cit != client_conns_.end() && --cit->second == 0) {
      client_conns_.erase(cit);
      if (options_.on_client_disconnect &&
          !stop_.load(std::memory_order_acquire)) {
        options_.on_client_disconnect(client_id);
      }
    }
  }
}

std::string TcpServer::GetBuffer() {
  if (buf_pool_.empty()) {
    bufpool_allocs_->Add();
    return std::string();
  }
  bufpool_reuses_->Add();
  std::string buf = std::move(buf_pool_.back());
  buf_pool_.pop_back();
  buf.clear();
  return buf;
}

void TcpServer::RecycleBuffer(std::string&& buf) {
  if (buf_pool_.size() >= kPoolMaxBuffers ||
      buf.capacity() > kPoolMaxBufferBytes) {
    return;
  }
  buf_pool_.push_back(std::move(buf));
}

void TcpServer::Loop() {
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_conn_id = 1;
  char wake_drain[256];
  std::array<struct epoll_event, 128> events;
  std::vector<std::uint64_t> doomed;
  auto& reg = common::MetricsRegistry::Default();
  common::Counter& epoll_waits = reg.GetCounter("rpc.tcp_server.epoll.waits");
  common::Counter& epoll_events = reg.GetCounter("rpc.tcp_server.epoll.events");
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    epoll_waits.Add();
    epoll_events.Add(static_cast<std::uint64_t>(n));
    bool accept_ready = false;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.u64 == kWakeTag) {
        while (::read(wake_fds_[0], wake_drain, sizeof(wake_drain)) > 0) {
        }
      } else if (events[i].data.u64 == kListenTag) {
        accept_ready = true;
      }
    }
    if (options_.workers > 0) DeliverCompletions(conns);
    DrainNotify(conns);
    if (accept_ready) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (!SetNonBlocking(fd)) {
          ::close(fd);
          continue;
        }
        SetNoDelay(fd);
        auto conn = std::make_unique<Conn>(fd, next_conn_id++,
                                           options_.max_payload_bytes);
        struct epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = conn->id;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
          ::close(fd);
          continue;
        }
        conns.emplace(conn->id, std::move(conn));
      }
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenTag || tag == kWakeTag) continue;
      const auto it = conns.find(tag);
      if (it == conns.end()) continue;  // already closed this round
      Conn* conn = it->second.get();
      if (conn->dead) continue;  // swept below
      const std::uint32_t revents = events[i].events;
      bool alive = true;
      if (revents & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        for (;;) {
          // Zero-copy ingest: recv straight into the reader's arena, so the
          // payload views DrainFrames dispatches are the kernel's bytes.
          std::size_t capacity = 0;
          char* dst = conn->reader.RecvInto(kMinRecvWindow, &capacity);
          const ssize_t r = ::recv(conn->fd, dst, capacity, 0);
          if (r > 0) {
            conn->reader.Commit(static_cast<std::size_t>(r));
            continue;
          }
          if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (r < 0 && errno == EINTR) continue;
          alive = false;  // orderly close or hard error
          break;
        }
        if (alive) alive = DrainFrames(conn);
      }
      if (alive && conn->out_bytes > 0) alive = FlushWrites(conn);
      if (!alive) conn->dead = true;
    }
    // End-of-round sweep: reap failed connections, then reconcile EPOLLOUT
    // interest on the survivors (completions and notify pushes above may
    // have queued output on connections with no event this round).
    doomed.clear();
    for (const auto& [id, conn] : conns) {
      if (conn->dead) doomed.push_back(id);
    }
    for (const std::uint64_t id : doomed) CloseConn(&conns, id);
    for (const auto& [id, conn] : conns) SyncWriteInterest(conn.get());
  }
  for (const auto& [id, conn] : conns) ::close(conn->fd);
}

void TcpServer::UringLoop() {
  // io_uring backend (docs/NET.md "I/O backends").  One completion ring
  // replaces epoll_wait + per-fd recv: the listener runs a multishot accept,
  // every connection keeps one recv armed into a registered buffer, and
  // write interest is a one-shot POLLOUT armed only while output is queued.
  // Dispatch (DrainFrames/Execute/workers), write batching (FlushWrites),
  // and the notify plane are shared verbatim with the epoll loop.
  UringState& us = *uring_state_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_conn_id = 1;
  char wake_buf[256];
  std::vector<std::uint64_t> doomed;
  auto& reg = common::MetricsRegistry::Default();
  common::Counter& sqes = reg.GetCounter("rpc.tcp_server.uring.sqes");
  common::Counter& cqes = reg.GetCounter("rpc.tcp_server.uring.cqes");
  common::Counter& accepts = reg.GetCounter("rpc.tcp_server.uring.accepts");
  common::Counter& fixed_reads =
      reg.GetCounter("rpc.tcp_server.uring.fixed_reads");

  // SQ-full is transient: flush queued SQEs and retry once.
  const auto prep = [&](auto&& fn) {
    if (fn()) {
      sqes.Add();
      return true;
    }
    (void)us.ring.SubmitAndWait(false);
    if (fn()) {
      sqes.Add();
      return true;
    }
    return false;
  };
  const auto arm_recv = [&](Conn* conn) {
    const std::uint64_t ud = UringData(kUringTagRecv, conn->id);
    bool ok = false;
    if (conn->ubuf >= 0) {
      char* buf = us.bufs[static_cast<std::size_t>(conn->ubuf)].get();
      ok = prep([&] {
        return us.ring.PrepReadFixed(conn->fd, buf, kIoChunk,
                                     static_cast<unsigned>(conn->ubuf), ud);
      });
      if (ok) fixed_reads.Add();
    } else {
      // No registered buffer free: recv straight into the reader's arena
      // (zero-copy decode).  The region is stable until the matching Commit
      // — only this loop touches the reader, and one recv is armed at a
      // time, so nothing rotates the chunk under the kernel.
      std::size_t capacity = 0;
      char* dst = conn->reader.RecvInto(kMinRecvWindow, &capacity);
      ok = prep([&] { return us.ring.PrepRecv(conn->fd, dst, capacity, ud); });
    }
    conn->recv_armed = ok;
    if (!ok) conn->dead = true;
  };
  const auto arm_wake = [&] {
    return prep([&] {
      return us.ring.PrepRead(wake_fds_[0], wake_buf, sizeof(wake_buf),
                              UringData(kUringTagWake, 0));
    });
  };
  const auto arm_accept = [&] {
    return prep([&] {
      return us.ring.PrepAcceptMultishot(listen_fd_,
                                         UringData(kUringTagAccept, 0));
    });
  };

  if (!arm_accept() || !arm_wake()) return;  // cannot happen with a fresh SQ
  while (!stop_.load(std::memory_order_acquire)) {
    const int rc = us.ring.SubmitAndWait(true);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bool accept_rearm = false;
    bool wake_rearm = false;
    uring::Cqe cqe;
    while (us.ring.PopCqe(&cqe)) {
      cqes.Add();
      const std::uint64_t tag = cqe.user_data & 7;
      const std::uint64_t cid = cqe.user_data >> 3;
      if (tag == kUringTagAccept) {
        if (!uring::CqeHasMore(cqe)) accept_rearm = true;
        if (cqe.res < 0) continue;  // transient accept failure
        const int fd = cqe.res;
        SetNoDelay(fd);
        auto conn = std::make_unique<Conn>(fd, next_conn_id++,
                                           options_.max_payload_bytes);
        if (!us.free_bufs.empty()) {
          conn->ubuf = us.free_bufs.back();
          us.free_bufs.pop_back();
        }
        Conn* raw = conn.get();
        conns.emplace(raw->id, std::move(conn));
        accepts.Add();
        arm_recv(raw);
      } else if (tag == kUringTagWake) {
        wake_rearm = true;  // payload is opaque; completions drain below
      } else if (tag == kUringTagRecv) {
        const auto it = conns.find(cid);
        if (it == conns.end()) continue;
        Conn* conn = it->second.get();
        conn->recv_armed = false;
        if (cqe.res > 0) {
          if (conn->ubuf >= 0) {
            conn->reader.Append(std::string_view(
                us.bufs[static_cast<std::size_t>(conn->ubuf)].get(),
                static_cast<std::size_t>(cqe.res)));
          } else {
            conn->reader.Commit(static_cast<std::size_t>(cqe.res));
          }
          if (!conn->dead && !DrainFrames(conn)) conn->dead = true;
          if (!conn->dead && conn->out_bytes > 0 && !FlushWrites(conn)) {
            conn->dead = true;
          }
          // Re-armed in the end-of-round reconcile below, where the output
          // backlog (including responses workers deliver this round) decides
          // whether the reader must stall.
        } else if (cqe.res != -EAGAIN && cqe.res != -EINTR) {
          conn->dead = true;  // orderly close (0) or hard error
        }
      } else if (tag == kUringTagPollOut) {
        const auto it = conns.find(cid);
        if (it == conns.end()) continue;
        Conn* conn = it->second.get();
        conn->pollout_armed = false;
        if (!conn->dead && !FlushWrites(conn)) conn->dead = true;
      }
    }
    if (options_.workers > 0) DeliverCompletions(conns);
    DrainNotify(conns);
    // Reconcile write interest: anything still backlogged gets a one-shot
    // POLLOUT (the uring analogue of SyncWriteInterest).
    for (const auto& [id, conn] : conns) {
      if (conn->dead || conn->out_bytes == 0 || conn->pollout_armed) continue;
      if (prep([&] {
            return us.ring.PrepPollOutOneshot(
                conn->fd, UringData(kUringTagPollOut, conn->id));
          })) {
        conn->pollout_armed = true;
      }
    }
    // Re-arm receives — the uring analogue of SyncWriteInterest's EPOLLIN
    // gate: a connection whose output backlog exceeds the soft cap keeps its
    // recv unarmed until the peer drains responses (the POLLOUT above wakes
    // the loop as that happens).
    for (const auto& [id, conn] : conns) {
      if (conn->dead || conn->recv_armed) continue;
      const bool stall = options_.max_conn_output_bytes > 0 &&
                         conn->out_bytes > options_.max_conn_output_bytes;
      if (stall) {
        if (!conn->read_stalled) {
          conn->read_stalled = true;
          read_stall_metric_->Add();
          read_stall_total_.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      conn->read_stalled = false;
      arm_recv(conn.get());
    }
    // Reap failed connections.  The kernel may still own an armed recv or
    // poll on the fd: shutdown() forces those completions, and the close is
    // deferred until they drain — closing early would hand the registered
    // buffer back to the arena while the kernel can still write into it.
    doomed.clear();
    for (const auto& [id, conn] : conns) {
      if (!conn->dead) continue;
      if (!conn->shutdown_sent) {
        ::shutdown(conn->fd, SHUT_RDWR);
        conn->shutdown_sent = true;
      }
      if (!conn->recv_armed && !conn->pollout_armed) doomed.push_back(id);
    }
    for (const std::uint64_t id : doomed) {
      const auto it = conns.find(id);
      if (it->second->ubuf >= 0) us.free_bufs.push_back(it->second->ubuf);
      CloseConn(&conns, id);  // epoll_ctl on fd -1 is a harmless no-op here
    }
    if (wake_rearm && !arm_wake()) break;
    if (accept_rearm && !arm_accept()) break;
  }
  for (const auto& [id, conn] : conns) ::close(conn->fd);
}

// ---------------------------------------------------------------------------
// TcpChannel
// ---------------------------------------------------------------------------

TcpChannel::PipeConn::~PipeConn() { ::close(fd); }

TcpChannel::TcpChannel(TcpChannelOptions options)
    : options_(options),
      pipeline_depth_(&common::MetricsRegistry::Default().GetHistogram(
          "rpc.tcp.pipeline_depth", "requests")) {}

TcpChannel::~TcpChannel() { DisconnectAll(); }

void TcpChannel::Register(NodeId id, std::string host, std::uint16_t port) {
  auto ep = std::make_unique<Endpoint>();
  ep->host = std::move(host);
  ep->port = port;
  endpoints_[id] = std::move(ep);
}

bool TcpChannel::Register(NodeId id, std::string_view host_port) {
  std::string host;
  std::uint16_t port = 0;
  if (!ParseHostPort(host_port, &host, &port)) return false;
  Register(id, std::move(host), port);
  return true;
}

void TcpChannel::SetNextRequestIdForTest(NodeId server, std::uint64_t value) {
  const auto it = endpoints_.find(server);
  if (it != endpoints_.end()) {
    it->second->next_request_id.store(value, std::memory_order_relaxed);
  }
}

void TcpChannel::DisconnectAll() {
  for (auto& [id, ep] : endpoints_) {
    std::vector<std::shared_ptr<PipeConn>> dropped;
    {
      std::scoped_lock lock(ep->mu);
      dropped.swap(ep->conns);
    }
    // Idle connections are deregistered from the reactor and closed here;
    // connections with calls in flight are marked orphaned — the reactor
    // keeps serving their waiters and drops its reference once the last
    // response lands.
    for (const std::shared_ptr<PipeConn>& conn : dropped) {
      bool idle = false;
      {
        std::scoped_lock lock(conn->mu);
        if (conn->waiting.empty() &&
            conn->inflight.load(std::memory_order_acquire) == 0) {
          idle = true;
        } else {
          conn->orphaned = true;
        }
      }
      // Never while holding conn->mu: Remove waits out an in-flight reactor
      // callback, and that callback takes conn->mu.
      if (idle) reactor_.Remove(conn->fd);
    }
  }
}

int TcpChannel::Connect(const Endpoint& ep, common::Nanos deadline_abs,
                        bool* timed_out) {
  *timed_out = false;
  common::Nanos backoff = options_.connect_backoff_ns;
  for (int attempt = 0; attempt < options_.connect_attempts; ++attempt) {
    const common::Nanos now = common::CpuTimer::Now();
    if (now >= deadline_abs) {
      *timed_out = true;
      return -1;
    }
    const common::Nanos attempt_deadline =
        std::min(deadline_abs, now + options_.connect_timeout_ns);
    const int fd = ConnectOnce(ep.host, ep.port, attempt_deadline);
    if (fd >= 0) return fd;
    if (attempt + 1 < options_.connect_attempts) {
      // Full jitter (sleep uniform in [0, backoff]): after a daemon restart
      // every blocked client retries at once, and synchronized exponential
      // backoff would keep them colliding in lockstep.
      static std::atomic<std::uint64_t> jitter_stream{0};
      thread_local common::Rng jitter_rng(common::Mix64(
          0x6a177e5 + jitter_stream.fetch_add(1, std::memory_order_relaxed)));
      const common::Nanos jittered = static_cast<common::Nanos>(
          jitter_rng.Uniform(static_cast<std::uint64_t>(backoff) + 1));
      const common::Nanos sleep_ns =
          std::min(jittered, deadline_abs - common::CpuTimer::Now());
      if (sleep_ns > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
      }
      backoff *= 2;
    }
  }
  return -1;
}

std::shared_ptr<TcpChannel::PipeConn> TcpChannel::AcquireConn(
    Endpoint& ep, common::Nanos deadline_abs, bool* reused, ErrCode* err) {
  {
    std::scoped_lock lock(ep.mu);
    std::erase_if(ep.conns, [](const std::shared_ptr<PipeConn>& c) {
      return c->dead.load(std::memory_order_acquire);
    });
    std::shared_ptr<PipeConn> pick;
    std::uint32_t low = 0;
    for (const auto& c : ep.conns) {
      const std::uint32_t n = c->inflight.load(std::memory_order_relaxed);
      if (n >= options_.max_pipeline) continue;
      if (!pick || n < low) {
        pick = c;
        low = n;
      }
    }
    if (pick) {
      pick->inflight.fetch_add(1, std::memory_order_relaxed);
      *reused = true;
      return pick;
    }
  }
  bool timed_out = false;
  const int fd = Connect(ep, deadline_abs, &timed_out);
  if (fd < 0) {
    *err = timed_out ? ErrCode::kTimeout : ErrCode::kUnavailable;
    return nullptr;
  }
  auto conn = std::make_shared<PipeConn>(fd, options_.max_payload_bytes);
  if (options_.client_id != 0 || options_.features != 0) {
    // Fire-and-forget hello: identifies this mount to the server without
    // costing a round trip.  Request id 0 is never used by calls, so the
    // reply is read and discarded by whichever caller is the frame reader.
    // A v1 server just answers the unknown opcode with an error — same fate.
    wire::Hello hello;
    hello.features = options_.features;
    hello.client_id = options_.client_id;
    wire::FrameHeader header;
    header.type = wire::FrameType::kRequest;
    header.opcode = wire::kCtlHello;
    header.request_id = 0;
    header.trace_id = NextTraceId();
    // A send failure surfaces on the first real call; nothing to do here.
    (void)SendAll(fd, wire::EncodeFrame(header, wire::EncodeHello(hello)),
                  deadline_abs);
  }
  conn->inflight.store(1, std::memory_order_relaxed);
  *reused = false;
  {
    std::scoped_lock lock(ep.mu);
    ep.conns.push_back(conn);
  }
  // Hand the receive side to the reactor.  On registration failure the conn
  // is broken immediately; the caller's RegisterWaiter observes it and fails
  // the call with kUnavailable.
  if (!reactor_.Add(fd, [this, conn] { return OnReadable(conn); }).ok()) {
    std::scoped_lock lock(conn->mu);
    FailConnLocked(*conn, ErrCode::kUnavailable);
  }
  return conn;
}

bool TcpChannel::OnReadable(const std::shared_ptr<PipeConn>& conn) {
  // Reactor thread only — the FrameReader needs no lock, the waiter table
  // does.  One recv sweep drains however many pipelined responses arrived.
  char buf[kIoChunk];
  bool dead = false;
  ErrCode fail_code = ErrCode::kUnavailable;
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->reader.Append(std::string_view(buf, static_cast<std::size_t>(n)));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;  // likely drained
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    dead = true;  // orderly close or hard error
    break;
  }
  std::size_t dispatched = 0;
  std::scoped_lock lock(conn->mu);
  while (auto frame = conn->reader.Next()) {
    if (frame->header.type == wire::FrameType::kNotify) {
      // Push frame on an RPC connection (pooled conns don't negotiate
      // notify, but tolerate it): not addressed to any waiter.
      continue;
    }
    if (frame->header.type != wire::FrameType::kResponse) {
      dead = true;
      fail_code = ErrCode::kCorruption;
      break;
    }
    const auto it = conn->waiting.find(frame->header.request_id);
    if (it == conn->waiting.end()) {
      if (frame->header.request_id == 0 &&
          frame->header.opcode == wire::kCtlHello &&
          frame->header.code == ErrCode::kOk) {
        // The fire-and-forget hello's reply: capture the feature bits the
        // server granted.  Calls issued before it lands simply go out as v1
        // frames — optimistic degrade, no round trip on the fast path.
        wire::HelloReply reply;
        if (wire::DecodeHelloReply(frame->payload, &reply).ok()) {
          conn->peer_features.store(reply.features, std::memory_order_release);
        }
        continue;
      }
      // A response to a call that already timed out: drop it.  Its id is
      // spendable again — the stream can hold no second response.
      conn->abandoned.erase(frame->header.request_id);
      continue;
    }
    Waiter* w = it->second;
    conn->waiting.erase(it);
    w->frame = std::move(*frame);
    w->done = true;
    w->cv.notify_one();
    ++dispatched;
  }
  if (dispatched > 0) reactor_frames_->Add(dispatched);
  if (!dead && !conn->reader.status().ok()) {
    dead = true;
    fail_code = ErrCode::kCorruption;
  }
  if (dead) {
    FailConnLocked(*conn, fail_code);
    return false;  // deregister; the reactor drops its reference
  }
  // An orphaned conn (DisconnectAll raced in-flight calls) lives only for
  // its remaining waiters; once they are answered, release the socket.
  return !(conn->orphaned && conn->waiting.empty());
}

void TcpChannel::FailConnLocked(PipeConn& conn, ErrCode code) {
  if (conn.broken == ErrCode::kOk) conn.broken = code;
  conn.dead.store(true, std::memory_order_release);
  for (auto& [rid, w] : conn.waiting) {
    w->done = true;
    w->fail = conn.broken;
    w->cv.notify_one();
  }
  conn.waiting.clear();
  conn.abandoned.clear();  // no more frames will arrive on this socket
}

std::uint64_t TcpChannel::NextRequestId(Endpoint& ep) {
  std::uint64_t rid = ep.next_request_id.fetch_add(1, std::memory_order_relaxed);
  // Id 0 belongs to the fire-and-forget hello; skip it on counter wrap.
  while (rid == 0) {
    rid = ep.next_request_id.fetch_add(1, std::memory_order_relaxed);
  }
  return rid;
}

TcpChannel::RegisterResult TcpChannel::RegisterWaiter(PipeConn& conn,
                                                      std::uint64_t request_id,
                                                      Waiter* w) {
  std::scoped_lock lock(conn.mu);
  if (conn.broken != ErrCode::kOk) return RegisterResult::kBroken;
  // After a counter wrap a freshly minted id can collide with one still in
  // flight — or one whose caller timed out but whose response has not yet
  // arrived.  Accepting it would deliver the old call's late response to
  // this new call; refuse so the caller mints another id.
  if (conn.abandoned.count(request_id) != 0) return RegisterResult::kIdInUse;
  const auto [it, inserted] = conn.waiting.emplace(request_id, w);
  if (!inserted) return RegisterResult::kIdInUse;
  pipeline_depth_->Record(static_cast<common::Nanos>(conn.waiting.size()));
  return RegisterResult::kOk;
}

void TcpChannel::AwaitWaiter(PipeConn& conn, std::uint64_t request_id,
                             Waiter& w, common::Nanos deadline_abs) {
  // Spin-then-park.  A blocking caller's response is typically one loopback
  // round trip away; parking on the cv immediately would put two sequential
  // futex wake-ups (epoll -> reactor -> caller) on every call's critical
  // path, which on a busy single-core host costs more than the RPC itself.
  // Yield-spin briefly — ceding the CPU to the reactor and the server — and
  // only fall back to the cv for responses that are genuinely slow.
  constexpr common::Nanos kSpinNs = 200'000;
  const common::Nanos spin_until =
      std::min(common::CpuTimer::Now() + kSpinNs, deadline_abs);
  for (;;) {
    {
      std::scoped_lock spin_lock(conn.mu);
      if (w.done) return;
      if (conn.broken != ErrCode::kOk) {
        w.done = true;
        w.fail = conn.broken;
        return;
      }
    }
    if (common::CpuTimer::Now() >= spin_until) break;
    std::this_thread::yield();
  }
  // The reactor thread completes the waiter (or fails the connection); this
  // thread only sleeps on its own cv until then.
  std::unique_lock lock(conn.mu);
  for (;;) {
    if (w.done) return;
    if (conn.broken != ErrCode::kOk) {
      w.done = true;
      w.fail = conn.broken;
      return;
    }
    const common::Nanos remaining = deadline_abs - common::CpuTimer::Now();
    if (remaining <= 0) {
      // Leave the request outstanding on the wire; the conn stays usable and
      // the reactor discards the eventual response.  Remember the id until
      // that response arrives so a post-wrap call can never mint it.
      if (conn.waiting.erase(request_id) > 0) conn.abandoned.insert(request_id);
      w.done = true;
      w.fail = ErrCode::kTimeout;
      return;
    }
    w.cv.wait_for(lock, std::chrono::nanoseconds(remaining));
  }
}

RpcResponse TcpChannel::DoCall(Endpoint& ep, std::uint16_t opcode,
                               std::string_view payload, const CallMeta& meta) {
  const common::RpcMetricsTable::PerOp& m = metrics_.For(opcode);
  m.calls->Add();
  m.bytes_sent->Add(payload.size());
  const common::CpuTimer timer;
  const auto fail = [&](ErrCode code) {
    m.errors->Add();
    m.latency->Record(timer.ElapsedNanos());
    return RpcResponse{code, {}};
  };
  if (payload.size() > options_.max_payload_bytes) return fail(ErrCode::kInvalid);
  if (options_.fault != nullptr) {
    const common::Nanos stall = options_.fault->OnClientSend();
    if (stall > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(stall));
  }
  const common::Nanos deadline_ns =
      meta.deadline_ns > 0 ? meta.deadline_ns : options_.call_deadline_ns;
  const common::Nanos deadline_abs = common::CpuTimer::Now() + deadline_ns;

  // Attempt 0 may share a pooled connection the server has silently closed;
  // when it fails before any response reached this call, attempt 1 retries
  // once on a fresh connection.  A fresh-connection failure is authoritative.
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool reused = false;
    ErrCode conn_err = ErrCode::kUnavailable;
    const std::shared_ptr<PipeConn> conn =
        AcquireConn(ep, deadline_abs, &reused, &conn_err);
    if (!conn) return fail(conn_err);
    wire::FrameHeader header;
    header.type = wire::FrameType::kRequest;
    header.opcode = opcode;
    header.trace_id = meta.trace_id != 0 ? meta.trace_id : NextTraceId();
    Waiter waiter;
    RegisterResult reg = RegisterResult::kIdInUse;
    // A collision (counter wrap onto an in-flight or abandoned id) just
    // means "mint another"; only a broken connection is a real failure.
    for (int mint = 0; mint < 8 && reg == RegisterResult::kIdInUse; ++mint) {
      header.request_id = NextRequestId(ep);
      reg = RegisterWaiter(*conn, header.request_id, &waiter);
    }
    if (reg != RegisterResult::kOk) {
      conn->inflight.fetch_sub(1, std::memory_order_relaxed);
      if (attempt == 0 && reused) continue;  // conn died under us
      return fail(ErrCode::kUnavailable);
    }
    if ((conn->peer_features.load(std::memory_order_acquire) &
         wire::kFeatureDeadline) != 0) {
      // Overload-control extension (docs/OVERLOAD.md): what is left of THIS
      // call's patience, re-stamped at send time, plus its priority class.
      const common::Nanos remaining = deadline_abs - common::CpuTimer::Now();
      if (remaining > 0) {
        header.deadline_budget_ns = static_cast<std::uint64_t>(remaining);
      }
      header.priority = static_cast<std::uint8_t>(meta.priority);
    }
    const std::string frame = wire::EncodeFrame(header, payload);
    Status st;
    {
      std::scoped_lock wlock(conn->write_mu);
      st = SendAll(conn->fd, frame, deadline_abs);
    }
    if (!st.ok()) {
      // A partially-sent frame desynchronizes every call on the stream.
      std::unique_lock lock(conn->mu);
      FailConnLocked(*conn, st.code());
      lock.unlock();
      conn->inflight.fetch_sub(1, std::memory_order_relaxed);
      if (attempt == 0 && reused && st.code() == ErrCode::kUnavailable) continue;
      return fail(st.code());
    }
    AwaitWaiter(*conn, header.request_id, waiter, deadline_abs);
    conn->inflight.fetch_sub(1, std::memory_order_relaxed);
    if (waiter.fail != ErrCode::kOk) {
      if (attempt == 0 && reused && waiter.fail == ErrCode::kUnavailable) {
        continue;
      }
      return fail(waiter.fail);
    }
    RpcResponse resp{waiter.frame.header.code, std::move(waiter.frame.payload)};
    if (!resp.ok()) m.errors->Add();
    m.bytes_received->Add(resp.payload.size());
    m.latency->Record(timer.ElapsedNanos());
    return resp;
  }
  return fail(ErrCode::kUnavailable);  // unreachable
}

std::vector<RpcResponse> TcpChannel::CallPipelined(
    NodeId server,
    const std::vector<std::pair<std::uint16_t, std::string>>& calls,
    const CallMeta& meta) {
  std::vector<RpcResponse> out(calls.size());
  for (RpcResponse& r : out) r.code = ErrCode::kUnavailable;
  if (calls.empty()) return out;
  const common::CpuTimer timer;
  for (const auto& [opcode, payload] : calls) {
    const common::RpcMetricsTable::PerOp& m = metrics_.For(opcode);
    m.calls->Add();
    m.bytes_sent->Add(payload.size());
  }
  const auto finish = [&] {
    const common::Nanos elapsed = timer.ElapsedNanos();
    for (std::size_t i = 0; i < calls.size(); ++i) {
      const common::RpcMetricsTable::PerOp& m = metrics_.For(calls[i].first);
      if (out[i].code != ErrCode::kOk) m.errors->Add();
      m.bytes_received->Add(out[i].payload.size());
      m.latency->Record(elapsed);
    }
  };
  const auto it = endpoints_.find(server);
  if (it == endpoints_.end()) {
    finish();
    return out;
  }
  Endpoint& ep = *it->second;
  const common::Nanos deadline_ns =
      meta.deadline_ns > 0 ? meta.deadline_ns : options_.call_deadline_ns;
  const common::Nanos deadline_abs = common::CpuTimer::Now() + deadline_ns;
  bool reused = false;
  ErrCode conn_err = ErrCode::kUnavailable;
  const std::shared_ptr<PipeConn> conn =
      AcquireConn(ep, deadline_abs, &reused, &conn_err);
  if (!conn) {
    for (RpcResponse& r : out) r.code = conn_err;
    finish();
    return out;
  }
  // AcquireConn reserved one slot; reserve the rest of the burst.
  conn->inflight.fetch_add(static_cast<std::uint32_t>(calls.size()) - 1,
                           std::memory_order_relaxed);
  const std::uint64_t trace_id =
      meta.trace_id != 0 ? meta.trace_id : NextTraceId();
  const bool deadline_on_wire =
      (conn->peer_features.load(std::memory_order_acquire) &
       wire::kFeatureDeadline) != 0;
  std::vector<Waiter> waiters(calls.size());
  std::vector<std::uint64_t> rids(calls.size(), 0);
  std::vector<bool> registered(calls.size(), false);
  std::string burst;
  for (std::size_t i = 0; i < calls.size(); ++i) {
    if (calls[i].second.size() > options_.max_payload_bytes) {
      waiters[i].done = true;
      waiters[i].fail = ErrCode::kInvalid;
      continue;
    }
    wire::FrameHeader header;
    header.type = wire::FrameType::kRequest;
    header.opcode = calls[i].first;
    header.trace_id = trace_id;
    if (deadline_on_wire) {
      const common::Nanos remaining = deadline_abs - common::CpuTimer::Now();
      if (remaining > 0) {
        header.deadline_budget_ns = static_cast<std::uint64_t>(remaining);
      }
      header.priority = static_cast<std::uint8_t>(meta.priority);
    }
    RegisterResult reg = RegisterResult::kIdInUse;
    for (int mint = 0; mint < 8 && reg == RegisterResult::kIdInUse; ++mint) {
      header.request_id = NextRequestId(ep);
      reg = RegisterWaiter(*conn, header.request_id, &waiters[i]);
    }
    if (reg != RegisterResult::kOk) {
      waiters[i].done = true;
      waiters[i].fail = ErrCode::kUnavailable;
      continue;
    }
    rids[i] = header.request_id;
    registered[i] = true;
    burst += wire::EncodeFrame(header, calls[i].second);
  }
  if (!burst.empty()) {
    Status st;
    {
      std::scoped_lock wlock(conn->write_mu);
      st = SendAll(conn->fd, burst, deadline_abs);
    }
    if (!st.ok()) {
      std::scoped_lock lock(conn->mu);
      FailConnLocked(*conn, st.code());
    }
  }
  for (std::size_t i = 0; i < calls.size(); ++i) {
    if (registered[i]) AwaitWaiter(*conn, rids[i], waiters[i], deadline_abs);
  }
  conn->inflight.fetch_sub(static_cast<std::uint32_t>(calls.size()),
                           std::memory_order_relaxed);
  for (std::size_t i = 0; i < calls.size(); ++i) {
    if (waiters[i].fail != ErrCode::kOk) {
      out[i].code = waiters[i].fail;
    } else {
      out[i].code = waiters[i].frame.header.code;
      out[i].payload = std::move(waiters[i].frame.payload);
    }
  }
  finish();
  return out;
}

void TcpChannel::CallAsync(NodeId server, std::uint16_t opcode,
                           std::string payload,
                           std::function<void(RpcResponse)> done) {
  CallAsyncMeta(server, opcode, std::move(payload), CallMeta{}, std::move(done));
}

void TcpChannel::CallAsyncMeta(NodeId server, std::uint16_t opcode,
                               std::string payload, const CallMeta& meta,
                               std::function<void(RpcResponse)> done) {
  const auto it = endpoints_.find(server);
  if (it == endpoints_.end()) {
    const common::RpcMetricsTable::PerOp& m = metrics_.For(opcode);
    m.calls->Add();
    m.errors->Add();
    done(RpcResponse{ErrCode::kUnavailable, {}});
    return;
  }
  done(DoCall(*it->second, opcode, payload, meta));
}

}  // namespace loco::net
