#include "net/dedup.h"

namespace loco::net {

DedupWindow::DedupWindow(std::vector<std::uint16_t> opcodes, Options options)
    : opcodes_(opcodes.begin(), opcodes.end()),
      options_(options),
      replays_(&common::MetricsRegistry::Default().GetCounter(
          "rpc.tcp_server.dedup.replays")) {}

std::string DedupWindow::Key(const wire::FrameHeader& header,
                             std::string_view payload) {
  std::string key;
  key.reserve(10 + payload.size());
  for (int shift = 0; shift < 64; shift += 8) {
    key.push_back(static_cast<char>((header.trace_id >> shift) & 0xFF));
  }
  key.push_back(static_cast<char>(header.opcode & 0xFF));
  key.push_back(static_cast<char>((header.opcode >> 8) & 0xFF));
  key.append(payload.data(), payload.size());
  return key;
}

DedupWindow::Outcome DedupWindow::Begin(const std::string& key, ErrCode* code,
                                        std::string* payload) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto [it, inserted] = entries_.try_emplace(key);
    if (inserted) return Outcome::kExecute;
    if (it->second.done) {
      *code = it->second.code;
      *payload = it->second.payload;
      replays_->Add();
      return Outcome::kReplay;
    }
    // The owner is still executing this key.  Wait for its completion —
    // returning early would let the caller re-run the handler concurrently,
    // which is exactly the double-apply this window exists to prevent.  The
    // loop re-probes after waking: if the entry was evicted in between, the
    // cached response is gone and the only option left is to execute.
    cv_.wait(lock);
  }
}

void DedupWindow::Complete(const std::string& key, ErrCode code,
                           std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;  // evicted under pathological pressure
  it->second.done = true;
  it->second.code = code;
  it->second.payload.assign(payload.data(), payload.size());
  completed_.push_back(key);
  while (completed_.size() > options_.capacity) {
    entries_.erase(completed_.front());
    completed_.pop_front();
  }
  cv_.notify_all();
}

}  // namespace loco::net
