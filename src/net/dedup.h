// Bounded server-side request-deduplication window (idempotent replay).
//
// A client that retries a mutation after a timeout or a torn connection
// cannot know whether the original attempt was applied.  Request ids ride
// the TCP frame header already, so the server keeps a bounded window of
// recently executed mutations and *replays the cached response* instead of
// double-applying Create/Mkdir/Remove/Rename.
//
// Keying: raw request ids are minted per attempt by TcpChannel, so they are
// NOT stable across a retry.  The trace id is — net::Call stamps one per
// client operation and the resilient channel reuses it for every attempt —
// so the window keys on the exact bytes (trace_id, opcode, payload).  Two
// calls that share a trace id (a CallMany fan-out or a pipelined burst)
// differ in payload or land on different servers, so they never collide; a
// retried or duplicated frame matches exactly.  The key is the literal byte
// string, not a hash: a 64-bit digest would let an unlucky (or adversarial)
// collision replay a *different* request's cached response as if it were
// this one — a silent cross-request data leak the window must rule out by
// construction (tests/net/dedup_test.cc covers the collision case).
//
// Concurrency: the first arrival of a key executes the handler; concurrent
// duplicates block on a condition variable until the owner completes, then
// replay the cached (code, payload).  Completed entries are evicted FIFO
// once the window exceeds its capacity.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "net/wire.h"

namespace loco::net {

class DedupWindow {
 public:
  struct Options {
    std::size_t capacity = 1024;  // completed entries retained
  };

  // `opcodes` selects which operations are deduplicated (mutations only;
  // reads are idempotent and not worth caching).
  explicit DedupWindow(std::vector<std::uint16_t> opcodes)
      : DedupWindow(std::move(opcodes), Options()) {}
  DedupWindow(std::vector<std::uint16_t> opcodes, Options options);

  bool Eligible(std::uint16_t opcode) const noexcept {
    return opcodes_.count(opcode) != 0;
  }

  // Stable identity of a request across retries and duplicated frames: the
  // exact bytes of (trace_id, opcode, payload).  Collision-free by
  // construction — two distinct requests can never share a key.
  static std::string Key(const wire::FrameHeader& header,
                         std::string_view payload);

  enum class Outcome {
    kExecute,  // first arrival: caller runs the handler, must call Complete
    kReplay,   // duplicate: *code/*payload carry the cached response
  };
  Outcome Begin(const std::string& key, ErrCode* code, std::string* payload);
  void Complete(const std::string& key, ErrCode code, std::string_view payload);

  std::uint64_t replays() const noexcept { return replays_->value(); }

 private:
  struct Entry {
    bool done = false;
    ErrCode code = ErrCode::kOk;
    std::string payload;
  };

  const std::unordered_set<std::uint16_t> opcodes_;
  const Options options_;
  common::Counter* replays_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, Entry> entries_;
  std::deque<std::string> completed_;  // eviction order
};

}  // namespace loco::net
