// Awaitable RPC calls over net::Channel.
//
//   RpcResponse r  = co_await Call(ch, server, opcode, payload);
//   auto responses = co_await CallMany(ch, servers, opcode, payload);
//
// Both awaiters handle the completed-inline case (synchronous transports)
// without suspending, and the deferred case (simulator) by resuming the
// awaiting coroutine from the completion callback.
//
// Every call carries a CallMeta.  Callers that do not pass one get a fresh
// trace id stamped here, so each client-visible operation's RPCs share a
// correlation id end to end (transports that speak a wire format put it in
// the frame header; see net/wire.h).  CallMany shares one meta — and thus
// one trace id — across every leg of the fan-out.
#pragma once

#include <atomic>
#include <coroutine>
#include <string>
#include <utility>
#include <vector>

#include "net/rpc.h"

namespace loco::net {

class CallAwaiter {
 public:
  CallAwaiter(Channel& channel, NodeId server, std::uint16_t opcode,
              std::string payload, CallMeta meta = {})
      : channel_(channel),
        server_(server),
        opcode_(opcode),
        payload_(std::move(payload)),
        meta_(meta) {}

  bool await_ready() const noexcept { return false; }

  bool await_suspend(std::coroutine_handle<> h) {
    waiting_ = h;
    if (meta_.trace_id == 0) meta_.trace_id = NextTraceId();
    channel_.CallAsyncMeta(server_, opcode_, std::move(payload_), meta_,
                           [this](RpcResponse resp) {
                             response_ = std::move(resp);
                             // If the awaiting coroutine already committed to
                             // suspension, we own its resumption.
                             if (latch_.exchange(true, std::memory_order_acq_rel)) {
                               waiting_.resume();
                             }
                           });
    // If the callback already fired (inline completion), do not suspend.
    return !latch_.exchange(true, std::memory_order_acq_rel);
  }

  RpcResponse await_resume() noexcept { return std::move(response_); }

 private:
  Channel& channel_;
  NodeId server_;
  std::uint16_t opcode_;
  std::string payload_;
  CallMeta meta_;
  std::coroutine_handle<> waiting_;
  RpcResponse response_;
  std::atomic<bool> latch_{false};
};

class CallManyAwaiter {
 public:
  CallManyAwaiter(Channel& channel, std::vector<NodeId> servers,
                  std::uint16_t opcode, std::string payload, CallMeta meta = {})
      : channel_(channel),
        servers_(std::move(servers)),
        opcode_(opcode),
        payload_(std::move(payload)),
        meta_(meta) {}

  bool await_ready() const noexcept { return false; }

  bool await_suspend(std::coroutine_handle<> h) {
    waiting_ = h;
    if (meta_.trace_id == 0) meta_.trace_id = NextTraceId();
    channel_.CallManyAsyncMeta(servers_, opcode_, std::move(payload_), meta_,
                               [this](std::vector<RpcResponse> resp) {
                                 responses_ = std::move(resp);
                                 if (latch_.exchange(true, std::memory_order_acq_rel)) {
                                   waiting_.resume();
                                 }
                               });
    return !latch_.exchange(true, std::memory_order_acq_rel);
  }

  std::vector<RpcResponse> await_resume() noexcept { return std::move(responses_); }

 private:
  Channel& channel_;
  std::vector<NodeId> servers_;
  std::uint16_t opcode_;
  std::string payload_;
  CallMeta meta_;
  std::coroutine_handle<> waiting_;
  std::vector<RpcResponse> responses_;
  std::atomic<bool> latch_{false};
};

inline CallAwaiter Call(Channel& channel, NodeId server, std::uint16_t opcode,
                        std::string payload, CallMeta meta = {}) {
  return CallAwaiter(channel, server, opcode, std::move(payload), meta);
}

inline CallManyAwaiter CallMany(Channel& channel, std::vector<NodeId> servers,
                                std::uint16_t opcode, std::string payload,
                                CallMeta meta = {}) {
  return CallManyAwaiter(channel, std::move(servers), opcode,
                         std::move(payload), meta);
}

}  // namespace loco::net
