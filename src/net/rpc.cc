#include "net/rpc.h"

#include <memory>

namespace loco::net {

void Channel::CallManyAsync(const std::vector<NodeId>& servers,
                            std::uint16_t opcode, std::string payload,
                            std::function<void(std::vector<RpcResponse>)> done) {
  // Generic fan-out: issue sequentially, collect in order.  Correct for any
  // transport (including ones that complete synchronously inside CallAsync).
  struct State {
    std::vector<RpcResponse> responses;
    std::size_t pending = 0;
    std::function<void(std::vector<RpcResponse>)> done;
  };
  auto state = std::make_shared<State>();
  state->responses.resize(servers.size());
  state->pending = servers.size();
  state->done = std::move(done);
  if (servers.empty()) {
    state->done(std::move(state->responses));
    return;
  }
  for (std::size_t i = 0; i < servers.size(); ++i) {
    CallAsync(servers[i], opcode, payload, [state, i](RpcResponse resp) {
      state->responses[i] = std::move(resp);
      if (--state->pending == 0) state->done(std::move(state->responses));
    });
  }
}

}  // namespace loco::net
