#include "net/rpc.h"

#include <atomic>
#include <memory>

namespace loco::net {

std::uint64_t NextTraceId() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void Channel::CallAsyncMeta(NodeId server, std::uint16_t opcode,
                            std::string payload, const CallMeta& meta,
                            std::function<void(RpcResponse)> done) {
  (void)meta;  // transports without a wire representation drop the metadata
  CallAsync(server, opcode, std::move(payload), std::move(done));
}

namespace {

// Shared fan-out state: issue sequentially, collect in order.  Correct for
// any transport (including ones that complete synchronously inside the
// per-server call).
struct FanOutState {
  std::vector<RpcResponse> responses;
  std::size_t pending = 0;
  std::function<void(std::vector<RpcResponse>)> done;
};

template <typename Issue>
void FanOut(const std::vector<NodeId>& servers, Issue issue,
            std::function<void(std::vector<RpcResponse>)> done) {
  auto state = std::make_shared<FanOutState>();
  state->responses.resize(servers.size());
  state->pending = servers.size();
  state->done = std::move(done);
  if (servers.empty()) {
    state->done(std::move(state->responses));
    return;
  }
  for (std::size_t i = 0; i < servers.size(); ++i) {
    issue(servers[i], [state, i](RpcResponse resp) {
      state->responses[i] = std::move(resp);
      if (--state->pending == 0) state->done(std::move(state->responses));
    });
  }
}

}  // namespace

void Channel::CallManyAsync(const std::vector<NodeId>& servers,
                            std::uint16_t opcode, std::string payload,
                            std::function<void(std::vector<RpcResponse>)> done) {
  FanOut(
      servers,
      [this, opcode, &payload](NodeId server,
                               std::function<void(RpcResponse)> leg_done) {
        CallAsync(server, opcode, payload, std::move(leg_done));
      },
      std::move(done));
}

void Channel::CallManyAsyncMeta(
    const std::vector<NodeId>& servers, std::uint16_t opcode,
    std::string payload, const CallMeta& meta,
    std::function<void(std::vector<RpcResponse>)> done) {
  FanOut(
      servers,
      [this, opcode, &payload, &meta](NodeId server,
                                      std::function<void(RpcResponse)> leg_done) {
        CallAsyncMeta(server, opcode, payload, meta, std::move(leg_done));
      },
      std::move(done));
}

}  // namespace loco::net
