// Server→client push notification plane (docs/NET.md, docs/LEASES.md).
//
// A v2 client that wants push notifications opens one *dedicated* connection
// to the server and performs the kCtlHello exchange with wire::kFeatureNotify
// set.  The server then streams wire::FrameType::kNotify frames on that
// connection: each carries a notify opcode (wire::kNotifyInvalidate /
// kNotifyServerUp), a per-connection sequence number in the request-id field
// (starting at 1), and an event payload.  The stream is ack-less: the client
// never confirms receipt.  Instead every frame is sequence-numbered and the
// client treats a gap — or any reconnect — as "I may have missed pushes" and
// resynchronizes by dropping its cached state (NotifyEvent::Kind::kResync).
// Losing the stream entirely is safe too: the lease timeout remains the
// correctness fallback, the push plane only shrinks the stale window.
//
//   server side: Notifier (implemented by net::TcpServer) — queue a push for
//                one client session or broadcast to all of them;
//   client side: NotifyListener — owns the dedicated connection + a reader
//                thread, decodes events, detects gaps/epoch bumps, reconnects
//                with backoff, and degrades permanently when the server does
//                not speak notify.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

#include "common/clock.h"
#include "common/result.h"
#include "net/rpc.h"
#include "net/wire.h"

namespace loco::net {

class Reactor;

// Capability to push notify frames to connected clients.  Implemented by
// net::TcpServer; servers hand it to their handler (the DMS) which calls it
// from worker threads — implementations must be thread-safe.
class Notifier {
 public:
  virtual ~Notifier() = default;

  // Queue one push for `client_id`'s notify session.  False when no such
  // session exists (client gone, or it never negotiated notify) — callers
  // use that to garbage-collect per-client state such as lease watches.
  virtual bool PushNotify(std::uint64_t client_id, std::uint16_t opcode,
                          std::string payload) = 0;

  // Queue one push for every notify session; returns the session count.
  virtual std::size_t BroadcastNotify(std::uint16_t opcode,
                                      std::string payload) = 0;
};

// ---------------------------------------------------------------------------
// Event payloads (the bytes inside a kNotify frame)
// ---------------------------------------------------------------------------

// kNotifyInvalidate: a directory the client holds a lease on changed.
struct InvalidateEvent {
  std::string path;      // full path of the invalidated directory
  bool subtree = false;  // true: every cached entry under `path` is stale too
  // Sender's wall clock (common::WallClockNs) at push time; receivers on the
  // same host record now-wall_ts_ns as the end-to-end invalidation latency.
  std::uint64_t wall_ts_ns = 0;
};

std::string EncodeInvalidate(const InvalidateEvent& event);
Status DecodeInvalidate(std::string_view bytes, InvalidateEvent* out);

// kNotifyServerUp: a server process (re)started — breaker gossip.  The DMS
// broadcasts these when a daemon announces itself (core::proto::kDmsAnnounce)
// so clients reset the node's circuit breaker immediately instead of waiting
// out the half-open probe interval.
struct ServerUpEvent {
  NodeId node = 0;  // cluster node id (the client's channel registration)
  std::uint64_t epoch = 0;
  std::uint64_t wall_ts_ns = 0;
};

std::string EncodeServerUp(const ServerUpEvent& event);
Status DecodeServerUp(std::string_view bytes, ServerUpEvent* out);

// ---------------------------------------------------------------------------
// Client-side listener
// ---------------------------------------------------------------------------

// One decoded occurrence on the notify stream, delivered to the callback.
struct NotifyEvent {
  enum class Kind {
    kInvalidate,  // `invalidate` is set
    kServerUp,    // `server_up` is set
    kResync,      // missed pushes are possible (gap / reconnect / epoch bump):
                  // drop cached state and fall back to lease semantics
    kStreamDown,  // the stream just went down; leases are the only guard
                  // until the listener reconnects (or forever, if degraded)
  };
  Kind kind = Kind::kResync;
  InvalidateEvent invalidate;
  ServerUpEvent server_up;
};

class NotifyListener {
 public:
  struct Options {
    std::string host;
    std::uint16_t port = 0;
    std::uint64_t client_id = 0;  // must match the RPC channel's client id
    common::Nanos connect_timeout_ns = common::kSecond;
    common::Nanos hello_timeout_ns = 2 * common::kSecond;
    // Reconnect backoff: doubles from base to cap while the server is down.
    common::Nanos backoff_base_ns = 50 * common::kMilli;
    common::Nanos backoff_cap_ns = 2 * common::kSecond;
    // Shared client-side reactor (not owned; must outlive the listener).
    // When set, the stream's readability waits ride the reactor's epoll
    // thread (core::Connect passes the TcpChannel's reactor so the mount
    // runs one I/O thread); when null the listener falls back to a private
    // two-descriptor ::poll.
    Reactor* reactor = nullptr;
  };

  // Invoked on the listener's reader thread.  Must not block for long and
  // must not destroy the listener.
  using Callback = std::function<void(const NotifyEvent&)>;

  NotifyListener(Options options, Callback callback);
  ~NotifyListener();
  NotifyListener(const NotifyListener&) = delete;
  NotifyListener& operator=(const NotifyListener&) = delete;

  // Spawn the reader thread (connects in the background).  One Start per
  // instance.
  Status Start();
  // Close the stream and join the thread.  Idempotent; run by the destructor.
  void Stop();

  // The server answered the hello but does not speak notify (feature bit
  // missing or the opcode unsupported): the listener has shut down for good
  // and the lease timeout is the only staleness bound.
  bool degraded() const noexcept {
    return degraded_.load(std::memory_order_acquire);
  }
  // True between a successful hello and the next stream failure.
  bool connected() const noexcept {
    return connected_.load(std::memory_order_acquire);
  }
  // Server epoch from the most recent hello (0 before the first).
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
  void Run();
  // One connect → hello → read-frames cycle.  Returns false when the
  // listener must not reconnect (stop requested or degraded).
  bool RunOnce(bool* ever_connected, bool* connected_this_cycle);
  // Read one frame; false on stream failure or stop.  deadline_abs == 0
  // waits forever (the stop pipe still interrupts it).
  bool RecvOne(int fd, wire::FrameReader* reader, wire::Frame* out,
               common::Nanos deadline_abs);
  void Emit(NotifyEvent::Kind kind);

  Options options_;
  Callback callback_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> degraded_{false};
  std::atomic<bool> connected_{false};
  std::atomic<std::uint64_t> epoch_{0};
  int stop_fds_[2] = {-1, -1};  // self-pipe: Stop() interrupts the read poll
};

}  // namespace loco::net
