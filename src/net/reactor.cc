#include "net/reactor.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <fcntl.h>
#include <memory>

namespace loco::net {

namespace {

bool MakeNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

Reactor::Reactor() {
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return;
  if (::pipe(wake_fds_) != 0 || !MakeNonBlocking(wake_fds_[0]) ||
      !MakeNonBlocking(wake_fds_[1])) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    for (int& fd : wake_fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    return;
  }
  struct epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fds_[0];
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev);
  started_ = true;
  thread_ = std::thread(&Reactor::Loop, this);
}

Reactor::~Reactor() {
  if (started_) {
    stop_.store(true, std::memory_order_release);
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
    if (thread_.joinable()) thread_.join();
  }
  // Dropping the callbacks releases whatever their captures keep alive
  // (closing connection fds along the way); the loop is gone, so no lock.
  entries_.clear();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

Status Reactor::Add(int fd, ReadCallback on_readable) {
  if (!started_ || stop_.load(std::memory_order_acquire)) {
    return ErrStatus(ErrCode::kUnavailable, "reactor not running");
  }
  if (fd < 0) return ErrStatus(ErrCode::kInvalid, "bad descriptor");
  std::scoped_lock lock(mu_);
  const auto [it, inserted] = entries_.emplace(fd, std::move(on_readable));
  if (!inserted) {
    return ErrStatus(ErrCode::kInvalid, "descriptor already registered");
  }
  struct epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    entries_.erase(it);
    return ErrStatus(ErrCode::kIo, "epoll_ctl add failed");
  }
  return OkStatus();
}

void Reactor::Remove(int fd) {
  if (!started_ || fd < 0) return;
  std::unique_lock lock(mu_);
  // Wait out an in-flight callback for this descriptor: when Remove returns,
  // the callback is guaranteed not to run again (its captures may be freed).
  active_cv_.wait(lock, [&] { return active_fd_ != fd; });
  const auto it = entries_.find(fd);
  if (it == entries_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ReadCallback dead = std::move(it->second);
  entries_.erase(it);
  lock.unlock();
  // Destroy outside the lock: the captures may close the fd / free the
  // connection, neither of which should run under mu_.
  dead = nullptr;
}

void Reactor::Loop() {
  std::array<struct epoll_event, 64> events;
  char drain[256];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    wakeups_->Add();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fds_[0]) {
        while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      events_->Add();
      std::unique_lock lock(mu_);
      const auto it = entries_.find(fd);
      if (it == entries_.end()) continue;  // removed since epoll_wait
      active_fd_ = fd;
      ReadCallback* cb = &it->second;
      lock.unlock();
      // Safe without the lock: Remove(fd) blocks on active_fd_, other
      // entries' mutation never invalidates this node (unordered_map).
      const bool keep = (*cb)();
      lock.lock();
      if (!keep) {
        const auto again = entries_.find(fd);
        if (again != entries_.end()) {
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
          ReadCallback dead = std::move(again->second);
          entries_.erase(again);
          active_fd_ = -1;
          lock.unlock();
          active_cv_.notify_all();
          dead = nullptr;  // may close the fd; runs outside mu_
          continue;
        }
      }
      active_fd_ = -1;
      lock.unlock();
      active_cv_.notify_all();
    }
  }
}

int Reactor::AwaitReadable(int fd, int cancel_fd, common::Nanos deadline_abs) {
  if (!started_) return -1;
  struct WaitState {
    std::mutex mu;
    std::condition_variable cv;
    int result = 0;  // 0 = still waiting / deadline; 1 = fd; -1 = cancel
  };
  auto state = std::make_shared<WaitState>();
  bool fd_registered = false;
  bool cancel_registered = false;
  // Register the cancel side first so a stop racing registration still wins.
  if (cancel_fd >= 0) {
    cancel_registered = Add(cancel_fd, [state] {
                          std::scoped_lock lock(state->mu);
                          if (state->result == 0) state->result = -1;
                          state->cv.notify_one();
                          return false;  // one-shot
                        }).ok();
    if (!cancel_registered) return -1;
  }
  if (fd >= 0) {
    fd_registered = Add(fd, [state] {
                      std::scoped_lock lock(state->mu);
                      if (state->result == 0) state->result = 1;
                      state->cv.notify_one();
                      return false;  // one-shot
                    }).ok();
    if (!fd_registered) {
      if (cancel_registered) Remove(cancel_fd);
      return -1;
    }
  }
  int result = 0;
  {
    std::unique_lock lock(state->mu);
    for (;;) {
      if (state->result != 0) {
        result = state->result;
        break;
      }
      if (deadline_abs > 0) {
        const common::Nanos remaining = deadline_abs - common::CpuTimer::Now();
        if (remaining <= 0) break;  // result stays 0: deadline
        state->cv.wait_for(lock, std::chrono::nanoseconds(remaining));
      } else {
        state->cv.wait(lock);
      }
    }
  }
  // One-shot callbacks self-deregister when they fire; Remove covers the
  // ones that did not (no-op otherwise).
  if (fd_registered) Remove(fd);
  if (cancel_registered) Remove(cancel_fd);
  return result;
}

}  // namespace loco::net
