// RPC core types.
//
// Every metadata service (LocoFS's DMS/FMS and all baseline services) is an
// RpcHandler: a request handler keyed by (opcode, payload bytes).  Clients
// reach servers through a Channel.  Three Channel implementations exist:
//
//   * net::InProcTransport — executes handlers on the calling thread (or
//     with real injected latency), used by the examples and the
//     multi-threaded integration tests;
//   * sim::SimTransport    — schedules the exchange on the discrete-event
//     simulator's virtual clock, used by every paper experiment;
//   * net::TcpChannel      — real sockets against net::TcpServer daemons
//     (see net/tcp.h and docs/NET.md).
//
// Channel is deliberately asynchronous (completion callback) so the same
// client code — written as coroutines over Channel — runs unchanged on all.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/result.h"

namespace loco::net {

// Identifies a server node within a cluster.
using NodeId = std::uint32_t;

constexpr NodeId kInvalidNode = ~NodeId{0};

struct RpcResponse {
  ErrCode code = ErrCode::kOk;
  std::string payload;
  // Virtual time the handler spent on modeled hardware the host cannot
  // execute (storage device I/O, journal flushes).  The simulator adds this
  // to the service time; net::TcpServer charges it as a real sleep on the
  // dispatching worker thread; the in-process transport ignores it.
  common::Nanos extra_service_ns = 0;

  bool ok() const noexcept { return code == ErrCode::kOk; }
};

// Transport-provided context for one request.  Only transports with a wire
// identity fill it in: net::TcpServer passes the client id learned from the
// connection's hello (0 for v1 peers or anonymous clients) so handlers can
// attribute requests — e.g. the DMS excludes the mutating client from its
// own lease invalidations.
struct HandlerContext {
  std::uint64_t client_id = 0;
  std::uint64_t trace_id = 0;
};

// Server-side request handler.
class RpcHandler {
 public:
  virtual ~RpcHandler() = default;
  virtual RpcResponse Handle(std::uint16_t opcode, std::string_view payload) = 0;

  // Context-aware entry point; transports that know who is calling use this.
  // Defaults to the context-free Handle so existing handlers work unchanged.
  // Wrapping handlers (mux routers, fault decorators) MUST forward this
  // overload too or the context is silently dropped.
  virtual RpcResponse HandleCtx(std::uint16_t opcode, std::string_view payload,
                                const HandlerContext& ctx) {
    (void)ctx;
    return Handle(opcode, payload);
  }
};

// Priority class of a call (mirrors wire::kPriority*): foreground is the
// serving hot path, background marks housekeeping traffic (GC liveness
// probes, fsck scans, session keepalives) a saturated server sheds first,
// control marks admin RPCs that must get through during an overload.
enum class Priority : std::uint8_t {
  kForeground = 0,
  kBackground = 1,
  kControl = 2,
};

// Per-call metadata carried alongside a request.  Transports that speak a
// real wire format (net::TcpChannel) put the trace id, remaining deadline
// budget and priority in the frame header and enforce the deadline; the
// in-process and simulated transports ignore these fields.
struct CallMeta {
  // Correlates every RPC issued on behalf of one client operation (the
  // ROADMAP tracing groundwork).  0 means "unassigned": net::Call stamps a
  // fresh process-unique id, so by the time a transport sees the meta the id
  // is always set.
  std::uint64_t trace_id = 0;
  // Per-call deadline; 0 selects the transport's default.
  common::Nanos deadline_ns = 0;
  // Priority class stamped on the wire (docs/OVERLOAD.md).
  Priority priority = Priority::kForeground;
};

// Process-unique, monotonically increasing trace id (never returns 0).
std::uint64_t NextTraceId() noexcept;

// Client-side capability to issue calls.
class Channel {
 public:
  virtual ~Channel() = default;

  // Issue one call; `done` is invoked exactly once with the response.
  // `done` MAY be invoked before CallAsync returns (synchronous transports).
  virtual void CallAsync(NodeId server, std::uint16_t opcode, std::string payload,
                         std::function<void(RpcResponse)> done) = 0;

  // CallAsync with per-call metadata.  The default forwards to CallAsync,
  // dropping the meta — correct for transports with no wire representation
  // for it.  This is what the net::Call awaiters invoke.
  virtual void CallAsyncMeta(NodeId server, std::uint16_t opcode,
                             std::string payload, const CallMeta& meta,
                             std::function<void(RpcResponse)> done);

  // Issue the same call to many servers concurrently; `done` receives the
  // responses in `servers` order once all have completed.  The default
  // implementation issues them back-to-back; the simulator overlaps them in
  // virtual time (one round trip total, as a real client would).
  virtual void CallManyAsync(const std::vector<NodeId>& servers,
                             std::uint16_t opcode, std::string payload,
                             std::function<void(std::vector<RpcResponse>)> done);

  // Fan-out variant that shares one CallMeta (same trace id, same deadline)
  // across every leg; routed through CallAsyncMeta so metadata-aware
  // transports see it per call.
  void CallManyAsyncMeta(const std::vector<NodeId>& servers,
                         std::uint16_t opcode, std::string payload,
                         const CallMeta& meta,
                         std::function<void(std::vector<RpcResponse>)> done);
};

}  // namespace loco::net
