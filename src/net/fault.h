// Deterministic, seed-driven fault injection for the TCP transport and the
// KV stores.
//
// LocoFS's loose coupling (SC '17 §3.4) deliberately accepts weakened
// distributed consistency: a crash between the file-inode write and the
// dirent append leaves a dangling dirent or an orphaned inode that must be
// detected and repaired out of band.  To reach those states on demand (and
// to prove the client's resilience layer against them) every daemon accepts
// a `--fault-spec` that provokes the failure modes of a real deployment:
//
//   seed=N          RNG seed; the same spec + seed yields the same fault
//                   sequence for a given arrival order (defaults to 1)
//   drop=P          swallow a decoded request frame with probability P
//   dup=P           deliver a decoded request frame twice
//   delay=P         stall a request before service (see delay_ms)
//   delay_ms=N      duration of an injected stall (default 2 ms)
//   reset=P         tear down the connection instead of serving the frame
//   short_write=P   truncate the response mid-frame and drop the connection
//   crash_after=N   _exit(137) after decoding N request frames (0 = never);
//                   simulates kill -9 between a KV write and its successor
//   kv_put_fail=P   fail a KV Put/PatchValue with kIo
//   kv_fail_after=N all KV puts fail after N successes (torn multi-key
//                   sequences: earlier keys applied, later ones lost)
//   notify_drop=P   swallow an outbound kNotify push frame (its sequence
//                   number is still consumed, so the client sees a gap and
//                   resynchronizes)
//   notify_dup=P    send a kNotify push frame twice with the same sequence
//                   number (the client must discard the stale copy)
//   queue_full=P    treat the server's admission queue as full for this
//                   request (shed with kOverloaded regardless of real depth;
//                   docs/OVERLOAD.md)
//
// Probabilities are in [0, 1].  Every injected fault increments a
// `faults.injected.<kind>` counter so runs can attest what actually fired.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/rng.h"

namespace loco::net {

struct FaultSpec {
  std::uint64_t seed = 1;
  double drop = 0.0;
  double dup = 0.0;
  double delay = 0.0;
  common::Nanos delay_ns = 2 * common::kMilli;
  double reset = 0.0;
  double short_write = 0.0;
  std::uint64_t crash_after = 0;
  double kv_put_fail = 0.0;
  std::uint64_t kv_fail_after = 0;
  double notify_drop = 0.0;
  double notify_dup = 0.0;
  double queue_full = 0.0;

  // Parse the comma-separated `key=value` grammar above.  Unknown keys and
  // out-of-range probabilities are kInvalid.
  static Result<FaultSpec> Parse(std::string_view text);

  // True if any fault can ever fire (daemons skip the hooks entirely when
  // the spec is inert).
  bool Armed() const noexcept;
};

// Thread-safe deterministic fault source.  One instance per process; the
// transport and the FaultyKv wrapper share it so `seed` governs the whole
// fault plane.  Decisions are drawn from one RNG under a mutex: for a fixed
// arrival order the sequence of fates is reproducible.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec);

  // Fate of one decoded request frame (TcpServer calls this once per frame).
  struct FrameFate {
    bool drop = false;
    bool dup = false;
    bool reset = false;
    bool crash = false;              // caller must _exit after counting
    common::Nanos delay_ns = 0;      // stall before service when > 0
  };
  FrameFate OnServerFrame();

  // True if this response should be truncated mid-frame (conn then drops).
  bool ShortWriteResponse();

  // Fate of one outbound kNotify push frame (TcpServer calls this once per
  // push per session).
  struct NotifyFate {
    bool drop = false;
    bool dup = false;
  };
  NotifyFate OnNotifyFrame();

  // Client-side stall before sending a request (TcpChannel hook).
  common::Nanos OnClientSend();

  // True if this KV Put/PatchValue should fail with kIo (FaultyKv hook).
  bool FailKvPut();

  // True if the server should pretend its admission queue is full for this
  // request and shed it with kOverloaded (TcpServer::AdmitWork hook).
  bool ForceQueueFull();

  const FaultSpec& spec() const noexcept { return spec_; }

 private:
  const FaultSpec spec_;
  std::mutex mu_;
  common::Rng rng_;
  std::uint64_t frames_ = 0;
  std::uint64_t kv_puts_ = 0;
  common::Counter* drop_count_;
  common::Counter* dup_count_;
  common::Counter* delay_count_;
  common::Counter* reset_count_;
  common::Counter* short_write_count_;
  common::Counter* crash_count_;
  common::Counter* kv_put_fail_count_;
  common::Counter* notify_drop_count_;
  common::Counter* notify_dup_count_;
  common::Counter* queue_full_count_;
};

}  // namespace loco::net
