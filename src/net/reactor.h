// Shared epoll reactor for client-side sockets (docs/NET.md "I/O backends").
//
// One Reactor owns one epoll instance and one dedicated thread.  Descriptors
// are registered level-triggered for readability; when a descriptor becomes
// readable its callback runs on the reactor thread.  TcpChannel registers
// every pooled connection here, so an arbitrarily large connection pool is
// drained by a single thread with one epoll_wait per batch of readable
// sockets — replacing the old leader/follower scheme where each blocked
// caller took a turn in ::poll on its own connection.  NotifyListener's
// dedicated stream rides the same reactor through AwaitReadable, so a client
// process runs exactly one I/O thread per channel regardless of how many
// servers it talks to.
//
// Threading contract:
//   * callbacks run on the reactor thread, never concurrently with
//     themselves or with Remove() of their descriptor;
//   * Remove(fd) is synchronous — when it returns, the callback is not
//     running and will never run again.  Never call Remove from inside a
//     callback (return false to self-deregister instead);
//   * a callback must not block: it should consume the readable data and
//     hand completed work to waiting threads.
//
// Counters: rpc.tcp.reactor.wakeups (epoll_wait returns),
// rpc.tcp.reactor.events (descriptors reported readable).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/result.h"

namespace loco::net {

class Reactor {
 public:
  // Invoked on the reactor thread when the descriptor is readable.  Return
  // true to stay registered, false to deregister (the reactor drops the
  // callback — and with it any references its captures hold).
  using ReadCallback = std::function<bool()>;

  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Register `fd` (must be non-blocking) for level-triggered readability.
  // Fails if the reactor is stopped or the descriptor is already registered.
  Status Add(int fd, ReadCallback on_readable);

  // Synchronously deregister `fd`.  No-op when it is not registered (a
  // callback may have self-deregistered concurrently).
  void Remove(int fd);

  // Block the *calling* thread until `fd` is readable (returns 1), the
  // absolute steady-clock deadline passes (returns 0; deadline_abs == 0
  // waits forever), or `cancel_fd` becomes readable (returns -1, which is
  // also the registration-failure result).  Either descriptor may be -1 to
  // skip it.  Built on one-shot registrations, so it serves sockets that are
  // otherwise driven by blocking readers (the notify stream) without giving
  // them their own poll loop.
  int AwaitReadable(int fd, int cancel_fd, common::Nanos deadline_abs);

 private:
  void Loop();

  int epoll_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: destructor interrupts epoll_wait
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;  // epoll + wake pipe creation succeeded

  std::mutex mu_;
  std::condition_variable active_cv_;  // signals "callback finished"
  int active_fd_ = -1;                 // fd whose callback is running now
  std::unordered_map<int, ReadCallback> entries_;

  common::Counter* wakeups_ = &common::MetricsRegistry::Default().GetCounter(
      "rpc.tcp.reactor.wakeups");
  common::Counter* events_ = &common::MetricsRegistry::Default().GetCounter(
      "rpc.tcp.reactor.events");
};

}  // namespace loco::net
