#include "net/inproc.h"

#include <thread>

namespace loco::net {

void InProcTransport::Register(NodeId id, RpcHandler* handler) {
  auto& server = servers_[id];
  if (!server) server = std::make_unique<Server>();
  server->handler = handler;
}

void InProcTransport::CallAsync(NodeId server, std::uint16_t opcode,
                                std::string payload,
                                std::function<void(RpcResponse)> done) {
  const common::RpcMetricsTable::PerOp& m = metrics_.For(opcode);
  m.calls->Add();
  m.bytes_sent->Add(payload.size());
  const common::CpuTimer timer;
  const auto it = servers_.find(server);
  if (it == servers_.end() || it->second->handler == nullptr) {
    m.errors->Add();
    m.latency->Record(timer.ElapsedNanos());
    done(RpcResponse{ErrCode::kUnavailable, {}});
    return;
  }
  const common::Nanos rtt = rtt_.load(std::memory_order_relaxed);
  if (rtt > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(rtt / 2));
  RpcResponse resp;
  {
    std::scoped_lock lock(it->second->mu);
    it->second->calls.fetch_add(1, std::memory_order_relaxed);
    resp = it->second->handler->Handle(opcode, payload);
  }
  if (rtt > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(rtt / 2));
  if (resp.code != ErrCode::kOk) m.errors->Add();
  m.bytes_received->Add(resp.payload.size());
  m.latency->Record(timer.ElapsedNanos());
  done(std::move(resp));
}

std::uint64_t InProcTransport::CallCount(NodeId server) const {
  const auto it = servers_.find(server);
  return it == servers_.end() ? 0 : it->second->calls.load(std::memory_order_relaxed);
}

}  // namespace loco::net
