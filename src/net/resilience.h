// Client-side resilience: retry with full-jitter backoff plus a per-endpoint
// circuit breaker with half-open probes.
//
// ResilientChannel decorates any inline-completing Channel (net::TcpChannel,
// net::InProcTransport).  Every call keeps ONE trace id across all attempts
// — net::Call stamps it before the channel sees the meta, and CallAsync
// stamps one here — so the server-side dedup window (net/dedup.h) recognizes
// a retried mutation and replays the cached response instead of applying it
// twice.  That makes retry safe for mutations, not just reads.
//
// Failure handling per endpoint:
//   * kUnavailable / kTimeout are retryable (the peer may be restarting);
//     anything else came from a live server and is returned immediately.
//   * kOverloaded is also retryable, but it came from a live server that is
//     shedding load: it never counts against the breaker, and the backoff
//     before the next attempt honors the server's retry-after hint (the
//     response payload, docs/OVERLOAD.md) instead of the jitter schedule.
//   * `breaker_threshold` consecutive retryable failures open the breaker:
//     calls fail fast with kUnavailable without touching the wire, so a
//     stampede of doomed connects never piles onto a dead daemon.
//   * After `breaker_open_ns` the breaker goes half-open: exactly one probe
//     call is let through; success closes the breaker, failure re-opens it.
//
// Two global guards bound what retrying may amplify:
//   * One deadline budget covers ALL attempts of a call: the first attempt
//     gets the full budget, later attempts only what is left of it, and the
//     loop stops once it is spent — a 3-attempt call can never take 3x its
//     deadline.
//   * A token-bucket retry budget (retry_budget_ratio per issued call,
//     capped) gates every retry: when sustained failure drains the bucket,
//     calls fail after their first attempt (rpc.resilient.budget_exhausted)
//     instead of multiplying offered load against a struggling cluster.
//
// The notify plane short-circuits the probe wait: when the DMS broadcasts a
// kNotifyServerUp (a restarted daemon announced itself), the client calls
// NotifyServerUp(node) and the breaker closes immediately — the next call
// goes straight to the wire instead of waiting out breaker_open_ns.
//
// Metrics: rpc.resilient.retries, rpc.resilient.fast_fails,
// rpc.resilient.breaker_opens, rpc.resilient.gossip_resets,
// rpc.resilient.budget_exhausted.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "net/rpc.h"

namespace loco::net {

struct ResilienceOptions {
  // Total tries per call (1 = no retry).
  int max_attempts = 3;
  // Full-jitter backoff before attempt N+1: sleep uniform in
  // [0, min(cap, base * 2^N)].
  common::Nanos backoff_base_ns = 5 * common::kMilli;
  common::Nanos backoff_cap_ns = 200 * common::kMilli;
  // Consecutive retryable failures that open the breaker.
  int breaker_threshold = 5;
  // How long an open breaker fails fast before probing.
  common::Nanos breaker_open_ns = 500 * common::kMilli;
  // Seed for the deterministic jitter stream.
  std::uint64_t seed = 0x5eed;
  // Total deadline budget shared across all attempts of one call when the
  // caller's CallMeta carries none (matches TcpChannelOptions'
  // call_deadline_ns default).  A CallMeta deadline overrides it and is
  // likewise treated as the all-attempts total.
  common::Nanos default_deadline_ns = 5 * common::kSecond;
  // Retry token bucket: each issued call deposits `retry_budget_ratio`
  // tokens (bounded by `retry_budget_cap`; the bucket starts full) and each
  // retry spends one.  At ratio 0.1 sustained failure settles at ~10% retry
  // amplification.  ratio <= 0 disables the budget (unlimited retries).
  double retry_budget_ratio = 0.1;
  double retry_budget_cap = 50.0;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

class ResilientChannel final : public Channel {
 public:
  // `inner` must complete calls inline (all project transports do) and must
  // outlive this channel.
  ResilientChannel(Channel* inner, ResilienceOptions options = {});

  void CallAsync(NodeId server, std::uint16_t opcode, std::string payload,
                 std::function<void(RpcResponse)> done) override;
  void CallAsyncMeta(NodeId server, std::uint16_t opcode, std::string payload,
                     const CallMeta& meta,
                     std::function<void(RpcResponse)> done) override;

  BreakerState breaker_state(NodeId server);

  // Breaker gossip: `server` just announced it is up — close its breaker so
  // traffic resumes immediately (no-op when the breaker is already closed).
  void NotifyServerUp(NodeId server);

 private:
  struct Breaker {
    int consecutive_failures = 0;
    common::Nanos open_until = 0;  // CpuTimer::Now() scale; 0 = closed
    bool probing = false;          // a half-open probe is in flight
  };

  // Admission decision made before an attempt touches the wire.
  enum class Admit { kAllow, kProbe, kFastFail };
  Admit AdmitCall(NodeId server);
  void RecordOutcome(NodeId server, bool success, bool was_probe);
  common::Nanos JitterBackoff(int attempt);
  // Token bucket: deposit for one issued call / withdraw for one retry
  // (false = bucket empty, the retry must not happen).
  void DepositRetryToken();
  bool SpendRetryToken();

  Channel* inner_;
  const ResilienceOptions options_;
  std::mutex mu_;  // guards breakers_, rng_ and retry_tokens_
  std::unordered_map<NodeId, Breaker> breakers_;
  common::Rng rng_;
  double retry_tokens_;
  common::Counter* retries_;
  common::Counter* fast_fails_;
  common::Counter* breaker_opens_;
  common::Counter* gossip_resets_;
  common::Counter* budget_exhausted_;
};

}  // namespace loco::net
