// TCP wire format: length-prefixed binary frames shared by the client and
// server sides of net::TcpChannel / net::TcpServer (docs/NET.md).
//
// Every message is one frame:
//
//   offset  size  field
//        0     4  magic       0x4C4F434Fu ("LOCO"), little-endian
//        4     1  version     kVersion (currently 1)
//        5     1  type        1 = request, 2 = response
//        6     2  opcode      RPC opcode (core/proto.h, baselines/proto.h)
//        8     8  request id  per-connection correlation id; echoed verbatim
//       16     8  trace id    per-operation id threaded through net::Call
//       24     1  code        ErrCode of a response; 0 in requests
//       25     4  payload len bytes that follow the header
//       29     …  payload     opcode-specific bytes (fs::Pack tuples)
//
// All integers are little-endian (common::Writer/Reader).  Decoding is
// defensive: bad magic, unknown version, an out-of-range error code or a
// payload length above the negotiated cap surface as ErrCode::kCorruption,
// never as a crash or an unbounded allocation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace loco::net::wire {

inline constexpr std::uint32_t kMagic = 0x4C4F434Fu;  // "LOCO"
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 29;
// Default cap on a single frame's payload.  Far above any legitimate
// metadata message; guards the peer against hostile length fields.
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

enum class FrameType : std::uint8_t { kRequest = 1, kResponse = 2 };

struct FrameHeader {
  FrameType type = FrameType::kRequest;
  std::uint16_t opcode = 0;
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;
  ErrCode code = ErrCode::kOk;  // responses only; requests carry kOk
  std::uint32_t payload_len = 0;
};

// Serialize one complete frame (header.payload_len is taken from `payload`,
// not from the struct).  The caller must keep payload within the peer's cap.
std::string EncodeFrame(const FrameHeader& header, std::string_view payload);

// Decode the fixed header from `bytes` (which must hold >= kHeaderBytes).
// kCorruption on bad magic / unsupported version / invalid type or code.
Status DecodeHeader(std::string_view bytes, FrameHeader* out);

struct Frame {
  FrameHeader header;
  std::string payload;
};

// Incremental frame extractor over a byte stream.  Feed arbitrary chunks
// with Append(); Next() yields complete frames in order and std::nullopt
// while more bytes are needed.  The first framing violation (bad header,
// oversized payload) latches status() to an error and Next() stays empty —
// a corrupt stream cannot resynchronize and the connection must be dropped.
class FrameReader {
 public:
  explicit FrameReader(std::uint32_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  void Append(std::string_view bytes) { buf_.append(bytes); }

  std::optional<Frame> Next();

  const Status& status() const noexcept { return status_; }
  // Bytes received but not yet consumed by a completed frame.
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::uint32_t max_payload_;
  std::string buf_;
  std::size_t pos_ = 0;
  Status status_;
};

}  // namespace loco::net::wire
