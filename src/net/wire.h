// TCP wire format: length-prefixed binary frames shared by the client and
// server sides of net::TcpChannel / net::TcpServer (docs/NET.md).
//
// Every message is one frame:
//
//   offset  size  field
//        0     4  magic       0x4C4F434Fu ("LOCO"), little-endian
//        4     1  version     kVersion (currently 3; v1/v2 still accepted)
//        5     1  type        1 = request, 2 = response, 3 = notify (v2)
//        6     2  opcode      RPC opcode (core/proto.h, baselines/proto.h)
//        8     8  request id  per-connection correlation id; echoed verbatim
//                             (notify frames carry the per-connection push
//                             sequence number here instead)
//       16     8  trace id    per-operation id threaded through net::Call
//       24     1  code        ErrCode of a response; 0 in requests
//       25     4  payload len bytes that follow the header
//   --- v3 frames only (overload control, docs/OVERLOAD.md) ---
//       29     8  deadline budget  remaining ns the caller will wait; 0 = none.
//                             Re-stamped per hop: each sender writes what is
//                             left of ITS budget, so the receiver can drop
//                             work the caller has already abandoned.
//       37     1  priority    2-bit class: 0 foreground, 1 background,
//                             2 control (higher bits must be zero)
//   ---
//    29/38     …  payload     opcode-specific bytes (fs::Pack tuples)
//
// All integers are little-endian (common::Writer/Reader).  Decoding is
// defensive: bad magic, unknown version, an out-of-range error code or a
// payload length above the negotiated cap surface as ErrCode::kCorruption,
// never as a crash or an unbounded allocation.
//
// Opcode space (16 bits, but metrics tables only distinguish [0, 256)):
//   0   – 223  service RPCs (core/proto.h, baselines/proto.h)
//   224 – 239  notify events, pushed server→client in kNotify frames
//   240 – 255  connection-control RPCs (hello / feature negotiation)
//
// Version negotiation: a v2 client opens a connection with a kCtlHello
// *request* (an ordinary v1-tagged frame, so v1 peers parse it fine and
// merely answer kUnsupported/kInvalid for the unknown opcode) advertising
// its feature bits.  A v2 server intercepts the opcode and replies with its
// own bits plus its current epoch.  Frames are version-tagged with the
// minimum version required to interpret them — request/response with no
// deadline budget and default (foreground) priority stay v1, kNotify is v2,
// and only frames that actually carry the overload-control extension are
// tagged v3 — so both sides degrade to v1 behaviour against an old peer
// with no flag-day upgrade.  A client sends v3 frames only after the hello
// reply granted kFeatureDeadline (net/tcp.cc captures the grant).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace loco::net::wire {

inline constexpr std::uint32_t kMagic = 0x4C4F434Fu;  // "LOCO"
inline constexpr std::uint8_t kVersion = 3;
// Oldest version DecodeHeader still accepts (v1 lacks kNotify and hello).
inline constexpr std::uint8_t kMinVersion = 1;
// Frames that need the notify plane (push frames) are tagged v2.
inline constexpr std::uint8_t kNotifyVersion = 2;
inline constexpr std::size_t kHeaderBytes = 29;
// v3 header: the v1 layout plus the 8-byte deadline budget and 1-byte
// priority class.  Readers size their peek buffers to the largest header.
inline constexpr std::size_t kHeaderBytesV3 = 38;
inline constexpr std::size_t kMaxHeaderBytes = kHeaderBytesV3;

// Header length for a frame tagged `version`.  Unknown future versions fall
// back to the base length; DecodeHeader rejects them regardless.
constexpr std::size_t HeaderLen(std::uint8_t version) noexcept {
  return version >= 3 && version <= kVersion ? kHeaderBytesV3 : kHeaderBytes;
}
// Default cap on a single frame's payload.  Far above any legitimate
// metadata message; guards the peer against hostile length fields.
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

enum class FrameType : std::uint8_t { kRequest = 1, kResponse = 2, kNotify = 3 };

// Reserved opcode ranges (see the file comment).  Everything below
// kNotifyOpcodeBase belongs to the services.
inline constexpr std::uint16_t kNotifyOpcodeBase = 224;  // 224–239
inline constexpr std::uint16_t kControlOpcodeBase = 240;  // 240–255

// Control opcodes.  240 and 245 are transport-level (intercepted by
// TcpServer itself); 241–244 are service-level admin RPCs (core/proto.h).
inline constexpr std::uint16_t kCtlHello = 240;
// Serving-load snapshot (admission queue depths, shed/expired counts, queue
// delay).  Answered inline by the server's event loop — the loop owns the
// queues — so every daemon exposes it without handler changes.
inline constexpr std::uint16_t kCtlLoadStatus = 245;

// Notify opcodes (the opcode field of a kNotify frame).
inline constexpr std::uint16_t kNotifyInvalidate = 224;
inline constexpr std::uint16_t kNotifyServerUp = 225;

// Feature bits exchanged in the hello.
inline constexpr std::uint64_t kFeatureNotify = 1ull << 0;
// Peer understands v3 frames (deadline budget + priority class).  A client
// must not emit a v3 frame before the hello reply grants this bit.
inline constexpr std::uint64_t kFeatureDeadline = 1ull << 1;

// Priority classes carried in the v3 header (2-bit field; 3 is reserved).
// Foreground is the default serving traffic; background marks housekeeping
// (GC probes, fsck scans, session keepalives) that admission control sheds
// first; control marks admin RPCs that must get through under saturation.
inline constexpr std::uint8_t kPriorityForeground = 0;
inline constexpr std::uint8_t kPriorityBackground = 1;
inline constexpr std::uint8_t kPriorityControl = 2;
inline constexpr std::uint8_t kPriorityCount = 3;

// kCtlHello request payload.
struct Hello {
  std::uint32_t proto_version = kVersion;
  std::uint64_t features = 0;   // kFeature* bits the client supports
  std::uint64_t client_id = 0;  // process-unique mount id; 0 = anonymous
};

// kCtlHello response payload.
struct HelloReply {
  std::uint32_t proto_version = kVersion;
  std::uint64_t features = 0;  // bits both sides will use
  std::uint64_t epoch = 0;     // server incarnation; bumps on restart
};

std::string EncodeHello(const Hello& hello);
Status DecodeHello(std::string_view bytes, Hello* out);
std::string EncodeHelloReply(const HelloReply& reply);
Status DecodeHelloReply(std::string_view bytes, HelloReply* out);

struct FrameHeader {
  FrameType type = FrameType::kRequest;
  std::uint16_t opcode = 0;
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;
  ErrCode code = ErrCode::kOk;  // responses only; requests carry kOk
  std::uint32_t payload_len = 0;
  // v3 extension (zero / foreground on v1-v2 frames).  A frame is encoded
  // as v3 exactly when either field departs from its default, so senders
  // simply leave them zeroed against peers that never granted the feature.
  std::uint64_t deadline_budget_ns = 0;  // remaining caller patience; 0 = none
  std::uint8_t priority = kPriorityForeground;
};

// Serialize one complete frame (header.payload_len is taken from `payload`,
// not from the struct).  The caller must keep payload within the peer's cap.
std::string EncodeFrame(const FrameHeader& header, std::string_view payload);

// Append the same frame bytes into a caller-supplied buffer.  The server's
// flush path recycles response buffers through a per-loop arena; encoding
// into a reused string avoids one allocation + memcpy per response.
void EncodeFrameInto(const FrameHeader& header, std::string_view payload,
                     std::string* out);

// Decode the header from `bytes`, which must hold the full header for the
// frame's version — HeaderLen(bytes[4]) bytes; callers peek the version byte
// once kHeaderBytes are buffered.  kCorruption on bad magic / unsupported
// version / invalid type, code or priority.
Status DecodeHeader(std::string_view bytes, FrameHeader* out);

struct Frame {
  FrameHeader header;
  std::string payload;
};

// Incremental frame extractor over a byte stream.  Feed arbitrary chunks
// with Append(); Next() yields complete frames in order and std::nullopt
// while more bytes are needed.  The first framing violation (bad header,
// oversized payload) latches status() to an error and Next() stays empty —
// a corrupt stream cannot resynchronize and the connection must be dropped.
class FrameReader {
 public:
  explicit FrameReader(std::uint32_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  void Append(std::string_view bytes) { buf_.append(bytes); }

  std::optional<Frame> Next();

  const Status& status() const noexcept { return status_; }
  // Bytes received but not yet consumed by a completed frame.
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::uint32_t max_payload_;
  std::string buf_;
  std::size_t pos_ = 0;
  Status status_;
};

// One decoded frame whose payload is a view into the reader's refcounted
// receive arena.  `payload` stays valid while `pin` is held, so a handler —
// even one running on a worker thread after the reader has moved on — reads
// the request bytes in place.  zero_copy is false only when the frame
// straddled a chunk boundary and had to be assembled (one copy).
struct PinnedFrame {
  FrameHeader header;
  std::string_view payload;
  std::shared_ptr<const std::string> pin;
  bool zero_copy = false;
};

// Incremental frame extractor without FrameReader's per-payload copy.  Bytes
// land directly in refcounted arena chunks — either received in place
// (RecvInto/Commit) or appended by transports that must receive elsewhere
// (io_uring registered buffers) — and Next() yields payload views pinned
// into those chunks.  A chunk returns to the internal pool once the reader
// has consumed it and every handler has dropped its pin (use_count == 1),
// so steady-state traffic recycles a handful of chunks with no allocation.
// Same latching error contract as FrameReader: the first framing violation
// poisons the stream and the connection must be dropped.
//
// Single-threaded: one owner drives RecvInto/Commit/Append/Next.  Only the
// pins it hands out may cross threads.
class PinnedFrameReader {
 public:
  explicit PinnedFrameReader(std::uint32_t max_payload = kMaxPayloadBytes,
                             std::size_t chunk_bytes = 64u << 10);

  // Zero-copy receive: a writable region of at least min(min_bytes,
  // chunk_bytes) bytes — the tail of the current chunk, or a fresh chunk.
  // The pointer is stable until Commit (chunks never reallocate).
  char* RecvInto(std::size_t min_bytes, std::size_t* capacity);
  // Publish `n` bytes received into the last RecvInto region.
  void Commit(std::size_t n);
  // Copy path: append bytes received in a foreign buffer.  Decode stays
  // view-based; only this ingest copies.
  void Append(std::string_view bytes);

  std::optional<PinnedFrame> Next();

  const Status& status() const noexcept { return status_; }
  // Bytes received but not yet consumed by a completed frame.
  std::size_t buffered() const noexcept { return buffered_; }
  // Frames whose payload was served in place / had to be assembled.
  std::uint64_t zero_copy_frames() const noexcept { return zero_copy_frames_; }
  std::uint64_t assembled_frames() const noexcept { return assembled_frames_; }

 private:
  struct Chunk {
    std::shared_ptr<std::string> buf;  // preallocated to chunk_bytes
    std::size_t size = 0;              // valid bytes (never buf->resize'd)
  };

  Chunk MakeChunk();               // pooled when a retired chunk is unpinned
  void PopFrontIfExhausted();      // retire a fully-consumed front chunk
  void CopyOut(std::size_t n, char* out);  // copy+consume across chunks

  std::uint32_t max_payload_;
  std::size_t chunk_bytes_;
  std::deque<Chunk> chunks_;
  std::size_t read_off_ = 0;  // into chunks_.front()
  std::size_t buffered_ = 0;
  std::vector<std::shared_ptr<std::string>> pool_;
  std::uint64_t zero_copy_frames_ = 0;
  std::uint64_t assembled_frames_ = 0;
  Status status_;
};

// ---------------------------------------------------------------------------
// Batch sub-op framing
//
// Batch RPCs (proto::kFmsBatchCreate, kFmsBatchStat, kFmsReaddirPlus) pack N
// independent sub-operations into one frame payload:
//
//   request payload    u32 count, then count x { u32 len, len bytes }
//   response payload   u32 count, then count x { u8 code, u32 len, len bytes }
//
// Each sub-payload is the single-op fs::Pack tuple of the underlying opcode
// (kFmsCreate, kFmsGetAttr, one dirent for readdir-plus).  Responses carry a
// per-sub-op ErrCode so one bad entry never poisons its siblings.  Decoding
// is defensive: a declared count that disagrees with the actual payload
// length — truncated items, trailing garbage, or a count far beyond what the
// bytes could hold — fails without over-reading, and handlers surface that
// failure as ErrCode::kCorruption.

struct BatchItem {
  ErrCode code = ErrCode::kOk;  // meaningful in responses; kOk in requests
  std::string payload;
};

std::string EncodeBatchRequest(const std::vector<std::string>& subops);
std::string EncodeBatchResponse(const std::vector<BatchItem>& items);

// Views into `payload`; valid only while the backing bytes live.  Return
// false (leaving *out unspecified) on any count/length disagreement.
bool DecodeBatchRequest(std::string_view payload,
                        std::vector<std::string_view>* out);
bool DecodeBatchResponse(std::string_view payload, std::vector<BatchItem>* out);

}  // namespace loco::net::wire
