// In-process transport: executes handlers on the calling thread.
//
// This is the "real" (non-simulated) deployment of the services, used by the
// examples and the multi-threaded integration tests.  Each registered server
// is protected by its own mutex, matching the one-request-at-a-time handler
// contract the services are written against; concurrent client threads
// therefore serialize per server exactly as single-threaded event-loop
// servers would.  An optional injected round-trip latency emulates a LAN for
// tests that want wall-clock realism.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "common/clock.h"
#include "common/metrics.h"
#include "net/rpc.h"

namespace loco::net {

class InProcTransport final : public Channel {
 public:
  InProcTransport() = default;

  // Register (or replace) the handler serving `id`.  Not thread-safe against
  // concurrent calls; perform all registrations before serving traffic.
  void Register(NodeId id, RpcHandler* handler);

  // Inject a real round-trip latency (nanoseconds) on every call.
  void SetRoundTripLatency(common::Nanos rtt) { rtt_.store(rtt); }

  void CallAsync(NodeId server, std::uint16_t opcode, std::string payload,
                 std::function<void(RpcResponse)> done) override;

  // Total calls dispatched to `server` so far.
  std::uint64_t CallCount(NodeId server) const;

 private:
  struct Server {
    RpcHandler* handler = nullptr;
    std::mutex mu;
    std::atomic<std::uint64_t> calls{0};
  };

  std::unordered_map<NodeId, std::unique_ptr<Server>> servers_;
  std::atomic<common::Nanos> rtt_{0};
  // Per-opcode RPC metrics, measured in wall-clock time (this transport runs
  // handlers inline on real threads).
  common::RpcMetricsTable metrics_{&common::MetricsRegistry::Default(),
                                   "inproc", "wall_ns"};
};

}  // namespace loco::net
