// Real TCP transport (docs/NET.md).
//
// TcpServer hosts one RpcHandler behind an epoll-driven event loop
// (level-triggered; a self-pipe still wakes the loop for cross-thread
// nudges).  Each connection is registered once with EPOLLIN and its EPOLLOUT
// interest toggled only when buffered output appears or drains, so the loop
// never rebuilds a descriptor array per wakeup the way the old poll() loop
// did.  Responses are queued as whole encoded frames (one std::string per
// frame, moved — never memcpy'd — into a per-connection deque) and flushed
// with scatter-gather writev; drained frame buffers are recycled through a
// loop-thread-only arena that the inline-execution, hello, and notify encode
// paths draw from (rpc.tcp_server.bufpool.* counters).  Frames
// are decoded incrementally (net/wire.h) on the loop thread; with
// Options::workers == 0 the handler runs inline on that thread (the original
// single-threaded mode), with workers > 0 decoded requests are dispatched to
// a pool of worker threads and may execute in any order — even requests from
// the same connection.  Responses are still written back **in decode order
// per connection** (a per-connection sequence number reorders completions),
// so a pipelining client can match responses positionally as well as by the
// echoed request id.  Handlers behind a multi-worker server must be
// thread-safe (DMS, FMS, and the object store all are).  A handler's
// RpcResponse::extra_service_ns (modeled device time) is charged by sleeping
// before the response is released, mirroring the simulator's virtual-time
// accounting.  Malformed streams drop the connection; they never crash the
// daemon or wedge the loop.
//
// TcpChannel is the client side: a net::Channel whose NodeIds map to
// host:port endpoints.  Each endpoint keeps a small set of connections and
// **pipelines** up to Options::max_pipeline concurrent calls on each one,
// correlating responses by the wire header's request id (responses may
// arrive out of order).  The receive side is event-driven: every pooled
// connection is registered with the channel's net::Reactor, whose single
// thread drains readable sockets (one recv sweep per readable socket, so a
// pipelined burst of N responses costs one syscall, not N) and completes
// each response's waiter by request id — waking only the owning caller,
// never the whole pool.  The channel enforces a per-call deadline, retries refused
// connects a bounded number of times with exponential backoff, and surfaces
// failures exactly like the in-process transport does — kUnavailable for
// unreachable/dead peers, kTimeout for an expired deadline, kCorruption for
// framing violations — so the client-side FMS-outage fallbacks work
// unchanged over real sockets.  Calls complete inline (the transport blocks
// the calling thread), which keeps net::RunInline-driven code working.
//
// Both sides record per-opcode metrics through common::RpcMetricsTable:
// rpc.tcp.* on the channel (round-trip view) and rpc.tcp_server.* on the
// server (service view), both in wall-clock nanoseconds.  The server also
// exposes rpc.tcp_server.workers / .queue_depth / .worker<i>.busy gauges and
// the channel records the rpc.tcp.pipeline_depth histogram (docs/METRICS.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "net/dedup.h"
#include "net/fault.h"
#include "net/notify.h"
#include "net/reactor.h"
#include "net/rpc.h"
#include "net/wire.h"

namespace loco::net {

// Split "host:port" ("127.0.0.1:9000"); false on malformed input.
bool ParseHostPort(std::string_view spec, std::string* host,
                   std::uint16_t* port);

// One bounded non-blocking connect attempt (resolve, connect, poll until the
// absolute steady-clock deadline, self-connect check, TCP_NODELAY); returns
// the connected fd or -1.  Exposed for net::NotifyListener's dedicated
// stream connection.
int DialTcp(const std::string& host, std::uint16_t port,
            common::Nanos deadline_abs);

// True when a connected socket's local and peer addresses are identical —
// the TCP simultaneous-open self-connection a loopback connect() to a dead
// port in the ephemeral range can produce.  Such a socket echoes every
// request back verbatim; the channel treats it as a connection failure.
bool IsSelfConnected(int fd);

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

// Event-loop implementation behind TcpServer (docs/NET.md "I/O backends").
// kUring requires a kernel with io_uring and a build with LOCO_IOURING; when
// either is missing the server silently runs the epoll loop instead (the
// rpc.tcp_server.uring.fallbacks counter records it).
enum class IoBackend {
  kEpoll,
  kUring,
};

// wire::kCtlLoadStatus reply payload: a point-in-time view of one server's
// admission state (docs/OVERLOAD.md).  Answered inline by the event loop,
// so it works against every daemon regardless of handler.
struct LoadStatus {
  std::uint32_t workers = 0;
  std::uint32_t queued_foreground = 0;
  std::uint32_t queued_background = 0;
  std::uint32_t queued_control = 0;
  std::uint64_t shed = 0;             // admission rejections + evictions
  std::uint64_t expired_dropped = 0;  // expired work dropped at dequeue
  std::uint64_t queue_delay_ewma_ns = 0;
  std::uint64_t read_stalls = 0;             // slow readers paused
  std::uint64_t slow_client_disconnects = 0; // slow readers dropped
};

std::string EncodeLoadStatus(const LoadStatus& status);
Status DecodeLoadStatus(std::string_view payload, LoadStatus* out);

class TcpServer : public Notifier {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = kernel-assigned; read port() after Start
    int backlog = 128;
    std::uint32_t max_payload_bytes = wire::kMaxPayloadBytes;
    // Worker threads executing handler calls.  0 = run handlers inline on
    // the loop thread; N > 0 requires a thread-safe handler.
    int workers = 0;
    // Optional fault plane (--fault-spec): decoded request frames may be
    // dropped, duplicated, delayed, or answered with a torn response, and the
    // process may _exit mid-stream.  Not owned; must outlive the server.
    FaultInjector* fault = nullptr;
    // Optional idempotent-replay window: eligible mutations executed once,
    // duplicates answered from the cached response.  Not owned; shared by a
    // daemon across restarts of its server object.
    DedupWindow* dedup = nullptr;
    // Feature bits granted to clients in the hello exchange (a client only
    // gets bits both sides advertise).  Daemons keep the default; tests can
    // clear bits to exercise the degrade path.
    std::uint64_t features = wire::kFeatureNotify | wire::kFeatureDeadline;
    // Server incarnation reported in hello replies.  Daemons persist a
    // counter in --store-dir and bump it per start, so clients can tell a
    // restart from a plain reconnect.
    std::uint64_t epoch = 0;
    // Housekeeping hooks, both invoked on the loop thread with no server
    // lock held (safe to call PushNotify etc., but keep them quick — the
    // event loop is stalled while they run).  on_notify_disconnect fires
    // when a client's notify session is torn down (its push stream is gone:
    // the DMS drops the client's lease watches immediately instead of
    // waiting out the expiry sweep).  on_client_disconnect fires when the
    // *last* connection that said hello as `client_id` closes (the client
    // process is gone: the FMS prunes its file sessions).  Not fired during
    // server Stop() — shutdown is not a client crash.
    std::function<void(std::uint64_t client_id)> on_notify_disconnect;
    std::function<void(std::uint64_t client_id)> on_client_disconnect;
    // Event-loop backend (daemons expose this as --io-backend).  Dispatch,
    // worker pool, response ordering, buffer arena, and the notify plane are
    // shared; only the readiness/accept/recv machinery differs.
    IoBackend io_backend = IoBackend::kEpoll;
    // Admission control (docs/OVERLOAD.md): cap on queued-but-unstarted
    // requests across the foreground and background classes together
    // (control traffic is exempt; 0 = unbounded).  At the cap a background
    // arrival is shed with ErrCode::kOverloaded + a retry-after hint; a
    // foreground arrival first evicts the oldest queued background request
    // (which is shed the same way) and is only refused when none is queued.
    // Worker mode only — inline mode has no queue to bound.
    std::size_t max_queue = 4096;
    // Per-connection cap on buffered response bytes.  Above this soft cap
    // the server stops reading the connection (a slow reader stalls itself,
    // not the daemon); above twice the cap the connection is dropped.
    // 0 = uncapped.
    std::size_t max_conn_output_bytes = 8u << 20;
  };

  explicit TcpServer(RpcHandler* handler) : TcpServer(handler, Options{}) {}
  TcpServer(RpcHandler* handler, Options options);
  ~TcpServer() override;
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Notifier: queue a kNotify frame for one client's notify session (or all
  // of them).  Thread-safe; the frame is written by the loop thread.  Pushes
  // are fire-and-forget — a dead session drops them, and the client-side
  // sequence check turns any loss into a resync.
  bool PushNotify(std::uint64_t client_id, std::uint16_t opcode,
                  std::string payload) override;
  std::size_t BroadcastNotify(std::uint16_t opcode,
                              std::string payload) override;
  // Notify sessions currently registered (tests).
  std::size_t notify_sessions() const;

  // Bind, listen and spawn the event-loop (and worker) threads.  One Start
  // per instance.
  Status Start();
  // Close the listening socket and every connection, then join the loop and
  // the workers (queued-but-unstarted requests are dropped).  Idempotent;
  // also run by the destructor.
  void Stop();

  bool running() const noexcept { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const noexcept { return port_; }
  const std::string& host() const noexcept { return options_.host; }
  int workers() const noexcept { return options_.workers; }
  // The backend actually serving (post-fallback): "epoll" or "uring".
  const char* io_backend_name() const noexcept {
    return uring_active_ ? "uring" : "epoll";
  }
  // Requests executed by the handler so far (tests / daemon stats).
  std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }
  // Recent admission-queue delay (EWMA over worker dequeues, nanoseconds) —
  // the serving-load signal housekeeping subscribes to for adaptive pacing
  // (core::GcManager::SetLoadSignal).  Thread-safe.
  common::Nanos RecentQueueDelayNs() const noexcept {
    return queue_delay_ewma_ns_.load(std::memory_order_relaxed);
  }
  // Requests shed with kOverloaded / expired work dropped at dequeue, this
  // server instance only (the rpc.tcp_server.* counters are process-wide).
  std::uint64_t shed_count() const noexcept {
    return shed_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t expired_dropped_count() const noexcept {
    return expired_total_.load(std::memory_order_relaxed);
  }
  // Slow-reader backpressure, this instance only: reads paused at the soft
  // output cap / connections dropped at the hard cap.
  std::uint64_t read_stall_count() const noexcept {
    return read_stall_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t slow_client_disconnect_count() const noexcept {
    return slow_disconnect_total_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;
  // One decoded request headed for the worker pool.  The payload is a view
  // into the connection's receive arena; `pin` keeps the backing chunk alive
  // until the worker finishes (zero-copy decode, docs/NET.md).
  struct Work {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;  // per-connection decode order
    std::uint64_t client_id = 0;  // from the connection's hello; 0 = unknown
    wire::FrameHeader header;
    std::string_view payload;
    std::shared_ptr<const std::string> pin;
    common::Nanos delay_ns = 0;    // injected stall before service
    common::Nanos enqueue_ns = 0;  // admission time (queue-delay measurement)
    // Absolute expiry from the wire deadline budget; 0 = none.  Workers drop
    // expired work at dequeue instead of executing for an absent caller.
    common::Nanos expire_ns = 0;
  };
  // One encoded response headed back to the loop thread.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string bytes;
  };
  // One queued push (loop thread turns it into a kNotify frame).
  struct PendingNotify {
    std::uint64_t client_id = 0;  // 0 = broadcast to every notify session
    std::uint16_t opcode = 0;
    std::string payload;
  };

  void Loop();
  // io_uring event loop: multishot accept, per-connection re-armed recv into
  // registered buffers, one-shot POLLOUT arming for pending output.  Shares
  // DrainFrames / FlushWrites / worker delivery / notify drain with Loop().
  void UringLoop();
  void WorkerMain(std::size_t index);
  // Run the handler for one request: metrics, execution, extra_service_ns
  // charge, response encoding.  The frame is encoded into `buf` (cleared
  // first) so the loop thread can hand Execute an arena-recycled buffer;
  // workers pass a fresh string.
  std::string Execute(const wire::FrameHeader& req, std::string_view payload,
                      std::uint64_t client_id, std::string buf);
  // Decode every complete frame buffered on `conn` and execute (inline mode)
  // or enqueue (worker mode) each; returns false when the connection must be
  // dropped (framing violation).
  bool DrainFrames(Conn* conn);
  // Answer a kCtlHello inline on the loop thread (negotiation must precede
  // any dispatch) and register the notify session when granted.
  bool HandleHello(Conn* conn, const wire::PinnedFrame& frame);
  // Answer a kCtlLoadStatus inline on the loop thread (the loop owns the
  // admission queues; no handler dispatch, works under full saturation).
  bool HandleLoadStatus(Conn* conn, const wire::PinnedFrame& frame);
  // Worker-mode admission: enqueue the decoded request or shed it (and
  // possibly an older background request) with kOverloaded.  The caller has
  // already charged conn->inflight and minted `seq`.
  void AdmitWork(Conn* conn, Work&& work);
  // Answer request `seq` on `conn_id` with `code` (no handler execution) via
  // the completion path: shed and expired work still releases its slot in
  // the per-connection response order.  Loop or worker thread.
  void CompleteWithError(std::uint64_t conn_id, std::uint64_t seq,
                         const wire::FrameHeader& req, ErrCode code,
                         std::string payload);
  // Encode the kOverloaded retry-after hint payload (EWMA queue delay).
  std::string RetryAfterPayload() const;
  // Flush pending response bytes; returns false on a dead peer.
  bool FlushWrites(Conn* conn);
  // Queue one encoded response on `conn`, applying the injected short-write
  // fault (truncate mid-frame, flush what fits, then drop the connection).
  // Returns false when the connection must be dropped.
  bool AppendResponse(Conn* conn, std::string&& bytes);
  // Queue `bytes` as response number `seq`, holding it back until every
  // earlier response has been queued (worker mode keeps per-connection
  // decode order).  Returns false when the connection must be dropped.
  bool ReleaseOrdered(Conn* conn, std::uint64_t seq, std::string&& bytes);
  // Move finished worker results into their connections' output buffers in
  // per-connection decode order.
  void DeliverCompletions(
      const std::unordered_map<std::uint64_t, std::unique_ptr<Conn>>& conns);
  // Turn queued pushes into kNotify frames on their sessions' connections.
  void DrainNotify(
      const std::unordered_map<std::uint64_t, std::unique_ptr<Conn>>& conns);
  // Append one sequence-numbered kNotify frame (fault plane may drop or
  // duplicate it).
  void SendNotifyFrame(Conn* conn, std::uint16_t opcode,
                       const std::string& payload);
  // Drop `conn`'s notify session if it still points at this connection.
  void ForgetNotifySession(const Conn& conn);
  // Reconcile the connection's EPOLLOUT interest with whether it has
  // buffered output (EPOLL_CTL_MOD only on transitions).
  void SyncWriteInterest(Conn* conn);
  // Unregister, close and erase one connection, recycling its queued output
  // buffers into the arena.
  void CloseConn(std::unordered_map<std::uint64_t, std::unique_ptr<Conn>>* conns,
                 std::uint64_t id);
  // Loop-thread-only response-buffer arena: GetBuffer() reuses a drained
  // frame buffer when one is pooled, RecycleBuffer() returns one after the
  // socket accepted its bytes.  Bounded in count and per-buffer capacity so
  // a burst of huge responses cannot pin memory.
  std::string GetBuffer();
  void RecycleBuffer(std::string&& buf);

  RpcHandler* handler_;
  Options options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;  // epoll backend only (-1 under uring)
  // io_uring backend (forward-declared; null under epoll or after fallback).
  std::unique_ptr<class UringState> uring_state_;
  bool uring_active_ = false;
  int wake_fds_[2] = {-1, -1};  // self-pipe: Stop()/workers wake the event loop
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::uint16_t port_ = 0;
  std::atomic<std::uint64_t> requests_{0};

  // Worker pool (empty in inline mode).  Admission queues are bounded and
  // per-priority (dequeue order control > foreground > background; see
  // Options::max_queue for the shed policy).
  std::vector<std::thread> workers_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Work> queues_[wire::kPriorityCount];
  bool queue_stop_ = false;
  std::mutex comp_mu_;
  std::vector<Completion> completions_;
  std::deque<std::atomic<bool>> busy_;  // one flag per worker (gauges)
  std::vector<common::MetricsRegistry::GaugeHandle> gauges_;

  // Notify plane: client_id → conn id of its (single) notify session, plus
  // pushes queued for the loop thread.
  mutable std::mutex notify_mu_;
  std::unordered_map<std::uint64_t, std::uint64_t> notify_sessions_;
  std::vector<PendingNotify> pending_notify_;

  // client_id → number of live connections that said hello as that id.
  // Loop thread only: maintained by HandleHello/CloseConn, consulted to fire
  // Options::on_client_disconnect when a client's last connection dies.
  std::unordered_map<std::uint64_t, std::uint64_t> client_conns_;

  // Arena of recycled response buffers (loop thread only — workers hand
  // their encoded frames over via completions and the loop recycles them
  // once flushed).
  std::vector<std::string> buf_pool_;
  common::Counter* bufpool_reuses_ =
      &common::MetricsRegistry::Default().GetCounter(
          "rpc.tcp_server.bufpool.reuses");
  common::Counter* bufpool_allocs_ =
      &common::MetricsRegistry::Default().GetCounter(
          "rpc.tcp_server.bufpool.allocs");
  // Requests whose payload was dispatched as a view pinned into the receive
  // arena (no decode-time copy); .copies counts the chunk-straddlers.
  common::Counter* zerocopy_hits_ =
      &common::MetricsRegistry::Default().GetCounter(
          "rpc.tcp_server.bufpool.zerocopy_hits");
  common::Counter* zerocopy_copies_ =
      &common::MetricsRegistry::Default().GetCounter(
          "rpc.tcp_server.bufpool.zerocopy_copies");

  // Overload-control state (docs/OVERLOAD.md).  Per-instance totals back
  // the LoadStatus reply; the rpc.tcp_server.* counters are process-wide.
  std::atomic<common::Nanos> queue_delay_ewma_ns_{0};
  std::atomic<std::uint64_t> shed_total_{0};
  std::atomic<std::uint64_t> expired_total_{0};
  std::atomic<std::uint64_t> read_stall_total_{0};
  std::atomic<std::uint64_t> slow_disconnect_total_{0};
  common::Counter* shed_metric_ =
      &common::MetricsRegistry::Default().GetCounter("rpc.tcp_server.shed");
  common::Counter* expired_metric_ =
      &common::MetricsRegistry::Default().GetCounter(
          "rpc.tcp_server.expired_dropped");
  common::Counter* read_stall_metric_ =
      &common::MetricsRegistry::Default().GetCounter(
          "rpc.tcp_server.read_stalls");
  common::Counter* slow_disconnect_metric_ =
      &common::MetricsRegistry::Default().GetCounter(
          "rpc.tcp_server.slow_client_disconnects");
  common::LatencyHistogram* queue_delay_hist_ =
      &common::MetricsRegistry::Default().GetHistogram(
          "rpc.tcp_server.queue_delay", "wall_ns");

  common::RpcMetricsTable metrics_{&common::MetricsRegistry::Default(),
                                   "tcp_server", "wall_ns"};
};

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

struct TcpChannelOptions {
  // Default per-call deadline (send + receive, including connect time);
  // CallMeta::deadline_ns overrides per call.
  common::Nanos call_deadline_ns = 5 * common::kSecond;
  // Bounded retry on connect failure: total attempts per call.
  int connect_attempts = 3;
  // Backoff before attempt N+1; doubles each retry.
  common::Nanos connect_backoff_ns = 20 * common::kMilli;
  // Cap on a single connect() wait (also bounded by the call deadline).
  common::Nanos connect_timeout_ns = common::kSecond;
  std::uint32_t max_payload_bytes = wire::kMaxPayloadBytes;
  // Outstanding calls multiplexed on one connection before the channel opens
  // another.
  std::uint32_t max_pipeline = 32;
  // Optional client-side fault plane: stalls requests before they are sent
  // (the delay=/delay_ms= knobs of the spec).  Not owned.
  FaultInjector* fault = nullptr;
  // Mount identity announced in a fire-and-forget hello on every fresh
  // connection (request id 0 — never used by calls, so the reply is read
  // and discarded by whichever caller holds the reader role).  The server
  // attributes requests on the connection to this id (HandlerContext), which
  // is how the DMS knows not to invalidate the mutating client's own lease.
  // 0 skips the hello entirely (anonymous, v1-identical behaviour).
  std::uint64_t client_id = 0;
  // Feature bits advertised in that hello.  Pooled RPC connections should
  // NOT advertise kFeatureNotify — the notify stream belongs on the
  // NotifyListener's dedicated connection.  kFeatureDeadline is advertised
  // by default: once the server's hello reply grants it, calls carry their
  // remaining deadline budget and priority class on the wire
  // (docs/OVERLOAD.md); against an old server the channel keeps emitting
  // v1 frames.
  std::uint64_t features = wire::kFeatureDeadline;
};

class TcpChannel final : public Channel {
 public:
  explicit TcpChannel(TcpChannelOptions options = {});
  ~TcpChannel() override;

  // Map `id` to an endpoint.  Like InProcTransport::Register: perform all
  // registrations before serving traffic.
  void Register(NodeId id, std::string host, std::uint16_t port);
  // Same, from a "host:port" spec; false on malformed input.
  bool Register(NodeId id, std::string_view host_port);

  void CallAsync(NodeId server, std::uint16_t opcode, std::string payload,
                 std::function<void(RpcResponse)> done) override;
  void CallAsyncMeta(NodeId server, std::uint16_t opcode, std::string payload,
                     const CallMeta& meta,
                     std::function<void(RpcResponse)> done) override;

  // Issue every (opcode, payload) in `calls` back-to-back on one pipelined
  // connection and wait for all responses; results are in `calls` order
  // (matched by request id — the server may complete them out of order).
  // The whole burst shares one CallMeta (trace id + deadline).  Unlike
  // single calls, bursts never retry on a stale pooled connection.
  std::vector<RpcResponse> CallPipelined(
      NodeId server,
      const std::vector<std::pair<std::uint16_t, std::string>>& calls,
      const CallMeta& meta = {});

  // Drop every pooled connection (tests; forces fresh connects).  Calls in
  // flight keep their connection alive until they complete.
  void DisconnectAll();

  // Force the endpoint's request-id counter (tests: exercises the counter
  // wrap / id-reuse window without issuing 2^64 calls).
  void SetNextRequestIdForTest(NodeId server, std::uint64_t value);

  // The channel's I/O reactor (core::Connect hands it to the NotifyListener
  // so the whole mount shares one event thread).
  Reactor& reactor() noexcept { return reactor_; }

 private:
  // One caller blocked on a pipelined response.  Each waiter has its own
  // condition variable so the reactor wakes exactly the owning caller.
  struct Waiter {
    wire::Frame frame;
    bool done = false;
    ErrCode fail = ErrCode::kOk;
    std::condition_variable cv;  // paired with the connection's mu
  };

  // A connection multiplexing many concurrent calls.  Shared by reference
  // count: the endpoint list holds one reference, every active call another;
  // the socket closes when the last reference drops.
  struct PipeConn {
    PipeConn(int fd_in, std::uint32_t max_payload)
        : fd(fd_in), reader(max_payload) {}
    ~PipeConn();

    const int fd;
    std::atomic<bool> dead{false};       // failed; skipped and pruned
    std::atomic<std::uint32_t> inflight{0};  // reservations (load balancing)
    // Feature bits the server granted in its hello reply (the reactor
    // captures the request-id-0 response).  0 until the reply arrives, so
    // early calls degrade to v1 frames; once kFeatureDeadline shows up the
    // channel stamps the deadline budget + priority extension.
    std::atomic<std::uint64_t> peer_features{0};
    std::mutex write_mu;  // serializes request bytes onto the socket
    std::mutex mu;        // guards everything below (except `reader`)
    wire::FrameReader reader;  // reactor thread only
    std::unordered_map<std::uint64_t, Waiter*> waiting;
    // Request ids whose caller timed out while the request was still
    // outstanding on the wire.  The server WILL answer them eventually; until
    // that late response arrives (and is discarded) the id must not be
    // handed to a new call on this connection, or the old response would
    // complete the new call.  Ids leave the set when their response shows up
    // or the connection dies.
    std::unordered_set<std::uint64_t> abandoned;
    // DisconnectAll dropped this conn from the endpoint pool while calls were
    // in flight: the reactor keeps reading until the last waiter is answered,
    // then drops its (final) reference.
    bool orphaned = false;
    ErrCode broken = ErrCode::kOk;  // terminal failure code
  };

  struct Endpoint {
    std::string host;
    std::uint16_t port = 0;
    std::mutex mu;
    std::vector<std::shared_ptr<PipeConn>> conns;
    std::atomic<std::uint64_t> next_request_id{1};
  };

  RpcResponse DoCall(Endpoint& ep, std::uint16_t opcode,
                     std::string_view payload, const CallMeta& meta);
  // Connect with bounded retry + exponential backoff; -1 on failure
  // (`timed_out` reports whether the call deadline, not the peer, gave up).
  int Connect(const Endpoint& ep, common::Nanos deadline_abs, bool* timed_out);
  // Pick (or dial) a connection and reserve one inflight slot on it.
  // `reused` reports whether the connection predates this call — only those
  // are eligible for the stale-connection retry.  nullptr on connect
  // failure, with *err set.
  std::shared_ptr<PipeConn> AcquireConn(Endpoint& ep,
                                        common::Nanos deadline_abs,
                                        bool* reused, ErrCode* err);
  enum class RegisterResult {
    kOk,
    kBroken,   // connection already failed
    kIdInUse,  // id collides with an in-flight or abandoned request: re-mint
  };
  // Add `w` to the conn's waiter table under `request_id`.  Refuses an id
  // that is still in flight or abandoned on this connection — after a
  // counter wrap, reusing such an id would let the *old* call's late
  // response complete the *new* call.
  RegisterResult RegisterWaiter(PipeConn& conn, std::uint64_t request_id,
                                Waiter* w);
  // Block until `w` completes or `deadline_abs` passes.  Completion arrives
  // from the reactor thread, which reads frames and signals the waiter's cv.
  void AwaitWaiter(PipeConn& conn, std::uint64_t request_id, Waiter& w,
                   common::Nanos deadline_abs);
  // Reactor callback: drain the socket, dispatch complete response frames to
  // their waiters by request id.  Returns false (deregister) when the
  // connection died or an orphaned connection ran out of waiters.
  bool OnReadable(const std::shared_ptr<PipeConn>& conn);
  // Mint the next request id for `ep`, skipping 0 (reserved for the hello).
  static std::uint64_t NextRequestId(Endpoint& ep);
  // Mark the connection dead and fail every registered waiter (conn.mu held).
  static void FailConnLocked(PipeConn& conn, ErrCode code);

  TcpChannelOptions options_;
  std::unordered_map<NodeId, std::unique_ptr<Endpoint>> endpoints_;
  common::RpcMetricsTable metrics_{&common::MetricsRegistry::Default(),
                                   "tcp", "wall_ns"};
  // Waiters outstanding on the connection at each call issue (docs/METRICS.md).
  common::LatencyHistogram* pipeline_depth_;
  // Response frames the reactor matched to a waiter (docs/METRICS.md).
  common::Counter* reactor_frames_ =
      &common::MetricsRegistry::Default().GetCounter("rpc.tcp.reactor.frames");
  // Declared last so it is destroyed first: joining the reactor thread before
  // any other member dies guarantees no callback touches a dead channel.
  Reactor reactor_;
};

}  // namespace loco::net
