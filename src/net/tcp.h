// Real TCP transport (docs/NET.md).
//
// TcpServer hosts one RpcHandler behind a poll()-driven event loop: frames
// are decoded incrementally (net/wire.h), the handler runs inline on the
// single loop thread — the same one-request-at-a-time contract every service
// is written against — and responses are written back with the request's
// correlation and trace ids echoed.  Malformed streams drop the connection;
// they never crash the daemon or wedge the loop.
//
// TcpChannel is the client side: a net::Channel whose NodeIds map to
// host:port endpoints.  It keeps a pool of idle connections per endpoint
// (concurrent callers each get their own socket), enforces a per-call
// deadline, retries refused connects a bounded number of times with
// exponential backoff, and surfaces failures exactly like the in-process
// transport does — kUnavailable for unreachable/dead peers, kTimeout for an
// expired deadline, kCorruption for framing violations — so the client-side
// FMS-outage fallbacks work unchanged over real sockets.  Calls complete
// inline (the transport blocks the calling thread), which keeps
// net::RunInline-driven code working.
//
// Both sides record per-opcode metrics through common::RpcMetricsTable:
// rpc.tcp.* on the channel (round-trip view) and rpc.tcp_server.* on the
// server (service view), both in wall-clock nanoseconds.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "net/rpc.h"
#include "net/wire.h"

namespace loco::net {

// Split "host:port" ("127.0.0.1:9000"); false on malformed input.
bool ParseHostPort(std::string_view spec, std::string* host,
                   std::uint16_t* port);

// True when a connected socket's local and peer addresses are identical —
// the TCP simultaneous-open self-connection a loopback connect() to a dead
// port in the ephemeral range can produce.  Such a socket echoes every
// request back verbatim; the channel treats it as a connection failure.
bool IsSelfConnected(int fd);

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

class TcpServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = kernel-assigned; read port() after Start
    int backlog = 128;
    std::uint32_t max_payload_bytes = wire::kMaxPayloadBytes;
  };

  explicit TcpServer(RpcHandler* handler) : TcpServer(handler, Options{}) {}
  TcpServer(RpcHandler* handler, Options options);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Bind, listen and spawn the event-loop thread.  One Start per instance.
  Status Start();
  // Close the listening socket and every connection, then join the loop.
  // Idempotent; also run by the destructor.
  void Stop();

  bool running() const noexcept { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const noexcept { return port_; }
  const std::string& host() const noexcept { return options_.host; }
  // Requests dispatched to the handler so far (tests / daemonstats).
  std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;

  void Loop();
  // Decode and dispatch every complete frame buffered on `conn`; returns
  // false when the connection must be dropped (framing violation).
  bool DrainFrames(Conn* conn);
  // Flush pending response bytes; returns false on a dead peer.
  bool FlushWrites(Conn* conn);

  RpcHandler* handler_;
  Options options_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: Stop() wakes the poll loop
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::uint16_t port_ = 0;
  std::atomic<std::uint64_t> requests_{0};
  common::RpcMetricsTable metrics_{&common::MetricsRegistry::Default(),
                                   "tcp_server", "wall_ns"};
};

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

struct TcpChannelOptions {
  // Default per-call deadline (send + receive, including connect time);
  // CallMeta::deadline_ns overrides per call.
  common::Nanos call_deadline_ns = 5 * common::kSecond;
  // Bounded retry on connect failure: total attempts per call.
  int connect_attempts = 3;
  // Backoff before attempt N+1; doubles each retry.
  common::Nanos connect_backoff_ns = 20 * common::kMilli;
  // Cap on a single connect() wait (also bounded by the call deadline).
  common::Nanos connect_timeout_ns = common::kSecond;
  std::uint32_t max_payload_bytes = wire::kMaxPayloadBytes;
};

class TcpChannel final : public Channel {
 public:
  explicit TcpChannel(TcpChannelOptions options = {});
  ~TcpChannel() override;

  // Map `id` to an endpoint.  Like InProcTransport::Register: perform all
  // registrations before serving traffic.
  void Register(NodeId id, std::string host, std::uint16_t port);
  // Same, from a "host:port" spec; false on malformed input.
  bool Register(NodeId id, std::string_view host_port);

  void CallAsync(NodeId server, std::uint16_t opcode, std::string payload,
                 std::function<void(RpcResponse)> done) override;
  void CallAsyncMeta(NodeId server, std::uint16_t opcode, std::string payload,
                     const CallMeta& meta,
                     std::function<void(RpcResponse)> done) override;

  // Drop every pooled idle connection (tests; forces fresh connects).
  void DisconnectAll();

 private:
  struct Endpoint {
    std::string host;
    std::uint16_t port = 0;
    std::mutex mu;
    std::vector<int> idle;  // pooled connected sockets
    std::atomic<std::uint64_t> next_request_id{1};
  };

  RpcResponse DoCall(Endpoint& ep, std::uint16_t opcode,
                     std::string_view payload, const CallMeta& meta);
  // Connect with bounded retry + exponential backoff; -1 on failure
  // (`timed_out` reports whether the call deadline, not the peer, gave up).
  int Connect(const Endpoint& ep, common::Nanos deadline_abs, bool* timed_out);
  int PopIdle(Endpoint& ep);
  void PushIdle(Endpoint& ep, int fd);

  TcpChannelOptions options_;
  std::unordered_map<NodeId, std::unique_ptr<Endpoint>> endpoints_;
  common::RpcMetricsTable metrics_{&common::MetricsRegistry::Default(),
                                   "tcp", "wall_ns"};
};

}  // namespace loco::net
