// Minimal raw-syscall io_uring shim (docs/NET.md "I/O backends").
//
// The container has no liburing, so this wraps the three io_uring syscalls
// (setup / enter / register) and the mmap'd submission + completion rings
// directly, exposing just what the TcpServer uring backend needs: multishot
// accept, (re-armed) socket recv into registered buffers, one-shot POLLOUT
// arming, and a pipe read for cross-thread wakeups.  Compiled to stubs —
// Supported() == false, Init() fails — when the build disables LOCO_IOURING
// or <linux/io_uring.h> is absent, so callers need no #ifdefs: selecting the
// uring backend simply falls back to epoll.
//
// Single-threaded by design: one Ring belongs to one event-loop thread (the
// only cross-thread signal is the wake pipe, which is itself an armed read).
#pragma once

#include <cstddef>
#include <cstdint>

struct iovec;

namespace loco::net::uring {

// True when the running kernel accepts io_uring_setup (the syscall may be
// compiled out, seccomp-filtered, or predate the opcodes we use).
bool Supported();

// One harvested completion (copied out of the CQ ring).
struct Cqe {
  std::uint64_t user_data = 0;
  std::int32_t res = 0;
  std::uint32_t flags = 0;
};

// True when the kernel will post further completions for the same
// (multishot) submission.
bool CqeHasMore(const Cqe& cqe);

class Ring {
 public:
  Ring() = default;
  ~Ring();
  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  // Create the ring and map the SQ/CQ rings and SQE array.  False when the
  // kernel lacks io_uring (callers fall back to epoll).
  bool Init(unsigned entries);
  void Close();
  bool valid() const noexcept { return ring_fd_ >= 0; }

  // Register a table of fixed buffers for PrepReadFixed (index = position in
  // `iovs`).  Call once, before any submission.
  bool RegisterBuffers(const struct ::iovec* iovs, unsigned n);

  // SQE preparation.  Each returns false when the submission queue is full
  // (SubmitAndWait(0) flushes it).  Nothing reaches the kernel until
  // SubmitAndWait.
  bool PrepAcceptMultishot(int fd, std::uint64_t user_data);
  bool PrepRecv(int fd, void* buf, std::size_t len, std::uint64_t user_data);
  bool PrepReadFixed(int fd, void* buf, std::size_t len, unsigned buf_index,
                     std::uint64_t user_data);
  bool PrepRead(int fd, void* buf, std::size_t len, std::uint64_t user_data);
  bool PrepPollOutOneshot(int fd, std::uint64_t user_data);

  // Publish queued SQEs and (when wait_for_one) block until at least one
  // completion is pending.  Returns the number of SQEs consumed, or -1 with
  // errno set (EINTR is the caller's retry signal).
  int SubmitAndWait(bool wait_for_one);

  // Harvest one completion; false when the CQ is empty.
  bool PopCqe(Cqe* out);

 private:
  void* NextSqe();  // zeroed SQE slot or nullptr when the SQ is full

  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;  // == sq_ring_ on IORING_FEAT_SINGLE_MMAP kernels
  std::size_t cq_ring_bytes_ = 0;
  void* sqes_ = nullptr;
  std::size_t sqes_bytes_ = 0;

  unsigned* sq_head_ = nullptr;   // kernel-written consumer index
  unsigned* sq_tail_ = nullptr;   // our producer index (store-release)
  unsigned* sq_array_ = nullptr;  // index indirection array
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned sq_tail_local_ = 0;  // unpublished tail
  unsigned to_submit_ = 0;

  unsigned* cq_head_ = nullptr;  // our consumer index (store-release)
  unsigned* cq_tail_ = nullptr;  // kernel-written producer index
  unsigned cq_mask_ = 0;
  void* cqes_ = nullptr;
};

}  // namespace loco::net::uring
