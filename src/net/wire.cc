#include "net/wire.h"

#include <algorithm>
#include <cstring>

#include "common/codec.h"

namespace loco::net::wire {

namespace {

void AppendLe(std::string* out, std::uint64_t value, int bytes) {
  for (int shift = 0; shift < bytes * 8; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

}  // namespace

void EncodeFrameInto(const FrameHeader& header, std::string_view payload,
                     std::string* out) {
  // Tag each frame with the *minimum* version able to interpret it: frames
  // without the overload-control extension are byte-identical to v1 (push
  // frames to v2), so a v3 sender stays interoperable with old peers; only
  // a non-default deadline budget or priority requires the v3 header.
  const bool extended = header.deadline_budget_ns != 0 ||
                        header.priority != kPriorityForeground;
  std::uint8_t version = kMinVersion;
  if (extended) {
    version = kVersion;
  } else if (header.type == FrameType::kNotify) {
    version = kNotifyVersion;
  }
  out->reserve(out->size() + HeaderLen(version) + payload.size());
  AppendLe(out, kMagic, 4);
  AppendLe(out, version, 1);
  AppendLe(out, static_cast<std::uint8_t>(header.type), 1);
  AppendLe(out, header.opcode, 2);
  AppendLe(out, header.request_id, 8);
  AppendLe(out, header.trace_id, 8);
  AppendLe(out, static_cast<std::uint8_t>(header.code), 1);
  AppendLe(out, static_cast<std::uint32_t>(payload.size()), 4);
  if (extended) {
    AppendLe(out, header.deadline_budget_ns, 8);
    AppendLe(out, header.priority, 1);
  }
  out->append(payload.data(), payload.size());
}

std::string EncodeFrame(const FrameHeader& header, std::string_view payload) {
  std::string out;
  EncodeFrameInto(header, payload, &out);
  return out;
}

Status DecodeHeader(std::string_view bytes, FrameHeader* out) {
  common::Reader r(bytes);
  const std::uint32_t magic = r.GetU32();
  const std::uint8_t version = r.GetU8();
  const std::uint8_t type = r.GetU8();
  out->opcode = r.GetU16();
  out->request_id = r.GetU64();
  out->trace_id = r.GetU64();
  const std::uint8_t code = r.GetU8();
  out->payload_len = r.GetU32();
  out->deadline_budget_ns = 0;
  out->priority = kPriorityForeground;
  if (version >= 3 && version <= kVersion) {
    out->deadline_budget_ns = r.GetU64();
    out->priority = r.GetU8();
  }
  if (!r.ok()) return ErrStatus(ErrCode::kCorruption, "short frame header");
  if (magic != kMagic) return ErrStatus(ErrCode::kCorruption, "bad frame magic");
  if (version < kMinVersion || version > kVersion) {
    return ErrStatus(ErrCode::kCorruption, "unsupported frame version");
  }
  if (type != static_cast<std::uint8_t>(FrameType::kRequest) &&
      type != static_cast<std::uint8_t>(FrameType::kResponse) &&
      type != static_cast<std::uint8_t>(FrameType::kNotify)) {
    return ErrStatus(ErrCode::kCorruption, "bad frame type");
  }
  if (code > kMaxErrCode) {
    return ErrStatus(ErrCode::kCorruption, "bad frame error code");
  }
  if (out->priority >= kPriorityCount) {
    return ErrStatus(ErrCode::kCorruption, "bad frame priority");
  }
  out->type = static_cast<FrameType>(type);
  out->code = static_cast<ErrCode>(code);
  return OkStatus();
}

std::string EncodeHello(const Hello& hello) {
  common::Writer w;
  w.PutU32(hello.proto_version);
  w.PutU64(hello.features);
  w.PutU64(hello.client_id);
  return w.Take();
}

Status DecodeHello(std::string_view bytes, Hello* out) {
  common::Reader r(bytes);
  out->proto_version = r.GetU32();
  out->features = r.GetU64();
  out->client_id = r.GetU64();
  if (!r.ok() || !r.AtEnd()) {
    return ErrStatus(ErrCode::kCorruption, "bad hello payload");
  }
  return OkStatus();
}

std::string EncodeHelloReply(const HelloReply& reply) {
  common::Writer w;
  w.PutU32(reply.proto_version);
  w.PutU64(reply.features);
  w.PutU64(reply.epoch);
  return w.Take();
}

Status DecodeHelloReply(std::string_view bytes, HelloReply* out) {
  common::Reader r(bytes);
  out->proto_version = r.GetU32();
  out->features = r.GetU64();
  out->epoch = r.GetU64();
  if (!r.ok() || !r.AtEnd()) {
    return ErrStatus(ErrCode::kCorruption, "bad hello reply payload");
  }
  return OkStatus();
}

std::string EncodeBatchRequest(const std::vector<std::string>& subops) {
  common::Writer w;
  w.PutU32(static_cast<std::uint32_t>(subops.size()));
  for (const std::string& sub : subops) {
    w.PutU32(static_cast<std::uint32_t>(sub.size()));
    w.PutRaw(sub);
  }
  return w.Take();
}

std::string EncodeBatchResponse(const std::vector<BatchItem>& items) {
  common::Writer w;
  w.PutU32(static_cast<std::uint32_t>(items.size()));
  for (const BatchItem& item : items) {
    w.PutU8(static_cast<std::uint8_t>(item.code));
    w.PutU32(static_cast<std::uint32_t>(item.payload.size()));
    w.PutRaw(item.payload);
  }
  return w.Take();
}

bool DecodeBatchRequest(std::string_view payload,
                        std::vector<std::string_view>* out) {
  common::Reader r(payload);
  const std::uint32_t count = r.GetU32();
  if (!r.ok()) return false;
  // Every item costs at least its 4-byte length prefix, so a count the
  // remaining bytes cannot possibly hold is rejected before any allocation.
  if (count > (payload.size() - 4) / 4) return false;
  out->clear();
  out->reserve(count);
  std::size_t off = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (payload.size() - off < 4) return false;
    std::uint32_t len = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      len |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(payload[off + shift / 8]))
             << shift;
    }
    off += 4;
    if (payload.size() - off < len) return false;
    out->push_back(payload.substr(off, len));
    off += len;
  }
  return off == payload.size();
}

bool DecodeBatchResponse(std::string_view payload, std::vector<BatchItem>* out) {
  common::Reader r(payload);
  const std::uint32_t count = r.GetU32();
  if (!r.ok()) return false;
  // Each item costs at least 5 bytes (code + length prefix).
  if (count > (payload.size() - 4) / 5) return false;
  out->clear();
  out->reserve(count);
  std::size_t off = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (payload.size() - off < 5) return false;
    const auto code = static_cast<unsigned char>(payload[off]);
    if (code > kMaxErrCode) return false;
    ++off;
    std::uint32_t len = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      len |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(payload[off + shift / 8]))
             << shift;
    }
    off += 4;
    if (payload.size() - off < len) return false;
    BatchItem item;
    item.code = static_cast<ErrCode>(code);
    item.payload.assign(payload.substr(off, len));
    out->push_back(std::move(item));
    off += len;
  }
  return off == payload.size();
}

std::optional<Frame> FrameReader::Next() {
  if (!status_.ok()) return std::nullopt;
  if (buffered() < kHeaderBytes) return std::nullopt;
  // The version byte (offset 4) fixes the header length: v3 frames carry the
  // deadline/priority extension, older frames the 29-byte base header.
  const std::size_t hlen =
      HeaderLen(static_cast<std::uint8_t>(buf_[pos_ + 4]));
  if (buffered() < hlen) return std::nullopt;
  FrameHeader header;
  status_ = DecodeHeader(std::string_view(buf_).substr(pos_), &header);
  if (!status_.ok()) return std::nullopt;
  if (header.payload_len > max_payload_) {
    status_ = ErrStatus(ErrCode::kCorruption, "frame payload over cap");
    return std::nullopt;
  }
  if (buffered() < hlen + header.payload_len) return std::nullopt;
  Frame frame;
  frame.header = header;
  frame.payload = buf_.substr(pos_ + hlen, header.payload_len);
  pos_ += hlen + header.payload_len;
  // Reclaim consumed bytes once nothing useful remains before pos_.
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (64u << 10)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return frame;
}

// ---------------------------------------------------------------------------
// PinnedFrameReader
// ---------------------------------------------------------------------------

namespace {
// Retired-but-pinned chunks kept waiting for their handlers; beyond this the
// oldest is simply dropped (its pins still own it via shared_ptr).
constexpr std::size_t kMaxPooledChunks = 8;
}  // namespace

PinnedFrameReader::PinnedFrameReader(std::uint32_t max_payload,
                                     std::size_t chunk_bytes)
    : max_payload_(max_payload),
      chunk_bytes_(chunk_bytes < kMaxHeaderBytes ? kMaxHeaderBytes
                                                 : chunk_bytes) {}

PinnedFrameReader::Chunk PinnedFrameReader::MakeChunk() {
  Chunk chunk;
  // Reuse a retired chunk only once every pinned frame in it is gone; the
  // data pointer must stay stable, so the string is sized once and only the
  // side `size` counter tracks valid bytes from then on.
  for (auto it = pool_.begin(); it != pool_.end(); ++it) {
    if (it->use_count() == 1) {
      chunk.buf = std::move(*it);
      pool_.erase(it);
      return chunk;
    }
  }
  chunk.buf = std::make_shared<std::string>();
  chunk.buf->resize(chunk_bytes_);
  return chunk;
}

void PinnedFrameReader::PopFrontIfExhausted() {
  while (!chunks_.empty() && read_off_ == chunks_.front().size &&
         (chunks_.size() > 1 || chunks_.front().size == chunk_bytes_)) {
    if (pool_.size() < kMaxPooledChunks) {
      pool_.push_back(std::move(chunks_.front().buf));
    }
    chunks_.pop_front();
    read_off_ = 0;
  }
}

char* PinnedFrameReader::RecvInto(std::size_t min_bytes, std::size_t* capacity) {
  if (min_bytes > chunk_bytes_) min_bytes = chunk_bytes_;
  if (chunks_.empty() || chunk_bytes_ - chunks_.back().size < min_bytes) {
    chunks_.push_back(MakeChunk());
  }
  Chunk& back = chunks_.back();
  *capacity = chunk_bytes_ - back.size;
  return back.buf->data() + back.size;
}

void PinnedFrameReader::Commit(std::size_t n) {
  chunks_.back().size += n;
  buffered_ += n;
}

void PinnedFrameReader::Append(std::string_view bytes) {
  while (!bytes.empty()) {
    std::size_t capacity = 0;
    char* dst = RecvInto(1, &capacity);
    const std::size_t n = bytes.size() < capacity ? bytes.size() : capacity;
    std::memcpy(dst, bytes.data(), n);
    Commit(n);
    bytes.remove_prefix(n);
  }
}

void PinnedFrameReader::CopyOut(std::size_t n, char* out) {
  while (n > 0) {
    Chunk& front = chunks_.front();
    const std::size_t avail = front.size - read_off_;
    const std::size_t take = n < avail ? n : avail;
    std::memcpy(out, front.buf->data() + read_off_, take);
    out += take;
    read_off_ += take;
    buffered_ -= take;
    n -= take;
    PopFrontIfExhausted();
  }
}

std::optional<PinnedFrame> PinnedFrameReader::Next() {
  if (!status_.ok()) return std::nullopt;
  if (buffered_ < kHeaderBytes) return std::nullopt;
  // Peek without consuming: view the header in place when the front chunk
  // holds it whole, else assemble it through a stack copy.  The version byte
  // (logical offset 4) fixes the header length, so peek the base header
  // first and widen to the v3 length when the frame carries the extension.
  const auto peek = [this](char* dst, std::size_t want) {
    std::size_t copied = 0;
    std::size_t off = read_off_;
    for (auto it = chunks_.begin(); it != chunks_.end() && copied < want; ++it) {
      const std::size_t take = std::min(want - copied, it->size - off);
      std::memcpy(dst + copied, it->buf->data() + off, take);
      copied += take;
      off = 0;
    }
  };
  FrameHeader header;
  char scratch[kMaxHeaderBytes];
  std::string_view header_bytes;
  const Chunk& front = chunks_.front();
  std::uint8_t version = 0;
  if (front.size - read_off_ >= kHeaderBytes) {
    version = static_cast<std::uint8_t>(front.buf->data()[read_off_ + 4]);
  } else {
    peek(scratch, kHeaderBytes);
    version = static_cast<std::uint8_t>(scratch[4]);
  }
  const std::size_t hlen = HeaderLen(version);
  if (buffered_ < hlen) return std::nullopt;
  if (front.size - read_off_ >= hlen) {
    header_bytes = std::string_view(front.buf->data() + read_off_, hlen);
  } else {
    peek(scratch, hlen);
    header_bytes = std::string_view(scratch, hlen);
  }
  status_ = DecodeHeader(header_bytes, &header);
  if (!status_.ok()) return std::nullopt;
  if (header.payload_len > max_payload_) {
    status_ = ErrStatus(ErrCode::kCorruption, "frame payload over cap");
    return std::nullopt;
  }
  if (buffered_ < hlen + header.payload_len) return std::nullopt;

  PinnedFrame frame;
  frame.header = header;
  // Consume the header, then serve the payload in place when one chunk holds
  // it all — the hot path: recv() landed the frame contiguously, and the
  // handler reads the very bytes the kernel wrote.
  char discard[kMaxHeaderBytes];
  CopyOut(hlen, discard);
  if (header.payload_len == 0) {
    frame.zero_copy = true;
    ++zero_copy_frames_;
    return frame;
  }
  Chunk& pfront = chunks_.front();
  if (pfront.size - read_off_ >= header.payload_len) {
    frame.payload =
        std::string_view(pfront.buf->data() + read_off_, header.payload_len);
    frame.pin = pfront.buf;
    frame.zero_copy = true;
    ++zero_copy_frames_;
    read_off_ += header.payload_len;
    buffered_ -= header.payload_len;
    PopFrontIfExhausted();
    return frame;
  }
  auto assembled = std::make_shared<std::string>();
  assembled->resize(header.payload_len);
  CopyOut(header.payload_len, assembled->data());
  frame.payload = std::string_view(*assembled);
  frame.pin = std::move(assembled);
  frame.zero_copy = false;
  ++assembled_frames_;
  return frame;
}

}  // namespace loco::net::wire
