#include "net/wire.h"

#include <algorithm>
#include <cstring>

#include "common/codec.h"

namespace loco::net::wire {

namespace {

void AppendLe(std::string* out, std::uint64_t value, int bytes) {
  for (int shift = 0; shift < bytes * 8; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

}  // namespace

void EncodeFrameInto(const FrameHeader& header, std::string_view payload,
                     std::string* out) {
  out->reserve(out->size() + kHeaderBytes + payload.size());
  AppendLe(out, kMagic, 4);
  // Tag each frame with the *minimum* version able to interpret it: request
  // and response frames are byte-identical to v1, so a v2 sender stays
  // interoperable with v1 peers; only the new push frames require v2.
  AppendLe(out, header.type == FrameType::kNotify ? kVersion : kMinVersion, 1);
  AppendLe(out, static_cast<std::uint8_t>(header.type), 1);
  AppendLe(out, header.opcode, 2);
  AppendLe(out, header.request_id, 8);
  AppendLe(out, header.trace_id, 8);
  AppendLe(out, static_cast<std::uint8_t>(header.code), 1);
  AppendLe(out, static_cast<std::uint32_t>(payload.size()), 4);
  out->append(payload.data(), payload.size());
}

std::string EncodeFrame(const FrameHeader& header, std::string_view payload) {
  std::string out;
  EncodeFrameInto(header, payload, &out);
  return out;
}

Status DecodeHeader(std::string_view bytes, FrameHeader* out) {
  common::Reader r(bytes);
  const std::uint32_t magic = r.GetU32();
  const std::uint8_t version = r.GetU8();
  const std::uint8_t type = r.GetU8();
  out->opcode = r.GetU16();
  out->request_id = r.GetU64();
  out->trace_id = r.GetU64();
  const std::uint8_t code = r.GetU8();
  out->payload_len = r.GetU32();
  if (!r.ok()) return ErrStatus(ErrCode::kCorruption, "short frame header");
  if (magic != kMagic) return ErrStatus(ErrCode::kCorruption, "bad frame magic");
  if (version < kMinVersion || version > kVersion) {
    return ErrStatus(ErrCode::kCorruption, "unsupported frame version");
  }
  if (type != static_cast<std::uint8_t>(FrameType::kRequest) &&
      type != static_cast<std::uint8_t>(FrameType::kResponse) &&
      type != static_cast<std::uint8_t>(FrameType::kNotify)) {
    return ErrStatus(ErrCode::kCorruption, "bad frame type");
  }
  if (code > static_cast<std::uint8_t>(ErrCode::kUnsupported)) {
    return ErrStatus(ErrCode::kCorruption, "bad frame error code");
  }
  out->type = static_cast<FrameType>(type);
  out->code = static_cast<ErrCode>(code);
  return OkStatus();
}

std::string EncodeHello(const Hello& hello) {
  common::Writer w;
  w.PutU32(hello.proto_version);
  w.PutU64(hello.features);
  w.PutU64(hello.client_id);
  return w.Take();
}

Status DecodeHello(std::string_view bytes, Hello* out) {
  common::Reader r(bytes);
  out->proto_version = r.GetU32();
  out->features = r.GetU64();
  out->client_id = r.GetU64();
  if (!r.ok() || !r.AtEnd()) {
    return ErrStatus(ErrCode::kCorruption, "bad hello payload");
  }
  return OkStatus();
}

std::string EncodeHelloReply(const HelloReply& reply) {
  common::Writer w;
  w.PutU32(reply.proto_version);
  w.PutU64(reply.features);
  w.PutU64(reply.epoch);
  return w.Take();
}

Status DecodeHelloReply(std::string_view bytes, HelloReply* out) {
  common::Reader r(bytes);
  out->proto_version = r.GetU32();
  out->features = r.GetU64();
  out->epoch = r.GetU64();
  if (!r.ok() || !r.AtEnd()) {
    return ErrStatus(ErrCode::kCorruption, "bad hello reply payload");
  }
  return OkStatus();
}

std::string EncodeBatchRequest(const std::vector<std::string>& subops) {
  common::Writer w;
  w.PutU32(static_cast<std::uint32_t>(subops.size()));
  for (const std::string& sub : subops) {
    w.PutU32(static_cast<std::uint32_t>(sub.size()));
    w.PutRaw(sub);
  }
  return w.Take();
}

std::string EncodeBatchResponse(const std::vector<BatchItem>& items) {
  common::Writer w;
  w.PutU32(static_cast<std::uint32_t>(items.size()));
  for (const BatchItem& item : items) {
    w.PutU8(static_cast<std::uint8_t>(item.code));
    w.PutU32(static_cast<std::uint32_t>(item.payload.size()));
    w.PutRaw(item.payload);
  }
  return w.Take();
}

bool DecodeBatchRequest(std::string_view payload,
                        std::vector<std::string_view>* out) {
  common::Reader r(payload);
  const std::uint32_t count = r.GetU32();
  if (!r.ok()) return false;
  // Every item costs at least its 4-byte length prefix, so a count the
  // remaining bytes cannot possibly hold is rejected before any allocation.
  if (count > (payload.size() - 4) / 4) return false;
  out->clear();
  out->reserve(count);
  std::size_t off = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (payload.size() - off < 4) return false;
    std::uint32_t len = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      len |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(payload[off + shift / 8]))
             << shift;
    }
    off += 4;
    if (payload.size() - off < len) return false;
    out->push_back(payload.substr(off, len));
    off += len;
  }
  return off == payload.size();
}

bool DecodeBatchResponse(std::string_view payload, std::vector<BatchItem>* out) {
  common::Reader r(payload);
  const std::uint32_t count = r.GetU32();
  if (!r.ok()) return false;
  // Each item costs at least 5 bytes (code + length prefix).
  if (count > (payload.size() - 4) / 5) return false;
  out->clear();
  out->reserve(count);
  std::size_t off = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (payload.size() - off < 5) return false;
    const auto code = static_cast<unsigned char>(payload[off]);
    if (code > static_cast<unsigned char>(ErrCode::kUnsupported)) return false;
    ++off;
    std::uint32_t len = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      len |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(payload[off + shift / 8]))
             << shift;
    }
    off += 4;
    if (payload.size() - off < len) return false;
    BatchItem item;
    item.code = static_cast<ErrCode>(code);
    item.payload.assign(payload.substr(off, len));
    out->push_back(std::move(item));
    off += len;
  }
  return off == payload.size();
}

std::optional<Frame> FrameReader::Next() {
  if (!status_.ok()) return std::nullopt;
  if (buffered() < kHeaderBytes) return std::nullopt;
  FrameHeader header;
  status_ = DecodeHeader(std::string_view(buf_).substr(pos_), &header);
  if (!status_.ok()) return std::nullopt;
  if (header.payload_len > max_payload_) {
    status_ = ErrStatus(ErrCode::kCorruption, "frame payload over cap");
    return std::nullopt;
  }
  if (buffered() < kHeaderBytes + header.payload_len) return std::nullopt;
  Frame frame;
  frame.header = header;
  frame.payload = buf_.substr(pos_ + kHeaderBytes, header.payload_len);
  pos_ += kHeaderBytes + header.payload_len;
  // Reclaim consumed bytes once nothing useful remains before pos_.
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (64u << 10)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return frame;
}

// ---------------------------------------------------------------------------
// PinnedFrameReader
// ---------------------------------------------------------------------------

namespace {
// Retired-but-pinned chunks kept waiting for their handlers; beyond this the
// oldest is simply dropped (its pins still own it via shared_ptr).
constexpr std::size_t kMaxPooledChunks = 8;
}  // namespace

PinnedFrameReader::PinnedFrameReader(std::uint32_t max_payload,
                                     std::size_t chunk_bytes)
    : max_payload_(max_payload),
      chunk_bytes_(chunk_bytes < kHeaderBytes ? kHeaderBytes : chunk_bytes) {}

PinnedFrameReader::Chunk PinnedFrameReader::MakeChunk() {
  Chunk chunk;
  // Reuse a retired chunk only once every pinned frame in it is gone; the
  // data pointer must stay stable, so the string is sized once and only the
  // side `size` counter tracks valid bytes from then on.
  for (auto it = pool_.begin(); it != pool_.end(); ++it) {
    if (it->use_count() == 1) {
      chunk.buf = std::move(*it);
      pool_.erase(it);
      return chunk;
    }
  }
  chunk.buf = std::make_shared<std::string>();
  chunk.buf->resize(chunk_bytes_);
  return chunk;
}

void PinnedFrameReader::PopFrontIfExhausted() {
  while (!chunks_.empty() && read_off_ == chunks_.front().size &&
         (chunks_.size() > 1 || chunks_.front().size == chunk_bytes_)) {
    if (pool_.size() < kMaxPooledChunks) {
      pool_.push_back(std::move(chunks_.front().buf));
    }
    chunks_.pop_front();
    read_off_ = 0;
  }
}

char* PinnedFrameReader::RecvInto(std::size_t min_bytes, std::size_t* capacity) {
  if (min_bytes > chunk_bytes_) min_bytes = chunk_bytes_;
  if (chunks_.empty() || chunk_bytes_ - chunks_.back().size < min_bytes) {
    chunks_.push_back(MakeChunk());
  }
  Chunk& back = chunks_.back();
  *capacity = chunk_bytes_ - back.size;
  return back.buf->data() + back.size;
}

void PinnedFrameReader::Commit(std::size_t n) {
  chunks_.back().size += n;
  buffered_ += n;
}

void PinnedFrameReader::Append(std::string_view bytes) {
  while (!bytes.empty()) {
    std::size_t capacity = 0;
    char* dst = RecvInto(1, &capacity);
    const std::size_t n = bytes.size() < capacity ? bytes.size() : capacity;
    std::memcpy(dst, bytes.data(), n);
    Commit(n);
    bytes.remove_prefix(n);
  }
}

void PinnedFrameReader::CopyOut(std::size_t n, char* out) {
  while (n > 0) {
    Chunk& front = chunks_.front();
    const std::size_t avail = front.size - read_off_;
    const std::size_t take = n < avail ? n : avail;
    std::memcpy(out, front.buf->data() + read_off_, take);
    out += take;
    read_off_ += take;
    buffered_ -= take;
    n -= take;
    PopFrontIfExhausted();
  }
}

std::optional<PinnedFrame> PinnedFrameReader::Next() {
  if (!status_.ok()) return std::nullopt;
  if (buffered_ < kHeaderBytes) return std::nullopt;
  // Decode the header without consuming: view it in place when the front
  // chunk holds all 29 bytes, else peek through a stack copy.
  FrameHeader header;
  char scratch[kHeaderBytes];
  std::string_view header_bytes;
  const Chunk& front = chunks_.front();
  if (front.size - read_off_ >= kHeaderBytes) {
    header_bytes = std::string_view(front.buf->data() + read_off_, kHeaderBytes);
  } else {
    std::size_t copied = 0;
    std::size_t off = read_off_;
    for (auto it = chunks_.begin(); it != chunks_.end() && copied < kHeaderBytes;
         ++it) {
      const std::size_t take =
          std::min(kHeaderBytes - copied, it->size - off);
      std::memcpy(scratch + copied, it->buf->data() + off, take);
      copied += take;
      off = 0;
    }
    header_bytes = std::string_view(scratch, kHeaderBytes);
  }
  status_ = DecodeHeader(header_bytes, &header);
  if (!status_.ok()) return std::nullopt;
  if (header.payload_len > max_payload_) {
    status_ = ErrStatus(ErrCode::kCorruption, "frame payload over cap");
    return std::nullopt;
  }
  if (buffered_ < kHeaderBytes + header.payload_len) return std::nullopt;

  PinnedFrame frame;
  frame.header = header;
  // Consume the header, then serve the payload in place when one chunk holds
  // it all — the hot path: recv() landed the frame contiguously, and the
  // handler reads the very bytes the kernel wrote.
  char discard[kHeaderBytes];
  CopyOut(kHeaderBytes, discard);
  if (header.payload_len == 0) {
    frame.zero_copy = true;
    ++zero_copy_frames_;
    return frame;
  }
  Chunk& pfront = chunks_.front();
  if (pfront.size - read_off_ >= header.payload_len) {
    frame.payload =
        std::string_view(pfront.buf->data() + read_off_, header.payload_len);
    frame.pin = pfront.buf;
    frame.zero_copy = true;
    ++zero_copy_frames_;
    read_off_ += header.payload_len;
    buffered_ -= header.payload_len;
    PopFrontIfExhausted();
    return frame;
  }
  auto assembled = std::make_shared<std::string>();
  assembled->resize(header.payload_len);
  CopyOut(header.payload_len, assembled->data());
  frame.payload = std::string_view(*assembled);
  frame.pin = std::move(assembled);
  frame.zero_copy = false;
  ++assembled_frames_;
  return frame;
}

}  // namespace loco::net::wire
