#include "net/wire.h"

#include "common/codec.h"

namespace loco::net::wire {

std::string EncodeFrame(const FrameHeader& header, std::string_view payload) {
  common::Writer w;
  w.PutU32(kMagic);
  // Tag each frame with the *minimum* version able to interpret it: request
  // and response frames are byte-identical to v1, so a v2 sender stays
  // interoperable with v1 peers; only the new push frames require v2.
  w.PutU8(header.type == FrameType::kNotify ? kVersion : kMinVersion);
  w.PutU8(static_cast<std::uint8_t>(header.type));
  w.PutU16(header.opcode);
  w.PutU64(header.request_id);
  w.PutU64(header.trace_id);
  w.PutU8(static_cast<std::uint8_t>(header.code));
  w.PutU32(static_cast<std::uint32_t>(payload.size()));
  w.PutRaw(payload);
  return w.Take();
}

Status DecodeHeader(std::string_view bytes, FrameHeader* out) {
  common::Reader r(bytes);
  const std::uint32_t magic = r.GetU32();
  const std::uint8_t version = r.GetU8();
  const std::uint8_t type = r.GetU8();
  out->opcode = r.GetU16();
  out->request_id = r.GetU64();
  out->trace_id = r.GetU64();
  const std::uint8_t code = r.GetU8();
  out->payload_len = r.GetU32();
  if (!r.ok()) return ErrStatus(ErrCode::kCorruption, "short frame header");
  if (magic != kMagic) return ErrStatus(ErrCode::kCorruption, "bad frame magic");
  if (version < kMinVersion || version > kVersion) {
    return ErrStatus(ErrCode::kCorruption, "unsupported frame version");
  }
  if (type != static_cast<std::uint8_t>(FrameType::kRequest) &&
      type != static_cast<std::uint8_t>(FrameType::kResponse) &&
      type != static_cast<std::uint8_t>(FrameType::kNotify)) {
    return ErrStatus(ErrCode::kCorruption, "bad frame type");
  }
  if (code > static_cast<std::uint8_t>(ErrCode::kUnsupported)) {
    return ErrStatus(ErrCode::kCorruption, "bad frame error code");
  }
  out->type = static_cast<FrameType>(type);
  out->code = static_cast<ErrCode>(code);
  return OkStatus();
}

std::string EncodeHello(const Hello& hello) {
  common::Writer w;
  w.PutU32(hello.proto_version);
  w.PutU64(hello.features);
  w.PutU64(hello.client_id);
  return w.Take();
}

Status DecodeHello(std::string_view bytes, Hello* out) {
  common::Reader r(bytes);
  out->proto_version = r.GetU32();
  out->features = r.GetU64();
  out->client_id = r.GetU64();
  if (!r.ok() || !r.AtEnd()) {
    return ErrStatus(ErrCode::kCorruption, "bad hello payload");
  }
  return OkStatus();
}

std::string EncodeHelloReply(const HelloReply& reply) {
  common::Writer w;
  w.PutU32(reply.proto_version);
  w.PutU64(reply.features);
  w.PutU64(reply.epoch);
  return w.Take();
}

Status DecodeHelloReply(std::string_view bytes, HelloReply* out) {
  common::Reader r(bytes);
  out->proto_version = r.GetU32();
  out->features = r.GetU64();
  out->epoch = r.GetU64();
  if (!r.ok() || !r.AtEnd()) {
    return ErrStatus(ErrCode::kCorruption, "bad hello reply payload");
  }
  return OkStatus();
}

std::optional<Frame> FrameReader::Next() {
  if (!status_.ok()) return std::nullopt;
  if (buffered() < kHeaderBytes) return std::nullopt;
  FrameHeader header;
  status_ = DecodeHeader(std::string_view(buf_).substr(pos_), &header);
  if (!status_.ok()) return std::nullopt;
  if (header.payload_len > max_payload_) {
    status_ = ErrStatus(ErrCode::kCorruption, "frame payload over cap");
    return std::nullopt;
  }
  if (buffered() < kHeaderBytes + header.payload_len) return std::nullopt;
  Frame frame;
  frame.header = header;
  frame.payload = buf_.substr(pos_ + kHeaderBytes, header.payload_len);
  pos_ += kHeaderBytes + header.payload_len;
  // Reclaim consumed bytes once nothing useful remains before pos_.
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (64u << 10)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return frame;
}

}  // namespace loco::net::wire
