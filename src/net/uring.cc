#include "net/uring.h"

#if defined(LOCO_IOURING) && defined(__linux__) && \
    __has_include(<linux/io_uring.h>)
#define LOCO_URING_IMPL 1
#endif

#if defined(LOCO_URING_IMPL)

#include <linux/io_uring.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace loco::net::uring {

namespace {

int SysSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysEnter(int fd, unsigned to_submit, unsigned min_complete,
             unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

int SysRegister(int fd, unsigned opcode, const void* arg, unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

}  // namespace

bool Supported() {
  static const bool ok = [] {
    struct io_uring_params p {};
    const int fd = SysSetup(4, &p);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return ok;
}

bool CqeHasMore(const Cqe& cqe) { return (cqe.flags & IORING_CQE_F_MORE) != 0; }

Ring::~Ring() { Close(); }

bool Ring::Init(unsigned entries) {
  struct io_uring_params p {};
  ring_fd_ = SysSetup(entries, &p);
  if (ring_fd_ < 0) {
    ring_fd_ = -1;
    return false;
  }
  const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  sq_ring_bytes_ = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ = p.cq_off.cqes + p.cq_entries * sizeof(struct io_uring_cqe);
  if (single_mmap) {
    sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);
  }
  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    sq_ring_ = nullptr;
    Close();
    return false;
  }
  if (single_mmap) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      cq_ring_ = nullptr;
      Close();
      return false;
    }
  }
  sqes_bytes_ = p.sq_entries * sizeof(struct io_uring_sqe);
  sqes_ = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    Close();
    return false;
  }
  auto* sq = static_cast<char*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
  sq_entries_ = p.sq_entries;
  sq_tail_local_ = *sq_tail_;
  auto* cq = static_cast<char*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
  cqes_ = cq + p.cq_off.cqes;
  return true;
}

void Ring::Close() {
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
    ::munmap(cq_ring_, cq_ring_bytes_);
  }
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
  sqes_ = nullptr;
  cq_ring_ = nullptr;
  sq_ring_ = nullptr;
  if (ring_fd_ >= 0) ::close(ring_fd_);
  ring_fd_ = -1;
}

bool Ring::RegisterBuffers(const struct ::iovec* iovs, unsigned n) {
  return valid() && SysRegister(ring_fd_, IORING_REGISTER_BUFFERS, iovs, n) == 0;
}

void* Ring::NextSqe() {
  const unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
  if (sq_tail_local_ - head >= sq_entries_) return nullptr;  // SQ full
  auto* sqe = &static_cast<struct io_uring_sqe*>(sqes_)[sq_tail_local_ &
                                                        sq_mask_];
  std::memset(sqe, 0, sizeof(*sqe));
  sq_array_[sq_tail_local_ & sq_mask_] = sq_tail_local_ & sq_mask_;
  ++sq_tail_local_;
  ++to_submit_;
  return sqe;
}

bool Ring::PrepAcceptMultishot(int fd, std::uint64_t user_data) {
  auto* sqe = static_cast<struct io_uring_sqe*>(NextSqe());
  if (sqe == nullptr) return false;
  sqe->opcode = IORING_OP_ACCEPT;
  sqe->fd = fd;
  sqe->ioprio = IORING_ACCEPT_MULTISHOT;
  sqe->accept_flags = SOCK_NONBLOCK | SOCK_CLOEXEC;
  sqe->user_data = user_data;
  return true;
}

bool Ring::PrepRecv(int fd, void* buf, std::size_t len,
                    std::uint64_t user_data) {
  auto* sqe = static_cast<struct io_uring_sqe*>(NextSqe());
  if (sqe == nullptr) return false;
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<std::uint64_t>(buf);
  sqe->len = static_cast<std::uint32_t>(len);
  sqe->user_data = user_data;
  return true;
}

bool Ring::PrepReadFixed(int fd, void* buf, std::size_t len,
                         unsigned buf_index, std::uint64_t user_data) {
  auto* sqe = static_cast<struct io_uring_sqe*>(NextSqe());
  if (sqe == nullptr) return false;
  sqe->opcode = IORING_OP_READ_FIXED;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<std::uint64_t>(buf);
  sqe->len = static_cast<std::uint32_t>(len);
  sqe->buf_index = static_cast<std::uint16_t>(buf_index);
  sqe->user_data = user_data;
  return true;
}

bool Ring::PrepRead(int fd, void* buf, std::size_t len,
                    std::uint64_t user_data) {
  auto* sqe = static_cast<struct io_uring_sqe*>(NextSqe());
  if (sqe == nullptr) return false;
  sqe->opcode = IORING_OP_READ;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<std::uint64_t>(buf);
  sqe->len = static_cast<std::uint32_t>(len);
  sqe->user_data = user_data;
  return true;
}

bool Ring::PrepPollOutOneshot(int fd, std::uint64_t user_data) {
  auto* sqe = static_cast<struct io_uring_sqe*>(NextSqe());
  if (sqe == nullptr) return false;
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = fd;
  sqe->poll_events = POLLOUT | POLLERR | POLLHUP;
  sqe->user_data = user_data;
  return true;
}

int Ring::SubmitAndWait(bool wait_for_one) {
  __atomic_store_n(sq_tail_, sq_tail_local_, __ATOMIC_RELEASE);
  const unsigned flags = wait_for_one ? IORING_ENTER_GETEVENTS : 0;
  const int rc =
      SysEnter(ring_fd_, to_submit_, wait_for_one ? 1 : 0, flags);
  if (rc >= 0) {
    to_submit_ -= std::min(to_submit_, static_cast<unsigned>(rc));
  }
  return rc;
}

bool Ring::PopCqe(Cqe* out) {
  const unsigned head = *cq_head_;  // single consumer: plain read of our index
  const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
  if (head == tail) return false;
  const auto* cqe =
      &static_cast<const struct io_uring_cqe*>(cqes_)[head & cq_mask_];
  out->user_data = cqe->user_data;
  out->res = cqe->res;
  out->flags = cqe->flags;
  __atomic_store_n(cq_head_, head + 1, __ATOMIC_RELEASE);
  return true;
}

}  // namespace loco::net::uring

#else  // !LOCO_URING_IMPL — stub: the uring backend reports unsupported.

namespace loco::net::uring {

bool Supported() { return false; }
bool CqeHasMore(const Cqe&) { return false; }
Ring::~Ring() = default;
bool Ring::Init(unsigned) { return false; }
void Ring::Close() {}
bool Ring::RegisterBuffers(const struct ::iovec*, unsigned) { return false; }
bool Ring::PrepAcceptMultishot(int, std::uint64_t) { return false; }
bool Ring::PrepRecv(int, void*, std::size_t, std::uint64_t) { return false; }
bool Ring::PrepReadFixed(int, void*, std::size_t, unsigned, std::uint64_t) {
  return false;
}
bool Ring::PrepRead(int, void*, std::size_t, std::uint64_t) { return false; }
bool Ring::PrepPollOutOneshot(int, std::uint64_t) { return false; }
int Ring::SubmitAndWait(bool) { return -1; }
bool Ring::PopCqe(Cqe*) { return false; }

}  // namespace loco::net::uring

#endif  // LOCO_URING_IMPL
