// Minimal coroutine Task<T> with symmetric transfer.
//
// File-system client logic (LocoFS's LocoLib and the baseline clients) is
// written once as Task coroutines over net::Channel.  Under the in-process
// transport every co_await completes inline, so the coroutine never actually
// suspends and behaves like a plain function call; under the simulator the
// awaits suspend and are resumed by the event loop in virtual-time order.
//
// Tasks are lazy (started when first awaited, or by StartTask) and
// single-consumer.  Exceptions escaping a task terminate: the codebase
// reports errors through loco::Status, never by throwing across RPC frames.
#pragma once

#include <cassert>
#include <coroutine>
#include <functional>
#include <optional>
#include <utility>

namespace loco::net {

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) const noexcept {
      // Resume whoever awaited us; detached tasks resume a no-op.
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  struct promise_type {
    std::optional<T> value;
    std::coroutine_handle<> continuation;

    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void return_value(T v) { value.emplace(std::move(v)); }
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool Done() const noexcept { return handle_ && handle_.done(); }

  struct Awaiter {
    Handle handle;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) const noexcept {
      handle.promise().continuation = cont;
      return handle;  // symmetric transfer: start the child immediately
    }
    T await_resume() const {
      assert(handle.promise().value.has_value());
      return std::move(*handle.promise().value);
    }
  };

  // Awaiting a Task starts it and yields its result.  rvalue-only: the
  // awaiting expression keeps the Task (and its frame) alive until resume.
  Awaiter operator co_await() && noexcept { return Awaiter{handle_}; }

 private:
  explicit Task(Handle h) noexcept : handle_(h) {}
  Handle handle_;
};

namespace detail {

// Fire-and-forget root coroutine used to launch a Task from non-coroutine
// code.  Its frame frees itself at completion (suspend_never in final).
struct Detached {
  struct promise_type {
    Detached get_return_object() const noexcept { return {}; }
    std::suspend_never initial_suspend() const noexcept { return {}; }
    std::suspend_never final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    [[noreturn]] void unhandled_exception() const { std::terminate(); }
  };
};

template <typename T, typename Done>
Detached RunDetached(Task<T> task, Done done) {
  done(co_await std::move(task));
}

}  // namespace detail

// Launch `task` from ordinary code; `done(result)` fires at completion —
// inline if the task never suspends (in-process transport), later from the
// event loop otherwise.
template <typename T, typename Done>
void StartTask(Task<T> task, Done done) {
  detail::RunDetached(std::move(task), std::move(done));
}

// Convenience for tests and the real-transport client facade: run a task
// that is known to complete without suspending (in-process transport) and
// return its value.  Aborts if the task would actually need to wait.
template <typename T>
T RunInline(Task<T> task) {
  std::optional<T> out;
  StartTask(std::move(task), [&out](T v) { out.emplace(std::move(v)); });
  assert(out.has_value() && "RunInline task suspended on a non-inline transport");
  return std::move(*out);
}

}  // namespace loco::net
