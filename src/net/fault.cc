#include "net/fault.h"

#include <charconv>
#include <cstdlib>

namespace loco::net {

namespace {

bool ParseU64(std::string_view text, std::uint64_t* out) {
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseDouble(std::string_view text, double* out) {
  // std::from_chars<double> is spotty across standard libraries; strtod on a
  // bounded copy is fine for a flag parser.
  std::string copy(text);
  char* end = nullptr;
  *out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size() && !copy.empty();
}

bool ParseProbability(std::string_view text, double* out) {
  return ParseDouble(text, out) && *out >= 0.0 && *out <= 1.0;
}

}  // namespace

Result<FaultSpec> FaultSpec::Parse(std::string_view text) {
  FaultSpec spec;
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Result<FaultSpec>(ErrCode::kInvalid,
                               "fault-spec item needs key=value: " +
                                   std::string(item));
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    bool ok = true;
    if (key == "seed") {
      ok = ParseU64(value, &spec.seed);
    } else if (key == "drop") {
      ok = ParseProbability(value, &spec.drop);
    } else if (key == "dup") {
      ok = ParseProbability(value, &spec.dup);
    } else if (key == "delay") {
      ok = ParseProbability(value, &spec.delay);
    } else if (key == "delay_ms") {
      std::uint64_t ms = 0;
      ok = ParseU64(value, &ms);
      spec.delay_ns = static_cast<common::Nanos>(ms) * common::kMilli;
    } else if (key == "reset") {
      ok = ParseProbability(value, &spec.reset);
    } else if (key == "short_write") {
      ok = ParseProbability(value, &spec.short_write);
    } else if (key == "crash_after") {
      ok = ParseU64(value, &spec.crash_after);
    } else if (key == "kv_put_fail") {
      ok = ParseProbability(value, &spec.kv_put_fail);
    } else if (key == "kv_fail_after") {
      ok = ParseU64(value, &spec.kv_fail_after);
    } else if (key == "notify_drop") {
      ok = ParseProbability(value, &spec.notify_drop);
    } else if (key == "notify_dup") {
      ok = ParseProbability(value, &spec.notify_dup);
    } else if (key == "queue_full") {
      ok = ParseProbability(value, &spec.queue_full);
    } else {
      return Result<FaultSpec>(ErrCode::kInvalid,
                               "unknown fault-spec key: " + std::string(key));
    }
    if (!ok) {
      return Result<FaultSpec>(ErrCode::kInvalid,
                               "bad fault-spec value: " + std::string(item));
    }
  }
  return spec;
}

bool FaultSpec::Armed() const noexcept {
  return drop > 0 || dup > 0 || delay > 0 || reset > 0 || short_write > 0 ||
         crash_after > 0 || kv_put_fail > 0 || kv_fail_after > 0 ||
         notify_drop > 0 || notify_dup > 0 || queue_full > 0;
}

FaultInjector::FaultInjector(const FaultSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  auto& reg = common::MetricsRegistry::Default();
  drop_count_ = &reg.GetCounter("faults.injected.drop");
  dup_count_ = &reg.GetCounter("faults.injected.dup");
  delay_count_ = &reg.GetCounter("faults.injected.delay");
  reset_count_ = &reg.GetCounter("faults.injected.reset");
  short_write_count_ = &reg.GetCounter("faults.injected.short_write");
  crash_count_ = &reg.GetCounter("faults.injected.crash");
  kv_put_fail_count_ = &reg.GetCounter("faults.injected.kv_put_fail");
  notify_drop_count_ = &reg.GetCounter("faults.injected.notify_drop");
  notify_dup_count_ = &reg.GetCounter("faults.injected.notify_dup");
  queue_full_count_ = &reg.GetCounter("faults.injected.queue_full");
}

FaultInjector::FrameFate FaultInjector::OnServerFrame() {
  FrameFate fate;
  std::lock_guard<std::mutex> lock(mu_);
  ++frames_;
  if (spec_.crash_after > 0 && frames_ >= spec_.crash_after) {
    crash_count_->Add();
    fate.crash = true;
    return fate;
  }
  if (spec_.reset > 0 && rng_.Chance(spec_.reset)) {
    reset_count_->Add();
    fate.reset = true;
    return fate;
  }
  if (spec_.drop > 0 && rng_.Chance(spec_.drop)) {
    drop_count_->Add();
    fate.drop = true;
    return fate;
  }
  if (spec_.dup > 0 && rng_.Chance(spec_.dup)) {
    dup_count_->Add();
    fate.dup = true;
  }
  if (spec_.delay > 0 && rng_.Chance(spec_.delay)) {
    delay_count_->Add();
    fate.delay_ns = spec_.delay_ns;
  }
  return fate;
}

bool FaultInjector::ShortWriteResponse() {
  if (spec_.short_write <= 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (!rng_.Chance(spec_.short_write)) return false;
  short_write_count_->Add();
  return true;
}

FaultInjector::NotifyFate FaultInjector::OnNotifyFrame() {
  NotifyFate fate;
  if (spec_.notify_drop <= 0 && spec_.notify_dup <= 0) return fate;
  std::lock_guard<std::mutex> lock(mu_);
  if (spec_.notify_drop > 0 && rng_.Chance(spec_.notify_drop)) {
    notify_drop_count_->Add();
    fate.drop = true;
    return fate;
  }
  if (spec_.notify_dup > 0 && rng_.Chance(spec_.notify_dup)) {
    notify_dup_count_->Add();
    fate.dup = true;
  }
  return fate;
}

common::Nanos FaultInjector::OnClientSend() {
  if (spec_.delay <= 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (!rng_.Chance(spec_.delay)) return 0;
  delay_count_->Add();
  return spec_.delay_ns;
}

bool FaultInjector::ForceQueueFull() {
  if (spec_.queue_full <= 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (!rng_.Chance(spec_.queue_full)) return false;
  queue_full_count_->Add();
  return true;
}

bool FaultInjector::FailKvPut() {
  if (spec_.kv_put_fail <= 0 && spec_.kv_fail_after == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  ++kv_puts_;
  if (spec_.kv_fail_after > 0 && kv_puts_ > spec_.kv_fail_after) {
    kv_put_fail_count_->Add();
    return true;
  }
  if (spec_.kv_put_fail > 0 && rng_.Chance(spec_.kv_put_fail)) {
    kv_put_fail_count_->Add();
    return true;
  }
  return false;
}

}  // namespace loco::net
