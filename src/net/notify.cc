#include "net/notify.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "common/codec.h"
#include "common/metrics.h"
#include "net/reactor.h"
#include "net/tcp.h"

namespace loco::net {

// ---------------------------------------------------------------------------
// Event codecs
// ---------------------------------------------------------------------------

std::string EncodeInvalidate(const InvalidateEvent& event) {
  common::Writer w;
  w.PutBytes(event.path);
  w.PutU8(event.subtree ? 1 : 0);
  w.PutU64(event.wall_ts_ns);
  return w.Take();
}

Status DecodeInvalidate(std::string_view bytes, InvalidateEvent* out) {
  common::Reader r(bytes);
  out->path = r.GetString();
  out->subtree = r.GetU8() != 0;
  out->wall_ts_ns = r.GetU64();
  if (!r.ok() || !r.AtEnd()) {
    return ErrStatus(ErrCode::kCorruption, "bad invalidate event");
  }
  return OkStatus();
}

std::string EncodeServerUp(const ServerUpEvent& event) {
  common::Writer w;
  w.PutU32(event.node);
  w.PutU64(event.epoch);
  w.PutU64(event.wall_ts_ns);
  return w.Take();
}

Status DecodeServerUp(std::string_view bytes, ServerUpEvent* out) {
  common::Reader r(bytes);
  out->node = r.GetU32();
  out->epoch = r.GetU64();
  out->wall_ts_ns = r.GetU64();
  if (!r.ok() || !r.AtEnd()) {
    return ErrStatus(ErrCode::kCorruption, "bad server-up event");
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// NotifyListener
// ---------------------------------------------------------------------------

namespace {

struct ListenerCounters {
  common::Counter* reconnects;
  common::Counter* resyncs;
  common::Counter* gaps;
  common::Counter* dups;
  common::Counter* invalidates;
  common::Counter* server_ups;
  common::Counter* stream_down;
  common::Counter* degraded;

  static const ListenerCounters& Get() {
    static const ListenerCounters c = [] {
      auto& reg = common::MetricsRegistry::Default();
      return ListenerCounters{&reg.GetCounter("notify.listener.reconnects"),
                              &reg.GetCounter("notify.listener.resyncs"),
                              &reg.GetCounter("notify.listener.gaps"),
                              &reg.GetCounter("notify.listener.dups"),
                              &reg.GetCounter("notify.listener.invalidates"),
                              &reg.GetCounter("notify.listener.server_ups"),
                              &reg.GetCounter("notify.listener.stream_down"),
                              &reg.GetCounter("notify.listener.degraded")};
    }();
    return c;
  }
};

// Wait for `events` on `fd`, interruptible by a byte on `stop_fd`.
// Returns 1 when fd is ready, 0 on deadline (deadline_abs > 0 only),
// -1 on stop or poll error.
int PollStoppable(int fd, int stop_fd, short events,
                  common::Nanos deadline_abs) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline_abs > 0) {
      const common::Nanos remaining = deadline_abs - common::CpuTimer::Now();
      if (remaining <= 0) return 0;
      timeout_ms = static_cast<int>(
          std::min<common::Nanos>((remaining + common::kMilli - 1) /
                                      common::kMilli,
                                  60'000));
    }
    struct pollfd pfds[2] = {{fd, events, 0}, {stop_fd, POLLIN, 0}};
    const int n = ::poll(pfds, 2, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) {
      if (deadline_abs > 0) return 0;
      continue;
    }
    if (pfds[1].revents != 0) return -1;  // stop requested
    if (pfds[0].revents != 0) return 1;
  }
}

bool SendAllStoppable(int fd, int stop_fd, std::string_view data,
                      common::Nanos deadline_abs) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (PollStoppable(fd, stop_fd, POLLOUT, deadline_abs) <= 0) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

NotifyListener::NotifyListener(Options options, Callback callback)
    : options_(std::move(options)), callback_(std::move(callback)) {}

NotifyListener::~NotifyListener() { Stop(); }

Status NotifyListener::Start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    return ErrStatus(ErrCode::kInvalid, "listener already started");
  }
  if (::pipe(stop_fds_) != 0) {
    started_.store(false, std::memory_order_release);
    return ErrStatus(ErrCode::kIo, "cannot create stop pipe");
  }
  thread_ = std::thread(&NotifyListener::Run, this);
  return OkStatus();
}

void NotifyListener::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (!stop_.exchange(true, std::memory_order_acq_rel)) {
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(stop_fds_[1], &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
  for (int& fd : stop_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void NotifyListener::Emit(NotifyEvent::Kind kind) {
  NotifyEvent event;
  event.kind = kind;
  callback_(event);
}

bool NotifyListener::RecvOne(int fd, wire::FrameReader* reader,
                             wire::Frame* out, common::Nanos deadline_abs) {
  char buf[16 * 1024];
  for (;;) {
    if (auto frame = reader->Next()) {
      *out = std::move(*frame);
      return true;
    }
    if (!reader->status().ok()) return false;
    // Readability waits go through the shared reactor when the mount has
    // one (a one-shot registration per wait; the stop pipe doubles as the
    // cancel descriptor), else through the private poll fallback.
    const int ready =
        options_.reactor != nullptr
            ? options_.reactor->AwaitReadable(fd, stop_fds_[0], deadline_abs)
            : PollStoppable(fd, stop_fds_[0], POLLIN, deadline_abs);
    if (ready <= 0) return false;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      reader->Append(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    return false;  // orderly close or hard error
  }
}

bool NotifyListener::RunOnce(bool* ever_connected, bool* connected_this_cycle) {
  const auto& counters = ListenerCounters::Get();
  const int fd = DialTcp(options_.host, options_.port,
                         common::CpuTimer::Now() + options_.connect_timeout_ns);
  if (fd < 0) return !stop_.load(std::memory_order_acquire);

  // Hello: an ordinary request (v1-compatible) advertising notify support.
  wire::Hello hello;
  hello.features = wire::kFeatureNotify;
  hello.client_id = options_.client_id;
  wire::FrameHeader header;
  header.type = wire::FrameType::kRequest;
  header.opcode = wire::kCtlHello;
  header.request_id = 1;
  header.trace_id = NextTraceId();
  const common::Nanos hello_deadline =
      common::CpuTimer::Now() + options_.hello_timeout_ns;
  wire::FrameReader reader;
  wire::Frame reply;
  if (!SendAllStoppable(fd, stop_fds_[0],
                        wire::EncodeFrame(header, wire::EncodeHello(hello)),
                        hello_deadline) ||
      !RecvOne(fd, &reader, &reply, hello_deadline) ||
      reply.header.type != wire::FrameType::kResponse ||
      reply.header.opcode != wire::kCtlHello) {
    ::close(fd);
    return !stop_.load(std::memory_order_acquire);
  }
  wire::HelloReply negotiated;
  if (reply.header.code != ErrCode::kOk ||
      !DecodeHelloReply(reply.payload, &negotiated).ok() ||
      (negotiated.features & wire::kFeatureNotify) == 0) {
    // The server answered but does not speak notify (v1 peer answering an
    // unknown opcode, or a v2 peer with the feature off): degrade for good.
    ::close(fd);
    degraded_.store(true, std::memory_order_release);
    counters.degraded->Add();
    Emit(NotifyEvent::Kind::kStreamDown);
    return false;
  }

  *connected_this_cycle = true;
  epoch_.store(negotiated.epoch, std::memory_order_release);
  connected_.store(true, std::memory_order_release);
  if (*ever_connected) {
    // Pushes may have been lost while the stream was down (this includes a
    // server restart — the epoch bump is informational, the reconnect alone
    // forces the resync).
    counters.reconnects->Add();
    counters.resyncs->Add();
    Emit(NotifyEvent::Kind::kResync);
  }
  *ever_connected = true;

  std::uint64_t expected_seq = 1;  // per-connection, server starts at 1
  for (;;) {
    wire::Frame frame;
    if (!RecvOne(fd, &reader, &frame, /*deadline_abs=*/0)) break;
    if (frame.header.type != wire::FrameType::kNotify) break;
    const std::uint64_t seq = frame.header.request_id;
    if (seq < expected_seq) {
      counters.dups->Add();  // duplicated push (e.g. injected dup fault)
      continue;
    }
    if (seq > expected_seq) {
      // Lost push(es): the stream is ack-less, so the only safe move is to
      // drop cached state.  The carried frame itself is still delivered.
      counters.gaps->Add();
      counters.resyncs->Add();
      Emit(NotifyEvent::Kind::kResync);
      expected_seq = seq;
    }
    ++expected_seq;
    NotifyEvent event;
    switch (frame.header.opcode) {
      case wire::kNotifyInvalidate:
        if (!DecodeInvalidate(frame.payload, &event.invalidate).ok()) break;
        event.kind = NotifyEvent::Kind::kInvalidate;
        counters.invalidates->Add();
        callback_(event);
        break;
      case wire::kNotifyServerUp:
        if (!DecodeServerUp(frame.payload, &event.server_up).ok()) break;
        event.kind = NotifyEvent::Kind::kServerUp;
        counters.server_ups->Add();
        callback_(event);
        break;
      default:
        break;  // unknown notify opcode: ignore (forward compatibility)
    }
  }
  ::close(fd);
  connected_.store(false, std::memory_order_release);
  if (!stop_.load(std::memory_order_acquire)) {
    counters.stream_down->Add();
    Emit(NotifyEvent::Kind::kStreamDown);
  }
  return !stop_.load(std::memory_order_acquire);
}

void NotifyListener::Run() {
  bool ever_connected = false;
  common::Nanos backoff = options_.backoff_base_ns;
  while (!stop_.load(std::memory_order_acquire)) {
    bool connected_this_cycle = false;
    if (!RunOnce(&ever_connected, &connected_this_cycle)) break;
    backoff = connected_this_cycle
                  ? options_.backoff_base_ns
                  : std::min(backoff * 2, options_.backoff_cap_ns);
    // Interruptible backoff sleep (no data descriptor; only the stop pipe
    // can cut the wait short).
    const common::Nanos wake_at = common::CpuTimer::Now() + backoff;
    if (options_.reactor != nullptr) {
      (void)options_.reactor->AwaitReadable(-1, stop_fds_[0], wake_at);
    } else {
      (void)PollStoppable(-1, stop_fds_[0], 0, wake_at);
    }
  }
  connected_.store(false, std::memory_order_release);
}

}  // namespace loco::net
