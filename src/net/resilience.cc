#include "net/resilience.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/codec.h"

namespace loco::net {

namespace {

bool Retryable(ErrCode code) noexcept {
  return code == ErrCode::kUnavailable || code == ErrCode::kTimeout ||
         code == ErrCode::kOverloaded;
}

// The kOverloaded retry-after hint (u64 nanoseconds); 0 when the payload is
// absent or malformed (the caller falls back to jittered backoff).
common::Nanos RetryAfterHint(const std::string& payload) {
  common::Reader r(payload);
  const std::uint64_t hint = r.GetU64();
  if (!r.ok()) return 0;
  return static_cast<common::Nanos>(hint);
}

}  // namespace

ResilientChannel::ResilientChannel(Channel* inner, ResilienceOptions options)
    : inner_(inner),
      options_(options),
      rng_(options.seed),
      retry_tokens_(options.retry_budget_cap) {
  auto& reg = common::MetricsRegistry::Default();
  retries_ = &reg.GetCounter("rpc.resilient.retries");
  fast_fails_ = &reg.GetCounter("rpc.resilient.fast_fails");
  breaker_opens_ = &reg.GetCounter("rpc.resilient.breaker_opens");
  gossip_resets_ = &reg.GetCounter("rpc.resilient.gossip_resets");
  budget_exhausted_ = &reg.GetCounter("rpc.resilient.budget_exhausted");
}

void ResilientChannel::NotifyServerUp(NodeId server) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(server);
  if (it == breakers_.end()) return;
  Breaker& b = it->second;
  if (b.consecutive_failures == 0 && b.open_until == 0 && !b.probing) return;
  b.consecutive_failures = 0;
  b.open_until = 0;
  b.probing = false;
  gossip_resets_->Add();
}

void ResilientChannel::CallAsync(NodeId server, std::uint16_t opcode,
                                 std::string payload,
                                 std::function<void(RpcResponse)> done) {
  // Stamp the trace id here so every retry below shares it — the server's
  // dedup window keys on it.
  CallMeta meta;
  meta.trace_id = NextTraceId();
  CallAsyncMeta(server, opcode, std::move(payload), meta, std::move(done));
}

void ResilientChannel::CallAsyncMeta(NodeId server, std::uint16_t opcode,
                                     std::string payload, const CallMeta& meta,
                                     std::function<void(RpcResponse)> done) {
  CallMeta attempt_meta = meta;
  if (attempt_meta.trace_id == 0) attempt_meta.trace_id = NextTraceId();
  // ONE deadline budget covers every attempt: each retry is stamped with
  // what remains, so max_attempts can never stretch a call past its total.
  const common::Nanos total_ns =
      meta.deadline_ns > 0 ? meta.deadline_ns : options_.default_deadline_ns;
  const common::Nanos deadline_abs = common::CpuTimer::Now() + total_ns;
  DepositRetryToken();
  RpcResponse last{ErrCode::kUnavailable, {}};
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    const common::Nanos remaining = deadline_abs - common::CpuTimer::Now();
    if (remaining <= 0) {
      if (attempt == 0) last = RpcResponse{ErrCode::kTimeout, {}};
      break;
    }
    attempt_meta.deadline_ns = remaining;
    const Admit admit = AdmitCall(server);
    if (admit == Admit::kFastFail) {
      fast_fails_->Add();
      last = RpcResponse{ErrCode::kUnavailable, {}};
    } else {
      if (attempt > 0) {
        if (!SpendRetryToken()) {
          // Sustained failure drained the bucket: stop amplifying load and
          // surface the first attempt's verdict.
          budget_exhausted_->Add();
          break;
        }
        retries_->Add();
      }
      RpcResponse resp;
      bool got = false;
      // All project transports complete inline (tcp blocks the caller), so
      // the response is available when CallAsyncMeta returns.
      inner_->CallAsyncMeta(server, opcode, payload, attempt_meta,
                            [&](RpcResponse r) {
                              resp = std::move(r);
                              got = true;
                            });
      if (!got) {
        // A transport that completes asynchronously cannot be retried safely
        // from here; pass its eventual response through untouched.
        inner_->CallAsyncMeta(server, opcode, std::move(payload), attempt_meta,
                              std::move(done));
        return;
      }
      const bool failed = Retryable(resp.code);
      // kOverloaded is retryable but comes from a live, answering server:
      // it never counts toward opening the breaker.
      RecordOutcome(server, !failed || resp.code == ErrCode::kOverloaded,
                    admit == Admit::kProbe);
      if (!failed) {
        done(std::move(resp));
        return;
      }
      last = std::move(resp);
    }
    if (attempt + 1 < options_.max_attempts) {
      common::Nanos sleep_ns = 0;
      if (last.code == ErrCode::kOverloaded) {
        // The shedding server said when to come back; believe it.
        sleep_ns = RetryAfterHint(last.payload);
      }
      if (sleep_ns <= 0) sleep_ns = JitterBackoff(attempt);
      sleep_ns = std::min(sleep_ns, deadline_abs - common::CpuTimer::Now());
      if (sleep_ns > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
      }
    }
  }
  done(std::move(last));
}

void ResilientChannel::DepositRetryToken() {
  if (options_.retry_budget_ratio <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  retry_tokens_ = std::min(options_.retry_budget_cap,
                           retry_tokens_ + options_.retry_budget_ratio);
}

bool ResilientChannel::SpendRetryToken() {
  if (options_.retry_budget_ratio <= 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  if (retry_tokens_ < 1.0) return false;
  retry_tokens_ -= 1.0;
  return true;
}

ResilientChannel::Admit ResilientChannel::AdmitCall(NodeId server) {
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = breakers_[server];
  if (b.open_until == 0) return Admit::kAllow;
  const common::Nanos now = common::CpuTimer::Now();
  if (now < b.open_until) return Admit::kFastFail;
  // Open interval elapsed: admit exactly one probe; everyone else keeps
  // failing fast until the probe reports.
  if (b.probing) return Admit::kFastFail;
  b.probing = true;
  return Admit::kProbe;
}

void ResilientChannel::RecordOutcome(NodeId server, bool success,
                                     bool was_probe) {
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = breakers_[server];
  if (was_probe) b.probing = false;
  if (success) {
    b.consecutive_failures = 0;
    b.open_until = 0;
    return;
  }
  ++b.consecutive_failures;
  if (was_probe || b.consecutive_failures >= options_.breaker_threshold) {
    if (b.open_until == 0) breaker_opens_->Add();
    b.open_until = common::CpuTimer::Now() + options_.breaker_open_ns;
  }
}

common::Nanos ResilientChannel::JitterBackoff(int attempt) {
  common::Nanos ceiling = options_.backoff_base_ns;
  for (int i = 0; i < attempt && ceiling < options_.backoff_cap_ns; ++i) {
    ceiling *= 2;
  }
  ceiling = std::min(ceiling, options_.backoff_cap_ns);
  if (ceiling <= 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<common::Nanos>(
      rng_.Uniform(static_cast<std::uint64_t>(ceiling) + 1));
}

BreakerState ResilientChannel::breaker_state(NodeId server) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(server);
  if (it == breakers_.end() || it->second.open_until == 0) {
    return BreakerState::kClosed;
  }
  return common::CpuTimer::Now() < it->second.open_until ? BreakerState::kOpen
                                                         : BreakerState::kHalfOpen;
}

}  // namespace loco::net
