// Minimal leveled logger.
//
// Logging defaults to kWarn so benchmark hot paths stay silent; tests raise
// the level locally when debugging.  Thread-safe: each Log() call formats
// into a local buffer and performs a single write.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace loco::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide log threshold.
LogLevel GetLogLevel() noexcept;
void SetLogLevel(LogLevel level) noexcept;

// Emit one line: "[LEVEL] message\n" to stderr.
void LogLine(LogLevel level, std::string_view msg);

template <typename... Args>
void Logf(LogLevel level, const char* fmt, Args... args) {
  if (level < GetLogLevel()) return;
  char buf[1024];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  LogLine(level, buf);
}

#define LOCO_LOG_DEBUG(...) ::loco::common::Logf(::loco::common::LogLevel::kDebug, __VA_ARGS__)
#define LOCO_LOG_INFO(...)  ::loco::common::Logf(::loco::common::LogLevel::kInfo, __VA_ARGS__)
#define LOCO_LOG_WARN(...)  ::loco::common::Logf(::loco::common::LogLevel::kWarn, __VA_ARGS__)
#define LOCO_LOG_ERROR(...) ::loco::common::Logf(::loco::common::LogLevel::kError, __VA_ARGS__)

}  // namespace loco::common
