#include "common/hash.h"

#include <cstring>

namespace loco::common {

namespace {

inline std::uint64_t Load64(const char* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t Load32(const char* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t MulMix(std::uint64_t a, std::uint64_t b) noexcept {
  __uint128_t r = static_cast<__uint128_t>(a) * b;
  return static_cast<std::uint64_t>(r) ^ static_cast<std::uint64_t>(r >> 64);
}

}  // namespace

std::uint64_t WyMix(std::string_view data, std::uint64_t seed) noexcept {
  constexpr std::uint64_t kP0 = 0xa0761d6478bd642fULL;
  constexpr std::uint64_t kP1 = 0xe7037ed1a0b428dbULL;
  constexpr std::uint64_t kP2 = 0x8ebc6af09c88c6e3ULL;

  const char* p = data.data();
  std::size_t n = data.size();
  std::uint64_t h = seed ^ kP0;

  while (n >= 16) {
    h = MulMix(Load64(p) ^ kP1, Load64(p + 8) ^ h);
    p += 16;
    n -= 16;
  }
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  if (n >= 8) {
    a = Load64(p);
    b = Load64(p + n - 8);
  } else if (n >= 4) {
    a = Load32(p);
    b = Load32(p + n - 4);
  } else if (n > 0) {
    a = (static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[0])) << 16) |
        (static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[n >> 1])) << 8) |
        static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[n - 1]));
  }
  h = MulMix(a ^ kP1, b ^ h);
  return MulMix(h ^ data.size(), kP2);
}

}  // namespace loco::common
