#include "common/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <unordered_map>

namespace loco::common {

namespace {

// Append a minimally-escaped JSON string ("name" characters are tame, but
// never emit broken JSON even for a hostile name).
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendU64(std::string* out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendI64(std::string* out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

void AppendDouble(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

// One histogram record in the exposition JSON (shared by ToJson/DeltaJson).
void AppendHistogramJson(std::string* out, const std::string& unit,
                         const Histogram& snap) {
  *out += "{\"unit\": ";
  AppendJsonString(out, unit);
  *out += ", \"count\": ";
  AppendU64(out, snap.count());
  *out += ", \"sum\": ";
  AppendI64(out, snap.sum());
  *out += ", \"min\": ";
  AppendI64(out, snap.min());
  *out += ", \"max\": ";
  AppendI64(out, snap.max());
  *out += ", \"mean\": ";
  AppendDouble(out, snap.Mean());
  *out += ", \"p50\": ";
  AppendI64(out, snap.Percentile(0.50));
  *out += ", \"p90\": ";
  AppendI64(out, snap.Percentile(0.90));
  *out += ", \"p99\": ";
  AppendI64(out, snap.Percentile(0.99));
  *out += ", \"p999\": ";
  AppendI64(out, snap.Percentile(0.999));
  *out += "}";
}

}  // namespace

void MetricsRegistry::GaugeHandle::Release() noexcept {
  if (registry_ != nullptr) {
    registry_->UnregisterGauge(name_, gen_);
    registry_ = nullptr;
  }
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

MetricsRegistry::Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

MetricsRegistry::LatencyHistogram& MetricsRegistry::GetHistogram(
    std::string_view name, std::string_view unit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<LatencyHistogram>(std::string(unit)))
             .first;
  }
  return *it->second;
}

MetricsRegistry::GaugeHandle MetricsRegistry::RegisterGauge(
    std::string_view name, GaugeFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t gen = next_gen_++;
  gauges_[std::string(name)] = Gauge{std::move(fn), gen};
  return GaugeHandle(this, std::string(name), gen);
}

void MetricsRegistry::UnregisterGauge(const std::string& name,
                                      std::uint64_t gen) noexcept {
  GaugeFn fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = gauges_.find(name);
    // Only our own registration matters: a newer owner may have replaced it.
    if (it == gauges_.end() || it->second.gen != gen) return;
    fn = it->second.fn;
  }
  // Capture the final value outside the lock (the callback may re-enter the
  // registry); the owner is still alive while its handle is being released.
  const double final_value = fn ? fn() : 0;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end() && it->second.gen == gen) {
    gauges_.erase(it);
    retired_gauges_[name] = final_value;
  }
}

std::uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricsRegistry::GaugeValue(std::string_view name) const {
  GaugeFn fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = gauges_.find(name);
    if (it == gauges_.end()) return 0;
    fn = it->second.fn;
  }
  return fn ? fn() : 0;  // evaluated outside the lock (fn may re-enter)
}

bool MetricsRegistry::HasGauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_.find(name) != gauges_.end();
}

double MetricsRegistry::RetiredGaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = retired_gauges_.find(name);
  return it == retired_gauges_.end() ? 0 : it->second;
}

bool MetricsRegistry::HasRetiredGauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_gauges_.find(name) != retired_gauges_.end();
}

std::string MetricsRegistry::ToJson() const {
  // Copy the maps' contents under the lock, evaluate gauge callbacks and
  // snapshot histograms outside it (callbacks may read objects that
  // themselves record metrics).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, GaugeFn>> gauges;
  std::vector<std::pair<std::string, double>> retired;
  std::vector<std::pair<std::string, const LatencyHistogram*>> hists;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
      counters.emplace_back(name, counter->value());
    }
    gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) gauges.emplace_back(name, gauge.fn);
    for (const auto& [name, value] : retired_gauges_) {
      // A live re-registration shadows the retired final value.
      if (gauges_.find(name) == gauges_.end()) retired.emplace_back(name, value);
    }
    hists.reserve(histograms_.size());
    for (const auto& [name, hist] : histograms_) {
      hists.emplace_back(name, hist.get());
    }
  }

  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": ";
    AppendU64(&out, value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, fn] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": ";
    AppendDouble(&out, fn ? fn() : 0);
  }
  for (const auto& [name, value] : retired) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": ";
    AppendDouble(&out, value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : hists) {
    const Histogram snap = hist->Snapshot();
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": ";
    AppendHistogramJson(&out, hist->unit(), snap);
  }
  out += "\n  }\n}\n";
  return out;
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  // Collect the pointers under the registry lock, snapshot each histogram
  // outside it (LatencyHistogram has its own mutex).
  std::vector<std::pair<std::string, const LatencyHistogram*>> hists;
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      snap.counters.emplace(name, counter->value());
    }
    hists.reserve(histograms_.size());
    for (const auto& [name, hist] : histograms_) {
      hists.emplace_back(name, hist.get());
    }
  }
  for (const auto& [name, hist] : hists) {
    snap.histograms.emplace(name,
                            Snapshot::Hist{hist->unit(), hist->Snapshot()});
  }
  return snap;
}

std::string MetricsRegistry::DeltaJson(const Snapshot& since) const {
  const Snapshot now = TakeSnapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : now.counters) {
    const auto it = since.counters.find(name);
    const std::uint64_t base = it == since.counters.end() ? 0 : it->second;
    const std::uint64_t delta = value >= base ? value - base : 0;
    if (delta == 0) continue;
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": ";
    AppendU64(&out, delta);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : now.histograms) {
    Histogram delta = hist.hist;
    const auto it = since.histograms.find(name);
    if (it != since.histograms.end()) delta.Subtract(it->second.hist);
    if (delta.count() == 0) continue;
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": ";
    AppendHistogramJson(&out, hist.unit, delta);
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::ToText() const {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, GaugeFn>> gauges;
  std::vector<std::pair<std::string, double>> retired;
  std::vector<std::pair<std::string, const LatencyHistogram*>> hists;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      counters.emplace_back(name, counter->value());
    }
    for (const auto& [name, gauge] : gauges_) gauges.emplace_back(name, gauge.fn);
    for (const auto& [name, value] : retired_gauges_) {
      if (gauges_.find(name) == gauges_.end()) retired.emplace_back(name, value);
    }
    for (const auto& [name, hist] : histograms_) {
      hists.emplace_back(name, hist.get());
    }
  }
  std::string out;
  char buf[256];
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", name.c_str(), value);
    out += buf;
  }
  for (const auto& [name, fn] : gauges) {
    std::snprintf(buf, sizeof(buf), "%s %.6g\n", name.c_str(), fn ? fn() : 0.0);
    out += buf;
  }
  for (const auto& [name, value] : retired) {
    std::snprintf(buf, sizeof(buf), "%s %.6g\n", name.c_str(), value);
    out += buf;
  }
  for (const auto& [name, hist] : hists) {
    const Histogram snap = hist->Snapshot();
    std::snprintf(buf, sizeof(buf),
                  "%s{unit=%s} count=%" PRIu64 " mean=%.6g p50=%" PRId64
                  " p99=%" PRId64 " max=%" PRId64 "\n",
                  name.c_str(), hist->unit().c_str(), snap.count(),
                  snap.Mean(), snap.Percentile(0.50), snap.Percentile(0.99),
                  snap.max());
    out += buf;
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
  retired_gauges_.clear();
}

std::string_view RpcOpName(std::uint16_t opcode) {
  // Mirrors core/proto.h (DMS 1-10, FMS 32-45, object store 64-66) and
  // baselines/proto.h (NS 100-114); the opcode spaces are globally disjoint.
  switch (opcode) {
    case 1: return "DmsMkdir";
    case 2: return "DmsRmdir";
    case 3: return "DmsLookup";
    case 4: return "DmsStat";
    case 5: return "DmsReaddir";
    case 6: return "DmsChmod";
    case 7: return "DmsChown";
    case 8: return "DmsUtimens";
    case 9: return "DmsAccess";
    case 10: return "DmsRename";
    case 24: return "DmsAnnounce";
    case 32: return "FmsCreate";
    case 33: return "FmsRemove";
    case 34: return "FmsGetAttr";
    case 35: return "FmsOpen";
    case 36: return "FmsChmod";
    case 37: return "FmsChown";
    case 38: return "FmsUtimens";
    case 39: return "FmsAccess";
    case 40: return "FmsSetSize";
    case 41: return "FmsSetAtime";
    case 42: return "FmsReaddir";
    case 43: return "FmsCheckEmpty";
    case 44: return "FmsReadRaw";
    case 45: return "FmsInsertRaw";
    case 48: return "FmsBatchCreate";
    case 49: return "FmsBatchStat";
    case 50: return "FmsReaddirPlus";
    case 64: return "ObjWrite";
    case 65: return "ObjRead";
    case 66: return "ObjTruncate";
    case 100: return "NsGet";
    case 101: return "NsInsert";
    case 102: return "NsRemove";
    case 103: return "NsChmod";
    case 104: return "NsChown";
    case 105: return "NsUtimens";
    case 106: return "NsSetSize";
    case 107: return "NsSetAtime";
    case 108: return "NsChildren";
    case 109: return "NsHasChildren";
    case 110: return "NsResolve";
    case 111: return "NsAccess";
    case 112: return "NsExtract";
    case 113: return "NsLock";
    case 114: return "NsUnlock";
    case 224: return "NotifyInvalidate";
    case 225: return "NotifyServerUp";
    case 240: return "CtlHello";
    default: break;
  }
  // Intern unknown opcodes so the returned view never dangles.
  static std::mutex mu;
  static std::unordered_map<std::uint16_t, std::string>* interned =
      new std::unordered_map<std::uint16_t, std::string>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = interned->find(opcode);
  if (it == interned->end()) {
    it = interned->emplace(opcode, "op" + std::to_string(opcode)).first;
  }
  return it->second;
}

RpcMetricsTable::RpcMetricsTable(MetricsRegistry* registry,
                                 std::string transport,
                                 std::string latency_unit)
    : registry_(registry), transport_(std::move(transport)),
      unit_(std::move(latency_unit)) {}

const RpcMetricsTable::PerOp& RpcMetricsTable::For(std::uint16_t opcode) {
  const std::size_t slot = opcode < kSlots ? opcode : 0;
  if (const PerOp* cached = slots_[slot].load(std::memory_order_acquire)) {
    return *cached;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (const PerOp* cached = slots_[slot].load(std::memory_order_acquire)) {
    return *cached;
  }
  const std::string base =
      "rpc." + transport_ + "." + std::string(RpcOpName(opcode)) + ".";
  auto per_op = std::make_unique<PerOp>();
  per_op->calls = &registry_->GetCounter(base + "calls");
  per_op->errors = &registry_->GetCounter(base + "errors");
  per_op->bytes_sent = &registry_->GetCounter(base + "bytes_sent");
  per_op->bytes_received = &registry_->GetCounter(base + "bytes_received");
  per_op->latency = &registry_->GetHistogram(base + "latency", unit_);
  const PerOp* raw = per_op.get();
  owned_.push_back(std::move(per_op));
  slots_[slot].store(raw, std::memory_order_release);
  return *raw;
}

ServerOpCounters::ServerOpCounters(MetricsRegistry* registry,
                                   std::string prefix)
    : registry_(registry), prefix_(std::move(prefix)) {}

const ServerOpCounters::PerOp& ServerOpCounters::For(std::uint16_t opcode) {
  const std::size_t slot = opcode < kSlots ? opcode : 0;
  if (const PerOp* cached = slots_[slot].load(std::memory_order_acquire)) {
    return *cached;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (const PerOp* cached = slots_[slot].load(std::memory_order_acquire)) {
    return *cached;
  }
  const std::string base =
      prefix_ + "." + std::string(RpcOpName(opcode)) + ".";
  auto per_op = std::make_unique<PerOp>();
  per_op->calls = &registry_->GetCounter(base + "calls");
  per_op->errors = &registry_->GetCounter(base + "errors");
  const PerOp* raw = per_op.get();
  owned_.push_back(std::move(per_op));
  slots_[slot].store(raw, std::memory_order_release);
  return *raw;
}

}  // namespace loco::common
