#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace loco::common {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogLine(LogLevel level, std::string_view msg) {
  std::string line;
  line.reserve(msg.size() + 16);
  line += '[';
  line += LevelName(level);
  line += "] ";
  line += msg;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace loco::common
