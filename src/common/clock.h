// Time utilities.
//
// The simulator keeps *virtual* nanoseconds (Nanos) for modeled network and
// device time, while CpuTimer measures *real* CPU-side wall time of service
// handlers so that software path length is observed, not scripted.
#pragma once

#include <chrono>
#include <cstdint>

namespace loco::common {

// Virtual time in nanoseconds since simulation start.
using Nanos = std::int64_t;

constexpr Nanos kMicro = 1'000;
constexpr Nanos kMilli = 1'000'000;
constexpr Nanos kSecond = 1'000'000'000;

constexpr double ToMicros(Nanos n) noexcept { return static_cast<double>(n) / 1e3; }
constexpr double ToMillis(Nanos n) noexcept { return static_cast<double>(n) / 1e6; }
constexpr double ToSeconds(Nanos n) noexcept { return static_cast<double>(n) / 1e9; }

// Wall-clock nanoseconds since the Unix epoch (system_clock).  Used where a
// timestamp must be comparable across processes on one host — e.g. the
// notify plane stamps invalidation pushes so the receiving client can record
// an end-to-end invalidation latency.  Not monotonic; never use for
// deadlines or elapsed-time measurement (that is CpuTimer's job).
inline Nanos WallClockNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Monotonic real-time stopwatch (steady_clock).
class CpuTimer {
 public:
  CpuTimer() : start_(Now()) {}
  void Reset() { start_ = Now(); }
  Nanos ElapsedNanos() const { return Now() - start_; }

  static Nanos Now() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  Nanos start_;
};

}  // namespace loco::common
