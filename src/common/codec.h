// Fixed-width little-endian byte codec used for RPC framing, WAL records and
// the serialized ("coupled") inode layout of the baseline file systems.
//
// Writer appends into a std::string; Reader consumes a string_view with
// bounds checks and reports truncation through its ok() flag rather than
// throwing, so corrupt frames surface as ErrCode::kCorruption at call sites.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace loco::common {

class Writer {
 public:
  Writer() = default;
  explicit Writer(std::string* out) : out_(out ? out : &own_) {}

  void PutU8(std::uint8_t v) { Raw(&v, 1); }
  void PutU16(std::uint16_t v) { PutLE(v); }
  void PutU32(std::uint32_t v) { PutLE(v); }
  void PutU64(std::uint64_t v) { PutLE(v); }
  void PutI64(std::int64_t v) { PutLE(static_cast<std::uint64_t>(v)); }

  // Length-prefixed (u32) byte string.
  void PutBytes(std::string_view s) {
    PutU32(static_cast<std::uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  // Raw bytes with no prefix (caller must know the length).
  void PutRaw(std::string_view s) { Raw(s.data(), s.size()); }

  const std::string& str() const { return *buf(); }
  std::string Take() { return std::move(*buf()); }
  std::size_t size() const { return buf()->size(); }

 private:
  template <typename T>
  void PutLE(T v) {
    char tmp[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      tmp[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    Raw(tmp, sizeof(T));
  }
  void Raw(const void* p, std::size_t n) {
    buf()->append(static_cast<const char*>(p), n);
  }
  std::string* buf() { return out_ ? out_ : &own_; }
  const std::string* buf() const { return out_ ? out_ : &own_; }

  std::string* out_ = nullptr;
  std::string own_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ok() const noexcept { return ok_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool AtEnd() const noexcept { return ok_ && remaining() == 0; }

  std::uint8_t GetU8() { return GetLE<std::uint8_t>(); }
  std::uint16_t GetU16() { return GetLE<std::uint16_t>(); }
  std::uint32_t GetU32() { return GetLE<std::uint32_t>(); }
  std::uint64_t GetU64() { return GetLE<std::uint64_t>(); }
  std::int64_t GetI64() { return static_cast<std::int64_t>(GetU64()); }

  // Length-prefixed byte string; returns a view into the underlying buffer.
  std::string_view GetBytes() {
    std::uint32_t n = GetU32();
    return GetRaw(n);
  }
  std::string GetString() { return std::string(GetBytes()); }

  // n raw bytes with no prefix.
  std::string_view GetRaw(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return {};
    }
    std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }

 private:
  template <typename T>
  T GetLE() {
    if (!ok_ || remaining() < sizeof(T)) {
      ok_ = false;
      return T{};
    }
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v |
          (static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i])) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// In-place fixed-offset accessors: read/write a little-endian integer at a
// byte offset inside an existing value buffer.  This is the primitive behind
// LocoFS's "(de)serialization removal" (§3.3.3): with all fields fixed-length
// a single field update touches sizeof(T) bytes of the stored value and never
// re-encodes the rest.
template <typename T>
inline T LoadAt(std::string_view buf, std::size_t off) noexcept {
  T v{};
  if (off + sizeof(T) <= buf.size()) std::memcpy(&v, buf.data() + off, sizeof(T));
  return v;
}

template <typename T>
inline void StoreAt(std::string* buf, std::size_t off, T v) noexcept {
  if (off + sizeof(T) <= buf->size()) std::memcpy(buf->data() + off, &v, sizeof(T));
}

}  // namespace loco::common
