// Hash functions used across the KV stores and the consistent-hash ring.
//
// Two independent families are provided so that hash-table bucketing and
// ring placement never correlate:
//   * Fnv1a64   — bytewise FNV-1a, streaming-friendly, used for keys.
//   * Mix64     — SplitMix64 finalizer, used to derive secondary hashes and
//                 to seed deterministic RNG streams.
//   * WyMix     — a wyhash-style 64-bit string hash with a seed, used by the
//                 consistent-hash ring (seeded per virtual node).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace loco::common {

// FNV-1a over an arbitrary byte string.
constexpr std::uint64_t Fnv1a64(std::string_view data,
                                std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// SplitMix64 finalizer: a strong bijective mix of a 64-bit integer.
constexpr std::uint64_t Mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Seeded string hash (wyhash-style multiply-mix over 8-byte lanes).
std::uint64_t WyMix(std::string_view data, std::uint64_t seed) noexcept;

// Combine two hashes (order-sensitive).
constexpr std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) noexcept {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace loco::common
