// Process-wide metrics: named counters, gauges, and latency histograms with
// a JSON/text exposition API (see docs/METRICS.md for the naming and label
// conventions).
//
// Design constraints, in order:
//   * increments on the hot path are cheap — counters are relaxed atomics,
//     histogram records take one uncontended mutex (the simulator is
//     single-threaded; the in-process transport is the only concurrent user);
//   * metric objects have stable addresses for the registry's lifetime, so
//     call sites resolve a name once and keep the pointer;
//   * gauges are read-at-exposition callbacks registered with an RAII handle
//     (servers come and go per test/bench run; a destroyed owner must never
//     leave a dangling callback behind).  Re-registering a name replaces the
//     previous gauge; each handle only removes its own generation.  When the
//     last registration of a name is released its final value is *retired*:
//     kept as a plain number and merged into the exposition output, so
//     end-of-run --metrics-out dumps still show KV statistics after the
//     deployment that owned them has been destroyed.
//
// `MetricsRegistry::Default()` is the process-global instance every
// transport, server, and client records into; tests that need isolation
// instantiate their own registry.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"

namespace loco::common {

class MetricsRegistry {
 public:
  // Monotonic counter.  Relaxed atomic: totals are exact, ordering between
  // counters is not promised (exposition is a racy snapshot by design).
  class Counter {
   public:
    void Add(std::uint64_t n = 1) noexcept {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const noexcept {
      return value_.load(std::memory_order_relaxed);
    }

   private:
    friend class MetricsRegistry;
    void Reset() noexcept { value_.store(0, std::memory_order_relaxed); }
    std::atomic<std::uint64_t> value_{0};
  };

  // Thread-safe wrapper over common::Histogram.  `unit` documents what the
  // recorded values mean (e.g. "virtual_ns" vs "wall_ns") and is carried
  // into the exposition output.
  class LatencyHistogram {
   public:
    explicit LatencyHistogram(std::string unit) : unit_(std::move(unit)) {}

    void Record(Nanos v) noexcept {
      std::lock_guard<std::mutex> lock(mu_);
      hist_.Record(v);
    }
    Histogram Snapshot() const {
      std::lock_guard<std::mutex> lock(mu_);
      return hist_;
    }
    const std::string& unit() const noexcept { return unit_; }

   private:
    friend class MetricsRegistry;
    void Reset() noexcept {
      std::lock_guard<std::mutex> lock(mu_);
      hist_.Reset();
    }
    std::string unit_;
    mutable std::mutex mu_;
    Histogram hist_;
  };

  using GaugeFn = std::function<double()>;

  // RAII registration of a callback gauge.  Destroying (or moving-from) the
  // handle unregisters the gauge unless another registration has replaced it
  // in the meantime.
  class GaugeHandle {
   public:
    GaugeHandle() = default;
    GaugeHandle(GaugeHandle&& other) noexcept { *this = std::move(other); }
    GaugeHandle& operator=(GaugeHandle&& other) noexcept {
      if (this != &other) {
        Release();
        registry_ = other.registry_;
        name_ = std::move(other.name_);
        gen_ = other.gen_;
        other.registry_ = nullptr;
      }
      return *this;
    }
    GaugeHandle(const GaugeHandle&) = delete;
    GaugeHandle& operator=(const GaugeHandle&) = delete;
    ~GaugeHandle() { Release(); }

   private:
    friend class MetricsRegistry;
    GaugeHandle(MetricsRegistry* registry, std::string name, std::uint64_t gen)
        : registry_(registry), name_(std::move(name)), gen_(gen) {}
    void Release() noexcept;

    MetricsRegistry* registry_ = nullptr;
    std::string name_;
    std::uint64_t gen_ = 0;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-global registry.
  static MetricsRegistry& Default();

  // Find-or-create.  Returned references stay valid for the registry's
  // lifetime; Reset() zeroes values but never invalidates them.
  Counter& GetCounter(std::string_view name);
  LatencyHistogram& GetHistogram(std::string_view name,
                                 std::string_view unit = "ns");

  [[nodiscard]] GaugeHandle RegisterGauge(std::string_view name, GaugeFn fn);

  // Snapshot accessors (tests / tooling).  GaugeValue/HasGauge see live
  // registrations only; retired final values have their own accessors.
  std::uint64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;  // 0 when absent
  bool HasGauge(std::string_view name) const;
  double RetiredGaugeValue(std::string_view name) const;  // 0 when absent
  bool HasRetiredGauge(std::string_view name) const;

  // Exposition.  JSON: {"counters":{..},"gauges":{..},"histograms":{..}}
  // with histogram records carrying unit/count/sum/min/max/mean and the
  // p50/p90/p99/p999 quantiles; "gauges" merges live registrations with
  // retired final values (a live gauge shadows its retired predecessor).
  // Text: one "name value" line per metric.
  std::string ToJson() const;
  std::string ToText() const;

  // Point-in-time copy of every counter and histogram (gauges are
  // owner-computed and excluded).  Feed a snapshot back to DeltaJson to
  // render only the activity since it was taken — the per-phase dumps of
  // bench --metrics-out use this.
  struct Snapshot {
    std::map<std::string, std::uint64_t, std::less<>> counters;
    struct Hist {
      std::string unit;
      Histogram hist;
    };
    std::map<std::string, Hist, std::less<>> histograms;
  };
  Snapshot TakeSnapshot() const;

  // JSON in the same shape as ToJson() (minus "gauges") holding counter
  // deltas and per-bucket histogram subtractions against `since`.  Metrics
  // untouched in the interval are omitted.
  std::string DeltaJson(const Snapshot& since) const;

  // Zero every counter and histogram and drop retired gauge values.  Live
  // gauges are owner-computed and are left alone.
  void Reset();

 private:
  friend class GaugeHandle;

  struct Gauge {
    GaugeFn fn;
    std::uint64_t gen = 0;
  };

  // Capture the gauge's final value, then remove the registration (both only
  // when `gen` is still the current one — a replaced gauge retires nothing).
  void UnregisterGauge(const std::string& name, std::uint64_t gen) noexcept;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, double, std::less<>> retired_gauges_;
  std::uint64_t next_gen_ = 1;
};

using Counter = MetricsRegistry::Counter;
using LatencyHistogram = MetricsRegistry::LatencyHistogram;

// Human-readable opcode label used in RPC metric names ("DmsMkdir",
// "FmsCreate", "ObjWrite", "NsGet", ...).  Opcodes are globally disjoint
// across the core and baseline protocols; unknown values format as "op<N>".
// The returned view points into a static table (or a leaked interned string
// for unknown opcodes) and is valid forever.
std::string_view RpcOpName(std::uint16_t opcode);

// Per-opcode RPC metric bundle for one transport, resolved once and cached
// (lock-free lookup after first use).  Metric names follow the convention
//   rpc.<transport>.<OpName>.{calls,errors,bytes_sent,bytes_received,latency}
class RpcMetricsTable {
 public:
  struct PerOp {
    Counter* calls = nullptr;
    Counter* errors = nullptr;
    Counter* bytes_sent = nullptr;
    Counter* bytes_received = nullptr;
    LatencyHistogram* latency = nullptr;
  };

  RpcMetricsTable(MetricsRegistry* registry, std::string transport,
                  std::string latency_unit);

  const PerOp& For(std::uint16_t opcode);

 private:
  static constexpr std::size_t kSlots = 256;  // all live opcodes are < 256

  MetricsRegistry* registry_;
  std::string transport_;
  std::string unit_;
  std::mutex mu_;  // guards slot creation only
  std::array<std::atomic<const PerOp*>, kSlots> slots_{};
  std::vector<std::unique_ptr<PerOp>> owned_;
};

// Per-opcode {calls, errors} counter bundle for one server family, e.g.
// prefix "server.dms" yields server.dms.DmsMkdir.calls / .errors.
class ServerOpCounters {
 public:
  struct PerOp {
    Counter* calls = nullptr;
    Counter* errors = nullptr;
  };

  ServerOpCounters(MetricsRegistry* registry, std::string prefix);

  const PerOp& For(std::uint16_t opcode);

 private:
  static constexpr std::size_t kSlots = 256;

  MetricsRegistry* registry_;
  std::string prefix_;
  std::mutex mu_;
  std::array<std::atomic<const PerOp*>, kSlots> slots_{};
  std::vector<std::unique_ptr<PerOp>> owned_;
};

}  // namespace loco::common
