// Lightweight Status / Result<T> error handling for the LocoFS codebase.
//
// The project targets C++20 (no std::expected), so this header provides a
// minimal, allocation-free substitute.  Error codes deliberately mirror the
// POSIX errors a file system client would surface (ENOENT, EEXIST, ...) so
// that service handlers can translate them onto the wire unambiguously.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace loco {

// Error codes shared by every layer (KV stores, RPC, metadata services).
enum class ErrCode : std::uint8_t {
  kOk = 0,
  kNotFound,       // ENOENT
  kExists,         // EEXIST
  kNotDir,         // ENOTDIR
  kIsDir,          // EISDIR
  kNotEmpty,       // ENOTEMPTY
  kPermission,     // EACCES
  kInvalid,        // EINVAL
  kIo,             // EIO (storage / WAL failures)
  kTimeout,        // RPC deadline exceeded
  kUnavailable,    // server not reachable / not running
  kCorruption,     // checksum or framing mismatch
  kStale,          // lease or cached handle no longer valid
  kUnsupported,    // operation not implemented by this service
  kOverloaded,     // server shed the request; retry after the hinted delay
};

// Highest valid ErrCode value; wire decoders reject anything above it.
inline constexpr std::uint8_t kMaxErrCode =
    static_cast<std::uint8_t>(ErrCode::kOverloaded);

// Human-readable name for an error code (stable, used in logs and tests).
std::string_view ErrName(ErrCode code) noexcept;

// A Status is an ErrCode plus an optional context message.
class [[nodiscard]] Status {
 public:
  Status() noexcept : code_(ErrCode::kOk) {}
  explicit Status(ErrCode code, std::string msg = {})
      : code_(code), msg_(std::move(msg)) {}

  static Status Ok() noexcept { return Status(); }

  bool ok() const noexcept { return code_ == ErrCode::kOk; }
  ErrCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return msg_; }

  // "kNotFound: /a/b missing" or "kOk".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  ErrCode code_;
  std::string msg_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status ErrStatus(ErrCode code, std::string msg = {}) {
  return Status(code, std::move(msg));
}

// Result<T>: either a value or a non-kOk Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit: lets handlers `return value;` / `return status;`.
  Result(T value) : rep_(std::move(value)) {}
  Result(Status status) : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok() && "Result needs a failing Status");
  }
  Result(ErrCode code, std::string msg = {})
      : rep_(Status(code, std::move(msg))) {}

  bool ok() const noexcept { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const noexcept { return ok(); }

  ErrCode code() const noexcept {
    return ok() ? ErrCode::kOk : std::get<Status>(rep_).code();
  }
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(rep_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const& { return ok() ? value() : fallback; }

 private:
  std::variant<T, Status> rep_;
};

// Propagate a failing Status out of the current function.
#define LOCO_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::loco::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

// Evaluate a Result-returning expression, bind its value or propagate.
#define LOCO_ASSIGN_OR_RETURN(lhs, expr)      \
  auto LOCO_CONCAT_(_res, __LINE__) = (expr); \
  if (!LOCO_CONCAT_(_res, __LINE__).ok())     \
    return LOCO_CONCAT_(_res, __LINE__).status(); \
  lhs = std::move(LOCO_CONCAT_(_res, __LINE__)).value()

#define LOCO_CONCAT_INNER_(a, b) a##b
#define LOCO_CONCAT_(a, b) LOCO_CONCAT_INNER_(a, b)

}  // namespace loco
