// Striped lock table: a fixed array of mutexes addressed by 64-bit keys.
//
// The metadata services serialize work at entity granularity (a directory's
// dirent list, one file's read-modify-write) without a lock per entity:
// Mix64(key) picks one of `slots` mutexes, so unrelated keys contend only on
// hash collisions.  LockPair acquires two slots in index order (a key pair
// mapping to one slot takes it once), which makes multi-entity operations
// (rmdir touching parent + target) deadlock-free against each other.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/hash.h"

namespace loco::common {

class LockTable {
 public:
  explicit LockTable(std::size_t slots = 64) : mus_(slots ? slots : 1) {}
  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  // Holds one or two slot locks for a scope.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&&) = default;
    Guard& operator=(Guard&&) = default;

   private:
    friend class LockTable;
    std::unique_lock<std::mutex> first_;
    std::unique_lock<std::mutex> second_;  // empty for single-key guards
  };

  [[nodiscard]] Guard Lock(std::uint64_t key) {
    Guard g;
    g.first_ = std::unique_lock(mus_[SlotOf(key)]);
    return g;
  }

  [[nodiscard]] Guard LockPair(std::uint64_t a, std::uint64_t b) {
    std::size_t sa = SlotOf(a);
    std::size_t sb = SlotOf(b);
    if (sa > sb) std::swap(sa, sb);
    Guard g;
    g.first_ = std::unique_lock(mus_[sa]);
    if (sb != sa) g.second_ = std::unique_lock(mus_[sb]);
    return g;
  }

 private:
  std::size_t SlotOf(std::uint64_t key) const noexcept {
    return Mix64(key) % mus_.size();
  }

  std::vector<std::mutex> mus_;
};

}  // namespace loco::common
