#include "common/result.h"

namespace loco {

std::string_view ErrName(ErrCode code) noexcept {
  switch (code) {
    case ErrCode::kOk: return "kOk";
    case ErrCode::kNotFound: return "kNotFound";
    case ErrCode::kExists: return "kExists";
    case ErrCode::kNotDir: return "kNotDir";
    case ErrCode::kIsDir: return "kIsDir";
    case ErrCode::kNotEmpty: return "kNotEmpty";
    case ErrCode::kPermission: return "kPermission";
    case ErrCode::kInvalid: return "kInvalid";
    case ErrCode::kIo: return "kIo";
    case ErrCode::kTimeout: return "kTimeout";
    case ErrCode::kUnavailable: return "kUnavailable";
    case ErrCode::kCorruption: return "kCorruption";
    case ErrCode::kStale: return "kStale";
    case ErrCode::kUnsupported: return "kUnsupported";
    case ErrCode::kOverloaded: return "kOverloaded";
  }
  return "kUnknown";
}

std::string Status::ToString() const {
  std::string out(ErrName(code_));
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace loco
