// Log-bucketed latency histogram (HdrHistogram-style, base-2 buckets with
// linear sub-buckets).  Records virtual-time nanoseconds; supports mean and
// arbitrary percentiles.  Not thread-safe: the simulator is single-threaded
// and the real-transport integration tests merge per-thread instances.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/clock.h"

namespace loco::common {

class Histogram {
 public:
  static constexpr int kSubBits = 5;  // 32 linear sub-buckets per octave
  static constexpr int kOctaves = 48; // covers up to ~2^48 ns (~3 days)

  void Record(Nanos v) noexcept {
    if (v < 0) v = 0;
    ++count_;
    sum_ += v;
    max_ = std::max(max_, v);
    min_ = count_ == 1 ? v : std::min(min_, v);
    ++buckets_[BucketIndex(v)];
  }

  void Merge(const Histogram& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      min_ = other.min_;
    } else {
      min_ = std::min(min_, other.min_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
    for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  }

  // Per-bucket subtraction of an `earlier` snapshot of this same histogram:
  // what remains is exactly the records made since the snapshot.  Lifetime
  // min/max cannot be recovered for the interval, so the result keeps them
  // as conservative bounds (percentiles/mean stay exact).
  //
  // If `earlier` is NOT a prefix of this histogram — it was Reset, retired
  // and re-registered, or otherwise replaced between the snapshot and now —
  // per-bucket subtraction would manufacture nonsense: clamping each field
  // independently can leave count_ == 0 while buckets still hold entries
  // (phase deltas silently dropped) or bucket totals below count_
  // (Percentile falls through to the lifetime max).  Detect that case and
  // keep the current contents whole: everything recorded since the reset IS
  // the delta.
  void Subtract(const Histogram& earlier) noexcept {
    if (!earlier.IsPrefixOf(*this)) return;
    count_ -= earlier.count_;
    sum_ -= earlier.sum_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] -= earlier.buckets_[i];
    }
    if (count_ == 0) {
      min_ = 0;
      max_ = 0;
      sum_ = 0;
    }
  }

  // True when this histogram could be a snapshot of `later`'s past: every
  // component counted here is still counted there.  A histogram that was
  // Reset after the snapshot fails this (some bucket shrank), so Subtract
  // knows the interval is unrecoverable.
  bool IsPrefixOf(const Histogram& later) const noexcept {
    if (count_ > later.count_ || sum_ > later.sum_) return false;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] > later.buckets_[i]) return false;
    }
    return true;
  }

  void Reset() noexcept { *this = Histogram(); }

  std::uint64_t count() const noexcept { return count_; }
  Nanos sum() const noexcept { return sum_; }
  Nanos max() const noexcept { return max_; }
  Nanos min() const noexcept { return count_ ? min_ : 0; }
  double Mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  // Value at quantile q in [0,1]; returns an upper bound of the bucket.
  Nanos Percentile(double q) const noexcept {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= rank) return BucketUpper(i);
    }
    return max_;
  }

 private:
  static std::size_t BucketIndex(Nanos v) noexcept {
    const std::uint64_t u = static_cast<std::uint64_t>(v);
    if (u < (1ULL << kSubBits)) return static_cast<std::size_t>(u);
    const int msb = 63 - __builtin_clzll(u);
    const int octave = msb - kSubBits + 1;
    const std::uint64_t sub = (u >> (msb - kSubBits)) & ((1ULL << kSubBits) - 1);
    std::size_t idx = static_cast<std::size_t>(octave + 1) * (1ULL << kSubBits) +
                      static_cast<std::size_t>(sub) -
                      (1ULL << kSubBits);
    return std::min(idx, kNumBuckets - 1);
  }

  static Nanos BucketUpper(std::size_t idx) noexcept {
    if (idx < (1ULL << kSubBits)) return static_cast<Nanos>(idx);
    const std::size_t octave = idx / (1ULL << kSubBits);
    const std::size_t sub = idx % (1ULL << kSubBits);
    const std::uint64_t base = 1ULL << (kSubBits + octave - 1);
    const std::uint64_t step = base >> kSubBits;
    return static_cast<Nanos>(base + (sub + 1) * step);
  }

  static constexpr std::size_t kNumBuckets = (kOctaves + 1) * (1ULL << kSubBits);

  std::uint64_t count_ = 0;
  Nanos sum_ = 0;
  Nanos max_ = 0;
  Nanos min_ = 0;
  std::array<std::uint64_t, kNumBuckets> buckets_{};
};

}  // namespace loco::common
