// Deterministic pseudo-random number generation.
//
// Every workload generator and the simulator derive their streams from
// SplitMix64-seeded xoshiro256** instances, so a (seed, stream-id) pair fully
// determines a run — required for the simulator determinism tests and for
// reproducible benchmark tables.
#pragma once

#include <cstdint>
#include <string>

#include "common/hash.h"

namespace loco::common {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) noexcept { Seed(seed); }

  void Seed(std::uint64_t seed) noexcept {
    // Expand the seed with SplitMix64 so nearby seeds give unrelated streams.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = Mix64(x);
    }
  }

  // Derive an independent sub-stream (e.g. one per simulated client).
  Rng Fork(std::uint64_t stream_id) const noexcept {
    return Rng(HashCombine(s_[0] ^ s_[3], stream_id));
  }

  std::uint64_t Next() noexcept {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound) with rejection to avoid modulo bias.
  std::uint64_t Uniform(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t v;
    do {
      v = Next();
    } while (v >= limit);
    return v % bound;
  }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t Range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + Uniform(hi - lo + 1);
  }

  double NextDouble() noexcept {  // [0, 1)
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Chance(double p) noexcept { return NextDouble() < p; }

  // Random lowercase ASCII identifier of the given length.
  std::string Name(std::size_t len) {
    std::string s(len, 'a');
    for (auto& c : s) c = static_cast<char>('a' + Uniform(26));
    return s;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace loco::common
