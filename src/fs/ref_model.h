// In-memory reference file system — the oracle for property tests.
//
// Implements the semantics contract of fs/types.h directly on a tree of
// nodes, synchronously.  Property tests replay a random operation sequence
// against a service under test and against this model and require identical
// observable results (status codes, attributes, listings, data).
//
// Timestamp rules (every service must match):
//   mkdir/create : ctime = mtime = atime = ts
//   chmod/chown  : ctime = ts
//   write/truncate: mtime = ts (size updated)
//   utimens      : mtime/atime as given
//   read         : atime = ts
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "fs/types.h"

namespace loco::fs {

class RefModel {
 public:
  RefModel();

  Status Mkdir(const Identity& who, std::string_view path, std::uint32_t mode,
               std::uint64_t ts);
  Status Rmdir(const Identity& who, std::string_view path);
  Result<std::vector<DirEntry>> Readdir(const Identity& who,
                                        std::string_view path) const;
  Status Create(const Identity& who, std::string_view path, std::uint32_t mode,
                std::uint64_t ts);
  Status Unlink(const Identity& who, std::string_view path);
  Status Rename(const Identity& who, std::string_view from, std::string_view to);
  Result<Attr> Stat(const Identity& who, std::string_view path) const;
  Status Chmod(const Identity& who, std::string_view path, std::uint32_t mode,
               std::uint64_t ts);
  Status Chown(const Identity& who, std::string_view path, std::uint32_t uid,
               std::uint32_t gid, std::uint64_t ts);
  Status Access(const Identity& who, std::string_view path,
                std::uint32_t want) const;
  Status Utimens(const Identity& who, std::string_view path, std::uint64_t mtime,
                 std::uint64_t atime);
  Status Truncate(const Identity& who, std::string_view path, std::uint64_t size,
                  std::uint64_t ts);
  Result<Attr> Open(const Identity& who, std::string_view path) const;
  Status Write(const Identity& who, std::string_view path, std::uint64_t offset,
               std::string_view data, std::uint64_t ts);
  Result<std::string> Read(const Identity& who, std::string_view path,
                           std::uint64_t offset, std::uint64_t length,
                           std::uint64_t ts);

  // Total number of live nodes (including the root); test hook.
  std::size_t NodeCount() const;

 private:
  struct Node {
    Attr attr;
    std::map<std::string, std::unique_ptr<Node>, std::less<>> children;
    std::string data;  // file content
  };

  // Walk to the node at `path`, enforcing execute permission on every
  // ancestor directory.  nullptr payload + status on failure.
  Result<Node*> Resolve(const Identity& who, std::string_view path) const;
  // Resolve the parent directory of `path` (which must be a valid non-root
  // path) and additionally require `want` permission on it.
  Result<Node*> ResolveParent(const Identity& who, std::string_view path,
                              std::uint32_t want) const;

  static bool MayWrite(const Identity& who, const Attr& attr) {
    return CheckPermission(who, attr.mode, attr.uid, attr.gid, kModeWrite);
  }

  std::unique_ptr<Node> root_;
  std::uint64_t next_fid_ = 2;
};

}  // namespace loco::fs
