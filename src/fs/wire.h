// Wire encoding of the shared FS structures (Attr, DirEntry lists, caller
// identity).  Service-specific request layouts build on these helpers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/codec.h"
#include "fs/types.h"

namespace loco::fs {

inline void EncodeAttr(common::Writer& w, const Attr& attr) {
  w.PutU64(attr.ctime);
  w.PutU32(attr.mode);
  w.PutU32(attr.uid);
  w.PutU32(attr.gid);
  w.PutU64(attr.mtime);
  w.PutU64(attr.atime);
  w.PutU64(attr.size);
  w.PutU32(attr.block_size);
  w.PutU64(attr.uuid.raw());
  w.PutU8(attr.is_dir ? 1 : 0);
}

inline Attr DecodeAttr(common::Reader& r) {
  Attr attr;
  attr.ctime = r.GetU64();
  attr.mode = r.GetU32();
  attr.uid = r.GetU32();
  attr.gid = r.GetU32();
  attr.mtime = r.GetU64();
  attr.atime = r.GetU64();
  attr.size = r.GetU64();
  attr.block_size = r.GetU32();
  attr.uuid = Uuid(r.GetU64());
  attr.is_dir = r.GetU8() != 0;
  return attr;
}

inline void EncodeIdentity(common::Writer& w, const Identity& id) {
  w.PutU32(id.uid);
  w.PutU32(id.gid);
}

inline Identity DecodeIdentity(common::Reader& r) {
  Identity id;
  id.uid = r.GetU32();
  id.gid = r.GetU32();
  return id;
}

inline void EncodeEntries(common::Writer& w, const std::vector<DirEntry>& entries) {
  w.PutU32(static_cast<std::uint32_t>(entries.size()));
  for (const DirEntry& e : entries) {
    w.PutBytes(e.name);
    w.PutU8(e.is_dir ? 1 : 0);
  }
}

inline std::vector<DirEntry> DecodeEntries(common::Reader& r) {
  std::vector<DirEntry> entries;
  const std::uint32_t n = r.GetU32();
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    DirEntry e;
    e.name = r.GetString();
    e.is_dir = r.GetU8() != 0;
    entries.push_back(std::move(e));
  }
  return entries;
}

// ---------------------------------------------------------------------------
// Variadic Pack/Unpack: every RPC request/response payload in the codebase is
// a flat field tuple encoded with these helpers, so each message needs no
// hand-written struct codec.
// ---------------------------------------------------------------------------

inline void PackOne(common::Writer& w, std::uint8_t v) { w.PutU8(v); }
inline void PackOne(common::Writer& w, std::uint16_t v) { w.PutU16(v); }
inline void PackOne(common::Writer& w, std::uint32_t v) { w.PutU32(v); }
inline void PackOne(common::Writer& w, std::uint64_t v) { w.PutU64(v); }
inline void PackOne(common::Writer& w, std::string_view v) { w.PutBytes(v); }
inline void PackOne(common::Writer& w, const std::string& v) { w.PutBytes(v); }
inline void PackOne(common::Writer& w, const Identity& v) { EncodeIdentity(w, v); }
inline void PackOne(common::Writer& w, const Attr& v) { EncodeAttr(w, v); }
inline void PackOne(common::Writer& w, Uuid v) { w.PutU64(v.raw()); }
inline void PackOne(common::Writer& w, const std::vector<DirEntry>& v) {
  EncodeEntries(w, v);
}
inline void PackOne(common::Writer& w, const std::vector<std::string>& v) {
  w.PutU32(static_cast<std::uint32_t>(v.size()));
  for (const std::string& s : v) w.PutBytes(s);
}

inline void UnpackOne(common::Reader& r, std::uint8_t& v) { v = r.GetU8(); }
inline void UnpackOne(common::Reader& r, std::uint16_t& v) { v = r.GetU16(); }
inline void UnpackOne(common::Reader& r, std::uint32_t& v) { v = r.GetU32(); }
inline void UnpackOne(common::Reader& r, std::uint64_t& v) { v = r.GetU64(); }
inline void UnpackOne(common::Reader& r, std::string& v) { v = r.GetString(); }
inline void UnpackOne(common::Reader& r, Identity& v) { v = DecodeIdentity(r); }
inline void UnpackOne(common::Reader& r, Attr& v) { v = DecodeAttr(r); }
inline void UnpackOne(common::Reader& r, Uuid& v) { v = Uuid(r.GetU64()); }
inline void UnpackOne(common::Reader& r, std::vector<DirEntry>& v) {
  v = DecodeEntries(r);
}
inline void UnpackOne(common::Reader& r, std::vector<std::string>& v) {
  const std::uint32_t n = r.GetU32();
  v.clear();
  v.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) v.emplace_back(r.GetBytes());
}

template <typename... Args>
std::string Pack(const Args&... args) {
  common::Writer w;
  (PackOne(w, args), ...);
  return w.Take();
}

// Strict decode: every field present and no trailing bytes.
template <typename... Args>
[[nodiscard]] bool Unpack(std::string_view payload, Args&... args) {
  common::Reader r(payload);
  (UnpackOne(r, args), ...);
  return r.ok() && r.AtEnd();
}

}  // namespace loco::fs
