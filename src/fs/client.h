// Abstract file-system client interface.
//
// LocoFS's LocoLib and every baseline client implement this API as coroutines
// over a net::Channel, so the same workload generators, property tests and
// benchmarks drive all of them interchangeably.  All paths follow the
// semantics contract in fs/types.h.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "fs/types.h"
#include "net/task.h"

namespace loco::fs {

// Supplies operation timestamps (virtual time under simulation, wall clock
// under the in-process transport).
using TimeFn = std::function<std::uint64_t()>;

class FileSystemClient {
 public:
  virtual ~FileSystemClient() = default;

  // --- namespace operations -------------------------------------------
  virtual net::Task<Status> Mkdir(std::string path, std::uint32_t mode) = 0;
  virtual net::Task<Status> Rmdir(std::string path) = 0;
  virtual net::Task<Result<std::vector<DirEntry>>> Readdir(std::string path) = 0;
  virtual net::Task<Status> Create(std::string path, std::uint32_t mode) = 0;
  virtual net::Task<Status> Unlink(std::string path) = 0;
  virtual net::Task<Status> Rename(std::string from, std::string to) = 0;

  // --- attribute operations -------------------------------------------
  virtual net::Task<Result<Attr>> Stat(std::string path) = 0;
  // Typed stat fast paths: benchmark workloads (mdtest) know the object
  // type, letting implementations skip type discovery.  Defaults delegate
  // to the generic Stat.
  virtual net::Task<Result<Attr>> StatFile(std::string path) {
    co_return co_await Stat(std::move(path));
  }
  virtual net::Task<Result<Attr>> StatDir(std::string path) {
    co_return co_await Stat(std::move(path));
  }
  virtual net::Task<Status> Chmod(std::string path, std::uint32_t mode) = 0;
  virtual net::Task<Status> Chown(std::string path, std::uint32_t uid,
                                  std::uint32_t gid) = 0;
  virtual net::Task<Status> Access(std::string path, std::uint32_t want) = 0;
  // Typed attribute fast paths, mirroring StatFile/StatDir: the caller
  // already knows the target is a file, letting implementations skip the
  // file-vs-directory fallback probe.  Defaults delegate to the generic op.
  virtual net::Task<Status> ChmodFile(std::string path, std::uint32_t mode) {
    co_return co_await Chmod(std::move(path), mode);
  }
  virtual net::Task<Status> ChownFile(std::string path, std::uint32_t uid,
                                      std::uint32_t gid) {
    co_return co_await Chown(std::move(path), uid, gid);
  }
  virtual net::Task<Status> AccessFile(std::string path, std::uint32_t want) {
    co_return co_await Access(std::move(path), want);
  }
  virtual net::Task<Status> Utimens(std::string path, std::uint64_t mtime,
                                    std::uint64_t atime) = 0;
  virtual net::Task<Status> Truncate(std::string path, std::uint64_t size) = 0;

  // --- data operations --------------------------------------------------
  // Open performs the permission check and returns current attributes
  // (LocoFS: one access-part read); Close releases client state.
  virtual net::Task<Result<Attr>> Open(std::string path) = 0;
  virtual net::Task<Status> Close(std::string path) = 0;
  virtual net::Task<Status> Write(std::string path, std::uint64_t offset,
                                  std::string data) = 0;
  virtual net::Task<Result<std::string>> Read(std::string path,
                                              std::uint64_t offset,
                                              std::uint64_t length) = 0;

  // Caller identity attached to subsequent operations.  A client instance
  // models one user process; implementations may discard identity-scoped
  // state (e.g. permission-bearing leases) when the identity changes.
  virtual void SetIdentity(Identity id) noexcept { identity_ = id; }
  const Identity& identity() const noexcept { return identity_; }

 protected:
  Identity identity_;
};

}  // namespace loco::fs
