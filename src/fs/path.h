// Path manipulation for absolute, normalized POSIX-style paths.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace loco::fs {

// True for "/", "/a", "/a/b" — absolute, no empty components, no "." / "..",
// no trailing slash (except the root itself).
bool IsValidPath(std::string_view path) noexcept;

// Parent of a valid path ("/a/b" -> "/a", "/a" -> "/").  Root's parent is
// itself.
std::string_view ParentPath(std::string_view path) noexcept;

// Final component ("/a/b" -> "b").  Empty for the root.
std::string_view BaseName(std::string_view path) noexcept;

// "/a" + "b" -> "/a/b"; handles the root ("/" + "b" -> "/b").
std::string JoinPath(std::string_view dir, std::string_view name);

// Components of "/a/b/c" -> {"a", "b", "c"}; empty for the root.
std::vector<std::string_view> SplitPath(std::string_view path);

// Every proper ancestor from the root down: "/a/b/c" -> {"/", "/a", "/a/b"}.
std::vector<std::string> Ancestors(std::string_view path);

// Number of components (root = 0, "/a" = 1, "/a/b" = 2).
std::size_t PathDepth(std::string_view path) noexcept;

}  // namespace loco::fs
