#include "fs/types.h"

namespace loco::fs {

std::string_view FsOpName(FsOp op) noexcept {
  switch (op) {
    case FsOp::kMkdir: return "mkdir";
    case FsOp::kRmdir: return "rmdir";
    case FsOp::kReaddir: return "readdir";
    case FsOp::kCreate: return "touch";
    case FsOp::kUnlink: return "rm";
    case FsOp::kStatFile: return "file-stat";
    case FsOp::kStatDir: return "dir-stat";
    case FsOp::kChmod: return "chmod";
    case FsOp::kChown: return "chown";
    case FsOp::kAccess: return "access";
    case FsOp::kTruncate: return "truncate";
    case FsOp::kUtimens: return "utimens";
    case FsOp::kRename: return "rename";
    case FsOp::kOpen: return "open";
    case FsOp::kClose: return "close";
    case FsOp::kWrite: return "write";
    case FsOp::kRead: return "read";
    case FsOp::kCount_: break;
  }
  return "?";
}

}  // namespace loco::fs
