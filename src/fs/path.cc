#include "fs/path.h"

namespace loco::fs {

bool IsValidPath(std::string_view path) noexcept {
  if (path.empty() || path.front() != '/') return false;
  if (path.size() == 1) return true;  // root
  if (path.back() == '/') return false;
  std::size_t start = 1;
  while (start <= path.size()) {
    const std::size_t end = path.find('/', start);
    const std::string_view comp =
        path.substr(start, end == std::string_view::npos ? end : end - start);
    if (comp.empty() || comp == "." || comp == "..") return false;
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return true;
}

std::string_view ParentPath(std::string_view path) noexcept {
  if (path.size() <= 1) return "/";
  const std::size_t slash = path.rfind('/');
  if (slash == 0) return path.substr(0, 1);
  return path.substr(0, slash);
}

std::string_view BaseName(std::string_view path) noexcept {
  if (path.size() <= 1) return {};
  return path.substr(path.rfind('/') + 1);
}

std::string JoinPath(std::string_view dir, std::string_view name) {
  std::string out(dir);
  if (out.empty() || out.back() != '/') out.push_back('/');
  out.append(name);
  return out;
}

std::vector<std::string_view> SplitPath(std::string_view path) {
  std::vector<std::string_view> out;
  if (path.size() <= 1) return out;
  std::size_t start = 1;
  while (start < path.size()) {
    std::size_t end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    out.push_back(path.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::vector<std::string> Ancestors(std::string_view path) {
  std::vector<std::string> out;
  if (path.size() <= 1) return out;
  out.emplace_back("/");
  std::size_t pos = path.find('/', 1);
  while (pos != std::string_view::npos) {
    out.emplace_back(path.substr(0, pos));
    pos = path.find('/', pos + 1);
  }
  return out;
}

std::size_t PathDepth(std::string_view path) noexcept {
  if (path.size() <= 1) return 0;
  std::size_t depth = 0;
  for (char c : path) depth += (c == '/');
  return depth;
}

}  // namespace loco::fs
