// Common file-system types shared by LocoFS and every baseline service.
//
// Semantics contract (all services and the reference model implement this):
//   * Paths are absolute, '/'-separated, normalized (no ".", "..", no
//     trailing slash except the root "/").  The root directory always exists.
//   * mkdir/create require the parent to exist and be a directory, the name
//     to be free, and the caller to have write permission on the parent and
//     execute (search) permission on every ancestor.
//   * rmdir requires an empty directory; unlink requires a file.
//   * rename: source must exist, destination must not; renaming a directory
//     moves its whole subtree.
//   * Permission checks are POSIX-style (owner/group/other bits); uid 0
//     bypasses all checks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace loco::fs {

// Universally unique file/directory id: [16-bit server id | 48-bit file id].
// Children are indexed by their parent's uuid, so renames never relocate
// them (§3.4.2); data blocks are indexed by (uuid, block) (§3.3.2).
class Uuid {
 public:
  constexpr Uuid() = default;
  constexpr explicit Uuid(std::uint64_t raw) : raw_(raw) {}
  static constexpr Uuid Make(std::uint32_t sid, std::uint64_t fid) {
    return Uuid((static_cast<std::uint64_t>(sid) << 48) |
                (fid & ((std::uint64_t{1} << 48) - 1)));
  }

  constexpr std::uint64_t raw() const noexcept { return raw_; }
  constexpr std::uint32_t sid() const noexcept {
    return static_cast<std::uint32_t>(raw_ >> 48);
  }
  constexpr std::uint64_t fid() const noexcept {
    return raw_ & ((std::uint64_t{1} << 48) - 1);
  }

  friend constexpr bool operator==(Uuid a, Uuid b) noexcept {
    return a.raw_ == b.raw_;
  }
  friend constexpr bool operator<(Uuid a, Uuid b) noexcept {
    return a.raw_ < b.raw_;
  }

 private:
  std::uint64_t raw_ = 0;
};

constexpr Uuid kRootUuid = Uuid::Make(0xffff, 1);

// POSIX-ish permission bits (subset).
constexpr std::uint32_t kModeRead = 4;
constexpr std::uint32_t kModeWrite = 2;
constexpr std::uint32_t kModeExec = 1;
constexpr std::uint32_t kDefaultDirMode = 0755;
constexpr std::uint32_t kDefaultFileMode = 0644;

// Caller identity attached to every operation.
struct Identity {
  std::uint32_t uid = 1000;
  std::uint32_t gid = 1000;
};

// True if `who` may perform `want` (mask of kMode*) on an object owned by
// (uid, gid) with permission bits `mode`.
constexpr bool CheckPermission(const Identity& who, std::uint32_t mode,
                               std::uint32_t uid, std::uint32_t gid,
                               std::uint32_t want) noexcept {
  if (who.uid == 0) return true;
  std::uint32_t bits;
  if (who.uid == uid) {
    bits = (mode >> 6) & 7;
  } else if (who.gid == gid) {
    bits = (mode >> 3) & 7;
  } else {
    bits = mode & 7;
  }
  return (bits & want) == want;
}

// Full attribute set returned by stat.  The access/content grouping follows
// the paper's Table 1 (LocoFS stores the two groups as separate KV values).
struct Attr {
  // Access region.
  std::uint64_t ctime = 0;
  std::uint32_t mode = 0;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  // Content region.
  std::uint64_t mtime = 0;
  std::uint64_t atime = 0;
  std::uint64_t size = 0;
  std::uint32_t block_size = 0;
  // Identity.
  Uuid uuid;
  bool is_dir = false;
};

struct DirEntry {
  std::string name;
  bool is_dir = false;
};

// Logical operation kinds — used for workload specs and per-op statistics
// (the wire opcodes are service-specific and live with each service).
enum class FsOp : int {
  kMkdir = 0,
  kRmdir,
  kReaddir,
  kCreate,   // mdtest "touch"
  kUnlink,   // mdtest "rm"
  kStatFile,
  kStatDir,
  kChmod,
  kChown,
  kAccess,
  kTruncate,
  kUtimens,
  kRename,
  kOpen,
  kClose,
  kWrite,
  kRead,
  kCount_,
};

constexpr int kFsOpCount = static_cast<int>(FsOp::kCount_);

std::string_view FsOpName(FsOp op) noexcept;

}  // namespace loco::fs
