#include "fs/ref_model.h"

#include <algorithm>

#include "fs/path.h"

namespace loco::fs {

RefModel::RefModel() : root_(std::make_unique<Node>()) {
  root_->attr.is_dir = true;
  root_->attr.mode = 0777;
  root_->attr.uid = 0;
  root_->attr.gid = 0;
  root_->attr.uuid = kRootUuid;
}

Result<RefModel::Node*> RefModel::Resolve(const Identity& who,
                                          std::string_view path) const {
  if (!IsValidPath(path)) return ErrStatus(ErrCode::kInvalid, std::string(path));
  Node* node = root_.get();
  for (std::string_view comp : SplitPath(path)) {
    if (!node->attr.is_dir) return ErrStatus(ErrCode::kNotDir);
    if (!CheckPermission(who, node->attr.mode, node->attr.uid, node->attr.gid,
                         kModeExec)) {
      return ErrStatus(ErrCode::kPermission);
    }
    const auto it = node->children.find(comp);
    if (it == node->children.end()) return ErrStatus(ErrCode::kNotFound);
    node = it->second.get();
  }
  return node;
}

Result<RefModel::Node*> RefModel::ResolveParent(const Identity& who,
                                                std::string_view path,
                                                std::uint32_t want) const {
  if (!IsValidPath(path) || path == "/") {
    return ErrStatus(ErrCode::kInvalid, std::string(path));
  }
  LOCO_ASSIGN_OR_RETURN(Node * parent, Resolve(who, ParentPath(path)));
  if (!parent->attr.is_dir) return ErrStatus(ErrCode::kNotDir);
  if (!CheckPermission(who, parent->attr.mode, parent->attr.uid,
                       parent->attr.gid, want)) {
    return ErrStatus(ErrCode::kPermission);
  }
  return parent;
}

Status RefModel::Mkdir(const Identity& who, std::string_view path,
                       std::uint32_t mode, std::uint64_t ts) {
  LOCO_ASSIGN_OR_RETURN(Node * parent,
                        ResolveParent(who, path, kModeWrite | kModeExec));
  const std::string_view name = BaseName(path);
  if (parent->children.contains(name)) return ErrStatus(ErrCode::kExists);
  auto node = std::make_unique<Node>();
  node->attr.is_dir = true;
  node->attr.mode = mode;
  node->attr.uid = who.uid;
  node->attr.gid = who.gid;
  node->attr.ctime = node->attr.mtime = node->attr.atime = ts;
  node->attr.uuid = Uuid::Make(0, next_fid_++);
  parent->children.emplace(std::string(name), std::move(node));
  return OkStatus();
}

Status RefModel::Create(const Identity& who, std::string_view path,
                        std::uint32_t mode, std::uint64_t ts) {
  LOCO_ASSIGN_OR_RETURN(Node * parent,
                        ResolveParent(who, path, kModeWrite | kModeExec));
  const std::string_view name = BaseName(path);
  if (parent->children.contains(name)) return ErrStatus(ErrCode::kExists);
  auto node = std::make_unique<Node>();
  node->attr.is_dir = false;
  node->attr.mode = mode;
  node->attr.uid = who.uid;
  node->attr.gid = who.gid;
  node->attr.ctime = node->attr.mtime = node->attr.atime = ts;
  node->attr.block_size = 4096;
  node->attr.uuid = Uuid::Make(0, next_fid_++);
  parent->children.emplace(std::string(name), std::move(node));
  return OkStatus();
}

Status RefModel::Rmdir(const Identity& who, std::string_view path) {
  // Contract order (see fs/types.h): existence and emptiness are verified
  // before the parent write-permission check — this matches the phase
  // structure of distributed implementations (emptiness is a fan-out that
  // precedes the parent-mutating phase).
  if (!IsValidPath(path) || path == "/") return ErrStatus(ErrCode::kInvalid);
  LOCO_ASSIGN_OR_RETURN(Node * node, Resolve(who, path));
  if (!node->attr.is_dir) return ErrStatus(ErrCode::kNotDir);
  if (!node->children.empty()) return ErrStatus(ErrCode::kNotEmpty);
  LOCO_ASSIGN_OR_RETURN(Node * parent, Resolve(who, ParentPath(path)));
  if (!CheckPermission(who, parent->attr.mode, parent->attr.uid,
                       parent->attr.gid, kModeWrite)) {
    return ErrStatus(ErrCode::kPermission);
  }
  parent->children.erase(parent->children.find(BaseName(path)));
  return OkStatus();
}

Status RefModel::Unlink(const Identity& who, std::string_view path) {
  LOCO_ASSIGN_OR_RETURN(Node * parent,
                        ResolveParent(who, path, kModeWrite | kModeExec));
  const auto it = parent->children.find(BaseName(path));
  if (it == parent->children.end()) return ErrStatus(ErrCode::kNotFound);
  if (it->second->attr.is_dir) return ErrStatus(ErrCode::kIsDir);
  parent->children.erase(it);
  return OkStatus();
}

Result<std::vector<DirEntry>> RefModel::Readdir(const Identity& who,
                                                std::string_view path) const {
  LOCO_ASSIGN_OR_RETURN(Node * node, Resolve(who, path));
  if (!node->attr.is_dir) return ErrStatus(ErrCode::kNotDir);
  if (!CheckPermission(who, node->attr.mode, node->attr.uid, node->attr.gid,
                       kModeRead)) {
    return ErrStatus(ErrCode::kPermission);
  }
  std::vector<DirEntry> entries;
  entries.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    entries.push_back(DirEntry{name, child->attr.is_dir});
  }
  return entries;
}

Result<Attr> RefModel::Stat(const Identity& who, std::string_view path) const {
  LOCO_ASSIGN_OR_RETURN(Node * node, Resolve(who, path));
  return node->attr;
}

Status RefModel::Chmod(const Identity& who, std::string_view path,
                       std::uint32_t mode, std::uint64_t ts) {
  LOCO_ASSIGN_OR_RETURN(Node * node, Resolve(who, path));
  if (who.uid != 0 && who.uid != node->attr.uid) {
    return ErrStatus(ErrCode::kPermission);
  }
  node->attr.mode = mode;
  node->attr.ctime = ts;
  return OkStatus();
}

Status RefModel::Chown(const Identity& who, std::string_view path,
                       std::uint32_t uid, std::uint32_t gid, std::uint64_t ts) {
  LOCO_ASSIGN_OR_RETURN(Node * node, Resolve(who, path));
  // Only root may change the owner; the owner may change the group.
  if (who.uid != 0 &&
      !(who.uid == node->attr.uid && uid == node->attr.uid)) {
    return ErrStatus(ErrCode::kPermission);
  }
  node->attr.uid = uid;
  node->attr.gid = gid;
  node->attr.ctime = ts;
  return OkStatus();
}

Status RefModel::Access(const Identity& who, std::string_view path,
                        std::uint32_t want) const {
  LOCO_ASSIGN_OR_RETURN(Node * node, Resolve(who, path));
  if (!CheckPermission(who, node->attr.mode, node->attr.uid, node->attr.gid,
                       want)) {
    return ErrStatus(ErrCode::kPermission);
  }
  return OkStatus();
}

Status RefModel::Utimens(const Identity& who, std::string_view path,
                         std::uint64_t mtime, std::uint64_t atime) {
  LOCO_ASSIGN_OR_RETURN(Node * node, Resolve(who, path));
  if (who.uid != 0 && who.uid != node->attr.uid &&
      !MayWrite(who, node->attr)) {
    return ErrStatus(ErrCode::kPermission);
  }
  node->attr.mtime = mtime;
  node->attr.atime = atime;
  return OkStatus();
}

Status RefModel::Truncate(const Identity& who, std::string_view path,
                          std::uint64_t size, std::uint64_t ts) {
  LOCO_ASSIGN_OR_RETURN(Node * node, Resolve(who, path));
  if (node->attr.is_dir) return ErrStatus(ErrCode::kIsDir);
  if (!MayWrite(who, node->attr)) return ErrStatus(ErrCode::kPermission);
  node->data.resize(size, '\0');
  node->attr.size = size;
  node->attr.mtime = ts;
  return OkStatus();
}

Result<Attr> RefModel::Open(const Identity& who, std::string_view path) const {
  LOCO_ASSIGN_OR_RETURN(Node * node, Resolve(who, path));
  if (node->attr.is_dir) return ErrStatus(ErrCode::kIsDir);
  if (!CheckPermission(who, node->attr.mode, node->attr.uid, node->attr.gid,
                       kModeRead)) {
    return ErrStatus(ErrCode::kPermission);
  }
  return node->attr;
}

Status RefModel::Write(const Identity& who, std::string_view path,
                       std::uint64_t offset, std::string_view data,
                       std::uint64_t ts) {
  LOCO_ASSIGN_OR_RETURN(Node * node, Resolve(who, path));
  if (node->attr.is_dir) return ErrStatus(ErrCode::kIsDir);
  if (!MayWrite(who, node->attr)) return ErrStatus(ErrCode::kPermission);
  if (offset + data.size() > node->data.size()) {
    node->data.resize(offset + data.size(), '\0');
  }
  node->data.replace(static_cast<std::size_t>(offset), data.size(), data);
  node->attr.size = node->data.size();
  node->attr.mtime = ts;
  return OkStatus();
}

Result<std::string> RefModel::Read(const Identity& who, std::string_view path,
                                   std::uint64_t offset, std::uint64_t length,
                                   std::uint64_t ts) {
  LOCO_ASSIGN_OR_RETURN(Node * node, Resolve(who, path));
  if (node->attr.is_dir) return ErrStatus(ErrCode::kIsDir);
  if (!CheckPermission(who, node->attr.mode, node->attr.uid, node->attr.gid,
                       kModeRead)) {
    return ErrStatus(ErrCode::kPermission);
  }
  node->attr.atime = ts;
  if (offset >= node->data.size()) return std::string();
  const std::size_t n = std::min<std::size_t>(
      length, node->data.size() - static_cast<std::size_t>(offset));
  return node->data.substr(static_cast<std::size_t>(offset), n);
}

Status RefModel::Rename(const Identity& who, std::string_view from,
                        std::string_view to) {
  if (!IsValidPath(from) || !IsValidPath(to) || from == "/" || to == "/") {
    return ErrStatus(ErrCode::kInvalid);
  }
  // Destination must not live inside the source subtree.
  if (to.size() > from.size() && to.substr(0, from.size()) == from &&
      to[from.size()] == '/') {
    return ErrStatus(ErrCode::kInvalid);
  }
  if (from == to) return OkStatus();
  LOCO_ASSIGN_OR_RETURN(Node * src_parent,
                        ResolveParent(who, from, kModeWrite | kModeExec));
  const auto src_it = src_parent->children.find(BaseName(from));
  if (src_it == src_parent->children.end()) return ErrStatus(ErrCode::kNotFound);
  LOCO_ASSIGN_OR_RETURN(Node * dst_parent,
                        ResolveParent(who, to, kModeWrite | kModeExec));
  if (dst_parent->children.contains(BaseName(to))) {
    return ErrStatus(ErrCode::kExists);
  }
  std::unique_ptr<Node> moved = std::move(src_it->second);
  src_parent->children.erase(src_it);
  dst_parent->children.emplace(std::string(BaseName(to)), std::move(moved));
  return OkStatus();
}


std::size_t RefModel::NodeCount() const {
  std::size_t n = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++n;
    for (const auto& [name, child] : node->children) {
      (void)name;
      stack.push_back(child.get());
    }
  }
  return n;
}

}  // namespace loco::fs
