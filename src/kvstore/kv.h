// Key-value store interface.
//
// LocoFS (the paper) layers file-system metadata on Kyoto Cabinet and
// compares against LevelDB-backed IndexFS.  This module provides the three
// data-structure families those systems rely on:
//
//   * HashKV  — open-addressing hash table (Kyoto Cabinet "hash DB" mode):
//               O(1) point ops, unordered, full scan needed for ranges.
//   * BTreeKV — B+ tree (Kyoto Cabinet "tree DB" mode): ordered keys,
//               prefix/range scans; basis of the d-rename optimization §3.4.3.
//   * LsmKV   — LSM tree (LevelDB stand-in): memtable + WAL + sorted runs
//               with bloom filters; basis of the IndexFS baseline.
//
// All stores count operations, bytes moved, and storage-level I/O events so
// benchmarks can (a) observe (de)serialization volume and (b) convert I/O
// counts into device time under HDD/SSD cost models (Fig. 14).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"

namespace loco::kv {

// Monotonic operation / traffic counters.  Copyable snapshot type.
struct KvStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t patches = 0;       // in-place partial value updates
  std::uint64_t scans = 0;         // ordered or full scans
  std::uint64_t scan_items = 0;    // entries visited by scans
  std::uint64_t bytes_read = 0;    // value bytes returned to callers
  std::uint64_t bytes_written = 0; // value bytes accepted from callers
  std::uint64_t io_ops = 0;        // storage-level operations (WAL appends,
                                   // run flushes, compaction reads/writes)
  std::uint64_t io_bytes = 0;      // storage-level bytes

  KvStats operator-(const KvStats& rhs) const noexcept {
    KvStats d = *this;
    d.gets -= rhs.gets; d.puts -= rhs.puts; d.deletes -= rhs.deletes;
    d.patches -= rhs.patches; d.scans -= rhs.scans; d.scan_items -= rhs.scan_items;
    d.bytes_read -= rhs.bytes_read; d.bytes_written -= rhs.bytes_written;
    d.io_ops -= rhs.io_ops; d.io_bytes -= rhs.io_bytes;
    return d;
  }

  KvStats operator+(const KvStats& rhs) const noexcept {
    KvStats s = *this;
    s.gets += rhs.gets; s.puts += rhs.puts; s.deletes += rhs.deletes;
    s.patches += rhs.patches; s.scans += rhs.scans; s.scan_items += rhs.scan_items;
    s.bytes_read += rhs.bytes_read; s.bytes_written += rhs.bytes_written;
    s.io_ops += rhs.io_ops; s.io_bytes += rhs.io_bytes;
    return s;
  }
};

struct KvOptions {
  // Directory for persistence (WAL / sorted runs).  Empty = memory only.
  std::string dir;
  // fsync WAL appends (crash durability at a large cost; off for benches).
  bool sync_writes = false;
  // LSM: flush memtable when it holds this many bytes.
  std::size_t memtable_bytes = 4u << 20;
  // LSM: merge all runs when their count exceeds this.
  std::size_t max_runs = 6;
  // BTree: maximum keys per node.
  std::size_t btree_order = 32;
};

// A key-value entry returned by scans.
using Entry = std::pair<std::string, std::string>;

class Kv {
 public:
  virtual ~Kv() = default;

  // Insert or overwrite.
  virtual Status Put(std::string_view key, std::string_view value) = 0;

  // Read into *value.  kNotFound if absent.
  virtual Status Get(std::string_view key, std::string* value) const = 0;

  // Remove.  kNotFound if absent.
  virtual Status Delete(std::string_view key) = 0;

  virtual bool Contains(std::string_view key) const {
    std::string tmp;
    return Get(key, &tmp).ok();
  }

  // Overwrite `patch.size()` bytes at `offset` inside the stored value.
  // This is the primitive LocoFS uses for fixed-offset field updates; stores
  // that keep values in place (hash, btree) implement it without re-writing
  // the rest of the value.  Fails with kNotFound / kInvalid (out of range).
  virtual Status PatchValue(std::string_view key, std::size_t offset,
                            std::string_view patch);

  // Read `len` bytes at `offset` of the stored value.
  virtual Status ReadValueAt(std::string_view key, std::size_t offset,
                             std::size_t len, std::string* out) const;

  // Number of live entries.
  virtual std::size_t Size() const = 0;

  // Ordered stores return all entries whose key starts with `prefix`
  // (lexicographic order); unordered stores fall back to a full scan.
  // `limit` == 0 means unlimited.
  virtual Status ScanPrefix(std::string_view prefix, std::size_t limit,
                            std::vector<Entry>* out) const = 0;

  // Visit every entry (arbitrary order).  Return false from `fn` to stop.
  virtual void ForEach(
      const std::function<bool(std::string_view, std::string_view)>& fn) const = 0;

  // True if ScanPrefix is sub-linear (ordered index), false if it degrades
  // to a full scan (hash mode) — the distinction Fig. 14 measures.
  virtual bool Ordered() const noexcept = 0;

  // Snapshot of the operation counters.  Returned by value: striped stores
  // aggregate their shards under lock, so a reference would dangle or race.
  virtual KvStats stats() const noexcept { return stats_; }
  virtual void ResetStats() noexcept { stats_ = KvStats{}; }

 protected:
  mutable KvStats stats_;
};

enum class KvBackend { kHash, kBTree, kLsm };

std::string_view KvBackendName(KvBackend backend) noexcept;

// Create a store; opens/recovers persistent state if options.dir is set.
Result<std::unique_ptr<Kv>> MakeKv(KvBackend backend, const KvOptions& options = {});

// Register one callback gauge per KvStats field under `prefix` (e.g. prefix
// "server.dms.kv" yields server.dms.kv.gets, .puts, ...).  `fn` is evaluated
// at exposition time and may aggregate several stores.  The returned handles
// keep the gauges alive; dropping them unregisters.
std::vector<common::MetricsRegistry::GaugeHandle> RegisterKvStatsGauges(
    common::MetricsRegistry* registry, const std::string& prefix,
    std::function<KvStats()> fn);

}  // namespace loco::kv
