// Write-ahead log shared by the persistent KV stores.
//
// Record framing:  [u32 crc][u32 len][payload]   (little endian)
// crc covers the payload only.  Replay stops at the first corrupt or
// truncated record, which makes a torn tail after a crash recoverable.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace loco::kv {

// CRC32 (Castagnoli polynomial, table-driven).
std::uint32_t Crc32c(std::string_view data) noexcept;

class Wal {
 public:
  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Open (creating if needed) the log at `path` for appending.
  Status Open(const std::string& path, bool sync_writes);

  bool IsOpen() const noexcept { return file_ != nullptr; }

  // Append one framed record.
  Status Append(std::string_view payload);

  // Replay every intact record of the log at `path` in order.
  // Returns the number of records delivered.  A corrupt/truncated tail is
  // not an error; it is simply where replay stops.
  static Result<std::size_t> Replay(
      const std::string& path,
      const std::function<void(std::string_view)>& fn);

  // Truncate the log (e.g. after an LSM memtable flush made it redundant).
  Status Truncate();

  void Close();

  std::uint64_t appended_bytes() const noexcept { return appended_bytes_; }
  std::uint64_t appended_records() const noexcept { return appended_records_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  bool sync_ = false;
  std::uint64_t appended_bytes_ = 0;
  std::uint64_t appended_records_ = 0;
};

}  // namespace loco::kv
