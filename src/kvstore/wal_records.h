// Shared WAL record encoding for the mutation log of HashKV / BTreeKV and
// the LSM write path.  One record per logical mutation:
//   put:    [kOpPut][bytes key][bytes value]
//   delete: [kOpDelete][bytes key]
//   patch:  [kOpPatch][bytes key][u64 offset][bytes patch]
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/codec.h"

namespace loco::kv::walrec {

constexpr std::uint8_t kOpPut = 1;
constexpr std::uint8_t kOpDelete = 2;
constexpr std::uint8_t kOpPatch = 3;

inline std::string EncodePut(std::string_view key, std::string_view value) {
  common::Writer w;
  w.PutU8(kOpPut);
  w.PutBytes(key);
  w.PutBytes(value);
  return w.Take();
}

inline std::string EncodeDelete(std::string_view key) {
  common::Writer w;
  w.PutU8(kOpDelete);
  w.PutBytes(key);
  return w.Take();
}

inline std::string EncodePatch(std::string_view key, std::uint64_t offset,
                               std::string_view patch) {
  common::Writer w;
  w.PutU8(kOpPatch);
  w.PutBytes(key);
  w.PutU64(offset);
  w.PutBytes(patch);
  return w.Take();
}

}  // namespace loco::kv::walrec
