#include "kvstore/faulty_kv.h"

// Header-only implementation; this TU anchors the vtable.

namespace loco::kv {}  // namespace loco::kv
