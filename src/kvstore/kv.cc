#include "kvstore/kv.h"

#include "kvstore/btree_kv.h"
#include "kvstore/hash_kv.h"
#include "kvstore/lsm_kv.h"

namespace loco::kv {

Status Kv::PatchValue(std::string_view key, std::size_t offset,
                      std::string_view patch) {
  // Generic fallback: whole-value read-modify-write.  This is precisely the
  // cost profile the paper ascribes to coupled / LSM-stored inodes — stores
  // with in-place values (hash, btree) override this with a real patch.
  stats_.patches += 1;
  std::string value;
  LOCO_RETURN_IF_ERROR(Get(key, &value));
  if (offset + patch.size() > value.size()) {
    return ErrStatus(ErrCode::kInvalid, "patch out of range");
  }
  value.replace(offset, patch.size(), patch);
  return Put(key, value);
}

Status Kv::ReadValueAt(std::string_view key, std::size_t offset, std::size_t len,
                       std::string* out) const {
  std::string value;
  LOCO_RETURN_IF_ERROR(Get(key, &value));
  if (offset + len > value.size()) {
    return ErrStatus(ErrCode::kInvalid, "read out of range");
  }
  out->assign(value, offset, len);
  return OkStatus();
}

std::string_view KvBackendName(KvBackend backend) noexcept {
  switch (backend) {
    case KvBackend::kHash: return "hash";
    case KvBackend::kBTree: return "btree";
    case KvBackend::kLsm: return "lsm";
  }
  return "?";
}

std::vector<common::MetricsRegistry::GaugeHandle> RegisterKvStatsGauges(
    common::MetricsRegistry* registry, const std::string& prefix,
    std::function<KvStats()> fn) {
  // One shared snapshot closure; each gauge projects a single field.
  const auto shared = std::make_shared<std::function<KvStats()>>(std::move(fn));
  struct Field {
    const char* name;
    std::uint64_t KvStats::*member;
  };
  static constexpr Field kFields[] = {
      {"gets", &KvStats::gets},
      {"puts", &KvStats::puts},
      {"deletes", &KvStats::deletes},
      {"patches", &KvStats::patches},
      {"scans", &KvStats::scans},
      {"scan_items", &KvStats::scan_items},
      {"bytes_read", &KvStats::bytes_read},
      {"bytes_written", &KvStats::bytes_written},
      {"io_ops", &KvStats::io_ops},
      {"io_bytes", &KvStats::io_bytes},
  };
  std::vector<common::MetricsRegistry::GaugeHandle> handles;
  handles.reserve(std::size(kFields));
  for (const Field& field : kFields) {
    handles.push_back(registry->RegisterGauge(
        prefix + "." + field.name, [shared, member = field.member] {
          return static_cast<double>((*shared)().*member);
        }));
  }
  return handles;
}

Result<std::unique_ptr<Kv>> MakeKv(KvBackend backend, const KvOptions& options) {
  switch (backend) {
    case KvBackend::kHash: {
      auto kv = std::make_unique<HashKV>(options);
      LOCO_RETURN_IF_ERROR(kv->Open());
      return std::unique_ptr<Kv>(std::move(kv));
    }
    case KvBackend::kBTree: {
      auto kv = std::make_unique<BTreeKV>(options);
      LOCO_RETURN_IF_ERROR(kv->Open());
      return std::unique_ptr<Kv>(std::move(kv));
    }
    case KvBackend::kLsm: {
      auto kv = std::make_unique<LsmKV>(options);
      LOCO_RETURN_IF_ERROR(kv->Open());
      return std::unique_ptr<Kv>(std::move(kv));
    }
  }
  return ErrStatus(ErrCode::kInvalid, "unknown backend");
}

}  // namespace loco::kv
