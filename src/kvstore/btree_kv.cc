#include "kvstore/btree_kv.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <utility>

#include "common/codec.h"
#include "kvstore/wal_records.h"

namespace loco::kv {

struct BTreeKV::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
  bool is_leaf;
};

struct BTreeKV::Leaf final : Node {
  Leaf() : Node(true) {}
  std::vector<std::string> keys;
  std::vector<std::string> vals;
  Leaf* next = nullptr;
  Leaf* prev = nullptr;
};

struct BTreeKV::Inner final : Node {
  Inner() : Node(false) {}
  std::vector<std::string> keys;  // separators; children.size() == keys.size()+1
  std::vector<std::unique_ptr<Node>> children;
};

namespace {

// Result of a node split during insert: `sep` separates the original node
// (left) from `right`.
struct Split {
  std::string sep;
  std::unique_ptr<BTreeKV::Node> right;
};

// Smallest string strictly greater than every string with this prefix, or
// empty (= unbounded) when no such string exists (prefix is all 0xff).
std::string PrefixUpperBound(std::string_view prefix) {
  std::string hi(prefix);
  while (!hi.empty()) {
    if (static_cast<unsigned char>(hi.back()) != 0xff) {
      hi.back() = static_cast<char>(static_cast<unsigned char>(hi.back()) + 1);
      return hi;
    }
    hi.pop_back();
  }
  return hi;
}

}  // namespace

BTreeKV::BTreeKV(const KvOptions& options)
    : options_(options),
      max_keys_(std::max<std::size_t>(options.btree_order, 4)),
      min_keys_(max_keys_ / 2),
      root_(std::make_unique<Leaf>()) {}

BTreeKV::~BTreeKV() {
  // Deep trees would recurse in unique_ptr destructors; flatten iteratively.
  if (!root_) return;
  std::vector<std::unique_ptr<Node>> stack;
  stack.push_back(std::move(root_));
  while (!stack.empty()) {
    std::unique_ptr<Node> n = std::move(stack.back());
    stack.pop_back();
    if (!n->is_leaf) {
      auto* inner = static_cast<Inner*>(n.get());
      for (auto& c : inner->children) stack.push_back(std::move(c));
    }
  }
}

Status BTreeKV::Open() {
  if (options_.dir.empty()) return OkStatus();
  const std::string path = options_.dir + "/btreekv.wal";
  replaying_ = true;
  auto replayed = Wal::Replay(path, [this](std::string_view rec) {
    common::Reader r(rec);
    const std::uint8_t op = r.GetU8();
    if (op == walrec::kOpPut) {
      std::string_view key = r.GetBytes();
      std::string_view value = r.GetBytes();
      if (r.ok()) InsertNoLog(key, value);
    } else if (op == walrec::kOpDelete) {
      std::string_view key = r.GetBytes();
      if (r.ok()) EraseNoLog(key);
    } else if (op == walrec::kOpPatch) {
      std::string_view key = r.GetBytes();
      const std::uint64_t off = r.GetU64();
      std::string_view patch = r.GetBytes();
      if (r.ok()) {
        if (std::string* v = FindValue(key);
            v != nullptr && off + patch.size() <= v->size()) {
          v->replace(static_cast<std::size_t>(off), patch.size(), patch);
        }
      }
    }
  });
  replaying_ = false;
  if (!replayed.ok()) return replayed.status();
  return wal_.Open(path, options_.sync_writes);
}

Status BTreeKV::LogAppend(std::string record) {
  if (!wal_.IsOpen() || replaying_) return OkStatus();
  stats_.io_ops += 1;
  stats_.io_bytes += record.size() + 8;  // + frame header
  return wal_.Append(record);
}

BTreeKV::Leaf* BTreeKV::FindLeaf(std::string_view key) const noexcept {
  Node* n = root_.get();
  while (!n->is_leaf) {
    auto* inner = static_cast<Inner*>(n);
    const std::size_t idx = static_cast<std::size_t>(
        std::upper_bound(inner->keys.begin(), inner->keys.end(), key) -
        inner->keys.begin());
    n = inner->children[idx].get();
  }
  return static_cast<Leaf*>(n);
}

std::string* BTreeKV::FindValue(std::string_view key) const noexcept {
  Leaf* leaf = FindLeaf(key);
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return nullptr;
  return &leaf->vals[static_cast<std::size_t>(it - leaf->keys.begin())];
}

namespace {

// Recursive insert helper operating on BTreeKV internals.
class Inserter {
 public:
  Inserter(std::size_t max_keys, std::string_view key, std::string_view value)
      : max_keys_(max_keys), key_(key), value_(value) {}

  bool inserted() const noexcept { return inserted_; }

  std::optional<Split> Visit(BTreeKV::Node* n) {
    return n->is_leaf ? VisitLeaf(static_cast<BTreeKV::Leaf*>(n))
                      : VisitInner(static_cast<BTreeKV::Inner*>(n));
  }

 private:
  std::optional<Split> VisitLeaf(BTreeKV::Leaf* leaf) {
    const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key_);
    const std::size_t pos = static_cast<std::size_t>(it - leaf->keys.begin());
    if (it != leaf->keys.end() && *it == key_) {
      leaf->vals[pos].assign(value_);  // overwrite
      inserted_ = false;
      return std::nullopt;
    }
    leaf->keys.emplace(it, key_);
    leaf->vals.emplace(leaf->vals.begin() + static_cast<std::ptrdiff_t>(pos),
                       value_);
    inserted_ = true;
    if (leaf->keys.size() <= max_keys_) return std::nullopt;

    // Split: move the upper half to a new right leaf.
    auto right = std::make_unique<BTreeKV::Leaf>();
    const std::size_t mid = leaf->keys.size() / 2;
    right->keys.assign(std::make_move_iterator(leaf->keys.begin() +
                                               static_cast<std::ptrdiff_t>(mid)),
                       std::make_move_iterator(leaf->keys.end()));
    right->vals.assign(std::make_move_iterator(leaf->vals.begin() +
                                               static_cast<std::ptrdiff_t>(mid)),
                       std::make_move_iterator(leaf->vals.end()));
    leaf->keys.resize(mid);
    leaf->vals.resize(mid);
    right->next = leaf->next;
    right->prev = leaf;
    if (right->next != nullptr) right->next->prev = right.get();
    leaf->next = right.get();
    Split s;
    s.sep = right->keys.front();
    s.right = std::move(right);
    return s;
  }

  std::optional<Split> VisitInner(BTreeKV::Inner* inner) {
    const std::size_t idx = static_cast<std::size_t>(
        std::upper_bound(inner->keys.begin(), inner->keys.end(), key_) -
        inner->keys.begin());
    auto child_split = Visit(inner->children[idx].get());
    if (!child_split) return std::nullopt;
    inner->keys.insert(inner->keys.begin() + static_cast<std::ptrdiff_t>(idx),
                       std::move(child_split->sep));
    inner->children.insert(
        inner->children.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
        std::move(child_split->right));
    if (inner->keys.size() <= max_keys_) return std::nullopt;

    // Split inner: middle separator moves up.
    auto right = std::make_unique<BTreeKV::Inner>();
    const std::size_t mid = inner->keys.size() / 2;
    Split s;
    s.sep = std::move(inner->keys[mid]);
    right->keys.assign(
        std::make_move_iterator(inner->keys.begin() +
                                static_cast<std::ptrdiff_t>(mid) + 1),
        std::make_move_iterator(inner->keys.end()));
    right->children.assign(
        std::make_move_iterator(inner->children.begin() +
                                static_cast<std::ptrdiff_t>(mid) + 1),
        std::make_move_iterator(inner->children.end()));
    inner->keys.resize(mid);
    inner->children.resize(mid + 1);
    s.right = std::move(right);
    return s;
  }

  std::size_t max_keys_;
  std::string_view key_;
  std::string_view value_;
  bool inserted_ = false;
};

}  // namespace

void BTreeKV::InsertNoLog(std::string_view key, std::string_view value) {
  Inserter ins(max_keys_, key, value);
  auto split = ins.Visit(root_.get());
  if (split) {
    auto new_root = std::make_unique<Inner>();
    new_root->keys.push_back(std::move(split->sep));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
  if (ins.inserted()) ++size_;
}

namespace {

// Deletion helper: classic B+-tree erase with borrow / merge rebalancing.
class Eraser {
 public:
  Eraser(std::size_t min_keys, std::string_view key)
      : min_keys_(min_keys), key_(key) {}

  bool Visit(BTreeKV::Node* n) {
    if (n->is_leaf) {
      auto* leaf = static_cast<BTreeKV::Leaf*>(n);
      const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key_);
      if (it == leaf->keys.end() || *it != key_) return false;
      const std::size_t pos = static_cast<std::size_t>(it - leaf->keys.begin());
      leaf->keys.erase(it);
      leaf->vals.erase(leaf->vals.begin() + static_cast<std::ptrdiff_t>(pos));
      return true;
    }
    auto* inner = static_cast<BTreeKV::Inner*>(n);
    const std::size_t idx = static_cast<std::size_t>(
        std::upper_bound(inner->keys.begin(), inner->keys.end(), key_) -
        inner->keys.begin());
    const bool erased = Visit(inner->children[idx].get());
    if (erased && Underflows(inner->children[idx].get())) FixChild(inner, idx);
    return erased;
  }

 private:
  bool Underflows(const BTreeKV::Node* n) const noexcept {
    if (n->is_leaf) {
      return static_cast<const BTreeKV::Leaf*>(n)->keys.size() < min_keys_;
    }
    return static_cast<const BTreeKV::Inner*>(n)->keys.size() < min_keys_;
  }

  // How many keys a sibling can spare.
  static std::size_t KeyCount(const BTreeKV::Node* n) noexcept {
    return n->is_leaf ? static_cast<const BTreeKV::Leaf*>(n)->keys.size()
                      : static_cast<const BTreeKV::Inner*>(n)->keys.size();
  }

  void FixChild(BTreeKV::Inner* parent, std::size_t idx) {
    const bool has_left = idx > 0;
    const bool has_right = idx + 1 < parent->children.size();
    if (has_left && KeyCount(parent->children[idx - 1].get()) > min_keys_) {
      BorrowFromLeft(parent, idx);
    } else if (has_right &&
               KeyCount(parent->children[idx + 1].get()) > min_keys_) {
      BorrowFromRight(parent, idx);
    } else if (has_left) {
      MergeChildren(parent, idx - 1);
    } else {
      MergeChildren(parent, idx);
    }
  }

  void BorrowFromLeft(BTreeKV::Inner* parent, std::size_t idx) {
    BTreeKV::Node* cn = parent->children[idx].get();
    BTreeKV::Node* ln = parent->children[idx - 1].get();
    if (cn->is_leaf) {
      auto* c = static_cast<BTreeKV::Leaf*>(cn);
      auto* l = static_cast<BTreeKV::Leaf*>(ln);
      c->keys.insert(c->keys.begin(), std::move(l->keys.back()));
      c->vals.insert(c->vals.begin(), std::move(l->vals.back()));
      l->keys.pop_back();
      l->vals.pop_back();
      parent->keys[idx - 1] = c->keys.front();
    } else {
      auto* c = static_cast<BTreeKV::Inner*>(cn);
      auto* l = static_cast<BTreeKV::Inner*>(ln);
      c->keys.insert(c->keys.begin(), std::move(parent->keys[idx - 1]));
      parent->keys[idx - 1] = std::move(l->keys.back());
      l->keys.pop_back();
      c->children.insert(c->children.begin(), std::move(l->children.back()));
      l->children.pop_back();
    }
  }

  void BorrowFromRight(BTreeKV::Inner* parent, std::size_t idx) {
    BTreeKV::Node* cn = parent->children[idx].get();
    BTreeKV::Node* rn = parent->children[idx + 1].get();
    if (cn->is_leaf) {
      auto* c = static_cast<BTreeKV::Leaf*>(cn);
      auto* r = static_cast<BTreeKV::Leaf*>(rn);
      c->keys.push_back(std::move(r->keys.front()));
      c->vals.push_back(std::move(r->vals.front()));
      r->keys.erase(r->keys.begin());
      r->vals.erase(r->vals.begin());
      parent->keys[idx] = r->keys.front();
    } else {
      auto* c = static_cast<BTreeKV::Inner*>(cn);
      auto* r = static_cast<BTreeKV::Inner*>(rn);
      c->keys.push_back(std::move(parent->keys[idx]));
      parent->keys[idx] = std::move(r->keys.front());
      r->keys.erase(r->keys.begin());
      c->children.push_back(std::move(r->children.front()));
      r->children.erase(r->children.begin());
    }
  }

  // Merge children[i] and children[i+1] into children[i].
  void MergeChildren(BTreeKV::Inner* parent, std::size_t i) {
    BTreeKV::Node* ln = parent->children[i].get();
    if (ln->is_leaf) {
      auto* l = static_cast<BTreeKV::Leaf*>(ln);
      auto* r = static_cast<BTreeKV::Leaf*>(parent->children[i + 1].get());
      l->keys.insert(l->keys.end(), std::make_move_iterator(r->keys.begin()),
                     std::make_move_iterator(r->keys.end()));
      l->vals.insert(l->vals.end(), std::make_move_iterator(r->vals.begin()),
                     std::make_move_iterator(r->vals.end()));
      l->next = r->next;
      if (r->next != nullptr) r->next->prev = l;
    } else {
      auto* l = static_cast<BTreeKV::Inner*>(ln);
      auto* r = static_cast<BTreeKV::Inner*>(parent->children[i + 1].get());
      l->keys.push_back(std::move(parent->keys[i]));
      l->keys.insert(l->keys.end(), std::make_move_iterator(r->keys.begin()),
                     std::make_move_iterator(r->keys.end()));
      l->children.insert(l->children.end(),
                         std::make_move_iterator(r->children.begin()),
                         std::make_move_iterator(r->children.end()));
    }
    parent->keys.erase(parent->keys.begin() + static_cast<std::ptrdiff_t>(i));
    parent->children.erase(parent->children.begin() +
                           static_cast<std::ptrdiff_t>(i) + 1);
  }

  std::size_t min_keys_;
  std::string_view key_;
};

}  // namespace

bool BTreeKV::EraseNoLog(std::string_view key) {
  Eraser eraser(min_keys_, key);
  const bool erased = eraser.Visit(root_.get());
  if (!erased) return false;
  --size_;
  // Shrink the root if an inner root lost all separators.
  if (!root_->is_leaf) {
    auto* inner = static_cast<Inner*>(root_.get());
    if (inner->children.size() == 1) {
      root_ = std::move(inner->children.front());
    }
  }
  return true;
}

Status BTreeKV::Put(std::string_view key, std::string_view value) {
  stats_.puts += 1;
  stats_.bytes_written += key.size() + value.size();
  InsertNoLog(key, value);
  return LogAppend(walrec::EncodePut(key, value));
}

Status BTreeKV::Get(std::string_view key, std::string* value) const {
  stats_.gets += 1;
  std::string* v = FindValue(key);
  if (v == nullptr) return ErrStatus(ErrCode::kNotFound);
  value->assign(*v);
  stats_.bytes_read += v->size();
  return OkStatus();
}

Status BTreeKV::Delete(std::string_view key) {
  stats_.deletes += 1;
  if (!EraseNoLog(key)) return ErrStatus(ErrCode::kNotFound);
  return LogAppend(walrec::EncodeDelete(key));
}

bool BTreeKV::Contains(std::string_view key) const {
  stats_.gets += 1;
  return FindValue(key) != nullptr;
}

Status BTreeKV::PatchValue(std::string_view key, std::size_t offset,
                           std::string_view patch) {
  stats_.patches += 1;
  std::string* v = FindValue(key);
  if (v == nullptr) return ErrStatus(ErrCode::kNotFound);
  if (offset + patch.size() > v->size()) {
    return ErrStatus(ErrCode::kInvalid, "patch out of range");
  }
  v->replace(offset, patch.size(), patch);
  stats_.bytes_written += patch.size();
  return LogAppend(walrec::EncodePatch(key, offset, patch));
}

Status BTreeKV::ReadValueAt(std::string_view key, std::size_t offset,
                            std::size_t len, std::string* out) const {
  stats_.gets += 1;
  std::string* v = FindValue(key);
  if (v == nullptr) return ErrStatus(ErrCode::kNotFound);
  if (offset + len > v->size()) {
    return ErrStatus(ErrCode::kInvalid, "read out of range");
  }
  out->assign(*v, offset, len);
  stats_.bytes_read += len;
  return OkStatus();
}

Status BTreeKV::ScanRange(std::string_view lo, std::string_view hi,
                          std::size_t limit, std::vector<Entry>* out) const {
  stats_.scans += 1;
  Leaf* leaf = FindLeaf(lo);
  std::size_t pos = static_cast<std::size_t>(
      std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo) -
      leaf->keys.begin());
  while (leaf != nullptr) {
    for (; pos < leaf->keys.size(); ++pos) {
      const std::string& k = leaf->keys[pos];
      if (!hi.empty() && k >= hi) return OkStatus();
      stats_.scan_items += 1;
      out->emplace_back(k, leaf->vals[pos]);
      stats_.bytes_read += leaf->vals[pos].size();
      if (limit != 0 && out->size() >= limit) return OkStatus();
    }
    leaf = leaf->next;
    pos = 0;
  }
  return OkStatus();
}

Status BTreeKV::ScanPrefix(std::string_view prefix, std::size_t limit,
                           std::vector<Entry>* out) const {
  return ScanRange(prefix, PrefixUpperBound(prefix), limit, out);
}

void BTreeKV::ForEach(
    const std::function<bool(std::string_view, std::string_view)>& fn) const {
  stats_.scans += 1;
  // Walk to the leftmost leaf, then follow the chain.
  Node* n = root_.get();
  while (!n->is_leaf) n = static_cast<Inner*>(n)->children.front().get();
  for (Leaf* leaf = static_cast<Leaf*>(n); leaf != nullptr; leaf = leaf->next) {
    for (std::size_t i = 0; i < leaf->keys.size(); ++i) {
      stats_.scan_items += 1;
      if (!fn(leaf->keys[i], leaf->vals[i])) return;
    }
  }
}

std::size_t BTreeKV::Height() const noexcept {
  std::size_t h = 1;
  const Node* n = root_.get();
  while (!n->is_leaf) {
    n = static_cast<const Inner*>(n)->children.front().get();
    ++h;
  }
  return h;
}

namespace {

struct CheckContext {
  std::size_t max_keys;
  std::size_t min_keys;
  bool ok = true;
  int leaf_depth = -1;
  const BTreeKV::Leaf* prev_leaf = nullptr;
  std::string prev_key;
  bool have_prev_key = false;
};

void CheckNode(const BTreeKV::Node* n, int depth, const std::string* lo,
               const std::string* hi, bool is_root, CheckContext* ctx) {
  if (!ctx->ok) return;
  if (n->is_leaf) {
    const auto* leaf = static_cast<const BTreeKV::Leaf*>(n);
    if (ctx->leaf_depth == -1) ctx->leaf_depth = depth;
    if (depth != ctx->leaf_depth) { ctx->ok = false; return; }
    if (!is_root && leaf->keys.size() < ctx->min_keys) { ctx->ok = false; return; }
    if (leaf->keys.size() > ctx->max_keys ||
        leaf->keys.size() != leaf->vals.size()) { ctx->ok = false; return; }
    if (leaf->prev != ctx->prev_leaf) { ctx->ok = false; return; }
    if (ctx->prev_leaf != nullptr && ctx->prev_leaf->next != leaf) {
      ctx->ok = false;
      return;
    }
    ctx->prev_leaf = leaf;
    for (const std::string& k : leaf->keys) {
      if (ctx->have_prev_key && !(ctx->prev_key < k)) { ctx->ok = false; return; }
      if (lo != nullptr && k < *lo) { ctx->ok = false; return; }
      if (hi != nullptr && !(k < *hi)) { ctx->ok = false; return; }
      ctx->prev_key = k;
      ctx->have_prev_key = true;
    }
    return;
  }
  const auto* inner = static_cast<const BTreeKV::Inner*>(n);
  if (inner->children.size() != inner->keys.size() + 1) { ctx->ok = false; return; }
  if (!is_root && inner->keys.size() < ctx->min_keys) { ctx->ok = false; return; }
  if (inner->keys.size() > ctx->max_keys) { ctx->ok = false; return; }
  if (is_root && inner->children.size() < 2) { ctx->ok = false; return; }
  if (!std::is_sorted(inner->keys.begin(), inner->keys.end())) {
    ctx->ok = false;
    return;
  }
  for (std::size_t i = 0; i < inner->children.size(); ++i) {
    const std::string* child_lo = (i == 0) ? lo : &inner->keys[i - 1];
    const std::string* child_hi = (i == inner->keys.size()) ? hi : &inner->keys[i];
    CheckNode(inner->children[i].get(), depth + 1, child_lo, child_hi, false, ctx);
  }
}

}  // namespace

bool BTreeKV::CheckInvariants() const {
  CheckContext ctx;
  ctx.max_keys = max_keys_;
  ctx.min_keys = min_keys_;
  CheckNode(root_.get(), 0, nullptr, nullptr, true, &ctx);
  if (!ctx.ok) return false;
  // The rightmost visited leaf must terminate the chain.
  if (ctx.prev_leaf != nullptr && ctx.prev_leaf->next != nullptr) return false;
  // Entry count must agree.
  std::size_t counted = 0;
  const Node* n = root_.get();
  while (!n->is_leaf) n = static_cast<const Inner*>(n)->children.front().get();
  for (const Leaf* leaf = static_cast<const Leaf*>(n); leaf != nullptr;
       leaf = leaf->next) {
    counted += leaf->keys.size();
  }
  return counted == size_;
}

}  // namespace loco::kv
