// HashKV: robin-hood open-addressing hash table with optional WAL
// persistence.  Stand-in for Kyoto Cabinet's hash-DB mode: O(1) point ops,
// no key order, so prefix scans degrade to a full table walk — exactly the
// behaviour Fig. 14 contrasts with the B+-tree mode.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kvstore/kv.h"
#include "kvstore/wal.h"

namespace loco::kv {

class HashKV final : public Kv {
 public:
  explicit HashKV(const KvOptions& options = {});
  ~HashKV() override = default;

  // Recover from an existing WAL (if options.dir was set) and open it for
  // appending.  Must be called once before use when persistence is enabled.
  Status Open();

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  bool Contains(std::string_view key) const override;
  Status PatchValue(std::string_view key, std::size_t offset,
                    std::string_view patch) override;
  Status ReadValueAt(std::string_view key, std::size_t offset, std::size_t len,
                     std::string* out) const override;
  std::size_t Size() const override { return size_; }
  Status ScanPrefix(std::string_view prefix, std::size_t limit,
                    std::vector<Entry>* out) const override;
  void ForEach(const std::function<bool(std::string_view, std::string_view)>& fn)
      const override;
  bool Ordered() const noexcept override { return false; }

  // Current bucket-array capacity (exposed for tests).
  std::size_t Capacity() const noexcept { return slots_.size(); }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    bool used = false;
    std::string key;
    std::string value;
  };

  // Mutating primitives shared by the public ops and WAL replay.
  void InsertNoLog(std::string_view key, std::string_view value);
  bool EraseNoLog(std::string_view key);
  Slot* Find(std::string_view key) noexcept;
  const Slot* Find(std::string_view key) const noexcept;

  void Rehash(std::size_t new_capacity);
  std::size_t ProbeDistance(std::size_t slot_index, std::uint64_t hash) const noexcept;

  Status LogPut(std::string_view key, std::string_view value);
  Status LogDelete(std::string_view key);
  Status LogPatch(std::string_view key, std::size_t offset, std::string_view patch);

  KvOptions options_;
  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  Wal wal_;
  bool replaying_ = false;
};

}  // namespace loco::kv
