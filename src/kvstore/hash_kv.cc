#include "kvstore/hash_kv.h"

#include <cassert>
#include <utility>

#include "common/codec.h"
#include "common/hash.h"

namespace loco::kv {

namespace {
constexpr std::size_t kInitialCapacity = 64;
constexpr double kMaxLoad = 0.70;

// WAL record tags.
constexpr std::uint8_t kOpPut = 1;
constexpr std::uint8_t kOpDelete = 2;
constexpr std::uint8_t kOpPatch = 3;

std::uint64_t KeyHash(std::string_view key) noexcept {
  // Never zero/used as "empty" marker; Mix64 of FNV avoids clustering.
  return common::Mix64(common::Fnv1a64(key)) | 1;
}
}  // namespace

HashKV::HashKV(const KvOptions& options) : options_(options) {
  slots_.resize(kInitialCapacity);
}

Status HashKV::Open() {
  if (options_.dir.empty()) return OkStatus();
  const std::string path = options_.dir + "/hashkv.wal";
  replaying_ = true;
  auto replayed = Wal::Replay(path, [this](std::string_view rec) {
    common::Reader r(rec);
    const std::uint8_t op = r.GetU8();
    if (op == kOpPut) {
      std::string_view key = r.GetBytes();
      std::string_view value = r.GetBytes();
      if (r.ok()) InsertNoLog(key, value);
    } else if (op == kOpDelete) {
      std::string_view key = r.GetBytes();
      if (r.ok()) EraseNoLog(key);
    } else if (op == kOpPatch) {
      std::string_view key = r.GetBytes();
      const std::uint64_t off = r.GetU64();
      std::string_view patch = r.GetBytes();
      if (r.ok()) {
        if (Slot* s = Find(key);
            s != nullptr && off + patch.size() <= s->value.size()) {
          s->value.replace(static_cast<std::size_t>(off), patch.size(), patch);
        }
      }
    }
  });
  replaying_ = false;
  if (!replayed.ok()) return replayed.status();
  return wal_.Open(path, options_.sync_writes);
}

std::size_t HashKV::ProbeDistance(std::size_t slot_index,
                                  std::uint64_t hash) const noexcept {
  const std::size_t mask = slots_.size() - 1;
  const std::size_t home = static_cast<std::size_t>(hash) & mask;
  return (slot_index - home) & mask;
}

void HashKV::Rehash(std::size_t new_capacity) {
  std::vector<Slot> old = std::move(slots_);
  slots_.clear();
  slots_.resize(new_capacity);
  size_ = 0;
  for (Slot& s : old) {
    if (s.used) InsertNoLog(s.key, s.value);
  }
}

void HashKV::InsertNoLog(std::string_view key, std::string_view value) {
  if (static_cast<double>(size_ + 1) >
      kMaxLoad * static_cast<double>(slots_.size())) {
    Rehash(slots_.size() * 2);
  }
  const std::size_t mask = slots_.size() - 1;
  Slot incoming;
  incoming.hash = KeyHash(key);
  incoming.used = true;
  incoming.key.assign(key);
  incoming.value.assign(value);

  std::size_t idx = static_cast<std::size_t>(incoming.hash) & mask;
  std::size_t dist = 0;
  for (;;) {
    Slot& s = slots_[idx];
    if (!s.used) {
      s = std::move(incoming);
      ++size_;
      return;
    }
    if (s.hash == incoming.hash && s.key == incoming.key) {
      s.value = std::move(incoming.value);  // overwrite existing
      return;
    }
    const std::size_t their_dist = ProbeDistance(idx, s.hash);
    if (their_dist < dist) {  // robin hood: steal from the rich
      std::swap(s, incoming);
      dist = their_dist;
    }
    idx = (idx + 1) & mask;
    ++dist;
  }
}

bool HashKV::EraseNoLog(std::string_view key) {
  const std::uint64_t hash = KeyHash(key);
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = static_cast<std::size_t>(hash) & mask;
  std::size_t dist = 0;
  for (;;) {
    Slot& s = slots_[idx];
    if (!s.used || dist > ProbeDistance(idx, s.hash)) return false;
    if (s.hash == hash && s.key == key) break;
    idx = (idx + 1) & mask;
    ++dist;
  }
  // Backward-shift deletion keeps probe chains dense.
  std::size_t hole = idx;
  for (;;) {
    const std::size_t next = (hole + 1) & mask;
    Slot& n = slots_[next];
    if (!n.used || ProbeDistance(next, n.hash) == 0) break;
    slots_[hole] = std::move(n);
    n.used = false;
    n.key.clear();
    n.value.clear();
    hole = next;
  }
  slots_[hole].used = false;
  slots_[hole].key.clear();
  slots_[hole].value.clear();
  --size_;
  return true;
}

HashKV::Slot* HashKV::Find(std::string_view key) noexcept {
  return const_cast<Slot*>(std::as_const(*this).Find(key));
}

const HashKV::Slot* HashKV::Find(std::string_view key) const noexcept {
  const std::uint64_t hash = KeyHash(key);
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = static_cast<std::size_t>(hash) & mask;
  std::size_t dist = 0;
  for (;;) {
    const Slot& s = slots_[idx];
    if (!s.used || dist > ProbeDistance(idx, s.hash)) return nullptr;
    if (s.hash == hash && s.key == key) return &s;
    idx = (idx + 1) & mask;
    ++dist;
  }
}

Status HashKV::LogPut(std::string_view key, std::string_view value) {
  if (!wal_.IsOpen() || replaying_) return OkStatus();
  common::Writer w;
  w.PutU8(kOpPut);
  w.PutBytes(key);
  w.PutBytes(value);
  stats_.io_ops += 1;
  stats_.io_bytes += w.size();
  return wal_.Append(w.str());
}

Status HashKV::LogDelete(std::string_view key) {
  if (!wal_.IsOpen() || replaying_) return OkStatus();
  common::Writer w;
  w.PutU8(kOpDelete);
  w.PutBytes(key);
  stats_.io_ops += 1;
  stats_.io_bytes += w.size();
  return wal_.Append(w.str());
}

Status HashKV::LogPatch(std::string_view key, std::size_t offset,
                        std::string_view patch) {
  if (!wal_.IsOpen() || replaying_) return OkStatus();
  common::Writer w;
  w.PutU8(kOpPatch);
  w.PutBytes(key);
  w.PutU64(offset);
  w.PutBytes(patch);
  stats_.io_ops += 1;
  stats_.io_bytes += w.size();
  return wal_.Append(w.str());
}

Status HashKV::Put(std::string_view key, std::string_view value) {
  stats_.puts += 1;
  stats_.bytes_written += key.size() + value.size();
  InsertNoLog(key, value);
  return LogPut(key, value);
}

Status HashKV::Get(std::string_view key, std::string* value) const {
  stats_.gets += 1;
  const Slot* s = Find(key);
  if (s == nullptr) return ErrStatus(ErrCode::kNotFound);
  value->assign(s->value);
  stats_.bytes_read += s->value.size();
  return OkStatus();
}

Status HashKV::Delete(std::string_view key) {
  stats_.deletes += 1;
  if (!EraseNoLog(key)) return ErrStatus(ErrCode::kNotFound);
  return LogDelete(key);
}

bool HashKV::Contains(std::string_view key) const {
  stats_.gets += 1;
  return Find(key) != nullptr;
}

Status HashKV::PatchValue(std::string_view key, std::size_t offset,
                          std::string_view patch) {
  stats_.patches += 1;
  Slot* s = Find(key);
  if (s == nullptr) return ErrStatus(ErrCode::kNotFound);
  if (offset + patch.size() > s->value.size()) {
    return ErrStatus(ErrCode::kInvalid, "patch out of range");
  }
  s->value.replace(offset, patch.size(), patch);
  stats_.bytes_written += patch.size();
  return LogPatch(key, offset, patch);
}

Status HashKV::ReadValueAt(std::string_view key, std::size_t offset,
                           std::size_t len, std::string* out) const {
  stats_.gets += 1;
  const Slot* s = Find(key);
  if (s == nullptr) return ErrStatus(ErrCode::kNotFound);
  if (offset + len > s->value.size()) {
    return ErrStatus(ErrCode::kInvalid, "read out of range");
  }
  out->assign(s->value, offset, len);
  stats_.bytes_read += len;
  return OkStatus();
}

Status HashKV::ScanPrefix(std::string_view prefix, std::size_t limit,
                          std::vector<Entry>* out) const {
  stats_.scans += 1;
  // Hash mode has no key order: every record must be visited (the cost the
  // paper's Fig. 14 attributes to "hash DB" renames).
  for (const Slot& s : slots_) {
    if (!s.used) continue;
    stats_.scan_items += 1;
    if (s.key.size() >= prefix.size() &&
        std::string_view(s.key).substr(0, prefix.size()) == prefix) {
      out->emplace_back(s.key, s.value);
      stats_.bytes_read += s.value.size();
      if (limit != 0 && out->size() >= limit) break;
    }
  }
  return OkStatus();
}

void HashKV::ForEach(
    const std::function<bool(std::string_view, std::string_view)>& fn) const {
  stats_.scans += 1;
  for (const Slot& s : slots_) {
    if (!s.used) continue;
    stats_.scan_items += 1;
    if (!fn(s.key, s.value)) return;
  }
}

}  // namespace loco::kv
