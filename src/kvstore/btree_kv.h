// BTreeKV: in-memory B+ tree with optional WAL persistence.
//
// Stand-in for Kyoto Cabinet's tree-DB mode.  Keys are kept in lexicographic
// order with linked leaves, so ScanPrefix / ScanRange cost O(log n + k); this
// ordered layout is what makes LocoFS's directory-rename optimization
// (§3.4.3) a contiguous range move instead of a full scan.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kvstore/kv.h"
#include "kvstore/wal.h"

namespace loco::kv {

class BTreeKV final : public Kv {
 public:
  explicit BTreeKV(const KvOptions& options = {});
  ~BTreeKV() override;

  // Recover from WAL (if options.dir set) and open it for appending.
  Status Open();

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  bool Contains(std::string_view key) const override;
  Status PatchValue(std::string_view key, std::size_t offset,
                    std::string_view patch) override;
  Status ReadValueAt(std::string_view key, std::size_t offset, std::size_t len,
                     std::string* out) const override;
  std::size_t Size() const override { return size_; }
  Status ScanPrefix(std::string_view prefix, std::size_t limit,
                    std::vector<Entry>* out) const override;
  void ForEach(const std::function<bool(std::string_view, std::string_view)>& fn)
      const override;
  bool Ordered() const noexcept override { return true; }

  // Entries with lo <= key < hi, in order.  Empty hi = unbounded.
  Status ScanRange(std::string_view lo, std::string_view hi, std::size_t limit,
                   std::vector<Entry>* out) const;

  // Height of the tree (1 = a single leaf); exposed for tests.
  std::size_t Height() const noexcept;

  // Validate every B+-tree invariant (ordering, fanout, uniform leaf depth,
  // leaf-chain consistency).  Test hook; returns false on any violation.
  bool CheckInvariants() const;

  // Node types are implementation details; they are declared here (and
  // defined in the .cc) so file-local helper code can name them.
  struct Node;
  struct Leaf;
  struct Inner;

 private:
  Leaf* FindLeaf(std::string_view key) const noexcept;
  // Returns true if the tree grew via a root split.
  void InsertNoLog(std::string_view key, std::string_view value);
  bool EraseNoLog(std::string_view key);
  std::string* FindValue(std::string_view key) const noexcept;

  Status LogAppend(std::string record);

  KvOptions options_;
  std::size_t max_keys_;  // order: max keys per node
  std::size_t min_keys_;  // floor(order / 2)
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  Wal wal_;
  bool replaying_ = false;
};

}  // namespace loco::kv
