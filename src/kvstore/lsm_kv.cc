#include "kvstore/lsm_kv.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/codec.h"
#include "common/hash.h"
#include "kvstore/wal_records.h"

namespace loco::kv {

namespace fsys = std::filesystem;

void BloomFilter::Build(const std::vector<std::string>& keys) {
  nbits_ = std::max<std::size_t>(64, keys.size() * 10);
  bits_.assign((nbits_ + 63) / 64, 0);
  for (const std::string& k : keys) {
    const std::uint64_t h1 = common::Fnv1a64(k);
    const std::uint64_t h2 = common::WyMix(k, 0x5107a);
    for (int i = 0; i < 6; ++i) {
      const std::size_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) % nbits_;
      bits_[bit >> 6] |= 1ULL << (bit & 63);
    }
  }
}

bool BloomFilter::MayContain(std::string_view key) const noexcept {
  if (nbits_ == 0) return false;
  const std::uint64_t h1 = common::Fnv1a64(key);
  const std::uint64_t h2 = common::WyMix(key, 0x5107a);
  for (int i = 0; i < 6; ++i) {
    const std::size_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) % nbits_;
    if ((bits_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

LsmKV::LsmKV(const KvOptions& options) : options_(options) {}

std::string LsmKV::RunPath(std::uint64_t seq) const {
  char name[64];
  std::snprintf(name, sizeof(name), "/run_%08llu.sst",
                static_cast<unsigned long long>(seq));
  return options_.dir + name;
}

Status LsmKV::Open() {
  if (options_.dir.empty()) return OkStatus();
  LOCO_RETURN_IF_ERROR(LoadRuns());
  const std::string path = options_.dir + "/lsmkv.wal";
  replaying_ = true;
  auto replayed = Wal::Replay(path, [this](std::string_view rec) {
    common::Reader r(rec);
    const std::uint8_t op = r.GetU8();
    if (op == walrec::kOpPut) {
      std::string_view key = r.GetBytes();
      std::string_view value = r.GetBytes();
      if (r.ok()) (void)Write(key, value);
    } else if (op == walrec::kOpDelete) {
      std::string_view key = r.GetBytes();
      if (r.ok()) (void)Write(key, std::nullopt);
    }
  });
  replaying_ = false;
  if (!replayed.ok()) return replayed.status();
  return wal_.Open(path, options_.sync_writes);
}

Status LsmKV::LoadRuns() {
  std::error_code ec;
  if (!fsys::exists(options_.dir, ec)) return OkStatus();
  std::vector<fsys::path> files;
  for (const auto& entry : fsys::directory_iterator(options_.dir, ec)) {
    if (entry.path().extension() == ".sst") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());  // run_%08u sorts by sequence
  for (const auto& path : files) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return ErrStatus(ErrCode::kIo, "cannot open " + path.string());
    std::fseek(f, 0, SEEK_END);
    const long len = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::string blob(static_cast<std::size_t>(len), '\0');
    if (std::fread(blob.data(), 1, blob.size(), f) != blob.size()) {
      std::fclose(f);
      return ErrStatus(ErrCode::kIo, "short read " + path.string());
    }
    std::fclose(f);
    common::Reader r(blob);
    Run run;
    const std::uint32_t count = r.GetU32();
    run.keys.reserve(count);
    run.vals.reserve(count);
    for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
      const bool tombstone = r.GetU8() != 0;
      std::string key(r.GetBytes());
      if (tombstone) {
        run.vals.emplace_back(std::nullopt);
      } else {
        run.vals.emplace_back(std::string(r.GetBytes()));
      }
      run.keys.push_back(std::move(key));
    }
    if (!r.ok()) return ErrStatus(ErrCode::kCorruption, path.string());
    run.bloom.Build(run.keys);
    // Recover the sequence number from the file name.
    const std::string stem = path.stem().string();  // "run_%08u"
    run.seq = std::strtoull(stem.c_str() + 4, nullptr, 10);
    next_seq_ = std::max(next_seq_, run.seq + 1);
    runs_.push_back(std::move(run));
  }
  return OkStatus();
}

Status LsmKV::PersistRun(const Run& run) {
  // Runs are serialized (and the traffic accounted) regardless of the
  // persistence mode — see the note in Write().
  common::Writer w;
  w.PutU32(static_cast<std::uint32_t>(run.keys.size()));
  for (std::size_t i = 0; i < run.keys.size(); ++i) {
    w.PutU8(run.vals[i].has_value() ? 0 : 1);
    w.PutBytes(run.keys[i]);
    if (run.vals[i].has_value()) w.PutBytes(*run.vals[i]);
  }
  if (options_.dir.empty()) {
    stats_.io_ops += 1;
    stats_.io_bytes += w.size();
    return OkStatus();
  }
  const std::string path = RunPath(run.seq);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return ErrStatus(ErrCode::kIo, "cannot create " + path);
  const bool write_ok = std::fwrite(w.str().data(), 1, w.size(), f) == w.size();
  std::fclose(f);
  if (!write_ok) return ErrStatus(ErrCode::kIo, "short write " + path);
  stats_.io_ops += 1;
  stats_.io_bytes += w.size();
  return OkStatus();
}

Status LsmKV::Write(std::string_view key, std::optional<std::string_view> value) {
  if (!replaying_) {
    // The WAL record is encoded (and accounted) even in memory-only mode:
    // an LSM pays this serialization and log traffic on every write, which
    // is exactly the cost profile the IndexFS baseline models.
    const std::string rec = value.has_value() ? walrec::EncodePut(key, *value)
                                              : walrec::EncodeDelete(key);
    stats_.io_ops += 1;
    stats_.io_bytes += rec.size() + 8;
    if (wal_.IsOpen()) LOCO_RETURN_IF_ERROR(wal_.Append(rec));
  }
  auto [it, inserted] = memtable_.try_emplace(std::string(key));
  if (!inserted) {
    memtable_bytes_ -= it->second.has_value() ? it->second->size() : 0;
  } else {
    memtable_bytes_ += key.size();
  }
  if (value.has_value()) {
    it->second = std::string(*value);
    memtable_bytes_ += value->size();
  } else {
    it->second = std::nullopt;
  }
  return MaybeFlush();
}

Status LsmKV::MaybeFlush() {
  if (memtable_bytes_ < options_.memtable_bytes) return OkStatus();
  return Flush();
}

Status LsmKV::Flush() {
  if (memtable_.empty()) return OkStatus();
  Run run;
  run.seq = next_seq_++;
  run.keys.reserve(memtable_.size());
  run.vals.reserve(memtable_.size());
  for (auto& [k, v] : memtable_) {
    run.keys.push_back(k);
    run.vals.push_back(std::move(v));
  }
  run.bloom.Build(run.keys);
  LOCO_RETURN_IF_ERROR(PersistRun(run));
  runs_.push_back(std::move(run));
  memtable_.clear();
  memtable_bytes_ = 0;
  if (wal_.IsOpen() && !replaying_) LOCO_RETURN_IF_ERROR(wal_.Truncate());
  if (runs_.size() > options_.max_runs) return Compact();
  return OkStatus();
}

Status LsmKV::Compact() {
  // Full merge: newest-wins across all runs, tombstones dropped (nothing
  // older remains to resurrect).
  std::map<std::string, std::optional<std::string>> merged;
  for (Run& run : runs_) {
    stats_.io_ops += 1;  // compaction reads each run back
    for (std::size_t i = 0; i < run.keys.size(); ++i) {
      stats_.io_bytes +=
          run.keys[i].size() + (run.vals[i] ? run.vals[i]->size() : 0);
      merged[std::move(run.keys[i])] = std::move(run.vals[i]);
    }
  }
  std::vector<std::uint64_t> old_seqs;
  old_seqs.reserve(runs_.size());
  for (const Run& run : runs_) old_seqs.push_back(run.seq);
  runs_.clear();

  Run out;
  out.seq = next_seq_++;
  for (auto& [k, v] : merged) {
    if (!v.has_value()) continue;  // drop tombstones
    out.keys.push_back(k);
    out.vals.push_back(std::move(v));
  }
  out.bloom.Build(out.keys);
  LOCO_RETURN_IF_ERROR(PersistRun(out));
  runs_.push_back(std::move(out));
  if (!options_.dir.empty()) {
    for (std::uint64_t seq : old_seqs) {
      std::error_code ec;
      fsys::remove(RunPath(seq), ec);
    }
  }
  return OkStatus();
}

Status LsmKV::Put(std::string_view key, std::string_view value) {
  stats_.puts += 1;
  stats_.bytes_written += key.size() + value.size();
  return Write(key, value);
}

Status LsmKV::Get(std::string_view key, std::string* value) const {
  stats_.gets += 1;
  if (const auto it = memtable_.find(std::string(key)); it != memtable_.end()) {
    if (!it->second.has_value()) return ErrStatus(ErrCode::kNotFound);
    *value = *it->second;
    stats_.bytes_read += value->size();
    return OkStatus();
  }
  for (auto run = runs_.rbegin(); run != runs_.rend(); ++run) {
    if (!run->bloom.MayContain(key)) continue;
    const auto it = std::lower_bound(run->keys.begin(), run->keys.end(), key);
    if (it == run->keys.end() || *it != key) continue;
    const std::size_t pos = static_cast<std::size_t>(it - run->keys.begin());
    if (!run->vals[pos].has_value()) return ErrStatus(ErrCode::kNotFound);
    *value = *run->vals[pos];
    stats_.bytes_read += value->size();
    return OkStatus();
  }
  return ErrStatus(ErrCode::kNotFound);
}

Status LsmKV::Delete(std::string_view key) {
  stats_.deletes += 1;
  // LSM deletes are blind tombstone writes; report kNotFound only if a read
  // confirms absence (callers in the FS layer rely on the error).
  std::string tmp;
  const bool existed = Get(key, &tmp).ok();
  stats_.gets -= 1;  // internal existence probe, not a caller-visible get
  LOCO_RETURN_IF_ERROR(Write(key, std::nullopt));
  return existed ? OkStatus() : ErrStatus(ErrCode::kNotFound);
}

std::size_t LsmKV::Size() const {
  std::map<std::string, std::optional<std::string>> merged;
  MergedView({}, {}, &merged);
  std::size_t n = 0;
  for (const auto& [k, v] : merged) {
    (void)k;
    if (v.has_value()) ++n;
  }
  return n;
}

void LsmKV::MergedView(
    std::string_view lo, std::string_view hi,
    std::map<std::string, std::optional<std::string>>* out) const {
  auto in_range = [&](const std::string& k) {
    return (lo.empty() || k >= lo) && (hi.empty() || k < hi);
  };
  for (const Run& run : runs_) {  // oldest first; later inserts overwrite
    auto it = lo.empty() ? run.keys.begin()
                         : std::lower_bound(run.keys.begin(), run.keys.end(), lo);
    for (; it != run.keys.end(); ++it) {
      if (!hi.empty() && *it >= hi) break;
      const std::size_t pos = static_cast<std::size_t>(it - run.keys.begin());
      (*out)[*it] = run.vals[pos];
    }
  }
  auto it = lo.empty() ? memtable_.begin()
                       : memtable_.lower_bound(std::string(lo));
  for (; it != memtable_.end(); ++it) {
    if (!in_range(it->first)) break;
    (*out)[it->first] = it->second;
  }
}

Status LsmKV::ScanPrefix(std::string_view prefix, std::size_t limit,
                         std::vector<Entry>* out) const {
  stats_.scans += 1;
  std::string hi(prefix);
  while (!hi.empty() && static_cast<unsigned char>(hi.back()) == 0xff) hi.pop_back();
  if (!hi.empty()) hi.back() = static_cast<char>(hi.back() + 1);
  std::map<std::string, std::optional<std::string>> merged;
  MergedView(prefix, hi, &merged);
  for (auto& [k, v] : merged) {
    if (!v.has_value()) continue;
    stats_.scan_items += 1;
    stats_.bytes_read += v->size();
    out->emplace_back(k, std::move(*v));
    if (limit != 0 && out->size() >= limit) break;
  }
  return OkStatus();
}

void LsmKV::ForEach(
    const std::function<bool(std::string_view, std::string_view)>& fn) const {
  stats_.scans += 1;
  std::map<std::string, std::optional<std::string>> merged;
  MergedView({}, {}, &merged);
  for (const auto& [k, v] : merged) {
    if (!v.has_value()) continue;
    stats_.scan_items += 1;
    if (!fn(k, *v)) return;
  }
}

}  // namespace loco::kv
