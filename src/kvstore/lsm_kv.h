// LsmKV: log-structured merge tree, the LevelDB stand-in behind the IndexFS
// baseline and the raw-KV reference lines of Fig. 1 / Fig. 9.
//
// Structure: an ordered memtable absorbing writes (backed by a WAL when
// persistence is enabled), flushed into immutable sorted runs guarded by
// bloom filters, with full-merge compaction once the run count exceeds
// KvOptions::max_runs.  Deletes are tombstones until compaction.
//
// Unlike HashKV / BTreeKV, values are immutable once written: PatchValue
// degrades to read-modify-write of the whole value — exactly the "large
// value update" penalty §3.3 of the paper attributes to LSM-backed inodes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kvstore/kv.h"
#include "kvstore/wal.h"

namespace loco::kv {

// Split-block bloom filter sized at ~10 bits/key.
class BloomFilter {
 public:
  void Build(const std::vector<std::string>& keys);
  bool MayContain(std::string_view key) const noexcept;
  std::size_t SizeBytes() const noexcept { return bits_.size() * 8; }

 private:
  std::vector<std::uint64_t> bits_;
  std::size_t nbits_ = 0;
};

class LsmKV final : public Kv {
 public:
  explicit LsmKV(const KvOptions& options = {});
  ~LsmKV() override = default;

  // Load persisted runs, replay the WAL into the memtable.
  Status Open();

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  std::size_t Size() const override;
  Status ScanPrefix(std::string_view prefix, std::size_t limit,
                    std::vector<Entry>* out) const override;
  void ForEach(const std::function<bool(std::string_view, std::string_view)>& fn)
      const override;
  bool Ordered() const noexcept override { return true; }

  // Force a memtable flush (tests / shutdown).
  Status Flush();

  std::size_t RunCount() const noexcept { return runs_.size(); }
  std::size_t MemtableBytes() const noexcept { return memtable_bytes_; }

 private:
  struct Run {
    std::uint64_t seq = 0;
    std::vector<std::string> keys;                 // sorted
    std::vector<std::optional<std::string>> vals;  // nullopt = tombstone
    BloomFilter bloom;
  };

  Status Write(std::string_view key, std::optional<std::string_view> value);
  Status MaybeFlush();
  Status Compact();
  Status PersistRun(const Run& run);
  Status LoadRuns();
  std::string RunPath(std::uint64_t seq) const;

  // Newest-wins merged view of [prefix-range or everything].
  void MergedView(std::string_view lo, std::string_view hi,
                  std::map<std::string, std::optional<std::string>>* out) const;

  KvOptions options_;
  std::map<std::string, std::optional<std::string>> memtable_;
  std::size_t memtable_bytes_ = 0;
  std::vector<Run> runs_;  // oldest first
  std::uint64_t next_seq_ = 1;
  Wal wal_;
  bool replaying_ = false;
};

}  // namespace loco::kv
