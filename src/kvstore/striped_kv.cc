#include "kvstore/striped_kv.h"

#include <algorithm>
#include <filesystem>

#include "common/hash.h"

namespace loco::kv {

namespace {

// Same hash + seed as HashRing::Locate (core/ring.cc): a key's stripe and
// its ring placement derive from one function.
constexpr std::uint64_t kRingSeed = 0xfeed;

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::size_t StripedKv::StripeOf(std::string_view key) const noexcept {
  return common::WyMix(key, kRingSeed) & (stripes_.size() - 1);
}

Status StripedKv::Put(std::string_view key, std::string_view value) {
  Stripe& s = *stripes_[StripeOf(key)];
  std::scoped_lock lock(s.mu);
  return s.kv->Put(key, value);
}

Status StripedKv::Get(std::string_view key, std::string* value) const {
  const Stripe& s = *stripes_[StripeOf(key)];
  std::scoped_lock lock(s.mu);
  return s.kv->Get(key, value);
}

Status StripedKv::Delete(std::string_view key) {
  Stripe& s = *stripes_[StripeOf(key)];
  std::scoped_lock lock(s.mu);
  return s.kv->Delete(key);
}

bool StripedKv::Contains(std::string_view key) const {
  const Stripe& s = *stripes_[StripeOf(key)];
  std::scoped_lock lock(s.mu);
  return s.kv->Contains(key);
}

Status StripedKv::PatchValue(std::string_view key, std::size_t offset,
                             std::string_view patch) {
  Stripe& s = *stripes_[StripeOf(key)];
  std::scoped_lock lock(s.mu);
  return s.kv->PatchValue(key, offset, patch);
}

Status StripedKv::ReadValueAt(std::string_view key, std::size_t offset,
                              std::size_t len, std::string* out) const {
  const Stripe& s = *stripes_[StripeOf(key)];
  std::scoped_lock lock(s.mu);
  return s.kv->ReadValueAt(key, offset, len, out);
}

std::size_t StripedKv::Size() const {
  std::size_t total = 0;
  for (const auto& s : stripes_) {
    std::scoped_lock lock(s->mu);
    total += s->kv->Size();
  }
  return total;
}

Status StripedKv::ScanPrefix(std::string_view prefix, std::size_t limit,
                             std::vector<Entry>* out) const {
  out->clear();
  for (const auto& s : stripes_) {
    std::vector<Entry> part;
    {
      std::scoped_lock lock(s->mu);
      // Each stripe may hold up to `limit` of the smallest matches.
      LOCO_RETURN_IF_ERROR(s->kv->ScanPrefix(prefix, limit, &part));
    }
    out->insert(out->end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
  if (ordered_) {
    std::sort(out->begin(), out->end(),
              [](const Entry& a, const Entry& b) { return a.first < b.first; });
  }
  if (limit != 0 && out->size() > limit) out->resize(limit);
  return OkStatus();
}

void StripedKv::ForEach(
    const std::function<bool(std::string_view, std::string_view)>& fn) const {
  bool stop = false;
  for (const auto& s : stripes_) {
    std::scoped_lock lock(s->mu);
    s->kv->ForEach([&](std::string_view key, std::string_view value) {
      if (!fn(key, value)) {
        stop = true;
        return false;
      }
      return true;
    });
    if (stop) return;
  }
}

KvStats StripedKv::stats() const noexcept {
  KvStats total;
  for (const auto& s : stripes_) {
    std::scoped_lock lock(s->mu);
    total = total + s->kv->stats();
  }
  return total;
}

void StripedKv::ResetStats() noexcept {
  for (const auto& s : stripes_) {
    std::scoped_lock lock(s->mu);
    s->kv->ResetStats();
  }
}

Result<std::unique_ptr<Kv>> MakeStripedKv(KvBackend backend,
                                          const KvOptions& options,
                                          std::size_t stripes) {
  const std::size_t n = RoundUpPow2(std::max<std::size_t>(stripes, 1));
  auto striped = std::unique_ptr<StripedKv>(new StripedKv);
  striped->stripes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    KvOptions stripe_opt = options;
    if (!options.dir.empty()) {
      stripe_opt.dir = options.dir + "/stripe" + std::to_string(i);
      std::error_code ec;
      std::filesystem::create_directories(stripe_opt.dir, ec);
    }
    auto inner = MakeKv(backend, stripe_opt);
    LOCO_RETURN_IF_ERROR(inner.status());
    auto stripe = std::make_unique<StripedKv::Stripe>();
    stripe->kv = std::move(inner).value();
    striped->stripes_.push_back(std::move(stripe));
  }
  striped->ordered_ = striped->stripes_.front()->kv->Ordered();
  return std::unique_ptr<Kv>(std::move(striped));
}

}  // namespace loco::kv
