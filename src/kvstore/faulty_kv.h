// Fault-injecting KV decorator.
//
// Wraps any kv::Kv and fails Put / PatchValue with kIo according to the
// process fault plane (net::FaultInjector, the kv_put_fail= / kv_fail_after=
// knobs of --fault-spec).  Reads, deletes and scans pass through untouched.
//
// This is how torn multi-key sequences are provoked on demand: LocoFS
// metadata mutations write several keys in a fixed order (file content part
// → access part → dirent append; d-inode → dirent append), so failing the
// Nth put leaves the earlier keys applied — exactly the crash-consistency
// states (dangling dirents, orphaned inodes) the paper accepts and
// loco_fsck repairs.  Services see a clean kIo status and run their
// documented rollbacks; chaos tests verify the rollback paths, and
// kv_fail_after= combined with crash_after= produces the un-rolled-back
// states fsck must handle.
#pragma once

#include <memory>

#include "kvstore/kv.h"
#include "net/fault.h"

namespace loco::kv {

class FaultyKv final : public Kv {
 public:
  // `injector` is shared by the whole process fault plane; not owned, must
  // outlive this store.
  FaultyKv(std::unique_ptr<Kv> inner, net::FaultInjector* injector)
      : inner_(std::move(inner)), injector_(injector) {}

  Status Put(std::string_view key, std::string_view value) override {
    if (injector_->FailKvPut()) {
      return ErrStatus(ErrCode::kIo, "injected put failure");
    }
    return inner_->Put(key, value);
  }

  Status Get(std::string_view key, std::string* value) const override {
    return inner_->Get(key, value);
  }

  Status Delete(std::string_view key) override { return inner_->Delete(key); }

  bool Contains(std::string_view key) const override {
    return inner_->Contains(key);
  }

  Status PatchValue(std::string_view key, std::size_t offset,
                    std::string_view patch) override {
    if (injector_->FailKvPut()) {
      return ErrStatus(ErrCode::kIo, "injected patch failure");
    }
    return inner_->PatchValue(key, offset, patch);
  }

  Status ReadValueAt(std::string_view key, std::size_t offset, std::size_t len,
                     std::string* out) const override {
    return inner_->ReadValueAt(key, offset, len, out);
  }

  std::size_t Size() const override { return inner_->Size(); }

  Status ScanPrefix(std::string_view prefix, std::size_t limit,
                    std::vector<Entry>* out) const override {
    return inner_->ScanPrefix(prefix, limit, out);
  }

  void ForEach(const std::function<bool(std::string_view, std::string_view)>&
                   fn) const override {
    inner_->ForEach(fn);
  }

  bool Ordered() const noexcept override { return inner_->Ordered(); }

  KvStats stats() const noexcept override { return inner_->stats(); }
  void ResetStats() noexcept override { inner_->ResetStats(); }

  Kv* inner() noexcept { return inner_.get(); }

 private:
  std::unique_ptr<Kv> inner_;
  net::FaultInjector* injector_;
};

}  // namespace loco::kv
