// Thread-safe KV built from lock-striped shards.
//
// None of the single-store engines (hash_kv.h, btree_kv.h, lsm_kv.h) is
// internally thread-safe — HashKV rehashes the whole table, BTreeKV splits
// nodes, and both count into a shared KvStats.  StripedKv makes a store safe
// for the multi-worker daemons by partitioning the key space across N
// independent inner stores, each guarded by its own mutex.  The stripe is
// picked by the same WyMix hash (and seed) the consistent-hash ring uses to
// place keys on servers (core/ring.cc), so concurrent operations on
// different keys serialize only on stripe collisions.
//
// Persistence: each stripe owns `options.dir/stripeNN` with its own WAL, so
// recovery opens the same stripes the writer produced.  Stripe count is
// fixed for the lifetime of a store directory.
//
// Cross-stripe reads (Size, ScanPrefix, ForEach, stats) lock stripes one at
// a time: they see every entry that existed throughout the call but are not
// a point-in-time snapshot with respect to concurrent writers — the same
// read-committed behavior the directory-granularity locks in DMS/FMS rely
// on.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "kvstore/kv.h"

namespace loco::kv {

class StripedKv final : public Kv {
 public:
  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  bool Contains(std::string_view key) const override;
  Status PatchValue(std::string_view key, std::size_t offset,
                    std::string_view patch) override;
  Status ReadValueAt(std::string_view key, std::size_t offset, std::size_t len,
                     std::string* out) const override;
  std::size_t Size() const override;
  Status ScanPrefix(std::string_view prefix, std::size_t limit,
                    std::vector<Entry>* out) const override;
  void ForEach(const std::function<bool(std::string_view, std::string_view)>&
                   fn) const override;
  bool Ordered() const noexcept override { return ordered_; }
  KvStats stats() const noexcept override;
  void ResetStats() noexcept override;

  std::size_t stripe_count() const noexcept { return stripes_.size(); }

 private:
  friend Result<std::unique_ptr<Kv>> MakeStripedKv(KvBackend,
                                                   const KvOptions&,
                                                   std::size_t);
  struct Stripe {
    mutable std::mutex mu;
    std::unique_ptr<Kv> kv;
  };

  std::size_t StripeOf(std::string_view key) const noexcept;

  std::vector<std::unique_ptr<Stripe>> stripes_;
  bool ordered_ = false;
};

// Create a striped store over `stripes` inner `backend` stores (rounded up
// to a power of two; default 16).  With options.dir set, stripe N persists
// under "<dir>/stripeNN".
Result<std::unique_ptr<Kv>> MakeStripedKv(KvBackend backend,
                                          const KvOptions& options = {},
                                          std::size_t stripes = 16);

}  // namespace loco::kv
