#include "kvstore/wal.h"

#include <unistd.h>

#include <array>
#include <cstring>
#include <vector>

#include "common/codec.h"

namespace loco::kv {

namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  constexpr std::uint32_t kPoly = 0x82f63b78;  // CRC-32C reflected
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& CrcTable() {
  static const auto table = BuildCrcTable();
  return table;
}

}  // namespace

std::uint32_t Crc32c(std::string_view data) noexcept {
  const auto& table = CrcTable();
  std::uint32_t crc = 0xffffffff;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffff;
}

Wal::~Wal() { Close(); }

Status Wal::Open(const std::string& path, bool sync_writes) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return ErrStatus(ErrCode::kIo, "cannot open WAL " + path);
  }
  path_ = path;
  sync_ = sync_writes;
  return OkStatus();
}

Status Wal::Append(std::string_view payload) {
  if (file_ == nullptr) return ErrStatus(ErrCode::kIo, "WAL not open");
  common::Writer header;
  header.PutU32(Crc32c(payload));
  header.PutU32(static_cast<std::uint32_t>(payload.size()));
  if (std::fwrite(header.str().data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size()) {
    return ErrStatus(ErrCode::kIo, "WAL append failed");
  }
  if (std::fflush(file_) != 0) return ErrStatus(ErrCode::kIo, "WAL flush failed");
  if (sync_ && ::fsync(::fileno(file_)) != 0) {
    return ErrStatus(ErrCode::kIo, "WAL fsync failed");
  }
  appended_records_ += 1;
  appended_bytes_ += header.size() + payload.size();
  return OkStatus();
}

Result<std::size_t> Wal::Replay(const std::string& path,
                                const std::function<void(std::string_view)>& fn) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::size_t{0};  // no log yet: nothing to replay
  std::size_t delivered = 0;
  std::vector<char> payload;
  for (;;) {
    char header[8];
    if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) break;
    common::Reader r(std::string_view(header, sizeof(header)));
    const std::uint32_t crc = r.GetU32();
    const std::uint32_t len = r.GetU32();
    if (len > (1u << 30)) break;  // implausible length: corrupt tail
    payload.resize(len);
    if (len != 0 && std::fread(payload.data(), 1, len, f) != len) break;
    std::string_view body(payload.data(), len);
    if (Crc32c(body) != crc) break;
    fn(body);
    ++delivered;
  }
  std::fclose(f);
  return delivered;
}

Status Wal::Truncate() {
  if (file_ == nullptr) return ErrStatus(ErrCode::kIo, "WAL not open");
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) return ErrStatus(ErrCode::kIo, "WAL truncate failed");
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) return ErrStatus(ErrCode::kIo, "WAL reopen failed");
  return OkStatus();
}

void Wal::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace loco::kv
