// Notify-plane tests: event codecs, hello negotiation (and the permanent
// degrade against a server without the feature), sequence-gap resync,
// duplicate suppression, reconnect behaviour, and the notify fault hooks.
#include "net/notify.h"

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "net/fault.h"
#include "net/tcp.h"

namespace loco::net {
namespace {

class NullHandler final : public RpcHandler {
 public:
  RpcResponse Handle(std::uint16_t, std::string_view) override {
    return RpcResponse{ErrCode::kOk, {}};
  }
};

// Thread-safe event sink for listener callbacks.
class EventLog {
 public:
  void Add(const NotifyEvent& event) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
  }

  std::vector<NotifyEvent> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  std::size_t Count(NotifyEvent::Kind kind) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto& e : events_) {
      if (e.kind == kind) ++n;
    }
    return n;
  }

  // Poll until `pred` holds or ~5 s pass.
  bool Await(const std::function<bool()>& pred) const {
    for (int i = 0; i < 500; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  }

 private:
  mutable std::mutex mu_;
  std::vector<NotifyEvent> events_;
};

TEST(NotifyCodecTest, InvalidateRoundTrip) {
  InvalidateEvent in;
  in.path = "/a/b";
  in.subtree = true;
  in.wall_ts_ns = 123456789;
  InvalidateEvent out;
  ASSERT_TRUE(DecodeInvalidate(EncodeInvalidate(in), &out).ok());
  EXPECT_EQ(out.path, "/a/b");
  EXPECT_TRUE(out.subtree);
  EXPECT_EQ(out.wall_ts_ns, 123456789u);

  EXPECT_EQ(DecodeInvalidate("garbage", &out).code(), ErrCode::kCorruption);
  EXPECT_EQ(DecodeInvalidate("", &out).code(), ErrCode::kCorruption);
}

TEST(NotifyCodecTest, ServerUpRoundTrip) {
  ServerUpEvent in;
  in.node = 7;
  in.epoch = 42;
  in.wall_ts_ns = 99;
  ServerUpEvent out;
  ASSERT_TRUE(DecodeServerUp(EncodeServerUp(in), &out).ok());
  EXPECT_EQ(out.node, 7u);
  EXPECT_EQ(out.epoch, 42u);
  EXPECT_EQ(out.wall_ts_ns, 99u);

  EXPECT_EQ(DecodeServerUp("xx", &out).code(), ErrCode::kCorruption);
}

NotifyListener::Options ListenerOptions(const TcpServer& server,
                                        std::uint64_t client_id) {
  NotifyListener::Options options;
  options.host = server.host();
  options.port = server.port();
  options.client_id = client_id;
  options.backoff_base_ns = 10 * common::kMilli;
  options.backoff_cap_ns = 100 * common::kMilli;
  return options;
}

TEST(NotifyListenerTest, NegotiatesAndReceivesPushesInOrder) {
  NullHandler handler;
  TcpServer::Options server_options;
  server_options.epoch = 5;
  TcpServer server(&handler, server_options);
  ASSERT_TRUE(server.Start().ok());

  EventLog log;
  NotifyListener listener(ListenerOptions(server, 77),
                          [&log](const NotifyEvent& e) { log.Add(e); });
  ASSERT_TRUE(listener.Start().ok());
  ASSERT_TRUE(log.Await([&] { return listener.connected(); }));
  EXPECT_EQ(listener.epoch(), 5u);
  EXPECT_FALSE(listener.degraded());

  // Targeted pushes arrive in order; a push to an unknown client reports
  // false so the caller can drop its per-client state.
  InvalidateEvent inv;
  inv.path = "/dir";
  inv.wall_ts_ns = 1;
  EXPECT_TRUE(server.PushNotify(77, wire::kNotifyInvalidate,
                                EncodeInvalidate(inv)));
  inv.path = "/dir2";
  inv.subtree = true;
  EXPECT_TRUE(server.PushNotify(77, wire::kNotifyInvalidate,
                                EncodeInvalidate(inv)));
  EXPECT_FALSE(server.PushNotify(12345, wire::kNotifyInvalidate,
                                 EncodeInvalidate(inv)));

  ServerUpEvent up;
  up.node = 3;
  up.epoch = 9;
  EXPECT_EQ(server.BroadcastNotify(wire::kNotifyServerUp, EncodeServerUp(up)),
            1u);

  ASSERT_TRUE(log.Await([&] {
    return log.Count(NotifyEvent::Kind::kInvalidate) == 2 &&
           log.Count(NotifyEvent::Kind::kServerUp) == 1;
  }));
  const auto events = log.Snapshot();
  std::vector<std::string> paths;
  for (const auto& e : events) {
    if (e.kind == NotifyEvent::Kind::kInvalidate) paths.push_back(e.invalidate.path);
    if (e.kind == NotifyEvent::Kind::kServerUp) {
      EXPECT_EQ(e.server_up.node, 3u);
      EXPECT_EQ(e.server_up.epoch, 9u);
    }
  }
  EXPECT_EQ(paths, (std::vector<std::string>{"/dir", "/dir2"}));
  // In-order stream: no gap was detected, so no resync after the first hello.
  EXPECT_EQ(log.Count(NotifyEvent::Kind::kResync), 0u);
}

TEST(NotifyListenerTest, DegradesAgainstServerWithoutNotifyFeature) {
  NullHandler handler;
  TcpServer::Options server_options;
  server_options.features = 0;  // v2 server, feature disabled
  TcpServer server(&handler, server_options);
  ASSERT_TRUE(server.Start().ok());

  EventLog log;
  NotifyListener listener(ListenerOptions(server, 42),
                          [&log](const NotifyEvent& e) { log.Add(e); });
  ASSERT_TRUE(listener.Start().ok());
  ASSERT_TRUE(log.Await([&] { return listener.degraded(); }));
  EXPECT_FALSE(listener.connected());
  // Degrading is permanent and announced as a stream-down: leases are the
  // only staleness bound from here on.
  EXPECT_GE(log.Count(NotifyEvent::Kind::kStreamDown), 1u);
  EXPECT_EQ(server.notify_sessions(), 0u);
}

TEST(NotifyListenerTest, ReconnectAfterServerRestartForcesResync) {
  NullHandler handler;
  auto server = std::make_unique<TcpServer>(&handler);
  ASSERT_TRUE(server->Start().ok());
  const std::uint16_t port = server->port();

  EventLog log;
  NotifyListener::Options options;
  options.host = server->host();
  options.port = port;
  options.client_id = 9;
  options.backoff_base_ns = 10 * common::kMilli;
  options.backoff_cap_ns = 50 * common::kMilli;
  NotifyListener listener(options,
                          [&log](const NotifyEvent& e) { log.Add(e); });
  ASSERT_TRUE(listener.Start().ok());
  ASSERT_TRUE(log.Await([&] { return listener.connected(); }));

  // Restart the server on the same port with a bumped epoch.
  server->Stop();
  TcpServer::Options restart_options;
  restart_options.port = port;
  restart_options.epoch = 2;
  server = std::make_unique<TcpServer>(&handler, restart_options);
  ASSERT_TRUE(server->Start().ok());

  // The listener reconnects and reports a resync (pushes may have been lost
  // while the stream was down), then resumes receiving pushes.
  ASSERT_TRUE(log.Await([&] {
    return log.Count(NotifyEvent::Kind::kResync) >= 1 && listener.connected();
  }));
  EXPECT_EQ(listener.epoch(), 2u);
  ASSERT_TRUE(log.Await([&] { return server->notify_sessions() == 1; }));
  InvalidateEvent inv;
  inv.path = "/after-restart";
  EXPECT_TRUE(server->PushNotify(9, wire::kNotifyInvalidate,
                                 EncodeInvalidate(inv)));
  ASSERT_TRUE(
      log.Await([&] { return log.Count(NotifyEvent::Kind::kInvalidate) >= 1; }));
}

TEST(NotifyFaultTest, SpecParsesNotifyKeys) {
  auto spec = FaultSpec::Parse("notify_drop=0.25,notify_dup=0.5,seed=3");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_DOUBLE_EQ(spec->notify_drop, 0.25);
  EXPECT_DOUBLE_EQ(spec->notify_dup, 0.5);
  EXPECT_TRUE(spec->Armed());
  EXPECT_FALSE(FaultSpec::Parse("notify_drop=nope").ok());
  EXPECT_FALSE(FaultSpec::Parse("notify_dup=2.0").ok());
}

TEST(NotifyFaultTest, DroppedPushesForceResyncAndDupsAreSuppressed) {
  // Deterministic fault plane: with this seed some pushes are swallowed
  // (their sequence number is still consumed) and some are sent twice.  The
  // listener must (a) resync on every gap, (b) deliver each surviving push
  // exactly once, and (c) never crash or stall.
  auto spec = FaultSpec::Parse("notify_drop=0.3,notify_dup=0.3,seed=11");
  ASSERT_TRUE(spec.ok());
  FaultInjector fault(*spec);
  NullHandler handler;
  TcpServer::Options server_options;
  server_options.fault = &fault;
  TcpServer server(&handler, server_options);
  ASSERT_TRUE(server.Start().ok());

  EventLog log;
  NotifyListener listener(ListenerOptions(server, 5),
                          [&log](const NotifyEvent& e) { log.Add(e); });
  ASSERT_TRUE(listener.Start().ok());
  ASSERT_TRUE(log.Await([&] { return server.notify_sessions() == 1; }));

  auto& registry = common::MetricsRegistry::Default();
  const std::uint64_t drops_before =
      registry.CounterValue("faults.injected.notify_drop");
  const std::uint64_t dups_before =
      registry.CounterValue("faults.injected.notify_dup");
  const std::uint64_t pushed_before =
      registry.CounterValue("notify.server.pushed");

  constexpr int kPushes = 64;
  for (int i = 0; i < kPushes; ++i) {
    InvalidateEvent inv;
    inv.path = "/p" + std::to_string(i);
    ASSERT_TRUE(
        server.PushNotify(5, wire::kNotifyInvalidate, EncodeInvalidate(inv)));
  }
  // PushNotify only enqueues; the server loop rolls the fault dice as it
  // drains.  Wait until every push was either sent or swallowed before
  // reading the fault counters.
  ASSERT_TRUE(log.Await([&] {
    return (registry.CounterValue("notify.server.pushed") - pushed_before) +
               (registry.CounterValue("faults.injected.notify_drop") -
                drops_before) ==
           kPushes;
  }));
  const std::uint64_t dropped =
      registry.CounterValue("faults.injected.notify_drop") - drops_before;
  const std::uint64_t dupped =
      registry.CounterValue("faults.injected.notify_dup") - dups_before;
  ASSERT_GT(dropped, 0u) << "seed produced no drops; pick another";
  ASSERT_GT(dupped, 0u) << "seed produced no dups; pick another";

  // Every non-dropped push is delivered exactly once (duplicates suppressed
  // by the sequence check), and at least one gap triggered a resync.
  ASSERT_TRUE(log.Await([&] {
    return log.Count(NotifyEvent::Kind::kInvalidate) == kPushes - dropped;
  })) << log.Count(NotifyEvent::Kind::kInvalidate) << " of "
      << (kPushes - dropped);
  EXPECT_GE(log.Count(NotifyEvent::Kind::kResync), 1u);
}

}  // namespace
}  // namespace loco::net
