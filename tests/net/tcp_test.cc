// TcpServer + TcpChannel over real loopback sockets: roundtrips, connection
// pooling, deadlines, and every failure mode the client must surface cleanly
// (kUnavailable / kTimeout / kCorruption — never a hang).
#include "net/tcp.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/metrics.h"
#include "net/wire.h"

namespace loco::net {
namespace {

// Echoes the payload back; opcode 200 sleeps first (deadline tests); the
// request's trace id is observable through `last_trace_id` (set server-side
// only via the frame header — proves the id crossed the wire).
class EchoHandler final : public RpcHandler {
 public:
  RpcResponse Handle(std::uint16_t opcode, std::string_view payload) override {
    if (opcode == 200) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    if (opcode == 201) return RpcResponse{ErrCode::kNotFound, {}};
    return RpcResponse{ErrCode::kOk, std::string(payload)};
  }
};

RpcResponse BlockingCall(Channel& ch, NodeId node, std::uint16_t opcode,
                         std::string payload, CallMeta meta = {}) {
  RpcResponse out;
  ch.CallAsyncMeta(node, opcode, std::move(payload), meta,
                   [&out](RpcResponse r) { out = std::move(r); });
  return out;  // TcpChannel completes inline
}

TEST(ParseHostPortTest, AcceptsAndRejects) {
  std::string host;
  std::uint16_t port = 0;
  EXPECT_TRUE(ParseHostPort("127.0.0.1:9000", &host, &port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9000);
  EXPECT_TRUE(ParseHostPort("localhost:1", &host, &port));
  EXPECT_FALSE(ParseHostPort("no-port", &host, &port));
  EXPECT_FALSE(ParseHostPort(":9000", &host, &port));
  EXPECT_FALSE(ParseHostPort("host:", &host, &port));
  EXPECT_FALSE(ParseHostPort("host:99999", &host, &port));
  EXPECT_FALSE(ParseHostPort("host:12x", &host, &port));
}

TEST(TcpTest, RequestResponseRoundtrip) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  TcpChannel channel;
  channel.Register(1, server.host(), server.port());

  const RpcResponse r = BlockingCall(channel, 1, 7, "ping");
  EXPECT_EQ(r.code, ErrCode::kOk);
  EXPECT_EQ(r.payload, "ping");
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(TcpTest, ErrorCodeCrossesTheWire) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());
  TcpChannel channel;
  channel.Register(1, server.host(), server.port());

  const RpcResponse r = BlockingCall(channel, 1, 201, "");
  EXPECT_EQ(r.code, ErrCode::kNotFound);
}

TEST(TcpTest, ManySequentialCallsReuseTheConnection) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());
  TcpChannel channel;
  channel.Register(1, server.host(), server.port());

  for (int i = 0; i < 50; ++i) {
    const std::string payload = "call-" + std::to_string(i);
    const RpcResponse r = BlockingCall(channel, 1, 7, payload);
    ASSERT_EQ(r.code, ErrCode::kOk);
    ASSERT_EQ(r.payload, payload);
  }
  EXPECT_EQ(server.requests_served(), 50u);
}

TEST(TcpTest, ConcurrentCallersGetTheirOwnSockets) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());
  TcpChannel channel;
  channel.Register(1, server.host(), server.port());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&channel, &failures, t] {
      for (int i = 0; i < 25; ++i) {
        const std::string payload =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        const RpcResponse r = BlockingCall(channel, 1, 7, payload);
        if (r.code != ErrCode::kOk || r.payload != payload) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), 100u);
}

TEST(TcpTest, UnregisteredNodeIsUnavailable) {
  TcpChannel channel;
  const RpcResponse r = BlockingCall(channel, 42, 7, "x");
  EXPECT_EQ(r.code, ErrCode::kUnavailable);
}

TEST(TcpTest, DeadServerFailsFastWithUnavailable) {
  // Bind-then-close to obtain a port nobody listens on.
  EchoHandler handler;
  std::uint16_t dead_port = 0;
  {
    TcpServer server(&handler);
    ASSERT_TRUE(server.Start().ok());
    dead_port = server.port();
  }

  TcpChannelOptions options;
  options.connect_attempts = 2;
  options.connect_backoff_ns = common::kMilli;
  TcpChannel channel(options);
  channel.Register(1, "127.0.0.1", dead_port);

  const common::CpuTimer timer;
  const RpcResponse r = BlockingCall(channel, 1, 7, "x");
  EXPECT_EQ(r.code, ErrCode::kUnavailable);
  // Refused connects must fail fast (ECONNREFUSED), not wait out a deadline.
  EXPECT_LT(timer.ElapsedNanos(), 2 * common::kSecond);
}

TEST(TcpTest, DeadlineExceededIsTimeout) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());
  TcpChannel channel;
  channel.Register(1, server.host(), server.port());

  CallMeta meta;
  meta.deadline_ns = 20 * common::kMilli;  // handler sleeps 200 ms
  const RpcResponse r = BlockingCall(channel, 1, 200, "slow", meta);
  EXPECT_EQ(r.code, ErrCode::kTimeout);
}

TEST(TcpTest, StoppedServerYieldsUnavailable) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());

  TcpChannelOptions options;
  options.connect_attempts = 1;
  TcpChannel channel(options);
  channel.Register(1, server.host(), server.port());
  ASSERT_EQ(BlockingCall(channel, 1, 7, "warm").code, ErrCode::kOk);

  server.Stop();
  const RpcResponse r = BlockingCall(channel, 1, 7, "x");
  EXPECT_EQ(r.code, ErrCode::kUnavailable);
}

TEST(TcpTest, PooledConnectionSurvivesServerRestartViaRetry) {
  // A pooled socket the (old) server closed must be retried on a fresh
  // connection transparently, not surfaced as an error.
  EchoHandler handler;
  auto server = std::make_unique<TcpServer>(&handler);
  ASSERT_TRUE(server->Start().ok());
  const std::uint16_t port = server->port();

  TcpChannel channel;
  channel.Register(1, "127.0.0.1", port);
  ASSERT_EQ(BlockingCall(channel, 1, 7, "warm").code, ErrCode::kOk);

  server->Stop();
  TcpServer::Options opts;
  opts.port = port;
  auto restarted = std::make_unique<TcpServer>(&handler, opts);
  ASSERT_TRUE(restarted->Start().ok());

  const RpcResponse r = BlockingCall(channel, 1, 7, "after-restart");
  EXPECT_EQ(r.code, ErrCode::kOk);
  EXPECT_EQ(r.payload, "after-restart");
}

// A raw TCP server that writes `reply` to every connection, then closes it.
class RawResponder {
 public:
  explicit RawResponder(std::string reply) : reply_(std::move(reply)) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    ::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    ::listen(fd_, 8);
    thread_ = std::thread([this] {
      for (;;) {
        const int conn = ::accept(fd_, nullptr, nullptr);
        if (conn < 0) return;  // listener closed
        char buf[4096];
        // Read the request (best-effort) so the client's send completes.
        (void)::recv(conn, buf, sizeof(buf), 0);
        if (!reply_.empty()) {
          (void)::send(conn, reply_.data(), reply_.size(), MSG_NOSIGNAL);
        }
        ::close(conn);
      }
    });
  }
  ~RawResponder() {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    thread_.join();
  }
  std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string reply_;
  std::thread thread_;
};

TEST(TcpTest, GarbageResponseIsCorruption) {
  RawResponder responder(std::string(64, 'Z'));  // wrong magic
  TcpChannelOptions options;
  options.connect_attempts = 1;
  TcpChannel channel(options);
  channel.Register(1, "127.0.0.1", responder.port());

  const RpcResponse r = BlockingCall(channel, 1, 7, "x");
  EXPECT_EQ(r.code, ErrCode::kCorruption);
}

TEST(TcpTest, MidStreamDisconnectIsUnavailable) {
  // Server sends half a valid response frame, then closes.
  wire::FrameHeader h;
  h.type = wire::FrameType::kResponse;
  h.opcode = 7;
  h.request_id = 1;
  const std::string full = wire::EncodeFrame(h, "truncated-payload");
  RawResponder responder(full.substr(0, full.size() / 2));

  TcpChannelOptions options;
  options.connect_attempts = 1;
  TcpChannel channel(options);
  channel.Register(1, "127.0.0.1", responder.port());

  const RpcResponse r = BlockingCall(channel, 1, 7, "x");
  EXPECT_EQ(r.code, ErrCode::kUnavailable);
}

TEST(TcpTest, ServerDropsCorruptClientStream) {
  // A client that sends garbage gets disconnected; the server keeps serving
  // well-formed clients afterwards.
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());

  {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const std::string garbage(64, 'G');
    ASSERT_GT(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL), 0);
    // The server closes the connection; recv sees EOF rather than hanging.
    char buf[16];
    EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
    ::close(fd);
  }

  TcpChannel channel;
  channel.Register(1, server.host(), server.port());
  EXPECT_EQ(BlockingCall(channel, 1, 7, "still-alive").code, ErrCode::kOk);
}

TEST(TcpTest, OversizedRequestPayloadRejectedClientSide) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());
  TcpChannelOptions options;
  options.max_payload_bytes = 1024;
  TcpChannel channel(options);
  channel.Register(1, server.host(), server.port());

  const RpcResponse r = BlockingCall(channel, 1, 7, std::string(4096, 'x'));
  EXPECT_EQ(r.code, ErrCode::kInvalid);
}

// A loopback connect() to a dead port inside the ephemeral range can hit
// TCP simultaneous open and connect the socket to itself; every request
// would then echo back as a valid frame of type kRequest with a matching
// id.  The channel must detect and reject such sockets (this reproduced as
// a rare kCorruption from calls to a killed daemon).  Forcing the source
// port with bind() makes the self-connect deterministic.
TEST(TcpTest, SelfConnectedSocketIsDetected) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len),
            0);
  // Connect to our own bound address: no listener, yet the connect succeeds
  // by self-connecting (the scenario the channel must reject).
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  EXPECT_TRUE(IsSelfConnected(fd));
  ::close(fd);
}

TEST(TcpTest, NormalConnectionIsNotSelfConnected) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  EXPECT_FALSE(IsSelfConnected(fd));
  ::close(fd);
}

TEST(TcpTest, RpcMetricsRecorded) {
  auto& registry = common::MetricsRegistry::Default();
  const std::uint64_t client_before = registry.CounterValue("rpc.tcp.DmsMkdir.calls");
  const std::uint64_t server_before =
      registry.CounterValue("rpc.tcp_server.DmsMkdir.calls");

  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());
  TcpChannel channel;
  channel.Register(1, server.host(), server.port());
  ASSERT_EQ(BlockingCall(channel, 1, /*DmsMkdir*/ 1, "m").code, ErrCode::kOk);

  EXPECT_EQ(registry.CounterValue("rpc.tcp.DmsMkdir.calls"), client_before + 1);
  EXPECT_EQ(registry.CounterValue("rpc.tcp_server.DmsMkdir.calls"),
            server_before + 1);
}

}  // namespace
}  // namespace loco::net
