// TcpServer + TcpChannel over real loopback sockets: roundtrips, connection
// pooling, deadlines, and every failure mode the client must surface cleanly
// (kUnavailable / kTimeout / kCorruption — never a hang).
#include "net/tcp.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "net/wire.h"

namespace loco::net {
namespace {

// Echoes the payload back; opcode 200 sleeps first (deadline tests); the
// request's trace id is observable through `last_trace_id` (set server-side
// only via the frame header — proves the id crossed the wire).
class EchoHandler final : public RpcHandler {
 public:
  RpcResponse Handle(std::uint16_t opcode, std::string_view payload) override {
    if (opcode == 200) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    if (opcode == 201) return RpcResponse{ErrCode::kNotFound, {}};
    return RpcResponse{ErrCode::kOk, std::string(payload)};
  }
};

RpcResponse BlockingCall(Channel& ch, NodeId node, std::uint16_t opcode,
                         std::string payload, CallMeta meta = {}) {
  RpcResponse out;
  ch.CallAsyncMeta(node, opcode, std::move(payload), meta,
                   [&out](RpcResponse r) { out = std::move(r); });
  return out;  // TcpChannel completes inline
}

TEST(ParseHostPortTest, AcceptsAndRejects) {
  std::string host;
  std::uint16_t port = 0;
  EXPECT_TRUE(ParseHostPort("127.0.0.1:9000", &host, &port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9000);
  EXPECT_TRUE(ParseHostPort("localhost:1", &host, &port));
  EXPECT_FALSE(ParseHostPort("no-port", &host, &port));
  EXPECT_FALSE(ParseHostPort(":9000", &host, &port));
  EXPECT_FALSE(ParseHostPort("host:", &host, &port));
  EXPECT_FALSE(ParseHostPort("host:99999", &host, &port));
  EXPECT_FALSE(ParseHostPort("host:12x", &host, &port));
}

TEST(TcpTest, RequestResponseRoundtrip) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  TcpChannel channel;
  channel.Register(1, server.host(), server.port());

  const RpcResponse r = BlockingCall(channel, 1, 7, "ping");
  EXPECT_EQ(r.code, ErrCode::kOk);
  EXPECT_EQ(r.payload, "ping");
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(TcpTest, ErrorCodeCrossesTheWire) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());
  TcpChannel channel;
  channel.Register(1, server.host(), server.port());

  const RpcResponse r = BlockingCall(channel, 1, 201, "");
  EXPECT_EQ(r.code, ErrCode::kNotFound);
}

TEST(TcpTest, ManySequentialCallsReuseTheConnection) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());
  TcpChannel channel;
  channel.Register(1, server.host(), server.port());

  for (int i = 0; i < 50; ++i) {
    const std::string payload = "call-" + std::to_string(i);
    const RpcResponse r = BlockingCall(channel, 1, 7, payload);
    ASSERT_EQ(r.code, ErrCode::kOk);
    ASSERT_EQ(r.payload, payload);
  }
  EXPECT_EQ(server.requests_served(), 50u);
}

TEST(TcpTest, ConcurrentCallersGetTheirOwnSockets) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());
  TcpChannel channel;
  channel.Register(1, server.host(), server.port());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&channel, &failures, t] {
      for (int i = 0; i < 25; ++i) {
        const std::string payload =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        const RpcResponse r = BlockingCall(channel, 1, 7, payload);
        if (r.code != ErrCode::kOk || r.payload != payload) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), 100u);
}

TEST(TcpTest, UnregisteredNodeIsUnavailable) {
  TcpChannel channel;
  const RpcResponse r = BlockingCall(channel, 42, 7, "x");
  EXPECT_EQ(r.code, ErrCode::kUnavailable);
}

TEST(TcpTest, DeadServerFailsFastWithUnavailable) {
  // Bind-then-close to obtain a port nobody listens on.
  EchoHandler handler;
  std::uint16_t dead_port = 0;
  {
    TcpServer server(&handler);
    ASSERT_TRUE(server.Start().ok());
    dead_port = server.port();
  }

  TcpChannelOptions options;
  options.connect_attempts = 2;
  options.connect_backoff_ns = common::kMilli;
  TcpChannel channel(options);
  channel.Register(1, "127.0.0.1", dead_port);

  const common::CpuTimer timer;
  const RpcResponse r = BlockingCall(channel, 1, 7, "x");
  EXPECT_EQ(r.code, ErrCode::kUnavailable);
  // Refused connects must fail fast (ECONNREFUSED), not wait out a deadline.
  EXPECT_LT(timer.ElapsedNanos(), 2 * common::kSecond);
}

TEST(TcpTest, DeadlineExceededIsTimeout) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());
  TcpChannel channel;
  channel.Register(1, server.host(), server.port());

  CallMeta meta;
  meta.deadline_ns = 20 * common::kMilli;  // handler sleeps 200 ms
  const RpcResponse r = BlockingCall(channel, 1, 200, "slow", meta);
  EXPECT_EQ(r.code, ErrCode::kTimeout);
}

TEST(TcpTest, StoppedServerYieldsUnavailable) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());

  TcpChannelOptions options;
  options.connect_attempts = 1;
  TcpChannel channel(options);
  channel.Register(1, server.host(), server.port());
  ASSERT_EQ(BlockingCall(channel, 1, 7, "warm").code, ErrCode::kOk);

  server.Stop();
  const RpcResponse r = BlockingCall(channel, 1, 7, "x");
  EXPECT_EQ(r.code, ErrCode::kUnavailable);
}

TEST(TcpTest, PooledConnectionSurvivesServerRestartViaRetry) {
  // A pooled socket the (old) server closed must be retried on a fresh
  // connection transparently, not surfaced as an error.
  EchoHandler handler;
  auto server = std::make_unique<TcpServer>(&handler);
  ASSERT_TRUE(server->Start().ok());
  const std::uint16_t port = server->port();

  TcpChannel channel;
  channel.Register(1, "127.0.0.1", port);
  ASSERT_EQ(BlockingCall(channel, 1, 7, "warm").code, ErrCode::kOk);

  server->Stop();
  TcpServer::Options opts;
  opts.port = port;
  auto restarted = std::make_unique<TcpServer>(&handler, opts);
  ASSERT_TRUE(restarted->Start().ok());

  const RpcResponse r = BlockingCall(channel, 1, 7, "after-restart");
  EXPECT_EQ(r.code, ErrCode::kOk);
  EXPECT_EQ(r.payload, "after-restart");
}

// A raw TCP server that writes `reply` to every connection, then closes it.
class RawResponder {
 public:
  explicit RawResponder(std::string reply) : reply_(std::move(reply)) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    ::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    ::listen(fd_, 8);
    thread_ = std::thread([this] {
      for (;;) {
        const int conn = ::accept(fd_, nullptr, nullptr);
        if (conn < 0) return;  // listener closed
        char buf[4096];
        // Read the request (best-effort) so the client's send completes.
        (void)::recv(conn, buf, sizeof(buf), 0);
        if (!reply_.empty()) {
          (void)::send(conn, reply_.data(), reply_.size(), MSG_NOSIGNAL);
        }
        ::close(conn);
      }
    });
  }
  ~RawResponder() {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    thread_.join();
  }
  std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string reply_;
  std::thread thread_;
};

TEST(TcpTest, GarbageResponseIsCorruption) {
  RawResponder responder(std::string(64, 'Z'));  // wrong magic
  TcpChannelOptions options;
  options.connect_attempts = 1;
  // No hello: the responder reads exactly one blob and answers it, and the
  // fire-and-forget hello would race the request for that single read (the
  // responder could reply-and-close before the request send completes,
  // surfacing kUnavailable instead of the decode verdict under test).
  options.features = 0;
  TcpChannel channel(options);
  channel.Register(1, "127.0.0.1", responder.port());

  const RpcResponse r = BlockingCall(channel, 1, 7, "x");
  EXPECT_EQ(r.code, ErrCode::kCorruption);
}

TEST(TcpTest, MidStreamDisconnectIsUnavailable) {
  // Server sends half a valid response frame, then closes.
  wire::FrameHeader h;
  h.type = wire::FrameType::kResponse;
  h.opcode = 7;
  h.request_id = 1;
  const std::string full = wire::EncodeFrame(h, "truncated-payload");
  RawResponder responder(full.substr(0, full.size() / 2));

  TcpChannelOptions options;
  options.connect_attempts = 1;
  TcpChannel channel(options);
  channel.Register(1, "127.0.0.1", responder.port());

  const RpcResponse r = BlockingCall(channel, 1, 7, "x");
  EXPECT_EQ(r.code, ErrCode::kUnavailable);
}

TEST(TcpTest, ServerDropsCorruptClientStream) {
  // A client that sends garbage gets disconnected; the server keeps serving
  // well-formed clients afterwards.
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());

  {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const std::string garbage(64, 'G');
    ASSERT_GT(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL), 0);
    // The server closes the connection; recv sees EOF rather than hanging.
    char buf[16];
    EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
    ::close(fd);
  }

  TcpChannel channel;
  channel.Register(1, server.host(), server.port());
  EXPECT_EQ(BlockingCall(channel, 1, 7, "still-alive").code, ErrCode::kOk);
}

TEST(TcpTest, OversizedRequestPayloadRejectedClientSide) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());
  TcpChannelOptions options;
  options.max_payload_bytes = 1024;
  TcpChannel channel(options);
  channel.Register(1, server.host(), server.port());

  const RpcResponse r = BlockingCall(channel, 1, 7, std::string(4096, 'x'));
  EXPECT_EQ(r.code, ErrCode::kInvalid);
}

// A loopback connect() to a dead port inside the ephemeral range can hit
// TCP simultaneous open and connect the socket to itself; every request
// would then echo back as a valid frame of type kRequest with a matching
// id.  The channel must detect and reject such sockets (this reproduced as
// a rare kCorruption from calls to a killed daemon).  Forcing the source
// port with bind() makes the self-connect deterministic.
TEST(TcpTest, SelfConnectedSocketIsDetected) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len),
            0);
  // Connect to our own bound address: no listener, yet the connect succeeds
  // by self-connecting (the scenario the channel must reject).
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  EXPECT_TRUE(IsSelfConnected(fd));
  ::close(fd);
}

TEST(TcpTest, NormalConnectionIsNotSelfConnected) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  EXPECT_FALSE(IsSelfConnected(fd));
  ::close(fd);
}

TEST(TcpTest, RpcMetricsRecorded) {
  auto& registry = common::MetricsRegistry::Default();
  const std::uint64_t client_before = registry.CounterValue("rpc.tcp.DmsMkdir.calls");
  const std::uint64_t server_before =
      registry.CounterValue("rpc.tcp_server.DmsMkdir.calls");

  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start().ok());
  TcpChannel channel;
  channel.Register(1, server.host(), server.port());
  ASSERT_EQ(BlockingCall(channel, 1, /*DmsMkdir*/ 1, "m").code, ErrCode::kOk);

  EXPECT_EQ(registry.CounterValue("rpc.tcp.DmsMkdir.calls"), client_before + 1);
  EXPECT_EQ(registry.CounterValue("rpc.tcp_server.DmsMkdir.calls"),
            server_before + 1);
}

// ---------------------------------------------------------------------------
// Worker-pool dispatch + channel pipelining.
// ---------------------------------------------------------------------------

// Records the order handlers *finish* in (proves out-of-order execution on
// the pool) while staying thread-safe.  Opcode 50 sleeps 80 ms; opcode 51
// returns immediately.
class RecordingHandler final : public RpcHandler {
 public:
  RpcResponse Handle(std::uint16_t opcode, std::string_view payload) override {
    if (opcode == 50) {
      std::this_thread::sleep_for(std::chrono::milliseconds(80));
    }
    {
      std::scoped_lock lock(mu_);
      finished_.emplace_back(payload);
    }
    return RpcResponse{ErrCode::kOk, std::string(payload)};
  }

  std::vector<std::string> finished() const {
    std::scoped_lock lock(mu_);
    return finished_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> finished_;
};

TEST(TcpWorkerPoolTest, ConcurrentClientStormAllCallsSucceed) {
  EchoHandler handler;
  TcpServer::Options options;
  options.workers = 4;
  TcpServer server(&handler, options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.workers(), 4);

  TcpChannel channel;
  channel.Register(1, server.host(), server.port());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&channel, &failures, t] {
      for (int i = 0; i < 25; ++i) {
        const std::string payload =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        const RpcResponse r = BlockingCall(channel, 1, 7, payload);
        if (r.code != ErrCode::kOk || r.payload != payload) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), 200u);
}

TEST(TcpWorkerPoolTest, PipelinedBurstExecutesOutOfOrderYetCorrelates) {
  RecordingHandler handler;
  TcpServer::Options options;
  options.workers = 2;
  TcpServer server(&handler, options);
  ASSERT_TRUE(server.Start().ok());

  TcpChannel channel;
  channel.Register(1, server.host(), server.port());

  // The slow call is issued first; with two workers the fast one finishes
  // while it sleeps, yet each response must land on its own request id.
  const std::vector<std::pair<std::uint16_t, std::string>> calls = {
      {50, "slow"}, {51, "fast"}};
  const std::vector<RpcResponse> rs = channel.CallPipelined(1, calls);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].code, ErrCode::kOk);
  EXPECT_EQ(rs[0].payload, "slow");
  EXPECT_EQ(rs[1].code, ErrCode::kOk);
  EXPECT_EQ(rs[1].payload, "fast");

  const std::vector<std::string> order = handler.finished();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "fast") << "fast call should overtake the slow one";
  EXPECT_EQ(order[1], "slow");
}

TEST(TcpWorkerPoolTest, PipelinedBurstOnInlineServerStillCorrelates) {
  EchoHandler handler;
  TcpServer server(&handler);  // workers == 0: responses arrive in order
  ASSERT_TRUE(server.Start().ok());
  TcpChannel channel;
  channel.Register(1, server.host(), server.port());

  std::vector<std::pair<std::uint16_t, std::string>> calls;
  for (int i = 0; i < 16; ++i) calls.emplace_back(7, "p" + std::to_string(i));
  const std::vector<RpcResponse> rs = channel.CallPipelined(1, calls);
  ASSERT_EQ(rs.size(), calls.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].code, ErrCode::kOk);
    EXPECT_EQ(rs[i].payload, calls[i].second);
  }
  EXPECT_EQ(server.requests_served(), calls.size());
}

TEST(TcpWorkerPoolTest, TimeoutThenLateResponseIsDiscardedNotCorruption) {
  EchoHandler handler;  // opcode 200 sleeps 200 ms
  TcpServer::Options options;
  options.workers = 2;
  TcpServer server(&handler, options);
  ASSERT_TRUE(server.Start().ok());

  TcpChannel channel;
  channel.Register(1, server.host(), server.port());
  ASSERT_EQ(BlockingCall(channel, 1, 7, "warm").code, ErrCode::kOk);

  CallMeta meta;
  meta.deadline_ns = 20 * common::kMilli;
  EXPECT_EQ(BlockingCall(channel, 1, 200, "slow", meta).code, ErrCode::kTimeout);

  // The timed-out request's response arrives later on the pooled connection;
  // the channel must discard it by request id, not fail the next call.
  for (int i = 0; i < 10; ++i) {
    const std::string payload = "after-" + std::to_string(i);
    const RpcResponse r = BlockingCall(channel, 1, 7, payload);
    ASSERT_EQ(r.code, ErrCode::kOk) << "call " << i;
    ASSERT_EQ(r.payload, payload);
  }
}

TEST(TcpWorkerPoolTest, WrappedRequestIdNeverMatchesAnAbandonedCall) {
  // Regression for the id-reuse window: a call that times out leaves its
  // request outstanding on the wire.  If the per-endpoint id counter then
  // wraps onto that abandoned id, the old call's late response used to be
  // delivered verbatim to the *new* call.  The channel must re-mint instead.
  EchoHandler handler;  // opcode 200 sleeps 200 ms before echoing
  TcpServer::Options options;
  options.workers = 2;
  TcpServer server(&handler, options);
  ASSERT_TRUE(server.Start().ok());

  TcpChannel channel;
  channel.Register(1, server.host(), server.port());
  ASSERT_EQ(BlockingCall(channel, 1, 7, "warm").code, ErrCode::kOk);

  channel.SetNextRequestIdForTest(1, 1000);
  CallMeta meta;
  meta.deadline_ns = 20 * common::kMilli;
  ASSERT_EQ(BlockingCall(channel, 1, 200, "stale-payload", meta).code,
            ErrCode::kTimeout);
  // Simulate the 2^64 wrap landing exactly on the abandoned id while the
  // timed-out request's response is still in flight.
  channel.SetNextRequestIdForTest(1, 1000);
  const RpcResponse r = BlockingCall(channel, 1, 7, "fresh-payload");
  EXPECT_EQ(r.code, ErrCode::kOk);
  EXPECT_EQ(r.payload, "fresh-payload") << "late response crossed calls";
}

TEST(TcpWorkerPoolTest, WrappedRequestIdNeverCollidesWithAnInflightCall) {
  // Same wrap, other window: the colliding id belongs to a call still
  // *waiting* (not timed out).  Both calls must get their own responses.
  EchoHandler handler;
  TcpServer::Options options;
  options.workers = 2;
  TcpServer server(&handler, options);
  ASSERT_TRUE(server.Start().ok());

  TcpChannel channel;
  channel.Register(1, server.host(), server.port());
  ASSERT_EQ(BlockingCall(channel, 1, 7, "warm").code, ErrCode::kOk);

  channel.SetNextRequestIdForTest(1, 2000);
  RpcResponse slow_response;
  std::thread slow([&] {
    slow_response = BlockingCall(channel, 1, 200, "slow-own-payload");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // slow in flight
  channel.SetNextRequestIdForTest(1, 2000);  // wrap onto the in-flight id
  const RpcResponse quick = BlockingCall(channel, 1, 7, "quick-own-payload");
  slow.join();
  EXPECT_EQ(quick.code, ErrCode::kOk);
  EXPECT_EQ(quick.payload, "quick-own-payload");
  EXPECT_EQ(slow_response.code, ErrCode::kOk);
  EXPECT_EQ(slow_response.payload, "slow-own-payload");
}

TEST(TcpWorkerPoolTest, ExtraServiceTimeOverlapsAcrossWorkers) {
  // Modeled device time (extra_service_ns) is charged by sleeping on the
  // worker, so two concurrent calls overlap their 60 ms charges.
  class DeviceHandler final : public RpcHandler {
   public:
    RpcResponse Handle(std::uint16_t, std::string_view payload) override {
      RpcResponse r{ErrCode::kOk, std::string(payload)};
      r.extra_service_ns = 60 * common::kMilli;
      return r;
    }
  };
  DeviceHandler handler;
  TcpServer::Options options;
  options.workers = 2;
  TcpServer server(&handler, options);
  ASSERT_TRUE(server.Start().ok());
  TcpChannel channel;
  channel.Register(1, server.host(), server.port());

  const auto start = std::chrono::steady_clock::now();
  const std::vector<RpcResponse> rs =
      channel.CallPipelined(1, {{7, "a"}, {7, "b"}});
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].code, ErrCode::kOk);
  EXPECT_EQ(rs[1].code, ErrCode::kOk);
  EXPECT_GE(elapsed.count(), 55) << "device time must be charged";
  EXPECT_LT(elapsed.count(), 115) << "charges should overlap, not serialize";
}

TEST(TcpWorkerPoolTest, WorkerGaugesLiveAndRetired) {
  auto& registry = common::MetricsRegistry::Default();
  EchoHandler handler;
  TcpServer::Options options;
  options.workers = 3;
  {
    TcpServer server(&handler, options);
    ASSERT_TRUE(server.Start().ok());
    EXPECT_EQ(registry.GaugeValue("rpc.tcp_server.workers"), 3.0);
    EXPECT_TRUE(registry.HasGauge("rpc.tcp_server.queue_depth"));
    EXPECT_TRUE(registry.HasGauge("rpc.tcp_server.worker0.busy"));
    EXPECT_TRUE(registry.HasGauge("rpc.tcp_server.worker2.busy"));
    server.Stop();
  }
  // After Stop the gauges retire their final value into the exposition, so
  // a --metrics-out dump records how many workers the server ran with.
  EXPECT_EQ(registry.RetiredGaugeValue("rpc.tcp_server.workers"), 3.0);
}

// ---------------------------------------------------------------------------
// io_uring backend, in-process.  The uring loop shares decode/dispatch/encode
// with epoll, so the channel-visible contract must be identical; when the
// kernel or build lacks io_uring, Start() falls back to epoll and these
// skip (the fallback itself is asserted observable via its counter).
// These also run under ASan/TSan through net_test in scripts/tier1.sh.
// ---------------------------------------------------------------------------

bool StartOnUring(TcpServer& server) {
  EXPECT_TRUE(server.Start().ok());
  return std::string_view(server.io_backend_name()) == "uring";
}

TEST(TcpUringTest, RoundtripAndErrorsOnUringLoop) {
  EchoHandler handler;
  TcpServer::Options options;
  options.io_backend = IoBackend::kUring;
  TcpServer server(&handler, options);
  if (!StartOnUring(server)) GTEST_SKIP() << "io_uring unavailable";

  TcpChannel channel;
  channel.Register(1, server.host(), server.port());
  for (int i = 0; i < 50; ++i) {
    const std::string payload = "u" + std::to_string(i);
    const RpcResponse r = BlockingCall(channel, 1, 7, payload);
    ASSERT_EQ(r.code, ErrCode::kOk);
    ASSERT_EQ(r.payload, payload);
  }
  EXPECT_EQ(BlockingCall(channel, 1, 201, "").code, ErrCode::kNotFound);
  EXPECT_EQ(server.requests_served(), 51u);
}

TEST(TcpUringTest, PipelinedBurstAcrossWorkersCorrelates) {
  RecordingHandler handler;  // opcode 50 sleeps, 51 returns immediately
  TcpServer::Options options;
  options.io_backend = IoBackend::kUring;
  options.workers = 2;
  TcpServer server(&handler, options);
  if (!StartOnUring(server)) GTEST_SKIP() << "io_uring unavailable";

  TcpChannel channel;
  channel.Register(1, server.host(), server.port());
  const std::vector<RpcResponse> rs =
      channel.CallPipelined(1, {{50, "slow"}, {51, "fast"}});
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].payload, "slow");
  EXPECT_EQ(rs[1].payload, "fast");
  const std::vector<std::string> order = handler.finished();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "fast") << "uring loop must still dispatch to the pool";
}

TEST(TcpUringTest, ConcurrentClientStormAllCallsSucceed) {
  EchoHandler handler;
  TcpServer::Options options;
  options.io_backend = IoBackend::kUring;
  options.workers = 4;
  TcpServer server(&handler, options);
  if (!StartOnUring(server)) GTEST_SKIP() << "io_uring unavailable";

  TcpChannel channel;
  channel.Register(1, server.host(), server.port());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&channel, &failures, t] {
      for (int i = 0; i < 25; ++i) {
        const std::string payload =
            "ut" + std::to_string(t) + "-" + std::to_string(i);
        const RpcResponse r = BlockingCall(channel, 1, 7, payload);
        if (r.code != ErrCode::kOk || r.payload != payload) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), 100u);
}

TEST(TcpUringTest, LargePayloadSpansRegisteredBuffers) {
  // Payloads larger than one registered buffer arrive across many recv
  // completions and must reassemble byte-exactly in the pinned reader.
  EchoHandler handler;
  TcpServer::Options options;
  options.io_backend = IoBackend::kUring;
  TcpServer server(&handler, options);
  if (!StartOnUring(server)) GTEST_SKIP() << "io_uring unavailable";

  TcpChannel channel;
  channel.Register(1, server.host(), server.port());
  std::string big(512 * 1024, '\0');
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i % 23));
  }
  const RpcResponse r = BlockingCall(channel, 1, 7, big);
  ASSERT_EQ(r.code, ErrCode::kOk);
  EXPECT_EQ(r.payload, big);
}

TEST(TcpUringTest, CorruptClientStreamDroppedOthersKeepServing) {
  EchoHandler handler;
  TcpServer::Options options;
  options.io_backend = IoBackend::kUring;
  TcpServer server(&handler, options);
  if (!StartOnUring(server)) GTEST_SKIP() << "io_uring unavailable";

  {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const std::string garbage(64, 'G');
    ASSERT_GT(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL), 0);
    char buf[16];
    EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
    ::close(fd);
  }

  TcpChannel channel;
  channel.Register(1, server.host(), server.port());
  EXPECT_EQ(BlockingCall(channel, 1, 7, "still-alive").code, ErrCode::kOk);
}

TEST(TcpUringTest, StopWhileClientsConnectedShutsDownCleanly) {
  EchoHandler handler;
  TcpServer::Options options;
  options.io_backend = IoBackend::kUring;
  options.workers = 2;
  TcpServer server(&handler, options);
  if (!StartOnUring(server)) GTEST_SKIP() << "io_uring unavailable";

  TcpChannel channel;
  channel.Register(1, server.host(), server.port());
  ASSERT_EQ(BlockingCall(channel, 1, 7, "warm").code, ErrCode::kOk);
  server.Stop();  // live connection + armed recv must not hang teardown
  EXPECT_EQ(BlockingCall(channel, 1, 7, "x").code, ErrCode::kUnavailable);
}

TEST(TcpUringTest, FallbackIsObservableViaCounterAndBackendName) {
  // Whichever way Start() resolves, the chosen backend is observable:
  // either the name says "uring" or the fallback counter ticked.
  auto& registry = common::MetricsRegistry::Default();
  const std::uint64_t before =
      registry.CounterValue("rpc.tcp_server.uring.fallbacks");
  EchoHandler handler;
  TcpServer::Options options;
  options.io_backend = IoBackend::kUring;
  TcpServer server(&handler, options);
  ASSERT_TRUE(server.Start().ok());
  if (std::string_view(server.io_backend_name()) == "uring") {
    EXPECT_EQ(registry.CounterValue("rpc.tcp_server.uring.fallbacks"), before);
    EXPECT_GT(registry.CounterValue("rpc.tcp_server.uring.sqes"), 0u);
  } else {
    EXPECT_EQ(registry.CounterValue("rpc.tcp_server.uring.fallbacks"),
              before + 1);
    // And the fallback server still serves.
    TcpChannel channel;
    channel.Register(1, server.host(), server.port());
    EXPECT_EQ(BlockingCall(channel, 1, 7, "fb").code, ErrCode::kOk);
  }
}

}  // namespace
}  // namespace loco::net
