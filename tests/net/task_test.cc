#include "net/task.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "net/call.h"
#include "net/rpc.h"

namespace loco::net {
namespace {

Task<int> Immediate(int v) { co_return v; }

Task<int> Nested(int v) {
  const int a = co_await Immediate(v);
  const int b = co_await Immediate(a + 1);
  co_return a + b;
}

Task<int> DeeplyNested(int depth) {
  if (depth == 0) co_return 1;
  co_return 1 + co_await DeeplyNested(depth - 1);
}

TEST(TaskTest, RunInlineImmediate) {
  EXPECT_EQ(RunInline(Immediate(7)), 7);
}

TEST(TaskTest, NestedAwaits) {
  EXPECT_EQ(RunInline(Nested(10)), 21);  // 10 + 11
}

TEST(TaskTest, DeepNestingViaSymmetricTransfer) {
  EXPECT_EQ(RunInline(DeeplyNested(5000)), 5001);
}

TEST(TaskTest, StartTaskInvokesDoneInlineForSynchronousTask) {
  bool fired = false;
  StartTask(Immediate(3), [&](int v) {
    fired = true;
    EXPECT_EQ(v, 3);
  });
  EXPECT_TRUE(fired);
}

TEST(TaskTest, MoveOnlyResults) {
  auto make = []() -> Task<std::string> { co_return std::string(100, 'x'); };
  EXPECT_EQ(RunInline(make()).size(), 100u);
}

// A channel that records calls and lets the test complete them later —
// exercises the deferred (simulator-like) path of the awaiters.
class DeferredChannel final : public Channel {
 public:
  void CallAsync(NodeId server, std::uint16_t opcode, std::string payload,
                 std::function<void(RpcResponse)> done) override {
    pending_.push_back({server, opcode, std::move(payload), std::move(done)});
  }

  struct PendingCall {
    NodeId server;
    std::uint16_t opcode;
    std::string payload;
    std::function<void(RpcResponse)> done;
  };
  std::vector<PendingCall> pending_;
};

// A channel that completes inside CallAsync (inproc-like).
class EchoChannel final : public Channel {
 public:
  void CallAsync(NodeId server, std::uint16_t opcode, std::string payload,
                 std::function<void(RpcResponse)> done) override {
    (void)server;
    (void)opcode;
    done(RpcResponse{ErrCode::kOk, std::move(payload)});
  }
};

Task<std::string> CallTwice(Channel& ch) {
  RpcResponse a = co_await Call(ch, 0, 1, "first");
  RpcResponse b = co_await Call(ch, 0, 2, "second");
  co_return a.payload + "+" + b.payload;
}

TEST(TaskTest, AwaitInlineCompletion) {
  EchoChannel ch;
  EXPECT_EQ(RunInline(CallTwice(ch)), "first+second");
}

TEST(TaskTest, AwaitDeferredCompletion) {
  DeferredChannel ch;
  std::string result;
  StartTask(CallTwice(ch), [&](std::string s) { result = std::move(s); });
  // First call issued but not completed: coroutine suspended.
  ASSERT_EQ(ch.pending_.size(), 1u);
  EXPECT_TRUE(result.empty());
  ch.pending_[0].done(RpcResponse{ErrCode::kOk, "ONE"});
  // Resuming issues the second call.
  ASSERT_EQ(ch.pending_.size(), 2u);
  EXPECT_TRUE(result.empty());
  ch.pending_[1].done(RpcResponse{ErrCode::kOk, "TWO"});
  EXPECT_EQ(result, "ONE+TWO");
}

Task<std::size_t> FanOut(Channel& ch) {
  // Codebase rule: never build a braced-init-list temporary inside a
  // co_await expression — its initializer_list backing array would have to
  // live across the suspension point, which GCC rejects ("array used as
  // initializer").  Materialize containers in a separate statement.
  std::vector<NodeId> servers{0, 1, 2};
  auto responses = co_await CallMany(ch, std::move(servers), 9, "ping");
  co_return responses.size();
}

TEST(TaskTest, CallManyInline) {
  EchoChannel ch;
  EXPECT_EQ(RunInline(FanOut(ch)), 3u);
}

TEST(TaskTest, CallManyDeferredCompletesWhenAllDone) {
  DeferredChannel ch;
  std::size_t result = 0;
  bool fired = false;
  StartTask(FanOut(ch), [&](std::size_t n) {
    result = n;
    fired = true;
  });
  ASSERT_EQ(ch.pending_.size(), 3u);
  ch.pending_[0].done(RpcResponse{});
  ch.pending_[2].done(RpcResponse{});
  EXPECT_FALSE(fired);
  ch.pending_[1].done(RpcResponse{});
  EXPECT_TRUE(fired);
  EXPECT_EQ(result, 3u);
}

TEST(TaskTest, CallManyEmptyServerList) {
  EchoChannel ch;
  auto task = [](Channel& c) -> Task<std::size_t> {
    auto r = co_await CallMany(c, std::vector<NodeId>{}, 1, "x");
    co_return r.size();
  };
  EXPECT_EQ(RunInline(task(ch)), 0u);
}

TEST(TaskTest, ErrorCodePropagatesThroughAwait) {
  class FailChannel final : public Channel {
   public:
    void CallAsync(NodeId, std::uint16_t, std::string,
                   std::function<void(RpcResponse)> done) override {
      done(RpcResponse{ErrCode::kTimeout, {}});
    }
  } ch;
  auto task = [](Channel& c) -> Task<ErrCode> {
    RpcResponse r = co_await Call(c, 0, 1, "");
    co_return r.code;
  };
  EXPECT_EQ(RunInline(task(ch)), ErrCode::kTimeout);
}

}  // namespace
}  // namespace loco::net
