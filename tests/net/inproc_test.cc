#include "net/inproc.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/call.h"
#include "net/task.h"

namespace loco::net {
namespace {

class EchoHandler final : public RpcHandler {
 public:
  RpcResponse Handle(std::uint16_t opcode, std::string_view payload) override {
    ++calls;
    return RpcResponse{ErrCode::kOk,
                       std::to_string(opcode) + ":" + std::string(payload)};
  }
  std::atomic<int> calls{0};
};

// Handler that increments a shared counter non-atomically; the per-server
// mutex in InProcTransport must make this safe.
class CounterHandler final : public RpcHandler {
 public:
  RpcResponse Handle(std::uint16_t, std::string_view) override {
    const int v = value;          // deliberately racy without the lock
    std::this_thread::yield();
    value = v + 1;
    return RpcResponse{};
  }
  int value = 0;
};

TEST(InProcTest, RoutesToRegisteredHandler) {
  InProcTransport transport;
  EchoHandler h0, h1;
  transport.Register(0, &h0);
  transport.Register(1, &h1);

  RpcResponse resp;
  transport.CallAsync(1, 42, "hello", [&](RpcResponse r) { resp = std::move(r); });
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(resp.payload, "42:hello");
  EXPECT_EQ(h0.calls, 0);
  EXPECT_EQ(h1.calls, 1);
}

TEST(InProcTest, UnknownServerIsUnavailable) {
  InProcTransport transport;
  RpcResponse resp;
  transport.CallAsync(9, 1, "", [&](RpcResponse r) { resp = std::move(r); });
  EXPECT_EQ(resp.code, ErrCode::kUnavailable);
}

TEST(InProcTest, CompletesInline) {
  InProcTransport transport;
  EchoHandler h;
  transport.Register(0, &h);
  bool fired = false;
  transport.CallAsync(0, 1, "x", [&](RpcResponse) { fired = true; });
  EXPECT_TRUE(fired);  // done ran before CallAsync returned
}

TEST(InProcTest, CoroutineClientRunsInline) {
  InProcTransport transport;
  EchoHandler h;
  transport.Register(0, &h);
  auto op = [](Channel& ch) -> Task<std::string> {
    RpcResponse a = co_await Call(ch, 0, 7, "a");
    RpcResponse b = co_await Call(ch, 0, 8, "b");
    co_return a.payload + "|" + b.payload;
  };
  EXPECT_EQ(RunInline(op(transport)), "7:a|8:b");
}

TEST(InProcTest, CallManyCollectsInServerOrder) {
  InProcTransport transport;
  EchoHandler h0, h1, h2;
  transport.Register(0, &h0);
  transport.Register(1, &h1);
  transport.Register(2, &h2);
  std::vector<RpcResponse> out;
  transport.CallManyAsync({2, 0, 1}, 5, "p",
                          [&](std::vector<RpcResponse> r) { out = std::move(r); });
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].payload, "5:p");
  EXPECT_EQ(h0.calls, 1);
  EXPECT_EQ(h1.calls, 1);
  EXPECT_EQ(h2.calls, 1);
}

TEST(InProcTest, CallCountTracksPerServer) {
  InProcTransport transport;
  EchoHandler h;
  transport.Register(3, &h);
  for (int i = 0; i < 5; ++i) {
    transport.CallAsync(3, 1, "", [](RpcResponse) {});
  }
  EXPECT_EQ(transport.CallCount(3), 5u);
  EXPECT_EQ(transport.CallCount(99), 0u);
}

TEST(InProcTest, PerServerMutexSerializesConcurrentClients) {
  InProcTransport transport;
  CounterHandler h;
  transport.Register(0, &h);
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&transport] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        transport.CallAsync(0, 1, "", [](RpcResponse) {});
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.value, kThreads * kCallsPerThread);
}

TEST(InProcTest, InjectedLatencyIsObservable) {
  InProcTransport transport;
  EchoHandler h;
  transport.Register(0, &h);
  transport.SetRoundTripLatency(2 * common::kMilli);
  common::CpuTimer timer;
  transport.CallAsync(0, 1, "", [](RpcResponse) {});
  EXPECT_GE(timer.ElapsedNanos(), 2 * common::kMilli - common::kMilli / 2);
}

}  // namespace
}  // namespace loco::net
