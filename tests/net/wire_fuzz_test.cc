// Property/fuzz tests for wire::FrameReader (deterministic, seed-driven).
//
// The reader is the only code that touches attacker-controlled bytes before
// authentication of any kind, so it must never crash, over-read, or allocate
// proportionally to a length field it has not validated.  These tests feed it
// valid frames split at every boundary, random garbage, bit-flipped headers
// and oversized length fields, and assert the latching-kCorruption contract.
#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/wire.h"

namespace loco::net::wire {
namespace {

FrameHeader RequestHeader(std::uint16_t opcode, std::uint64_t request_id) {
  FrameHeader h;
  h.type = FrameType::kRequest;
  h.opcode = opcode;
  h.request_id = request_id;
  h.trace_id = request_id * 31 + 7;
  return h;
}

std::string RandomPayload(common::Rng& rng, std::size_t max_len) {
  std::string payload(rng.Uniform(max_len + 1), '\0');
  for (char& c : payload) c = static_cast<char>(rng.Uniform(256));
  return payload;
}

// Feed `bytes` to a fresh reader in chunks chosen by `rng`; collect every
// frame it yields.  Exercises all resume points of the incremental decoder.
std::vector<Frame> DrainChunked(common::Rng& rng, const std::string& bytes,
                                Status* final_status) {
  FrameReader reader;
  std::vector<Frame> frames;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t len =
        1 + rng.Uniform(std::min<std::size_t>(bytes.size() - pos, 97));
    reader.Append(std::string_view(bytes).substr(pos, len));
    pos += len;
    while (auto frame = reader.Next()) frames.push_back(std::move(*frame));
    if (!reader.status().ok()) break;
  }
  *final_status = reader.status();
  return frames;
}

TEST(WireFuzzTest, ValidFramesSurviveArbitraryChunking) {
  common::Rng rng(0xF00D);
  for (int round = 0; round < 50; ++round) {
    std::vector<Frame> sent;
    std::string stream;
    const int count = 1 + static_cast<int>(rng.Uniform(8));
    for (int i = 0; i < count; ++i) {
      Frame f;
      f.header = RequestHeader(static_cast<std::uint16_t>(rng.Uniform(512)),
                               rng.Next());
      f.payload = RandomPayload(rng, 4096);
      stream += EncodeFrame(f.header, f.payload);
      sent.push_back(std::move(f));
    }
    Status status;
    const std::vector<Frame> got = DrainChunked(rng, stream, &status);
    ASSERT_TRUE(status.ok()) << "round " << round;
    ASSERT_EQ(got.size(), sent.size()) << "round " << round;
    for (std::size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(got[i].header.opcode, sent[i].header.opcode);
      EXPECT_EQ(got[i].header.request_id, sent[i].header.request_id);
      EXPECT_EQ(got[i].header.trace_id, sent[i].header.trace_id);
      EXPECT_EQ(got[i].payload, sent[i].payload);
    }
  }
}

TEST(WireFuzzTest, SingleByteFeedingYieldsSameFrames) {
  common::Rng rng(0xBEEF);
  Frame f;
  f.header = RequestHeader(7, 1234567);
  f.payload = RandomPayload(rng, 256);
  const std::string bytes = EncodeFrame(f.header, f.payload);

  FrameReader reader;
  std::vector<Frame> got;
  for (char c : bytes) {
    reader.Append(std::string_view(&c, 1));
    while (auto frame = reader.Next()) got.push_back(std::move(*frame));
  }
  ASSERT_TRUE(reader.status().ok());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, f.payload);
}

TEST(WireFuzzTest, RandomGarbageNeverCrashesAndUsuallyLatches) {
  common::Rng rng(0xDEAD);
  for (int round = 0; round < 200; ++round) {
    const std::string garbage = RandomPayload(rng, 2048);
    Status status;
    const std::vector<Frame> frames = DrainChunked(rng, garbage, &status);
    // Random bytes essentially never form a valid magic, so any fully decoded
    // frame is a bug; the reader must either wait for more bytes (ok status,
    // no frames) or latch kCorruption.  Either way: no crash, no UB.
    EXPECT_TRUE(frames.empty()) << "round " << round;
    if (!status.ok()) {
      EXPECT_EQ(status.code(), ErrCode::kCorruption) << "round " << round;
    }
  }
}

TEST(WireFuzzTest, BitFlippedHeadersLatchCorruption) {
  common::Rng rng(0xC0FFEE);
  Frame f;
  f.header = RequestHeader(9, 42);
  f.payload = "payload-bytes";
  const std::string good = EncodeFrame(f.header, f.payload);

  int latched = 0;
  // Flip every bit of the magic/version/type/code bytes in turn; each flip
  // must either latch kCorruption immediately or (for the code byte, whose
  // domain is wider than one valid value) still never yield a mangled frame
  // that claims a different length than it carries.
  const std::size_t offsets[] = {0, 1, 2, 3, 4, 5, 24};
  for (std::size_t offset : offsets) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bytes = good;
      bytes[offset] = static_cast<char>(bytes[offset] ^ (1 << bit));
      Status status;
      const std::vector<Frame> frames = DrainChunked(rng, bytes, &status);
      if (!status.ok()) {
        EXPECT_EQ(status.code(), ErrCode::kCorruption);
        EXPECT_TRUE(frames.empty());
        ++latched;
      } else {
        // A flip that survived decoding may only do so with intact framing.
        ASSERT_EQ(frames.size(), 1u);
        EXPECT_EQ(frames[0].payload.size(), f.payload.size());
      }
    }
  }
  // Magic (4 bytes), version, and type flips are all fatal: >= 48 latches.
  EXPECT_GE(latched, 48);
}

TEST(WireFuzzTest, OversizedLengthLatchesWithoutAllocating) {
  FrameHeader h = RequestHeader(3, 5);
  const std::string frame = EncodeFrame(h, "tiny");
  // Rewrite payload_len (last 4 header bytes, little-endian) to a value far
  // above the reader's cap, keeping only the header bytes.
  std::string bytes = frame.substr(0, kHeaderBytes);
  const std::uint32_t huge = 0xFFFFFFF0u;
  bytes[25] = static_cast<char>(huge & 0xFF);
  bytes[26] = static_cast<char>((huge >> 8) & 0xFF);
  bytes[27] = static_cast<char>((huge >> 16) & 0xFF);
  bytes[28] = static_cast<char>((huge >> 24) & 0xFF);

  FrameReader reader(/*max_payload=*/1024);
  reader.Append(bytes);
  EXPECT_FALSE(reader.Next().has_value());
  ASSERT_FALSE(reader.status().ok());
  EXPECT_EQ(reader.status().code(), ErrCode::kCorruption);
  // The reader must not have buffered gigabytes waiting for a payload it
  // already rejected; it holds at most what we appended.
  EXPECT_LE(reader.buffered(), bytes.size());

  // Latching is permanent: even a subsequent valid frame stays unread.
  reader.Append(frame);
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_EQ(reader.status().code(), ErrCode::kCorruption);
}

TEST(WireFuzzTest, PayloadJustOverCapLatches) {
  FrameHeader h = RequestHeader(3, 5);
  const std::string payload(1025, 'x');
  const std::string bytes = EncodeFrame(h, payload);
  FrameReader reader(/*max_payload=*/1024);
  reader.Append(bytes);
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_EQ(reader.status().code(), ErrCode::kCorruption);

  // Exactly at the cap is fine.
  FrameReader ok_reader(/*max_payload=*/1025);
  ok_reader.Append(bytes);
  auto frame = ok_reader.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, payload);
}

TEST(WireFuzzTest, TruncatedFramesWaitQuietly) {
  common::Rng rng(0x7A57E);
  Frame f;
  f.header = RequestHeader(11, 99);
  f.payload = RandomPayload(rng, 512);
  const std::string bytes = EncodeFrame(f.header, f.payload);
  // Every proper prefix must decode to "need more bytes", never an error and
  // never a frame.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameReader reader;
    reader.Append(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(reader.Next().has_value()) << "cut " << cut;
    ASSERT_TRUE(reader.status().ok()) << "cut " << cut;
    // Completing the stream always recovers the original frame.
    reader.Append(std::string_view(bytes).substr(cut));
    auto frame = reader.Next();
    ASSERT_TRUE(frame.has_value()) << "cut " << cut;
    EXPECT_EQ(frame->payload, f.payload);
  }
}

// ---- batch envelope corpus -------------------------------------------
// The batch codecs sit directly behind FrameReader on the server hot path:
// a decoded frame's payload is handed to DecodeBatchRequest/-Response with
// no intermediate validation, so the decoders carry the same contract —
// reject any count/length disagreement, never read past the payload, never
// allocate proportionally to an unvalidated count.

TEST(WireFuzzTest, BatchRoundTripSurvivesChunkedFraming) {
  common::Rng rng(0xBA7C4);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::string> subops;
    const int count = static_cast<int>(rng.Uniform(9));
    for (int i = 0; i < count; ++i) subops.push_back(RandomPayload(rng, 300));
    const std::string stream =
        EncodeFrame(RequestHeader(48, rng.Next()), EncodeBatchRequest(subops));
    Status status;
    const std::vector<Frame> frames = DrainChunked(rng, stream, &status);
    ASSERT_TRUE(status.ok()) << "round " << round;
    ASSERT_EQ(frames.size(), 1u) << "round " << round;
    std::vector<std::string_view> decoded;
    ASSERT_TRUE(DecodeBatchRequest(frames[0].payload, &decoded));
    ASSERT_EQ(decoded.size(), subops.size());
    for (std::size_t i = 0; i < subops.size(); ++i) {
      EXPECT_EQ(decoded[i], subops[i]) << "round " << round;
    }
  }
}

TEST(WireFuzzTest, ZeroCountBatchEnvelopeIsValidAndEmpty) {
  // An empty batch is legal on the wire (clients may flush an empty queue);
  // handlers answer it with an empty response envelope, not an error.  Any
  // byte beyond the count word, however, disagrees with count=0 and rejects.
  const std::string req = EncodeBatchRequest({});
  ASSERT_EQ(req.size(), 4u);
  std::vector<std::string_view> reqs{std::string_view("stale")};
  EXPECT_TRUE(DecodeBatchRequest(req, &reqs));
  EXPECT_TRUE(reqs.empty());

  const std::string resp = EncodeBatchResponse({});
  std::vector<BatchItem> items{BatchItem{ErrCode::kNotFound, "stale"}};
  EXPECT_TRUE(DecodeBatchResponse(resp, &items));
  EXPECT_TRUE(items.empty());

  EXPECT_FALSE(DecodeBatchRequest(req + std::string(1, '\0'), &reqs));
  EXPECT_FALSE(DecodeBatchResponse(resp + std::string(1, '\0'), &items));
}

TEST(WireFuzzTest, BatchCountLengthDisagreementNeverOverReads) {
  // Seed-driven sweep: take a well-formed envelope and corrupt the count
  // word to every nearby value; only the true count may decode, and every
  // accepted view must stay inside the buffer.
  common::Rng rng(0xD15A);
  std::vector<std::string> subops;
  for (int i = 0; i < 4; ++i) subops.push_back(RandomPayload(rng, 48));
  const std::string good = EncodeBatchRequest(subops);
  for (std::uint32_t count = 0; count < 12; ++count) {
    std::string bytes = good;
    bytes[0] = static_cast<char>(count & 0xFF);
    bytes[1] = static_cast<char>((count >> 8) & 0xFF);
    bytes[2] = 0;
    bytes[3] = 0;
    std::vector<std::string_view> decoded;
    const bool ok = DecodeBatchRequest(bytes, &decoded);
    if (count == subops.size()) {
      EXPECT_TRUE(ok);
    } else {
      EXPECT_FALSE(ok) << "count " << count;
    }
  }
}

TEST(WireFuzzTest, BatchCountBeyondPayloadRejectsWithoutAllocating) {
  // count = 0x7FFFFFFF with only a handful of bytes behind it: the decoder
  // must reject from the count/size comparison alone — reserving for it
  // would allocate gigabytes before the first item bound check.
  std::string hostile(8, '\0');
  hostile[0] = '\xff';
  hostile[1] = '\xff';
  hostile[2] = '\xff';
  hostile[3] = '\x7f';
  std::vector<std::string_view> reqs;
  EXPECT_FALSE(DecodeBatchRequest(hostile, &reqs));
  std::vector<BatchItem> items;
  EXPECT_FALSE(DecodeBatchResponse(hostile, &items));

  // Same with a sub-op length field pointing past the end.
  std::string bad_len = EncodeBatchRequest({"abc"});
  bad_len[4] = '\x7f';  // item 0 length low byte: 3 -> 127
  EXPECT_FALSE(DecodeBatchRequest(bad_len, &reqs));
}

TEST(WireFuzzTest, TruncatedAndOversizedBatchEnvelopesReject) {
  common::Rng rng(0x5EED);
  std::vector<std::string> subops;
  for (int i = 0; i < 5; ++i) subops.push_back(RandomPayload(rng, 64));
  const std::string good = EncodeBatchRequest(subops);
  std::vector<std::string_view> decoded;
  ASSERT_TRUE(DecodeBatchRequest(good, &decoded));

  // Every proper prefix disagrees with its own count and must be rejected
  // (the frame layer guarantees whole payloads, so a short envelope is
  // corruption, not "wait for more").
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(DecodeBatchRequest(good.substr(0, cut), &decoded))
        << "cut " << cut;
  }
  // Trailing bytes beyond the declared items are equally malformed.
  EXPECT_FALSE(DecodeBatchRequest(good + "x", &decoded));

  // Response side: same contract, plus the status byte domain check.
  std::vector<BatchItem> reply;
  reply.push_back(BatchItem{ErrCode::kOk, "payload"});
  reply.push_back(BatchItem{ErrCode::kNotFound, ""});
  const std::string resp = EncodeBatchResponse(reply);
  std::vector<BatchItem> out;
  ASSERT_TRUE(DecodeBatchResponse(resp, &out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].payload, "payload");
  for (std::size_t cut = 0; cut < resp.size(); ++cut) {
    EXPECT_FALSE(DecodeBatchResponse(resp.substr(0, cut), &out))
        << "cut " << cut;
  }
  EXPECT_FALSE(DecodeBatchResponse(resp + "x", &out));
  std::string bad_code = resp;
  bad_code[4] = '\x63';  // item 0 status byte: far outside the ErrCode domain
  EXPECT_FALSE(DecodeBatchResponse(bad_code, &out));
}

TEST(WireFuzzTest, RandomBytesNeverCrashBatchDecoders) {
  common::Rng rng(0xFA22);
  int accepted = 0;
  for (int round = 0; round < 500; ++round) {
    const std::string garbage = RandomPayload(rng, 256);
    std::vector<std::string_view> reqs;
    if (DecodeBatchRequest(garbage, &reqs)) {
      // Acceptance is only legal when every view stays inside the buffer.
      ++accepted;
      for (std::string_view v : reqs) {
        EXPECT_GE(v.data(), garbage.data());
        EXPECT_LE(v.data() + v.size(), garbage.data() + garbage.size());
      }
    }
    std::vector<BatchItem> items;
    (void)DecodeBatchResponse(garbage, &items);
  }
  // Random bytes occasionally form a consistent envelope (e.g. count 0 on a
  // 4-byte payload); the point is no crash and no over-read above.
  (void)accepted;
}

}  // namespace
}  // namespace loco::net::wire
