// TcpServer disconnect callbacks (docs/HOUSEKEEPING.md): on_client_disconnect
// fires exactly once when the *last* connection that said hello as a client id
// closes, and on_notify_disconnect fires as soon as a notify stream drops —
// the hooks the DMS lease table and FMS session table use to shed state
// without waiting out a TTL sweep.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "net/notify.h"
#include "net/tcp.h"

namespace loco::net {
namespace {

class NullHandler final : public RpcHandler {
 public:
  RpcResponse Handle(std::uint16_t, std::string_view payload) override {
    return RpcResponse{ErrCode::kOk, std::string(payload)};
  }
};

// Thread-safe record of disconnect callback invocations.
class DisconnectLog {
 public:
  void Add(std::uint64_t client) {
    std::lock_guard<std::mutex> lock(mu_);
    clients_.push_back(client);
  }

  std::vector<std::uint64_t> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return clients_;
  }

  std::size_t Count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return clients_.size();
  }

  // Poll until `pred` holds or ~5 s pass.
  bool Await(const std::function<bool()>& pred) const {
    for (int i = 0; i < 500; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::uint64_t> clients_;
};

RpcResponse BlockingCall(Channel& channel, NodeId node, std::uint16_t opcode,
                         std::string payload) {
  RpcResponse out;
  channel.CallAsync(node, opcode, std::move(payload),
                    [&out](RpcResponse r) { out = std::move(r); });
  return out;  // TcpChannel completes inline
}

std::unique_ptr<TcpChannel> IdentifiedChannel(const TcpServer& server,
                                              std::uint64_t client_id) {
  TcpChannelOptions options;
  options.client_id = client_id;
  auto channel = std::make_unique<TcpChannel>(options);
  channel->Register(1, server.host(), server.port());
  return channel;
}

TEST(DisconnectTest, ClientDisconnectFiresWhenLastConnectionDies) {
  NullHandler handler;
  DisconnectLog log;
  TcpServer::Options options;
  options.on_client_disconnect = [&log](std::uint64_t c) { log.Add(c); };
  TcpServer server(&handler, options);
  ASSERT_TRUE(server.Start().ok());

  // Two channels say hello as client 7 (a remounted client, or one pooling
  // extra sockets); a third stays anonymous and must never trigger the hook.
  auto first = IdentifiedChannel(server, 7);
  auto second = IdentifiedChannel(server, 7);
  TcpChannel anonymous;
  anonymous.Register(1, server.host(), server.port());
  ASSERT_EQ(BlockingCall(*first, 1, 5, "a").code, ErrCode::kOk);
  ASSERT_EQ(BlockingCall(*second, 1, 5, "b").code, ErrCode::kOk);
  ASSERT_EQ(BlockingCall(anonymous, 1, 5, "c").code, ErrCode::kOk);

  // Closing one of client 7's connections is not a disconnect: another
  // connection with the same identity is still alive.
  first.reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(log.Count(), 0u);
  EXPECT_EQ(BlockingCall(*second, 1, 5, "d").code, ErrCode::kOk);

  // Closing the last one is: the callback fires exactly once, with the id
  // from the hello exchange.
  second.reset();
  ASSERT_TRUE(log.Await([&] { return log.Count() == 1; }));
  EXPECT_EQ(log.Snapshot(), (std::vector<std::uint64_t>{7}));

  // The anonymous connection (no hello, client id 0) closes silently.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(log.Count(), 1u);
}

TEST(DisconnectTest, ReconnectAfterDisconnectFiresAgain) {
  NullHandler handler;
  DisconnectLog log;
  TcpServer::Options options;
  options.on_client_disconnect = [&log](std::uint64_t c) { log.Add(c); };
  TcpServer server(&handler, options);
  ASSERT_TRUE(server.Start().ok());

  for (std::uint64_t round = 1; round <= 2; ++round) {
    auto channel = IdentifiedChannel(server, 42);
    ASSERT_EQ(BlockingCall(*channel, 1, 5, "x").code, ErrCode::kOk);
    channel.reset();
    ASSERT_TRUE(log.Await([&] { return log.Count() == round; }));
  }
  EXPECT_EQ(log.Snapshot(), (std::vector<std::uint64_t>{42, 42}));
}

TEST(DisconnectTest, NotifyDisconnectFiresWhenStreamDrops) {
  NullHandler handler;
  DisconnectLog notify_log;
  DisconnectLog client_log;
  TcpServer::Options options;
  options.on_notify_disconnect = [&notify_log](std::uint64_t c) {
    notify_log.Add(c);
  };
  options.on_client_disconnect = [&client_log](std::uint64_t c) {
    client_log.Add(c);
  };
  TcpServer server(&handler, options);
  ASSERT_TRUE(server.Start().ok());

  NotifyListener::Options listener_options;
  listener_options.host = server.host();
  listener_options.port = server.port();
  listener_options.client_id = 9;
  listener_options.backoff_base_ns = 10 * common::kMilli;
  listener_options.backoff_cap_ns = 100 * common::kMilli;
  auto listener = std::make_unique<NotifyListener>(
      listener_options, [](const NotifyEvent&) {});
  ASSERT_TRUE(listener->Start().ok());
  ASSERT_TRUE(notify_log.Await([&] { return server.notify_sessions() == 1; }));

  // Tearing the listener down closes its stream: the server reports the lost
  // notify session immediately, and — the stream being client 9's only
  // connection — the client-disconnect hook fires too.
  listener.reset();
  ASSERT_TRUE(notify_log.Await([&] { return notify_log.Count() == 1; }));
  EXPECT_EQ(notify_log.Snapshot(), (std::vector<std::uint64_t>{9}));
  ASSERT_TRUE(client_log.Await([&] { return client_log.Count() == 1; }));
  EXPECT_EQ(client_log.Snapshot(), (std::vector<std::uint64_t>{9}));
  EXPECT_EQ(server.notify_sessions(), 0u);
}

}  // namespace
}  // namespace loco::net
