// net::DedupWindow: exact-once replay window keyed on exact request bytes.
//
// The regression of record: the window used to key on a 64-bit hash of
// (trace_id, opcode, payload).  A hash collision between two *different*
// requests would replay the first request's cached response as the answer
// to the second — a silent cross-request data leak.  The key is now the
// literal (trace_id, opcode, payload) byte string, so two distinct requests
// cannot share a key by construction.  These tests pin that contract.
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/dedup.h"

namespace loco::net {
namespace {

wire::FrameHeader Header(std::uint16_t opcode, std::uint64_t trace_id) {
  wire::FrameHeader h;
  h.type = wire::FrameType::kRequest;
  h.opcode = opcode;
  h.request_id = trace_id + 1;  // request ids never participate in the key
  h.trace_id = trace_id;
  return h;
}

TEST(DedupWindowTest, KeyIsExactBytesNotAHash) {
  // Distinct payloads (same trace id and opcode) must yield distinct keys —
  // for every pair, not just probabilistically.  With an exact-byte key the
  // key *is* the identifying tuple, so equality of keys implies equality of
  // requests.
  const wire::FrameHeader h = Header(7, 42);
  const std::string a = DedupWindow::Key(h, "payload-A");
  const std::string b = DedupWindow::Key(h, "payload-B");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, DedupWindow::Key(h, "payload-A"));

  // Trace id and opcode are part of the identity too.
  EXPECT_NE(DedupWindow::Key(Header(7, 42), "x"),
            DedupWindow::Key(Header(7, 43), "x"));
  EXPECT_NE(DedupWindow::Key(Header(7, 42), "x"),
            DedupWindow::Key(Header(8, 42), "x"));
}

TEST(DedupWindowTest, KeyIsInjectiveAcrossFieldBoundaries) {
  // The encoding must be prefix-unambiguous: the fixed-width (trace, opcode)
  // prefix means payload bytes can never masquerade as header fields.
  const std::string k1 = DedupWindow::Key(Header(0x0102, 1), "");
  std::string payload(10, '\0');
  const std::string k2 = DedupWindow::Key(Header(0, 0), payload);
  EXPECT_NE(k1, k2);
  EXPECT_EQ(k1.size(), 10u);
  EXPECT_EQ(k2.size(), 20u);
}

TEST(DedupWindowTest, DifferentRequestsNeverReplayEachOther) {
  // Regression: under the old hashed key a collision could hand request B
  // the cached response of request A.  Execute many distinct requests that
  // agree on everything except payload; none may see a replay.
  DedupWindow window({7});
  const std::uint64_t trace = 99;
  for (int i = 0; i < 1000; ++i) {
    const std::string payload = "op-" + std::to_string(i);
    const std::string key = DedupWindow::Key(Header(7, trace), payload);
    ErrCode code = ErrCode::kOk;
    std::string cached;
    ASSERT_EQ(window.Begin(key, &code, &cached),
              DedupWindow::Outcome::kExecute)
        << "request " << i << " replayed a different request's response";
    window.Complete(key, ErrCode::kOk, payload);
  }
  EXPECT_EQ(window.replays(), 0u);
}

TEST(DedupWindowTest, RetryReplaysCachedResponse) {
  DedupWindow window({7});
  const std::string key = DedupWindow::Key(Header(7, 5), "mutate");
  ErrCode code = ErrCode::kOk;
  std::string cached;
  ASSERT_EQ(window.Begin(key, &code, &cached), DedupWindow::Outcome::kExecute);
  window.Complete(key, ErrCode::kExists, "original-response");

  ASSERT_EQ(window.Begin(key, &code, &cached), DedupWindow::Outcome::kReplay);
  EXPECT_EQ(code, ErrCode::kExists);
  EXPECT_EQ(cached, "original-response");
}

TEST(DedupWindowTest, EligibilityFiltersOpcodes) {
  DedupWindow window({1, 2});
  EXPECT_TRUE(window.Eligible(1));
  EXPECT_TRUE(window.Eligible(2));
  EXPECT_FALSE(window.Eligible(3));
}

TEST(DedupWindowTest, EvictionForgetsOldEntries) {
  DedupWindow::Options options;
  options.capacity = 4;
  DedupWindow window({7}, options);
  auto run = [&](int i) {
    const std::string key =
        DedupWindow::Key(Header(7, static_cast<std::uint64_t>(i)), "p");
    ErrCode code = ErrCode::kOk;
    std::string cached;
    const auto outcome = window.Begin(key, &code, &cached);
    if (outcome == DedupWindow::Outcome::kExecute) {
      window.Complete(key, ErrCode::kOk, "r");
    }
    return outcome;
  };
  for (int i = 0; i < 16; ++i) ASSERT_EQ(run(i), DedupWindow::Outcome::kExecute);
  // The oldest entries fell out of the window: re-running them executes
  // again (the window is a best-effort bound, not a permanent log).
  EXPECT_EQ(run(0), DedupWindow::Outcome::kExecute);
  // The newest is still cached.
  EXPECT_EQ(run(15), DedupWindow::Outcome::kReplay);
}

TEST(DedupWindowTest, ConcurrentDuplicateWaitsForOwner) {
  DedupWindow window({7});
  const std::string key = DedupWindow::Key(Header(7, 77), "racy");
  ErrCode code = ErrCode::kOk;
  std::string cached;
  ASSERT_EQ(window.Begin(key, &code, &cached), DedupWindow::Outcome::kExecute);

  std::thread dup([&] {
    ErrCode dup_code = ErrCode::kOk;
    std::string dup_cached;
    // Blocks until the owner completes, then replays — never re-executes.
    EXPECT_EQ(window.Begin(key, &dup_code, &dup_cached),
              DedupWindow::Outcome::kReplay);
    EXPECT_EQ(dup_cached, "owner-result");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  window.Complete(key, ErrCode::kOk, "owner-result");
  dup.join();
}

}  // namespace
}  // namespace loco::net
